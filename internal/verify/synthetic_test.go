package verify_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/verify"
)

// storesGraph builds a single-block kernel of n stores with distinct
// constant addresses — a minimal shape whose hand-built mapping lets the
// tests hit checks the real mapper never trips (e.g. CRF pressure).
func storesGraph(n int) *cdfg.Graph {
	b := cdfg.NewBuilder("stores")
	bb := b.Block("body")
	for i := 0; i < n; i++ {
		bb.Store(bb.Const(int32(i)), bb.Const(7))
	}
	bb.Halt()
	return b.Finish()
}

// storesMapping hand-builds the obvious legal mapping of storesGraph:
// every store in its own cycle on tile 1 (an LSU tile), all other tiles
// idle for the whole block.
func storesMapping(g *cdfg.Graph, grid *arch.Grid) *core.Mapping {
	blk := g.Blocks[0]
	var stores []cdfg.NodeID
	for _, nd := range blk.Nodes {
		if nd.Op == cdfg.OpStore {
			stores = append(stores, nd.ID)
		}
	}
	n := grid.NumTiles()
	bm := &core.BlockMapping{
		BB:         blk.ID,
		Len:        len(stores),
		Tiles:      make([][]core.Slot, n),
		BranchTile: -1,
		Ops:        make([]int, n),
		Moves:      make([]int, n),
		Pnops:      make([]int, n),
	}
	for t := 0; t < n; t++ {
		bm.Tiles[t] = make([]core.Slot, bm.Len)
	}
	for c, id := range stores {
		nd := blk.Nodes[id]
		bm.Tiles[0][c] = core.Slot{
			Kind: core.SlotOp,
			Node: id,
			Srcs: [isa.MaxSrcs]isa.Src{
				isa.Const(blk.Nodes[nd.Args[0]].Val),
				isa.Const(blk.Nodes[nd.Args[1]].Val),
			},
			NSrc: 2,
		}
	}
	bm.Ops[0] = len(stores)
	for t := 1; t < n; t++ {
		bm.Pnops[t] = 1 // one folded pnop spanning the whole idle row
	}
	return &core.Mapping{
		Graph:    g,
		Grid:     grid,
		Flow:     core.FlowBasic,
		Blocks:   []*core.BlockMapping{bm},
		SymHomes: map[string]core.SymLoc{},
	}
}

func TestSyntheticMappingClean(t *testing.T) {
	g := storesGraph(5)
	m := storesMapping(g, arch.MustGrid(arch.HOM64))
	if err := m.Validate(); err != nil {
		t.Fatalf("synthetic mapping is structurally invalid: %v", err)
	}
	if res := verify.CheckMapping(m); !res.OK() {
		t.Fatalf("clean synthetic mapping reported diagnostics:\n%s", res.Report())
	}
}

// TestREG003CRFPressure gives one tile more distinct constants than the
// 32-entry CRF holds; the regs pass must predict the assembly failure.
func TestREG003CRFPressure(t *testing.T) {
	g := storesGraph(isa.MaxCRF + 3)
	m := storesMapping(g, arch.MustGrid(arch.HOM64))
	res := verify.CheckMapping(m)
	if !res.HasCode("REG003") {
		t.Fatalf("want REG003, got %v:\n%s", res.Codes(), res.Report())
	}
}

// TestBR002PhantomBranchTile announces a branch tile on a branch-less
// block.
func TestBR002PhantomBranchTile(t *testing.T) {
	g := storesGraph(3)
	m := storesMapping(g, arch.MustGrid(arch.HOM64))
	m.Blocks[0].BranchTile = 2
	res := verify.CheckMapping(m)
	if !res.HasCode("BR002") {
		t.Fatalf("want BR002, got %v:\n%s", res.Codes(), res.Report())
	}
}
