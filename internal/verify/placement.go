package verify

import (
	"repro/internal/arch"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/isa"
)

// The lsu pass pins memory traffic to the hardware that can serve it:
// loads and stores may only execute on tiles carrying a load/store unit
// (rows 0–1 of the paper's 4×4 array).
//
//	LSU001  load/store scheduled on a tile without an LSU
var lsuPass = &Pass{
	Name:  "lsu",
	Code:  "LSU",
	Doc:   "loads and stores execute only on LSU tiles",
	Needs: NeedEither,
	run:   runLSU,
}

func runLSU(c *checker) {
	grid := c.cx.Grid
	if m := c.cx.Mapping; m != nil {
		for _, bm := range m.Blocks {
			b := m.Graph.Blocks[bm.BB]
			for t, row := range bm.Tiles {
				if grid.Tile(arch.TileID(t)).HasLSU {
					continue
				}
				for cyc, s := range row {
					if s.Kind == core.SlotOp && b.Nodes[s.Node].Op.IsMem() {
						c.diag("LSU001", atBlock(bm.BB).onTile(t).atCycle(cyc).forNode(s.Node),
							"%s on a tile without a load/store unit", b.Nodes[s.Node].Op)
					}
				}
			}
		}
		return
	}
	p := c.cx.Program
	for t := range p.Tiles {
		if grid.Tile(arch.TileID(t)).HasLSU {
			continue
		}
		for _, seg := range p.Tiles[t].Segments {
			cyc := 0
			for _, in := range seg.Instrs {
				if in.Kind == isa.KOp && in.Op.IsMem() {
					c.diag("LSU001", atBlock(seg.BB).onTile(t).atCycle(cyc),
						"%s on a tile without a load/store unit", in.Op)
				}
				cyc += in.Cycles()
			}
		}
	}
}

// The cm pass enforces the paper's central constraint: every tile's
// context — operations, moves and folded pnop words — must fit its
// context memory under the configured (possibly heterogeneous) sizing,
// and the mapper's word accounting must agree with the schedule it
// annotates and with the program the assembler emitted.
//
//	CM001  a tile's context words exceed its context-memory capacity
//	CM002  the mapper's per-tile op/move/pnop counts disagree with the
//	       schedule grid
//	CM003  the assembled program's word count disagrees with the
//	       mapping's accounting
var cmPass = &Pass{
	Name:  "cm",
	Code:  "CM",
	Doc:   "per-tile context-memory capacity and word accounting",
	Needs: NeedEither,
	run:   runCM,
}

func runCM(c *checker) {
	grid := c.cx.Grid
	m, p := c.cx.Mapping, c.cx.Program
	// Capacity: prefer the program (the words actually loaded), fall back
	// to the mapping's accounting.
	for t := 0; t < grid.NumTiles(); t++ {
		var words int
		switch {
		case p != nil:
			words = p.Tiles[t].Words()
		default:
			for _, bm := range m.Blocks {
				words += bm.Words(arch.TileID(t))
			}
		}
		if limit := grid.Tile(arch.TileID(t)).CMWords; words > limit {
			c.diag("CM001", nowhere().onTile(t),
				"context needs %d words, context memory holds %d", words, limit)
		}
	}
	if m != nil {
		for _, bm := range m.Blocks {
			for t, row := range bm.Tiles {
				ops, moves := 0, 0
				for _, s := range row {
					switch s.Kind {
					case core.SlotOp:
						ops++
					case core.SlotMove:
						moves++
					}
				}
				pnops := countPnopWords(row)
				if ops != bm.Ops[t] || moves != bm.Moves[t] || pnops != bm.Pnops[t] {
					c.diag("CM002", atBlock(bm.BB).onTile(t),
						"schedule holds op=%d move=%d pnop=%d, accounting says op=%d move=%d pnop=%d",
						ops, moves, pnops, bm.Ops[t], bm.Moves[t], bm.Pnops[t])
				}
			}
		}
	}
	if m != nil && p != nil {
		for t := 0; t < grid.NumTiles(); t++ {
			want := 0
			for _, bm := range m.Blocks {
				want += bm.Words(arch.TileID(t))
			}
			if got := p.Tiles[t].Words(); got != want {
				c.diag("CM003", nowhere().onTile(t),
					"program holds %d words, mapping accounts for %d", got, want)
			}
		}
	}
}

// countPnopWords counts the pnop words a slot row assembles into: one per
// maximal run of empty slots (mirrors the assembler's folding).
func countPnopWords(row []core.Slot) int {
	n := 0
	inGap := false
	for _, s := range row {
		if s.Kind == core.SlotEmpty {
			if !inGap {
				n++
				inGap = true
			}
		} else {
			inGap = false
		}
	}
	return n
}

// The branch pass ties control flow together: a branching block must
// announce a real branch tile, that tile must execute the block's OpBr,
// no other tile may branch, and the program's per-block tables must
// cover the graph — the simulator broadcasts the branch verdict from
// exactly the announced tile.
//
//	BR001  branching block announces no (or an out-of-range) branch tile
//	BR002  non-branching block announces a branch tile
//	BR003  the announced branch tile never executes the block's OpBr
//	BR004  an OpBr executes on a tile other than the announced one
//	BR005  the program's block tables do not cover the graph
//	BR006  a tile's segment table is mis-ordered or mis-sized
var branchPass = &Pass{
	Name:  "branch",
	Code:  "BR",
	Doc:   "branch-target and block-ordering consistency",
	Needs: NeedEither,
	run:   runBranch,
}

func runBranch(c *checker) {
	g := c.cx.Graph
	if p := c.cx.Program; p != nil {
		if len(p.BlockLens) != len(g.Blocks) || len(p.BranchTiles) != len(g.Blocks) {
			c.diag("BR005", nowhere(),
				"program tables cover %d/%d blocks, graph has %d",
				len(p.BlockLens), len(p.BranchTiles), len(g.Blocks))
			return
		}
		for t := range p.Tiles {
			tc := &p.Tiles[t]
			if len(tc.Segments) != len(g.Blocks) {
				c.diag("BR006", nowhere().onTile(t),
					"tile holds %d segments, graph has %d blocks", len(tc.Segments), len(g.Blocks))
				return
			}
			for bb, seg := range tc.Segments {
				if seg.BB != cdfg.BBID(bb) {
					c.diag("BR006", atBlock(cdfg.BBID(bb)).onTile(t),
						"segment %d belongs to block b%d", bb, seg.BB)
					return
				}
			}
		}
	}
	for _, blk := range g.Blocks {
		bt, brTiles := branchFacts(c, blk.ID)
		here := atBlock(blk.ID)
		if blk.HasBranch() {
			if bt < 0 || int(bt) >= c.cx.Grid.NumTiles() {
				c.diag("BR001", here, "branching block announces branch tile %d", bt)
			} else {
				onBT := false
				for _, t := range brTiles {
					if t == int(bt) {
						onBT = true
					}
				}
				if !onBT {
					c.diag("BR003", here.onTile(int(bt)), "announced branch tile never executes the branch")
				}
			}
		} else if bt >= 0 {
			c.diag("BR002", here.onTile(int(bt)), "block has no branch but announces a branch tile")
		}
		for _, t := range brTiles {
			if !blk.HasBranch() || t != int(bt) {
				c.diag("BR004", here.onTile(t), "br executes on an unannounced tile")
			}
		}
	}
}

// branchFacts returns the announced branch tile of a block and the tiles
// that actually execute an OpBr, preferring the mapping's view.
func branchFacts(c *checker, bb cdfg.BBID) (arch.TileID, []int) {
	if m := c.cx.Mapping; m != nil {
		bm := m.Blocks[bb]
		b := m.Graph.Blocks[bb]
		var brTiles []int
		for t, row := range bm.Tiles {
			for _, s := range row {
				if s.Kind == core.SlotOp && b.Nodes[s.Node].Op == cdfg.OpBr {
					brTiles = append(brTiles, t)
					break
				}
			}
		}
		return bm.BranchTile, brTiles
	}
	p := c.cx.Program
	var brTiles []int
	for t := range p.Tiles {
		if int(bb) >= len(p.Tiles[t].Segments) {
			continue
		}
		for _, in := range p.Tiles[t].Segments[bb].Instrs {
			if in.Kind == isa.KOp && in.Op == cdfg.OpBr {
				brTiles = append(brTiles, t)
				break
			}
		}
	}
	return p.BranchTiles[bb], brTiles
}
