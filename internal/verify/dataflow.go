package verify

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/isa"
)

// The dataflow pass is the def-before-use liveness check on the
// time-extended grid: it symbolically executes every block schedule and
// proves each operand read (neighbor output register, register file,
// constant file) delivers the value the CDFG prescribes, that symbol
// homes hold their entry values until the writeback, and that every
// live-out symbol ends in its home register. It is the engine that used
// to live in core.CheckDataflow.
//
//	DF001  operand source cannot be resolved (bad kind, direction or
//	       register index — the machine has no such location)
//	DF002  operand reads a different value than the CDFG prescribes
//	DF003  writeback requested on a slot that produces no value
//	DF004  live-out symbol has no home register
//	DF005  a symbol's home register holds the wrong value at block end
var dataflowPass = &Pass{
	Name:  "dataflow",
	Code:  "DF",
	Doc:   "def-before-use liveness: symbolic execution of every block schedule",
	Needs: NeedMapping,
	run:   runDataflow,
}

// valID identifies the value an architectural location holds during the
// symbolic execution: a node's result, a symbol's block-entry value, or
// a literal constant.
type valID struct {
	kind byte // 'n' node, 's' symbol, 'c' const, 0 unknown
	node cdfg.NodeID
	sym  string
	c    int32
}

func (v valID) String() string {
	switch v.kind {
	case 'n':
		return fmt.Sprintf("n%d", v.node)
	case 's':
		return "sym:" + v.sym
	case 'c':
		return fmt.Sprintf("#%d", v.c)
	}
	return "?"
}

// expectVal is the value a node delivers when used as an operand.
func expectVal(b *cdfg.BasicBlock, id cdfg.NodeID) valID {
	nd := b.Nodes[id]
	switch nd.Op {
	case cdfg.OpConst:
		return valID{kind: 'c', c: nd.Val}
	case cdfg.OpSym:
		return valID{kind: 's', sym: nd.Sym}
	default:
		return valID{kind: 'n', node: id}
	}
}

func runDataflow(c *checker) {
	for _, bm := range c.cx.Mapping.Blocks {
		checkBlockDataflow(c, bm)
	}
}

func checkBlockDataflow(c *checker, bm *core.BlockMapping) {
	m := c.cx.Mapping
	b := m.Graph.Blocks[bm.BB]
	n := m.Grid.NumTiles()
	rrf := m.Grid.RRFSize

	out := make([]valID, n)
	rf := make([][]valID, n)
	for t := range rf {
		rf[t] = make([]valID, rrf)
	}
	// Symbol homes hold their entry values at block start.
	homeOf := map[string]core.SymLoc{}
	for s, h := range m.SymHomes {
		rf[h.Tile][h.Reg] = valID{kind: 's', sym: s}
		homeOf[s] = h
	}

	// resolve returns the value a source reads and whether the source
	// addresses a real location at all; unreachable locations (bad
	// direction or register index) are DF001, reported by the caller.
	resolve := func(t int, src isa.Src, prevOut []valID) (valID, bool) {
		switch src.Kind {
		case isa.SrcConst:
			return valID{kind: 'c', c: src.Val}, true
		case isa.SrcReg:
			if int(src.Reg) >= rrf {
				return valID{}, false
			}
			return rf[t][src.Reg], true
		case isa.SrcSelf:
			return prevOut[t], true
		case isa.SrcNbr:
			nbrs := m.Grid.Neighbors(arch.TileID(t))
			if int(src.Dir) >= len(nbrs) {
				return valID{}, false
			}
			return prevOut[nbrs[src.Dir]], true
		}
		return valID{}, false
	}

	for cyc := 0; cyc < bm.Len; cyc++ {
		prevOut := append([]valID(nil), out...)
		for t := 0; t < n; t++ {
			s := bm.Tiles[t][cyc]
			if s.Kind == core.SlotEmpty {
				continue
			}
			here := atBlock(bm.BB).onTile(t).atCycle(cyc).forNode(s.Node)
			var want []valID
			switch s.Kind {
			case core.SlotOp:
				nd := b.Nodes[s.Node]
				want = make([]valID, len(nd.Args))
				for i, a := range nd.Args {
					want[i] = expectVal(b, a)
				}
			case core.SlotMove:
				want = []valID{expectVal(b, s.Node)}
			}
			for i := 0; i < s.NSrc && i < len(want); i++ {
				got, ok := resolve(t, s.Srcs[i], prevOut)
				if !ok {
					c.diag("DF001", here, "operand %d source %v addresses no machine location", i, s.Srcs[i])
					continue
				}
				if got != want[i] {
					c.diag("DF002", here, "operand %d reads %v via %v, want %v", i, got, s.Srcs[i], want[i])
				}
			}
			// Commit the result.
			var res valID
			produce := false
			switch s.Kind {
			case core.SlotOp:
				if b.Nodes[s.Node].Op.HasResult() {
					res = valID{kind: 'n', node: s.Node}
					produce = true
				}
			case core.SlotMove:
				res = expectVal(b, s.Node)
				produce = true
			}
			if produce {
				out[t] = res
				if s.WB && int(s.WReg) < rrf {
					rf[t][s.WReg] = res
				}
			} else if s.WB {
				c.diag("DF003", here, "writeback on value-less %v", s)
			}
		}
	}

	// Every live-out symbol must end in its home register, and every home
	// the block does not write must be preserved — a temp clobbering a
	// home register pinned by another block corrupts the symbol at
	// runtime. (Iterate in sorted symbol order so diagnostics are
	// deterministic.)
	for _, s := range b.LiveOutSyms() {
		if _, ok := m.SymHomes[s]; !ok {
			c.diag("DF004", atBlock(bm.BB), "live-out symbol %q has no home", s)
		}
	}
	syms := make([]string, 0, len(homeOf))
	for s := range homeOf {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	for _, s := range syms {
		h := homeOf[s]
		got := rf[h.Tile][h.Reg]
		var want valID
		if def, ok := b.LiveOut[s]; ok {
			want = expectVal(b, def)
		} else {
			want = valID{kind: 's', sym: s}
		}
		if got != want {
			c.diag("DF005", atBlock(bm.BB).onTile(int(h.Tile)),
				"symbol %q home (tile %d, r%d) holds %v at block end, want %v",
				s, h.Tile+1, h.Reg, got, want)
		}
	}
}
