package verify_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/verify"
)

// TestKernelMatrixClean is the verifier's false-positive gate: every
// mapping the default suite produces — all paper kernels × all four
// context-memory configurations under the full aware flow, plus the
// memory-unaware basic flow on the largest memory — must pass every
// pass with zero diagnostics. A kernel that finds no mapping on a
// config is skipped (an acceptable outcome the paper also reports),
// never silently passed.
func TestKernelMatrixClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full kernel × config matrix is slow")
	}
	type cell struct {
		flow core.Flow
		cfg  arch.ConfigName
	}
	var cells []cell
	for _, cfg := range arch.ConfigNames() {
		cells = append(cells, cell{core.FlowCAB, cfg})
	}
	cells = append(cells, cell{core.FlowBasic, arch.HOM64})
	for _, name := range kernels.Names() {
		for _, c := range cells {
			name, c := name, c
			t.Run(name+"/"+c.flow.String()+"/"+string(c.cfg), func(t *testing.T) {
				t.Parallel()
				k, err := kernels.ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				m, err := core.Map(k.Build(), arch.MustGrid(c.cfg), core.DefaultOptions(c.flow))
				if err != nil {
					t.Skipf("no mapping: %v", err)
				}
				if ok, _ := m.FitsMemory(); !ok {
					t.Skip("mapping overflows context memory (memory-unaware flow)")
				}
				prog, err := asm.Assemble(m)
				if err != nil {
					t.Fatalf("assemble: %v", err)
				}
				res := verify.Run(&verify.Context{Mapping: m, Program: prog})
				if !res.OK() {
					t.Errorf("diagnostics on a clean kernel:\n%s", res.Report())
				}
				if len(res.Skipped) != 0 {
					t.Errorf("full context must run every pass, skipped %v", res.Skipped)
				}
				if want := len(verify.Passes()); len(res.Ran) != want {
					t.Errorf("ran %d of %d passes", len(res.Ran), want)
				}
			})
		}
	}
}
