package verify

import (
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/isa"
)

// The route pass proves every operand transported over the torus rides a
// real link and reads a defined output register: a neighbor direction
// must name one of the four torus links (the simulator indexes the
// neighbor table with it and would panic otherwise), the addressed tile
// must be torus-adjacent, and the producer must have driven its output
// register in an earlier cycle of the same block — output registers
// carry no value across block entry.
//
//	ROUTE001  neighbor direction outside the torus (no such link)
//	ROUTE002  neighbor/self read from an output register no earlier
//	          cycle of the block has driven
//	ROUTE003  neighbor table names a non-adjacent tile (custom grids)
var routePass = &Pass{
	Name:  "route",
	Code:  "ROUTE",
	Doc:   "torus-adjacency and definedness of every neighbor read",
	Needs: NeedMapping,
	run:   runRoute,
}

func runRoute(c *checker) {
	m := c.cx.Mapping
	grid := m.Grid
	n := grid.NumTiles()
	for _, bm := range m.Blocks {
		// produced[t] is monotone: once a tile drives its output register
		// it stays driven for the rest of the block.
		produced := make([]bool, n)
		for cyc := 0; cyc < bm.Len; cyc++ {
			var producers []int
			for t := 0; t < n; t++ {
				s := bm.Tiles[t][cyc]
				if s.Kind == core.SlotEmpty {
					continue
				}
				here := atBlock(bm.BB).onTile(t).atCycle(cyc).forNode(s.Node)
				for i := 0; i < s.NSrc; i++ {
					src := s.Srcs[i]
					switch src.Kind {
					case isa.SrcNbr:
						nbrs := grid.Neighbors(arch.TileID(t))
						if int(src.Dir) >= len(nbrs) {
							c.diag("ROUTE001", here,
								"operand %d direction %d exceeds the torus links (N,S,W,E)", i, src.Dir)
							continue
						}
						nb := nbrs[src.Dir]
						if !grid.Adjacent(arch.TileID(t), nb) {
							c.diag("ROUTE003", here,
								"operand %d reads tile %d which is not torus-adjacent", i, nb+1)
						}
						if !produced[nb] {
							c.diag("ROUTE002", here,
								"operand %d reads tile %d's output register, undriven this block", i, nb+1)
						}
					case isa.SrcSelf:
						if !produced[t] {
							c.diag("ROUTE002", here,
								"operand %d reads own output register, undriven this block", i)
						}
					}
				}
				if slotProduces(m, bm, s) {
					producers = append(producers, t)
				}
			}
			for _, t := range producers {
				produced[t] = true
			}
		}
	}
}

// slotProduces reports whether the slot drives the tile's output register.
func slotProduces(m *core.Mapping, bm *core.BlockMapping, s core.Slot) bool {
	switch s.Kind {
	case core.SlotMove:
		return true
	case core.SlotOp:
		return m.Graph.Blocks[bm.BB].Nodes[s.Node].Op.HasResult()
	}
	return false
}
