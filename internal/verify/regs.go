package verify

import (
	"repro/internal/arch"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/isa"
)

// The regs pass bounds register-file traffic: writebacks and register
// reads must address the RRF (the mapper's 8-entry window), a tile's
// distinct constants must fit the 32-entry CRF the assembler will
// populate, and the last write a block makes to a symbol's home
// register must carry the symbol's entry value or its live-out
// definition — the live-range overlap the paper's location constraint
// rules out. Earlier writes may use the home as scratch: the dataflow
// pass proves any read in between still resolves correctly, and REG004
// attributes the slot that leaves the home corrupted at block end.
//
//	REG001  writeback register index outside the RRF
//	REG002  register-read index outside the RRF
//	REG003  a tile references more distinct constants than the CRF holds
//	REG004  a home register's final writer clobbers it with an unrelated value
var regsPass = &Pass{
	Name:  "regs",
	Code:  "REG",
	Doc:   "RRF/CRF capacity and symbol-home live-range overlap",
	Needs: NeedEither,
	run:   runRegs,
}

func runRegs(c *checker) {
	if c.cx.Mapping != nil {
		runRegsMapping(c)
		return
	}
	runRegsProgram(c)
}

func runRegsMapping(c *checker) {
	m := c.cx.Mapping
	rrf := m.Grid.RRFSize
	// Reverse the home map for clobber detection. Two symbols sharing one
	// home would already fail the dataflow pass; last-writer-wins here.
	homeSym := map[core.SymLoc]string{}
	for s, h := range m.SymHomes {
		homeSym[h] = s
	}
	consts := make(map[int32]bool)
	type write struct {
		cyc  int
		slot core.Slot
	}
	for t := 0; t < m.Grid.NumTiles(); t++ {
		clear(consts)
		for _, bm := range m.Blocks {
			b := m.Graph.Blocks[bm.BB]
			lastWrite := map[uint8]write{}
			for cyc, s := range bm.Tiles[t] {
				if s.Kind == core.SlotEmpty {
					continue
				}
				here := atBlock(bm.BB).onTile(t).atCycle(cyc).forNode(s.Node)
				for i := 0; i < s.NSrc; i++ {
					switch s.Srcs[i].Kind {
					case isa.SrcReg:
						if int(s.Srcs[i].Reg) >= rrf {
							c.diag("REG002", here, "operand %d reads r%d, RRF has %d registers",
								i, s.Srcs[i].Reg, rrf)
						}
					case isa.SrcConst:
						consts[s.Srcs[i].Val] = true
					}
				}
				if !s.WB {
					continue
				}
				if int(s.WReg) >= rrf {
					c.diag("REG001", here, "writeback to r%d, RRF has %d registers", s.WReg, rrf)
					continue
				}
				lastWrite[s.WReg] = write{cyc: cyc, slot: s}
			}
			// Home-clobber: only the block's FINAL write to a pinned
			// register must carry the symbol's entry value (identity carry)
			// or its live-out definition; earlier writes are legal scratch
			// use the dataflow pass vets read-by-read.
			for reg := uint8(0); int(reg) < rrf; reg++ {
				lw, wrote := lastWrite[reg]
				if !wrote {
					continue
				}
				sym, pinned := homeSym[core.SymLoc{Tile: arch.TileID(t), Reg: reg}]
				if !pinned {
					continue
				}
				written, ok := slotValue(b, lw.slot)
				if !ok {
					continue // value-less writeback: the dataflow pass reports DF003
				}
				legal := written == (valID{kind: 's', sym: sym})
				if def, liveOut := b.LiveOut[sym]; liveOut && written == expectVal(b, def) {
					legal = true
				}
				if !legal {
					c.diag("REG004", atBlock(bm.BB).onTile(t).atCycle(lw.cyc).forNode(lw.slot.Node),
						"clobbers symbol %q home r%d with %v", sym, reg, written)
				}
			}
		}
		if len(consts) > isa.MaxCRF {
			c.diag("REG003", nowhere().onTile(t),
				"%d distinct constants exceed the %d-entry CRF", len(consts), isa.MaxCRF)
		}
	}
}

func runRegsProgram(c *checker) {
	p := c.cx.Program
	rrf := p.Grid.RRFSize
	for t := range p.Tiles {
		tc := &p.Tiles[t]
		for _, seg := range tc.Segments {
			cyc := 0
			for _, in := range seg.Instrs {
				here := atBlock(seg.BB).onTile(t).atCycle(cyc)
				if in.WB && int(in.WReg) >= rrf {
					c.diag("REG001", here, "writeback to r%d, RRF has %d registers", in.WReg, rrf)
				}
				for i := 0; i < in.NSrc; i++ {
					if in.Srcs[i].Kind == isa.SrcReg && int(in.Srcs[i].Reg) >= rrf {
						c.diag("REG002", here, "operand %d reads r%d, RRF has %d registers",
							i, in.Srcs[i].Reg, rrf)
					}
				}
				cyc += in.Cycles()
			}
		}
		if tc.CRF != nil && tc.CRF.Len() > isa.MaxCRF {
			c.diag("REG003", nowhere().onTile(t),
				"%d interned constants exceed the %d-entry CRF", tc.CRF.Len(), isa.MaxCRF)
		}
	}
}

// slotValue is the value a slot writes back, mirroring the dataflow
// pass's commit step.
func slotValue(b *cdfg.BasicBlock, s core.Slot) (valID, bool) {
	switch s.Kind {
	case core.SlotMove:
		return expectVal(b, s.Node), true
	case core.SlotOp:
		if b.Nodes[s.Node].Op.HasResult() {
			return valID{kind: 'n', node: s.Node}, true
		}
	}
	return valID{}, false
}
