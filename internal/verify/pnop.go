package verify

import (
	"repro/internal/isa"
)

// The pnop pass checks the hold legality of folded idle cycles: every
// pnop word idles a representable, positive cycle count, and each
// segment's words span exactly the block's schedule length — the
// lockstep simulator unrolls segments and refuses any other shape.
//
//	PNOP001  pnop idle count < 1 or beyond the encodable maximum
//	PNOP002  a segment's cycles do not sum to the block's length
//	PNOP003  a segment's recorded cycle span disagrees with the block
var pnopPass = &Pass{
	Name:  "pnop",
	Code:  "PNOP",
	Doc:   "pnop/hold legality: idle counts and per-block cycle spans",
	Needs: NeedProgram,
	run:   runPnop,
}

func runPnop(c *checker) {
	p := c.cx.Program
	for t := range p.Tiles {
		for _, seg := range p.Tiles[t].Segments {
			if int(seg.BB) >= len(p.BlockLens) {
				continue // the branch pass reports BR005/BR006
			}
			cycles := 0
			for _, in := range seg.Instrs {
				if in.Kind == isa.KPnop && (in.Count < 1 || in.Count > isa.MaxPnop) {
					c.diag("PNOP001", atBlock(seg.BB).onTile(t).atCycle(cycles),
						"pnop idles %d cycles (legal: 1..%d)", in.Count, isa.MaxPnop)
				}
				cycles += in.Cycles()
			}
			want := p.BlockLens[seg.BB]
			if cycles != want {
				c.diag("PNOP002", atBlock(seg.BB).onTile(t),
					"segment spans %d cycles, block runs %d", cycles, want)
			}
			if seg.Cycles != want {
				c.diag("PNOP003", atBlock(seg.BB).onTile(t),
					"segment records %d cycles, block runs %d", seg.Cycles, want)
			}
		}
	}
}
