package verify

import (
	"repro/internal/isa"
)

// The encode pass proves the assembled context words are loadable: every
// instruction is structurally valid, survives a binary encode/decode
// round trip against a re-derived constant file, and matches the word
// the assembler actually stored. It re-interns each tile's constants in
// segment order, so a CRF that drifted from its instructions is caught
// too.
//
//	ENC001  instruction fails structural validation
//	ENC002  instruction cannot be encoded (or its word cannot be decoded)
//	ENC003  encode/decode round trip changes the instruction
//	ENC004  stored binary word differs from the re-encoded instruction
//	ENC005  stored binary length or CRF contents differ from the segments
var encodePass = &Pass{
	Name:  "encode",
	Code:  "ENC",
	Doc:   "context-word encode/decode round-trip legality",
	Needs: NeedProgram,
	run:   runEncode,
}

func runEncode(c *checker) {
	p := c.cx.Program
	for t := range p.Tiles {
		tc := &p.Tiles[t]
		crf := isa.NewCRF()
		idx := 0
		for _, seg := range tc.Segments {
			cyc := 0
			for _, in := range seg.Instrs {
				here := atBlock(seg.BB).onTile(t).atCycle(cyc)
				if err := in.Validate(); err != nil {
					c.diag("ENC001", here, "%v", err)
				} else if w, err := isa.Encode(in, crf); err != nil {
					c.diag("ENC002", here, "encode: %v", err)
				} else {
					if back, err := isa.Decode(w, crf); err != nil {
						c.diag("ENC002", here, "decode: %v", err)
					} else if back != in {
						c.diag("ENC003", here, "round trip yields %v, want %v", back, in)
					}
					if idx < len(tc.Binary) && tc.Binary[idx] != w {
						c.diag("ENC004", here,
							"stored word %#016x differs from re-encoded %#016x", tc.Binary[idx], w)
					}
				}
				idx++
				cyc += in.Cycles()
			}
		}
		if idx != len(tc.Binary) {
			c.diag("ENC005", nowhere().onTile(t),
				"segments hold %d words, stored binary holds %d", idx, len(tc.Binary))
		}
		if tc.CRF != nil && !sameConsts(crf.Values(), tc.CRF.Values()) {
			c.diag("ENC005", nowhere().onTile(t),
				"re-derived CRF %v differs from stored CRF %v", crf.Values(), tc.CRF.Values())
		}
	}
}

func sameConsts(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
