// Package verify is the static legality analyzer of the toolchain: a
// pass-based framework that proves a mapping or an assembled program
// legal without running it. Where the simulator (internal/sim) and the
// differential oracle (internal/oracle) check behavior dynamically, the
// verifier checks the artifact itself — every neighbor read rides a real
// torus link, every value is defined before it is used, register and
// constant files are never over-subscribed, per-tile contexts fit their
// context memories, context words round-trip through the binary
// encoding, branches resolve on the announced tile, loads and stores sit
// on LSU tiles, and pnop words account for exactly the idle cycles of
// each block.
//
// Each pass emits Diagnostics with stable codes (ROUTE001, REG003,
// CM002, ...) attributed back to the CDFG: block, tile, cycle, and node.
// The codes are part of the package's API — tests and the oracle
// classify failures by them — and must never be renumbered.
//
// Importing this package (even blank) installs the dataflow pass as
// core.Map's hard post-condition via core.RegisterDataflowCheck, which
// keeps core free of an import cycle while core.CheckDataflow keeps
// working for existing call sites.
package verify

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/cdfg"
	"repro/internal/core"
)

func init() {
	core.RegisterDataflowCheck(Dataflow)
}

// Severity grades a diagnostic. Every current pass emits errors; the
// level exists so future passes can add advisory findings without a new
// reporting channel.
type Severity int

const (
	SevError Severity = iota
	SevWarning
)

func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Diagnostic is one verifier finding, attributed as precisely as the
// pass can: the basic block, the 0-based tile, the cycle within the
// block schedule, and the CDFG node involved. Unused attributions hold
// cdfg.None / -1.
type Diagnostic struct {
	// Code is the stable machine-readable identifier, e.g. "ROUTE001".
	Code string
	// Pass names the emitting pass.
	Pass string
	Sev  Severity

	Block     cdfg.BBID
	BlockName string
	Tile      int // 0-based tile index; rendered 1-based like the paper
	Cycle     int
	Node      cdfg.NodeID

	Msg string
}

func (d Diagnostic) String() string {
	var loc []string
	if d.Block != cdfg.None {
		if d.BlockName != "" {
			loc = append(loc, fmt.Sprintf("block %q", d.BlockName))
		} else {
			loc = append(loc, fmt.Sprintf("block b%d", d.Block))
		}
	}
	if d.Tile >= 0 {
		loc = append(loc, fmt.Sprintf("tile %d", d.Tile+1))
	}
	if d.Cycle >= 0 {
		loc = append(loc, fmt.Sprintf("cycle %d", d.Cycle))
	}
	if d.Node != cdfg.None {
		loc = append(loc, fmt.Sprintf("n%d", d.Node))
	}
	s := d.Code
	if len(loc) > 0 {
		s += " " + strings.Join(loc, " ")
	}
	return s + ": " + d.Msg
}

// Context is the verifier's input. Graph and Grid are required (they are
// derived from Mapping or Program when nil); Mapping and Program are
// each optional, and every pass runs on whatever subset it supports —
// see Pass.Needs.
type Context struct {
	Graph   *cdfg.Graph
	Grid    *arch.Grid
	Mapping *core.Mapping
	Program *asm.Program
}

// Need says which inputs a pass requires beyond Graph and Grid.
type Need int

const (
	// NeedMapping: the pass analyzes the (tile × cycle) schedule grid.
	NeedMapping Need = iota
	// NeedProgram: the pass analyzes assembled per-tile contexts.
	NeedProgram
	// NeedEither: the pass runs on a mapping, a program, or both.
	NeedEither
)

// Pass is one independent legality check.
type Pass struct {
	// Name is the short pass identifier (also Diagnostic.Pass).
	Name string
	// Code is the diagnostic code prefix the pass owns.
	Code string
	// Doc is a one-line description for catalogs and -verify output.
	Doc string
	// Needs declares the inputs the pass requires.
	Needs Need

	run func(*checker)
}

func (p *Pass) available(cx *Context) bool {
	switch p.Needs {
	case NeedMapping:
		return cx.Mapping != nil
	case NeedProgram:
		return cx.Program != nil
	default:
		return cx.Mapping != nil || cx.Program != nil
	}
}

// passes is the catalog in execution order.
var passes = []*Pass{
	dataflowPass,
	routePass,
	regsPass,
	lsuPass,
	cmPass,
	branchPass,
	encodePass,
	pnopPass,
}

// Passes returns the pass catalog in execution order.
func Passes() []*Pass { return append([]*Pass(nil), passes...) }

// Result collects the diagnostics of one verifier run.
type Result struct {
	// Diags holds all findings in pass-catalog order (deterministic).
	Diags []Diagnostic
	// Ran and Skipped list pass names: Skipped passes lacked an input
	// (e.g. program-level passes on a mapping-only Context).
	Ran     []string
	Skipped []string
}

// OK reports whether the run produced no diagnostics.
func (r *Result) OK() bool { return len(r.Diags) == 0 }

// HasCode reports whether any diagnostic carries the exact code.
func (r *Result) HasCode(code string) bool {
	for _, d := range r.Diags {
		if d.Code == code {
			return true
		}
	}
	return false
}

// Codes returns the distinct diagnostic codes, in first-seen order.
func (r *Result) Codes() []string {
	var out []string
	seen := map[string]bool{}
	for _, d := range r.Diags {
		if !seen[d.Code] {
			seen[d.Code] = true
			out = append(out, d.Code)
		}
	}
	return out
}

// Err returns nil when the run is clean, otherwise an error summarizing
// the first diagnostic and the total count.
func (r *Result) Err() error {
	switch len(r.Diags) {
	case 0:
		return nil
	case 1:
		return errors.New("verify: " + r.Diags[0].String())
	}
	return fmt.Errorf("verify: %s (+%d more diagnostics)", r.Diags[0], len(r.Diags)-1)
}

// Report renders a human-readable account of the run: one line per pass
// with its verdict, then every diagnostic.
func (r *Result) Report() string {
	var sb strings.Builder
	byPass := map[string]int{}
	for _, d := range r.Diags {
		byPass[d.Pass]++
	}
	for _, name := range r.Ran {
		if n := byPass[name]; n > 0 {
			fmt.Fprintf(&sb, "  %-10s FAIL (%d)\n", name, n)
		} else {
			fmt.Fprintf(&sb, "  %-10s ok\n", name)
		}
	}
	for _, name := range r.Skipped {
		fmt.Fprintf(&sb, "  %-10s skipped\n", name)
	}
	for _, d := range r.Diags {
		fmt.Fprintf(&sb, "  %s: %s\n", d.Sev, d)
	}
	return sb.String()
}

// Run executes every applicable pass over the context and returns the
// collected diagnostics. Passes whose inputs are absent are recorded in
// Result.Skipped, never silently dropped.
func Run(cx *Context) *Result {
	return runPasses(cx, passes)
}

func runPasses(cx *Context, ps []*Pass) *Result {
	c := *cx // derive missing Graph/Grid without mutating the caller's Context
	if c.Graph == nil {
		switch {
		case c.Mapping != nil:
			c.Graph = c.Mapping.Graph
		case c.Program != nil:
			c.Graph = c.Program.Graph
		}
	}
	if c.Grid == nil {
		switch {
		case c.Mapping != nil:
			c.Grid = c.Mapping.Grid
		case c.Program != nil:
			c.Grid = c.Program.Grid
		}
	}
	res := &Result{}
	if c.Graph == nil || c.Grid == nil {
		res.Diags = append(res.Diags, Diagnostic{
			Code: "VER001", Pass: "framework", Sev: SevError,
			Block: cdfg.None, Tile: -1, Cycle: -1, Node: cdfg.None,
			Msg: "verification context has no graph or grid",
		})
		return res
	}
	for _, p := range ps {
		if !p.available(&c) {
			res.Skipped = append(res.Skipped, p.Name)
			continue
		}
		p.run(&checker{cx: &c, pass: p, res: res})
		res.Ran = append(res.Ran, p.Name)
	}
	return res
}

// CheckMapping verifies a mapping (no assembled program): the
// mapping-level passes run, program-level passes are skipped.
func CheckMapping(m *core.Mapping) *Result {
	return Run(&Context{Mapping: m})
}

// CheckProgram verifies an assembled program.
func CheckProgram(p *asm.Program) *Result {
	return Run(&Context{Program: p})
}

// CheckImage reconstructs a program from a saved context-memory image
// and verifies it. The graph and grid must be the ones the image was
// assembled for (the image format stores neither).
func CheckImage(img *asm.Image, g *cdfg.Graph, grid *arch.Grid) (*Result, error) {
	p, err := asm.ProgramFromImage(img, g, grid)
	if err != nil {
		return nil, err
	}
	return CheckProgram(p), nil
}

// Dataflow runs only the dataflow pass — the engine behind
// core.CheckDataflow — and returns its findings as an error. core.Map
// uses it as the mapping's hard post-condition.
func Dataflow(m *core.Mapping) error {
	return runPasses(&Context{Mapping: m}, []*Pass{dataflowPass}).Err()
}

// checker is the per-pass emission context.
type checker struct {
	cx   *Context
	pass *Pass
	res  *Result
}

// at is the attribution of a diagnostic; the zero value is not useful —
// use nowhere() and the fluent setters.
type at struct {
	blk  cdfg.BBID
	tile int
	cyc  int
	node cdfg.NodeID
}

func nowhere() at                  { return at{blk: cdfg.None, tile: -1, cyc: -1, node: cdfg.None} }
func atBlock(bb cdfg.BBID) at      { a := nowhere(); a.blk = bb; return a }
func (a at) onTile(t int) at       { a.tile = t; return a }
func (a at) atCycle(c int) at      { a.cyc = c; return a }
func (a at) forNode(n cdfg.NodeID) at { a.node = n; return a }

func (c *checker) diag(code string, a at, format string, args ...any) {
	d := Diagnostic{
		Code: code, Pass: c.pass.Name, Sev: SevError,
		Block: a.blk, Tile: a.tile, Cycle: a.cyc, Node: a.node,
		Msg: fmt.Sprintf(format, args...),
	}
	if a.blk != cdfg.None && int(a.blk) < len(c.cx.Graph.Blocks) {
		d.BlockName = c.cx.Graph.Blocks[a.blk].Name
	}
	c.res.Diags = append(c.res.Diags, d)
}
