package verify_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/verify"
)

// mapKernel maps a benchmark kernel fresh; corruption tests each take
// their own mapping so faults never leak between subtests.
func mapKernel(t *testing.T, kernel string, cfg arch.ConfigName, flow core.Flow) *core.Mapping {
	t.Helper()
	k, err := kernels.ByName(kernel)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Map(k.Build(), arch.MustGrid(cfg), core.DefaultOptions(flow))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func assembled(t *testing.T, m *core.Mapping) *asm.Program {
	t.Helper()
	p, err := asm.Assemble(m)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// requireCode asserts the verifier (full context) reports the code.
func requireCode(t *testing.T, res *verify.Result, code string) {
	t.Helper()
	if !res.HasCode(code) {
		t.Fatalf("want diagnostic %s, got %v:\n%s", code, res.Codes(), res.Report())
	}
}

// firstSlot finds a slot of the given kind carrying the wanted source.
func firstSlot(m *core.Mapping, kind core.SlotKind, withSrc isa.SrcKind) (bb, tile, cyc int, ok bool) {
	for bi, bm := range m.Blocks {
		for ti, row := range bm.Tiles {
			for ci, s := range row {
				if s.Kind != kind {
					continue
				}
				if withSrc != isa.SrcNone {
					match := false
					for i := 0; i < s.NSrc; i++ {
						if s.Srcs[i].Kind == withSrc {
							match = true
						}
					}
					if !match {
						continue
					}
				}
				return bi, ti, ci, true
			}
		}
	}
	return 0, 0, 0, false
}

func TestCleanKernelFullContext(t *testing.T) {
	m := mapKernel(t, "DCFilter", arch.HOM64, core.FlowCAB)
	p := assembled(t, m)
	res := verify.Run(&verify.Context{Mapping: m, Program: p})
	if !res.OK() {
		t.Fatalf("clean kernel reported diagnostics:\n%s", res.Report())
	}
	if want := len(verify.Passes()); len(res.Ran) != want || len(res.Skipped) != 0 {
		t.Fatalf("ran %v skipped %v, want all %d passes", res.Ran, res.Skipped, want)
	}
}

func TestMappingOnlySkipsProgramPasses(t *testing.T) {
	m := mapKernel(t, "DCFilter", arch.HOM64, core.FlowCAB)
	res := verify.CheckMapping(m)
	if !res.OK() {
		t.Fatalf("clean mapping reported diagnostics:\n%s", res.Report())
	}
	skipped := map[string]bool{}
	for _, name := range res.Skipped {
		skipped[name] = true
	}
	if !skipped["encode"] || !skipped["pnop"] {
		t.Fatalf("program-level passes not skipped: %v", res.Skipped)
	}
}

func TestCheckImage(t *testing.T) {
	m := mapKernel(t, "DCFilter", arch.HOM64, core.FlowCAB)
	p := assembled(t, m)
	data, err := asm.SaveImage(p)
	if err != nil {
		t.Fatal(err)
	}
	img, err := asm.LoadImage(data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := verify.CheckImage(img, m.Graph, m.Grid)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("clean image reported diagnostics:\n%s", res.Report())
	}
}

func TestPassCatalog(t *testing.T) {
	names := map[string]bool{}
	prefixes := map[string]bool{}
	for _, p := range verify.Passes() {
		if p.Name == "" || p.Code == "" || p.Doc == "" {
			t.Fatalf("pass %+v missing metadata", p)
		}
		if names[p.Name] || prefixes[p.Code] {
			t.Fatalf("duplicate pass name/code: %s/%s", p.Name, p.Code)
		}
		names[p.Name] = true
		prefixes[p.Code] = true
	}
}

// TestMappingFaults corrupts a fresh DCFilter mapping per fault class and
// asserts the intended pass reports its stable code.
func TestMappingFaults(t *testing.T) {
	fresh := func(t *testing.T) *core.Mapping {
		return mapKernel(t, "DCFilter", arch.HOM64, core.FlowCAB)
	}
	t.Run("ROUTE001 direction off the torus", func(t *testing.T) {
		m := fresh(t)
		bb, ti, ci, ok := firstSlot(m, core.SlotOp, isa.SrcNbr)
		if !ok {
			t.Skip("no neighbor operand")
		}
		s := &m.Blocks[bb].Tiles[ti][ci]
		for i := 0; i < s.NSrc; i++ {
			if s.Srcs[i].Kind == isa.SrcNbr {
				s.Srcs[i].Dir = 7
			}
		}
		requireCode(t, verify.CheckMapping(m), "ROUTE001")
	})
	t.Run("ROUTE002 read of undriven output register", func(t *testing.T) {
		m := fresh(t)
		if !redirectToUndriven(m) {
			t.Skip("every neighbor is driven before every read")
		}
		requireCode(t, verify.CheckMapping(m), "ROUTE002")
	})
	t.Run("REG001 writeback outside the RRF", func(t *testing.T) {
		m := fresh(t)
		bb, ti, ci, ok := findWB(m)
		if !ok {
			t.Skip("no writeback slot")
		}
		m.Blocks[bb].Tiles[ti][ci].WReg = 15
		requireCode(t, verify.CheckMapping(m), "REG001")
	})
	t.Run("REG002 register read outside the RRF", func(t *testing.T) {
		m := fresh(t)
		bb, ti, ci, ok := firstSlot(m, core.SlotOp, isa.SrcReg)
		if !ok {
			t.Skip("no register operand")
		}
		s := &m.Blocks[bb].Tiles[ti][ci]
		for i := 0; i < s.NSrc; i++ {
			if s.Srcs[i].Kind == isa.SrcReg {
				s.Srcs[i].Reg = 15
			}
		}
		requireCode(t, verify.CheckMapping(m), "REG002")
	})
	t.Run("REG004 home register clobbered", func(t *testing.T) {
		m := fresh(t)
		if !clobberHome(m) {
			t.Skip("no clobberable slot on a home tile")
		}
		requireCode(t, verify.CheckMapping(m), "REG004")
	})
	t.Run("DF002 neighbor direction rotated", func(t *testing.T) {
		m := fresh(t)
		bb, ti, ci, ok := firstSlot(m, core.SlotOp, isa.SrcNbr)
		if !ok {
			t.Skip("no neighbor operand")
		}
		s := &m.Blocks[bb].Tiles[ti][ci]
		for i := 0; i < s.NSrc; i++ {
			if s.Srcs[i].Kind == isa.SrcNbr {
				s.Srcs[i].Dir = (s.Srcs[i].Dir + 1) % 4
			}
		}
		requireCode(t, verify.CheckMapping(m), "DF002")
	})
	t.Run("DF002 constant rebound", func(t *testing.T) {
		m := fresh(t)
		bb, ti, ci, ok := firstSlot(m, core.SlotOp, isa.SrcConst)
		if !ok {
			t.Skip("no constant operand")
		}
		s := &m.Blocks[bb].Tiles[ti][ci]
		for i := 0; i < s.NSrc; i++ {
			if s.Srcs[i].Kind == isa.SrcConst {
				s.Srcs[i].Val++
			}
		}
		requireCode(t, verify.CheckMapping(m), "DF002")
	})
	t.Run("DF005 home register corrupted at block end", func(t *testing.T) {
		m := fresh(t)
		if !displaceHome(m) {
			t.Skip("no displaceable home")
		}
		requireCode(t, verify.CheckMapping(m), "DF005")
	})
	t.Run("LSU001 store on a non-LSU tile", func(t *testing.T) {
		m := fresh(t)
		if !relocateMemRow(m) {
			t.Skip("no memory row to relocate")
		}
		requireCode(t, verify.CheckMapping(m), "LSU001")
	})
	t.Run("CM001 context memory exceeded", func(t *testing.T) {
		m := fresh(t)
		var cm [16]int
		for i := range cm {
			cm[i] = 2
		}
		tiny, err := arch.CustomGrid("TINY", cm)
		if err != nil {
			t.Fatal(err)
		}
		m.Grid = tiny
		requireCode(t, verify.CheckMapping(m), "CM001")
	})
	t.Run("CM002 word accounting drifted", func(t *testing.T) {
		m := fresh(t)
		m.Blocks[0].Pnops[3]++
		requireCode(t, verify.CheckMapping(m), "CM002")
	})
	t.Run("BR001 branch tile dropped", func(t *testing.T) {
		m := fresh(t)
		bb, ok := branchingBlock(m)
		if !ok {
			t.Skip("no branching block")
		}
		m.Blocks[bb].BranchTile = -1
		requireCode(t, verify.CheckMapping(m), "BR001")
	})
	t.Run("BR003 branch tile retargeted", func(t *testing.T) {
		m := fresh(t)
		bb, ok := branchingBlock(m)
		if !ok {
			t.Skip("no branching block")
		}
		m.Blocks[bb].BranchTile = (m.Blocks[bb].BranchTile + 1) % arch.TileID(m.Grid.NumTiles())
		res := verify.CheckMapping(m)
		requireCode(t, res, "BR003")
		requireCode(t, res, "BR004")
	})
}

// TestProgramFaults corrupts a fresh assembled DCFilter program per fault
// class and asserts the program-level passes report their codes.
func TestProgramFaults(t *testing.T) {
	fresh := func(t *testing.T) *asm.Program {
		return assembled(t, mapKernel(t, "DCFilter", arch.HOM64, core.FlowCAB))
	}
	t.Run("ENC001 malformed instruction", func(t *testing.T) {
		p := fresh(t)
		in, ok := findInstr(p, func(in *isa.Instr) bool { return in.Kind == isa.KOp && in.NSrc > 0 })
		if !ok {
			t.Skip("no op word")
		}
		in.NSrc = 0
		requireCode(t, verify.CheckProgram(p), "ENC001")
	})
	t.Run("ENC004 stored binary word flipped", func(t *testing.T) {
		p := fresh(t)
		for ti := range p.Tiles {
			if len(p.Tiles[ti].Binary) > 0 {
				p.Tiles[ti].Binary[0] ^= 1 << 9 // flip the writeback-register field
				break
			}
		}
		requireCode(t, verify.CheckProgram(p), "ENC004")
	})
	t.Run("PNOP001 zero-cycle pnop", func(t *testing.T) {
		p := fresh(t)
		in, ok := findInstr(p, func(in *isa.Instr) bool { return in.Kind == isa.KPnop })
		if !ok {
			t.Skip("no pnop word")
		}
		in.Count = 0
		requireCode(t, verify.CheckProgram(p), "PNOP001")
	})
	t.Run("PNOP002 segment cycle drift", func(t *testing.T) {
		p := fresh(t)
		in, ok := findInstr(p, func(in *isa.Instr) bool { return in.Kind == isa.KPnop })
		if !ok {
			t.Skip("no pnop word")
		}
		in.Count++
		requireCode(t, verify.CheckProgram(p), "PNOP002")
	})
	t.Run("PNOP003 segment span drift", func(t *testing.T) {
		p := fresh(t)
		p.Tiles[0].Segments[0].Cycles++
		requireCode(t, verify.CheckProgram(p), "PNOP003")
	})
	t.Run("BR005 block tables truncated", func(t *testing.T) {
		p := fresh(t)
		p.BlockLens = p.BlockLens[:len(p.BlockLens)-1]
		requireCode(t, verify.CheckProgram(p), "BR005")
	})
	t.Run("BR006 segment table shuffled", func(t *testing.T) {
		p := fresh(t)
		segs := p.Tiles[0].Segments
		if len(segs) < 2 {
			t.Skip("single-block program")
		}
		segs[0], segs[1] = segs[1], segs[0]
		requireCode(t, verify.CheckProgram(p), "BR006")
	})
}

// redirectToUndriven retargets some neighbor read at a direction whose
// tile has produced nothing earlier in the block.
func redirectToUndriven(m *core.Mapping) bool {
	for _, bm := range m.Blocks {
		n := m.Grid.NumTiles()
		produced := make([]bool, n)
		for cyc := 0; cyc < bm.Len; cyc++ {
			for t := 0; t < n; t++ {
				s := &bm.Tiles[t][cyc]
				if s.Kind == core.SlotEmpty {
					continue
				}
				for i := 0; i < s.NSrc; i++ {
					if s.Srcs[i].Kind != isa.SrcNbr {
						continue
					}
					for d := 0; d < 4; d++ {
						if !produced[m.Grid.Neighbors(arch.TileID(t))[d]] {
							s.Srcs[i].Dir = isa.Dir(d)
							return true
						}
					}
				}
			}
			for t := 0; t < n; t++ {
				s := bm.Tiles[t][cyc]
				if s.Kind == core.SlotMove ||
					(s.Kind == core.SlotOp && m.Graph.Blocks[bm.BB].Nodes[s.Node].Op.HasResult()) {
					produced[t] = true
				}
			}
		}
	}
	return false
}

func findWB(m *core.Mapping) (bb, tile, cyc int, ok bool) {
	for bi, bm := range m.Blocks {
		for ti, row := range bm.Tiles {
			for ci, s := range row {
				if s.Kind != core.SlotEmpty && s.WB {
					return bi, ti, ci, true
				}
			}
		}
	}
	return 0, 0, 0, false
}

// clobberHome retargets a producing slot on a home tile so it becomes
// the block's LAST write into the home register while carrying some
// other value — the end-state corruption REG004 attributes to a slot.
func clobberHome(m *core.Mapping) bool {
	for _, s := range sortedSyms(m) {
		home, ok := m.SymHomes[s]
		if !ok {
			continue
		}
		for _, bm := range m.Blocks {
			b := m.Graph.Blocks[bm.BB]
			row := bm.Tiles[home.Tile]
			// The corruption must land at or after the block's final write
			// to the home register: earlier writes are legal scratch use.
			lastLegit := -1
			for ci := range row {
				if row[ci].Kind != core.SlotEmpty && row[ci].WB && row[ci].WReg == home.Reg {
					lastLegit = ci
				}
			}
			for ci := len(row) - 1; ci > lastLegit; ci-- {
				sl := &row[ci]
				if sl.Kind == core.SlotEmpty {
					continue
				}
				if sl.Kind == core.SlotOp && !b.Nodes[sl.Node].Op.HasResult() {
					continue
				}
				// Writing the symbol's own value back to its home is legal;
				// pick a slot carrying some other value.
				nd := b.Nodes[sl.Node]
				if nd.Op == cdfg.OpSym && nd.Sym == s {
					continue
				}
				if def, live := b.LiveOut[s]; live && sl.Node == def {
					continue
				}
				sl.WB = true
				sl.WReg = home.Reg
				return true
			}
		}
	}
	return false
}

func sortedSyms(m *core.Mapping) []string {
	return m.Graph.Symbols()
}

// displaceHome moves a written symbol's home to a free register: the
// block keeps updating the old register, so the new home ends the block
// holding a stale value.
func displaceHome(m *core.Mapping) bool {
	for _, s := range sortedSyms(m) {
		home, ok := m.SymHomes[s]
		if !ok {
			continue
		}
		written := false
		for _, blk := range m.Graph.Blocks {
			if _, liveOut := blk.LiveOut[s]; liveOut {
				written = true
			}
		}
		if !written {
			continue
		}
		used := map[uint8]bool{}
		for _, h := range m.SymHomes {
			if h.Tile == home.Tile {
				used[h.Reg] = true
			}
		}
		for r := 0; r < m.Grid.RRFSize; r++ {
			if !used[uint8(r)] {
				m.SymHomes[s] = core.SymLoc{Tile: home.Tile, Reg: uint8(r)}
				return true
			}
		}
	}
	return false
}

// relocateMemRow swaps a row holding a load/store onto a non-LSU tile.
func relocateMemRow(m *core.Mapping) bool {
	for _, bm := range m.Blocks {
		b := m.Graph.Blocks[bm.BB]
		for t, row := range bm.Tiles {
			hasMem := false
			for _, s := range row {
				if s.Kind == core.SlotOp && b.Nodes[s.Node].Op.IsMem() {
					hasMem = true
				}
			}
			if !hasMem {
				continue
			}
			for t2 := 0; t2 < m.Grid.NumTiles(); t2++ {
				if m.Grid.Tile(arch.TileID(t2)).HasLSU {
					continue
				}
				bm.Tiles[t], bm.Tiles[t2] = bm.Tiles[t2], bm.Tiles[t]
				bm.Ops[t], bm.Ops[t2] = bm.Ops[t2], bm.Ops[t]
				bm.Moves[t], bm.Moves[t2] = bm.Moves[t2], bm.Moves[t]
				bm.Pnops[t], bm.Pnops[t2] = bm.Pnops[t2], bm.Pnops[t]
				return true
			}
		}
	}
	return false
}

func branchingBlock(m *core.Mapping) (cdfg.BBID, bool) {
	for _, blk := range m.Graph.Blocks {
		if blk.HasBranch() {
			return blk.ID, true
		}
	}
	return 0, false
}

func findInstr(p *asm.Program, match func(*isa.Instr) bool) (*isa.Instr, bool) {
	for ti := range p.Tiles {
		for si := range p.Tiles[ti].Segments {
			seg := &p.Tiles[ti].Segments[si]
			for ii := range seg.Instrs {
				if match(&seg.Instrs[ii]) {
					return &seg.Instrs[ii], true
				}
			}
		}
	}
	return nil, false
}
