package oracle

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cdfg"
)

// findStaticFaultSeed scans for a generated graph that passes the clean
// pipeline but classifies StaticUnsound when the stripped program is
// corrupted between the rewrite and its re-verification.
func findStaticFaultSeed(t *testing.T, clean, faulty *Pipeline, cell Cell) (*cdfg.Graph, cdfg.Memory, int64) {
	t.Helper()
	gen := cdfg.DefaultGenConfig()
	gen.MaxBodyOps = 5
	for s := int64(8000); s < 8050; s++ {
		g, mem := cdfg.Generate(rand.New(rand.NewSource(s)), gen)
		if clean.Check(g, mem, cell, s).Outcome != Pass {
			continue
		}
		if faulty.Check(g, mem, cell, s).Outcome == StaticUnsound {
			return g, mem, s
		}
	}
	t.Fatal("no seed in [8000,8050) exposes the injected strip fault")
	return nil, nil, 0
}

// TestStaticFaultInjectionShrinks proves the sweep catches analyzer and
// rewriter unsoundness: a fault injected into the stripped program (the
// same store-binding corruption the Diverged fault tests use) classifies
// as StaticUnsound — a bug outcome — shrinks like any other failure,
// and the minimized reproducer survives the .repro round trip.
func TestStaticFaultInjectionShrinks(t *testing.T) {
	cell := Cell{Mode: ModeBasic, Config: AllCells()[0].Config}
	clean := &Pipeline{}
	faulty := &Pipeline{MutateStripped: corruptStores}
	g, mem, seed := findStaticFaultSeed(t, clean, faulty, cell)

	res := faulty.Check(g, mem, cell, seed)
	if res.Outcome != StaticUnsound || !res.Outcome.Bug() {
		t.Fatalf("fault classified as %s (bug=%v), want static-unsound bug", res.Outcome, res.Outcome.Bug())
	}
	if res.Err == nil || !strings.Contains(res.Err.Error(), "strip") {
		t.Fatalf("static unsoundness carries no strip detail: %v", res.Err)
	}

	fails := func(cg *cdfg.Graph, cmem cdfg.Memory) bool {
		return faulty.Check(cg, cmem, cell, seed).Outcome == StaticUnsound
	}
	small := Shrink(g, mem, fails, 0)
	t.Logf("shrunk %d nodes -> %d nodes", g.NumNodes(), small.NumNodes())
	if !fails(small, mem) {
		t.Fatal("shrunk graph no longer exhibits the strip fault")
	}

	final := faulty.Check(small, mem, cell, seed)
	data, err := FormatRepro(small, mem, seed, final)
	if err != nil {
		t.Fatalf("FormatRepro: %v", err)
	}
	rg, rmem, err := ParseRepro(data)
	if err != nil {
		t.Fatalf("ParseRepro: %v\n%s", err, data)
	}
	if got := faulty.Check(rg, rmem, cell, seed).Outcome; got != StaticUnsound {
		t.Fatalf("parsed reproducer is %s under the fault, want static-unsound", got)
	}
	if got := clean.Check(rg, rmem, cell, seed).Outcome; got != Pass {
		t.Fatalf("parsed reproducer is %s under the clean pipeline, want pass", got)
	}
}

// TestSkipStaticKnob: SkipStatic disables the analyzer cross-check, so
// the injected strip fault goes unnoticed and the check passes — the
// knob tests of the pre-analyzer pipeline use.
func TestSkipStaticKnob(t *testing.T) {
	cell := Cell{Mode: ModeBasic, Config: AllCells()[0].Config}
	clean := &Pipeline{}
	faulty := &Pipeline{MutateStripped: corruptStores}
	g, mem, seed := findStaticFaultSeed(t, clean, faulty, cell)

	off := &Pipeline{MutateStripped: corruptStores, SkipStatic: true}
	if got := off.Check(g, mem, cell, seed).Outcome; got != Pass {
		t.Fatalf("check with SkipStatic is %s, want pass (static cross-check disabled)", got)
	}
}
