package oracle

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func TestModesAndCells(t *testing.T) {
	if got := len(Modes()); got != int(numModes) {
		t.Fatalf("Modes() returned %d modes, want %d", got, numModes)
	}
	for _, m := range Modes() {
		back, err := ModeByName(m.String())
		if err != nil || back != m {
			t.Fatalf("ModeByName(%q) = %v, %v, want %v", m.String(), back, err, m)
		}
	}
	if _, err := ModeByName("bogus"); err == nil {
		t.Fatal("ModeByName(bogus) succeeded")
	}
	cells := AllCells()
	want := len(Modes()) * len(arch.ConfigNames())
	if len(cells) != want {
		t.Fatalf("AllCells() has %d cells, want %d", len(cells), want)
	}
	seen := map[Cell]bool{}
	for _, c := range cells {
		if seen[c] {
			t.Fatalf("duplicate cell %s", c)
		}
		seen[c] = true
	}
}

func TestOutcomeClassification(t *testing.T) {
	for _, tc := range []struct {
		o   Outcome
		bug bool
	}{
		{Pass, false}, {NoMapping, false}, {Overflow, false},
		{Diverged, true}, {Failed, true}, {Illegal, true}, {Inverted, true},
		{BatchDiverged, true}, {StaticUnsound, true},
	} {
		if tc.o.Bug() != tc.bug {
			t.Errorf("%s.Bug() = %v, want %v", tc.o, tc.o.Bug(), tc.bug)
		}
	}
}

// TestSweepClean is the oracle's acceptance property: a seeded sweep of
// ≥ 200 generated CDFGs across all 5 modes × 4 CM configurations finds no
// divergence and no unexpected pipeline failure. ORACLE_SWEEP_N overrides
// the graph count (CI uses it for an explicit bounded sweep step); short
// mode and the race detector trim it.
func TestSweepClean(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 40
	}
	if raceEnabled {
		n = 25
	}
	if env := os.Getenv("ORACLE_SWEEP_N"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil || v < 1 {
			t.Fatalf("bad ORACLE_SWEEP_N %q", env)
		}
		n = v
	}
	var p Pipeline
	// ORACLE_METRICS names a JSONL file the sweep's counters are written
	// to; CI's oracle smoke step uses it to validate the metrics artifact.
	// ORACLE_SERVE additionally exposes the sweep live on that address
	// (telemetry server: /metrics, /healthz, /events) while it runs, so a
	// long sweep is observable from outside the test process.
	var fr *obs.FileRecorder
	metricsPath := os.Getenv("ORACLE_METRICS")
	if addr := os.Getenv("ORACLE_SERVE"); addr != "" {
		var srv *telemetry.Server
		var err error
		fr, srv, err = telemetry.ServeArtifacts(addr, metricsPath, "")
		if err != nil {
			t.Fatalf("ORACLE_SERVE: %v", err)
		}
		defer srv.Close()
		srv.SetReady(true)
		t.Logf("telemetry: serving on http://%s", srv.Addr())
		p.Obs = fr.Recorder
	} else if metricsPath != "" {
		fr = obs.FileOutputs(metricsPath, "")
		p.Obs = fr.Recorder
	}
	rep := p.Sweep(SweepOptions{N: n, Seed: 424200})
	if fr != nil {
		if err := fr.Flush(); err != nil {
			t.Fatalf("flushing ORACLE_METRICS: %v", err)
		}
	}
	t.Logf("\n%s", rep)
	for _, f := range rep.Failures {
		for _, bug := range f.Bugs() {
			t.Errorf("graph %d (seed %d) %s: %s: %v",
				f.Index, f.Seed, bug.Cell, bug.Outcome, bug.Err)
		}
	}
	counts := rep.Counts()
	if counts[Pass] == 0 {
		t.Fatal("sweep produced no passing cell at all")
	}
	if rep.Checked != n*len(AllCells()) {
		t.Fatalf("checked %d cells, want %d", rep.Checked, n*len(AllCells()))
	}
}

// TestSweepHarderShapes drives the generator knobs into the corners the
// default tuning rarely reaches: multi-loop nests, always-diamond bodies,
// heavy fan-out reuse and dense constant chains.
func TestSweepHarderShapes(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("short/race mode: default-shape sweep only")
	}
	gen := cdfg.DefaultGenConfig()
	gen.Loops = 2
	gen.DiamondProb = 1
	gen.FanoutBias = 0.9
	gen.ConstChainProb = 0.3
	var p Pipeline
	rep := p.Sweep(SweepOptions{N: 20, Seed: 777000, Gen: gen})
	t.Logf("\n%s", rep)
	for _, f := range rep.Failures {
		for _, bug := range f.Bugs() {
			t.Errorf("graph %d (seed %d) %s: %s: %v",
				f.Index, f.Seed, bug.Cell, bug.Outcome, bug.Err)
		}
	}
}

func TestSweepDeterministic(t *testing.T) {
	var p Pipeline
	opt := SweepOptions{N: 4, Seed: 99}
	a := p.Sweep(opt)
	opt.Workers = 1
	b := p.Sweep(opt)
	if !reflect.DeepEqual(a.ByCell, b.ByCell) {
		t.Fatalf("sweep not deterministic across worker counts:\n%s\nvs\n%s", a, b)
	}
	if len(a.Failures) != len(b.Failures) {
		t.Fatalf("failure counts differ: %d vs %d", len(a.Failures), len(b.Failures))
	}
}

// corruptStores rebinds the value operand of every store context word to
// an absurd immediate — a deliberate binding fault of exactly the class a
// broken routing or operand-binding pass would introduce. Control flow is
// untouched, so the program still terminates and only memory diverges.
func corruptStores(p *asm.Program) {
	for ti := range p.Tiles {
		tc := &p.Tiles[ti]
		for si := range tc.Segments {
			for ii := range tc.Segments[si].Instrs {
				in := &tc.Segments[si].Instrs[ii]
				if in.Kind == isa.KOp && in.Op == cdfg.OpStore {
					in.Srcs[1] = isa.Const(0x5aa5a5)
				}
			}
		}
	}
}

// TestFaultInjectionShrinks injects the binding fault above, confirms the
// oracle reports a divergence with diagnostics, and shrinks the failing
// graph to a ≤ 10-node reproducer that replays from its testdata form.
func TestFaultInjectionShrinks(t *testing.T) {
	cell := Cell{Mode: ModeBasic, Config: arch.ConfigNames()[0]}
	clean := &Pipeline{}
	faulty := &Pipeline{Mutate: corruptStores}

	gen := cdfg.DefaultGenConfig()
	gen.MaxBodyOps = 5
	var g *cdfg.Graph
	var mem cdfg.Memory
	var seed int64
	for s := int64(5000); s < 5050; s++ {
		cg, cmem := cdfg.Generate(rand.New(rand.NewSource(s)), gen)
		if clean.Check(cg, cmem, cell, s).Outcome != Pass {
			continue
		}
		if faulty.Check(cg, cmem, cell, s).Outcome == Diverged {
			g, mem, seed = cg, cmem, s
			break
		}
	}
	if g == nil {
		t.Fatal("no seed in [5000,5050) exposes the injected store fault")
	}

	res := faulty.Check(g, mem, cell, seed)
	var div *sim.DivergenceError
	if !errors.As(res.Err, &div) {
		t.Fatalf("faulty check error %v is not a *sim.DivergenceError", res.Err)
	}
	if div.Total == 0 || len(div.Mismatches) == 0 {
		t.Fatalf("divergence carries no mismatches: %+v", div)
	}
	if res.Cycles == 0 {
		t.Fatal("divergence carries no cycle count")
	}

	fails := func(cg *cdfg.Graph, cmem cdfg.Memory) bool {
		return faulty.Check(cg, cmem, cell, seed).Outcome == Diverged
	}
	small := Shrink(g, mem, fails, 0)
	t.Logf("shrunk %d nodes -> %d nodes", g.NumNodes(), small.NumNodes())
	if small.NumNodes() > 10 {
		t.Fatalf("shrinker left %d nodes, want <= 10:\n%v", small.NumNodes(), small)
	}
	if !fails(small, mem) {
		t.Fatal("shrunk graph no longer exhibits the fault")
	}

	// The reproducer must survive its own file format and still diverge.
	final := faulty.Check(small, mem, cell, seed)
	data, err := FormatRepro(small, mem, seed, final)
	if err != nil {
		t.Fatalf("FormatRepro: %v", err)
	}
	rg, rmem, err := ParseRepro(data)
	if err != nil {
		t.Fatalf("ParseRepro: %v\n%s", err, data)
	}
	if faulty.Check(rg, rmem, cell, seed).Outcome != Diverged {
		t.Fatal("parsed reproducer no longer diverges under the fault")
	}
	// And it must pass cleanly without the fault: that is what makes it a
	// permanent regression guard (see TestReproReplay).
	if got := clean.Check(rg, rmem, cell, seed).Outcome; got != Pass {
		t.Fatalf("parsed reproducer is %s under the clean pipeline, want pass", got)
	}

	if os.Getenv("ORACLE_WRITE_REPRO") != "" {
		path, err := WriteRepro(filepath.Join("testdata", "repro"), "store-binding-fault",
			small, mem, seed, final)
		if err != nil {
			t.Fatalf("WriteRepro: %v", err)
		}
		t.Logf("wrote %s", path)
	}
}

// corruptWriteback retargets the first writeback in the mapping to a
// register beyond the 8-entry RRF. The mapping stays structurally valid
// (core.Validate and the assembler accept it; the encoding has 4 register
// bits) but is statically illegal — the class of fault only the verifier
// catches before hardware would silently truncate or trap.
func corruptWriteback(m *core.Mapping) {
	for _, bm := range m.Blocks {
		for t := range bm.Tiles {
			for c := range bm.Tiles[t] {
				s := &bm.Tiles[t][c]
				if s.Kind != core.SlotEmpty && s.WB {
					s.WReg = 15
					return
				}
			}
		}
	}
}

// TestIllegalClassification plants a mapping-level fault upstream of the
// static verifier and checks the oracle classifies it as Illegal — a bug
// outcome the shrinker minimizes like a divergence.
func TestIllegalClassification(t *testing.T) {
	cell := Cell{Mode: ModeBasic, Config: arch.ConfigNames()[0]}
	clean := &Pipeline{}
	faulty := &Pipeline{MutateMapping: corruptWriteback}

	gen := cdfg.DefaultGenConfig()
	gen.MaxBodyOps = 5
	var g *cdfg.Graph
	var mem cdfg.Memory
	var seed int64
	for s := int64(6000); s < 6050; s++ {
		cg, cmem := cdfg.Generate(rand.New(rand.NewSource(s)), gen)
		if clean.Check(cg, cmem, cell, s).Outcome != Pass {
			continue
		}
		if faulty.Check(cg, cmem, cell, s).Outcome == Illegal {
			g, mem, seed = cg, cmem, s
			break
		}
	}
	if g == nil {
		t.Fatal("no seed in [6000,6050) exposes the writeback fault as Illegal")
	}

	res := faulty.Check(g, mem, cell, seed)
	if !res.Outcome.Bug() {
		t.Fatalf("Illegal must classify as a bug, got %s", res.Outcome)
	}
	if res.Err == nil || !strings.Contains(res.Err.Error(), "static verification") {
		t.Fatalf("Illegal result should carry the verifier error, got %v", res.Err)
	}

	fails := func(cg *cdfg.Graph, cmem cdfg.Memory) bool {
		return faulty.Check(cg, cmem, cell, seed).Outcome == Illegal
	}
	small := Shrink(g, mem, fails, 0)
	t.Logf("shrunk %d nodes -> %d nodes", g.NumNodes(), small.NumNodes())
	if !fails(small, mem) {
		t.Fatal("shrunk graph no longer verifies as Illegal")
	}
	if got := clean.Check(small, mem, cell, seed).Outcome; got != Pass {
		t.Fatalf("shrunk graph is %s under the clean pipeline, want pass", got)
	}
}

// TestReproReplay replays every checked-in reproducer on every cell:
// graphs that once exposed a bug keep guarding the mapper in plain
// `go test`. A reproducer whose metadata names a backend pair replays
// through the cross-backend differential instead of the interpreter
// pipeline — that is the bug it recorded.
func TestReproReplay(t *testing.T) {
	paths, err := ReproPaths(filepath.Join("testdata", "repro"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no reproducers under testdata/repro")
	}
	var p Pipeline
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			g, mem, meta, err := LoadReproMeta(path)
			if err != nil {
				t.Fatalf("LoadReproMeta: %v", err)
			}
			if meta.BackendDiff() {
				pair, err := meta.Pair()
				if err != nil {
					t.Fatalf("backend pair: %v", err)
				}
				// The replay guards the disagreement, not search depth: a
				// bounded exact search keeps the whole-matrix replay fast.
				bp := Pipeline{ExactNodeBudget: 3000}
				for _, r := range bp.CheckBackendsAll(g, mem, pair, nil, 1) {
					if r.Outcome.Bug() {
						t.Errorf("%s: %s: %v", r.Cell, r.Outcome, r.Err)
					}
				}
				return
			}
			for _, r := range p.CheckAll(g, mem, nil, 1) {
				if r.Outcome.Bug() {
					t.Errorf("%s: %s: %v", r.Cell, r.Outcome, r.Err)
				}
			}
		})
	}
}

func TestReproParseErrors(t *testing.T) {
	for _, tc := range []struct{ name, data string }{
		{"empty", ""},
		{"no mem", "cdfg \"x\"\nend\n"},
		{"bad mem len", "mem x\n"},
		{"memval out of range", "mem 2\nmemval 7 1\n"},
		{"memval before mem", "memval 0 1\nmem 2\n"},
		{"garbage graph", "mem 2\nwat 1 2\n"},
		{"backends missing subject", "backends heuristic\nmem 2\n"},
		{"backends unknown name", "backends heuristic wat\nmem 2\n"},
	} {
		if _, _, err := ParseRepro([]byte(tc.data)); err == nil {
			t.Errorf("%s: ParseRepro succeeded", tc.name)
		}
	}
}

func TestCheckReportsNoMappingCleanly(t *testing.T) {
	// A graph needing more parallel live values than the 4×4 grid can hold
	// in one block may fail to map; whatever happens must never be a bug
	// outcome on any cell. Use an adversarial generator tuning.
	gen := cdfg.DefaultGenConfig()
	gen.MaxBodyOps = 40
	gen.MinBodyOps = 40
	gen.FanoutBias = 0
	var p Pipeline
	for s := int64(0); s < 3; s++ {
		g, mem := cdfg.Generate(rand.New(rand.NewSource(s)), gen)
		for _, r := range p.CheckAll(g, mem, nil, s) {
			if r.Outcome.Bug() {
				t.Errorf("seed %d %s: %s: %v", s, r.Cell, r.Outcome, r.Err)
			}
		}
	}
}
