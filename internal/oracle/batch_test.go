package oracle

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cdfg"
	"repro/internal/obs"
)

// corruptLaneInput is the batch-side fault injection: it perturbs lane
// 1's input memory after the scalar reference is taken, so the engine
// lane legitimately computes a different run than the reference — the
// exact observable a real batch-engine bug (lane state crosstalk, wrong
// lane routing) would produce.
func corruptLaneInput(lanes []cdfg.Memory) {
	if len(lanes) > 1 && len(lanes[1]) > 0 {
		lanes[1][0] ^= 0x55aa
	}
}

// findBatchFaultSeed scans for a generated graph that passes the clean
// pipeline but classifies BatchDiverged under lane-input corruption.
func findBatchFaultSeed(t *testing.T, clean, faulty *Pipeline, cell Cell) (*cdfg.Graph, cdfg.Memory, int64) {
	t.Helper()
	gen := cdfg.DefaultGenConfig()
	gen.MaxBodyOps = 5
	for s := int64(7000); s < 7050; s++ {
		g, mem := cdfg.Generate(rand.New(rand.NewSource(s)), gen)
		if clean.Check(g, mem, cell, s).Outcome != Pass {
			continue
		}
		if faulty.Check(g, mem, cell, s).Outcome == BatchDiverged {
			return g, mem, s
		}
	}
	t.Fatal("no seed in [7000,7050) exposes the injected batch fault")
	return nil, nil, 0
}

// TestBatchFaultInjectionShrinks proves the sweep catches batch-engine
// divergence: an injected lane-input fault classifies as BatchDiverged
// (a bug outcome), shrinks like any other failure, and the minimized
// reproducer survives the .repro round trip — diverging under the fault
// and passing the clean pipeline.
func TestBatchFaultInjectionShrinks(t *testing.T) {
	cell := Cell{Mode: ModeBasic, Config: AllCells()[0].Config}
	clean := &Pipeline{}
	faulty := &Pipeline{MutateBatch: corruptLaneInput}
	g, mem, seed := findBatchFaultSeed(t, clean, faulty, cell)

	res := faulty.Check(g, mem, cell, seed)
	if res.Outcome != BatchDiverged || !res.Outcome.Bug() {
		t.Fatalf("fault classified as %s (bug=%v), want batch-diverged bug", res.Outcome, res.Outcome.Bug())
	}
	if res.Err == nil || !strings.Contains(res.Err.Error(), "lane") {
		t.Fatalf("batch divergence carries no lane detail: %v", res.Err)
	}

	fails := func(cg *cdfg.Graph, cmem cdfg.Memory) bool {
		return faulty.Check(cg, cmem, cell, seed).Outcome == BatchDiverged
	}
	small := Shrink(g, mem, fails, 0)
	t.Logf("shrunk %d nodes -> %d nodes", g.NumNodes(), small.NumNodes())
	if !fails(small, mem) {
		t.Fatal("shrunk graph no longer exhibits the batch fault")
	}

	final := faulty.Check(small, mem, cell, seed)
	data, err := FormatRepro(small, mem, seed, final)
	if err != nil {
		t.Fatalf("FormatRepro: %v", err)
	}
	rg, rmem, err := ParseRepro(data)
	if err != nil {
		t.Fatalf("ParseRepro: %v\n%s", err, data)
	}
	if got := faulty.Check(rg, rmem, cell, seed).Outcome; got != BatchDiverged {
		t.Fatalf("parsed reproducer is %s under the fault, want batch-diverged", got)
	}
	if got := clean.Check(rg, rmem, cell, seed).Outcome; got != Pass {
		t.Fatalf("parsed reproducer is %s under the clean pipeline, want pass", got)
	}
}

// TestBatchLanesKnob: negative BatchLanes disables the batch
// differential, so the injected fault goes unnoticed and the check
// passes — the knob sweeps use to time-box cells.
func TestBatchLanesKnob(t *testing.T) {
	cell := Cell{Mode: ModeBasic, Config: AllCells()[0].Config}
	clean := &Pipeline{}
	faulty := &Pipeline{MutateBatch: corruptLaneInput}
	g, mem, seed := findBatchFaultSeed(t, clean, faulty, cell)

	off := &Pipeline{MutateBatch: corruptLaneInput, BatchLanes: -1}
	if got := off.Check(g, mem, cell, seed).Outcome; got != Pass {
		t.Fatalf("check with BatchLanes=-1 is %s, want pass (batch differential disabled)", got)
	}
	wide := &Pipeline{MutateBatch: corruptLaneInput, BatchLanes: 4}
	if got := wide.Check(g, mem, cell, seed).Outcome; got != BatchDiverged {
		t.Fatalf("check with BatchLanes=4 is %s, want batch-diverged", got)
	}
}

// TestCheckEmitsSimCounters pins the obs plumbing through the oracle's
// simulator: a Check with a recorder attached must publish the
// simulator's run counters and the engine's batch counters, like the
// CLIs do.
func TestCheckEmitsSimCounters(t *testing.T) {
	gen := cdfg.DefaultGenConfig()
	gen.MaxBodyOps = 5
	cell := Cell{Mode: ModeBasic, Config: AllCells()[0].Config}
	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	p := &Pipeline{Obs: rec}
	var passed bool
	for s := int64(1); s < 20 && !passed; s++ {
		g, mem := cdfg.Generate(rand.New(rand.NewSource(s)), gen)
		passed = p.Check(g, mem, cell, s).Outcome == Pass
	}
	if !passed {
		t.Fatal("no generated graph passed in 20 seeds")
	}
	for _, name := range []string{"sim.runs", "sim.cycles", "sim.engine.batches", "sim.engine.lanes"} {
		if v := rec.Counter(name).Value(); v <= 0 {
			t.Errorf("counter %s = %d after a passing check, want > 0", name, v)
		}
	}
}
