package oracle

import (
	"repro/internal/cdfg"
)

// FailFn reports whether a candidate graph still exhibits the failure
// being minimized. It must be deterministic; the shrinker calls it on
// verifier-clean graphs that interpret without error.
type FailFn func(g *cdfg.Graph, mem cdfg.Memory) bool

// Shrink greedily minimizes a failing graph: it repeatedly applies the
// cdfg graph-surgery transformations (straighten a branch, drop a
// live-out, drop a store, bypass a node, shrink a constant), keeps any
// candidate that still verifies, still interprets cleanly, and still
// fails, and stops at a fixpoint or after maxRounds accepted steps.
// The initial memory is held fixed; only the graph shrinks.
//
// The result is the smallest graph found — typically a handful of nodes
// for real mapper bugs, which is what makes the testdata reproducers
// readable and fast to replay.
//
// Shrink is the uninstrumented form; Pipeline.Shrink performs the same
// minimization and additionally emits per-step events to the pipeline's
// recorder.
func Shrink(g *cdfg.Graph, mem cdfg.Memory, fails FailFn, maxRounds int) *cdfg.Graph {
	return (&Pipeline{}).Shrink(g, mem, fails, maxRounds)
}

// shrinkStep returns the first strictly smaller failing candidate, or nil
// at a fixpoint. Transformations are tried in a deterministic order from
// coarsest (control flow) to finest (single constants).
func shrinkStep(g *cdfg.Graph, mem cdfg.Memory, fails FailFn) *cdfg.Graph {
	try := func(mutate func(*cdfg.Graph) bool) *cdfg.Graph {
		c := g.Clone()
		if !mutate(c) {
			return nil
		}
		cdfg.EliminateDeadNodes(c)
		cdfg.RemoveUnreachable(c)
		if !smaller(c, g) {
			return nil
		}
		if cdfg.Verify(c) != nil {
			return nil
		}
		if _, err := cdfg.Interp(c, mem.Clone()); err != nil {
			return nil
		}
		if !fails(c, mem) {
			return nil
		}
		return c
	}

	// Straighten branches: removes whole loop bodies or arms at once.
	for bb := range g.Blocks {
		for _, takeFirst := range []bool{false, true} {
			bb, takeFirst := cdfg.BBID(bb), takeFirst
			if c := try(func(c *cdfg.Graph) bool { return cdfg.Straighten(c, bb, takeFirst) }); c != nil {
				return c
			}
		}
	}
	// Drop live-outs: frees the defining chains for dead-code removal.
	for bb, b := range g.Blocks {
		for _, sym := range b.LiveOutSyms() {
			bb, sym := cdfg.BBID(bb), sym
			if c := try(func(c *cdfg.Graph) bool {
				delete(c.Blocks[bb].LiveOut, sym)
				return true
			}); c != nil {
				return c
			}
		}
	}
	// Drop stores: each store anchors an address and a value chain.
	for bb, b := range g.Blocks {
		for _, n := range b.Nodes {
			if n.Op != cdfg.OpStore {
				continue
			}
			bb, id := cdfg.BBID(bb), n.ID
			if c := try(func(c *cdfg.Graph) bool {
				return cdfg.RemoveNodes(c, bb, func(x cdfg.NodeID) bool { return x == id })
			}); c != nil {
				return c
			}
		}
	}
	// Bypass nodes: forward a node's first operand to its users.
	for bb, b := range g.Blocks {
		for _, n := range b.Nodes {
			if n.Op == cdfg.OpConst || n.Op == cdfg.OpSym || n.Op == cdfg.OpStore || n.Op == cdfg.OpBr {
				continue
			}
			bb, id := cdfg.BBID(bb), n.ID
			if c := try(func(c *cdfg.Graph) bool { return cdfg.BypassNode(c, bb, id) }); c != nil {
				return c
			}
		}
	}
	// Shrink constants toward zero: reduces trip counts and addresses.
	for bb, b := range g.Blocks {
		for _, n := range b.Nodes {
			if n.Op != cdfg.OpConst || n.Val == 0 {
				continue
			}
			bb, id := cdfg.BBID(bb), n.ID
			for _, v := range []int32{0, 1, n.Val / 2} {
				v := v
				if v == n.Val {
					continue
				}
				if c := try(func(c *cdfg.Graph) bool {
					c.Blocks[bb].Nodes[id].Val = v
					return true
				}); c != nil {
					return c
				}
			}
		}
	}
	return nil
}

// smaller orders graphs by node count, then block count, then total
// constant magnitude — the measure the greedy shrinker descends.
func smaller(a, b *cdfg.Graph) bool {
	an, bn := a.NumNodes(), b.NumNodes()
	if an != bn {
		return an < bn
	}
	if len(a.Blocks) != len(b.Blocks) {
		return len(a.Blocks) < len(b.Blocks)
	}
	return constMass(a) < constMass(b)
}

func constMass(g *cdfg.Graph) int64 {
	var mass int64
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if n.Op == cdfg.OpConst {
				v := int64(n.Val)
				if v < 0 {
					v = -v
				}
				mass += v
			}
		}
	}
	return mass
}
