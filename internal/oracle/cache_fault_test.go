package oracle

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/mapcache"
	"repro/internal/obs"
)

// TestCacheDifferentialClean: with a cache directory attached, a clean
// sweep of generated graphs — each checked twice so the second pass reads
// the first pass's disk entries — stays all-pass and actually exercises
// both cache tiers.
func TestCacheDifferentialClean(t *testing.T) {
	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	p := &Pipeline{CacheDir: t.TempDir(), Obs: rec}
	cell := Cell{Mode: ModeCAB, Config: arch.HOM32}
	gen := cdfg.DefaultGenConfig()
	gen.MaxBodyOps = 6
	for s := int64(300); s < 306; s++ {
		g, mem := cdfg.Generate(rand.New(rand.NewSource(s)), gen)
		for pass := 0; pass < 2; pass++ {
			if res := p.Check(g, mem, cell, s); res.Outcome != Pass && res.Outcome != NoMapping {
				t.Fatalf("seed %d pass %d: %s: %v", s, pass, res.Outcome, res.Err)
			}
		}
	}
	if rec.Counter("mapcache.disk_store").Value() == 0 {
		t.Error("cache differential never stored a disk entry")
	}
	if rec.Counter("mapcache.disk_hit").Value() == 0 {
		t.Error("cache differential never hit the disk tier")
	}
	if got := rec.Counter("oracle.outcome.cache_stale").Value(); got != 0 {
		t.Errorf("clean sweep produced %d cache-stale outcomes", got)
	}
}

// TestCachePoisonEntryRejected proves the disk tier's re-verify gate: a
// checksum-consistent but corrupted entry planted between the cold and
// warm passes must be rejected (mapcache.disk_reject) and transparently
// recomputed, so the check still passes with a byte-identical bitstream.
func TestCachePoisonEntryRejected(t *testing.T) {
	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	dir := t.TempDir()
	p := &Pipeline{
		CacheDir: dir,
		Obs:      rec,
		MutateCacheEntry: func(dir string, g *cdfg.Graph, grid *arch.Grid) error {
			files, err := mapcache.EntryFiles(dir)
			if err != nil {
				return err
			}
			for _, f := range files {
				// Zero the image's tail: the envelope digest is recomputed
				// (so the checksum passes) but the decoded program no longer
				// matches what the graph needs — only the verify gate can
				// catch this.
				err := mapcache.RewriteEntry(f, func(img []byte) []byte {
					for i := len(img) - 8; i >= 16 && i >= len(img)-64; i -= 8 {
						copy(img[i:i+8], make([]byte, 8))
					}
					return img
				})
				if err != nil {
					return err
				}
			}
			return nil
		},
	}
	cell := Cell{Mode: ModeCAB, Config: arch.HOM32}
	gen := cdfg.DefaultGenConfig()
	gen.MaxBodyOps = 6
	checked := false
	for s := int64(400); s < 410 && !checked; s++ {
		g, mem := cdfg.Generate(rand.New(rand.NewSource(s)), gen)
		res := p.Check(g, mem, cell, s)
		if res.Outcome == NoMapping {
			continue
		}
		if res.Outcome != Pass {
			t.Fatalf("seed %d: poisoned entry leaked: %s: %v", s, res.Outcome, res.Err)
		}
		checked = true
	}
	if !checked {
		t.Fatal("no generated graph mapped in seed range [400,410)")
	}
	if rec.Counter("mapcache.disk_reject").Value() == 0 {
		t.Error("poisoned disk entry was never rejected — the re-verify gate did not fire")
	}
}

// wrongImageFault returns a MutateCacheEntry that swaps every stored
// entry's bitstream for a legal program of the same graph compiled under
// different tuning — a corruption that passes both the envelope checksum
// and the structural verify gate, which is exactly the class of fault
// only the cold-vs-warm byte comparison can catch.
func wrongImageFault(t *testing.T) func(dir string, g *cdfg.Graph, grid *arch.Grid) error {
	return func(dir string, g *cdfg.Graph, grid *arch.Grid) error {
		opt := core.DefaultOptions(core.FlowCAB)
		opt.Seed = 1713
		m, err := core.Map(g, grid, opt)
		if err != nil {
			return nil // alternative tuning found no mapping; leave entries alone
		}
		prog, err := asm.Assemble(m)
		if err != nil {
			return err
		}
		img, err := asm.SaveImage(prog)
		if err != nil {
			return err
		}
		files, err := mapcache.EntryFiles(dir)
		if err != nil {
			return err
		}
		for _, f := range files {
			if err := mapcache.RewriteEntry(f, func([]byte) []byte { return img }); err != nil {
				return err
			}
		}
		return nil
	}
}

// findCacheStaleSeed scans for a generated graph where the wrong-image
// fault actually bites: the graph passes clean, its canonical block order
// is the identity (so the planted original-order image is read back
// unpermuted), and the alternative tuning compiles to different bytes.
func findCacheStaleSeed(t *testing.T, clean, faulty *Pipeline, cell Cell) (*cdfg.Graph, cdfg.Memory, int64) {
	t.Helper()
	gen := cdfg.DefaultGenConfig()
	gen.MaxBodyOps = 5
	for s := int64(9000); s < 9060; s++ {
		// A fresh directory per probe: once a wrong image has been planted
		// it becomes the entry both passes agree on, so a reused directory
		// would mask the fault on every check after the first.
		faulty.CacheDir = t.TempDir()
		g, mem := cdfg.Generate(rand.New(rand.NewSource(s)), gen)
		canon, err := mapcache.Canonicalize(g)
		if err != nil {
			continue
		}
		identity := true
		for i, ci := range canon.BlockPerm {
			if i != ci {
				identity = false
			}
		}
		if !identity {
			continue
		}
		if clean.Check(g, mem, cell, s).Outcome != Pass {
			continue
		}
		if faulty.Check(g, mem, cell, s).Outcome == CacheStale {
			return g, mem, s
		}
	}
	t.Fatal("no seed in [9000,9060) exposes the wrong-image cache fault")
	return nil, nil, 0
}

// TestCacheStaleFaultInjectionShrinks proves the sweep catches a cache
// serving the wrong bitstream: a legal-but-different image planted in the
// disk tier classifies as CacheStale — a bug outcome — and shrinks like
// any other failure.
func TestCacheStaleFaultInjectionShrinks(t *testing.T) {
	cell := Cell{Mode: ModeBasic, Config: arch.HOM64}
	clean := &Pipeline{CacheDir: t.TempDir()}
	faulty := &Pipeline{CacheDir: t.TempDir(), MutateCacheEntry: wrongImageFault(t)}
	g, mem, seed := findCacheStaleSeed(t, clean, faulty, cell)

	faulty.CacheDir = t.TempDir()
	res := faulty.Check(g, mem, cell, seed)
	if res.Outcome != CacheStale || !res.Outcome.Bug() {
		t.Fatalf("fault classified as %s (bug=%v), want cache-stale bug", res.Outcome, res.Outcome.Bug())
	}
	if res.Err == nil || !strings.Contains(res.Err.Error(), "byte-identical") {
		t.Fatalf("cache-stale outcome carries no detail: %v", res.Err)
	}

	fails := func(cg *cdfg.Graph, cmem cdfg.Memory) bool {
		faulty.CacheDir = t.TempDir()
		return faulty.Check(cg, cmem, cell, seed).Outcome == CacheStale
	}
	small := Shrink(g, mem, fails, 0)
	t.Logf("shrunk %d nodes -> %d nodes", g.NumNodes(), small.NumNodes())
	if !fails(small, mem) {
		t.Fatal("shrunk graph no longer exhibits the cache fault")
	}
	if got := clean.Check(small, mem, cell, seed).Outcome; got.Bug() {
		t.Fatalf("shrunk graph fails the clean pipeline too: %s", got)
	}
}

// TestCacheWarmIsomorphicSweep: the warm pass of an isomorphic relabeling
// must serve the identical canonical entry — same bytes after permuting
// back — across the disk tier. This is the oracle-level version of the
// mapcache package's isomorphic-hit test, run through the full pipeline.
func TestCacheWarmIsomorphicSweep(t *testing.T) {
	dir := t.TempDir()
	cell := Cell{Mode: ModeCAB, Config: arch.HOM32}
	gen := cdfg.DefaultGenConfig()
	gen.MaxBodyOps = 6
	g, mem := cdfg.Generate(rand.New(rand.NewSource(321)), gen)
	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	p := &Pipeline{CacheDir: dir, Obs: rec}
	if res := p.Check(g, mem, cell, 321); res.Outcome != Pass {
		t.Skipf("base graph does not pass: %s", res.Outcome)
	}

	// Relabel the graph; the pipeline must still pass and the cache key
	// must land on the same canonical entry.
	pg := permuteOracleGraph(g, rand.New(rand.NewSource(99)))
	c1, err := mapcache.Canonicalize(g)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := mapcache.Canonicalize(pg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Text, c2.Text) {
		t.Fatal("relabeled graph does not canonicalize to the same text")
	}
	if res := p.Check(pg, mem, cell, 321); res.Outcome != Pass {
		t.Fatalf("relabeled graph: %s: %v", res.Outcome, res.Err)
	}
}

// permuteOracleGraph renames blocks and the graph — a mild relabeling
// that keeps node numbering (the interpreter's memory-op order must be
// preserved for the oracle's reference run to agree).
func permuteOracleGraph(g *cdfg.Graph, rng *rand.Rand) *cdfg.Graph {
	ng := g.Clone()
	ng.Name = "relabeled"
	base := rng.Intn(100)
	for i, b := range ng.Blocks {
		b.Name = fmt.Sprintf("blk%d", base+i)
	}
	return ng
}
