package oracle

import (
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/cdfg"
)

// testExactBudget bounds the exact backend in every test here: large
// enough that the search improves on the heuristic now and then, small
// enough that a sweep of generated graphs stays in CI's time budget, and
// explicit so the sweep never silently depends on CGRA_EXACT_NODE_BUDGET
// leaking in from the environment.
const testExactBudget = 3000

func TestBackendPairByNames(t *testing.T) {
	pair, err := BackendPairByNames("heuristic", "exact")
	if err != nil {
		t.Fatal(err)
	}
	if pair.Ref.Name() != "heuristic" || pair.Sub.Name() != "exact" {
		t.Fatalf("resolved pair %s", pair)
	}
	if pair.String() != "heuristic vs exact" {
		t.Fatalf("pair string %q", pair)
	}
	for _, bad := range [][2]string{{"wat", "exact"}, {"heuristic", "wat"}} {
		if _, err := BackendPairByNames(bad[0], bad[1]); err == nil {
			t.Errorf("BackendPairByNames(%q, %q) succeeded", bad[0], bad[1])
		}
	}
}

// TestBackendDiffSweepClean is the cross-backend acceptance property: a
// seeded sweep of generated CDFGs diffing the exact search against the
// heuristic across all 5 modes × 4 CM configurations finds zero
// disagreements — no illegal mapping from either backend and no cost
// inversion. ORACLE_BACKEND_DIFF_N overrides the graph count (CI runs an
// explicit bounded smoke); short mode and the race detector trim it.
func TestBackendDiffSweepClean(t *testing.T) {
	n := 25
	if testing.Short() {
		n = 8
	}
	if raceEnabled {
		n = 5
	}
	if env := os.Getenv("ORACLE_BACKEND_DIFF_N"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil || v < 1 {
			t.Fatalf("bad ORACLE_BACKEND_DIFF_N %q", env)
		}
		n = v
	}
	p := &Pipeline{ExactNodeBudget: testExactBudget}
	if os.Getenv("CGRA_EXACT_NODE_BUDGET") != "" {
		// The CI smoke bounds the search through the env knob; zero here
		// defers budget resolution to it.
		p.ExactNodeBudget = 0
	}
	rep := p.BackendSweep(DefaultBackendPair(), SweepOptions{N: n, Seed: 500})
	t.Log("\n" + rep.String())
	if rep.Checked != n*len(AllCells()) {
		t.Errorf("checked %d cells, want %d", rep.Checked, n*len(AllCells()))
	}
	for _, f := range rep.Failures {
		for _, b := range f.Bugs() {
			t.Errorf("graph %d (seed %d) %s: %s: %v", f.Index, f.Seed, b.Cell, b.Outcome, b.Err)
		}
	}
}

// TestBackendSweepDeterministic pins that the report is a pure function
// of the options: worker count must not affect any count.
func TestBackendSweepDeterministic(t *testing.T) {
	opt := SweepOptions{N: 4, Seed: 900}
	p := &Pipeline{ExactNodeBudget: testExactBudget}
	var base *BackendSweepReport
	for _, workers := range []int{1, 4} {
		opt.Workers = workers
		rep := p.BackendSweep(DefaultBackendPair(), opt)
		if base == nil {
			base = rep
			continue
		}
		if !reflect.DeepEqual(base.ByCell, rep.ByCell) {
			t.Errorf("ByCell differs between 1 and %d workers:\n%v\nvs\n%v",
				workers, base.ByCell, rep.ByCell)
		}
	}
}

// TestBackendDiffCatchesPlantedFault proves the differential is a live
// oracle: a fault planted in the subject's mapping must classify as
// Illegal, shrink to a small reproducer via BackendFailFn, and round-trip
// through the cross-backend .repro format with its backend pair intact.
func TestBackendDiffCatchesPlantedFault(t *testing.T) {
	cell := Cell{Mode: ModeBasic, Config: arch.ConfigNames()[0]}
	pair := DefaultBackendPair()
	clean := &Pipeline{ExactNodeBudget: testExactBudget}
	faulty := &Pipeline{ExactNodeBudget: testExactBudget, MutateMapping: corruptWriteback}

	gen := cdfg.DefaultGenConfig()
	gen.MaxBodyOps = 5
	var g *cdfg.Graph
	var mem cdfg.Memory
	var seed int64
	for s := int64(6000); s < 6050; s++ {
		cg, cmem := cdfg.Generate(rand.New(rand.NewSource(s)), gen)
		if clean.CheckBackends(cg, cmem, pair, cell, s).Outcome != Pass {
			continue
		}
		if faulty.CheckBackends(cg, cmem, pair, cell, s).Outcome == Illegal {
			g, mem, seed = cg, cmem, s
			break
		}
	}
	if g == nil {
		t.Fatal("no seed in [6000,6050) exposes the writeback fault as Illegal")
	}

	res := faulty.CheckBackends(g, mem, pair, cell, seed)
	if !res.Outcome.Bug() {
		t.Fatalf("planted fault must classify as a bug, got %s", res.Outcome)
	}
	if res.Err == nil || !strings.Contains(res.Err.Error(), pair.Sub.Name()) {
		t.Fatalf("diagnosis should name the guilty backend, got %v", res.Err)
	}

	small := Shrink(g, mem, faulty.BackendFailFn(pair, cell, seed), 0)
	t.Logf("shrunk %d nodes -> %d nodes", g.NumNodes(), small.NumNodes())
	shrunk := faulty.CheckBackends(small, mem, pair, cell, seed)
	if !shrunk.Outcome.Bug() {
		t.Fatal("shrunk graph no longer disagrees")
	}
	if got := clean.CheckBackends(small, mem, pair, cell, seed).Outcome; got.Bug() {
		t.Fatalf("shrunk graph is %s under the clean pipeline, want no bug", got)
	}

	data, err := FormatBackendRepro(small, mem, seed, pair, shrunk)
	if err != nil {
		t.Fatal(err)
	}
	rg, rmem, meta, err := ParseReproMeta(data)
	if err != nil {
		t.Fatalf("ParseReproMeta on formatted repro: %v\n%s", err, data)
	}
	if !meta.BackendDiff() || meta.RefBackend != pair.Ref.Name() || meta.SubBackend != pair.Sub.Name() {
		t.Fatalf("round-tripped meta %+v lost the pair %s", meta, pair)
	}
	if rp, err := meta.Pair(); err != nil || rp.String() != pair.String() {
		t.Fatalf("meta.Pair() = %v, %v", rp, err)
	}
	if rg.NumNodes() != small.NumNodes() || len(rmem) != len(mem) {
		t.Fatalf("round-trip changed the reproducer: %d nodes/%d mem vs %d/%d",
			rg.NumNodes(), len(rmem), small.NumNodes(), len(mem))
	}
	// The classic parser must also accept the file (the fuzz corpus and
	// FuzzGraphEndToEnd seed from every .repro via ParseRepro).
	if _, _, err := ParseRepro(data); err != nil {
		t.Fatalf("ParseRepro on backend repro: %v", err)
	}
}

// TestBackendDiffInvertedClassification pins the Inverted outcome: when
// the subject's mapping costs more words than the reference's, the check
// reports a cost inversion (here forced by diffing the pair in reverse —
// the heuristic as subject loses to the exact search whenever the search
// strictly improves).
func TestBackendDiffInvertedClassification(t *testing.T) {
	reversed := BackendPair{Ref: DefaultBackendPair().Sub, Sub: DefaultBackendPair().Ref}
	p := &Pipeline{ExactNodeBudget: testExactBudget}
	gen := cdfg.DefaultGenConfig()
	// Seed 139 is a known strict improvement of the exact search on
	// basic/HOM64 under testExactBudget; the window around it keeps the
	// test robust to small search changes without sweeping the matrix.
	for s := int64(135); s < 150; s++ {
		g, mem := cdfg.Generate(rand.New(rand.NewSource(s)), gen)
		for _, cfg := range arch.ConfigNames() {
			r := p.CheckBackends(g, mem, reversed, Cell{Mode: ModeBasic, Config: cfg}, s)
			if r.Outcome != Inverted {
				continue
			}
			if r.SubWords <= r.RefWords {
				t.Fatalf("Inverted with sub %d <= ref %d", r.SubWords, r.RefWords)
			}
			if r.Err == nil || !strings.Contains(r.Err.Error(), "cost inversion") {
				t.Fatalf("Inverted without diagnosis: %v", r.Err)
			}
			return
		}
	}
	t.Skip("no seed in [135,150) makes the exact search strictly improve; inversion path untested here")
}
