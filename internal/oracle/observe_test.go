package oracle

import (
	"math/rand"
	"testing"

	"repro/internal/cdfg"
	"repro/internal/obs"
)

// TestSweepObs checks the sweep's recorder wiring: outcome-class counters
// mirror the report exactly, and the timeline carries the sweep span, one
// graph span per generated graph and per-graph progress events.
func TestSweepObs(t *testing.T) {
	sink := obs.NewBufferSink(0)
	p := Pipeline{Obs: obs.NewRecorder(obs.NewRegistry(), sink)}
	const n = 4
	rep := p.Sweep(SweepOptions{N: n, Seed: 99})

	reg := p.Obs.Registry()
	if got := reg.Counter("oracle.checks").Value(); got != int64(rep.Checked) {
		t.Errorf("oracle.checks = %d, want %d", got, rep.Checked)
	}
	if got := reg.Counter("oracle.graphs").Value(); got != n {
		t.Errorf("oracle.graphs = %d, want %d", got, n)
	}
	for o, want := range rep.Counts() {
		if got := reg.Counter("oracle.outcome." + outcomeCounter(o)).Value(); got != int64(want) {
			t.Errorf("oracle.outcome.%s = %d, want %d", outcomeCounter(o), got, want)
		}
	}

	// Spans emit a begin and an end event; the end carries the args and
	// the duration, so it is the one counted here.
	var sweeps, graphs, progress int
	for _, e := range sink.Events() {
		switch {
		case e.Name == "oracle.sweep" && e.Ph == obs.PhaseEnd:
			sweeps++
			if e.Args["checked"] != rep.Checked {
				t.Errorf("sweep span args %+v do not carry checked=%d", e.Args, rep.Checked)
			}
		case e.Name == "oracle.graph" && e.Ph == obs.PhaseEnd:
			graphs++
		case e.Name == "oracle.sweep.progress":
			progress++
		}
	}
	if sweeps != 1 || graphs != n || progress != n {
		t.Errorf("got %d sweep spans, %d graph spans, %d progress events; want 1, %d, %d",
			sweeps, graphs, progress, n, n)
	}
}

// TestShrinkObs checks that the observed shrinker minimizes identically to
// the plain one and that every accepted step is both counted and emitted.
func TestShrinkObs(t *testing.T) {
	g, mem := cdfg.Generate(rand.New(rand.NewSource(42)), cdfg.DefaultGenConfig())
	// A pure size predicate: deterministic, cheap, and guaranteed to admit
	// shrinking on any graph larger than the threshold.
	fails := func(c *cdfg.Graph, _ cdfg.Memory) bool { return c.NumNodes() >= 3 }

	plain := Shrink(g, mem, fails, 0)

	sink := obs.NewBufferSink(0)
	p := Pipeline{Obs: obs.NewRecorder(obs.NewRegistry(), sink)}
	observed := p.Shrink(g, mem, fails, 0)

	if plain.NumNodes() != observed.NumNodes() {
		t.Fatalf("observed shrink found %d nodes, plain found %d", observed.NumNodes(), plain.NumNodes())
	}
	steps := p.Obs.Counter("oracle.shrink.steps").Value()
	var events int64
	for _, e := range sink.Events() {
		if e.Name == "oracle.shrink.step" {
			events++
		}
	}
	if steps != events {
		t.Errorf("oracle.shrink.steps = %d but %d step events emitted", steps, events)
	}
	if g.NumNodes() >= 3 && steps == 0 {
		t.Errorf("shrinkable graph (%d nodes) recorded no shrink steps", g.NumNodes())
	}
}
