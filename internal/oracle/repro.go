package oracle

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/cdfg"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Reproducer files pair a minimized graph with its initial memory and a
// human-readable diagnosis. They live under testdata/ and are replayed by
// plain `go test`, so any failure the oracle ever shrank keeps guarding
// the mapper. Format: '#' comment lines (the diagnosis), a "mem <len>"
// line, "memval <addr> <val>" lines for the nonzero words, then the
// cdfg text form.

// FormatRepro renders a reproducer file. The failure parameter carries
// the divergence diagnostics into the header; it may be zero-valued for
// hand-written cases.
func FormatRepro(g *cdfg.Graph, mem cdfg.Memory, seed int64, failure CellResult) ([]byte, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# oracle reproducer: %s (seed %d)\n", g.Name, seed)
	if failure.Outcome.Bug() {
		fmt.Fprintf(&sb, "# cell %s outcome %s\n", failure.Cell, failure.Outcome)
		var div *sim.DivergenceError
		if errors.As(failure.Err, &div) {
			words := make([]trace.DivergentWord, len(div.Mismatches))
			for i, m := range div.Mismatches {
				words[i] = trace.DivergentWord{Addr: m.Addr, Ref: m.Ref, Got: m.Got}
			}
			for _, line := range strings.Split(strings.TrimRight(
				trace.Divergence(g.Name, failure.Cell.Mode.String(), string(failure.Cell.Config),
					div.Cycles, div.Total, words), "\n"), "\n") {
				fmt.Fprintf(&sb, "# %s\n", line)
			}
		} else if failure.Err != nil {
			fmt.Fprintf(&sb, "# error: %v\n", failure.Err)
		}
	}
	fmt.Fprintf(&sb, "mem %d\n", len(mem))
	for i, v := range mem {
		if v != 0 {
			fmt.Fprintf(&sb, "memval %d %d\n", i, v)
		}
	}
	gtxt, err := g.MarshalText()
	if err != nil {
		return nil, err
	}
	sb.Write(gtxt)
	return []byte(sb.String()), nil
}

// ParseRepro parses a reproducer: the mem directives plus the cdfg text.
func ParseRepro(data []byte) (*cdfg.Graph, cdfg.Memory, error) {
	var mem cdfg.Memory
	var graphText bytes.Buffer
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		f := strings.Fields(line)
		switch {
		case len(f) > 0 && f[0] == "mem":
			if len(f) != 2 {
				return nil, nil, fmt.Errorf("oracle: mem wants a length")
			}
			n, err := strconv.Atoi(f[1])
			if err != nil || n < 0 || n > 1<<20 {
				return nil, nil, fmt.Errorf("oracle: bad mem length %q", f[1])
			}
			mem = make(cdfg.Memory, n)
		case len(f) > 0 && f[0] == "memval":
			if len(f) != 3 {
				return nil, nil, fmt.Errorf("oracle: memval wants an address and a value")
			}
			a, err1 := strconv.Atoi(f[1])
			v, err2 := strconv.ParseInt(f[2], 10, 32)
			if err1 != nil || err2 != nil || a < 0 || a >= len(mem) {
				return nil, nil, fmt.Errorf("oracle: bad memval %q", line)
			}
			mem[a] = int32(v)
		default:
			graphText.WriteString(line)
			graphText.WriteString("\n")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if mem == nil {
		return nil, nil, fmt.Errorf("oracle: reproducer has no mem directive")
	}
	g, err := cdfg.UnmarshalText(graphText.Bytes())
	if err != nil {
		return nil, nil, err
	}
	return g, mem, nil
}

// WriteRepro writes a reproducer file into dir (created if needed) and
// returns its path.
func WriteRepro(dir, name string, g *cdfg.Graph, mem cdfg.Memory, seed int64, failure CellResult) (string, error) {
	data, err := FormatRepro(g, mem, seed, failure)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name+".repro")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadRepro reads and parses a reproducer file.
func LoadRepro(path string) (*cdfg.Graph, cdfg.Memory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return ParseRepro(data)
}

// ReproPaths lists the .repro files under dir, sorted; a missing dir is
// an empty list.
func ReproPaths(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.repro"))
	if err != nil {
		return nil, err
	}
	return paths, nil
}
