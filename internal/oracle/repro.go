package oracle

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/cdfg"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Reproducer files pair a minimized graph with its initial memory and a
// human-readable diagnosis. They live under testdata/ and are replayed by
// plain `go test`, so any failure the oracle ever shrank keeps guarding
// the mapper. Format: '#' comment lines (the diagnosis), an optional
// "backends <ref> <sub>" line naming the backend pair of a cross-backend
// disagreement (absent for mapper-vs-interpreter reproducers), a
// "mem <len>" line, "memval <addr> <val>" lines for the nonzero words,
// then the cdfg text form.

// ReproMeta carries a reproducer's machine-readable directives beyond the
// graph and memory. The zero value describes a classic
// mapper-vs-interpreter reproducer.
type ReproMeta struct {
	// RefBackend/SubBackend name the backend pair of a cross-backend
	// reproducer (the "backends" directive); both empty otherwise.
	// TestReproReplay uses them to route the replay through CheckBackends
	// instead of the interpreter pipeline.
	RefBackend string
	SubBackend string
}

// BackendDiff reports whether the reproducer records a cross-backend
// disagreement.
func (m ReproMeta) BackendDiff() bool { return m.RefBackend != "" }

// Pair resolves the recorded backend pair.
func (m ReproMeta) Pair() (BackendPair, error) {
	return BackendPairByNames(m.RefBackend, m.SubBackend)
}

// FormatRepro renders a reproducer file. The failure parameter carries
// the divergence diagnostics into the header; it may be zero-valued for
// hand-written cases.
func FormatRepro(g *cdfg.Graph, mem cdfg.Memory, seed int64, failure CellResult) ([]byte, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# oracle reproducer: %s (seed %d)\n", g.Name, seed)
	if failure.Outcome.Bug() {
		fmt.Fprintf(&sb, "# cell %s outcome %s\n", failure.Cell, failure.Outcome)
		var div *sim.DivergenceError
		if errors.As(failure.Err, &div) {
			words := make([]trace.DivergentWord, len(div.Mismatches))
			for i, m := range div.Mismatches {
				words[i] = trace.DivergentWord{Addr: m.Addr, Ref: m.Ref, Got: m.Got}
			}
			for _, line := range strings.Split(strings.TrimRight(
				trace.Divergence(g.Name, failure.Cell.Mode.String(), string(failure.Cell.Config),
					div.Cycles, div.Total, words), "\n"), "\n") {
				fmt.Fprintf(&sb, "# %s\n", line)
			}
		} else if failure.Err != nil {
			fmt.Fprintf(&sb, "# error: %v\n", failure.Err)
		}
	}
	fmt.Fprintf(&sb, "mem %d\n", len(mem))
	for i, v := range mem {
		if v != 0 {
			fmt.Fprintf(&sb, "memval %d %d\n", i, v)
		}
	}
	gtxt, err := g.MarshalText()
	if err != nil {
		return nil, err
	}
	sb.Write(gtxt)
	return []byte(sb.String()), nil
}

// ParseRepro parses a reproducer: the directives plus the cdfg text.
func ParseRepro(data []byte) (*cdfg.Graph, cdfg.Memory, error) {
	g, mem, _, err := ParseReproMeta(data)
	return g, mem, err
}

// ParseReproMeta parses a reproducer including its metadata directives.
func ParseReproMeta(data []byte) (*cdfg.Graph, cdfg.Memory, ReproMeta, error) {
	var mem cdfg.Memory
	var meta ReproMeta
	var graphText bytes.Buffer
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		f := strings.Fields(line)
		switch {
		case len(f) > 0 && f[0] == "mem":
			if len(f) != 2 {
				return nil, nil, meta, fmt.Errorf("oracle: mem wants a length")
			}
			n, err := strconv.Atoi(f[1])
			if err != nil || n < 0 || n > 1<<20 {
				return nil, nil, meta, fmt.Errorf("oracle: bad mem length %q", f[1])
			}
			mem = make(cdfg.Memory, n)
		case len(f) > 0 && f[0] == "memval":
			if len(f) != 3 {
				return nil, nil, meta, fmt.Errorf("oracle: memval wants an address and a value")
			}
			a, err1 := strconv.Atoi(f[1])
			v, err2 := strconv.ParseInt(f[2], 10, 32)
			if err1 != nil || err2 != nil || a < 0 || a >= len(mem) {
				return nil, nil, meta, fmt.Errorf("oracle: bad memval %q", line)
			}
			mem[a] = int32(v)
		case len(f) > 0 && f[0] == "backends":
			if len(f) != 3 {
				return nil, nil, meta, fmt.Errorf("oracle: backends wants a reference and a subject name")
			}
			// Resolve eagerly so a typo fails at parse time, not when the
			// replay silently checks the wrong pair.
			if _, err := BackendPairByNames(f[1], f[2]); err != nil {
				return nil, nil, meta, fmt.Errorf("oracle: bad backends directive %q: %w", line, err)
			}
			meta.RefBackend, meta.SubBackend = f[1], f[2]
		default:
			graphText.WriteString(line)
			graphText.WriteString("\n")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, meta, err
	}
	if mem == nil {
		return nil, nil, meta, fmt.Errorf("oracle: reproducer has no mem directive")
	}
	g, err := cdfg.UnmarshalText(graphText.Bytes())
	if err != nil {
		return nil, nil, meta, err
	}
	return g, mem, meta, nil
}

// FormatBackendRepro renders a cross-backend reproducer: like FormatRepro
// but with the backend pair recorded as a "backends" directive, so the
// replay routes through CheckBackends. The failure parameter may be
// zero-valued for hand-written cases.
func FormatBackendRepro(g *cdfg.Graph, mem cdfg.Memory, seed int64, pair BackendPair, failure BackendDiffResult) ([]byte, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# oracle cross-backend reproducer: %s (seed %d, %s)\n", g.Name, seed, pair)
	if failure.Outcome.Bug() {
		fmt.Fprintf(&sb, "# cell %s outcome %s\n", failure.Cell, failure.Outcome)
		if failure.RefWords >= 0 || failure.SubWords >= 0 {
			fmt.Fprintf(&sb, "# words: %s %d, %s %d\n",
				pair.Ref.Name(), failure.RefWords, pair.Sub.Name(), failure.SubWords)
		}
		if failure.Err != nil {
			fmt.Fprintf(&sb, "# error: %v\n", failure.Err)
		}
	}
	fmt.Fprintf(&sb, "backends %s %s\n", pair.Ref.Name(), pair.Sub.Name())
	fmt.Fprintf(&sb, "mem %d\n", len(mem))
	for i, v := range mem {
		if v != 0 {
			fmt.Fprintf(&sb, "memval %d %d\n", i, v)
		}
	}
	gtxt, err := g.MarshalText()
	if err != nil {
		return nil, err
	}
	sb.Write(gtxt)
	return []byte(sb.String()), nil
}

// WriteBackendRepro writes a cross-backend reproducer file into dir
// (created if needed) and returns its path.
func WriteBackendRepro(dir, name string, g *cdfg.Graph, mem cdfg.Memory, seed int64, pair BackendPair, failure BackendDiffResult) (string, error) {
	data, err := FormatBackendRepro(g, mem, seed, pair, failure)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name+".repro")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// WriteRepro writes a reproducer file into dir (created if needed) and
// returns its path.
func WriteRepro(dir, name string, g *cdfg.Graph, mem cdfg.Memory, seed int64, failure CellResult) (string, error) {
	data, err := FormatRepro(g, mem, seed, failure)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name+".repro")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadRepro reads and parses a reproducer file.
func LoadRepro(path string) (*cdfg.Graph, cdfg.Memory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return ParseRepro(data)
}

// LoadReproMeta reads and parses a reproducer file with its metadata.
func LoadReproMeta(path string) (*cdfg.Graph, cdfg.Memory, ReproMeta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, ReproMeta{}, err
	}
	return ParseReproMeta(data)
}

// ReproPaths lists the .repro files under dir, sorted; a missing dir is
// an empty list.
func ReproPaths(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.repro"))
	if err != nil {
		return nil, err
	}
	return paths, nil
}
