// Package oracle is the property-based differential-testing layer of the
// repository: a seeded random CDFG generator (internal/cdfg.Generate), a
// differential pipeline that maps each graph under every mapping mode ×
// context-memory configuration, simulates the result, and compares the
// final data memory against the reference interpreter, and a greedy
// shrinker that minimizes any failing graph to a small reproducer.
//
// The paper's claim rests on every mapping variant producing semantically
// identical programs whose only difference is context-memory cost; the
// oracle checks exactly that on the long tail of graph shapes the seven
// fixed kernels never reach.
package oracle

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/mapcache"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/static"
	"repro/internal/verify"
)

// Mode is one mapping variant of the differential matrix. Unlike
// core.Flow it includes the weighted-traversal-only variant (the paper's
// Fig 5 column), so the matrix covers basic, weighted, ACMAP, ECMAP, CAB.
type Mode int

const (
	ModeBasic Mode = iota
	ModeWeighted
	ModeACMAP
	ModeECMAP
	ModeCAB
	numModes
)

// Modes lists the five mapping variants in evaluation order.
func Modes() []Mode {
	return []Mode{ModeBasic, ModeWeighted, ModeACMAP, ModeECMAP, ModeCAB}
}

func (m Mode) String() string {
	switch m {
	case ModeBasic:
		return "basic"
	case ModeWeighted:
		return "weighted"
	case ModeACMAP:
		return "acmap"
	case ModeECMAP:
		return "ecmap"
	case ModeCAB:
		return "cab"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ModeByName returns the mode with the given String() name.
func ModeByName(name string) (Mode, error) {
	for _, m := range Modes() {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("oracle: unknown mode %q", name)
}

// Options returns the mapper tuning for the mode.
func (m Mode) Options() core.Options {
	switch m {
	case ModeBasic:
		return core.DefaultOptions(core.FlowBasic)
	case ModeWeighted:
		opt := core.DefaultOptions(core.FlowBasic)
		opt.Traversal = cdfg.TraverseWeighted
		opt.ForceTraversal = true
		return opt
	case ModeACMAP:
		return core.DefaultOptions(core.FlowACMAP)
	case ModeECMAP:
		return core.DefaultOptions(core.FlowECMAP)
	default:
		return core.DefaultOptions(core.FlowCAB)
	}
}

// memoryAware reports whether the mode's flow enforces the context-memory
// constraint during mapping.
func (m Mode) memoryAware() bool { return m >= ModeACMAP }

// Cell is one point of the differential matrix.
type Cell struct {
	Mode   Mode
	Config arch.ConfigName
}

func (c Cell) String() string { return c.Mode.String() + "/" + string(c.Config) }

// AllCells returns the full 5-mode × 4-configuration matrix.
func AllCells() []Cell {
	var cells []Cell
	for _, m := range Modes() {
		for _, cfg := range arch.ConfigNames() {
			cells = append(cells, Cell{Mode: m, Config: cfg})
		}
	}
	return cells
}

// Outcome classifies one cell check.
type Outcome int

const (
	// Pass: the mapped program's final memory matched the interpreter.
	Pass Outcome = iota
	// NoMapping: the mapper failed cleanly ("no mapping solution"), an
	// acceptable outcome the paper's Figs 6–8 also report.
	NoMapping
	// Overflow: a memory-unaware mode produced a mapping that does not
	// fit the configuration's context memories; the program cannot be
	// loaded, so nothing further is checked.
	Overflow
	// Diverged: the simulated final memory differed from the interpreter
	// — a mapper, assembler or simulator bug.
	Diverged
	// Failed: a pipeline stage that must not fail did (assembling a
	// validated mapping, an aware flow overflowing, a simulator error).
	Failed
	// Illegal: the static verifier (internal/verify) rejected the mapping
	// or assembled program. A bitstream that simulates correctly but fails
	// static verification is still a bug — either in the mapper or in a
	// verifier pass — so Illegal counts as one.
	Illegal
	// Inverted: a cross-backend check found the exact backend returning a
	// costlier mapping than the heuristic. The exact search warm-starts
	// from the heuristic's mapping, so an inversion is unreachable short
	// of a backend bug and counts as one.
	Inverted
	// BatchDiverged: the batched struct-of-arrays engine (sim.Engine)
	// disagreed with the scalar interpreter on duplicated lanes of a run
	// that verified clean — results, counters, and final memories must be
	// bit-identical, so any difference is an engine bug.
	BatchDiverged
	// StaticUnsound: the static analyzer's claims about a verifier-clean
	// program contradicted its simulated behavior — an executed block
	// claimed unreachable, activity outside the static bounds, or a
	// stripped rewrite that fails re-verification or changes observable
	// behavior. Soundness is the analyzer's whole contract, so any
	// contradiction is a bug.
	StaticUnsound
	// CacheStale: the mapping cache served a warm bitstream that is not
	// byte-identical to the cold compile of the same request — the content
	// address, the canonical form, or a cache tier returned the wrong
	// entry. The cache's contract is byte-exact reuse, so any difference
	// is a bug.
	CacheStale
)

func (o Outcome) String() string {
	switch o {
	case Pass:
		return "pass"
	case NoMapping:
		return "no-mapping"
	case Overflow:
		return "overflow"
	case Diverged:
		return "diverged"
	case Failed:
		return "failed"
	case Illegal:
		return "illegal"
	case Inverted:
		return "inverted"
	case BatchDiverged:
		return "batch-diverged"
	case StaticUnsound:
		return "static-unsound"
	case CacheStale:
		return "cache-stale"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Bug reports whether the outcome indicates a correctness bug.
func (o Outcome) Bug() bool {
	return o == Diverged || o == Failed || o == Illegal || o == Inverted ||
		o == BatchDiverged || o == StaticUnsound || o == CacheStale
}

// CellResult is the outcome of checking one graph in one cell.
type CellResult struct {
	Cell    Cell
	Outcome Outcome
	// Err carries the divergence (a *sim.DivergenceError for Diverged)
	// or failure detail; nil for Pass.
	Err error
	// Cycles is the simulated execution time of a run that completed.
	Cycles int64
}

// Pipeline runs the differential check. The zero value is the production
// pipeline; MutateMapping and Mutate inject faults, which the shrinker
// and fault-injection tests use to prove the oracle catches binding bugs.
type Pipeline struct {
	// Obs, when non-nil, receives the oracle's instrumentation: per-check
	// outcome-class counters, sweep progress events and shrink-step events.
	// Instrumentation never influences which outcome a check produces.
	Obs *obs.Recorder
	// ObsTID is the trace track the pipeline's mapper spans land on
	// (core.Options.ObsTID). The sweeps run each worker on a pipeline
	// copy with ObsTID set to the worker index, so a trace of a parallel
	// sweep shows per-worker occupancy instead of one interleaved track.
	// Purely observational: it never affects outcomes.
	ObsTID int
	// MutateMapping, when non-nil, corrupts the mapping between the
	// memory-fit check and assembly — upstream of the static verifier, so
	// structural faults it plants surface as Illegal.
	MutateMapping func(*core.Mapping)
	// Mutate, when non-nil, corrupts the assembled program between
	// assembly and simulation. The static verifier runs before Mutate (it
	// judges the genuine toolchain output, not the injected fault), so
	// these corruptions surface dynamically as Diverged.
	Mutate func(*asm.Program)
	// ExactNodeBudget bounds the exact backend's search in cross-backend
	// checks (core.Options.ExactNodeBudget); zero defers to the backend's
	// own resolution (CGRA_EXACT_NODE_BUDGET, then the default). Sweeps
	// set it so wall time scales with the graph count, not the default
	// search budget.
	ExactNodeBudget int
	// BatchLanes sets the lane count of the batched-engine differential
	// that runs after a clean verification: the scalar interpreter's
	// result on the cell's input is compared bit-for-bit against every
	// lane of a sim.Engine RunBatch over duplicated inputs. Zero means
	// defaultBatchLanes; negative disables the batch check.
	BatchLanes int
	// MutateBatch, when non-nil, corrupts the batched engine's lane
	// inputs after the scalar reference is taken — a deliberate
	// engine-side fault, so the injected difference surfaces as
	// BatchDiverged (the fault-injection tests prove the classification
	// and shrinking work).
	MutateBatch func(lanes []cdfg.Memory)
	// MutateStripped, when non-nil, corrupts the dead-context-stripped
	// program between the rewrite and its re-verification — a deliberate
	// rewriter-side fault, so the injected difference surfaces as
	// StaticUnsound.
	MutateStripped func(*asm.Program)
	// SkipStatic disables the static-analyzer cross-check that follows a
	// clean batch differential. Sweeps leave it on; it exists for tests
	// that need the pre-analyzer pipeline.
	SkipStatic bool
	// CacheDir, when non-empty, adds the mapping-cache differential to
	// every check: the cell's compiled program is pushed through a
	// two-tier cache rooted there (cold), then requested again through a
	// fresh cache over the same directory — forcing the disk tier, the
	// tier an independent process would hit — and the two bitstreams must
	// be byte-identical. Any difference is CacheStale.
	CacheDir string
	// MutateCacheEntry, when non-nil, corrupts the on-disk cache entries
	// between the cold and warm passes (typically via
	// mapcache.RewriteEntry). A corruption the envelope checksum catches,
	// or one the re-verify gate rejects, forces a recompute and still
	// passes; a legal-but-wrong bitstream that slips through surfaces as
	// CacheStale. The fault-injection tests prove both classifications.
	MutateCacheEntry func(dir string, g *cdfg.Graph, grid *arch.Grid) error
}

// defaultBatchLanes is the width of the batch differential every check
// runs: two duplicated lanes exercise the batch dimension without
// dominating the cell's cost.
const defaultBatchLanes = 2

// Check maps the graph in the given cell, assembles and simulates it, and
// compares the final data memory against the reference interpreter.
func (p *Pipeline) Check(g *cdfg.Graph, mem cdfg.Memory, cell Cell, seed int64) CellResult {
	r := p.check(g, mem, cell, seed)
	p.recordCheck(r)
	return r
}

func (p *Pipeline) check(g *cdfg.Graph, mem cdfg.Memory, cell Cell, seed int64) CellResult {
	r := CellResult{Cell: cell}
	opt := cell.Mode.Options()
	opt.Seed = seed
	opt.Obs = p.Obs
	opt.ObsTID = p.ObsTID
	m, err := core.Map(g, arch.MustGrid(cell.Config), opt)
	if err != nil {
		r.Outcome, r.Err = NoMapping, err
		return r
	}
	if ok, tile := m.FitsMemory(); !ok {
		if cell.Mode.memoryAware() {
			r.Outcome = Failed
			r.Err = fmt.Errorf("oracle: %s returned a mapping overflowing tile %d", cell, tile+1)
		} else {
			r.Outcome = Overflow
			r.Err = fmt.Errorf("oracle: context overflow on tile %d", tile+1)
		}
		return r
	}
	if p.MutateMapping != nil {
		p.MutateMapping(m)
	}
	prog, err := asm.Assemble(m)
	if err != nil {
		r.Outcome, r.Err = Failed, fmt.Errorf("oracle: assemble: %w", err)
		return r
	}
	// Static legality is part of the differential property: a program that
	// would simulate correctly but fails verification is still a bug
	// (in the mapper or in a verifier pass) and gets shrunk like one.
	if vres := verify.Run(&verify.Context{Graph: g, Mapping: m, Program: prog}); !vres.OK() {
		r.Outcome, r.Err = Illegal, fmt.Errorf("oracle: static verification: %w", vres.Err())
		return r
	}
	if p.Mutate != nil {
		p.Mutate(prog)
	}
	s, err := sim.New(prog, sim.WithObs(p.Obs))
	if err != nil {
		r.Outcome, r.Err = Failed, fmt.Errorf("oracle: sim: %w", err)
		return r
	}
	res, _, _, err := s.RunVerified(mem)
	if res != nil {
		r.Cycles = res.Cycles
	}
	if err != nil {
		var div *sim.DivergenceError
		if errors.As(err, &div) {
			r.Outcome, r.Err = Diverged, err
		} else {
			r.Outcome, r.Err = Failed, err
		}
		return r
	}
	if outcome, err := p.checkBatch(s, mem); err != nil {
		r.Outcome, r.Err = outcome, err
		return r
	}
	if outcome, err := p.checkStatic(prog, s, mem); err != nil {
		r.Outcome, r.Err = outcome, err
		return r
	}
	if outcome, err := p.checkCache(g, cell, seed, m, prog); err != nil {
		r.Outcome, r.Err = outcome, err
		return r
	}
	r.Outcome = Pass
	return r
}

// checkCache is the mapping-cache differential a clean check is followed
// by when CacheDir is set: store the cell's program cold, read it back
// warm through a fresh cache instance (so the entry travels through the
// disk tier and its verify gate), and require the two bitstreams to be
// byte-identical. The compute callback hands back the already-compiled
// program, so a recompute after a rejected entry is free and
// by construction identical — only a wrong entry the tiers actually
// serve can differ.
func (p *Pipeline) checkCache(g *cdfg.Graph, cell Cell, seed int64, m *core.Mapping, prog *asm.Program) (Outcome, error) {
	if p.CacheDir == "" {
		return Pass, nil
	}
	opt := cell.Mode.Options()
	opt.Seed = seed
	grid := arch.MustGrid(cell.Config)
	req := mapcache.Request{Graph: g, Grid: grid, Opt: opt}
	compute := func() (mapcache.Computed, error) {
		return mapcache.Computed{Mapping: m, Program: prog, Seed: seed, Backend: core.DefaultBackend().Name()}, nil
	}
	cold, err := mapcache.New(mapcache.Config{Dir: p.CacheDir, Obs: p.Obs}).GetOrStore(req, compute)
	if err != nil {
		return Failed, fmt.Errorf("oracle: cache cold pass: %w", err)
	}
	if p.MutateCacheEntry != nil {
		if err := p.MutateCacheEntry(p.CacheDir, g, grid); err != nil {
			return Failed, fmt.Errorf("oracle: mutate cache entry: %w", err)
		}
	}
	warm, err := mapcache.New(mapcache.Config{Dir: p.CacheDir, Obs: p.Obs}).GetOrStore(req, compute)
	if err != nil {
		return Failed, fmt.Errorf("oracle: cache warm pass: %w", err)
	}
	if !bytes.Equal(cold.Image, warm.Image) {
		return CacheStale, fmt.Errorf("oracle: warm cache bitstream (source %s) is not byte-identical to the cold compile", warm.Source)
	}
	return Pass, nil
}

// checkBatch is the batched-engine differential a clean verification is
// followed by: the scalar interpreter's result on the cell's input must
// be reproduced bit-for-bit — Result, activity counters, final memory —
// by every lane of a RunBatch over duplicated inputs. Any difference is
// BatchDiverged; a scalar failure after a clean verified run is Failed
// (the two paths just executed the same program).
func (p *Pipeline) checkBatch(s *sim.Sim, mem cdfg.Memory) (Outcome, error) {
	lanes := p.BatchLanes
	if lanes == 0 {
		lanes = defaultBatchLanes
	}
	if lanes < 1 {
		return Pass, nil
	}
	refMem := mem.Clone()
	refRes, err := s.RunScalar(refMem)
	if err != nil {
		return Failed, fmt.Errorf("oracle: scalar reference run: %w", err)
	}
	bmems := make([]cdfg.Memory, lanes)
	for l := range bmems {
		bmems[l] = mem.Clone()
	}
	if p.MutateBatch != nil {
		p.MutateBatch(bmems)
	}
	bres, err := s.Engine().RunBatch(bmems)
	if err != nil {
		return BatchDiverged, fmt.Errorf("oracle: batch engine failed where the scalar run passed: %w", err)
	}
	for l := 0; l < lanes; l++ {
		if !reflect.DeepEqual(bres[l], refRes) {
			return BatchDiverged, fmt.Errorf("oracle: batch lane %d/%d result diverged from the scalar interpreter", l, lanes)
		}
		if !reflect.DeepEqual(bmems[l], refMem) {
			return BatchDiverged, fmt.Errorf("oracle: batch lane %d/%d final memory diverged from the scalar interpreter", l, lanes)
		}
	}
	return Pass, nil
}

// checkStatic is the static-analyzer cross-check a clean batch
// differential is followed by: the analyzer's claims about the
// verifier-clean program must hold on a scalar run (reachability,
// exact activity tables, cycle/stall bounds), and the dead-context-
// stripped rewrite must re-verify clean and reproduce the run exactly
// — same stalls, block trace and final memory, cycles shifted by
// precisely the reported elision delta. Any contradiction is
// StaticUnsound: the analyzer (or the rewriter) lied about this
// program.
func (p *Pipeline) checkStatic(prog *asm.Program, s *sim.Sim, mem cdfg.Memory) (Outcome, error) {
	if p.SkipStatic {
		return Pass, nil
	}
	a, err := static.Analyze(prog, static.WithObs(p.Obs))
	if err != nil {
		return StaticUnsound, fmt.Errorf("oracle: static analysis rejected a verifier-clean program: %w", err)
	}
	refMem := mem.Clone()
	res, err := s.RunScalar(refMem)
	if err != nil {
		return Failed, fmt.Errorf("oracle: scalar reference run: %w", err)
	}
	if err := a.CheckRun(res); err != nil {
		return StaticUnsound, err
	}
	stripped, rep, err := static.Strip(prog, a, static.WithObs(p.Obs))
	if err != nil {
		return StaticUnsound, fmt.Errorf("oracle: strip: %w", err)
	}
	if p.MutateStripped != nil {
		p.MutateStripped(stripped)
	}
	if vres := verify.CheckProgram(stripped); !vres.OK() {
		return StaticUnsound, fmt.Errorf("oracle: stripped program fails re-verification: %w", vres.Err())
	}
	s2, err := sim.New(stripped)
	if err != nil {
		return StaticUnsound, fmt.Errorf("oracle: sim of stripped program: %w", err)
	}
	gotMem := mem.Clone()
	res2, err := s2.RunScalar(gotMem)
	if err != nil {
		return StaticUnsound, fmt.Errorf("oracle: stripped program trapped where the original ran: %w", err)
	}
	switch {
	case res2.Cycles != res.Cycles-rep.CycleDelta(res.BlockExecs):
		return StaticUnsound, fmt.Errorf("oracle: stripped run took %d cycles, original %d with reported delta %d",
			res2.Cycles, res.Cycles, rep.CycleDelta(res.BlockExecs))
	case res2.StallCycles != res.StallCycles:
		return StaticUnsound, fmt.Errorf("oracle: stripped run stalled %d cycles, original %d",
			res2.StallCycles, res.StallCycles)
	case !reflect.DeepEqual(res2.BlockExecs, res.BlockExecs):
		return StaticUnsound, fmt.Errorf("oracle: stripped run's block trace diverged from the original")
	case !reflect.DeepEqual(gotMem, refMem):
		return StaticUnsound, fmt.Errorf("oracle: stripped run's final memory diverged from the original")
	}
	return Pass, nil
}

// CheckAll runs Check over the given cells (AllCells when nil) and
// returns the per-cell results in order.
func (p *Pipeline) CheckAll(g *cdfg.Graph, mem cdfg.Memory, cells []Cell, seed int64) []CellResult {
	if cells == nil {
		cells = AllCells()
	}
	out := make([]CellResult, len(cells))
	for i, c := range cells {
		out[i] = p.Check(g, mem, c, seed)
	}
	return out
}
