//go:build race

package oracle

// raceEnabled trims the sweep sizes under the race detector, whose 4-5x
// slowdown would otherwise dominate the CI race pass.
const raceEnabled = true
