package oracle

import (
	"strings"

	"repro/internal/cdfg"
)

// recordCheck publishes one cell check to the pipeline's recorder: a total
// and one counter per outcome class (oracle.outcome.pass, .no_mapping,
// .overflow, .diverged, .failed, .illegal).
func (p *Pipeline) recordCheck(r CellResult) {
	if !p.Obs.Enabled() {
		return
	}
	p.Obs.Counter("oracle.checks").Inc()
	p.Obs.Counter("oracle.outcome." + outcomeCounter(r.Outcome)).Inc()
	if r.Outcome.Bug() {
		p.Obs.Counter("oracle.bugs").Inc()
	}
}

// outcomeCounter turns an Outcome's display name into a counter suffix
// ("no-mapping" -> "no_mapping").
func outcomeCounter(o Outcome) string {
	return strings.ReplaceAll(o.String(), "-", "_")
}

// Shrink is the observed form of the package-level Shrink: identical
// minimization, but each accepted step is counted (oracle.shrink.steps)
// and emitted as a timeline event carrying the shrinking graph's size.
func (p *Pipeline) Shrink(g *cdfg.Graph, mem cdfg.Memory, fails FailFn, maxRounds int) *cdfg.Graph {
	if maxRounds <= 0 {
		maxRounds = 1000
	}
	cur := g.Clone()
	for round := 0; round < maxRounds; round++ {
		next := shrinkStep(cur, mem, fails)
		if next == nil {
			break
		}
		cur = next
		if p.Obs.Enabled() {
			p.Obs.Counter("oracle.shrink.steps").Inc()
			p.Obs.Emit("oracle.shrink.step", "oracle", 0, map[string]any{
				"round":  round + 1,
				"nodes":  cur.NumNodes(),
				"blocks": len(cur.Blocks),
			})
		}
	}
	return cur
}
