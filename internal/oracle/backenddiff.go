package oracle

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/verify"
)

// Cross-backend differential mode: instead of diffing one mapper against
// the reference interpreter, diff two independent mapper implementations
// against each other. Both must produce verifier-clean mappings, and the
// exact backend — warm-started from the heuristic's result — must never
// cost more context-memory words. The property is far stronger than
// self-consistency: the two backends share only the binder primitives,
// not the search, so a search bug in either surfaces as a disagreement.

// BackendPair names the two backends a differential check runs: Ref is
// the reference (whose result the subject must match or beat on cost) and
// Sub the subject under test.
type BackendPair struct {
	Ref core.Backend
	Sub core.Backend
}

// DefaultBackendPair diffs the exact branch-and-bound search against the
// heuristic — the pairing the acceptance sweep and CI smoke run.
func DefaultBackendPair() BackendPair {
	return BackendPair{Ref: core.HeuristicBackend{}, Sub: core.ExactBackend{}}
}

func (bp BackendPair) String() string {
	return bp.Ref.Name() + " vs " + bp.Sub.Name()
}

// BackendPairByNames resolves a pair from backend names (the .repro
// metadata form).
func BackendPairByNames(ref, sub string) (BackendPair, error) {
	r, err := core.BackendByName(ref)
	if err != nil {
		return BackendPair{}, err
	}
	s, err := core.BackendByName(sub)
	if err != nil {
		return BackendPair{}, err
	}
	return BackendPair{Ref: r, Sub: s}, nil
}

// BackendDiffResult is the outcome of diffing one graph in one cell.
type BackendDiffResult struct {
	Cell    Cell
	Outcome Outcome
	// Err carries the disagreement detail; nil for Pass.
	Err error
	// RefWords/SubWords are each backend's total context words, -1 when
	// that backend found no mapping.
	RefWords int
	SubWords int
}

// CheckBackends maps the graph with both backends of the pair in the
// given cell and classifies the disagreement, if any:
//
//   - both fail to map: NoMapping (agreement on infeasibility).
//   - the subject fails where the reference succeeded: Failed — the
//     exact backend warm-starts from the reference, so this is
//     unreachable short of a backend bug.
//   - either produced mapping overflows under a memory-aware mode,
//     fails to assemble, or fails static verification: Failed/Illegal,
//     naming the guilty backend.
//   - both map but the subject costs more words: Inverted.
//
// The pipeline's MutateMapping hook, when set, corrupts the subject's
// mapping before the legality checks — the fault-injection tests use it
// to prove the differential actually catches planted backend bugs.
func (p *Pipeline) CheckBackends(g *cdfg.Graph, mem cdfg.Memory, pair BackendPair, cell Cell, seed int64) BackendDiffResult {
	r := p.checkBackends(g, pair, cell, seed)
	_ = mem // held for FailFn symmetry: the diff itself never simulates
	p.recordBackendCheck(r)
	return r
}

func (p *Pipeline) checkBackends(g *cdfg.Graph, pair BackendPair, cell Cell, seed int64) BackendDiffResult {
	r := BackendDiffResult{Cell: cell, RefWords: -1, SubWords: -1}
	opt := cell.Mode.Options()
	opt.Seed = seed
	opt.Obs = p.Obs
	opt.ObsTID = p.ObsTID
	opt.ExactNodeBudget = p.ExactNodeBudget
	grid := arch.MustGrid(cell.Config)
	refM, refErr := pair.Ref.Map(context.Background(), g, grid, opt)
	subM, subErr := pair.Sub.Map(context.Background(), g, grid, opt)
	if refM != nil {
		r.RefWords = refM.TotalWords()
	}
	if subM != nil {
		r.SubWords = subM.TotalWords()
	}
	switch {
	case refErr != nil && subErr != nil:
		r.Outcome = NoMapping
		r.Err = fmt.Errorf("oracle: no mapping from either backend: %s: %v; %s: %v",
			pair.Ref.Name(), refErr, pair.Sub.Name(), subErr)
		return r
	case subErr != nil:
		r.Outcome = Failed
		r.Err = fmt.Errorf("oracle: %s mapped %s but %s failed: %w",
			pair.Ref.Name(), cell, pair.Sub.Name(), subErr)
		return r
	}
	if p.MutateMapping != nil && subM != nil {
		p.MutateMapping(subM)
	}
	// Per-mapping legality, mirroring the interpreter pipeline: memory
	// fit, assembly, static verification. A memory-unaware mode is
	// allowed to overflow (that exempts the mapping from assembly, since
	// it cannot be loaded); a memory-aware one is not.
	overflow := false
	sides := []struct {
		name string
		m    *core.Mapping
	}{{pair.Ref.Name(), refM}, {pair.Sub.Name(), subM}}
	for _, side := range sides {
		if side.m == nil {
			continue
		}
		if ok, tile := side.m.FitsMemory(); !ok {
			if cell.Mode.memoryAware() {
				r.Outcome = Failed
				r.Err = fmt.Errorf("oracle: %s returned a mapping overflowing tile %d in %s",
					side.name, tile+1, cell)
				return r
			}
			overflow = true
			continue
		}
		prog, err := asm.Assemble(side.m)
		if err != nil {
			r.Outcome = Failed
			r.Err = fmt.Errorf("oracle: assemble %s mapping: %w", side.name, err)
			return r
		}
		if vres := verify.Run(&verify.Context{Graph: g, Mapping: side.m, Program: prog}); !vres.OK() {
			r.Outcome = Illegal
			r.Err = fmt.Errorf("oracle: %s mapping fails static verification: %w",
				side.name, vres.Err())
			return r
		}
	}
	if refM != nil && subM != nil && r.SubWords > r.RefWords {
		r.Outcome = Inverted
		r.Err = fmt.Errorf("oracle: cost inversion in %s: %s %d words > %s %d words",
			cell, pair.Sub.Name(), r.SubWords, pair.Ref.Name(), r.RefWords)
		return r
	}
	if overflow {
		r.Outcome = Overflow
		return r
	}
	r.Outcome = Pass
	return r
}

// recordBackendCheck publishes one cross-backend check to the recorder,
// in its own counter namespace so the interpreter-differential counters
// stay comparable across runs.
func (p *Pipeline) recordBackendCheck(r BackendDiffResult) {
	if !p.Obs.Enabled() {
		return
	}
	p.Obs.Counter("oracle.backend_diff.checks").Inc()
	p.Obs.Counter("oracle.backend_diff.outcome." + outcomeCounter(r.Outcome)).Inc()
	if r.Outcome.Bug() {
		p.Obs.Counter("oracle.backend_diff.bugs").Inc()
	}
}

// CheckBackendsAll runs CheckBackends over the given cells (AllCells when
// nil) and returns the per-cell results in order.
func (p *Pipeline) CheckBackendsAll(g *cdfg.Graph, mem cdfg.Memory, pair BackendPair, cells []Cell, seed int64) []BackendDiffResult {
	if cells == nil {
		cells = AllCells()
	}
	out := make([]BackendDiffResult, len(cells))
	for i, c := range cells {
		out[i] = p.CheckBackends(g, mem, pair, c, seed)
	}
	return out
}

// BackendFailFn adapts one failing cross-backend cell into the shrinker's
// FailFn: a candidate graph still fails while the pair still disagrees in
// that cell.
func (p *Pipeline) BackendFailFn(pair BackendPair, cell Cell, seed int64) FailFn {
	return func(g *cdfg.Graph, mem cdfg.Memory) bool {
		return p.CheckBackends(g, mem, pair, cell, seed).Outcome.Bug()
	}
}

// BackendGraphResult collects one generated graph's cross-backend run.
type BackendGraphResult struct {
	Index int
	Seed  int64
	Graph *cdfg.Graph
	Mem   cdfg.Memory
	Cells []BackendDiffResult
}

// Bugs returns the cell results that indicate a backend disagreement.
func (g *BackendGraphResult) Bugs() []BackendDiffResult {
	var bugs []BackendDiffResult
	for _, c := range g.Cells {
		if c.Outcome.Bug() {
			bugs = append(bugs, c)
		}
	}
	return bugs
}

// BackendSweepReport aggregates a cross-backend sweep.
type BackendSweepReport struct {
	Pair    string
	Graphs  int
	ByCell  map[Cell]map[Outcome]int
	Checked int
	// Failures holds every graph with at least one disagreement, in
	// generation order.
	Failures []BackendGraphResult
}

// Counts sums outcomes over the whole matrix.
func (r *BackendSweepReport) Counts() map[Outcome]int {
	total := map[Outcome]int{}
	for _, m := range r.ByCell {
		for o, n := range m {
			total[o] += n
		}
	}
	return total
}

// String renders a per-cell outcome table.
func (r *BackendSweepReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "oracle backend diff (%s): %d graphs × %d cells\n",
		r.Pair, r.Graphs, len(r.ByCell))
	cells := make([]Cell, 0, len(r.ByCell))
	for c := range r.ByCell {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Mode != cells[j].Mode {
			return cells[i].Mode < cells[j].Mode
		}
		return cells[i].Config < cells[j].Config
	})
	for _, c := range cells {
		m := r.ByCell[c]
		fmt.Fprintf(&sb, "  %-14s pass %4d  no-mapping %3d  overflow %3d  inverted %3d  bugs %d\n",
			c, m[Pass], m[NoMapping], m[Overflow], m[Inverted],
			m[Diverged]+m[Failed]+m[Illegal]+m[Inverted])
	}
	return sb.String()
}

// BackendSweep generates opt.N random graphs and diffs the backend pair
// on each across every cell of the matrix, fanning graphs out over a
// worker pool. Like Sweep, the report is a pure function of the options:
// workers only affect wall time.
func (p *Pipeline) BackendSweep(pair BackendPair, opt SweepOptions) *BackendSweepReport {
	if opt.N < 1 {
		opt.N = 1
	}
	if opt.Gen.MaxBodyOps == 0 { // zero value: fall back to the defaults
		opt.Gen = cdfg.DefaultGenConfig()
	}
	cells := opt.Cells
	if cells == nil {
		cells = AllCells()
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opt.N {
		workers = opt.N
	}

	sweepSpan := p.Obs.StartSpan("oracle.backend_sweep", "oracle", 0)
	var done atomic.Int64

	results := make([]BackendGraphResult, opt.N)
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker pipeline copy: mapper spans track the worker that
			// ran them (see Pipeline.ObsTID).
			wp := *p
			wp.ObsTID = w
			for i := range idx {
				seed := opt.Seed + int64(i)
				sp := p.Obs.StartSpan("oracle.backend_graph", "oracle", w)
				g, mem := cdfg.Generate(rand.New(rand.NewSource(seed)), opt.Gen)
				results[i] = BackendGraphResult{
					Index: i,
					Seed:  seed,
					Graph: g,
					Mem:   mem,
					Cells: wp.CheckBackendsAll(g, mem, pair, cells, seed),
				}
				bugs := len(results[i].Bugs())
				sp.End(map[string]any{"index": i, "seed": seed, "bugs": bugs})
				if p.Obs.Enabled() {
					p.Obs.Counter("oracle.backend_diff.graphs").Inc()
					p.Obs.Emit("oracle.backend_sweep.progress", "oracle", w,
						map[string]any{"done": done.Add(1), "total": opt.N})
				}
			}
		}(w)
	}
	for i := 0; i < opt.N; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()

	rep := &BackendSweepReport{
		Pair:   pair.String(),
		Graphs: opt.N,
		ByCell: map[Cell]map[Outcome]int{},
	}
	for _, c := range cells {
		rep.ByCell[c] = map[Outcome]int{}
	}
	for i := range results {
		gr := &results[i]
		for _, c := range gr.Cells {
			rep.ByCell[c.Cell][c.Outcome]++
			rep.Checked++
		}
		if len(gr.Bugs()) > 0 {
			rep.Failures = append(rep.Failures, *gr)
		}
	}
	sweepSpan.End(map[string]any{
		"graphs": opt.N, "cells": len(cells),
		"checked": rep.Checked, "failures": len(rep.Failures),
	})
	return rep
}
