package oracle

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cdfg"
)

// SweepOptions tunes a differential sweep.
type SweepOptions struct {
	// N is the number of random graphs generated (min 1).
	N int
	// Seed is the base seed: graph i is generated from Seed+i and mapped
	// with stochastic-pruning seed Seed+i, so any failure names the exact
	// seed that reproduces it.
	Seed int64
	// Gen tunes the graph generator (DefaultGenConfig when zero).
	Gen cdfg.GenConfig
	// Cells is the matrix to check per graph (AllCells when nil).
	Cells []Cell
	// Workers bounds the concurrently checked graphs; 0 means
	// runtime.GOMAXPROCS(0). Results are deterministic regardless.
	Workers int
}

// GraphResult collects one generated graph's run across the matrix.
type GraphResult struct {
	Index int
	Seed  int64
	Graph *cdfg.Graph
	Mem   cdfg.Memory
	Cells []CellResult
}

// Bugs returns the cell results that indicate a correctness bug.
func (g *GraphResult) Bugs() []CellResult {
	var bugs []CellResult
	for _, c := range g.Cells {
		if c.Outcome.Bug() {
			bugs = append(bugs, c)
		}
	}
	return bugs
}

// SweepReport aggregates a differential sweep.
type SweepReport struct {
	Graphs  int
	ByCell  map[Cell]map[Outcome]int
	Checked int
	// Failures holds every graph with at least one bug outcome, in
	// generation order.
	Failures []GraphResult
}

// Counts sums outcomes over the whole matrix.
func (r *SweepReport) Counts() map[Outcome]int {
	total := map[Outcome]int{}
	for _, m := range r.ByCell {
		for o, n := range m {
			total[o] += n
		}
	}
	return total
}

// String renders a per-cell outcome table.
func (r *SweepReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "oracle sweep: %d graphs × %d cells\n", r.Graphs, len(r.ByCell))
	cells := make([]Cell, 0, len(r.ByCell))
	for c := range r.ByCell {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Mode != cells[j].Mode {
			return cells[i].Mode < cells[j].Mode
		}
		return cells[i].Config < cells[j].Config
	})
	for _, c := range cells {
		m := r.ByCell[c]
		fmt.Fprintf(&sb, "  %-14s pass %4d  no-mapping %3d  overflow %3d  bugs %d\n",
			c, m[Pass], m[NoMapping], m[Overflow],
			m[Diverged]+m[Failed]+m[Illegal]+m[Inverted]+m[BatchDiverged]+m[StaticUnsound])
	}
	return sb.String()
}

// Sweep generates opt.N random graphs and checks each against every cell
// of the matrix, fanning graphs out over a worker pool. The report is a
// pure function of the options: workers only affect wall time.
func (p *Pipeline) Sweep(opt SweepOptions) *SweepReport {
	if opt.N < 1 {
		opt.N = 1
	}
	if opt.Gen.MaxBodyOps == 0 { // zero value: fall back to the defaults
		opt.Gen = cdfg.DefaultGenConfig()
	}
	cells := opt.Cells
	if cells == nil {
		cells = AllCells()
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opt.N {
		workers = opt.N
	}

	// The sweep span and per-graph progress events land on one track per
	// worker, so the trace shows the pool's actual occupancy; the report
	// itself stays a pure function of the options.
	sweepSpan := p.Obs.StartSpan("oracle.sweep", "oracle", 0)
	var done atomic.Int64

	results := make([]GraphResult, opt.N)
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker checks through a pipeline copy whose mapper spans
			// land on its own trace track; results are unaffected.
			wp := *p
			wp.ObsTID = w
			for i := range idx {
				seed := opt.Seed + int64(i)
				sp := p.Obs.StartSpan("oracle.graph", "oracle", w)
				g, mem := cdfg.Generate(rand.New(rand.NewSource(seed)), opt.Gen)
				results[i] = GraphResult{
					Index: i,
					Seed:  seed,
					Graph: g,
					Mem:   mem,
					Cells: wp.CheckAll(g, mem, cells, seed),
				}
				bugs := len(results[i].Bugs())
				sp.End(map[string]any{"index": i, "seed": seed, "bugs": bugs})
				if p.Obs.Enabled() {
					p.Obs.Counter("oracle.graphs").Inc()
					p.Obs.Emit("oracle.sweep.progress", "oracle", w,
						map[string]any{"done": done.Add(1), "total": opt.N})
				}
			}
		}(w)
	}
	for i := 0; i < opt.N; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()

	rep := &SweepReport{Graphs: opt.N, ByCell: map[Cell]map[Outcome]int{}}
	for _, c := range cells {
		rep.ByCell[c] = map[Outcome]int{}
	}
	for i := range results {
		gr := &results[i]
		for _, c := range gr.Cells {
			rep.ByCell[c.Cell][c.Outcome]++
			rep.Checked++
		}
		if len(gr.Bugs()) > 0 {
			rep.Failures = append(rep.Failures, *gr)
		}
	}
	sweepSpan.End(map[string]any{
		"graphs": opt.N, "cells": len(cells),
		"checked": rep.Checked, "failures": len(rep.Failures),
	})
	return rep
}
