//go:build !race

package oracle

const raceEnabled = false
