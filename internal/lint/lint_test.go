package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// analyzeSrc type-checks one synthetic file as a module package and
// runs the full rule set over it.
func analyzeSrc(t *testing.T, pkgPath, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("fixture does not parse: %v", err)
	}
	info := newInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(pkgPath, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("fixture does not type-check: %v", err)
	}
	p := &Package{Path: pkgPath, Module: "repro", Fset: fset, Files: []*ast.File{f}, Info: info, Types: tpkg}
	return check(p, Rules())
}

// rulesOf extracts the distinct rule names of the findings.
func rulesOf(fs []Finding) map[string]int {
	m := map[string]int{}
	for _, f := range fs {
		m[f.Rule]++
	}
	return m
}

func TestMaprangeFlagsSinks(t *testing.T) {
	fs := analyzeSrc(t, "repro/internal/demo", `package demo

import "fmt"

func Output(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // sink: output
	}
}

func Early(m map[string]int) int {
	for _, v := range m {
		if v > 0 {
			return v // sink: non-constant return
		}
	}
	return 0
}

func Break(m map[string]int, limit int) {
	n := 0
	for range m {
		n++
		if n == limit {
			break // sink: loop exit
		}
	}
	_ = n
}

func Send(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // sink: send order
	}
}

func Collect(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // sink: unsorted accumulation
	}
	return out
}
`)
	got := rulesOf(fs)
	if got["maprange"] != 5 {
		t.Errorf("want 5 maprange findings, got %d:\n%v", got["maprange"], fs)
	}
}

func TestMaprangeAllowsOrderIndependentWork(t *testing.T) {
	fs := analyzeSrc(t, "repro/internal/demo", `package demo

import "sort"

// Sum accumulates commutatively: order-independent.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Keys appends but sorts before anyone sees the slice.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Found returns a constant: whichever iteration hits, the answer is
// the same.
func Found(m map[string]int, want int) bool {
	for _, v := range m {
		if v == want {
			return true
		}
	}
	return false
}

// NestedBreak only exits the inner (slice) loop.
func NestedBreak(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		for _, v := range vs {
			if v < 0 {
				break
			}
			total += v
		}
	}
	return total
}

// LocalAppend's slice dies with the iteration.
func LocalAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var pos []int
		for _, v := range vs {
			if v > 0 {
				pos = append(pos, v)
			}
		}
		n += len(pos)
	}
	return n
}
`)
	if len(fs) != 0 {
		t.Errorf("clean fixture produced findings:\n%v", fs)
	}
}

func TestDetrandFlagsGlobalRandAndClock(t *testing.T) {
	fs := analyzeSrc(t, "repro/internal/core", `package core

import (
	"math/rand"
	"time"
)

func Bad() int {
	if time.Now().Unix()%2 == 0 { // flagged: wall clock steers behavior
		return rand.Intn(10) // flagged: global source
	}
	return 0
}

func Good(seed int64) (int, time.Duration) {
	start := time.Now() // ok: only feeds time.Since
	rng := rand.New(rand.NewSource(seed))
	v := rng.Intn(10)
	return v, time.Since(start)
}
`)
	got := rulesOf(fs)
	if got["detrand"] != 2 {
		t.Errorf("want 2 detrand findings, got %d:\n%v", got["detrand"], fs)
	}
}

func TestDetrandScopedToCoreAndSim(t *testing.T) {
	fs := analyzeSrc(t, "repro/internal/elsewhere", `package elsewhere

import "math/rand"

func Free() int { return rand.Intn(10) }
`)
	if got := rulesOf(fs); got["detrand"] != 0 {
		t.Errorf("detrand must only apply to internal/core and internal/sim:\n%v", fs)
	}
}

// TestDetrandSimFlagsEnvAndClock pins the simulator scope: internal/sim
// is held to the same rand/clock rules as the mapper, plus a ban on
// environment reads — cycle counts must depend only on the bitstream
// and memory image.
func TestDetrandSimFlagsEnvAndClock(t *testing.T) {
	fs := analyzeSrc(t, "repro/internal/sim", `package sim

import (
	"math/rand"
	"os"
	"time"
)

func Bad() int {
	if os.Getenv("SIM_FAST") != "" { // flagged: environment steers the sim
		return rand.Intn(10) // flagged: global source
	}
	if _, ok := os.LookupEnv("SIM_TRACE"); ok { // flagged: environment read
		return int(time.Now().Unix()) // flagged: wall clock
	}
	return 0
}

func Good(seed int64) (int, time.Duration) {
	start := time.Now() // ok: only feeds time.Since
	rng := rand.New(rand.NewSource(seed))
	v := rng.Intn(10)
	return v, time.Since(start)
}
`)
	got := rulesOf(fs)
	if got["detrand"] != 4 {
		t.Errorf("want 4 detrand findings, got %d:\n%v", got["detrand"], fs)
	}
	var envMsgs int
	for _, f := range fs {
		if f.Rule == "detrand" && strings.Contains(f.Msg, "environment read") {
			envMsgs++
		}
	}
	if envMsgs != 2 {
		t.Errorf("want 2 environment findings, got %d:\n%v", envMsgs, fs)
	}
}

// TestDetrandCoreEnvExempt pins the asymmetry: os.Getenv stays legal in
// internal/core (the exact backend's node-budget knob reads it on
// purpose) even though the same call is flagged in internal/sim.
func TestDetrandCoreEnvExempt(t *testing.T) {
	fs := analyzeSrc(t, "repro/internal/core", `package core

import "os"

func Budget() string { return os.Getenv("CGRA_EXACT_NODE_BUDGET") }
`)
	if got := rulesOf(fs); got["detrand"] != 0 {
		t.Errorf("os.Getenv in internal/core must stay exempt:\n%v", fs)
	}
}

// TestDetrandMapcacheFlagsEnvAndClock pins the mapping-cache scope: a
// content-addressed cache key must be a pure function of the request, so
// internal/mapcache is held to the simulator's rules — no wall clock, no
// global rand, no environment reads.
func TestDetrandMapcacheFlagsEnvAndClock(t *testing.T) {
	fs := analyzeSrc(t, "repro/internal/mapcache", `package mapcache

import (
	"fmt"
	"os"
	"time"
)

func BadKey(base string) string {
	if os.Getenv("MAPCACHE_SALT") != "" { // flagged: environment steers the key
		base += os.Getenv("MAPCACHE_SALT") // flagged: environment read
	}
	return fmt.Sprintf("%s@%d", base, time.Now().UnixNano()) // flagged: wall clock in a key
}

func GoodTiming() time.Duration {
	start := time.Now() // ok: only feeds time.Since
	return time.Since(start)
}
`)
	got := rulesOf(fs)
	if got["detrand"] != 3 {
		t.Errorf("want 3 detrand findings, got %d:\n%v", got["detrand"], fs)
	}
	for _, f := range fs {
		if f.Rule == "detrand" && !strings.Contains(f.Msg, "mapping cache") {
			t.Errorf("mapcache finding not attributed to the mapping cache: %v", f)
		}
	}
}

// TestMaprangeFlagsKeyFromMapIteration pins that building a cache key by
// iterating a map unsorted is caught: strings.Builder writes inside a map
// range are order-dependent output.
func TestMaprangeFlagsKeyFromMapIteration(t *testing.T) {
	fs := analyzeSrc(t, "repro/internal/mapcache", `package mapcache

import "strings"

func BadKey(parts map[string]string) string {
	var b strings.Builder
	for k, v := range parts {
		b.WriteString(k) // flagged: key bytes depend on map order
		b.WriteString(v) // flagged
	}
	return b.String()
}
`)
	if got := rulesOf(fs); got["maprange"] != 2 {
		t.Errorf("want 2 maprange findings, got %d:\n%v", got["maprange"], fs)
	}
}

func TestErrcheckFlagsDroppedModuleErrors(t *testing.T) {
	fs := analyzeSrc(t, "repro/internal/demo", `package demo

import "fmt"

func encode() error { return nil }
func decode() (int, error) { return 0, nil }

func Bad() {
	encode() // flagged: dropped error
}

func Good() error {
	if err := encode(); err != nil {
		return err
	}
	_ = encode() // explicit waiver
	v, err := decode()
	fmt.Println(v) // stdlib: exempt
	return err
}
`)
	got := rulesOf(fs)
	if got["errcheck"] != 1 {
		t.Errorf("want 1 errcheck finding, got %d:\n%v", got["errcheck"], fs)
	}
}

// TestRepoIsClean is the acceptance property: the module's own non-test
// sources carry zero findings. Any new violation fails `go test` and CI
// (scripts/ci.sh also runs cgralint).
func TestRepoIsClean(t *testing.T) {
	fs, err := Analyze("../..", nil)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	for _, f := range fs {
		t.Errorf("%s", f)
	}
}

func TestAnalyzeSortsFindings(t *testing.T) {
	fs := []Finding{
		{Pos: token.Position{Filename: "b.go", Line: 2}, Rule: "x"},
		{Pos: token.Position{Filename: "a.go", Line: 9}, Rule: "x"},
		{Pos: token.Position{Filename: "a.go", Line: 3, Column: 7}, Rule: "x"},
		{Pos: token.Position{Filename: "a.go", Line: 3, Column: 1}, Rule: "x"},
	}
	sortFindings(fs)
	var got []string
	for _, f := range fs {
		got = append(got, f.String())
	}
	want := []string{
		"a.go:3:1: x: ",
		"a.go:3:7: x: ",
		"a.go:9: x: ",
		"b.go:2: x: ",
	}
	for i := range want {
		if !strings.HasPrefix(got[i], want[i][:len(want[i])-3]) {
			t.Fatalf("order %d: got %q", i, got[i])
		}
	}
}

func TestRulesMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range Rules() {
		if r.Name == "" || r.Doc == "" || r.Check == nil {
			t.Errorf("rule %+v misses metadata", r)
		}
		if seen[r.Name] {
			t.Errorf("duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
	}
}

func TestNoprintFlagsConsoleOutput(t *testing.T) {
	fs := analyzeSrc(t, "repro/internal/sim", `package sim

import (
	"fmt"
	"io"
	"log"
)

func Bad(x int) {
	fmt.Println("state:", x) // flagged: stdout
	fmt.Printf("%d\n", x)    // flagged: stdout
	log.Printf("x=%d", x)    // flagged: log
}

func Good(w io.Writer, x int) string {
	fmt.Fprintf(w, "%d\n", x) // caller-supplied writer: fine
	return fmt.Sprintf("%d", x)
}
`)
	if got := rulesOf(fs); got["noprint"] != 3 {
		t.Errorf("want 3 noprint findings, got %d:\n%v", got["noprint"], fs)
	}
}

func TestNoprintScopedToCoreAndSim(t *testing.T) {
	fs := analyzeSrc(t, "repro/internal/trace", `package trace

import "fmt"

func Render() { fmt.Println("tables may print") }
`)
	if got := rulesOf(fs); got["noprint"] != 0 {
		t.Errorf("noprint must only apply to internal/core, internal/sim and internal/telemetry:\n%v", fs)
	}
}

// TestNoprintCoversTelemetry pins the rule's extension to the embedded
// telemetry server: handlers write to the response writer, never to the
// process's stdout (which the embedding CLI golden-diffs).
func TestNoprintCoversTelemetry(t *testing.T) {
	fs := analyzeSrc(t, "repro/internal/telemetry", `package telemetry

import (
	"fmt"
	"io"
	"log"
)

func Bad(addr string) {
	fmt.Println("serving on", addr) // flagged: stdout belongs to the CLI
	log.Printf("serving on %s", addr) // flagged: log side effect
}

func Good(w io.Writer, addr string) {
	fmt.Fprintf(w, "serving on %s\n", addr) // response writer: fine
}
`)
	got := rulesOf(fs)
	if got["noprint"] != 2 {
		t.Errorf("want 2 noprint findings in internal/telemetry, got %d:\n%v", got["noprint"], fs)
	}
	for _, f := range fs {
		if f.Rule == "noprint" && !strings.Contains(f.Msg, "telemetry server") {
			t.Errorf("telemetry finding does not name the telemetry server: %q", f.Msg)
		}
	}
}

// TestDetrandCoversTelemetry: the live-observability layer must not
// branch on the wall clock, draw from the global rand source, or read
// configuration from the environment — its outputs are a function of
// the events and metrics it is handed.
func TestDetrandCoversTelemetry(t *testing.T) {
	fs := analyzeSrc(t, "repro/internal/telemetry", `package telemetry

import (
	"math/rand"
	"os"
	"time"
)

func Bad() (int, string, time.Time) {
	jitter := rand.Intn(100)        // flagged: global source
	addr := os.Getenv("SERVE_ADDR") // flagged: env config
	return jitter, addr, time.Now() // flagged: wall-clock read
}

func Good(t0 time.Time) time.Duration {
	return time.Since(t0) // durations are fine
}
`)
	got := rulesOf(fs)
	if got["detrand"] != 3 {
		t.Errorf("want 3 detrand findings in internal/telemetry, got %d:\n%v", got["detrand"], fs)
	}
	for _, f := range fs {
		if f.Rule == "detrand" && !strings.Contains(f.Msg, "telemetry server") {
			t.Errorf("telemetry finding does not name the telemetry server: %q", f.Msg)
		}
	}
}
