// Package lint is the repository's own static analyzer: a small
// go/ast + go/types rule engine (stdlib only, no analysis framework
// dependency) enforcing the invariants the toolchain's correctness
// leans on but the compiler cannot check:
//
//   - maprange: iteration over a map feeding an order-sensitive sink
//     (output, early exit, accumulated slice) — the classic source of
//     non-deterministic mapper output and flaky golden tests.
//   - detrand: the global math/rand source or wall-clock reads inside
//     the deterministic mapper (internal/core), which must derive all
//     randomness from the caller's seed.
//   - errcheck: an error-returning call from this module used as a bare
//     statement, silently dropping encode/assemble/sim failures.
//   - noprint: direct fmt.Print*/log.* console output inside the mapper
//     (internal/core) or simulator (internal/sim), whose diagnostics must
//     flow through errors or the obs recorder.
//
// The rules run over the module's non-test sources; _test.go files may
// break and print from map ranges freely. Command cgralint is the CLI,
// and scripts/ci.sh runs it on every build.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Finding is one rule violation.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Rule, f.Msg)
}

// Package is one loaded, type-checked package.
type Package struct {
	Path   string
	Module string // module path the package belongs to
	Fset   *token.FileSet
	Files  []*ast.File
	Info   *types.Info
	Types  *types.Package
}

// Rule is one lint check.
type Rule struct {
	// Name identifies the rule in findings and docs.
	Name string
	// Doc is a one-line description.
	Doc string
	// Applies restricts the rule to some packages; nil means all.
	Applies func(pkgPath string) bool
	// Check reports the rule's findings in the package.
	Check func(p *Package) []Finding
}

// Rules returns the full rule set.
func Rules() []*Rule {
	return []*Rule{maprangeRule, detrandRule, errcheckRule, noprintRule}
}

// Analyze loads every non-test package under the module rooted at root
// and runs the rules over each. Findings come back sorted by position.
func Analyze(root string, rules []*Rule) ([]Finding, error) {
	if rules == nil {
		rules = Rules()
	}
	l, err := newLoader(root)
	if err != nil {
		return nil, err
	}
	paths, err := l.allPackages()
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, path := range paths {
		p, err := l.load(path)
		if err != nil {
			return nil, fmt.Errorf("lint: loading %s: %w", path, err)
		}
		out = append(out, check(p, rules)...)
	}
	sortFindings(out)
	return out, nil
}

// check runs the applicable rules over one package.
func check(p *Package, rules []*Rule) []Finding {
	var out []Finding
	for _, r := range rules {
		if r.Applies != nil && !r.Applies(p.Path) {
			continue
		}
		out = append(out, r.Check(p)...)
	}
	return out
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// pkgNameOf resolves an identifier to the imported package it names,
// or "" when it is not a package qualifier.
func pkgNameOf(info *types.Info, id *ast.Ident) string {
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// calleeOf resolves a call's target function object, nil for builtins,
// conversions and indirect calls through values.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
