package lint

import (
	"go/ast"
	"strings"
)

// noprintRule keeps the mapper, the simulator and the telemetry server
// free of direct console output: the first two run inside worker pools
// and benchmarks where stray writes interleave nondeterministically and
// corrupt golden outputs, and the telemetry server is embedded in every
// CLI whose stdout is a golden-diffed report (its handlers must write
// to the response writer, its embedders own stderr). Diagnostics must
// flow through returned errors or the obs recorder (internal/obs),
// never fmt.Print*/log.* side effects. fmt.Fprint* to a caller-supplied
// writer and fmt.Sprintf stay legal.
var noprintRule = &Rule{
	Name: "noprint",
	Doc:  "direct console output inside internal/core, internal/sim or internal/telemetry",
	Applies: func(pkgPath string) bool {
		return strings.HasSuffix(pkgPath, "internal/core") ||
			strings.HasSuffix(pkgPath, "internal/sim") ||
			strings.HasSuffix(pkgPath, "internal/telemetry")
	},
	Check: checkNoprint,
}

// stdoutPrintFuncs are the fmt functions that write to os.Stdout
// implicitly.
var stdoutPrintFuncs = map[string]bool{
	"Print":   true,
	"Printf":  true,
	"Println": true,
}

func checkNoprint(p *Package) []Finding {
	where := "the mapper/simulator"
	if strings.HasSuffix(p.Path, "internal/telemetry") {
		where = "the telemetry server"
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			switch pkgNameOf(p.Info, x) {
			case "fmt":
				if stdoutPrintFuncs[sel.Sel.Name] {
					out = append(out, Finding{
						Pos:  p.Fset.Position(call.Pos()),
						Rule: "noprint",
						Msg: "fmt." + sel.Sel.Name + " writes to stdout inside " + where + "; " +
							"return an error or record through the obs recorder",
					})
				}
			case "log":
				out = append(out, Finding{
					Pos:  p.Fset.Position(call.Pos()),
					Rule: "noprint",
					Msg: "log." + sel.Sel.Name + " inside " + where + "; " +
						"return an error or record through the obs recorder",
				})
			}
			return true
		})
	}
	return out
}
