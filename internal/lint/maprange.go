package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// maprangeRule flags map iterations whose body feeds an order-sensitive
// sink. Go randomizes map iteration order on purpose; the mapper, the
// renderers and the oracle all promise deterministic output, so a map
// range may only do order-independent work (or iterate sorted keys).
//
// Sinks: printing/writing, breaking out of the loop, returning a
// non-constant value, sending on a channel, and appending to a slice
// declared outside the loop that is never sorted afterwards.
var maprangeRule = &Rule{
	Name:  "maprange",
	Doc:   "map iteration feeding an order-sensitive sink",
	Check: checkMaprange,
}

func checkMaprange(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !isMapRange(p, rs) {
					return true
				}
				out = append(out, mapRangeSinks(p, fd, rs)...)
				return true
			})
		}
	}
	return out
}

func isMapRange(p *Package, rs *ast.RangeStmt) bool {
	tv, ok := p.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// mapRangeSinks walks the loop body tracking whether an unlabeled break
// still targets the map range (false once inside a nested loop, switch
// or select).
func mapRangeSinks(p *Package, fd *ast.FuncDecl, rs *ast.RangeStmt) []Finding {
	var out []Finding
	flag := func(n ast.Node, format string, args ...any) {
		out = append(out, Finding{
			Pos:  p.Fset.Position(n.Pos()),
			Rule: "maprange",
			Msg:  fmt.Sprintf(format, args...),
		})
	}

	var walkStmt func(s ast.Stmt, breakable bool)
	walkStmts := func(list []ast.Stmt, breakable bool) {
		for _, s := range list {
			walkStmt(s, breakable)
		}
	}
	walkStmt = func(s ast.Stmt, breakable bool) {
		switch st := s.(type) {
		case *ast.BlockStmt:
			walkStmts(st.List, breakable)
		case *ast.IfStmt:
			walkStmt(st.Body, breakable)
			if st.Else != nil {
				walkStmt(st.Else, breakable)
			}
		case *ast.ForStmt:
			walkStmt(st.Body, true)
		case *ast.RangeStmt:
			walkStmt(st.Body, true)
		case *ast.SwitchStmt:
			for _, c := range st.Body.List {
				walkStmts(c.(*ast.CaseClause).Body, true)
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				walkStmts(c.(*ast.CaseClause).Body, true)
			}
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				walkStmts(c.(*ast.CommClause).Body, true)
			}
		case *ast.LabeledStmt:
			walkStmt(st.Stmt, breakable)
		case *ast.BranchStmt:
			if st.Tok == token.BREAK && st.Label == nil && !breakable {
				flag(st, "break out of a map iteration: which entry stops the loop depends on map order")
			}
		case *ast.ReturnStmt:
			if ret := nonConstResult(p, st); ret != nil {
				flag(st, "return inside a map iteration: the returned value depends on map order")
			}
		case *ast.SendStmt:
			flag(st, "channel send inside a map iteration: message order depends on map order")
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok && isOutputCall(p, call) {
				flag(st, "output inside a map iteration: line order depends on map order")
			}
		case *ast.AssignStmt:
			checkLoopAppend(p, fd, rs, st, flag)
		}
	}
	walkStmt(rs.Body, false)
	return out
}

// nonConstResult returns the first order-dependent return operand:
// constants and nil are outcome-stable regardless of which iteration
// returns them, anything else is not.
func nonConstResult(p *Package, ret *ast.ReturnStmt) ast.Expr {
	for _, e := range ret.Results {
		tv, ok := p.Info.Types[ast.Unparen(e)]
		if !ok {
			return e
		}
		if tv.Value == nil && !tv.IsNil() {
			return e
		}
	}
	return nil
}

// isOutputCall reports whether a statement-level call emits text: the
// fmt/log print families, or a writer-shaped method.
func isOutputCall(p *Package, call *ast.CallExpr) bool {
	fn := calleeOf(p.Info, call)
	if fn == nil {
		return false
	}
	name := fn.Name()
	if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "fmt" || pkg.Path() == "log") {
		switch {
		case len(name) >= 5 && name[:5] == "Print":
			return true
		case len(name) >= 6 && name[:6] == "Fprint":
			return true
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Print", "Printf", "Println":
			return true
		}
	}
	return false
}

// checkLoopAppend flags `x = append(x, ...)` where x outlives the loop
// and is never handed to a sort afterwards.
func checkLoopAppend(p *Package, fd *ast.FuncDecl, rs *ast.RangeStmt,
	st *ast.AssignStmt, flag func(ast.Node, string, ...any)) {
	for i, rhs := range st.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltin(p, call.Fun, "append") || i >= len(st.Lhs) {
			continue
		}
		id, ok := ast.Unparen(st.Lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			obj = p.Info.Defs[id]
		}
		if obj == nil {
			continue
		}
		// Only slices accumulated across iterations matter; a variable
		// scoped inside the loop dies with the iteration.
		if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
			continue
		}
		if sortedAfter(p, fd, rs, obj) {
			continue
		}
		flag(st, "append to %q inside a map iteration without a later sort: element order depends on map order", id.Name)
	}
}

func isBuiltin(p *Package, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// sortedAfter reports whether the function sorts obj (sort.* or
// slices.Sort* mentioning it, or a Sort method call) after the loop.
func sortedAfter(p *Package, fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		if !isSortCall(p, call) || !mentions(p, call, obj) {
			return true
		}
		found = true
		return false
	})
	return found
}

func isSortCall(p *Package, call *ast.CallExpr) bool {
	fn := calleeOf(p.Info, call)
	if fn == nil {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "sort" || pkg.Path() == "slices") {
		return true
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && fn.Name() == "Sort" {
		return true
	}
	return false
}

func mentions(p *Package, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
