package lint

import (
	"go/ast"
	"strings"
)

// detrandRule guards the reproducibility promise of the mapper and the
// simulator: internal/core and internal/sim must derive every random
// choice from the caller's seed (the paper's stochastic pruning is
// re-runnable by seed) and must not branch on the wall clock. The
// global math/rand functions and bare time.Now reads are flagged;
// rand.New(rand.NewSource(seed)) and time.Now used purely for
// time.Since durations (the CompileTime stat) are fine. Inside
// internal/sim and internal/mapcache, os.Getenv is additionally
// flagged — cycle counts must be a function of the bitstream and the
// memory image, and cache keys must be a function of the request
// content, never of the process environment. internal/core keeps its
// environment exemption: the exact backend reads its node-budget
// escape hatch from the environment on purpose (and the cache key
// folds that knob in through Options.Fingerprint, where it is
// resolved explicitly rather than read ambiently).
//
// internal/telemetry is held to the same bar: the server sits on the
// recorder's hot path (RingSink.Emit runs inside mapper workers), so
// its behaviour must be a function of the events it is handed — no
// wall-clock branching, no global rand, and configuration threaded
// through Config rather than read from the environment.
var detrandRule = &Rule{
	Name: "detrand",
	Doc:  "nondeterminism source inside the deterministic mapper, simulator, mapping cache or telemetry server",
	Applies: func(pkgPath string) bool {
		return strings.HasSuffix(pkgPath, "internal/core") ||
			strings.HasSuffix(pkgPath, "internal/sim") ||
			strings.HasSuffix(pkgPath, "internal/mapcache") ||
			strings.HasSuffix(pkgPath, "internal/telemetry")
	},
	Check: checkDetrand,
}

// seededRandCtors are the math/rand functions that build an explicitly
// seeded generator instead of drawing from the global source.
var seededRandCtors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func checkDetrand(p *Package) []Finding {
	where := "mapper"
	inSim := strings.HasSuffix(p.Path, "internal/sim")
	inCache := strings.HasSuffix(p.Path, "internal/mapcache")
	inTelemetry := strings.HasSuffix(p.Path, "internal/telemetry")
	switch {
	case inSim:
		where = "simulator"
	case inCache:
		where = "mapping cache"
	case inTelemetry:
		where = "telemetry server"
	}
	var out []Finding
	for _, f := range p.Files {
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			switch pkgNameOf(p.Info, x) {
			case "math/rand", "math/rand/v2":
				if !seededRandCtors[sel.Sel.Name] {
					out = append(out, Finding{
						Pos:  p.Fset.Position(call.Pos()),
						Rule: "detrand",
						Msg: "global math/rand source in the deterministic " + where + "; " +
							"draw from rand.New(rand.NewSource(seed))",
					})
				}
			case "time":
				if sel.Sel.Name == "Now" && !nowOnlyTimesDurations(p, f, parents, call) {
					out = append(out, Finding{
						Pos:  p.Fset.Position(call.Pos()),
						Rule: "detrand",
						Msg: "wall-clock read in the deterministic " + where + "; " +
							"time.Now is only allowed to feed time.Since",
					})
				}
			case "os":
				// Environment reads are banned in the simulator, the mapping
				// cache (keys must be pure functions of the request) and the
				// telemetry server (configuration flows through Config);
				// core's exact backend deliberately honors an env knob.
				if (inSim || inCache || inTelemetry) && (sel.Sel.Name == "Getenv" || sel.Sel.Name == "LookupEnv") {
					out = append(out, Finding{
						Pos:  p.Fset.Position(call.Pos()),
						Rule: "detrand",
						Msg: "environment read in the deterministic " + where + "; " +
							"thread configuration through options instead",
					})
				}
			}
			return true
		})
	}
	return out
}

// nowOnlyTimesDurations reports whether a time.Now() call only measures
// durations: either it is directly the argument of time.Since, or it is
// assigned to a variable whose every use is an argument of time.Since.
func nowOnlyTimesDurations(p *Package, f *ast.File, parents map[ast.Node]ast.Node, call *ast.CallExpr) bool {
	if isSinceArg(p, parents, call) {
		return true
	}
	asg, ok := parents[call].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	id, ok := ast.Unparen(asg.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.Info.Defs[id]
	if obj == nil {
		obj = p.Info.Uses[id]
	}
	if obj == nil {
		return false
	}
	ok = true
	ast.Inspect(f, func(n ast.Node) bool {
		use, isIdent := n.(*ast.Ident)
		if !isIdent || p.Info.Uses[use] != obj {
			return true
		}
		if !isSinceArg(p, parents, use) {
			ok = false
		}
		return ok
	})
	return ok
}

// isSinceArg reports whether n is the sole argument of a time.Since
// call.
func isSinceArg(p *Package, parents map[ast.Node]ast.Node, n ast.Node) bool {
	parent := parents[n]
	for {
		pe, ok := parent.(*ast.ParenExpr)
		if !ok {
			break
		}
		parent = parents[pe]
	}
	call, ok := parent.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Since" {
		return false
	}
	x, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && pkgNameOf(p.Info, x) == "time"
}

// parentMap records each node's syntactic parent within the file.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
