package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// loader parses and type-checks the module's non-test packages without
// golang.org/x/tools: module packages are resolved from source through
// the loader itself, standard-library imports through the compiler's
// source importer.
type loader struct {
	root   string // module root (directory containing go.mod)
	module string // module path from go.mod
	fset   *token.FileSet
	dirs   map[string]string // import path -> directory
	pkgs   map[string]*Package
	std    types.Importer
}

func newLoader(root string) (*loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &loader{
		root:   abs,
		module: mod,
		fset:   fset,
		dirs:   map[string]string{},
		pkgs:   map[string]*Package{},
		std:    importer.ForCompiler(fset, "source", nil),
	}
	if err := l.scan(); err != nil {
		return nil, err
	}
	return l, nil
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %s is not a module root: %w", root, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// scan maps every directory holding non-test Go sources to its import
// path.
func (l *loader) scan() error {
	return filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		srcs, err := sourceFiles(path)
		if err != nil {
			return err
		}
		if len(srcs) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.root, path)
		if err != nil {
			return err
		}
		imp := l.module
		if rel != "." {
			imp = l.module + "/" + filepath.ToSlash(rel)
		}
		l.dirs[imp] = path
		return nil
	})
}

// sourceFiles lists a directory's non-test Go files, sorted.
func sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	return out, nil
}

// allPackages returns every scanned import path, sorted.
func (l *loader) allPackages() ([]string, error) {
	paths := make([]string, 0, len(l.dirs))
	for p := range l.dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths, nil
}

// Import implements types.Importer: module packages load through the
// loader (recursively), everything else through the stdlib source
// importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one module package, memoized.
func (l *loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir, ok := l.dirs[path]
	if !ok {
		return nil, fmt.Errorf("lint: unknown package %s", path)
	}
	srcs, err := sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	files := make([]*ast.File, 0, len(srcs))
	for _, src := range srcs {
		f, err := parser.ParseFile(l.fset, src, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &Package{Path: path, Module: l.module, Fset: l.fset, Files: files, Info: info, Types: tpkg}
	l.pkgs[path] = p
	return p, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
