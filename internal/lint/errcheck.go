package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// errcheckRule flags error-returning calls to this module's own
// functions used as bare statements. The toolchain's encode, assemble
// and simulate boundaries all report failure through errors; dropping
// one turns a detected illegality into silent corruption. Stdlib calls
// are exempt (idioms like sb.WriteString never fail), and an explicit
// `_ = f()` stays a visible, greppable waiver.
var errcheckRule = &Rule{
	Name:  "errcheck",
	Doc:   "dropped error from a module call",
	Check: checkErrcheck,
}

var errorType = types.Universe.Lookup("error").Type()

func checkErrcheck(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(p.Info, call)
			if fn == nil || fn.Pkg() == nil || !inModule(p, fn.Pkg().Path()) {
				return true
			}
			if !returnsError(fn) {
				return true
			}
			out = append(out, Finding{
				Pos:  p.Fset.Position(call.Pos()),
				Rule: "errcheck",
				Msg:  fmt.Sprintf("error returned by %s is dropped; handle it or assign to _", fn.Name()),
			})
			return true
		})
	}
	return out
}

func inModule(p *Package, pkgPath string) bool {
	return pkgPath == p.Module || len(pkgPath) > len(p.Module) &&
		pkgPath[:len(p.Module)+1] == p.Module+"/"
}

// returnsError reports whether the function's last result is an error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	return types.Identical(res.At(res.Len()-1).Type(), errorType)
}
