package power

import (
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/sim"
)

// StaticActivity derives the activity report a mapping predicts for a given
// execution profile: every per-tile counter of sim.TileCounters computed
// from the static schedule grids weighted by block-execution counts,
// without running the simulator. Against a simulated run of the same
// program, StaticActivity(m, res.BlockExecs, res.StallCycles) must agree
// with res.Activity() counter for counter — any divergence means the
// mapper's accounting (word counts, writebacks, pnop grouping) and the
// simulator's reality have drifted apart. TestActivityCrossCheck enforces
// this for every kernel × configuration.
func StaticActivity(m *core.Mapping, execs map[cdfg.BBID]int64, stalls int64) *sim.ActivityReport {
	n := m.Grid.NumTiles()
	a := &sim.ActivityReport{
		StallCycles: stalls,
		ConfigWords: m.TotalWords(),
		Tiles:       make([]sim.TileCounters, n),
	}
	var cycles int64
	for _, b := range m.Blocks {
		e := execs[b.BB]
		if e == 0 {
			continue
		}
		cycles += e * int64(b.Len)
		nodes := m.Graph.Blocks[b.BB].Nodes
		for t := 0; t < n; t++ {
			tc := &a.Tiles[t]
			// A pnop word is fetched once per maximal empty run (the same
			// grouping countPnops and the assembler use); its remaining
			// cycles are clock-gated.
			inGap := false
			for _, s := range b.Tiles[t] {
				if s.Kind == core.SlotEmpty {
					tc.IdleCycles += e
					if !inGap {
						tc.Fetches += e
						tc.PnopFetches += e
						inGap = true
					}
					continue
				}
				inGap = false
				tc.Fetches += e
				switch s.Kind {
				case core.SlotOp:
					tc.OpCycles += e
					switch op := nodes[s.Node].Op; {
					case op == cdfg.OpLoad:
						tc.MemOps += e
						tc.MemReads += e
					case op == cdfg.OpStore:
						tc.MemOps += e
						tc.MemWrites += e
					case op == cdfg.OpBr:
						tc.BranchOps += e
					default:
						tc.ALUOps += e
					}
				case core.SlotMove:
					tc.MoveCycles += e
				}
				for i := 0; i < s.NSrc; i++ {
					switch s.Srcs[i].Kind {
					case isa.SrcReg:
						tc.RFReads += e
					case isa.SrcConst:
						tc.CRFReads += e
					}
				}
				if s.WB {
					tc.RFWrites += e
				}
			}
		}
	}
	a.Cycles = cycles + stalls
	return a
}
