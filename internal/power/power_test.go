package power

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/cpu"
	"repro/internal/sim"
)

func TestAreaAnchors(t *testing.T) {
	p := Default()
	// Anchor 1 (paper §I): a 64-word CM is 40% of the PE area.
	pe := p.PENonCM + 64*p.CMAreaPerWord
	share := 64 * p.CMAreaPerWord / pe
	if share < 0.39 || share > 0.41 {
		t.Errorf("CM64 share of PE = %.3f, want ≈0.40", share)
	}
	// Anchor 2 (Fig 11): HOM64 ≈ 2× the CPU.
	cpuA := p.CPUArea().Total()
	hom64 := p.CGRAArea(arch.MustGrid(arch.HOM64)).Total()
	if r := hom64 / cpuA; r < 1.9 || r > 2.1 {
		t.Errorf("HOM64/CPU area = %.2f, want ≈2.0", r)
	}
	// The heterogeneous configurations sit between the CPU and HOM64.
	for _, cfg := range []arch.ConfigName{arch.HOM32, arch.HET1, arch.HET2} {
		a := p.CGRAArea(arch.MustGrid(cfg)).Total()
		if a >= hom64 || a <= cpuA {
			t.Errorf("%s area %.0f not between CPU %.0f and HOM64 %.0f", cfg, a, cpuA, hom64)
		}
	}
	// HET1 has more CM than HET2 (Table I), so more area.
	if p.CGRAArea(arch.MustGrid(arch.HET1)).Total() <= p.CGRAArea(arch.MustGrid(arch.HET2)).Total() {
		t.Error("HET1 should be larger than HET2")
	}
}

func TestFetchAndLeakMonotone(t *testing.T) {
	p := Default()
	f := func(a, b uint8) bool {
		x, y := int(a%120)+1, int(b%120)+1
		if x > y {
			x, y = y, x
		}
		return p.FetchEnergy(x) <= p.FetchEnergy(y) && p.CMLeak(x) <= p.CMLeak(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if p.CMLeak(0) != 0 {
		t.Error("zero-size CM should not leak")
	}
	// Superlinearity: per-word leak grows with depth.
	if p.CMLeak(64)/64 <= p.CMLeak(16)/16 {
		t.Error("CM leak should be superlinear in depth")
	}
}

func TestCGRAEnergyScalesWithActivity(t *testing.T) {
	p := Default()
	g := arch.MustGrid(arch.HOM64)
	mk := func(scale int64) *sim.Result {
		r := &sim.Result{Cycles: 100 * scale, Tiles: make([]sim.TileCounters, 16)}
		for i := range r.Tiles {
			r.Tiles[i] = sim.TileCounters{
				Fetches:  50 * scale,
				OpCycles: 40 * scale,
				RFReads:  30 * scale,
				MemReads: 5 * scale,
			}
		}
		return r
	}
	e1 := p.CGRAEnergy(g, mk(1))
	e2 := p.CGRAEnergy(g, mk(2))
	if e1.Total() <= 0 {
		t.Fatal("non-positive energy")
	}
	// Config is a constant; everything else doubles.
	if got, want := e2.Total()-e2.Config, 2*(e1.Total()-e1.Config); !close(got, want) {
		t.Errorf("activity scaling: %v vs %v", got, want)
	}
	if e1.Config != e2.Config {
		t.Error("config energy must not depend on activity")
	}
	// The same activity on a smaller-CM config costs less.
	eHET := p.CGRAEnergy(arch.MustGrid(arch.HET2), mk(1))
	if eHET.Total() >= e1.Total() {
		t.Errorf("HET2 energy %.4f should undercut HOM64 %.4f at equal activity",
			eHET.Total(), e1.Total())
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestCPUEnergy(t *testing.T) {
	p := Default()
	r := &cpu.Result{Cycles: 1000, Instrs: 600, Muls: 50, Loads: 100, Stores: 40, Branches: 60}
	e := p.CPUEnergy(r)
	if e.Total() <= 0 || e.Config != 0 || e.Fetch != 0 {
		t.Errorf("CPU energy breakdown: %+v", e)
	}
	r2 := *r
	r2.Cycles *= 2
	if p.CPUEnergy(&r2).Total() <= e.Total() {
		t.Error("more cycles must cost more leakage")
	}
}
