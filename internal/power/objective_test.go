package power

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/kernels"
)

func mapFIR(t *testing.T, cfg arch.ConfigName) *core.Mapping {
	t.Helper()
	k, err := kernels.ByName("FIR")
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Map(k.Build(), arch.MustGrid(cfg), core.DefaultOptions(core.FlowCAB))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStaticMappingEnergy(t *testing.T) {
	p := Default()
	m := mapFIR(t, arch.HOM32)
	e := p.StaticMappingEnergy(m)
	if e <= 0 {
		t.Fatalf("static energy %g", e)
	}
	// The estimate must price context words: the same kernel mapped onto
	// the all-64-word grid pays more configuration and leakage energy.
	if e64 := p.StaticMappingEnergy(mapFIR(t, arch.HOM64)); e64 <= e {
		t.Errorf("HOM64 static energy %g should exceed HOM32's %g (larger context memories)", e64, e)
	}
}

func TestPortfolioObjectiveOrdering(t *testing.T) {
	obj := PortfolioObjective(Default())
	m := mapFIR(t, arch.HOM32)
	s := obj(m)
	if s.Primary != float64(m.TotalWords()) {
		t.Errorf("primary %g, want total words %d", s.Primary, m.TotalWords())
	}
	if s.Secondary <= 0 {
		t.Errorf("secondary %g, want a positive energy estimate", s.Secondary)
	}
	// Score ordering: fewer words dominates any energy difference.
	a := core.Score{Primary: 10, Secondary: 99}
	b := core.Score{Primary: 11, Secondary: 1}
	if !a.Less(b) || b.Less(a) {
		t.Error("primary must dominate the ordering")
	}
	c := core.Score{Primary: 10, Secondary: 1}
	if !c.Less(a) {
		t.Error("secondary must break primary ties")
	}
}
