package power_test

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/power"
	"repro/internal/sim"
)

// TestActivityCrossCheck is the activity-vs-power drift detector: for every
// kernel × CM configuration, the activity report derived statically from
// the mapping (StaticActivity over the simulator's block-execution profile)
// must reproduce the simulator's observed counters, and the energy computed
// from each side must agree. Divergence means the mapper's word/writeback
// accounting and the simulator's execution have come apart.
func TestActivityCrossCheck(t *testing.T) {
	p := power.Default()
	names := kernels.Names()
	if testing.Short() {
		names = names[:2]
	}
	for _, name := range names {
		for _, cfg := range arch.ConfigNames() {
			t.Run(name+"/"+string(cfg), func(t *testing.T) {
				k, err := kernels.ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				grid := arch.MustGrid(cfg)
				// A few seeds of headroom: tight configurations legitimately
				// reject some seeds ("no mapping solution" in the paper); a
				// cell none of the seeds maps is skipped, not failed.
				var m *core.Mapping
				for seed := int64(1); seed <= 5; seed++ {
					opt := core.DefaultOptions(core.FlowCAB)
					opt.Seed = seed
					if m, err = core.Map(k.Build(), grid, opt); err == nil {
						break
					}
				}
				if err != nil {
					t.Skipf("no mapping under CAB on %s: %v", cfg, err)
				}
				prog, err := asm.Assemble(m)
				if err != nil {
					t.Fatalf("assemble: %v", err)
				}
				s, err := sim.New(prog)
				if err != nil {
					t.Fatal(err)
				}
				res, err := s.Run(k.Init())
				if err != nil {
					t.Fatalf("run: %v", err)
				}

				observed := res.Activity()
				static := power.StaticActivity(m, res.BlockExecs, res.StallCycles)
				if static.Cycles != observed.Cycles {
					t.Errorf("cycles: static %d, observed %d", static.Cycles, observed.Cycles)
				}
				if static.ConfigWords != observed.ConfigWords {
					t.Errorf("config words: static %d, observed %d", static.ConfigWords, observed.ConfigWords)
				}
				for i := range observed.Tiles {
					if static.Tiles[i] != observed.Tiles[i] {
						t.Errorf("tile %d counters drifted:\n static:   %+v\n observed: %+v",
							i+1, static.Tiles[i], observed.Tiles[i])
					}
				}

				se := p.ActivityEnergy(grid, static)
				oe := p.CGRAEnergy(grid, res)
				for _, c := range []struct {
					name             string
					static, observed float64
				}{
					{"config", se.Config, oe.Config},
					{"fetch", se.Fetch, oe.Fetch},
					{"compute", se.Compute, oe.Compute},
					{"memory", se.Memory, oe.Memory},
					{"leak", se.Leak, oe.Leak},
					{"total", se.Total(), oe.Total()},
				} {
					if !closeEnough(c.static, c.observed) {
						t.Errorf("%s energy: static %.9g µJ, observed %.9g µJ", c.name, c.static, c.observed)
					}
				}
			})
		}
	}
}

// closeEnough allows only float round-off between the two derivations: the
// counters are integers, so both sides evaluate the same model on the same
// numbers and may differ only in summation order.
func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// TestActivityEnergyMatchesCGRAEnergy pins the delegation: energy from a
// Result and from its extracted ActivityReport are the same breakdown.
func TestActivityEnergyMatchesCGRAEnergy(t *testing.T) {
	p := power.Default()
	k, err := kernels.ByName("FIR")
	if err != nil {
		t.Fatal(err)
	}
	grid := arch.MustGrid(arch.HET1)
	m, err := core.Map(k.Build(), grid, core.DefaultOptions(core.FlowCAB))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(m)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(k.Init())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.ActivityEnergy(grid, res.Activity()), p.CGRAEnergy(grid, res); got != want {
		t.Fatalf("ActivityEnergy %+v != CGRAEnergy %+v", got, want)
	}
}
