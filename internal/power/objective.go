package power

import (
	"repro/internal/arch"
	"repro/internal/core"
)

// StaticMappingEnergy estimates a mapping's execution energy (µJ) without
// simulating it: one context fetch per occupied word, op/move energy from
// the static instruction mix, and leakage over the static cycle count
// (every block once). The estimate tracks the simulator-derived energy
// closely enough to rank mappings of the same kernel on the same grid —
// its only job in the seed portfolio — because mappings differ mainly in
// context words and moves, which this model prices exactly like
// CGRAEnergy does.
func (p Params) StaticMappingEnergy(m *core.Mapping) float64 {
	e := p.ConfigWord * float64(m.Grid.TotalCM())
	leakPerCycle := p.LeakGlobal
	for t, words := range m.TileWords() {
		cm := m.Grid.Tile(arch.TileID(t)).CMWords
		e += p.FetchEnergy(cm) * float64(words)
		leakPerCycle += p.CMLeak(cm) + p.LeakTile
	}
	e += p.ALUEnergy*float64(m.TotalOps()) + p.MoveEnergy*float64(m.TotalMoves())
	e += leakPerCycle * float64(m.StaticCycles(nil))
	return e * pJtoUJ
}

// PortfolioObjective is the CLI tools' default portfolio objective:
// minimize total context-memory words (the paper's constraint quantity),
// break ties by the static energy estimate; MapPortfolio itself breaks
// remaining ties toward the lowest seed.
func PortfolioObjective(p Params) core.Objective {
	return func(m *core.Mapping) core.Score {
		return core.Score{
			Primary:   float64(m.TotalWords()),
			Secondary: p.StaticMappingEnergy(m),
		}
	}
}
