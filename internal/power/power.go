// Package power is the analytical area and energy model substituting for
// the paper's Synopsys DC / PrimePower flow (STM 28nm UTBB FD-SOI, 0.6V,
// 25°C). Constants are calibrated to the paper's published anchors:
//
//   - a 64-word context memory is 40% of a PE's area (paper §I);
//   - the HOM64 CGRA is ≈2× the CPU area (Fig 11);
//   - context-memory fetch and leakage dominate tile power, so halving
//     the total context words roughly halves the array's energy at equal
//     latency (Table II's 2.3× average gain);
//   - configuration is a one-time cost proportional to the physical
//     context-memory size (the loosely coupled CGRA is configured once
//     for the full workload, and the controller initializes every word).
//
// The model is linear in the activity counters produced by the simulator
// and the CPU model, so every experiment re-derives energy from actual
// executions.
package power

import (
	"math"

	"repro/internal/arch"
	"repro/internal/cpu"
	"repro/internal/sim"
)

// Params holds the calibrated constants. Areas are in µm², energies in pJ
// (per event) or pJ/cycle (leakage).
type Params struct {
	// Area.
	CMAreaPerWord float64 // context memory, per word
	PENonCM       float64 // ALU + RRF + CRF + decoder + controller
	LSUArea       float64 // load/store unit, on LSU tiles
	GlobalArea    float64 // CGRA controller + global context memory
	NetArea       float64 // logarithmic interconnect
	DataMemArea   float64 // 32 kB data memory (shared by CPU and CGRA)
	CPUCoreArea   float64 // or1k core
	CPUIMemArea   float64 // CPU program memory + instruction cache

	// CGRA energy.
	FetchBase  float64 // context fetch, size-independent part
	FetchQuad  float64 // context fetch, ×(CM words)² part
	ALUEnergy  float64 // per executed operation
	MoveEnergy float64 // per executed move
	RFRead     float64
	RFWrite    float64
	CRFRead    float64
	MemAccess  float64 // data memory access through the interconnect
	LeakCM     float64 // per tile per cycle, ×(CM words)^LeakCMExp
	LeakCMExp  float64 // superlinear depth exponent of CM leakage
	LeakTile   float64 // per tile (non-CM) per cycle
	LeakGlobal float64 // controller + interconnect per cycle
	ConfigWord float64 // one-time configuration, per physical CM word

	// CPU energy.
	CPUInstr  float64 // base per-instruction energy (fetch+decode+issue)
	CPULoad   float64 // extra for loads
	CPUStore  float64 // extra for stores
	CPUMul    float64 // extra for multiplies
	CPUBranch float64 // extra for branches
	CPULeak   float64 // per cycle
}

// Default returns the calibrated 28nm-style parameter set.
func Default() Params {
	return Params{
		CMAreaPerWord: 85,
		PENonCM:       8160, // 64*85 = 5440 is exactly 40% of 13600
		LSUArea:       600,
		GlobalArea:    3200,
		NetArea:       2600,
		DataMemArea:   30000,
		CPUCoreArea:   58000,
		CPUIMemArea:   40550,

		FetchBase:  0.15,
		FetchQuad:  0.0008,
		ALUEnergy:  0.8,
		MoveEnergy: 0.35,
		RFRead:     0.15,
		RFWrite:    0.20,
		CRFRead:    0.10,
		MemAccess:  2.5,
		LeakCM:     0.004,
		LeakCMExp:  1.35,
		LeakTile:   0.04,
		LeakGlobal: 0.3,
		ConfigWord: 10.0,

		CPUInstr:  25.0,
		CPULoad:   28.0,
		CPUStore:  20.0,
		CPUMul:    10.0,
		CPUBranch: 6.0,
		CPULeak:   13.0,
	}
}

// FetchEnergy returns the energy of one context-word fetch from a CM of
// the given word count. The superlinear term models the longer bitlines
// and wider decode of larger memories at near-threshold voltage.
func (p Params) FetchEnergy(cmWords int) float64 {
	return p.FetchBase + p.FetchQuad*float64(cmWords)*float64(cmWords)
}

// CMLeak returns a tile's context-memory leakage per cycle. The
// superlinear depth exponent models the stronger periphery and retention
// margins deep near-threshold memories need.
func (p Params) CMLeak(cmWords int) float64 {
	if cmWords <= 0 {
		return 0
	}
	return p.LeakCM * math.Pow(float64(cmWords), p.LeakCMExp)
}

// AreaBreakdown decomposes a design's area (µm²).
type AreaBreakdown struct {
	Name    string
	PENonCM float64 // all tiles' non-CM logic (CPU: core)
	CM      float64 // all context memories (CPU: program memory + I$)
	LSU     float64
	Global  float64 // controller + interconnect
	DataMem float64
}

// Total returns the summed area.
func (a AreaBreakdown) Total() float64 {
	return a.PENonCM + a.CM + a.LSU + a.Global + a.DataMem
}

// CGRAArea returns the area of a CGRA configuration.
func (p Params) CGRAArea(g *arch.Grid) AreaBreakdown {
	a := AreaBreakdown{Name: g.Name, DataMem: p.DataMemArea}
	for _, t := range g.Tiles {
		a.PENonCM += p.PENonCM
		a.CM += p.CMAreaPerWord * float64(t.CMWords)
		if t.HasLSU {
			a.LSU += p.LSUArea
		}
	}
	a.Global = p.GlobalArea + p.NetArea
	return a
}

// CPUArea returns the baseline processor's area.
func (p Params) CPUArea() AreaBreakdown {
	return AreaBreakdown{
		Name:    "or1k CPU",
		PENonCM: p.CPUCoreArea,
		CM:      p.CPUIMemArea,
		DataMem: p.DataMemArea,
	}
}

// EnergyBreakdown decomposes one execution's energy (µJ).
type EnergyBreakdown struct {
	Config  float64
	Fetch   float64
	Compute float64 // ALU + moves + RF + CRF
	Memory  float64
	Leak    float64
}

// Total returns the summed energy in µJ.
func (e EnergyBreakdown) Total() float64 {
	return e.Config + e.Fetch + e.Compute + e.Memory + e.Leak
}

const pJtoUJ = 1e-6

// CGRAEnergy derives the energy of a simulated CGRA run.
func (p Params) CGRAEnergy(g *arch.Grid, r *sim.Result) EnergyBreakdown {
	return p.activityEnergy(g, r.Cycles, r.Tiles)
}

// ActivityEnergy derives energy from an observed-activity report — the
// same model as CGRAEnergy (both delegate to one implementation), consumed
// directly from the simulator's instrumentation so energy can be recomputed
// from recorded activity without the live Result.
func (p Params) ActivityEnergy(g *arch.Grid, a *sim.ActivityReport) EnergyBreakdown {
	return p.activityEnergy(g, a.Cycles, a.Tiles)
}

func (p Params) activityEnergy(g *arch.Grid, cycles int64, tiles []sim.TileCounters) EnergyBreakdown {
	var e EnergyBreakdown
	// One-time configuration initializes the physical context memories.
	e.Config = p.ConfigWord * float64(g.TotalCM()) * pJtoUJ
	var leakPerCycle float64
	for i := range g.Tiles {
		t := &g.Tiles[i]
		tc := &tiles[i]
		fe := p.FetchEnergy(t.CMWords)
		e.Fetch += fe * float64(tc.Fetches) * pJtoUJ
		e.Compute += (p.ALUEnergy*float64(tc.OpCycles) +
			p.MoveEnergy*float64(tc.MoveCycles) +
			p.RFRead*float64(tc.RFReads) +
			p.RFWrite*float64(tc.RFWrites) +
			p.CRFRead*float64(tc.CRFReads)) * pJtoUJ
		e.Memory += p.MemAccess * float64(tc.MemReads+tc.MemWrites) * pJtoUJ
		leakPerCycle += p.CMLeak(t.CMWords) + p.LeakTile
	}
	leakPerCycle += p.LeakGlobal
	e.Leak = leakPerCycle * float64(cycles) * pJtoUJ
	return e
}

// CPUEnergy derives the energy of a CPU run.
func (p Params) CPUEnergy(r *cpu.Result) EnergyBreakdown {
	var e EnergyBreakdown
	e.Compute = (p.CPUInstr*float64(r.Instrs) +
		p.CPUMul*float64(r.Muls) +
		p.CPUBranch*float64(r.Branches)) * pJtoUJ
	e.Memory = (p.CPULoad*float64(r.Loads) + p.CPUStore*float64(r.Stores)) * pJtoUJ
	e.Leak = p.CPULeak * float64(r.Cycles) * pJtoUJ
	return e
}
