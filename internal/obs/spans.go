package obs

import (
	"fmt"
	"sort"
)

// SpanNode is one reconstructed span in a trace's span forest: a
// begin/end pair (or a self-contained complete event) with its nested
// children. Durations and timestamps keep the event units — wall-clock
// microseconds on the PIDTool track, simulated cycles on PIDSim.
type SpanNode struct {
	Name  string
	Cat   string
	PID   int
	TID   int
	ID    int64
	Start float64
	Dur   float64
	Args  map[string]any

	Children []*SpanNode
}

// trackKey identifies one timeline: spans nest per (pid, tid), never
// across tracks.
type trackKey struct{ pid, tid int }

// BuildSpanForest reconstructs the span trees of an event stream and
// validates its structure in the same pass. The structural contract it
// enforces is the one the Recorder guarantees on emission:
//
//   - every PhaseBegin has a matching PhaseEnd with the same span ID, on
//     the same (pid, tid) track, properly nested (an inner span ends
//     before its enclosing span);
//   - no span or complete event has a negative duration, and no span
//     ends before it begins;
//   - timestamps are monotone non-decreasing per PIDTool track (each
//     track is single-threaded wall time; PIDSim tracks are exempt
//     because cycle timestamps restart at zero on every simulation).
//
// Any violation returns an error naming the offending event, so a
// truncated, reordered or hand-edited artifact is rejected rather than
// silently misattributed. Instant and metadata events are checked for
// track monotonicity but do not create nodes.
func BuildSpanForest(events []Event) ([]*SpanNode, error) {
	var roots []*SpanNode
	stacks := map[trackKey][]*SpanNode{}
	lastTS := map[trackKey]float64{}
	for i, e := range events {
		key := trackKey{e.PID, e.TID}
		if e.PID == PIDTool && e.Ph != PhaseMeta {
			if prev, seen := lastTS[key]; seen && e.TS < prev {
				return nil, fmt.Errorf("event %d (%s %q): timestamp %.3f goes backwards on track pid=%d tid=%d (previous %.3f)",
					i+1, e.Ph, e.Name, e.TS, e.PID, e.TID, prev)
			}
			lastTS[key] = e.TS
		}
		switch e.Ph {
		case PhaseBegin:
			n := &SpanNode{Name: e.Name, Cat: e.Cat, PID: e.PID, TID: e.TID, ID: e.ID, Start: e.TS, Dur: -1}
			stack := stacks[key]
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				top.Children = append(top.Children, n)
			} else {
				roots = append(roots, n)
			}
			stacks[key] = append(stack, n)
		case PhaseEnd:
			stack := stacks[key]
			if len(stack) == 0 {
				return nil, fmt.Errorf("event %d: span end %q (id %d) without a begin on track pid=%d tid=%d",
					i+1, e.Name, e.ID, e.PID, e.TID)
			}
			top := stack[len(stack)-1]
			if top.ID != e.ID || top.Name != e.Name {
				return nil, fmt.Errorf("event %d: span end %q (id %d) does not match open span %q (id %d) on track pid=%d tid=%d",
					i+1, e.Name, e.ID, top.Name, top.ID, e.PID, e.TID)
			}
			if e.Dur < 0 {
				return nil, fmt.Errorf("event %d: span %q has negative duration %.3f", i+1, e.Name, e.Dur)
			}
			if e.TS < top.Start {
				return nil, fmt.Errorf("event %d: span %q ends at %.3f before its begin at %.3f", i+1, e.Name, e.TS, top.Start)
			}
			top.Dur = e.Dur
			top.Args = e.Args
			stacks[key] = stack[:len(stack)-1]
		case PhaseComplete:
			if e.Dur < 0 {
				return nil, fmt.Errorf("event %d: complete event %q has negative duration %.3f", i+1, e.Name, e.Dur)
			}
			n := &SpanNode{Name: e.Name, Cat: e.Cat, PID: e.PID, TID: e.TID, ID: e.ID, Start: e.TS, Dur: e.Dur, Args: e.Args}
			stack := stacks[key]
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				top.Children = append(top.Children, n)
			} else {
				roots = append(roots, n)
			}
		case PhaseInstant, PhaseMeta:
			// Markers and metadata don't form spans.
		default:
			return nil, fmt.Errorf("event %d: unknown phase %q (name %q)", i+1, e.Ph, e.Name)
		}
	}
	var open []*SpanNode
	for _, stack := range stacks {
		open = append(open, stack...)
	}
	// Deterministic error choice: span IDs are process-unique and
	// monotone, so the lowest-ID unmatched begin is the earliest one.
	sort.Slice(open, func(i, j int) bool { return open[i].ID < open[j].ID })
	if len(open) > 0 {
		top := open[0]
		return nil, fmt.Errorf("span begin %q (id %d) on track pid=%d tid=%d has no matching end",
			top.Name, top.ID, top.PID, top.TID)
	}
	return roots, nil
}
