package obs

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"
)

// Recorder ties a metric Registry and an event Sink to one clock. It is
// the handle instrumented code holds: a nil *Recorder is a complete
// no-op (every method is nil-safe), so packages accept a recorder
// unconditionally and callers opt in by supplying one.
//
// Recorders are safe for concurrent use when their sink is (all sinks in
// this package are).
type Recorder struct {
	reg   *Registry
	sink  Sink
	start time.Time
	// spanID hands every span a process-unique id linking its begin and
	// end events, so concurrent tracks interleaved in one stream stay
	// pairable offline (cgratrace, cgrametrics -events).
	spanID atomic.Int64
}

// NewRecorder binds a registry and a sink. Either may be nil: a recorder
// with only a registry counts, one with only a sink traces.
func NewRecorder(reg *Registry, sink Sink) *Recorder {
	return &Recorder{reg: reg, sink: sink, start: time.Now()}
}

// Enabled reports whether the recorder is live. Hot paths gate their
// instrumentation on this single nil check.
func (r *Recorder) Enabled() bool { return r != nil }

// Registry returns the recorder's registry (nil for the nil recorder).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Counter resolves a named counter (nil-safe at every level).
func (r *Recorder) Counter(name string) *Counter { return r.Registry().Counter(name) }

// Gauge resolves a named gauge.
func (r *Recorder) Gauge(name string) *Gauge { return r.Registry().Gauge(name) }

// Histogram resolves a named histogram.
func (r *Recorder) Histogram(name string) *Histogram { return r.Registry().Histogram(name) }

// now returns microseconds since the recorder started.
func (r *Recorder) now() float64 {
	return float64(time.Since(r.start)) / float64(time.Microsecond)
}

// Emit records an instant event on the toolchain track now.
func (r *Recorder) Emit(name, cat string, tid int, args map[string]any) {
	if r == nil || r.sink == nil {
		return
	}
	r.sink.Emit(Event{Name: name, Cat: cat, Ph: PhaseInstant, TS: r.now(), PID: PIDTool, TID: tid, Args: args})
}

// EmitEvent records a fully caller-built event (the simulator uses this
// to stamp events in the cycle domain on the PIDSim track).
func (r *Recorder) EmitEvent(e Event) {
	if r == nil || r.sink == nil {
		return
	}
	r.sink.Emit(e)
}

// Span is an in-flight duration measurement. StartSpan emits the
// PhaseBegin event immediately — a live /events stream shows the span
// while it is open — and End emits the matching PhaseEnd carrying the
// duration and args. The zero Span (from a nil recorder) is a no-op.
type Span struct {
	r    *Recorder
	name string
	cat  string
	tid  int
	id   int64
	t0   time.Time
}

// StartSpan opens a wall-clock span on the toolchain track and emits its
// begin event. Always pair with End.
func (r *Recorder) StartSpan(name, cat string, tid int) Span {
	if r == nil || r.sink == nil {
		return Span{}
	}
	s := Span{r: r, name: name, cat: cat, tid: tid, id: r.spanID.Add(1), t0: time.Now()}
	r.sink.Emit(Event{
		Name: name, Cat: cat, Ph: PhaseBegin,
		TS:  float64(s.t0.Sub(r.start)) / float64(time.Microsecond),
		PID: PIDTool, TID: tid, ID: s.id,
	})
	return s
}

// End closes the span, attaching the args to the emitted end event. Dur
// repeats the begin-to-end distance so a span is self-describing even
// when its begin event was dropped from a bounded stream.
func (s Span) End(args map[string]any) {
	if s.r == nil {
		return
	}
	dur := time.Since(s.t0)
	s.r.sink.Emit(Event{
		Name: s.name, Cat: s.cat, Ph: PhaseEnd,
		TS:  float64(s.t0.Sub(s.r.start)+dur) / float64(time.Microsecond),
		Dur: float64(dur) / float64(time.Microsecond),
		PID: PIDTool, TID: s.tid, ID: s.id, Args: args,
	})
}

// FileRecorder is a Recorder whose outputs land in files when flushed.
type FileRecorder struct {
	*Recorder
	buf         *BufferSink
	metricsPath string
	eventsPath  string
}

// FileOutputs builds the CLIs' standard -metrics/-events wiring: a
// recorder whose registry snapshot is written as JSONL to metricsPath and
// whose events are written as a Chrome trace to eventsPath by Flush.
// Either path may be empty; with both empty the recorder is nil (fully
// disabled) and Flush is still safe to call.
func FileOutputs(metricsPath, eventsPath string) *FileRecorder {
	return FileOutputsWith(metricsPath, eventsPath, nil)
}

// FileOutputsWith is FileOutputs with an extra live sink fanned in — the
// telemetry server's ring buffer rides alongside the file artifacts.
// With a non-nil extra sink the registry always exists (a live /metrics
// endpoint needs one even when no metrics file was requested) and every
// event reaches both the buffer (when eventsPath is set) and the extra
// sink. extra == nil degrades exactly to FileOutputs.
func FileOutputsWith(metricsPath, eventsPath string, extra Sink) *FileRecorder {
	f := &FileRecorder{metricsPath: metricsPath, eventsPath: eventsPath}
	if metricsPath == "" && eventsPath == "" && extra == nil {
		return f
	}
	var reg *Registry
	if metricsPath != "" || extra != nil {
		reg = NewRegistry()
	}
	var sinks MultiSink
	if eventsPath != "" {
		f.buf = NewBufferSink(0)
		if reg != nil {
			f.buf.Meter(reg)
		}
		sinks = append(sinks, f.buf)
	}
	if extra != nil {
		sinks = append(sinks, extra)
	}
	var sink Sink
	switch len(sinks) {
	case 0:
		// metrics-only recorder
	case 1:
		sink = sinks[0]
	default:
		sink = sinks
	}
	f.Recorder = NewRecorder(reg, sink)
	return f
}

// Flush writes the configured artifacts. It is idempotent in effect
// (rewrites the same content) and safe on a disabled recorder.
func (f *FileRecorder) Flush() error {
	if f == nil || f.Recorder == nil {
		return nil
	}
	if f.metricsPath != "" {
		w, err := os.Create(f.metricsPath)
		if err != nil {
			return fmt.Errorf("obs: %w", err)
		}
		if err := f.Registry().WriteJSONL(w); err != nil {
			w.Close()
			return err
		}
		if err := w.Close(); err != nil {
			return fmt.Errorf("obs: %w", err)
		}
	}
	if f.eventsPath != "" {
		w, err := os.Create(f.eventsPath)
		if err != nil {
			return fmt.Errorf("obs: %w", err)
		}
		if err := f.buf.WriteTrace(w); err != nil {
			w.Close()
			return err
		}
		if err := w.Close(); err != nil {
			return fmt.Errorf("obs: %w", err)
		}
	}
	return nil
}
