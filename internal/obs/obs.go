// Package obs is the repository's unified instrumentation layer: atomic
// counters, gauges and histograms behind a Registry, structured events
// behind a Sink, and a Recorder tying both to a common clock.
//
// The package is dependency-free (stdlib only) and built around one
// contract: a nil *Recorder, *Registry, *Counter, *Gauge or *Histogram is
// a valid no-op. Instrumented code holds a possibly-nil recorder and
// calls it unconditionally on cold paths; hot loops gate on
// Recorder.Enabled() (a nil check) so the disabled path costs nothing —
// the BenchmarkCoreMapObsOff guard pins the mapper's off-path at zero
// extra allocations.
//
// Events are exported two ways: as a JSONL log (one JSON object per
// line, see JSONLSink) and as a Chrome trace_event file (WriteTrace)
// that chrome://tracing and https://ui.perfetto.dev open directly.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The nil Counter
// discards updates and reads as zero.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value-wins metric. The nil Gauge discards
// updates and reads as zero.
type Gauge struct{ v atomic.Int64 }

// Set records the gauge's current value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Value returns the last recorded value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates a distribution of int64 observations into
// power-of-two buckets (bucket i counts values with bit length i). The
// nil Histogram discards observations.
type Histogram struct {
	buckets [65]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one sample. Negative samples clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns an upper bound of the q-quantile (0 ≤ q ≤ 1) from the
// power-of-two buckets: the top of the bucket the quantile falls in.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > rank {
			if i == 0 {
				return 0
			}
			return (1 << uint(i)) - 1
		}
	}
	return h.sum.Load()
}

// Kind classifies a metric in snapshots.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// MetricValue is one metric's snapshot, the unit of the JSONL metrics
// artifact.
type MetricValue struct {
	Name  string `json:"name"`
	Kind  Kind   `json:"kind"`
	Value int64  `json:"value"`
	// Histogram-only fields.
	Count int64 `json:"count,omitempty"`
	P50   int64 `json:"p50,omitempty"`
	P95   int64 `json:"p95,omitempty"`
	P99   int64 `json:"p99,omitempty"`
}

// Display renders the snapshot value for text tables (trace.Metrics).
func (m MetricValue) Display() string {
	if m.Kind == KindHistogram {
		return fmt.Sprintf("n=%d sum=%d p50=%d p95=%d p99=%d", m.Count, m.Value, m.P50, m.P95, m.P99)
	}
	return fmt.Sprint(m.Value)
}

// Registry is a concurrent-safe, named metric store. Metrics are created
// on first use and keep their identity for the registry's lifetime, so
// hot paths can resolve a *Counter once and update it lock-free. The nil
// Registry hands out nil metrics, completing the no-op chain.
type Registry struct {
	mu sync.Mutex
	m  map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{m: map[string]any{}} }

func lookup[T any](r *Registry, name string, make func() *T) *T {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.m[name]; ok {
		if t, ok := v.(*T); ok {
			return t
		}
		// Name reused with a different kind: a caller bug, but metrics
		// must never panic production flows — hand out a detached metric.
		return make()
	}
	t := make()
	r.m[name] = t
	return t
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	return lookup(r, name, func() *Counter { return &Counter{} })
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	return lookup(r, name, func() *Gauge { return &Gauge{} })
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return lookup(r, name, func() *Histogram { return &Histogram{} })
}

// Snapshot returns every metric's current value, sorted by name.
func (r *Registry) Snapshot() []MetricValue {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.m))
	for n := range r.m {
		names = append(names, n)
	}
	metrics := make(map[string]any, len(r.m))
	for n, v := range r.m {
		metrics[n] = v
	}
	r.mu.Unlock()
	sort.Strings(names)
	out := make([]MetricValue, 0, len(names))
	for _, n := range names {
		switch v := metrics[n].(type) {
		case *Counter:
			out = append(out, MetricValue{Name: n, Kind: KindCounter, Value: v.Value()})
		case *Gauge:
			out = append(out, MetricValue{Name: n, Kind: KindGauge, Value: v.Value()})
		case *Histogram:
			out = append(out, MetricValue{
				Name: n, Kind: KindHistogram,
				Value: v.Sum(), Count: v.Count(),
				P50: v.Quantile(0.50), P95: v.Quantile(0.95), P99: v.Quantile(0.99),
			})
		}
	}
	return out
}

// WriteJSONL writes the snapshot as JSON lines: one metric object per
// line, the format of the CLIs' -metrics artifact.
func (r *Registry) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, m := range r.Snapshot() {
		if err := enc.Encode(m); err != nil {
			return fmt.Errorf("obs: writing metrics: %w", err)
		}
	}
	return nil
}
