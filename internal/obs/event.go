package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Phase codes follow the Chrome trace_event format: "X" is a complete
// (duration) event, "i" an instant event.
const (
	PhaseComplete = "X"
	PhaseInstant  = "i"
)

// Well-known process IDs partitioning the timeline into Perfetto tracks:
// wall-clock spans of the toolchain vs. the simulator's cycle-domain
// timeline (1 simulated cycle rendered as 1 µs).
const (
	PIDTool = 1 // mapper / verifier / CLI phases, wall-clock µs
	PIDSim  = 2 // simulator block executions, cycle-stamped
)

// Event is one structured instrumentation event. Field names mirror the
// Chrome trace_event JSON keys so one struct serves both the JSONL log
// and the trace exporter.
type Event struct {
	Name string `json:"name"`
	Cat  string `json:"cat,omitempty"`
	// Ph is the phase code (PhaseComplete, PhaseInstant).
	Ph string `json:"ph"`
	// TS is the event timestamp in microseconds since the recorder
	// started (or in simulated cycles for PIDSim events).
	TS float64 `json:"ts"`
	// Dur is the span duration in the same unit, for complete events.
	Dur float64 `json:"dur,omitempty"`
	PID int     `json:"pid"`
	TID int     `json:"tid"`
	// Args carries event-specific payload (kept small; values must be
	// JSON-encodable).
	Args map[string]any `json:"args,omitempty"`
}

// Sink consumes events. Implementations must be safe for concurrent
// Emit calls (portfolio workers share one sink).
type Sink interface {
	Emit(Event)
}

// JSONLSink writes each event as one JSON line — the structured event
// log. Encoding errors are recorded and reported by Err rather than
// interrupting the instrumented computation.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLSink returns a sink writing JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit writes one event line.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = s.enc.Encode(e)
	}
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// BufferSink collects events in memory, bounded by Cap, for later export
// (WriteTrace / WriteJSONL). Dropped counts events discarded past the cap
// — truncation is reported, never silent.
type BufferSink struct {
	mu      sync.Mutex
	events  []Event
	cap     int
	dropped int64
}

// DefaultBufferCap bounds a BufferSink when no explicit cap is given:
// large enough for a full cgrabench evaluation, small enough that a
// runaway event source cannot exhaust memory.
const DefaultBufferCap = 1 << 18

// NewBufferSink returns a buffering sink holding at most cap events
// (DefaultBufferCap when cap <= 0).
func NewBufferSink(cap int) *BufferSink {
	if cap <= 0 {
		cap = DefaultBufferCap
	}
	return &BufferSink{cap: cap}
}

// Emit appends the event, dropping it when the buffer is full.
func (s *BufferSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.events) >= s.cap {
		s.dropped++
		return
	}
	s.events = append(s.events, e)
}

// Events returns a copy of the buffered events.
func (s *BufferSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Dropped returns how many events were discarded past the cap.
func (s *BufferSink) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// WriteJSONL writes the buffered events as JSON lines.
func (s *BufferSink) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range s.Events() {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("obs: writing events: %w", err)
		}
	}
	return nil
}

// WriteTrace writes the buffered events in the Chrome trace_event JSON
// format (the {"traceEvents": [...]} object form), which chrome://tracing
// and Perfetto's trace viewer load directly. Process-name metadata labels
// the PIDTool and PIDSim tracks.
func (s *BufferSink) WriteTrace(w io.Writer) error {
	events := s.Events()
	type traceFile struct {
		TraceEvents     []json.RawMessage `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
	}
	tf := traceFile{DisplayTimeUnit: "ms"}
	meta := func(pid int, name string) json.RawMessage {
		b, _ := json.Marshal(map[string]any{
			"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
			"args": map[string]any{"name": name},
		})
		return b
	}
	tf.TraceEvents = append(tf.TraceEvents, meta(PIDTool, "toolchain (wall µs)"), meta(PIDSim, "simulator (cycles)"))
	for i := range events {
		b, err := json.Marshal(&events[i])
		if err != nil {
			return fmt.Errorf("obs: encoding trace event %q: %w", events[i].Name, err)
		}
		tf.TraceEvents = append(tf.TraceEvents, b)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(tf); err != nil {
		return fmt.Errorf("obs: writing trace: %w", err)
	}
	return nil
}

// MultiSink fans each event out to every child sink.
type MultiSink []Sink

// Emit forwards the event to every sink.
func (m MultiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}
