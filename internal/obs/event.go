package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Phase codes follow the Chrome trace_event format: "B"/"E" open and
// close a duration span, "X" is a self-contained complete event, "i" an
// instant event, "M" metadata. Recorder spans emit a begin/end pair (so a
// live event stream shows spans the moment they open); the simulator's
// cycle-domain block events stay single "X" records.
const (
	PhaseBegin    = "B"
	PhaseEnd      = "E"
	PhaseComplete = "X"
	PhaseInstant  = "i"
	PhaseMeta     = "M"
)

// Well-known process IDs partitioning the timeline into Perfetto tracks:
// wall-clock spans of the toolchain vs. the simulator's cycle-domain
// timeline (1 simulated cycle rendered as 1 µs).
const (
	PIDTool = 1 // mapper / verifier / CLI phases, wall-clock µs
	PIDSim  = 2 // simulator block executions, cycle-stamped
)

// Event is one structured instrumentation event. Field names mirror the
// Chrome trace_event JSON keys so one struct serves both the JSONL log
// and the trace exporter.
type Event struct {
	Name string `json:"name"`
	Cat  string `json:"cat,omitempty"`
	// Ph is the phase code (PhaseComplete, PhaseInstant).
	Ph string `json:"ph"`
	// TS is the event timestamp in microseconds since the recorder
	// started (or in simulated cycles for PIDSim events).
	TS float64 `json:"ts"`
	// Dur is the span duration in the same unit, for complete events.
	Dur float64 `json:"dur,omitempty"`
	PID int     `json:"pid"`
	TID int     `json:"tid"`
	// ID links a span's begin and end events: the recorder stamps every
	// span with a process-unique id, so offline analyzers (cgratrace,
	// cgrametrics -events) pair PhaseBegin with PhaseEnd even when spans
	// from concurrent tracks interleave in the stream. Zero on instant,
	// complete and metadata events.
	ID int64 `json:"id,omitempty"`
	// Args carries event-specific payload (kept small; values must be
	// JSON-encodable).
	Args map[string]any `json:"args,omitempty"`
}

// Sink consumes events. Implementations must be safe for concurrent
// Emit calls (portfolio workers share one sink).
type Sink interface {
	Emit(Event)
}

// JSONLSink writes each event as one JSON line — the structured event
// log. Encoding errors are recorded and reported by Err rather than
// interrupting the instrumented computation.
type JSONLSink struct {
	mu     sync.Mutex
	enc    *json.Encoder
	err    error
	errCtr *Counter
}

// NewJSONLSink returns a sink writing JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Meter surfaces the sink's write failures as the registry counter
// obs.sink.errors, so a dying event log is visible on a live /metrics
// scrape instead of only in the post-run Err check.
func (s *JSONLSink) Meter(reg *Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.errCtr = reg.Counter("obs.sink.errors")
}

// Emit writes one event line.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		if s.err = s.enc.Encode(e); s.err != nil {
			s.errCtr.Inc()
		}
	}
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// BufferSink collects events in memory, bounded by Cap, for later export
// (WriteTrace / WriteJSONL). Dropped counts events discarded past the cap
// — truncation is reported, never silent.
type BufferSink struct {
	mu      sync.Mutex
	events  []Event
	cap     int
	dropped int64
	dropCtr *Counter
}

// DefaultBufferCap bounds a BufferSink when no explicit cap is given:
// large enough for a full cgrabench evaluation, small enough that a
// runaway event source cannot exhaust memory.
const DefaultBufferCap = 1 << 18

// NewBufferSink returns a buffering sink holding at most cap events
// (DefaultBufferCap when cap <= 0).
func NewBufferSink(cap int) *BufferSink {
	if cap <= 0 {
		cap = DefaultBufferCap
	}
	return &BufferSink{cap: cap}
}

// Meter surfaces the sink's cap overflow as the registry counter
// obs.sink.dropped: silent event loss becomes a visible metric on every
// snapshot and /metrics scrape.
func (s *BufferSink) Meter(reg *Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropCtr = reg.Counter("obs.sink.dropped")
}

// Emit appends the event, dropping it when the buffer is full.
func (s *BufferSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.events) >= s.cap {
		s.dropped++
		s.dropCtr.Inc()
		return
	}
	s.events = append(s.events, e)
}

// Events returns a copy of the buffered events.
func (s *BufferSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Dropped returns how many events were discarded past the cap.
func (s *BufferSink) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// WriteJSONL writes the buffered events as JSON lines.
func (s *BufferSink) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range s.Events() {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("obs: writing events: %w", err)
		}
	}
	return nil
}

// WriteTrace writes the buffered events in the Chrome trace_event JSON
// format (the {"traceEvents": [...]} object form), which chrome://tracing
// and Perfetto's trace viewer load directly. Process-name metadata labels
// the PIDTool and PIDSim tracks.
func (s *BufferSink) WriteTrace(w io.Writer) error {
	events := s.Events()
	type traceFile struct {
		TraceEvents     []json.RawMessage `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
	}
	tf := traceFile{DisplayTimeUnit: "ms"}
	meta := func(pid int, name string) json.RawMessage {
		b, _ := json.Marshal(map[string]any{
			"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
			"args": map[string]any{"name": name},
		})
		return b
	}
	tf.TraceEvents = append(tf.TraceEvents, meta(PIDTool, "toolchain (wall µs)"), meta(PIDSim, "simulator (cycles)"))
	for i := range events {
		b, err := json.Marshal(&events[i])
		if err != nil {
			return fmt.Errorf("obs: encoding trace event %q: %w", events[i].Name, err)
		}
		tf.TraceEvents = append(tf.TraceEvents, b)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(tf); err != nil {
		return fmt.Errorf("obs: writing trace: %w", err)
	}
	return nil
}

// ReadEvents parses an event artifact in either of the repository's two
// on-disk forms: JSON lines (one Event per line — the telemetry /events
// stream and the cgratrace fixtures) or the Chrome trace_event object
// form the CLIs' -events flag writes ({"traceEvents": [...]}). Decoding
// is strict — an unknown field or trailing garbage is an error naming
// the offending line — so a corrupted or mis-routed artifact cannot pass
// the cgrametrics events gate silently.
func ReadEvents(r io.Reader) ([]Event, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("obs: reading events: %w", err)
	}
	if len(bytes.TrimSpace(data)) == 0 {
		return nil, fmt.Errorf("obs: no events (empty input)")
	}
	// The Chrome trace form is one JSON object wrapping the event array.
	var tf struct {
		TraceEvents     []json.RawMessage `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tf); err == nil && !dec.More() && tf.TraceEvents != nil {
		out := make([]Event, 0, len(tf.TraceEvents))
		for i, raw := range tf.TraceEvents {
			e, err := decodeEvent(raw)
			if err != nil {
				return nil, fmt.Errorf("obs: trace event %d: %w", i+1, err)
			}
			out = append(out, e)
		}
		return out, nil
	}
	var out []Event
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	ln := 0
	for sc.Scan() {
		ln++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		e, err := decodeEvent(line)
		if err != nil {
			return nil, fmt.Errorf("obs: events line %d: %w", ln, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading events: %w", err)
	}
	return out, nil
}

// decodeEvent strictly decodes one event object.
func decodeEvent(raw []byte) (Event, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var e Event
	if err := dec.Decode(&e); err != nil {
		return Event{}, err
	}
	if dec.More() {
		return Event{}, fmt.Errorf("trailing data after event object")
	}
	if e.Ph == "" {
		return Event{}, fmt.Errorf("event has no phase (not an event object?)")
	}
	return e, nil
}

// MultiSink fans each event out to every child sink.
type MultiSink []Sink

// Emit forwards the event to every sink.
func (m MultiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}
