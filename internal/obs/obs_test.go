package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestNilNoOps(t *testing.T) {
	// Every handle in the no-op chain must be callable at nil.
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Counter("x").Add(3)
	r.Gauge("x").Set(3)
	r.Histogram("x").Observe(3)
	r.Emit("e", "c", 0, nil)
	r.EmitEvent(Event{Name: "e"})
	r.StartSpan("s", "c", 0).End(nil)
	if got := r.Counter("x").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	var reg *Registry
	if reg.Snapshot() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
	if reg.Counter("y") != nil {
		t.Fatal("nil registry handed out a live counter")
	}
}

func TestNilPathAllocFree(t *testing.T) {
	// The disabled path is what the mapper hot loop pays; it must not
	// allocate at all.
	var r *Recorder
	allocs := testing.AllocsPerRun(100, func() {
		if r.Enabled() {
			t.Fatal("unexpectedly enabled")
		}
		r.Counter("x").Inc()
		r.StartSpan("s", "c", 0).End(nil)
	})
	if allocs != 0 {
		t.Fatalf("nil recorder path allocates %.1f/op, want 0", allocs)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.count").Add(2)
	reg.Counter("b.count").Inc()
	reg.Gauge("a.gauge").Set(7)
	h := reg.Histogram("c.hist")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	snap := reg.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d metrics, want 3", len(snap))
	}
	if snap[0].Name != "a.gauge" || snap[1].Name != "b.count" || snap[2].Name != "c.hist" {
		t.Fatalf("snapshot not sorted: %+v", snap)
	}
	if snap[0].Value != 7 || snap[0].Kind != KindGauge {
		t.Fatalf("gauge snapshot %+v", snap[0])
	}
	if snap[1].Value != 3 || snap[1].Kind != KindCounter {
		t.Fatalf("counter snapshot %+v", snap[1])
	}
	if snap[2].Count != 100 || snap[2].Value != 5050 {
		t.Fatalf("histogram snapshot %+v", snap[2])
	}
	// Power-of-two buckets: the p50 upper bound must cover the true
	// median (50) and stay below the max bucket's bound.
	if snap[2].P50 < 50 || snap[2].P50 > 127 {
		t.Fatalf("p50 = %d, want in [50,127]", snap[2].P50)
	}
	if snap[2].P95 < 95 || snap[2].P95 > 127 {
		t.Fatalf("p95 = %d, want in [95,127]", snap[2].P95)
	}
	if snap[2].P99 < 100 {
		t.Fatalf("p99 = %d, want >= 100", snap[2].P99)
	}
	if snap[2].P50 > snap[2].P95 || snap[2].P95 > snap[2].P99 {
		t.Fatalf("quantiles not monotone: p50=%d p95=%d p99=%d", snap[2].P50, snap[2].P95, snap[2].P99)
	}
}

func TestRegistryKindCollision(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x").Inc()
	// Same name, different kind: must not panic, hands out a detached
	// metric and keeps the original.
	reg.Gauge("x").Set(9)
	snap := reg.Snapshot()
	if len(snap) != 1 || snap[0].Kind != KindCounter || snap[0].Value != 1 {
		t.Fatalf("collision snapshot %+v", snap)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				reg.Counter("shared").Inc()
				reg.Histogram("h").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared").Value(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
}

func TestWriteJSONL(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("map.blocks").Add(4)
	reg.Gauge("arena.free").Set(12)
	var buf bytes.Buffer
	if err := reg.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", lines, err, sc.Text())
		}
		for _, k := range []string{"name", "kind", "value"} {
			if _, ok := m[k]; !ok {
				t.Fatalf("line %d missing %q: %s", lines, k, sc.Text())
			}
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("wrote %d JSONL lines, want 2", lines)
	}
}

func TestBufferSinkCap(t *testing.T) {
	s := NewBufferSink(3)
	for i := 0; i < 5; i++ {
		s.Emit(Event{Name: "e", Ph: PhaseInstant})
	}
	if got := len(s.Events()); got != 3 {
		t.Fatalf("buffered %d events, want 3", got)
	}
	if got := s.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
}

func TestRecorderSpanAndTrace(t *testing.T) {
	buf := NewBufferSink(0)
	r := NewRecorder(NewRegistry(), buf)
	sp := r.StartSpan("map.block", "core", 1)
	r.Emit("memo.reset", "core", 1, map[string]any{"n": 3})
	sp.End(map[string]any{"block": "entry"})
	r.EmitEvent(Event{Name: "block", Cat: "sim", Ph: PhaseComplete, TS: 100, Dur: 40, PID: PIDSim, TID: 0})

	events := buf.Events()
	// Span begin, instant, span end, sim complete.
	if len(events) != 4 {
		t.Fatalf("captured %d events, want 4", len(events))
	}
	var begin, end *Event
	for i := range events {
		if events[i].Name != "map.block" {
			continue
		}
		switch events[i].Ph {
		case PhaseBegin:
			begin = &events[i]
		case PhaseEnd:
			end = &events[i]
		}
	}
	if begin == nil || end == nil {
		t.Fatalf("span missing begin/end pair: %+v", events)
	}
	if begin.ID == 0 || begin.ID != end.ID {
		t.Fatalf("span begin/end ids not linked: begin=%d end=%d", begin.ID, end.ID)
	}
	if end.Dur <= 0 || end.TS < begin.TS {
		t.Fatalf("span end %+v before begin %+v", end, begin)
	}
	if end.Args["block"] != "entry" {
		t.Fatalf("span args %+v", end.Args)
	}

	var tr bytes.Buffer
	if err := buf.WriteTrace(&tr); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(tr.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// 2 process-name metadata records + the 4 events.
	if len(parsed.TraceEvents) != 6 {
		t.Fatalf("trace has %d records, want 6", len(parsed.TraceEvents))
	}
	for i, e := range parsed.TraceEvents {
		if _, ok := e["ph"]; !ok {
			t.Fatalf("trace record %d missing ph: %v", i, e)
		}
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Emit(Event{Name: "a", Ph: PhaseInstant, TS: 1})
	s.Emit(Event{Name: "b", Ph: PhaseComplete, TS: 2, Dur: 5})
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("wrote %d lines, want 2", n)
	}
}

func TestMultiSink(t *testing.T) {
	a, b := NewBufferSink(0), NewBufferSink(0)
	m := MultiSink{a, b}
	m.Emit(Event{Name: "x", Ph: PhaseInstant})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatal("multi sink did not fan out")
	}
}

func TestFileOutputs(t *testing.T) {
	dir := t.TempDir()
	mPath := filepath.Join(dir, "m.json")
	ePath := filepath.Join(dir, "e.trace")
	f := FileOutputs(mPath, ePath)
	if !f.Enabled() {
		t.Fatal("file recorder with paths is disabled")
	}
	f.Counter("runs").Inc()
	f.StartSpan("work", "t", 0).End(nil)
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	mb, err := os.ReadFile(mPath)
	if err != nil {
		t.Fatal(err)
	}
	// Two lines: the metered obs.sink.dropped (zero, but visible) and runs.
	var names []string
	runs := false
	for _, line := range bytes.Split(bytes.TrimSpace(mb), []byte("\n")) {
		var mv MetricValue
		if err := json.Unmarshal(line, &mv); err != nil {
			t.Fatalf("metrics file not JSONL: %v\n%s", err, line)
		}
		names = append(names, mv.Name)
		if mv.Name == "runs" && mv.Value == 1 {
			runs = true
		}
	}
	if !runs {
		t.Fatalf("metrics file missing runs=1: %v", names)
	}
	eb, err := os.ReadFile(ePath)
	if err != nil {
		t.Fatal(err)
	}
	var tf map[string]any
	if err := json.Unmarshal(eb, &tf); err != nil {
		t.Fatalf("trace file not JSON: %v", err)
	}
	if _, ok := tf["traceEvents"]; !ok {
		t.Fatal("trace file missing traceEvents")
	}

	// Fully disabled: nil recorder inside, Flush a no-op.
	off := FileOutputs("", "")
	if off.Enabled() {
		t.Fatal("empty-path recorder is enabled")
	}
	off.Counter("x").Inc()
	if err := off.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestBufferSinkMeterDropped(t *testing.T) {
	reg := NewRegistry()
	s := NewBufferSink(2)
	s.Meter(reg)
	for i := 0; i < 5; i++ {
		s.Emit(Event{Name: "e", Ph: PhaseInstant})
	}
	if got := s.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	if got := reg.Counter("obs.sink.dropped").Value(); got != 3 {
		t.Fatalf("obs.sink.dropped = %d, want 3", got)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, os.ErrClosed
	}
	w.n--
	return len(p), nil
}

func TestJSONLSinkMeterErrors(t *testing.T) {
	reg := NewRegistry()
	s := NewJSONLSink(&failWriter{n: 1})
	s.Meter(reg)
	s.Emit(Event{Name: "ok", Ph: PhaseInstant})
	s.Emit(Event{Name: "fails", Ph: PhaseInstant})
	s.Emit(Event{Name: "after", Ph: PhaseInstant})
	if s.Err() == nil {
		t.Fatal("failing writer did not surface an error")
	}
	// Only the first failing write counts: the sink latches its error and
	// stops writing, so the metric reports failures, not dropped lines.
	if got := reg.Counter("obs.sink.errors").Value(); got != 1 {
		t.Fatalf("obs.sink.errors = %d, want 1", got)
	}
}

func TestFileOutputsErrorPaths(t *testing.T) {
	// Unwritable destination directory: Flush must report the error, not
	// panic or half-write.
	missing := filepath.Join(t.TempDir(), "no", "such", "dir")
	f := FileOutputs(filepath.Join(missing, "m.json"), "")
	f.Counter("x").Inc()
	if err := f.Flush(); err == nil {
		t.Fatal("flush into a missing dir succeeded")
	}
	f2 := FileOutputs("", filepath.Join(missing, "e.trace"))
	f2.StartSpan("s", "t", 0).End(nil)
	if err := f2.Flush(); err == nil {
		t.Fatal("trace flush into a missing dir succeeded")
	}

	// Flush is idempotent: a second call rewrites the same artifacts.
	dir := t.TempDir()
	mPath := filepath.Join(dir, "m.json")
	ok := FileOutputs(mPath, "")
	ok.Counter("runs").Inc()
	if err := ok.Flush(); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(mPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ok.Flush(); err != nil {
		t.Fatalf("second flush: %v", err)
	}
	second, err := os.ReadFile(mPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("double flush changed the artifact:\n%s\nvs\n%s", first, second)
	}
}

func TestFileOutputsWithExtraSink(t *testing.T) {
	extra := NewBufferSink(0)
	// No file paths at all: the extra sink alone must still produce a live
	// recorder with a registry (a /metrics endpoint needs one).
	f := FileOutputsWith("", "", extra)
	if !f.Enabled() {
		t.Fatal("recorder with extra sink is disabled")
	}
	if f.Registry() == nil {
		t.Fatal("recorder with extra sink has no registry")
	}
	f.Counter("runs").Inc()
	f.StartSpan("work", "t", 0).End(nil)
	if got := len(extra.Events()); got != 2 {
		t.Fatalf("extra sink saw %d events, want 2 (begin+end)", got)
	}
	if err := f.Flush(); err != nil {
		t.Fatalf("pathless flush: %v", err)
	}

	// With an events file too, both sinks must see every event.
	dir := t.TempDir()
	extra2 := NewBufferSink(0)
	f2 := FileOutputsWith("", filepath.Join(dir, "e.trace"), extra2)
	f2.Emit("tick", "t", 0, nil)
	if len(extra2.Events()) != 1 {
		t.Fatal("extra sink missed a fanned-out event")
	}
	if err := f2.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestReadEventsFormats(t *testing.T) {
	// Round-trip through both on-disk forms.
	buf := NewBufferSink(0)
	r := NewRecorder(nil, buf)
	sp := r.StartSpan("phase", "t", 0)
	r.Emit("tick", "t", 0, map[string]any{"n": float64(1)})
	sp.End(nil)

	var jsonl bytes.Buffer
	if err := buf.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	fromJSONL, err := ReadEvents(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatalf("jsonl: %v", err)
	}
	if len(fromJSONL) != 3 {
		t.Fatalf("jsonl read %d events, want 3", len(fromJSONL))
	}

	var trace bytes.Buffer
	if err := buf.WriteTrace(&trace); err != nil {
		t.Fatal(err)
	}
	fromTrace, err := ReadEvents(bytes.NewReader(trace.Bytes()))
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	// Trace form includes the two process-name metadata records.
	if len(fromTrace) != 5 {
		t.Fatalf("trace read %d events, want 5", len(fromTrace))
	}

	for _, bad := range []string{
		"",
		"not json\n",
		`{"name":"x","ph":"i","ts":1,"pid":1,"tid":0,"bogus":true}` + "\n",
		`{"name":"x","ts":1,"pid":1,"tid":0}` + "\n", // no phase
	} {
		if _, err := ReadEvents(bytes.NewReader([]byte(bad))); err == nil {
			t.Fatalf("ReadEvents accepted malformed input %q", bad)
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	h.Observe(0)
	if h.Quantile(0.5) != 0 {
		t.Fatal("zero-sample quantile != 0")
	}
	h.Observe(-5) // clamps to zero
	if h.Count() != 2 || h.Sum() != 0 {
		t.Fatalf("count=%d sum=%d after clamp", h.Count(), h.Sum())
	}
}
