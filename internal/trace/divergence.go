package trace

import (
	"fmt"
	"strings"
)

// DivergentWord is one data-memory word where the CGRA execution
// disagreed with the reference interpreter.
type DivergentWord struct {
	Addr int
	Ref  int32 // interpreter value
	Got  int32 // CGRA value
}

// Divergence renders a differential-oracle failure: which mode/config
// cell diverged, the cycle count of the failing run, and the mismatched
// words (first divergent word first). total is the full mismatch count
// when words is capped.
func Divergence(kernel, mode, config string, cycles int64, total int, words []DivergentWord) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "divergence: %s under %s on %s (%d cycles, %d divergent words)\n",
		kernel, mode, config, cycles, total)
	if len(words) == 0 {
		return sb.String()
	}
	fmt.Fprintf(&sb, "first divergent word: mem[%d] interpreter %d, CGRA %d\n",
		words[0].Addr, words[0].Ref, words[0].Got)
	t := NewTable("", "word", "interpreter", "cgra")
	for _, w := range words {
		t.Add(w.Addr, w.Ref, w.Got)
	}
	if total > len(words) {
		t.Add("...", fmt.Sprintf("(+%d more)", total-len(words)), "")
	}
	sb.WriteString(t.String())
	return sb.String()
}
