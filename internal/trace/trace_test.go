package trace

import (
	"strings"
	"testing"
	"time"
)

func TestTable(t *testing.T) {
	tb := NewTable("title", "a", "bbbb", "c")
	tb.Add("x", 1, 2.5)
	tb.Add("longer", "y", "z")
	s := tb.String()
	if !strings.HasPrefix(s, "title\n") {
		t.Errorf("missing title: %q", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[1], "bbbb") || !strings.Contains(lines[3], "2.500") {
		t.Errorf("formatting:\n%s", s)
	}
}

func TestBars(t *testing.T) {
	s := Bars("chart", 10, []string{"one", "two", "none"}, []float64{1, 2, 0})
	if !strings.Contains(s, "(no mapping)") {
		t.Error("zero value should render as no mapping")
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	count := func(l string) int { return strings.Count(l, "#") }
	if count(lines[2]) <= count(lines[1]) {
		t.Errorf("larger value should have a longer bar:\n%s", s)
	}
	if count(lines[2]) != 10 {
		t.Errorf("max bar should span the width:\n%s", s)
	}
}

func TestPortfolio(t *testing.T) {
	rows := []PortfolioRow{
		{Seed: 1, OK: true, Detail: "74/0.0053", Wall: 120 * time.Millisecond, Winner: true},
		{Seed: 2, OK: false, Detail: strings.Repeat("x", 100), Wall: 80 * time.Millisecond},
		{Seed: 3, OK: false, Pruned: true, Detail: "pruned by portfolio incumbent", Wall: 10 * time.Millisecond},
	}
	s := Portfolio("portfolio: 2 seeds", rows)
	for _, want := range []string{"portfolio: 2 seeds", "<- winner", "74/0.0053", "fail", "...", "pruned"} {
		if !strings.Contains(s, want) {
			t.Errorf("portfolio rendering misses %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, strings.Repeat("x", 100)) {
		t.Error("long failure reasons must be truncated")
	}
}

// TestDivergenceGolden pins the exact rendering of a divergence report:
// the oracle and cgrasim print this on every real bug, so the format is
// effectively an interface.
func TestDivergenceGolden(t *testing.T) {
	words := []DivergentWord{
		{Addr: 3, Ref: 10, Got: -1},
		{Addr: 17, Ref: 0, Got: 255},
	}
	got := Divergence("FIR", "cab", "HOM32", 1234, 5, words)
	want := strings.Join([]string{
		"divergence: FIR under cab on HOM32 (1234 cycles, 5 divergent words)",
		"first divergent word: mem[3] interpreter 10, CGRA -1",
		"word  interpreter  cgra",
		"-----------------------",
		"3     10           -1  ",
		"17    0            255 ",
		"...   (+3 more)        ",
		"",
	}, "\n")
	if got != want {
		t.Errorf("divergence rendering changed:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestDivergenceNoWords covers the capped-to-zero form used when a
// caller only has counts.
func TestDivergenceNoWords(t *testing.T) {
	got := Divergence("FFT", "basic", "HOM64", 7, 2, nil)
	want := "divergence: FFT under basic on HOM64 (7 cycles, 2 divergent words)\n"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestUtilization(t *testing.T) {
	s := Utilization("u", []int{32, 0}, []int{64, 16})
	if !strings.Contains(s, "32/64 (50%)") || !strings.Contains(s, "0/16 (0%)") {
		t.Errorf("utilization rendering:\n%s", s)
	}
}

func TestMetrics(t *testing.T) {
	out := Metrics("counters", []MetricRow{
		{Name: "core.map.calls", Value: "3"},
		{Name: "core.map.us", Value: "n=3 sum=1200 p50=380 p99=600"},
	})
	for _, want := range []string{"counters", "metric", "core.map.calls", "p99=600"} {
		if !strings.Contains(out, want) {
			t.Errorf("Metrics output misses %q:\n%s", want, out)
		}
	}
}
