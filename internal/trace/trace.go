// Package trace renders the experiment results as fixed-width text
// tables and ASCII bar charts, the repository's equivalent of the paper's
// figure plots.
package trace

import (
	"fmt"
	"strings"
	"time"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; values are rendered with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteString("\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteString("\n")
	for _, r := range t.Rows {
		line(r)
	}
	return sb.String()
}

// Bars renders a labeled horizontal ASCII bar chart. Values are scaled so
// the longest bar spans width characters; a zero value renders as "(no
// mapping)" to match the paper's missing bars.
func Bars(title string, width int, labels []string, values []float64) string {
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteString("\n")
	maxv := 0.0
	maxl := 0
	for i, v := range values {
		if v > maxv {
			maxv = v
		}
		if len(labels[i]) > maxl {
			maxl = len(labels[i])
		}
	}
	for i, v := range values {
		fmt.Fprintf(&sb, "  %-*s ", maxl, labels[i])
		if v <= 0 {
			sb.WriteString("(no mapping)\n")
			continue
		}
		n := 1
		if maxv > 0 {
			n = int(v / maxv * float64(width))
			if n < 1 {
				n = 1
			}
		}
		sb.WriteString(strings.Repeat("#", n))
		fmt.Fprintf(&sb, " %.3f\n", v)
	}
	return sb.String()
}

// PortfolioRow is one seed's outcome in a portfolio-mapping run.
type PortfolioRow struct {
	Seed int64
	// Backend names the mapper backend the seed ran under; empty rows
	// (a pure-heuristic portfolio) render without the backend column.
	Backend string
	OK      bool
	// Pruned marks a job abandoned by incumbent sharing: a provable
	// loser, not a mapper failure — it renders as its own result class.
	Pruned bool
	// Detail is the score of a successful seed or the failure reason.
	Detail string
	Wall   time.Duration
	// Winner marks the seed whose mapping the portfolio returned.
	Winner bool
}

// Portfolio renders the per-seed outcomes of a portfolio-mapping run. The
// backend column appears only when some row names one.
func Portfolio(title string, rows []PortfolioRow) string {
	backends := false
	for _, r := range rows {
		if r.Backend != "" {
			backends = true
			break
		}
	}
	header := []string{"seed", "result", "score", "wall", ""}
	if backends {
		header = append([]string{"backend"}, header...)
	}
	t := NewTable(title, header...)
	for _, r := range rows {
		result, score, mark := "ok", r.Detail, ""
		if !r.OK {
			result, score = "fail", truncate(r.Detail, 60)
			if r.Pruned {
				result = "pruned"
			}
		}
		if r.Winner {
			mark = "<- winner"
		}
		cells := []any{r.Seed, result, score, r.Wall.Round(time.Millisecond), mark}
		if backends {
			cells = append([]any{r.Backend}, cells...)
		}
		t.Add(cells...)
	}
	return t.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

// MetricRow is one rendered metric for the Metrics table: a name and its
// display form. Callers convert their metric snapshots (for example
// obs.MetricValue, via its Display method) so this package stays free of
// instrumentation dependencies.
type MetricRow struct {
	Name  string
	Value string
}

// Metrics renders an instrumentation snapshot as a two-column table.
func Metrics(title string, rows []MetricRow) string {
	t := NewTable(title, "metric", "value")
	for _, r := range rows {
		t.Add(r.Name, r.Value)
	}
	return t.String()
}

// Utilization renders per-tile context-memory occupancy like the paper's
// Fig 2: one row per tile with a bar of used/capacity.
func Utilization(title string, used []int, capacity []int) string {
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteString("\n")
	const width = 40
	for i := range used {
		frac := float64(used[i]) / float64(capacity[i])
		n := int(frac * width)
		if n > width {
			n = width
		}
		fmt.Fprintf(&sb, "  tile %2d [%-*s] %3d/%d (%.0f%%)\n",
			i+1, width, strings.Repeat("#", n), used[i], capacity[i], frac*100)
	}
	return sb.String()
}
