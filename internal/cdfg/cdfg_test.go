package cdfg

import (
	"strings"
	"testing"
)

func TestOpcodeProperties(t *testing.T) {
	cases := []struct {
		op      Opcode
		args    int
		result  bool
		mem     bool
		commute bool
	}{
		{OpConst, 0, true, false, false},
		{OpSym, 0, true, false, false},
		{OpAdd, 2, true, false, true},
		{OpSub, 2, true, false, false},
		{OpMul, 2, true, false, true},
		{OpAbs, 1, true, false, false},
		{OpNeg, 1, true, false, false},
		{OpSelect, 3, true, false, false},
		{OpLoad, 1, true, true, false},
		{OpStore, 2, false, true, false},
		{OpBr, 1, false, false, false},
		{OpMove, 1, true, false, false},
		{OpEq, 2, true, false, true},
		{OpLt, 2, true, false, false},
	}
	for _, c := range cases {
		if got := c.op.NumArgs(); got != c.args {
			t.Errorf("%s.NumArgs() = %d, want %d", c.op, got, c.args)
		}
		if got := c.op.HasResult(); got != c.result {
			t.Errorf("%s.HasResult() = %v, want %v", c.op, got, c.result)
		}
		if got := c.op.IsMem(); got != c.mem {
			t.Errorf("%s.IsMem() = %v, want %v", c.op, got, c.mem)
		}
		if got := c.op.IsCommutative(); got != c.commute {
			t.Errorf("%s.IsCommutative() = %v, want %v", c.op, got, c.commute)
		}
		if !c.op.Valid() {
			t.Errorf("%s.Valid() = false", c.op)
		}
	}
	if Opcode(0).Valid() || Opcode(200).Valid() {
		t.Error("invalid opcodes reported valid")
	}
}

func TestEvalOpSemantics(t *testing.T) {
	cases := []struct {
		op   Opcode
		args []int32
		want int32
	}{
		{OpAdd, []int32{3, 4}, 7},
		{OpSub, []int32{3, 4}, -1},
		{OpMul, []int32{-3, 4}, -12},
		{OpMulH, []int32{1 << 20, 1 << 20}, 256},
		{OpAnd, []int32{0b1100, 0b1010}, 0b1000},
		{OpOr, []int32{0b1100, 0b1010}, 0b1110},
		{OpXor, []int32{0b1100, 0b1010}, 0b0110},
		{OpShl, []int32{1, 4}, 16},
		{OpShl, []int32{1, 36}, 16}, // shift amount masked to 5 bits
		{OpShr, []int32{-1, 28}, 15},
		{OpSra, []int32{-16, 2}, -4},
		{OpLt, []int32{1, 2}, 1},
		{OpLt, []int32{2, 1}, 0},
		{OpLe, []int32{2, 2}, 1},
		{OpEq, []int32{5, 5}, 1},
		{OpNe, []int32{5, 5}, 0},
		{OpGe, []int32{5, 6}, 0},
		{OpGt, []int32{7, 6}, 1},
		{OpMin, []int32{-2, 3}, -2},
		{OpMax, []int32{-2, 3}, 3},
		{OpAbs, []int32{-9}, 9},
		{OpAbs, []int32{9}, 9},
		{OpNeg, []int32{9}, -9},
		{OpSelect, []int32{1, 10, 20}, 10},
		{OpSelect, []int32{0, 10, 20}, 20},
		{OpMove, []int32{42}, 42},
	}
	for _, c := range cases {
		got, err := EvalOp(c.op, c.args)
		if err != nil {
			t.Fatalf("EvalOp(%s, %v): %v", c.op, c.args, err)
		}
		if got != c.want {
			t.Errorf("EvalOp(%s, %v) = %d, want %d", c.op, c.args, got, c.want)
		}
	}
	for _, op := range []Opcode{OpLoad, OpStore, OpBr, OpConst, OpSym} {
		if _, err := EvalOp(op, []int32{0, 0, 0}); err == nil {
			t.Errorf("EvalOp(%s) should fail: no pure semantics", op)
		}
	}
}

func TestMemory(t *testing.T) {
	m := make(Memory, 4)
	if err := m.Store(2, 42); err != nil {
		t.Fatal(err)
	}
	v, err := m.Load(2)
	if err != nil || v != 42 {
		t.Fatalf("Load(2) = %d, %v", v, err)
	}
	if _, err := m.Load(-1); err == nil {
		t.Error("Load(-1) should fail")
	}
	if _, err := m.Load(4); err == nil {
		t.Error("Load(4) should fail")
	}
	if err := m.Store(4, 0); err == nil {
		t.Error("Store(4) should fail")
	}
	c := m.Clone()
	c[2] = 7
	if m[2] != 42 {
		t.Error("Clone aliases the original")
	}
}

func TestGraphAccessorsAndString(t *testing.T) {
	b := NewBuilder("t")
	e := b.Block("entry")
	x := e.Const(5)
	y := e.AddC(x, 2)
	e.Store(x, y)
	e.SetSym("s", y)
	e.BranchIf(e.Ne(y, e.Const(0)), "entry", "done")
	b.Block("done")
	g := b.Finish()

	if g.NumNodes() == 0 || g.NumOps() == 0 {
		t.Fatal("empty counts")
	}
	if got := g.Symbols(); len(got) != 1 || got[0] != "s" {
		t.Fatalf("Symbols() = %v", got)
	}
	s := g.String()
	for _, want := range []string{"graph t", "block entry:", "store", "s <- ", "br "} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	if !g.EntryBlock().HasBranch() {
		t.Error("entry should have a branch")
	}
	if syms := g.EntryBlock().SymReads(); len(syms) != 0 {
		t.Errorf("entry reads %v, want none", syms)
	}
	if lo := g.EntryBlock().LiveOutSyms(); len(lo) != 1 || lo[0] != "s" {
		t.Errorf("LiveOutSyms = %v", lo)
	}
}

func TestDot(t *testing.T) {
	b := NewBuilder("dot")
	e := b.Block("entry")
	v := e.AddC(e.Const(1), 2)
	e.SetSym("x", v)
	e.Jump("next")
	n := b.Block("next")
	n.Store(n.Const(0), n.Sym("x"))
	g := b.Finish()
	d := Dot(g)
	for _, want := range []string{"digraph", "cluster_0", "cluster_1", "->"} {
		if !strings.Contains(d, want) {
			t.Errorf("Dot missing %q", want)
		}
	}
}
