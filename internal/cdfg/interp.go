package cdfg

import "fmt"

// Memory is the word-addressed data memory shared by the interpreter, the
// CPU model and the CGRA simulator.
type Memory []int32

// Load returns the word at addr.
func (m Memory) Load(addr int32) (int32, error) {
	if addr < 0 || int(addr) >= len(m) {
		return 0, fmt.Errorf("cdfg: load address %d out of [0,%d)", addr, len(m))
	}
	return m[addr], nil
}

// Store writes v at addr.
func (m Memory) Store(addr, v int32) error {
	if addr < 0 || int(addr) >= len(m) {
		return fmt.Errorf("cdfg: store address %d out of [0,%d)", addr, len(m))
	}
	m[addr] = v
	return nil
}

// Clone returns a deep copy of the memory.
func (m Memory) Clone() Memory {
	c := make(Memory, len(m))
	copy(c, m)
	return c
}

// Trace records what an interpretation executed; all counts are dynamic.
type Trace struct {
	Blocks   int            // basic blocks executed
	Nodes    int            // nodes evaluated (incl. const/sym)
	Ops      int            // ALU operations (excl. const/sym/mem/branch)
	Loads    int            // memory loads
	Stores   int            // memory stores
	Branches int            // conditional branches
	PerBlock map[BBID]int   // executions per block
	PerOp    map[Opcode]int // evaluations per opcode
}

// InterpLimit bounds the number of basic-block executions so that a buggy
// kernel cannot loop forever.
const InterpLimit = 10_000_000

// Interp executes the graph on the given memory with sequential reference
// semantics and returns an execution trace. The memory is modified in
// place. Interp is the ground truth the CGRA simulator and the CPU model
// are validated against.
func Interp(g *Graph, mem Memory) (*Trace, error) {
	if err := Verify(g); err != nil {
		return nil, err
	}
	tr := &Trace{PerBlock: map[BBID]int{}, PerOp: map[Opcode]int{}}
	syms := map[string]int32{}
	cur := g.Entry
	vals := []int32{}
	for steps := 0; ; steps++ {
		if steps >= InterpLimit {
			return tr, fmt.Errorf("cdfg: interpretation of %q exceeded %d blocks", g.Name, InterpLimit)
		}
		b := g.Blocks[cur]
		tr.Blocks++
		tr.PerBlock[b.ID]++
		if cap(vals) < len(b.Nodes) {
			vals = make([]int32, len(b.Nodes))
		}
		vals = vals[:len(b.Nodes)]
		var branchTaken bool
		for _, n := range b.Nodes {
			tr.Nodes++
			tr.PerOp[n.Op]++
			switch n.Op {
			case OpConst:
				vals[n.ID] = n.Val
			case OpSym:
				v, ok := syms[n.Sym]
				if !ok {
					return tr, fmt.Errorf("cdfg: block %q reads undefined symbol %q", b.Name, n.Sym)
				}
				vals[n.ID] = v
			case OpLoad:
				v, err := mem.Load(vals[n.Args[0]])
				if err != nil {
					return tr, fmt.Errorf("block %q n%d: %w", b.Name, n.ID, err)
				}
				vals[n.ID] = v
				tr.Loads++
			case OpStore:
				if err := mem.Store(vals[n.Args[0]], vals[n.Args[1]]); err != nil {
					return tr, fmt.Errorf("block %q n%d: %w", b.Name, n.ID, err)
				}
				tr.Stores++
			case OpBr:
				branchTaken = vals[n.Args[0]] != 0
				tr.Branches++
			default:
				args := make([]int32, len(n.Args))
				for i, a := range n.Args {
					args[i] = vals[a]
				}
				v, err := EvalOp(n.Op, args)
				if err != nil {
					return tr, fmt.Errorf("block %q n%d: %w", b.Name, n.ID, err)
				}
				vals[n.ID] = v
				tr.Ops++
			}
		}
		for s, id := range b.LiveOut {
			syms[s] = vals[id]
		}
		switch {
		case b.HasBranch():
			if branchTaken {
				cur = b.Succs[0]
			} else {
				cur = b.Succs[1]
			}
		case len(b.Succs) == 1:
			cur = b.Succs[0]
		default:
			return tr, nil
		}
	}
}
