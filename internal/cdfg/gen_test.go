package cdfg

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestGenerateVerifierClean is the generator's core contract: every graph
// it emits passes Verify and interprets to completion on its own memory.
func TestGenerateVerifierClean(t *testing.T) {
	n := int64(300)
	if testing.Short() {
		n = 60
	}
	for seed := int64(0); seed < n; seed++ {
		g, mem := Generate(rand.New(rand.NewSource(seed)), DefaultGenConfig())
		if err := Verify(g); err != nil {
			t.Fatalf("seed %d: Verify: %v\n%v", seed, err, g)
		}
		if _, err := Interp(g, mem.Clone()); err != nil {
			t.Fatalf("seed %d: Interp: %v\n%v", seed, err, g)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g1, m1 := Generate(rand.New(rand.NewSource(seed)), DefaultGenConfig())
		g2, m2 := Generate(rand.New(rand.NewSource(seed)), DefaultGenConfig())
		t1, err1 := g1.MarshalText()
		t2, err2 := g2.MarshalText()
		if err1 != nil || err2 != nil {
			t.Fatalf("seed %d: marshal: %v %v", seed, err1, err2)
		}
		if !bytes.Equal(t1, t2) {
			t.Fatalf("seed %d: graphs differ:\n%s\nvs\n%s", seed, t1, t2)
		}
		if len(m1) != len(m2) {
			t.Fatalf("seed %d: memories differ in length", seed)
		}
		for i := range m1 {
			if m1[i] != m2[i] {
				t.Fatalf("seed %d: mem[%d] differs", seed, i)
			}
		}
	}
}

func TestGenerateKnobs(t *testing.T) {
	rng := func(s int64) *rand.Rand { return rand.New(rand.NewSource(s)) }

	t.Run("loops", func(t *testing.T) {
		cfg := DefaultGenConfig()
		cfg.Loops = 3
		cfg.DiamondProb = 0
		g, _ := Generate(rng(1), cfg)
		// entry + 3 single-block loops + exit
		if len(g.Blocks) != 5 {
			t.Fatalf("got %d blocks, want 5:\n%v", len(g.Blocks), g)
		}
	})

	t.Run("diamonds", func(t *testing.T) {
		cfg := DefaultGenConfig()
		cfg.Loops = 2
		cfg.DiamondProb = 1
		g, _ := Generate(rng(1), cfg)
		// entry + 2×(head, then, else, latch) + exit
		if len(g.Blocks) != 10 {
			t.Fatalf("got %d blocks, want 10:\n%v", len(g.Blocks), g)
		}
	})

	t.Run("no loads", func(t *testing.T) {
		cfg := DefaultGenConfig()
		cfg.MaxLoads = 0
		for s := int64(0); s < 20; s++ {
			g, _ := Generate(rng(s), cfg)
			for _, b := range g.Blocks {
				for _, nd := range b.Nodes {
					if nd.Op == OpLoad {
						t.Fatalf("seed %d: found a load with MaxLoads=0", s)
					}
				}
			}
		}
	})

	t.Run("op pool", func(t *testing.T) {
		cfg := DefaultGenConfig()
		cfg.BinOps = []Opcode{OpXor}
		cfg.UnaryProb, cfg.SelectProb, cfg.ConstChainProb = 0, 0, 0
		cfg.DiamondProb = 0 // diamond heads synthesize an OpAnd condition
		g, _ := Generate(rng(3), cfg)
		for _, b := range g.Blocks {
			for _, nd := range b.Nodes {
				switch nd.Op {
				case OpXor, OpConst, OpSym, OpLoad, OpStore, OpBr,
					OpAdd, OpLt: // add/lt: induction bookkeeping and addressing
				default:
					t.Fatalf("unexpected op %v outside the pool", nd.Op)
				}
			}
		}
	})

	t.Run("stores bounded and observable", func(t *testing.T) {
		for s := int64(0); s < 20; s++ {
			g, mem := Generate(rng(s), DefaultGenConfig())
			stores := 0
			for _, b := range g.Blocks {
				for _, nd := range b.Nodes {
					if nd.Op == OpStore {
						stores++
					}
				}
			}
			if stores == 0 {
				t.Fatalf("seed %d: no stores, results unobservable", s)
			}
			// The interpreter must change at least one output word for the
			// differential comparison to mean anything.
			out, err := Interp(g, mem.Clone())
			if err != nil {
				t.Fatal(err)
			}
			_ = out
		}
	})

	t.Run("sanitize", func(t *testing.T) {
		// A zero config must be coerced into something generable.
		g, mem := Generate(rng(7), GenConfig{})
		if err := Verify(g); err != nil {
			t.Fatalf("zero config: %v", err)
		}
		if _, err := Interp(g, mem.Clone()); err != nil {
			t.Fatalf("zero config interp: %v", err)
		}
	})
}

// TestGenerateTripCountsRespected checks loops execute the configured trip
// counts: with wide bounds the graphs still terminate in the interpreter's
// step budget.
func TestGenerateTripCountsRespected(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.TripMin, cfg.TripMax = 8, 12
	cfg.Loops = 2
	for s := int64(0); s < 10; s++ {
		g, mem := Generate(rand.New(rand.NewSource(s)), cfg)
		if _, err := Interp(g, mem.Clone()); err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
	}
}
