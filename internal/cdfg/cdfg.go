// Package cdfg defines the control-data-flow-graph intermediate
// representation consumed by the CGRA mapper.
//
// A Graph is a set of basic blocks connected by control-flow edges. Each
// basic block holds a data-flow graph of Nodes. Values that live across
// basic blocks are carried by named symbol variables: a block reads a
// symbol with an OpSym node and publishes a value under a symbol name via
// its LiveOut map. The mapper pins every symbol to a register-file location
// (a "location constraint" in the paper's terms); the interpreter in this
// package gives the IR its reference semantics.
package cdfg

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node within its basic block (dense, starting at 0).
type NodeID int

// BBID identifies a basic block within its graph (dense, starting at 0).
type BBID int

// None is the invalid node/block id.
const None = -1

// Opcode enumerates the operations the IR (and the CGRA ALU) supports.
type Opcode uint8

// Opcodes. Arithmetic and logic operate on int32 values. Comparisons
// produce 0 or 1. OpConst has no arguments and produces Node.Val. OpSym has
// no arguments and produces the current value of Node.Sym. OpLoad reads
// data memory at Args[0]; OpStore writes Args[1] to address Args[0] and
// produces no value. OpBr branches on Args[0] != 0 and produces no value.
// OpMove is not produced by frontends: the mapper inserts it for routing.
const (
	OpInvalid Opcode = iota
	OpConst
	OpSym
	OpAdd
	OpSub
	OpMul
	OpMulH // high 32 bits of the 64-bit product
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // logical shift right
	OpSra // arithmetic shift right
	OpLt
	OpLe
	OpEq
	OpNe
	OpGe
	OpGt
	OpMin
	OpMax
	OpAbs
	OpNeg
	OpSelect // Args[0] != 0 ? Args[1] : Args[2]
	OpLoad
	OpStore
	OpBr
	OpMove
	numOpcodes
)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpConst:   "const",
	OpSym:     "sym",
	OpAdd:     "add",
	OpSub:     "sub",
	OpMul:     "mul",
	OpMulH:    "mulh",
	OpAnd:     "and",
	OpOr:      "or",
	OpXor:     "xor",
	OpShl:     "shl",
	OpShr:     "shr",
	OpSra:     "sra",
	OpLt:      "lt",
	OpLe:      "le",
	OpEq:      "eq",
	OpNe:      "ne",
	OpGe:      "ge",
	OpGt:      "gt",
	OpMin:     "min",
	OpMax:     "max",
	OpAbs:     "abs",
	OpNeg:     "neg",
	OpSelect:  "select",
	OpLoad:    "load",
	OpStore:   "store",
	OpBr:      "br",
	OpMove:    "move",
}

func (op Opcode) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool { return op > OpInvalid && op < numOpcodes }

// NumArgs returns the number of data arguments op consumes.
func (op Opcode) NumArgs() int {
	switch op {
	case OpConst, OpSym:
		return 0
	case OpAbs, OpNeg, OpLoad, OpBr, OpMove:
		return 1
	case OpSelect:
		return 3
	case OpStore:
		return 2
	default:
		return 2
	}
}

// HasResult reports whether op produces a value.
func (op Opcode) HasResult() bool { return op != OpStore && op != OpBr }

// IsMem reports whether op accesses data memory and therefore must be
// placed on a load/store tile.
func (op Opcode) IsMem() bool { return op == OpLoad || op == OpStore }

// IsCommutative reports whether the two arguments of op may be swapped.
func (op Opcode) IsCommutative() bool {
	switch op {
	case OpAdd, OpMul, OpMulH, OpAnd, OpOr, OpXor, OpEq, OpNe, OpMin, OpMax:
		return true
	}
	return false
}

// Node is one operation of a basic block's data-flow graph.
type Node struct {
	ID   NodeID
	Op   Opcode
	Args []NodeID // operands; indices into the same block's Nodes
	Val  int32    // constant value for OpConst
	Sym  string   // symbol name for OpSym
}

// String renders the node in a compact listing form.
func (n *Node) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n%d = %s", n.ID, n.Op)
	switch n.Op {
	case OpConst:
		fmt.Fprintf(&b, " %d", n.Val)
	case OpSym:
		fmt.Fprintf(&b, " %s", n.Sym)
	default:
		for _, a := range n.Args {
			fmt.Fprintf(&b, " n%d", a)
		}
	}
	return b.String()
}

// BasicBlock is one node of the control-flow graph: a data-flow graph plus
// control successors and the symbol values published at its exit.
type BasicBlock struct {
	ID    BBID
	Name  string
	Nodes []*Node

	// LiveOut maps symbol names to the node whose value the symbol holds
	// after the block executes.
	LiveOut map[string]NodeID

	// Branch, if valid, is a node with Op == OpBr whose argument decides
	// the successor: nonzero takes Succs[0], zero takes Succs[1].
	Branch NodeID

	// Succs lists successor blocks. With a branch there are exactly two
	// entries (taken, not-taken); otherwise at most one. An empty Succs
	// with no branch ends the program.
	Succs []BBID
}

// Node returns the node with the given id.
func (b *BasicBlock) Node(id NodeID) *Node { return b.Nodes[id] }

// HasBranch reports whether the block ends in a conditional branch.
func (b *BasicBlock) HasBranch() bool { return b.Branch != None }

// LiveOutSyms returns the block's published symbol names in sorted order.
func (b *BasicBlock) LiveOutSyms() []string {
	syms := make([]string, 0, len(b.LiveOut))
	for s := range b.LiveOut {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	return syms
}

// SymReads returns the distinct symbol names read by the block, sorted.
func (b *BasicBlock) SymReads() []string {
	seen := map[string]bool{}
	for _, n := range b.Nodes {
		if n.Op == OpSym {
			seen[n.Sym] = true
		}
	}
	syms := make([]string, 0, len(seen))
	for s := range seen {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	return syms
}

// Graph is a whole application kernel: basic blocks plus an entry point.
type Graph struct {
	Name   string
	Blocks []*BasicBlock
	Entry  BBID
}

// Block returns the basic block with the given id.
func (g *Graph) Block(id BBID) *BasicBlock { return g.Blocks[id] }

// EntryBlock returns the entry basic block.
func (g *Graph) EntryBlock() *BasicBlock { return g.Blocks[g.Entry] }

// NumNodes returns the total node count over all blocks.
func (g *Graph) NumNodes() int {
	n := 0
	for _, b := range g.Blocks {
		n += len(b.Nodes)
	}
	return n
}

// NumOps returns the total count of value-producing or memory/branch
// operations, excluding constants and symbol reads (which the CGRA serves
// from the constant register file and regular register file respectively,
// consuming no context words).
func (g *Graph) NumOps() int {
	n := 0
	for _, b := range g.Blocks {
		for _, nd := range b.Nodes {
			if nd.Op != OpConst && nd.Op != OpSym {
				n++
			}
		}
	}
	return n
}

// Symbols returns all symbol names appearing anywhere in the graph, sorted.
func (g *Graph) Symbols() []string {
	seen := map[string]bool{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if n.Op == OpSym {
				seen[n.Sym] = true
			}
		}
		for s := range b.LiveOut {
			seen[s] = true
		}
	}
	syms := make([]string, 0, len(seen))
	for s := range seen {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	return syms
}

// String renders the whole graph as a readable listing.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %s (entry %s)\n", g.Name, g.Blocks[g.Entry].Name)
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "block %s:\n", b.Name)
		for _, n := range b.Nodes {
			fmt.Fprintf(&sb, "  %s\n", n)
		}
		for _, s := range b.LiveOutSyms() {
			fmt.Fprintf(&sb, "  %s <- n%d\n", s, b.LiveOut[s])
		}
		if b.HasBranch() {
			fmt.Fprintf(&sb, "  br n%d ? %s : %s\n",
				b.Nodes[b.Branch].Args[0], g.Blocks[b.Succs[0]].Name, g.Blocks[b.Succs[1]].Name)
		} else if len(b.Succs) == 1 {
			fmt.Fprintf(&sb, "  jmp %s\n", g.Blocks[b.Succs[0]].Name)
		} else {
			fmt.Fprintf(&sb, "  halt\n")
		}
	}
	return sb.String()
}

// EvalOp applies the pure ALU semantics of op to the given arguments.
// Memory, symbol, and control opcodes are not handled here.
func EvalOp(op Opcode, args []int32) (int32, error) {
	a := func(i int) int32 { return args[i] }
	switch op {
	case OpAdd:
		return a(0) + a(1), nil
	case OpSub:
		return a(0) - a(1), nil
	case OpMul:
		return a(0) * a(1), nil
	case OpMulH:
		return int32((int64(a(0)) * int64(a(1))) >> 32), nil
	case OpAnd:
		return a(0) & a(1), nil
	case OpOr:
		return a(0) | a(1), nil
	case OpXor:
		return a(0) ^ a(1), nil
	case OpShl:
		return a(0) << (uint32(a(1)) & 31), nil
	case OpShr:
		return int32(uint32(a(0)) >> (uint32(a(1)) & 31)), nil
	case OpSra:
		return a(0) >> (uint32(a(1)) & 31), nil
	case OpLt:
		return b2i(a(0) < a(1)), nil
	case OpLe:
		return b2i(a(0) <= a(1)), nil
	case OpEq:
		return b2i(a(0) == a(1)), nil
	case OpNe:
		return b2i(a(0) != a(1)), nil
	case OpGe:
		return b2i(a(0) >= a(1)), nil
	case OpGt:
		return b2i(a(0) > a(1)), nil
	case OpMin:
		if a(0) < a(1) {
			return a(0), nil
		}
		return a(1), nil
	case OpMax:
		if a(0) > a(1) {
			return a(0), nil
		}
		return a(1), nil
	case OpAbs:
		if a(0) < 0 {
			return -a(0), nil
		}
		return a(0), nil
	case OpNeg:
		return -a(0), nil
	case OpSelect:
		if a(0) != 0 {
			return a(1), nil
		}
		return a(2), nil
	case OpMove:
		return a(0), nil
	}
	return 0, fmt.Errorf("cdfg: opcode %s has no pure ALU semantics", op)
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}
