package cdfg

import "testing"

func TestBuilderValueNumbering(t *testing.T) {
	b := NewBuilder("vn")
	e := b.Block("entry")
	c1 := e.Const(7)
	c2 := e.Const(7)
	if c1.ID() != c2.ID() {
		t.Error("equal constants should share a node")
	}
	if e.Const(8).ID() == c1.ID() {
		t.Error("distinct constants should not share a node")
	}
	e.SetSym("s", c1)
	e.Jump("next")
	n := b.Block("next")
	s1 := n.Sym("s")
	s2 := n.Sym("s")
	if s1.ID() != s2.ID() {
		t.Error("repeated symbol reads should share a node")
	}
	n.Store(n.Const(0), s1)
	b.Finish()
}

func TestBuilderEntryAndBlockReuse(t *testing.T) {
	b := NewBuilder("g")
	b.Block("one")
	two := b.Block("two")
	if again := b.Block("two"); again != two {
		t.Error("Block should return the existing block")
	}
	b.SetEntry("two")
	two.Store(two.Const(0), two.Const(1))
	g := b.Graph()
	if g.Blocks[g.Entry].Name != "two" {
		t.Errorf("entry = %q, want two", g.Blocks[g.Entry].Name)
	}
}

func expectPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	f()
}

func TestBuilderPanics(t *testing.T) {
	expectPanic(t, "cross-block value", func() {
		b := NewBuilder("x")
		e := b.Block("a")
		v := e.Const(1)
		o := b.Block("b")
		o.Add(v, v)
	})
	expectPanic(t, "double terminator", func() {
		b := NewBuilder("x")
		e := b.Block("a")
		e.Jump("b")
		e.Jump("c")
	})
	expectPanic(t, "branch after jump", func() {
		b := NewBuilder("x")
		e := b.Block("a")
		e.Jump("b")
		e.BranchIf(e.Const(1), "b", "c")
	})
	expectPanic(t, "wrong arity", func() {
		b := NewBuilder("x")
		e := b.Block("a")
		e.OpN(OpAdd, e.Const(1))
	})
	expectPanic(t, "unknown entry", func() {
		b := NewBuilder("x")
		b.Block("a")
		b.SetEntry("nope")
	})
	expectPanic(t, "invalid finish", func() {
		b := NewBuilder("x")
		e := b.Block("a")
		e.Sym("undefined") // read of a never-written symbol
		b.Finish()
	})
}
