package cdfg

import (
	"bytes"
	"math/rand"
	"testing"
)

// diamondGraph builds a small if/else graph used across the surgery tests.
func diamondGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder("diamond")
	entry := b.Block("entry")
	c0 := entry.Const(1)
	entry.SetSym("x", c0)
	entry.BranchIf(entry.Lt(c0, entry.Const(2)), "then", "else")
	then := b.Block("then")
	then.SetSym("x", then.AddC(then.Sym("x"), 1))
	then.Jump("exit")
	els := b.Block("else")
	els.SetSym("x", els.AddC(els.Sym("x"), 2))
	els.Jump("exit")
	exit := b.Block("exit")
	exit.Store(exit.Const(10), exit.Sym("x"))
	g := b.Finish()
	if err := Verify(g); err != nil {
		t.Fatalf("diamond graph does not verify: %v", err)
	}
	return g
}

func blockNamed(t *testing.T, g *Graph, name string) BBID {
	t.Helper()
	for i, b := range g.Blocks {
		if b.Name == name {
			return BBID(i)
		}
	}
	t.Fatalf("no block %q", name)
	return None
}

func marshaled(t *testing.T, g *Graph) []byte {
	t.Helper()
	data, err := g.MarshalText()
	if err != nil {
		t.Fatalf("MarshalText: %v", err)
	}
	return data
}

func TestCloneIndependence(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g, _ := Generate(rand.New(rand.NewSource(seed)), DefaultGenConfig())
		before := marshaled(t, g)
		c := g.Clone()
		if !bytes.Equal(before, marshaled(t, c)) {
			t.Fatalf("seed %d: clone differs from original", seed)
		}
		// Mutate every mutable region of the clone; original must not move.
		c.Name = "mutated"
		for _, b := range c.Blocks {
			b.Name += "_m"
			for _, n := range b.Nodes {
				if n.Op == OpConst {
					n.Val++
				}
			}
			for s := range b.LiveOut {
				delete(b.LiveOut, s)
				break
			}
			if len(b.Succs) > 0 {
				b.Succs[0] = 0
			}
		}
		if !bytes.Equal(before, marshaled(t, g)) {
			t.Fatalf("seed %d: mutating the clone changed the original", seed)
		}
	}
}

func TestStraighten(t *testing.T) {
	for _, takeFirst := range []bool{true, false} {
		g := diamondGraph(t)
		entry := blockNamed(t, g, "entry")
		if !Straighten(g, entry, takeFirst) {
			t.Fatal("Straighten on a branching block returned false")
		}
		EliminateDeadNodes(g)
		if n := RemoveUnreachable(g); n != 1 {
			t.Fatalf("RemoveUnreachable removed %d blocks, want 1", n)
		}
		if err := Verify(g); err != nil {
			t.Fatalf("takeFirst=%v: straightened graph fails Verify: %v\n%v", takeFirst, err, g)
		}
		if got := len(g.Blocks); got != 3 {
			t.Fatalf("takeFirst=%v: got %d blocks, want 3", takeFirst, got)
		}
	}

	// Straightening a single-successor block is a no-op.
	g := diamondGraph(t)
	if Straighten(g, blockNamed(t, g, "then"), true) {
		t.Fatal("Straighten on a jump block returned true")
	}
}

func TestEliminateDeadNodes(t *testing.T) {
	g := diamondGraph(t)
	entry := blockNamed(t, g, "entry")
	before := len(g.Blocks[entry].Nodes)
	// Append a dead constant chain by hand.
	b := g.Blocks[entry]
	id := NodeID(len(b.Nodes))
	b.Nodes = append(b.Nodes, &Node{ID: id, Op: OpConst, Val: 99})
	b.Nodes = append(b.Nodes, &Node{ID: id + 1, Op: OpNeg, Args: []NodeID{id}})
	if err := Verify(g); err != nil {
		t.Fatalf("graph with dead chain fails Verify: %v", err)
	}
	if n := EliminateDeadNodes(g); n != 2 {
		t.Fatalf("EliminateDeadNodes removed %d nodes, want 2", n)
	}
	if got := len(g.Blocks[entry].Nodes); got != before {
		t.Fatalf("entry has %d nodes, want %d", got, before)
	}
	if err := Verify(g); err != nil {
		t.Fatalf("after DCE: %v", err)
	}
	// Live code must survive: everything left feeds a store, branch,
	// live-out or memory effect.
	if n := EliminateDeadNodes(g); n != 0 {
		t.Fatalf("second DCE pass removed %d nodes, want 0", n)
	}
}

func TestRemoveNodesRefusesReferenced(t *testing.T) {
	g := diamondGraph(t)
	entry := blockNamed(t, g, "entry")
	// Node 0 is the Const(1) feeding the live-out symbol and the branch
	// condition; removing it must be refused.
	if RemoveNodes(g, entry, func(id NodeID) bool { return id == 0 }) {
		t.Fatal("RemoveNodes removed a referenced node")
	}
	if err := Verify(g); err != nil {
		t.Fatalf("refused removal corrupted the graph: %v", err)
	}
}

func TestBypassNode(t *testing.T) {
	g := diamondGraph(t)
	then := blockNamed(t, g, "then")
	var addID NodeID = None
	for _, n := range g.Blocks[then].Nodes {
		if n.Op == OpAdd {
			addID = n.ID
		}
	}
	if addID == None {
		t.Fatal("no add in then block")
	}
	if !BypassNode(g, then, addID) {
		t.Fatal("BypassNode failed")
	}
	EliminateDeadNodes(g)
	if err := Verify(g); err != nil {
		t.Fatalf("after bypass: %v\n%v", err, g)
	}
	for _, n := range g.Blocks[then].Nodes {
		if n.Op == OpAdd {
			t.Fatal("bypassed add survived DCE")
		}
	}
}

func TestRemoveUnreachable(t *testing.T) {
	g := diamondGraph(t)
	if n := RemoveUnreachable(g); n != 0 {
		t.Fatalf("removed %d blocks from a fully reachable graph", n)
	}
}
