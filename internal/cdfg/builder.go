package cdfg

import "fmt"

// Builder assembles a Graph incrementally. Blocks are created with Block
// and wired with Jump/BranchIf; Finish validates and returns the graph.
//
// The builder is the frontend the kernel generators use in place of a
// compiler: it plays the role of the paper's LLVM-based flow that lowers C
// kernels to CDFGs.
type Builder struct {
	g      *Graph
	byName map[string]*BlockBuilder
	order  []*BlockBuilder
}

// NewBuilder returns a builder for a graph with the given kernel name.
func NewBuilder(name string) *Builder {
	return &Builder{
		g:      &Graph{Name: name, Entry: None},
		byName: map[string]*BlockBuilder{},
	}
}

// Block creates (or returns the existing) basic block with the given name.
// The first block created becomes the entry block unless SetEntry is called.
func (b *Builder) Block(name string) *BlockBuilder {
	if bb, ok := b.byName[name]; ok {
		return bb
	}
	blk := &BasicBlock{
		ID:      BBID(len(b.g.Blocks)),
		Name:    name,
		LiveOut: map[string]NodeID{},
		Branch:  None,
	}
	b.g.Blocks = append(b.g.Blocks, blk)
	bb := &BlockBuilder{b: b, blk: blk}
	b.byName[name] = bb
	b.order = append(b.order, bb)
	if b.g.Entry == None {
		b.g.Entry = blk.ID
	}
	return bb
}

// SetEntry marks the named block as the graph entry.
func (b *Builder) SetEntry(name string) {
	bb, ok := b.byName[name]
	if !ok {
		panic(fmt.Sprintf("cdfg: SetEntry of unknown block %q", name))
	}
	b.g.Entry = bb.blk.ID
}

// Finish verifies the graph and returns it. It panics on malformed graphs:
// the builder is used by in-repo kernel generators where a malformed graph
// is a programming error, not an input error.
func (b *Builder) Finish() *Graph {
	if err := Verify(b.g); err != nil {
		panic(fmt.Sprintf("cdfg: builder produced invalid graph: %v", err))
	}
	return b.g
}

// Graph returns the graph under construction without verification.
func (b *Builder) Graph() *Graph { return b.g }

// Value is a handle to a node's result, used as operands in the builder API.
type Value struct {
	bb *BlockBuilder
	id NodeID
}

// ID returns the underlying node id.
func (v Value) ID() NodeID { return v.id }

// BlockBuilder adds nodes to one basic block.
type BlockBuilder struct {
	b   *Builder
	blk *BasicBlock

	consts map[int32]NodeID  // value-numbered constants
	syms   map[string]NodeID // value-numbered symbol reads
}

// ID returns the block's id.
func (bb *BlockBuilder) ID() BBID { return bb.blk.ID }

// Name returns the block's name.
func (bb *BlockBuilder) Name() string { return bb.blk.Name }

func (bb *BlockBuilder) add(n *Node) Value {
	n.ID = NodeID(len(bb.blk.Nodes))
	bb.blk.Nodes = append(bb.blk.Nodes, n)
	return Value{bb: bb, id: n.ID}
}

func (bb *BlockBuilder) args(vs ...Value) []NodeID {
	ids := make([]NodeID, len(vs))
	for i, v := range vs {
		if v.bb != bb {
			panic(fmt.Sprintf("cdfg: value n%d from block %q used in block %q",
				v.id, v.bb.blk.Name, bb.blk.Name))
		}
		ids[i] = v.id
	}
	return ids
}

// Const returns a node producing the constant c. Equal constants within a
// block share one node.
func (bb *BlockBuilder) Const(c int32) Value {
	if bb.consts == nil {
		bb.consts = map[int32]NodeID{}
	}
	if id, ok := bb.consts[c]; ok {
		return Value{bb: bb, id: id}
	}
	v := bb.add(&Node{Op: OpConst, Val: c})
	bb.consts[c] = v.id
	return v
}

// Sym returns a node reading the symbol variable named s at block entry.
// Repeated reads of the same symbol share one node.
func (bb *BlockBuilder) Sym(s string) Value {
	if bb.syms == nil {
		bb.syms = map[string]NodeID{}
	}
	if id, ok := bb.syms[s]; ok {
		return Value{bb: bb, id: id}
	}
	v := bb.add(&Node{Op: OpSym, Sym: s})
	bb.syms[s] = v.id
	return v
}

// OpN adds a node with the given opcode and operands.
func (bb *BlockBuilder) OpN(op Opcode, vs ...Value) Value {
	if len(vs) != op.NumArgs() {
		panic(fmt.Sprintf("cdfg: %s takes %d args, got %d", op, op.NumArgs(), len(vs)))
	}
	return bb.add(&Node{Op: op, Args: bb.args(vs...)})
}

// Arithmetic and logic conveniences.

func (bb *BlockBuilder) Add(a, c Value) Value       { return bb.OpN(OpAdd, a, c) }
func (bb *BlockBuilder) Sub(a, c Value) Value       { return bb.OpN(OpSub, a, c) }
func (bb *BlockBuilder) Mul(a, c Value) Value       { return bb.OpN(OpMul, a, c) }
func (bb *BlockBuilder) MulH(a, c Value) Value      { return bb.OpN(OpMulH, a, c) }
func (bb *BlockBuilder) And(a, c Value) Value       { return bb.OpN(OpAnd, a, c) }
func (bb *BlockBuilder) Or(a, c Value) Value        { return bb.OpN(OpOr, a, c) }
func (bb *BlockBuilder) Xor(a, c Value) Value       { return bb.OpN(OpXor, a, c) }
func (bb *BlockBuilder) Shl(a, c Value) Value       { return bb.OpN(OpShl, a, c) }
func (bb *BlockBuilder) Shr(a, c Value) Value       { return bb.OpN(OpShr, a, c) }
func (bb *BlockBuilder) Sra(a, c Value) Value       { return bb.OpN(OpSra, a, c) }
func (bb *BlockBuilder) Lt(a, c Value) Value        { return bb.OpN(OpLt, a, c) }
func (bb *BlockBuilder) Le(a, c Value) Value        { return bb.OpN(OpLe, a, c) }
func (bb *BlockBuilder) Eq(a, c Value) Value        { return bb.OpN(OpEq, a, c) }
func (bb *BlockBuilder) Ne(a, c Value) Value        { return bb.OpN(OpNe, a, c) }
func (bb *BlockBuilder) Ge(a, c Value) Value        { return bb.OpN(OpGe, a, c) }
func (bb *BlockBuilder) Gt(a, c Value) Value        { return bb.OpN(OpGt, a, c) }
func (bb *BlockBuilder) Min(a, c Value) Value       { return bb.OpN(OpMin, a, c) }
func (bb *BlockBuilder) Max(a, c Value) Value       { return bb.OpN(OpMax, a, c) }
func (bb *BlockBuilder) Abs(a Value) Value          { return bb.OpN(OpAbs, a) }
func (bb *BlockBuilder) Neg(a Value) Value          { return bb.OpN(OpNeg, a) }
func (bb *BlockBuilder) Select(c, a, d Value) Value { return bb.OpN(OpSelect, c, a, d) }

// AddC adds a constant to a value.
func (bb *BlockBuilder) AddC(a Value, c int32) Value { return bb.Add(a, bb.Const(c)) }

// MulC multiplies a value by a constant.
func (bb *BlockBuilder) MulC(a Value, c int32) Value { return bb.Mul(a, bb.Const(c)) }

// Load reads data memory at the given address node.
func (bb *BlockBuilder) Load(addr Value) Value { return bb.OpN(OpLoad, addr) }

// Store writes val to data memory at addr.
func (bb *BlockBuilder) Store(addr, val Value) { bb.OpN(OpStore, addr, val) }

// SetSym publishes v as the value of symbol s at block exit.
func (bb *BlockBuilder) SetSym(s string, v Value) {
	if v.bb != bb {
		panic(fmt.Sprintf("cdfg: SetSym(%q) with value from block %q in block %q",
			s, v.bb.blk.Name, bb.blk.Name))
	}
	bb.blk.LiveOut[s] = v.id
}

// Jump makes execution continue at the named block.
func (bb *BlockBuilder) Jump(name string) {
	if len(bb.blk.Succs) != 0 || bb.blk.Branch != None {
		panic(fmt.Sprintf("cdfg: block %q already terminated", bb.blk.Name))
	}
	bb.blk.Succs = []BBID{bb.b.Block(name).blk.ID}
}

// BranchIf terminates the block with a conditional branch: cond != 0
// continues at taken, otherwise at fallthrough.
func (bb *BlockBuilder) BranchIf(cond Value, taken, fallthrough_ string) {
	if len(bb.blk.Succs) != 0 || bb.blk.Branch != None {
		panic(fmt.Sprintf("cdfg: block %q already terminated", bb.blk.Name))
	}
	br := bb.OpN(OpBr, cond)
	bb.blk.Branch = br.id
	bb.blk.Succs = []BBID{bb.b.Block(taken).blk.ID, bb.b.Block(fallthrough_).blk.ID}
}

// Halt marks the block as a program exit (no successors). Blocks without a
// terminator are exits by default; Halt documents the intent.
func (bb *BlockBuilder) Halt() {}
