package cdfg

import (
	"fmt"
	"math/rand"
)

// GenConfig tunes the random CDFG generator used by the differential
// oracle (internal/oracle). Every knob shapes the long tail of graphs the
// fixed kernel suite never exercises: op mix, control-flow shape, memory
// density, fan-out pressure and recompute-friendly constant chains.
type GenConfig struct {
	// Loops is the number of loop nests generated in sequence (min 1).
	Loops int
	// DiamondProb is the probability a loop body is a diamond (an
	// if/else pair joining in a latch block) instead of a single block.
	DiamondProb float64
	// MinBodyOps/MaxBodyOps bound the random ALU ops per loop body.
	MinBodyOps, MaxBodyOps int
	// Syms is the number of loop-carried symbol variables besides the
	// induction variables.
	Syms int
	// MaxLoads/MaxStores bound the memory operations per iteration
	// (at least one store is always emitted so results are observable).
	MaxLoads, MaxStores int
	// FanoutBias in [0,1] is the probability an operand reuses one of the
	// most recent values instead of a uniform pick — high values build
	// deep chains, low values build wide high-fanout shapes.
	FanoutBias float64
	// BinOps is the binary opcode pool for body operations.
	BinOps []Opcode
	// UnaryProb is the probability a body op is unary (abs/neg) and
	// SelectProb the probability it is a 3-input select.
	UnaryProb, SelectProb float64
	// ConstChainProb is the probability of emitting an op whose operands
	// are all constants — the shape the mapper's recompute transformation
	// duplicates onto consumer tiles.
	ConstChainProb float64
	// TripMin/TripMax bound each loop's trip count.
	TripMin, TripMax int32
	// InputWords is the size of the read-only input region at mem[0:).
	InputWords int32
}

// DefaultGenConfig returns the oracle's default generator tuning: small
// graphs that map in milliseconds yet exercise multi-block control flow,
// loads/stores, carried symbols and constant chains.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Loops:          1,
		DiamondProb:    0.35,
		MinBodyOps:     3,
		MaxBodyOps:     10,
		Syms:           2,
		MaxLoads:       2,
		MaxStores:      2,
		FanoutBias:     0.5,
		UnaryProb:      0.1,
		SelectProb:     0.1,
		ConstChainProb: 0.15,
		TripMin:        2,
		TripMax:        6,
		InputWords:     16,
	}
}

func (c *GenConfig) sanitize() {
	if c.Loops < 1 {
		c.Loops = 1
	}
	if c.MinBodyOps < 1 {
		c.MinBodyOps = 1
	}
	if c.MaxBodyOps < c.MinBodyOps {
		c.MaxBodyOps = c.MinBodyOps
	}
	if c.Syms < 1 {
		c.Syms = 1
	}
	if c.MaxLoads < 0 {
		c.MaxLoads = 0
	}
	if c.MaxStores < 1 {
		c.MaxStores = 1
	}
	if c.TripMin < 1 {
		c.TripMin = 1
	}
	if c.TripMax < c.TripMin {
		c.TripMax = c.TripMin
	}
	if c.InputWords < c.TripMax {
		c.InputWords = c.TripMax
	}
	if len(c.BinOps) == 0 {
		c.BinOps = []Opcode{
			OpAdd, OpSub, OpMul, OpMulH, OpAnd, OpOr, OpXor,
			OpShl, OpShr, OpSra, OpLt, OpLe, OpEq, OpNe, OpGe, OpGt,
			OpMin, OpMax,
		}
	}
}

// Generate builds a random, verifier-clean CDFG plus a matching initial
// data memory. The graph is correct by construction — bounded loops,
// in-bounds addresses, symbols defined on every path — and the builder
// re-verifies it before returning, so the oracle can feed it straight to
// the mapper. Equal rng states and configs yield identical graphs.
//
// Shape: an entry block initializing the carried symbols, cfg.Loops loop
// nests in sequence (each either a single-block loop or a head→then/else→
// latch diamond), and an exit block storing the final symbol values.
// Loop l counts iterations in its own induction symbol ("i" for loop 0,
// "i<l>" after), zeroed on the entry edge by the preceding block, so every
// load and store address stays in bounds by construction.
func Generate(rng *rand.Rand, cfg GenConfig) (*Graph, Memory) {
	cfg.sanitize()
	b := NewBuilder(fmt.Sprintf("gen%08x", rng.Uint32()))

	syms := make([]string, cfg.Syms)
	for s := range syms {
		syms[s] = fmt.Sprintf("v%d", s)
	}

	entry := b.Block("entry")
	entry.SetSym("i", entry.Const(0))
	for _, s := range syms {
		entry.SetSym(s, entry.Const(rng.Int31n(64)-32))
	}
	entry.Jump(loopHead(0))

	// outBase tracks the next free output word; every store writes a
	// region disjoint from the inputs and from every other store.
	outBase := cfg.InputWords
	for l := 0; l < cfg.Loops; l++ {
		trip := cfg.TripMin + rng.Int31n(cfg.TripMax-cfg.TripMin+1)
		next := loopHead(l + 1)
		if l == cfg.Loops-1 {
			next = "exit"
		}
		if rng.Float64() < cfg.DiamondProb {
			outBase = genDiamondLoop(rng, &cfg, b, l, trip, next, syms, outBase)
		} else {
			outBase = genSimpleLoop(rng, &cfg, b, l, trip, next, syms, outBase)
		}
	}

	exit := b.Block("exit")
	for _, s := range append([]string{"i"}, syms...) {
		exit.Store(exit.Const(outBase), exit.Sym(s))
		outBase++
	}

	g := b.Finish() // panics only on a generator bug
	mem := make(Memory, outBase)
	for i := int32(0); i < cfg.InputWords; i++ {
		mem[i] = rng.Int31n(256) - 128
	}
	return g, mem
}

// loopHead names loop l's entry block.
func loopHead(l int) string { return fmt.Sprintf("loop%d", l) }

// counterSym names loop l's induction symbol.
func counterSym(l int) string {
	if l == 0 {
		return "i"
	}
	return fmt.Sprintf("i%d", l)
}

// closeLoop publishes the incremented counter (and the next loop's zeroed
// counter) from the loop's back-edge block and emits the latch branch.
func closeLoop(bb *BlockBuilder, l int, i Value, trip int32, next string) {
	i2 := bb.AddC(i, 1)
	bb.SetSym(counterSym(l), i2)
	if next != "exit" {
		bb.SetSym(counterSym(l+1), bb.Const(0))
	}
	bb.BranchIf(bb.Lt(i2, bb.Const(trip)), loopHead(l), next)
}

// genSimpleLoop emits a single-block loop and returns the new outBase.
func genSimpleLoop(rng *rand.Rand, cfg *GenConfig, b *Builder, l int, trip int32, next string, syms []string, outBase int32) int32 {
	head := b.Block(loopHead(l))
	i := head.Sym(counterSym(l))
	pool := newValuePool(rng, cfg, head, i, syms)
	pool.genBody(cfg.MinBodyOps + rng.Intn(cfg.MaxBodyOps-cfg.MinBodyOps+1))
	outBase = pool.genStores(i, trip, outBase)
	for _, s := range syms {
		if rng.Intn(2) == 0 {
			head.SetSym(s, pool.pick())
		}
	}
	closeLoop(head, l, i, trip, next)
	return outBase
}

// genDiamondLoop emits a 4-block loop (head → then/else → latch) and
// returns the new outBase.
func genDiamondLoop(rng *rand.Rand, cfg *GenConfig, b *Builder, l int, trip int32, next string, syms []string, outBase int32) int32 {
	ctr := counterSym(l)
	thenName := fmt.Sprintf("then%d", l)
	elseName := fmt.Sprintf("else%d", l)
	latchName := fmt.Sprintf("latch%d", l)

	head := b.Block(loopHead(l))
	hi := head.Sym(ctr)
	hpool := newValuePool(rng, cfg, head, hi, syms)
	hpool.genBody(cfg.MinBodyOps)
	cond := head.And(hpool.pick(), head.Const(1))
	// The arms and the latch see the head's scratch value through a
	// dedicated carried symbol (dataflow between blocks is symbols-only).
	tsym := fmt.Sprintf("t%d", l)
	head.SetSym(tsym, hpool.pick())
	head.BranchIf(cond, thenName, elseName)

	// Both arms define the same symbol set so every path into the latch
	// agrees (the verifier's all-paths-defined rule).
	armSyms := []string{tsym, syms[rng.Intn(len(syms))]}
	for _, name := range []string{thenName, elseName} {
		arm := b.Block(name)
		ai := arm.Sym(ctr)
		apool := newValuePool(rng, cfg, arm, ai, syms)
		apool.genBody(1 + rng.Intn(cfg.MaxBodyOps))
		for _, s := range armSyms {
			arm.SetSym(s, apool.pick())
		}
		arm.Jump(latchName)
	}

	latch := b.Block(latchName)
	li := latch.Sym(ctr)
	lpool := newValuePool(rng, cfg, latch, li, syms)
	lpool.vals = append(lpool.vals, latch.Sym(tsym))
	lpool.genBody(cfg.MinBodyOps)
	outBase = lpool.genStores(li, trip, outBase)
	for _, s := range syms {
		if rng.Intn(2) == 0 {
			latch.SetSym(s, lpool.pick())
		}
	}
	closeLoop(latch, l, li, trip, next)
	return outBase
}

// valuePool accumulates the values available as operands within a block
// and implements the fan-out-biased operand picker.
type valuePool struct {
	rng  *rand.Rand
	cfg  *GenConfig
	bb   *BlockBuilder
	vals []Value
}

func newValuePool(rng *rand.Rand, cfg *GenConfig, bb *BlockBuilder, i Value, syms []string) *valuePool {
	p := &valuePool{rng: rng, cfg: cfg, bb: bb}
	p.vals = append(p.vals, i, bb.Const(rng.Int31n(32)+1))
	for _, s := range syms {
		p.vals = append(p.vals, bb.Sym(s))
	}
	for k := 0; k < cfg.MaxLoads; k++ {
		if rng.Intn(2) == 0 {
			continue
		}
		off := rng.Int31n(cfg.InputWords - cfg.TripMax + 1)
		p.vals = append(p.vals, bb.Load(bb.AddC(i, off)))
	}
	return p
}

// pick chooses an operand, biased toward the most recent values.
func (p *valuePool) pick() Value {
	if p.rng.Float64() < p.cfg.FanoutBias && len(p.vals) > 3 {
		return p.vals[len(p.vals)-1-p.rng.Intn(3)]
	}
	return p.vals[p.rng.Intn(len(p.vals))]
}

// genBody appends n random ALU operations to the pool's block.
func (p *valuePool) genBody(n int) {
	for k := 0; k < n; k++ {
		r := p.rng.Float64()
		switch {
		case r < p.cfg.ConstChainProb:
			// Recompute-friendly shape: all-constant operands.
			op := p.cfg.BinOps[p.rng.Intn(len(p.cfg.BinOps))]
			a := p.bb.Const(p.rng.Int31n(64) - 32)
			c := p.bb.Const(p.rng.Int31n(64) - 32)
			p.vals = append(p.vals, p.bb.OpN(op, a, c))
		case r < p.cfg.ConstChainProb+p.cfg.UnaryProb:
			op := OpAbs
			if p.rng.Intn(2) == 0 {
				op = OpNeg
			}
			p.vals = append(p.vals, p.bb.OpN(op, p.pick()))
		case r < p.cfg.ConstChainProb+p.cfg.UnaryProb+p.cfg.SelectProb:
			p.vals = append(p.vals, p.bb.Select(p.pick(), p.pick(), p.pick()))
		default:
			op := p.cfg.BinOps[p.rng.Intn(len(p.cfg.BinOps))]
			p.vals = append(p.vals, p.bb.OpN(op, p.pick(), p.pick()))
		}
	}
}

// genStores emits 1..MaxStores stores of pool values into fresh output
// regions indexed by the zero-based counter i, returning the new outBase.
func (p *valuePool) genStores(i Value, trip int32, outBase int32) int32 {
	n := 1 + p.rng.Intn(p.cfg.MaxStores)
	for k := 0; k < n; k++ {
		p.bb.Store(p.bb.AddC(i, outBase), p.pick())
		outBase += trip
	}
	return outBase
}
