package cdfg

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestMarshalRoundTrip(t *testing.T) {
	n := int64(50)
	if testing.Short() {
		n = 10
	}
	for seed := int64(0); seed < n; seed++ {
		g, _ := Generate(rand.New(rand.NewSource(seed)), DefaultGenConfig())
		data, err := g.MarshalText()
		if err != nil {
			t.Fatalf("seed %d: MarshalText: %v", seed, err)
		}
		back, err := UnmarshalText(data)
		if err != nil {
			t.Fatalf("seed %d: UnmarshalText: %v\n%s", seed, err, data)
		}
		again, err := back.MarshalText()
		if err != nil {
			t.Fatalf("seed %d: re-marshal: %v", seed, err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("seed %d: round trip not stable:\n%s\nvs\n%s", seed, data, again)
		}
	}
}

func TestMarshalComments(t *testing.T) {
	b := NewBuilder("tiny")
	bb := b.Block("entry")
	bb.Store(bb.Const(0), bb.Const(7))
	g := b.Finish()
	data, err := g.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	commented := "# a comment\n" + string(data) + "\n# trailing\n"
	if _, err := UnmarshalText([]byte(commented)); err != nil {
		t.Fatalf("comments broke parsing: %v", err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	valid := func() string {
		b := NewBuilder("ok")
		bb := b.Block("entry")
		bb.Store(bb.Const(0), bb.Const(7))
		data, err := b.Finish().MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}()

	for _, tc := range []struct{ name, data string }{
		{"empty", ""},
		{"no header", "block \"entry\"\nend\n"},
		{"bad opcode", strings.Replace(valid, "store", "frobnicate", 1)},
		{"dangling arg", strings.Replace(valid, "store 0 1", "store 0 99", 1)},
		{"negative branch", strings.Replace(valid, "end", "branch -5\nend", 1)},
		{"garbage line", valid + "wat\n"},
	} {
		if _, err := UnmarshalText([]byte(tc.data)); err == nil {
			t.Errorf("%s: UnmarshalText succeeded on invalid input", tc.name)
		}
	}
}

func TestOpcodeByName(t *testing.T) {
	for op := Opcode(0); int(op) < len(opNames); op++ {
		name := op.String()
		if strings.HasPrefix(name, "op(") {
			continue
		}
		got, ok := OpcodeByName(name)
		if !ok || got != op {
			t.Errorf("OpcodeByName(%q) = %v, %v, want %v", name, got, ok, op)
		}
	}
	if _, ok := OpcodeByName("nope"); ok {
		t.Error("OpcodeByName(nope) succeeded")
	}
}
