package cdfg

// Graph surgery: the small set of semantics-shrinking transformations the
// failure shrinker (internal/oracle) composes to minimize a failing graph.
// Every helper mutates the graph it is given in place — callers shrink on
// a Clone and re-Verify the result, discarding candidates that break an
// invariant.

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{Name: g.Name, Entry: g.Entry, Blocks: make([]*BasicBlock, len(g.Blocks))}
	for i, b := range g.Blocks {
		nb := &BasicBlock{
			ID:      b.ID,
			Name:    b.Name,
			Nodes:   make([]*Node, len(b.Nodes)),
			LiveOut: make(map[string]NodeID, len(b.LiveOut)),
			Branch:  b.Branch,
			Succs:   append([]BBID(nil), b.Succs...),
		}
		for j, n := range b.Nodes {
			nn := *n
			nn.Args = append([]NodeID(nil), n.Args...)
			nb.Nodes[j] = &nn
		}
		for s, id := range b.LiveOut {
			nb.LiveOut[s] = id
		}
		c.Blocks[i] = nb
	}
	return c
}

// RemoveNodes deletes every node of block bb for which dead returns true,
// renumbering the survivors and rewriting arguments, live-outs and the
// branch pointer. It returns false (leaving the block unchanged) if any
// doomed node is still referenced by a surviving node, a live-out, or the
// branch pointer.
func RemoveNodes(g *Graph, bb BBID, dead func(NodeID) bool) bool {
	b := g.Blocks[bb]
	remap := make([]NodeID, len(b.Nodes))
	var kept []*Node
	for _, n := range b.Nodes {
		if dead(n.ID) {
			remap[n.ID] = None
		} else {
			remap[n.ID] = NodeID(len(kept))
			kept = append(kept, n)
		}
	}
	// Check references before committing.
	for _, n := range kept {
		for _, a := range n.Args {
			if remap[a] == None {
				return false
			}
		}
	}
	for _, id := range b.LiveOut {
		if remap[id] == None {
			return false
		}
	}
	if b.Branch != None && remap[b.Branch] == None {
		return false
	}
	for _, n := range kept {
		n.ID = remap[n.ID]
		for i, a := range n.Args {
			n.Args[i] = remap[a]
		}
	}
	for s, id := range b.LiveOut {
		b.LiveOut[s] = remap[id]
	}
	if b.Branch != None {
		b.Branch = remap[b.Branch]
	}
	b.Nodes = kept
	return true
}

// EliminateDeadNodes removes, to a fixpoint, every node with no in-block
// users that is not a live-out, the branch, a store, or a branch op.
// It returns the number of nodes removed.
func EliminateDeadNodes(g *Graph) int {
	removed := 0
	for {
		n := 0
		for _, b := range g.Blocks {
			used := make([]bool, len(b.Nodes))
			for _, nd := range b.Nodes {
				for _, a := range nd.Args {
					used[a] = true
				}
			}
			for _, id := range b.LiveOut {
				used[id] = true
			}
			if b.Branch != None {
				used[b.Branch] = true
			}
			doomed := map[NodeID]bool{}
			for _, nd := range b.Nodes {
				if !used[nd.ID] && nd.Op != OpStore && nd.Op != OpBr {
					doomed[nd.ID] = true
				}
			}
			if len(doomed) > 0 && RemoveNodes(g, b.ID, func(id NodeID) bool { return doomed[id] }) {
				n += len(doomed)
			}
		}
		if n == 0 {
			return removed
		}
		removed += n
	}
}

// BypassNode rewrites every use of node id (arguments and live-outs) to
// the node's first value-producing argument, leaving id itself dead for
// EliminateDeadNodes. It returns false when the node has no such argument
// (constants, symbol reads, and zero-argument nodes cannot be bypassed).
func BypassNode(g *Graph, bb BBID, id NodeID) bool {
	b := g.Blocks[bb]
	n := b.Nodes[id]
	if !n.Op.HasResult() {
		return false
	}
	repl := NodeID(None)
	for _, a := range n.Args {
		if b.Nodes[a].Op.HasResult() {
			repl = a
			break
		}
	}
	if repl == None {
		return false
	}
	for _, nd := range b.Nodes {
		for i, a := range nd.Args {
			if a == id {
				nd.Args[i] = repl
			}
		}
	}
	for s, lo := range b.LiveOut {
		if lo == id {
			b.LiveOut[s] = repl
		}
	}
	return true
}

// Straighten replaces block bb's conditional branch with an unconditional
// jump to Succs[0] (takeFirst) or Succs[1], dropping the OpBr node. It
// returns false when the block has no branch.
func Straighten(g *Graph, bb BBID, takeFirst bool) bool {
	b := g.Blocks[bb]
	if !b.HasBranch() {
		return false
	}
	keep := b.Succs[1]
	if takeFirst {
		keep = b.Succs[0]
	}
	br := b.Branch
	b.Branch = None
	b.Succs = []BBID{keep}
	RemoveNodes(g, bb, func(id NodeID) bool { return id == br })
	return true
}

// RemoveUnreachable deletes blocks unreachable from the entry, renumbering
// the survivors. It returns the number of blocks removed.
func RemoveUnreachable(g *Graph) int {
	reach := make([]bool, len(g.Blocks))
	var dfs func(BBID)
	dfs = func(id BBID) {
		reach[id] = true
		for _, s := range g.Blocks[id].Succs {
			if !reach[s] {
				dfs(s)
			}
		}
	}
	dfs(g.Entry)
	remap := make([]BBID, len(g.Blocks))
	var kept []*BasicBlock
	for i, b := range g.Blocks {
		if reach[i] {
			remap[i] = BBID(len(kept))
			kept = append(kept, b)
		} else {
			remap[i] = None
		}
	}
	removed := len(g.Blocks) - len(kept)
	if removed == 0 {
		return 0
	}
	for _, b := range kept {
		b.ID = remap[b.ID]
		for i, s := range b.Succs {
			b.Succs[i] = remap[s]
		}
	}
	g.Entry = remap[g.Entry]
	g.Blocks = kept
	return removed
}
