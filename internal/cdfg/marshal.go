package cdfg

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// Text serialization of graphs: a line-oriented format stable enough to
// check minimized oracle reproducers into testdata/ and feed graphs
// through the native fuzzing engine. Lines starting with '#' are
// comments. Names are quoted with Go syntax. Example:
//
//	cdfg "gen01"
//	entry 0
//	block "entry"
//	n const 0
//	liveout "i" 0
//	succs 1
//	end
//	block "loop"
//	n sym "i"
//	n const 1
//	n add 0 1
//	n br 2
//	liveout "i" 2
//	branch 3
//	succs 1 2
//	end
//	...

var opcodeByName = func() map[string]Opcode {
	m := make(map[string]Opcode, len(opNames))
	for op, name := range opNames {
		if name != "" {
			m[name] = Opcode(op)
		}
	}
	return m
}()

// OpcodeByName returns the opcode with the given String() name.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := opcodeByName[name]
	return op, ok
}

// MarshalText renders the graph in the package's line-oriented text form.
// The output round-trips through UnmarshalText for any graph that passes
// Verify.
func (g *Graph) MarshalText() ([]byte, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cdfg %s\n", strconv.Quote(g.Name))
	fmt.Fprintf(&sb, "entry %d\n", g.Entry)
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "block %s\n", strconv.Quote(b.Name))
		for _, n := range b.Nodes {
			switch n.Op {
			case OpConst:
				fmt.Fprintf(&sb, "n const %d\n", n.Val)
			case OpSym:
				fmt.Fprintf(&sb, "n sym %s\n", strconv.Quote(n.Sym))
			default:
				fmt.Fprintf(&sb, "n %s", n.Op)
				for _, a := range n.Args {
					fmt.Fprintf(&sb, " %d", a)
				}
				sb.WriteString("\n")
			}
		}
		for _, s := range b.LiveOutSyms() {
			fmt.Fprintf(&sb, "liveout %s %d\n", strconv.Quote(s), b.LiveOut[s])
		}
		if b.Branch != None {
			fmt.Fprintf(&sb, "branch %d\n", b.Branch)
		}
		if len(b.Succs) > 0 {
			sb.WriteString("succs")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " %d", s)
			}
			sb.WriteString("\n")
		}
		sb.WriteString("end\n")
	}
	return []byte(sb.String()), nil
}

// UnmarshalText parses the format produced by MarshalText and verifies
// the result, so a successful parse always yields a mapper-ready graph.
func UnmarshalText(data []byte) (*Graph, error) {
	g := &Graph{Entry: None}
	var cur *BasicBlock
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		fail := func(format string, args ...any) (*Graph, error) {
			return nil, fmt.Errorf("cdfg: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch f[0] {
		case "cdfg":
			if len(f) != 2 {
				return fail("cdfg wants a quoted name")
			}
			name, err := strconv.Unquote(f[1])
			if err != nil {
				return fail("bad name: %v", err)
			}
			g.Name = name
		case "entry":
			id, err := parseID(f, 1)
			if err != nil {
				return fail("%v", err)
			}
			g.Entry = BBID(id)
		case "block":
			if len(f) != 2 {
				return fail("block wants a quoted name")
			}
			name, err := strconv.Unquote(f[1])
			if err != nil {
				return fail("bad block name: %v", err)
			}
			cur = &BasicBlock{
				ID:      BBID(len(g.Blocks)),
				Name:    name,
				LiveOut: map[string]NodeID{},
				Branch:  None,
			}
			g.Blocks = append(g.Blocks, cur)
		case "n":
			if cur == nil {
				return fail("node outside a block")
			}
			if len(f) < 2 {
				return fail("node wants an opcode")
			}
			n := &Node{ID: NodeID(len(cur.Nodes))}
			switch f[1] {
			case "const":
				if len(f) != 3 {
					return fail("const wants a value")
				}
				v, err := strconv.ParseInt(f[2], 10, 32)
				if err != nil {
					return fail("bad const: %v", err)
				}
				n.Op, n.Val = OpConst, int32(v)
			case "sym":
				if len(f) != 3 {
					return fail("sym wants a quoted name")
				}
				s, err := strconv.Unquote(f[2])
				if err != nil {
					return fail("bad sym name: %v", err)
				}
				n.Op, n.Sym = OpSym, s
			default:
				op, ok := OpcodeByName(f[1])
				if !ok {
					return fail("unknown opcode %q", f[1])
				}
				n.Op = op
				for _, a := range f[2:] {
					id, err := strconv.Atoi(a)
					if err != nil {
						return fail("bad arg %q", a)
					}
					n.Args = append(n.Args, NodeID(id))
				}
			}
			cur.Nodes = append(cur.Nodes, n)
		case "liveout":
			if cur == nil {
				return fail("liveout outside a block")
			}
			if len(f) != 3 {
				return fail("liveout wants a name and a node id")
			}
			s, err := strconv.Unquote(f[1])
			if err != nil {
				return fail("bad liveout name: %v", err)
			}
			id, err := strconv.Atoi(f[2])
			if err != nil {
				return fail("bad liveout node: %v", err)
			}
			cur.LiveOut[s] = NodeID(id)
		case "branch":
			if cur == nil {
				return fail("branch outside a block")
			}
			id, err := parseID(f, 1)
			if err != nil {
				return fail("%v", err)
			}
			cur.Branch = NodeID(id)
		case "succs":
			if cur == nil {
				return fail("succs outside a block")
			}
			for _, a := range f[1:] {
				id, err := strconv.Atoi(a)
				if err != nil {
					return fail("bad successor %q", a)
				}
				cur.Succs = append(cur.Succs, BBID(id))
			}
		case "end":
			cur = nil
		default:
			return fail("unknown directive %q", f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cdfg: %w", err)
	}
	if err := Verify(g); err != nil {
		return nil, err
	}
	return g, nil
}

func parseID(f []string, i int) (int, error) {
	if len(f) != i+1 {
		return 0, fmt.Errorf("%s wants one integer", f[0])
	}
	return strconv.Atoi(f[i])
}
