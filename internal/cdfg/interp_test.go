package cdfg

import (
	"strings"
	"testing"
)

func TestInterpLoopAndTrace(t *testing.T) {
	// sum 0..9 into mem[0]
	b := NewBuilder("sum")
	e := b.Block("entry")
	z := e.Const(0)
	e.SetSym("i", z)
	e.SetSym("acc", z)
	e.Jump("loop")
	l := b.Block("loop")
	i := l.Sym("i")
	acc := l.Add(l.Sym("acc"), i)
	l.SetSym("acc", acc)
	i2 := l.AddC(i, 1)
	l.SetSym("i", i2)
	l.BranchIf(l.Lt(i2, l.Const(10)), "loop", "exit")
	x := b.Block("exit")
	x.Store(x.Const(0), x.Sym("acc"))
	g := b.Finish()

	mem := make(Memory, 1)
	tr, err := Interp(g, mem)
	if err != nil {
		t.Fatal(err)
	}
	if mem[0] != 45 {
		t.Fatalf("sum = %d, want 45", mem[0])
	}
	if tr.Blocks != 12 { // entry + 10×loop + exit
		t.Errorf("Blocks = %d, want 12", tr.Blocks)
	}
	if tr.Branches != 10 || tr.Stores != 1 || tr.Loads != 0 {
		t.Errorf("counts: branches %d stores %d loads %d", tr.Branches, tr.Stores, tr.Loads)
	}
	if tr.PerBlock[1] != 10 {
		t.Errorf("loop executed %d times, want 10", tr.PerBlock[1])
	}
	if tr.PerOp[OpAdd] == 0 {
		t.Error("PerOp missing adds")
	}
}

func TestInterpErrors(t *testing.T) {
	t.Run("bad load", func(t *testing.T) {
		b := NewBuilder("x")
		e := b.Block("entry")
		e.Store(e.Const(0), e.Load(e.Const(99)))
		_, err := Interp(b.Finish(), make(Memory, 1))
		if err == nil || !strings.Contains(err.Error(), "out of") {
			t.Fatalf("want load range error, got %v", err)
		}
	})
	t.Run("bad store", func(t *testing.T) {
		b := NewBuilder("x")
		e := b.Block("entry")
		e.Store(e.Const(-1), e.Const(0))
		_, err := Interp(b.Finish(), make(Memory, 1))
		if err == nil {
			t.Fatal("want store range error")
		}
	})
	t.Run("infinite loop", func(t *testing.T) {
		b := NewBuilder("x")
		e := b.Block("entry")
		e.Jump("entry")
		_, err := Interp(b.Graph(), nil)
		if err == nil || !strings.Contains(err.Error(), "exceeded") {
			t.Fatalf("want loop-limit error, got %v", err)
		}
	})
	t.Run("invalid graph rejected", func(t *testing.T) {
		g := &Graph{Name: "bad"}
		if _, err := Interp(g, nil); err == nil {
			t.Fatal("want verify error")
		}
	})
}

func TestInterpSelectBothArms(t *testing.T) {
	b := NewBuilder("sel")
	e := b.Block("entry")
	x := e.Load(e.Const(0))
	v := e.Select(e.Gt(x, e.Const(0)), e.Const(100), e.Const(200))
	e.Store(e.Const(1), v)
	g := b.Finish()

	mem := Memory{5, 0}
	if _, err := Interp(g, mem); err != nil {
		t.Fatal(err)
	}
	if mem[1] != 100 {
		t.Fatalf("positive arm: got %d", mem[1])
	}
	mem = Memory{-5, 0}
	if _, err := Interp(g, mem); err != nil {
		t.Fatal(err)
	}
	if mem[1] != 200 {
		t.Fatalf("negative arm: got %d", mem[1])
	}
}
