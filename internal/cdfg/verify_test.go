package cdfg

import (
	"strings"
	"testing"
)

// good returns a small valid graph for mutation tests.
func good() *Graph {
	b := NewBuilder("good")
	e := b.Block("entry")
	e.SetSym("i", e.Const(0))
	e.Jump("loop")
	l := b.Block("loop")
	i := l.Sym("i")
	l.Store(i, l.AddC(i, 1))
	i2 := l.AddC(i, 1)
	l.SetSym("i", i2)
	l.BranchIf(l.Lt(i2, l.Const(4)), "loop", "exit")
	b.Block("exit")
	return b.Finish()
}

func wantVerifyError(t *testing.T, g *Graph, frag string) {
	t.Helper()
	err := Verify(g)
	if err == nil {
		t.Fatalf("Verify should fail (want %q)", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("Verify error %q does not mention %q", err, frag)
	}
}

func TestVerifyGood(t *testing.T) {
	if err := Verify(good()); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyStructuralErrors(t *testing.T) {
	t.Run("no blocks", func(t *testing.T) {
		wantVerifyError(t, &Graph{Name: "x"}, "no blocks")
	})
	t.Run("entry out of range", func(t *testing.T) {
		g := good()
		g.Entry = 99
		wantVerifyError(t, g, "entry")
	})
	t.Run("duplicate names", func(t *testing.T) {
		g := good()
		g.Blocks[1].Name = g.Blocks[0].Name
		wantVerifyError(t, g, "duplicate block name")
	})
	t.Run("arg not earlier", func(t *testing.T) {
		g := good()
		l := g.Blocks[1]
		for _, n := range l.Nodes {
			if len(n.Args) > 0 {
				n.Args[0] = n.ID // self-reference
				break
			}
		}
		wantVerifyError(t, g, "not an earlier node")
	})
	t.Run("arity mismatch", func(t *testing.T) {
		g := good()
		for _, n := range g.Blocks[1].Nodes {
			if n.Op == OpAdd {
				n.Args = n.Args[:1]
				break
			}
		}
		wantVerifyError(t, g, "takes 2 args")
	})
	t.Run("move reserved", func(t *testing.T) {
		g := good()
		for _, n := range g.Blocks[1].Nodes {
			if n.Op == OpAdd {
				n.Op = OpMove
				n.Args = n.Args[:1]
				break
			}
		}
		wantVerifyError(t, g, "reserved for the mapper")
	})
	t.Run("branch successor count", func(t *testing.T) {
		g := good()
		g.Blocks[1].Succs = g.Blocks[1].Succs[:1]
		wantVerifyError(t, g, "needs 2 successors")
	})
	t.Run("valueless arg", func(t *testing.T) {
		g := good()
		l := g.Blocks[1]
		var store NodeID = None
		for _, n := range l.Nodes {
			if n.Op == OpStore {
				store = n.ID
			}
		}
		for _, n := range l.Nodes {
			if n.ID > store && len(n.Args) > 0 {
				n.Args[0] = store
				break
			}
		}
		wantVerifyError(t, g, "produces no value")
	})
	t.Run("liveout out of range", func(t *testing.T) {
		g := good()
		g.Blocks[1].LiveOut["i"] = 999
		wantVerifyError(t, g, "out of range")
	})
}

func TestVerifyPathSensitiveSymbols(t *testing.T) {
	// Symbol defined on one path only: entry branches to a/b; only a
	// defines s; join reads s.
	b := NewBuilder("paths")
	e := b.Block("entry")
	e.BranchIf(e.Const(1), "a", "join")
	a := b.Block("a")
	a.SetSym("s", a.Const(1))
	a.Jump("join")
	j := b.Block("join")
	j.Store(j.Const(0), j.Sym("s"))
	wantVerifyError(t, b.Graph(), "possibly-undefined")

	// Defined on both paths: fine.
	b2 := NewBuilder("both")
	e2 := b2.Block("entry")
	e2.BranchIf(e2.Const(1), "a", "b")
	a2 := b2.Block("a")
	a2.SetSym("s", a2.Const(1))
	a2.Jump("join")
	bb := b2.Block("b")
	bb.SetSym("s", bb.Const(2))
	bb.Jump("join")
	j2 := b2.Block("join")
	j2.Store(j2.Const(0), j2.Sym("s"))
	if err := Verify(b2.Graph()); err != nil {
		t.Fatalf("both-paths define should verify: %v", err)
	}
}

func TestVerifyUnreachableBlockAllowed(t *testing.T) {
	b := NewBuilder("unreach")
	e := b.Block("entry")
	e.Store(e.Const(0), e.Const(1))
	dead := b.Block("dead")
	dead.Store(dead.Const(0), dead.Sym("never")) // unreachable: not checked
	if err := Verify(b.Graph()); err != nil {
		t.Fatalf("unreachable blocks should be allowed: %v", err)
	}
}
