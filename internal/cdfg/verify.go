package cdfg

import (
	"fmt"
	"sort"
)

// Verify checks the structural invariants of a graph:
//
//   - node ids are dense and match slice positions;
//   - every argument refers to an earlier node of the same block (the node
//     list is a topological order of the DFG);
//   - argument counts match opcodes, and only value-producing nodes are used
//     as arguments or live-outs;
//   - branch/successor shape is consistent;
//   - every symbol read is defined on every path from the entry (a symbol
//     written on some but not all incoming paths is rejected).
func Verify(g *Graph) error {
	if len(g.Blocks) == 0 {
		return fmt.Errorf("graph %q has no blocks", g.Name)
	}
	if g.Entry < 0 || int(g.Entry) >= len(g.Blocks) {
		return fmt.Errorf("graph %q entry %d out of range", g.Name, g.Entry)
	}
	names := map[string]bool{}
	for bi, b := range g.Blocks {
		if b.ID != BBID(bi) {
			return fmt.Errorf("block %q: id %d at position %d", b.Name, b.ID, bi)
		}
		if names[b.Name] {
			return fmt.Errorf("duplicate block name %q", b.Name)
		}
		names[b.Name] = true
		if err := verifyBlock(g, b); err != nil {
			return fmt.Errorf("block %q: %w", b.Name, err)
		}
	}
	return verifySymbolDefs(g)
}

func verifyBlock(g *Graph, b *BasicBlock) error {
	for i, n := range b.Nodes {
		if n.ID != NodeID(i) {
			return fmt.Errorf("node id %d at position %d", n.ID, i)
		}
		if !n.Op.Valid() {
			return fmt.Errorf("n%d: invalid opcode", n.ID)
		}
		if n.Op == OpMove {
			return fmt.Errorf("n%d: OpMove is reserved for the mapper", n.ID)
		}
		if len(n.Args) != n.Op.NumArgs() {
			return fmt.Errorf("n%d: %s takes %d args, has %d", n.ID, n.Op, n.Op.NumArgs(), len(n.Args))
		}
		for _, a := range n.Args {
			if a < 0 || a >= NodeID(i) {
				return fmt.Errorf("n%d: arg n%d not an earlier node", n.ID, a)
			}
			if !b.Nodes[a].Op.HasResult() {
				return fmt.Errorf("n%d: arg n%d (%s) produces no value", n.ID, a, b.Nodes[a].Op)
			}
		}
		if n.Op == OpSym && n.Sym == "" {
			return fmt.Errorf("n%d: sym node without a name", n.ID)
		}
	}
	// Sorted keys keep the first-reported violation deterministic.
	for _, s := range b.LiveOutSyms() {
		id := b.LiveOut[s]
		if id < 0 || int(id) >= len(b.Nodes) {
			return fmt.Errorf("live-out %q: node n%d out of range", s, id)
		}
		if !b.Nodes[id].Op.HasResult() {
			return fmt.Errorf("live-out %q: node n%d produces no value", s, id)
		}
	}
	for _, s := range b.Succs {
		if s < 0 || int(s) >= len(g.Blocks) {
			return fmt.Errorf("successor %d out of range", s)
		}
	}
	if b.HasBranch() {
		if b.Branch < 0 || int(b.Branch) >= len(b.Nodes) || b.Nodes[b.Branch].Op != OpBr {
			return fmt.Errorf("branch node n%d is not an OpBr", b.Branch)
		}
		if len(b.Succs) != 2 {
			return fmt.Errorf("branch block needs 2 successors, has %d", len(b.Succs))
		}
	} else {
		if len(b.Succs) > 1 {
			return fmt.Errorf("non-branch block with %d successors", len(b.Succs))
		}
		for _, n := range b.Nodes {
			if n.Op == OpBr {
				return fmt.Errorf("n%d: OpBr node but block has no branch set", n.ID)
			}
		}
	}
	return nil
}

// verifySymbolDefs performs a forward may-not-be-defined dataflow analysis:
// a symbol read in block b must be defined on every path reaching b.
func verifySymbolDefs(g *Graph) error {
	all := g.Symbols()
	idx := map[string]int{}
	for i, s := range all {
		idx[s] = i
	}
	// defined[b] = set of symbols guaranteed defined at entry of b.
	// Meet is intersection over predecessors; entry starts empty.
	defined := make([]map[int]bool, len(g.Blocks))
	reached := make([]bool, len(g.Blocks))
	reached[g.Entry] = true
	defined[g.Entry] = map[int]bool{}

	change := true
	for change {
		change = false
		for _, b := range g.Blocks {
			if !reached[b.ID] {
				continue
			}
			out := map[int]bool{}
			for s := range defined[b.ID] {
				out[s] = true
			}
			for s := range b.LiveOut {
				out[idx[s]] = true
			}
			for _, succ := range b.Succs {
				if !reached[succ] {
					reached[succ] = true
					defined[succ] = copySet(out)
					change = true
					continue
				}
				// Intersect.
				for s := range defined[succ] {
					if !out[s] {
						delete(defined[succ], s)
						change = true
					}
				}
			}
		}
	}

	for _, b := range g.Blocks {
		if !reached[b.ID] {
			continue // unreachable blocks are allowed but never checked at runtime
		}
		var missing []string
		for _, s := range b.SymReads() {
			if !defined[b.ID][idx[s]] {
				missing = append(missing, s)
			}
		}
		if len(missing) > 0 {
			sort.Strings(missing)
			return fmt.Errorf("block %q reads possibly-undefined symbols %v", b.Name, missing)
		}
	}
	return nil
}

func copySet(s map[int]bool) map[int]bool {
	c := make(map[int]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}
