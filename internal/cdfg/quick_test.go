package cdfg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickCommutativity checks that every opcode reporting commutativity
// actually commutes, and that EvalOp never errors on valid ALU inputs.
func TestQuickCommutativity(t *testing.T) {
	for op := OpAdd; op < numOpcodes; op++ {
		op := op
		switch op {
		case OpLoad, OpStore, OpBr:
			continue
		}
		if op.NumArgs() != 2 {
			continue
		}
		f := func(a, b int32) bool {
			x, err1 := EvalOp(op, []int32{a, b})
			y, err2 := EvalOp(op, []int32{b, a})
			if err1 != nil || err2 != nil {
				return false
			}
			if op.IsCommutative() {
				return x == y
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", op, err)
		}
	}
}

// TestQuickShiftMasking checks the 5-bit shift-amount masking property.
func TestQuickShiftMasking(t *testing.T) {
	f := func(v, s int32) bool {
		for _, op := range []Opcode{OpShl, OpShr, OpSra} {
			a, _ := EvalOp(op, []int32{v, s})
			b, _ := EvalOp(op, []int32{v, s & 31})
			if a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickMinMaxSelect checks ordering identities.
func TestQuickMinMaxSelect(t *testing.T) {
	f := func(a, b int32) bool {
		mn, _ := EvalOp(OpMin, []int32{a, b})
		mx, _ := EvalOp(OpMax, []int32{a, b})
		lt, _ := EvalOp(OpLt, []int32{a, b})
		sel, _ := EvalOp(OpSelect, []int32{lt, a, b})
		if mn > mx {
			return false
		}
		if mn != a && mn != b {
			return false
		}
		// select(a<b, a, b) == min(a, b)
		return sel == mn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// randomDAGGraph builds a random but always-valid single-block graph: a
// straight-line DFG over random ops whose final value is stored.
func randomDAGGraph(rng *rand.Rand, nNodes int) *Graph {
	b := NewBuilder("rand")
	e := b.Block("entry")
	pool := []Value{e.Const(rng.Int31n(100) - 50), e.Const(rng.Int31n(100) - 50)}
	binops := []Opcode{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpMin, OpMax, OpLt, OpGe}
	for i := 0; i < nNodes; i++ {
		op := binops[rng.Intn(len(binops))]
		a := pool[rng.Intn(len(pool))]
		c := pool[rng.Intn(len(pool))]
		pool = append(pool, e.OpN(op, a, c))
	}
	e.Store(e.Const(0), pool[len(pool)-1])
	return b.Finish()
}

// TestQuickRandomGraphsVerifyAndInterp: every randomly generated graph
// verifies, interprets deterministically, and its interpretation matches
// a direct evaluation of the DAG.
func TestQuickRandomGraphsVerifyAndInterp(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		g := randomDAGGraph(rng, 2+rng.Intn(30))
		if err := Verify(g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		m1 := make(Memory, 1)
		m2 := make(Memory, 1)
		if _, err := Interp(g, m1); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if _, err := Interp(g, m2); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if m1[0] != m2[0] {
			t.Fatalf("trial %d: nondeterministic interpretation", trial)
		}
		// Direct DAG evaluation must agree.
		blk := g.Blocks[0]
		vals := make([]int32, len(blk.Nodes))
		var want int32
		for _, n := range blk.Nodes {
			switch n.Op {
			case OpConst:
				vals[n.ID] = n.Val
			case OpStore:
				want = vals[n.Args[1]]
			default:
				args := make([]int32, len(n.Args))
				for i, a := range n.Args {
					args[i] = vals[a]
				}
				v, err := EvalOp(n.Op, args)
				if err != nil {
					t.Fatal(err)
				}
				vals[n.ID] = v
			}
		}
		if m1[0] != want {
			t.Fatalf("trial %d: interp %d, direct %d", trial, m1[0], want)
		}
	}
}

// TestQuickAnalyzeInvariants: on random DAGs, ASAP ≤ ALAP, mobility is
// their difference, and levels respect dependencies.
func TestQuickAnalyzeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		blk := randomDAGGraph(rng, 2+rng.Intn(40)).Blocks[0]
		s := Analyze(blk)
		for _, n := range blk.Nodes {
			if s.ASAP[n.ID] > s.ALAP[n.ID] {
				t.Fatalf("trial %d: ASAP > ALAP on n%d", trial, n.ID)
			}
			if s.Mobility[n.ID] != s.ALAP[n.ID]-s.ASAP[n.ID] {
				t.Fatalf("trial %d: mobility mismatch on n%d", trial, n.ID)
			}
			for _, a := range n.Args {
				if s.ASAP[a] > s.ASAP[n.ID] {
					t.Fatalf("trial %d: dependency violates ASAP order", trial)
				}
			}
		}
	}
}
