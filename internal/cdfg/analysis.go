package cdfg

import "sort"

// Sched holds the per-node scheduling metadata the list scheduler consumes:
// ASAP and ALAP levels and the derived mobility, plus fan-out counts.
//
// Levels count dataflow depth in abstract cycles where every node takes one
// cycle; constants and symbol reads take zero cycles because the CGRA
// serves them from the constant and regular register files without
// occupying an instruction slot.
type Sched struct {
	ASAP     []int
	ALAP     []int
	Mobility []int
	Fanout   []int
	Depth    int // critical-path length of the block in abstract cycles
}

// latency returns the abstract latency contribution of a node.
func latency(op Opcode) int {
	if op == OpConst || op == OpSym {
		return 0
	}
	return 1
}

// Analyze computes scheduling metadata for one basic block.
func Analyze(b *BasicBlock) *Sched {
	n := len(b.Nodes)
	s := &Sched{
		ASAP:     make([]int, n),
		ALAP:     make([]int, n),
		Mobility: make([]int, n),
		Fanout:   make([]int, n),
	}
	// ASAP: nodes are already in topological order.
	for _, nd := range b.Nodes {
		lvl := 0
		for _, a := range nd.Args {
			if v := s.ASAP[a] + latency(b.Nodes[a].Op); v > lvl {
				lvl = v
			}
		}
		s.ASAP[nd.ID] = lvl
		if end := lvl + latency(nd.Op); end > s.Depth {
			s.Depth = end
		}
	}
	// Fanout: users within the block plus live-out uses.
	for _, nd := range b.Nodes {
		for _, a := range nd.Args {
			s.Fanout[a]++
		}
	}
	for _, id := range b.LiveOut {
		s.Fanout[id]++
	}
	// ALAP: walk backward from sinks.
	for i := range s.ALAP {
		s.ALAP[i] = -1
	}
	sinkLevel := s.Depth
	for i := n - 1; i >= 0; i-- {
		nd := b.Nodes[i]
		if s.ALAP[i] == -1 {
			s.ALAP[i] = sinkLevel - latency(nd.Op)
		}
		for _, a := range nd.Args {
			v := s.ALAP[i] - latency(b.Nodes[a].Op)
			if s.ALAP[a] == -1 || v < s.ALAP[a] {
				s.ALAP[a] = v
			}
		}
	}
	for i := range s.Mobility {
		s.Mobility[i] = s.ALAP[i] - s.ASAP[i]
	}
	return s
}

// Users returns, for each node of b, the list of node ids that consume it.
func Users(b *BasicBlock) [][]NodeID {
	users := make([][]NodeID, len(b.Nodes))
	for _, nd := range b.Nodes {
		for _, a := range nd.Args {
			users[a] = append(users[a], nd.ID)
		}
	}
	return users
}

// BlockWeight computes the paper's weighted-traversal weight
// Wbb = n(s) + Σ fanout(s) over the symbol variables s of the block, where
// a block's symbol variables are the symbols it reads or publishes, and a
// symbol's fan-out is the number of in-block consumers of its read node
// plus one per publication.
func BlockWeight(b *BasicBlock) int {
	fanout := make(map[string]int)
	for _, s := range b.SymReads() {
		fanout[s] = 0
	}
	inblock := make([]int, len(b.Nodes))
	for _, nd := range b.Nodes {
		for _, a := range nd.Args {
			inblock[a]++
		}
	}
	for _, nd := range b.Nodes {
		if nd.Op == OpSym {
			fanout[nd.Sym] += inblock[nd.ID]
		}
	}
	for s := range b.LiveOut {
		fanout[s]++
	}
	w := len(fanout)
	for _, f := range fanout {
		w += f
	}
	return w
}

// TraversalKind selects the order in which the mapper visits basic blocks.
type TraversalKind int

const (
	// TraverseForward visits blocks in reverse-postorder from the entry:
	// the "forward CDFG traversal" of the basic flow.
	TraverseForward TraversalKind = iota
	// TraverseWeighted visits blocks in descending BlockWeight order, the
	// paper's context-memory-aware traversal (ties broken by forward
	// order for determinism).
	TraverseWeighted
)

func (k TraversalKind) String() string {
	switch k {
	case TraverseForward:
		return "forward"
	case TraverseWeighted:
		return "weighted"
	}
	return "unknown"
}

// Traversal returns the block visit order for the given strategy.
func Traversal(g *Graph, kind TraversalKind) []BBID {
	fwd := reversePostorder(g)
	if kind == TraverseForward {
		return fwd
	}
	pos := make(map[BBID]int, len(fwd))
	for i, id := range fwd {
		pos[id] = i
	}
	order := append([]BBID(nil), fwd...)
	sort.SliceStable(order, func(i, j int) bool {
		wi, wj := BlockWeight(g.Blocks[order[i]]), BlockWeight(g.Blocks[order[j]])
		if wi != wj {
			return wi > wj
		}
		return pos[order[i]] < pos[order[j]]
	})
	return order
}

// reversePostorder returns the blocks reachable from the entry in reverse
// postorder, followed by any unreachable blocks in id order.
func reversePostorder(g *Graph) []BBID {
	seen := make([]bool, len(g.Blocks))
	var post []BBID
	var dfs func(BBID)
	dfs = func(id BBID) {
		seen[id] = true
		for _, s := range g.Blocks[id].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, id)
	}
	dfs(g.Entry)
	order := make([]BBID, 0, len(g.Blocks))
	for i := len(post) - 1; i >= 0; i-- {
		order = append(order, post[i])
	}
	for i := range g.Blocks {
		if !seen[i] {
			order = append(order, BBID(i))
		}
	}
	return order
}
