package cdfg

import (
	"reflect"
	"testing"
)

// diamond builds a block with a diamond DFG:
//
//	c0 → a → b →  d (store uses b, c)
//	      \→ c →/
func diamond() *BasicBlock {
	b := NewBuilder("d")
	e := b.Block("entry")
	a := e.Load(e.Const(0)) // n0 const, n1 load
	bb := e.AddC(a, 1)      // n2 const1, n3 add
	cc := e.AddC(a, 2)      // n4 const2, n5 add
	e.Store(bb, cc)         // n6 store
	return b.Finish().Blocks[0]
}

func TestAnalyzeLevels(t *testing.T) {
	blk := diamond()
	s := Analyze(blk)
	// Consts have zero latency; load at level 0, adds at 1, store at 2.
	wantASAP := map[Opcode]int{OpLoad: 0, OpAdd: 1, OpStore: 2}
	for _, n := range blk.Nodes {
		if w, ok := wantASAP[n.Op]; ok && s.ASAP[n.ID] != w {
			t.Errorf("ASAP(%s n%d) = %d, want %d", n.Op, n.ID, s.ASAP[n.ID], w)
		}
	}
	if s.Depth != 3 {
		t.Errorf("Depth = %d, want 3", s.Depth)
	}
	for _, n := range blk.Nodes {
		if s.Mobility[n.ID] < 0 {
			t.Errorf("negative mobility on n%d", n.ID)
		}
		if n.Op == OpLoad && s.Mobility[n.ID] != 0 {
			t.Errorf("load mobility = %d, want 0 (critical path)", s.Mobility[n.ID])
		}
	}
	// The load feeds both adds.
	for _, n := range blk.Nodes {
		if n.Op == OpLoad && s.Fanout[n.ID] != 2 {
			t.Errorf("load fanout = %d, want 2", s.Fanout[n.ID])
		}
	}
}

func TestUsers(t *testing.T) {
	blk := diamond()
	users := Users(blk)
	for _, n := range blk.Nodes {
		if n.Op == OpLoad && len(users[n.ID]) != 2 {
			t.Errorf("load users = %v", users[n.ID])
		}
		if n.Op == OpStore && len(users[n.ID]) != 0 {
			t.Errorf("store should have no users")
		}
	}
}

func TestBlockWeight(t *testing.T) {
	b := NewBuilder("w")
	e := b.Block("entry")
	z := e.Const(0)
	e.SetSym("a", z)
	e.SetSym("b", z)
	e.Jump("heavy")

	// heavy reads a (3 in-block consumers) and b (1), publishes both:
	// W = n(s)=2 + fan(a)=3+1(liveout) + fan(b)=1+1 = 2+4+2 = 8.
	h := b.Block("heavy")
	av := h.Sym("a")
	bv := h.Sym("b")
	h.Store(av, h.Add(av, bv))
	h.SetSym("a", h.AddC(av, 1))
	h.SetSym("b", bv)
	h.Jump("light")

	// light touches no symbols: W = 0.
	l := b.Block("light")
	l.Store(l.Const(0), l.Const(1))
	g := b.Finish()

	if w := BlockWeight(g.Blocks[1]); w != 8 {
		t.Errorf("heavy weight = %d, want 8", w)
	}
	if w := BlockWeight(g.Blocks[2]); w != 0 {
		t.Errorf("light weight = %d, want 0", w)
	}
	// entry publishes a and b: W = 2 + 1 + 1 = 4.
	if w := BlockWeight(g.Blocks[0]); w != 4 {
		t.Errorf("entry weight = %d, want 4", w)
	}
}

func TestTraversalOrders(t *testing.T) {
	b := NewBuilder("t")
	e := b.Block("entry")
	z := e.Const(0)
	e.SetSym("a", z)
	e.SetSym("b", z)
	e.Jump("heavy")
	h := b.Block("heavy")
	av := h.Sym("a")
	h.Store(av, h.Add(av, h.Sym("b")))
	h.SetSym("a", h.AddC(av, 1))
	h.Jump("light")
	l := b.Block("light")
	l.Store(l.Const(0), l.Const(1))
	g := b.Finish()

	fwd := Traversal(g, TraverseForward)
	if !reflect.DeepEqual(fwd, []BBID{0, 1, 2}) {
		t.Errorf("forward = %v", fwd)
	}
	w := Traversal(g, TraverseWeighted)
	// heavy (weight 7) before entry (4) before light (0).
	if !reflect.DeepEqual(w, []BBID{1, 0, 2}) {
		t.Errorf("weighted = %v (weights: entry=%d heavy=%d light=%d)",
			w, BlockWeight(g.Blocks[0]), BlockWeight(g.Blocks[1]), BlockWeight(g.Blocks[2]))
	}
	if TraverseForward.String() != "forward" || TraverseWeighted.String() != "weighted" {
		t.Error("TraversalKind strings")
	}
}

func TestReversePostorderWithLoop(t *testing.T) {
	b := NewBuilder("loop")
	e := b.Block("entry")
	e.SetSym("i", e.Const(0))
	e.Jump("loop")
	l := b.Block("loop")
	i2 := l.AddC(l.Sym("i"), 1)
	l.SetSym("i", i2)
	l.BranchIf(l.Lt(i2, l.Const(3)), "loop", "exit")
	b.Block("exit")
	g := b.Finish()
	fwd := Traversal(g, TraverseForward)
	if fwd[0] != g.Entry {
		t.Errorf("forward traversal must start at entry: %v", fwd)
	}
	if len(fwd) != len(g.Blocks) {
		t.Errorf("traversal covers %d of %d blocks", len(fwd), len(g.Blocks))
	}
}
