package cdfg

import (
	"fmt"
	"strings"
)

// Dot renders the graph in Graphviz DOT form, one cluster per basic block
// with dataflow edges inside clusters and control edges between them.
// Useful for debugging kernel generators and mapper inputs.
func Dot(g *Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  compound=true;\n  node [shape=box, fontsize=10];\n")
	for _, blk := range g.Blocks {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n", blk.ID, blk.Name)
		for _, n := range blk.Nodes {
			label := n.Op.String()
			switch n.Op {
			case OpConst:
				label = fmt.Sprintf("%d", n.Val)
			case OpSym:
				label = n.Sym
			}
			fmt.Fprintf(&b, "    b%dn%d [label=%q];\n", blk.ID, n.ID, label)
		}
		for _, n := range blk.Nodes {
			for _, a := range n.Args {
				fmt.Fprintf(&b, "    b%dn%d -> b%dn%d;\n", blk.ID, a, blk.ID, n.ID)
			}
		}
		fmt.Fprintf(&b, "  }\n")
	}
	for _, blk := range g.Blocks {
		if len(blk.Nodes) == 0 {
			continue
		}
		from := fmt.Sprintf("b%dn%d", blk.ID, len(blk.Nodes)-1)
		for i, s := range blk.Succs {
			style := "solid"
			if blk.HasBranch() && i == 1 {
				style = "dashed"
			}
			to := g.Blocks[s]
			if len(to.Nodes) == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %s -> b%dn0 [ltail=cluster_%d, lhead=cluster_%d, style=%s, color=red];\n",
				from, to.ID, blk.ID, to.ID, style)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
