package kernels

import "repro/internal/cdfg"

// Matrix multiplication parameters: C = A×B with 16×16 int32 matrices.
// The reduction (k) loop is fully unrolled and the column (j) loop is
// unrolled by two, sharing the A-row loads between the two output
// elements — the shape an optimizing frontend produces. The unrolled body
// is dominated by loads feeding multiplies: the load/store hot-spot
// pattern of the paper's Fig 2.
const (
	matmN       = 16
	matmJUnroll = 2
	matmAAt     = 0
	matmBAt     = matmAAt + matmN*matmN
	matmCAt     = matmBAt + matmN*matmN
	matmEnd     = matmCAt + matmN*matmN
)

func matmInputs() (a, b []int32) {
	a = make([]int32, matmN*matmN)
	b = make([]int32, matmN*matmN)
	for i := range a {
		a[i] = int32((i*7)%23) - 11
		b[i] = int32((i*13)%29) - 14
	}
	return a, b
}

func matmRef(a, b []int32) []int32 {
	c := make([]int32, matmN*matmN)
	for i := 0; i < matmN; i++ {
		for j := 0; j < matmN; j++ {
			var acc int32
			for k := 0; k < matmN; k++ {
				acc += a[i*matmN+k] * b[k*matmN+j]
			}
			c[i*matmN+j] = acc
		}
	}
	return c
}

// MatM returns the matrix-multiplication kernel.
func MatM() Kernel {
	return Kernel{
		Name: "MatM",
		Build: func() *cdfg.Graph {
			b := cdfg.NewBuilder("matm")
			entry := b.Block("entry")
			entry.SetSym("i", entry.Const(0))
			entry.Jump("iloop")

			// Per-row setup: the A-row and C-row base addresses carried as
			// symbols into the column loop.
			il := b.Block("iloop")
			i := il.Sym("i")
			rowBase := il.MulC(i, matmN)
			il.SetSym("arow", il.AddC(rowBase, matmAAt))
			il.SetSym("crow", il.AddC(rowBase, matmCAt))
			il.SetSym("j", il.Const(0))
			il.Jump("jloop")

			jl := b.Block("jloop")
			j := jl.Sym("j")
			arow := jl.Sym("arow")
			// The A-row loads are shared between the unrolled j iterations.
			avs := make([]cdfg.Value, matmN)
			for k := 0; k < matmN; k++ {
				avs[k] = jl.Load(jl.AddC(arow, int32(k)))
			}
			crow := jl.Sym("crow")
			for u := 0; u < matmJUnroll; u++ {
				ju := j
				if u > 0 {
					ju = jl.AddC(j, int32(u))
				}
				terms := make([]cdfg.Value, matmN)
				for k := 0; k < matmN; k++ {
					bv := jl.Load(jl.Add(jl.Const(matmBAt+int32(k*matmN)), ju))
					terms[k] = jl.Mul(avs[k], bv)
				}
				jl.Store(jl.Add(crow, ju), reduceAdd(jl, terms))
			}
			j2 := jl.AddC(j, matmJUnroll)
			jl.SetSym("j", j2)
			jl.BranchIf(jl.Lt(j2, jl.Const(matmN)), "jloop", "inext")

			in := b.Block("inext")
			i2 := in.AddC(in.Sym("i"), 1)
			in.SetSym("i", i2)
			in.BranchIf(in.Lt(i2, in.Const(matmN)), "iloop", "exit")

			b.Block("exit")
			return b.Finish()
		},
		Init: func() cdfg.Memory {
			mem := make(cdfg.Memory, matmEnd)
			a, bb := matmInputs()
			copy(mem[matmAAt:], a)
			copy(mem[matmBAt:], bb)
			return mem
		},
		Check: func(mem cdfg.Memory) error {
			a, b := matmInputs()
			return checkRegion(mem, matmCAt, matmRef(a, b), "C")
		},
	}
}
