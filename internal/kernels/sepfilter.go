package kernels

import "repro/internal/cdfg"

// Separable filter parameters: a 5×5 Gaussian-like filter applied as a
// horizontal 5-tap pass into an intermediate buffer followed by a
// vertical 5-tap pass, over a 16×16 image (valid region 12×12). Two loop
// nests in one CDFG: more basic blocks and more symbol variables than the
// single-nest kernels.
const (
	sepW    = 16
	sepH    = 16
	sepOutW = sepW - 4
	sepOutH = sepH - 4
	sepInAt = 0
	sepTmp  = sepInAt + sepW*sepH   // horizontal pass result: sepOutW × sepH
	sepOut  = sepTmp + sepOutW*sepH // final: sepOutW × sepOutH
	sepEnd  = sepOut + sepOutW*sepOutH
)

var sepCoef = [5]int32{16, 62, 100, 62, 16} // Q8, sums to 256

func sepInput() []int32 {
	img := make([]int32, sepW*sepH)
	for i := range img {
		img[i] = int32((i*53 + 11) % 256)
	}
	return img
}

func sepRef(img []int32) []int32 {
	tmp := make([]int32, sepOutW*sepH)
	for y := 0; y < sepH; y++ {
		for x := 0; x < sepOutW; x++ {
			var acc int32
			for k := 0; k < 5; k++ {
				acc += sepCoef[k] * img[y*sepW+x+k]
			}
			tmp[y*sepOutW+x] = acc >> 8
		}
	}
	out := make([]int32, sepOutW*sepOutH)
	for y := 0; y < sepOutH; y++ {
		for x := 0; x < sepOutW; x++ {
			var acc int32
			for k := 0; k < 5; k++ {
				acc += sepCoef[k] * tmp[(y+k)*sepOutW+x]
			}
			out[y*sepOutW+x] = acc >> 8
		}
	}
	return out
}

// SepFilter returns the separable-filter kernel.
func SepFilter() Kernel {
	return Kernel{
		Name: "SepFilter",
		Build: func() *cdfg.Graph {
			b := cdfg.NewBuilder("sepfilter")
			entry := b.Block("entry")
			entry.SetSym("hy", entry.Const(0))
			entry.Jump("hyloop")

			// Horizontal pass.
			hyl := b.Block("hyloop")
			hy := hyl.Sym("hy")
			hyl.SetSym("hin", hyl.AddC(hyl.MulC(hy, sepW), sepInAt))
			hyl.SetSym("htmp", hyl.AddC(hyl.MulC(hy, sepOutW), sepTmp))
			hyl.SetSym("hx", hyl.Const(0))
			hyl.Jump("hxloop")

			hxl := b.Block("hxloop")
			hx := hxl.Sym("hx")
			hbase := hxl.Add(hxl.Sym("hin"), hx)
			terms := make([]cdfg.Value, 5)
			for k := 0; k < 5; k++ {
				pv := hxl.Load(hxl.AddC(hbase, int32(k)))
				terms[k] = hxl.MulC(pv, sepCoef[k])
			}
			hxl.Store(hxl.Add(hxl.Sym("htmp"), hx), hxl.Sra(reduceAdd(hxl, terms), hxl.Const(8)))
			hx2 := hxl.AddC(hx, 1)
			hxl.SetSym("hx", hx2)
			hxl.BranchIf(hxl.Lt(hx2, hxl.Const(sepOutW)), "hxloop", "hynext")

			hyn := b.Block("hynext")
			hy2 := hyn.AddC(hyn.Sym("hy"), 1)
			hyn.SetSym("hy", hy2)
			hyn.BranchIf(hyn.Lt(hy2, hyn.Const(sepH)), "hyloop", "ventry")

			// Vertical pass.
			ve := b.Block("ventry")
			ve.SetSym("vy", ve.Const(0))
			ve.Jump("vyloop")

			vyl := b.Block("vyloop")
			vy := vyl.Sym("vy")
			vyl.SetSym("vtmp", vyl.AddC(vyl.MulC(vy, sepOutW), sepTmp))
			vyl.SetSym("vout", vyl.AddC(vyl.MulC(vy, sepOutW), sepOut))
			vyl.SetSym("vx", vyl.Const(0))
			vyl.Jump("vxloop")

			vxl := b.Block("vxloop")
			vx := vxl.Sym("vx")
			vbase := vxl.Add(vxl.Sym("vtmp"), vx)
			vterms := make([]cdfg.Value, 5)
			for k := 0; k < 5; k++ {
				pv := vxl.Load(vxl.AddC(vbase, int32(k*sepOutW)))
				vterms[k] = vxl.MulC(pv, sepCoef[k])
			}
			vxl.Store(vxl.Add(vxl.Sym("vout"), vx), vxl.Sra(reduceAdd(vxl, vterms), vxl.Const(8)))
			vx2 := vxl.AddC(vx, 1)
			vxl.SetSym("vx", vx2)
			vxl.BranchIf(vxl.Lt(vx2, vxl.Const(sepOutW)), "vxloop", "vynext")

			vyn := b.Block("vynext")
			vy2 := vyn.AddC(vyn.Sym("vy"), 1)
			vyn.SetSym("vy", vy2)
			vyn.BranchIf(vyn.Lt(vy2, vyn.Const(sepOutH)), "vyloop", "exit")

			b.Block("exit")
			return b.Finish()
		},
		Init: func() cdfg.Memory {
			mem := make(cdfg.Memory, sepEnd)
			copy(mem[sepInAt:], sepInput())
			return mem
		},
		Check: func(mem cdfg.Memory) error {
			return checkRegion(mem, sepOut, sepRef(sepInput()), "out")
		},
	}
}
