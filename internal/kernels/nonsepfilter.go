package kernels

import "repro/internal/cdfg"

// Non-separable filter parameters: a full 7×7 window over an 18×18 image
// (valid region 12×12), all 49 taps unrolled in the inner body. This is
// the largest basic block of the suite — the kernel that stresses context
// memories the hardest, matching its behaviour in the paper's Figs 6–8.
const (
	nsepK    = 7
	nsepW    = 18
	nsepH    = 18
	nsepOutW = nsepW - (nsepK - 1)
	nsepOutH = nsepH - (nsepK - 1)
	nsepInAt = 0
	nsepOut  = nsepInAt + nsepW*nsepH
	nsepEnd  = nsepOut + nsepOutW*nsepOutH
)

// nsepCoef is an asymmetric 7×7 Q8 kernel (not an outer product, so the
// filter is genuinely non-separable).
var nsepCoef = func() [nsepK][nsepK]int32 {
	var c [nsepK][nsepK]int32
	for y := 0; y < nsepK; y++ {
		for x := 0; x < nsepK; x++ {
			d := abs32(y-nsepK/2) + abs32(x-nsepK/2)
			c[y][x] = int32(21-3*d) + int32((x*5+y*3)%4) // asymmetric taper
		}
	}
	return c
}()

func abs32(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func nsepInput() []int32 {
	img := make([]int32, nsepW*nsepH)
	for i := range img {
		img[i] = int32((i*71 + 13) % 256)
	}
	return img
}

func nsepRef(img []int32) []int32 {
	out := make([]int32, nsepOutW*nsepOutH)
	for y := 0; y < nsepOutH; y++ {
		for x := 0; x < nsepOutW; x++ {
			var acc int32
			for ky := 0; ky < nsepK; ky++ {
				for kx := 0; kx < nsepK; kx++ {
					acc += nsepCoef[ky][kx] * img[(y+ky)*nsepW+(x+kx)]
				}
			}
			out[y*nsepOutW+x] = acc >> 8
		}
	}
	return out
}

// NonSepFilter returns the non-separable 5×5 filter kernel.
func NonSepFilter() Kernel {
	return Kernel{
		Name: "NonSepFilter",
		Build: func() *cdfg.Graph {
			b := cdfg.NewBuilder("nonsepfilter")
			entry := b.Block("entry")
			entry.SetSym("y", entry.Const(0))
			entry.Jump("yloop")

			yl := b.Block("yloop")
			y := yl.Sym("y")
			yl.SetSym("inrow", yl.AddC(yl.MulC(y, nsepW), nsepInAt))
			yl.SetSym("outrow", yl.AddC(yl.MulC(y, nsepOutW), nsepOut))
			yl.SetSym("x", yl.Const(0))
			yl.Jump("xloop")

			xl := b.Block("xloop")
			x := xl.Sym("x")
			base := xl.Add(xl.Sym("inrow"), x)
			var terms []cdfg.Value
			for ky := 0; ky < nsepK; ky++ {
				for kx := 0; kx < nsepK; kx++ {
					pv := xl.Load(xl.AddC(base, int32(ky*nsepW+kx)))
					terms = append(terms, xl.MulC(pv, nsepCoef[ky][kx]))
				}
			}
			xl.Store(xl.Add(xl.Sym("outrow"), x), xl.Sra(reduceAdd(xl, terms), xl.Const(8)))
			x2 := xl.AddC(x, 1)
			xl.SetSym("x", x2)
			xl.BranchIf(xl.Lt(x2, xl.Const(nsepOutW)), "xloop", "ynext")

			yn := b.Block("ynext")
			y2 := yn.AddC(yn.Sym("y"), 1)
			yn.SetSym("y", y2)
			yn.BranchIf(yn.Lt(y2, yn.Const(nsepOutH)), "yloop", "exit")

			b.Block("exit")
			return b.Finish()
		},
		Init: func() cdfg.Memory {
			mem := make(cdfg.Memory, nsepEnd)
			copy(mem[nsepInAt:], nsepInput())
			return mem
		},
		Check: func(mem cdfg.Memory) error {
			return checkRegion(mem, nsepOut, nsepRef(nsepInput()), "out")
		},
	}
}
