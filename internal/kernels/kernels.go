// Package kernels provides the seven compute-intensive signal-processing
// kernels of the paper's evaluation — FIR, matrix multiplication, 2D
// convolution, separable filter, non-separable filter, FFT and DC filter —
// as CDFG generators with golden Go reference implementations and input
// generators.
//
// The CDFGs play the role of the paper's compiler frontend output: loop
// nests become basic blocks linked by symbol variables, inner loops are
// unrolled over the coefficient/reduction dimension like an optimizing
// frontend would, and filter coefficients are compile-time constants
// served from the constant register files.
package kernels

import (
	"fmt"

	"repro/internal/cdfg"
)

// Kernel bundles one benchmark kernel.
type Kernel struct {
	// Name is the paper's kernel name.
	Name string
	// Build generates the kernel's CDFG.
	Build func() *cdfg.Graph
	// Init returns the initial data memory (inputs placed, outputs zero).
	Init func() cdfg.Memory
	// Check verifies the output region of a final memory against the
	// golden Go reference computed from the same inputs.
	Check func(mem cdfg.Memory) error
}

// All returns the seven kernels in the paper's presentation order
// (Table II).
func All() []Kernel {
	return []Kernel{
		FIR(),
		MatM(),
		Convolution(),
		SepFilter(),
		NonSepFilter(),
		FFT(),
		DCFilter(),
	}
}

// ByName returns the named kernel.
func ByName(name string) (Kernel, error) {
	for _, k := range All() {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("kernels: unknown kernel %q", name)
}

// Names lists the kernel names in order.
func Names() []string {
	ks := All()
	names := make([]string, len(ks))
	for i, k := range ks {
		names[i] = k.Name
	}
	return names
}

// reduceAdd sums the values with a balanced binary tree, the shape an
// optimizing (-O3 style) frontend produces for integer reductions: depth
// log2(n) instead of n, exposing the instruction-level parallelism the
// CGRA feeds on.
func reduceAdd(bb *cdfg.BlockBuilder, vals []cdfg.Value) cdfg.Value {
	if len(vals) == 0 {
		panic("kernels: reduceAdd of no values")
	}
	for len(vals) > 1 {
		next := make([]cdfg.Value, 0, (len(vals)+1)/2)
		for i := 0; i+1 < len(vals); i += 2 {
			next = append(next, bb.Add(vals[i], vals[i+1]))
		}
		if len(vals)%2 == 1 {
			next = append(next, vals[len(vals)-1])
		}
		vals = next
	}
	return vals[0]
}

// checkRegion compares a memory region against expected values.
func checkRegion(mem cdfg.Memory, base int32, want []int32, what string) error {
	for i, w := range want {
		got, err := mem.Load(base + int32(i))
		if err != nil {
			return err
		}
		if got != w {
			return fmt.Errorf("kernels: %s[%d] = %d, want %d", what, i, got, w)
		}
	}
	return nil
}
