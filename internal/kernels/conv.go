package kernels

import "repro/internal/cdfg"

// 2D convolution parameters: a 3×3 kernel over a 16×16 image producing a
// 14×14 valid-region output, with the 3×3 window fully unrolled and
// compile-time Q8 coefficients.
const (
	convW    = 16
	convH    = 16
	convOutW = convW - 2
	convOutH = convH - 2
	convInAt = 0
	convOut  = convInAt + convW*convH
	convEnd  = convOut + convOutW*convOutH
)

var convCoef = [3][3]int32{
	{29, 58, 29},
	{58, 116, 58},
	{29, 58, 29},
}

func convInput() []int32 {
	img := make([]int32, convW*convH)
	for i := range img {
		img[i] = int32((i*31 + 7) % 256)
	}
	return img
}

func convRef(img []int32) []int32 {
	out := make([]int32, convOutW*convOutH)
	for y := 0; y < convOutH; y++ {
		for x := 0; x < convOutW; x++ {
			var acc int32
			for ky := 0; ky < 3; ky++ {
				for kx := 0; kx < 3; kx++ {
					acc += convCoef[ky][kx] * img[(y+ky)*convW+(x+kx)]
				}
			}
			out[y*convOutW+x] = acc >> 8
		}
	}
	return out
}

// Convolution returns the 3×3 2D convolution kernel.
func Convolution() Kernel {
	return Kernel{
		Name: "Convolution",
		Build: func() *cdfg.Graph {
			b := cdfg.NewBuilder("convolution")
			entry := b.Block("entry")
			entry.SetSym("y", entry.Const(0))
			entry.Jump("yloop")

			yl := b.Block("yloop")
			y := yl.Sym("y")
			yl.SetSym("inrow", yl.AddC(yl.MulC(y, convW), convInAt))
			yl.SetSym("outrow", yl.AddC(yl.MulC(y, convOutW), convOut))
			yl.SetSym("x", yl.Const(0))
			yl.Jump("xloop")

			xl := b.Block("xloop")
			x := xl.Sym("x")
			inrow := xl.Sym("inrow")
			base := xl.Add(inrow, x)
			var terms []cdfg.Value
			for ky := 0; ky < 3; ky++ {
				for kx := 0; kx < 3; kx++ {
					pv := xl.Load(xl.AddC(base, int32(ky*convW+kx)))
					terms = append(terms, xl.MulC(pv, convCoef[ky][kx]))
				}
			}
			res := xl.Sra(reduceAdd(xl, terms), xl.Const(8))
			xl.Store(xl.Add(xl.Sym("outrow"), x), res)
			x2 := xl.AddC(x, 1)
			xl.SetSym("x", x2)
			xl.BranchIf(xl.Lt(x2, xl.Const(convOutW)), "xloop", "ynext")

			yn := b.Block("ynext")
			y2 := yn.AddC(yn.Sym("y"), 1)
			yn.SetSym("y", y2)
			yn.BranchIf(yn.Lt(y2, yn.Const(convOutH)), "yloop", "exit")

			b.Block("exit")
			return b.Finish()
		},
		Init: func() cdfg.Memory {
			mem := make(cdfg.Memory, convEnd)
			copy(mem[convInAt:], convInput())
			return mem
		},
		Check: func(mem cdfg.Memory) error {
			return checkRegion(mem, convOut, convRef(convInput()), "out")
		},
	}
}
