package kernels

import (
	"testing"

	"repro/internal/cdfg"
)

// TestKernelsInterpretMatchGolden checks that interpreting each kernel's
// CDFG reproduces the golden Go reference output bit-exactly.
func TestKernelsInterpretMatchGolden(t *testing.T) {
	for _, k := range All() {
		t.Run(k.Name, func(t *testing.T) {
			g := k.Build()
			if err := cdfg.Verify(g); err != nil {
				t.Fatalf("Verify: %v", err)
			}
			mem := k.Init()
			tr, err := cdfg.Interp(g, mem)
			if err != nil {
				t.Fatalf("Interp: %v", err)
			}
			if tr.Stores == 0 {
				t.Fatalf("kernel stored nothing")
			}
			if err := k.Check(mem); err != nil {
				t.Fatalf("Check: %v", err)
			}
		})
	}
}

// TestKernelsDeterministic ensures Build/Init are pure: two builds produce
// identical listings and memories.
func TestKernelsDeterministic(t *testing.T) {
	for _, k := range All() {
		t.Run(k.Name, func(t *testing.T) {
			if got, want := k.Build().String(), k.Build().String(); got != want {
				t.Fatalf("two builds differ")
			}
			a, b := k.Init(), k.Init()
			if len(a) != len(b) {
				t.Fatalf("memory sizes differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("memories differ at %d", i)
				}
			}
		})
	}
}

// TestKernelShapes sanity-checks the structural properties the evaluation
// relies on: every kernel has loops (multiple blocks), symbol variables,
// and memory traffic.
func TestKernelShapes(t *testing.T) {
	for _, k := range All() {
		t.Run(k.Name, func(t *testing.T) {
			g := k.Build()
			if len(g.Blocks) < 3 {
				t.Errorf("%s has only %d blocks", k.Name, len(g.Blocks))
			}
			if len(g.Symbols()) == 0 {
				t.Errorf("%s has no symbol variables", k.Name)
			}
			loads, stores := 0, 0
			for _, b := range g.Blocks {
				for _, n := range b.Nodes {
					switch n.Op {
					case cdfg.OpLoad:
						loads++
					case cdfg.OpStore:
						stores++
					}
				}
			}
			if loads == 0 || stores == 0 {
				t.Errorf("%s: loads=%d stores=%d", k.Name, loads, stores)
			}
		})
	}
}
