package kernels

import "repro/internal/cdfg"

// FIR parameters: an 8-tap finite-impulse-response filter over 64 output
// samples, taps fully unrolled in the loop body with compile-time
// coefficients (Q8 fixed point).
const (
	firTaps = 8
	firN    = 64
	firXAt  = 0 // x[0 .. firN+firTaps-2]
	firYAt  = firXAt + firN + firTaps - 1
	firEnd  = firYAt + firN
)

// firCoef holds the Q8 filter coefficients.
var firCoef = [firTaps]int32{12, 34, 78, 121, 121, 78, 34, 12}

// firRef is the golden reference: y[n] = (Σ h[k]·x[n+k]) >> 8.
func firRef(x []int32) []int32 {
	y := make([]int32, firN)
	for n := 0; n < firN; n++ {
		var acc int32
		for k := 0; k < firTaps; k++ {
			acc += firCoef[k] * x[n+k]
		}
		y[n] = acc >> 8
	}
	return y
}

func firInput() []int32 {
	x := make([]int32, firN+firTaps-1)
	for i := range x {
		x[i] = int32((i*37)%256) - 128
	}
	return x
}

// FIR returns the FIR kernel.
func FIR() Kernel {
	return Kernel{
		Name: "FIR",
		Build: func() *cdfg.Graph {
			b := cdfg.NewBuilder("fir")
			entry := b.Block("entry")
			entry.SetSym("n", entry.Const(0))
			entry.Jump("loop")

			loop := b.Block("loop")
			n := loop.Sym("n")
			terms := make([]cdfg.Value, firTaps)
			for k := 0; k < firTaps; k++ {
				xv := loop.Load(loop.AddC(n, firXAt+int32(k)))
				terms[k] = loop.MulC(xv, firCoef[k])
			}
			acc := reduceAdd(loop, terms)
			y := loop.Sra(acc, loop.Const(8))
			loop.Store(loop.AddC(n, firYAt), y)
			n2 := loop.AddC(n, 1)
			loop.SetSym("n", n2)
			loop.BranchIf(loop.Lt(n2, loop.Const(firN)), "loop", "exit")

			b.Block("exit")
			return b.Finish()
		},
		Init: func() cdfg.Memory {
			mem := make(cdfg.Memory, firEnd)
			copy(mem[firXAt:], firInput())
			return mem
		},
		Check: func(mem cdfg.Memory) error {
			return checkRegion(mem, firYAt, firRef(firInput()), "y")
		},
	}
}
