package kernels

import "repro/internal/cdfg"

// DC filter parameters: the classic DC-removal IIR
//
//	y[n] = x[n] - x[n-1] + (alpha * y[n-1]) >> 8
//
// over 64 samples with alpha = 0.95 in Q8. The recurrence is carried in
// two symbol variables (no history loads), so the loop body is small and
// serial — the low-ILP end of the suite.
//
// The filter also carries the frontend shape real DSP code has: an
// optional state-seeding arm gated on the configured start bias
// (`if (bias) { seed the recurrence }`). The frontend keeps both arms —
// bias is a deployment parameter — and this deployment pins it to 0, so
// the arm is dead in the shipped bitstream. Only a bitstream-level
// analysis can prove that and reclaim the arm's context words, which is
// exactly what internal/static's dead-context elimination does.
const (
	dcN     = 64
	dcAlpha = 243 // 0.95 in Q8
	dcBias  = 0   // recurrence start bias; 0 disables the seed arm
	dcXAt   = 0
	dcYAt   = dcXAt + dcN
	dcEnd   = dcYAt + dcN
)

func dcInput() []int32 {
	x := make([]int32, dcN)
	for i := range x {
		x[i] = int32((i*29+300)%512) - 256 + 100 // offset: a DC component to remove
	}
	return x
}

func dcRef(x []int32) []int32 {
	y := make([]int32, dcN)
	var xprev, yprev int32
	for n := 0; n < dcN; n++ {
		y[n] = x[n] - xprev + (dcAlpha*yprev)>>8
		xprev = x[n]
		yprev = y[n]
	}
	return y
}

// DCFilter returns the DC-removal IIR kernel.
func DCFilter() Kernel {
	return Kernel{
		Name: "DCFilter",
		Build: func() *cdfg.Graph {
			b := cdfg.NewBuilder("dcfilter")
			entry := b.Block("entry")
			zero := entry.Const(0)
			entry.SetSym("n", zero)
			entry.SetSym("xprev", zero)
			entry.SetSym("yprev", zero)
			entry.BranchIf(entry.Const(dcBias), "seed", "loop")

			// Bias-seed arm: primes the IIR state with the configured
			// bias. Never taken while dcBias == 0, but mapped and loaded
			// into context memory all the same — the dead-context case.
			seed := b.Block("seed")
			bias := seed.Const(dcBias)
			seed.SetSym("yprev", bias)
			seed.SetSym("xprev", seed.Sra(bias, seed.Const(1)))
			seed.Jump("loop")

			loop := b.Block("loop")
			n := loop.Sym("n")
			x := loop.Load(loop.AddC(n, dcXAt))
			hp := loop.Sub(x, loop.Sym("xprev"))
			decay := loop.Sra(loop.MulC(loop.Sym("yprev"), dcAlpha), loop.Const(8))
			y := loop.Add(hp, decay)
			loop.Store(loop.AddC(n, dcYAt), y)
			loop.SetSym("xprev", x)
			loop.SetSym("yprev", y)
			n2 := loop.AddC(n, 1)
			loop.SetSym("n", n2)
			loop.BranchIf(loop.Lt(n2, loop.Const(dcN)), "loop", "exit")

			b.Block("exit")
			return b.Finish()
		},
		Init: func() cdfg.Memory {
			mem := make(cdfg.Memory, dcEnd)
			copy(mem[dcXAt:], dcInput())
			return mem
		},
		Check: func(mem cdfg.Memory) error {
			return checkRegion(mem, dcYAt, dcRef(dcInput()), "y")
		},
	}
}
