package kernels

import "repro/internal/cdfg"

// DC filter parameters: the classic DC-removal IIR
//
//	y[n] = x[n] - x[n-1] + (alpha * y[n-1]) >> 8
//
// over 64 samples with alpha = 0.95 in Q8. The recurrence is carried in
// two symbol variables (no history loads), so the loop body is small and
// serial — the low-ILP end of the suite.
const (
	dcN     = 64
	dcAlpha = 243 // 0.95 in Q8
	dcXAt   = 0
	dcYAt   = dcXAt + dcN
	dcEnd   = dcYAt + dcN
)

func dcInput() []int32 {
	x := make([]int32, dcN)
	for i := range x {
		x[i] = int32((i*29+300)%512) - 256 + 100 // offset: a DC component to remove
	}
	return x
}

func dcRef(x []int32) []int32 {
	y := make([]int32, dcN)
	var xprev, yprev int32
	for n := 0; n < dcN; n++ {
		y[n] = x[n] - xprev + (dcAlpha*yprev)>>8
		xprev = x[n]
		yprev = y[n]
	}
	return y
}

// DCFilter returns the DC-removal IIR kernel.
func DCFilter() Kernel {
	return Kernel{
		Name: "DCFilter",
		Build: func() *cdfg.Graph {
			b := cdfg.NewBuilder("dcfilter")
			entry := b.Block("entry")
			zero := entry.Const(0)
			entry.SetSym("n", zero)
			entry.SetSym("xprev", zero)
			entry.SetSym("yprev", zero)
			entry.Jump("loop")

			loop := b.Block("loop")
			n := loop.Sym("n")
			x := loop.Load(loop.AddC(n, dcXAt))
			hp := loop.Sub(x, loop.Sym("xprev"))
			decay := loop.Sra(loop.MulC(loop.Sym("yprev"), dcAlpha), loop.Const(8))
			y := loop.Add(hp, decay)
			loop.Store(loop.AddC(n, dcYAt), y)
			loop.SetSym("xprev", x)
			loop.SetSym("yprev", y)
			n2 := loop.AddC(n, 1)
			loop.SetSym("n", n2)
			loop.BranchIf(loop.Lt(n2, loop.Const(dcN)), "loop", "exit")

			b.Block("exit")
			return b.Finish()
		},
		Init: func() cdfg.Memory {
			mem := make(cdfg.Memory, dcEnd)
			copy(mem[dcXAt:], dcInput())
			return mem
		},
		Check: func(mem cdfg.Memory) error {
			return checkRegion(mem, dcYAt, dcRef(dcInput()), "y")
		},
	}
}
