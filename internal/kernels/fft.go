package kernels

import "repro/internal/cdfg"

// FFT parameters: a 16-point radix-2 decimation-in-time FFT on Q8
// fixed-point complex data. The kernel copies the input into work arrays
// in bit-reversed order, then runs the classic triple loop (stage, group,
// butterfly) in place. With seven loop-carried symbol variables across six
// loop blocks, this is the most control- and symbol-heavy kernel of the
// suite — the one the paper profiles the weighted traversal on (Fig 5).
const (
	fftN     = 16
	fftReAt  = 0
	fftImAt  = fftReAt + fftN
	fftWreAt = fftImAt + fftN    // 8 twiddle cosines, Q8
	fftWimAt = fftWreAt + fftN/2 // 8 twiddle -sines, Q8
	fftWrkRe = fftWimAt + fftN/2
	fftWrkIm = fftWrkRe + fftN
	fftEnd   = fftWrkIm + fftN
)

// Q8 twiddles for W16^k = exp(-2*pi*i*k/16), k = 0..7.
var (
	fftWre = [fftN / 2]int32{256, 237, 181, 98, 0, -98, -181, -237}
	fftWim = [fftN / 2]int32{0, -98, -181, -237, -256, -237, -181, -98}
)

func fftInput() (re, im []int32) {
	re = make([]int32, fftN)
	im = make([]int32, fftN)
	for i := range re {
		re[i] = int32((i*97+31)%256) - 128
		im[i] = int32((i*61+17)%256) - 128
	}
	return re, im
}

// bitrev4 reverses the low 4 bits of i.
func bitrev4(i int32) int32 {
	return (i&1)<<3 | (i&2)<<1 | (i&4)>>1 | (i&8)>>3
}

// fftRef is the bit-exact golden reference of the fixed-point FFT.
func fftRef(reIn, imIn []int32) (re, im []int32) {
	re = make([]int32, fftN)
	im = make([]int32, fftN)
	for i := int32(0); i < fftN; i++ {
		re[bitrev4(i)] = reIn[i]
		im[bitrev4(i)] = imIn[i]
	}
	for s := 1; s <= 4; s++ {
		m := 1 << s
		half := m >> 1
		tstep := fftN / m
		for j := 0; j < fftN; j += m {
			for k := 0; k < half; k++ {
				i1 := j + k
				i2 := i1 + half
				wre := fftWre[k*tstep]
				wim := fftWim[k*tstep]
				tre := (wre*re[i2] - wim*im[i2]) >> 8
				tim := (wre*im[i2] + wim*re[i2]) >> 8
				re[i2] = re[i1] - tre
				im[i2] = im[i1] - tim
				re[i1] = re[i1] + tre
				im[i1] = im[i1] + tim
			}
		}
	}
	return re, im
}

// FFT returns the 16-point FFT kernel.
func FFT() Kernel {
	return Kernel{
		Name: "FFT",
		Build: func() *cdfg.Graph {
			b := cdfg.NewBuilder("fft")
			entry := b.Block("entry")
			entry.SetSym("i", entry.Const(0))
			entry.Jump("brloop")

			// Bit-reversed copy into the work arrays.
			br := b.Block("brloop")
			i := br.Sym("i")
			rev := br.Or(
				br.Or(br.Shl(br.And(i, br.Const(1)), br.Const(3)),
					br.Shl(br.And(i, br.Const(2)), br.Const(1))),
				br.Or(br.Shr(br.And(i, br.Const(4)), br.Const(1)),
					br.Shr(br.And(i, br.Const(8)), br.Const(3))))
			br.Store(br.AddC(rev, fftWrkRe), br.Load(br.AddC(i, fftReAt)))
			br.Store(br.AddC(rev, fftWrkIm), br.Load(br.AddC(i, fftImAt)))
			i2 := br.AddC(i, 1)
			br.SetSym("i", i2)
			br.BranchIf(br.Lt(i2, br.Const(fftN)), "brloop", "sinit")

			si := b.Block("sinit")
			si.SetSym("s", si.Const(1))
			si.Jump("sloop")

			// Per-stage setup: span m, half-span, twiddle stride.
			sl := b.Block("sloop")
			s := sl.Sym("s")
			m := sl.Shl(sl.Const(1), s)
			sl.SetSym("m", m)
			sl.SetSym("half", sl.Shr(m, sl.Const(1)))
			sl.SetSym("tstep", sl.Shr(sl.Const(fftN), s))
			sl.SetSym("j", sl.Const(0))
			sl.Jump("jloop")

			jl := b.Block("jloop")
			jl.SetSym("k", jl.Const(0))
			jl.Jump("kloop")

			// Butterfly.
			kl := b.Block("kloop")
			k := kl.Sym("k")
			j := kl.Sym("j")
			half := kl.Sym("half")
			i1 := kl.Add(j, k)
			ii2 := kl.Add(i1, half)
			are := kl.Load(kl.AddC(i1, fftWrkRe))
			aim := kl.Load(kl.AddC(i1, fftWrkIm))
			bre := kl.Load(kl.AddC(ii2, fftWrkRe))
			bim := kl.Load(kl.AddC(ii2, fftWrkIm))
			tw := kl.Mul(k, kl.Sym("tstep"))
			wre := kl.Load(kl.AddC(tw, fftWreAt))
			wim := kl.Load(kl.AddC(tw, fftWimAt))
			c8 := kl.Const(8)
			tre := kl.Sra(kl.Sub(kl.Mul(wre, bre), kl.Mul(wim, bim)), c8)
			tim := kl.Sra(kl.Add(kl.Mul(wre, bim), kl.Mul(wim, bre)), c8)
			kl.Store(kl.AddC(ii2, fftWrkRe), kl.Sub(are, tre))
			kl.Store(kl.AddC(ii2, fftWrkIm), kl.Sub(aim, tim))
			kl.Store(kl.AddC(i1, fftWrkRe), kl.Add(are, tre))
			kl.Store(kl.AddC(i1, fftWrkIm), kl.Add(aim, tim))
			k2 := kl.AddC(k, 1)
			kl.SetSym("k", k2)
			kl.BranchIf(kl.Lt(k2, half), "kloop", "jnext")

			jn := b.Block("jnext")
			j2 := jn.Add(jn.Sym("j"), jn.Sym("m"))
			jn.SetSym("j", j2)
			jn.BranchIf(jn.Lt(j2, jn.Const(fftN)), "jloop", "snext")

			sn := b.Block("snext")
			s2 := sn.AddC(sn.Sym("s"), 1)
			sn.SetSym("s", s2)
			sn.BranchIf(sn.Le(s2, sn.Const(4)), "sloop", "exit")

			b.Block("exit")
			return b.Finish()
		},
		Init: func() cdfg.Memory {
			mem := make(cdfg.Memory, fftEnd)
			re, im := fftInput()
			copy(mem[fftReAt:], re)
			copy(mem[fftImAt:], im)
			copy(mem[fftWreAt:], fftWre[:])
			copy(mem[fftWimAt:], fftWim[:])
			return mem
		},
		Check: func(mem cdfg.Memory) error {
			re, im := fftRef(fftInput())
			if err := checkRegion(mem, fftWrkRe, re, "re"); err != nil {
				return err
			}
			return checkRegion(mem, fftWrkIm, im, "im")
		},
	}
}
