package mapcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/verify"
)

// Disk-tier envelope format. All integers little-endian:
//
//	magic   "CGMC"                 4 bytes
//	version u32                    (currently 1)
//	keyLen  u32, key               full cache key (collision guard)
//	canLen  u32, canonical text    byte-compared against the caller's
//	imgLen  u32, image             bitstream in canonical block order
//	metaLen u32, meta JSON         Meta
//	digest  sha256                 over every preceding byte
//
// The digest catches torn/corrupted files cheaply; it is NOT the trust
// boundary. Every disk hit is additionally rebuilt against the caller's
// graph and re-verified by internal/verify before use (see Cache.lead), so
// an adversarially consistent file — valid digest, wrong bitstream — is
// still rejected and re-mapped, never trusted.
const (
	diskMagic   = "CGMC"
	diskVersion = 1
	diskSuffix  = ".mapcache"
)

func (c *Cache) diskPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.cfg.Dir, fmt.Sprintf("%x%s", sum[:16], diskSuffix))
}

func (c *Cache) storeDisk(e *entry) error {
	if err := os.MkdirAll(c.cfg.Dir, 0o755); err != nil {
		return err
	}
	metaJSON, err := json.Marshal(e.meta)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.WriteString(diskMagic)
	w32 := func(v uint32) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	wblob := func(b []byte) { w32(uint32(len(b))); buf.Write(b) }
	w32(diskVersion)
	wblob([]byte(e.key))
	wblob(e.canonText)
	wblob(e.image)
	wblob(metaJSON)
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])

	path := c.diskPath(e.key)
	tmp, err := os.CreateTemp(c.cfg.Dir, "tmp-*"+diskSuffix)
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// Atomic publish: readers either see the old entry or the complete new
	// one, never a torn write.
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// loadDisk reads and validates the disk entry for key. It returns the
// entry on success; (nil, false) when no entry exists; (nil, true) when a
// file exists but failed validation (corrupt, wrong key, stale canonical
// text) — the caller counts that as a disk rejection and recomputes.
func (c *Cache) loadDisk(key string, canon *Canon) (*entry, bool) {
	data, err := os.ReadFile(c.diskPath(key))
	if err != nil {
		return nil, false
	}
	e, err := parseEnvelope(data)
	if err != nil {
		return nil, true
	}
	if e.key != key || !bytes.Equal(e.canonText, canon.Text) {
		return nil, true
	}
	return e, true
}

func parseEnvelope(data []byte) (*entry, error) {
	if len(data) < len(diskMagic)+4+sha256.Size || string(data[:4]) != diskMagic {
		return nil, fmt.Errorf("mapcache: bad disk entry header")
	}
	body, digest := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if sum := sha256.Sum256(body); !bytes.Equal(sum[:], digest) {
		return nil, fmt.Errorf("mapcache: disk entry checksum mismatch")
	}
	r := bytes.NewReader(body[4:])
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil || version != diskVersion {
		return nil, fmt.Errorf("mapcache: unsupported disk entry version")
	}
	blob := func() ([]byte, error) {
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		if int64(n) > int64(r.Len()) {
			return nil, fmt.Errorf("mapcache: blob of %d bytes overruns entry", n)
		}
		b := make([]byte, n)
		if n > 0 {
			if _, err := io.ReadFull(r, b); err != nil {
				return nil, err
			}
		}
		return b, nil
	}
	key, err := blob()
	if err != nil {
		return nil, err
	}
	canonText, err := blob()
	if err != nil {
		return nil, err
	}
	image, err := blob()
	if err != nil {
		return nil, err
	}
	metaJSON, err := blob()
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("mapcache: %d trailing bytes in disk entry", r.Len())
	}
	e := &entry{key: string(key), canonText: canonText, image: image}
	if err := json.Unmarshal(metaJSON, &e.meta); err != nil {
		return nil, err
	}
	return e, nil
}

// verifyDiskResult is the disk-tier trust gate: the rebuilt program must
// implement the caller's graph according to the full static verifier.
func verifyDiskResult(res *Result) error {
	return verify.CheckProgram(res.Program).Err()
}

// EntryFiles lists the disk-tier entry files under dir in sorted order
// (fault-injection and inspection support).
func EntryFiles(dir string) ([]string, error) {
	return filepath.Glob(filepath.Join(dir, "*"+diskSuffix))
}

// RewriteEntry rewrites the bitstream image of the disk entry at path
// through mutate, recomputing the envelope digest so the result is a
// well-formed entry with a poisoned payload. This exists for fault
// injection: the oracle's MutateCacheEntry test uses it to prove the
// re-verify gate rejects a consistent-looking but wrong disk entry.
func RewriteEntry(path string, mutate func(image []byte) []byte) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	e, err := parseEnvelope(data)
	if err != nil {
		return err
	}
	e.image = mutate(e.image)
	metaJSON, err := json.Marshal(e.meta)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.WriteString(diskMagic)
	w32 := func(v uint32) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	wblob := func(b []byte) { w32(uint32(len(b))); buf.Write(b) }
	w32(diskVersion)
	wblob([]byte(e.key))
	wblob(e.canonText)
	wblob(e.image)
	wblob(metaJSON)
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	return os.WriteFile(path, buf.Bytes(), 0o644)
}
