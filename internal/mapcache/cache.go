package mapcache

import (
	"bytes"
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/obs"
)

// Config tunes a Cache. The zero value is usable: memory-only, default
// capacity, no instrumentation.
type Config struct {
	// Capacity bounds the in-memory entries across all shards (default 128).
	Capacity int
	// Shards is the lock-striping width (default 8).
	Shards int
	// Dir, when non-empty, enables the on-disk tier under that directory.
	// Disk entries survive processes; every disk hit is re-verified by
	// internal/verify before use and re-mapped on any mismatch.
	Dir string
	// Obs, when non-nil, receives the mapcache.* counters (hit, miss,
	// coalesced, evict, disk_hit, disk_reject, bypass, ...). A nil recorder
	// adds zero allocations.
	Obs *obs.Recorder
}

// Request identifies one mapping problem. Graph, Grid and Opt are the
// core.Map inputs; Seeds, Backends and Objective describe the portfolio
// around it (leave them zero for a plain single-seed Map) and enter the
// key verbatim — two requests collide only when every mapping-relevant
// input matches.
type Request struct {
	Graph *cdfg.Graph
	Grid  *arch.Grid
	Opt   core.Options

	// Seeds is the portfolio seed set (nil for a single-seed Map; the base
	// seed is already part of Opt).
	Seeds []int64
	// Backends names the racing backends (nil means the default heuristic).
	Backends []string
	// Objective names the portfolio objective ("" = total words).
	Objective string
}

// key renders the full content address: canonical graph hash × sanitized
// mapper options × structural grid fingerprint × portfolio description.
func (r *Request) key(c *Canon) string {
	var b strings.Builder
	b.WriteString(c.HashHex())
	b.WriteByte('|')
	b.WriteString(r.Opt.Fingerprint())
	b.WriteByte('|')
	b.WriteString(r.Grid.Fingerprint())
	b.WriteString("|seeds=")
	for i, s := range r.Seeds {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", s)
	}
	b.WriteString("|backends=")
	b.WriteString(strings.Join(r.Backends, ","))
	b.WriteString("|objective=")
	b.WriteString(r.Objective)
	return b.String()
}

// Computed is what a compute callback returns: the freshly mapped result.
// Program is optional — the cache assembles Mapping when it is nil.
type Computed struct {
	Mapping *core.Mapping
	Program *asm.Program
	// Seed/Backend describe which portfolio job won (informational; stored
	// with the entry and reported on hits).
	Seed    int64
	Backend string
}

// Meta is the mapping-derived metadata stored alongside the bitstream, so
// cache hits can rebuild reports without the Mapping object.
type Meta struct {
	Stats     core.Stats
	TileWords []int
	Ops       int
	Moves     int
	Pnops     int
	Words     int
	Seed      int64
	Backend   string
}

// Result is a cache response. Program is rebuilt for the caller's graph
// (cached images are stored in canonical block order and permuted back),
// and Image is its serialized form in the caller's block order.
type Result struct {
	Program *asm.Program
	Image   []byte
	Meta    Meta
	// Hit is true when the result came from the cache; Source is one of
	// "compute", "memory", "disk", or "bypass" (uncacheable request).
	Hit    bool
	Source string
}

type entry struct {
	key       string
	canonText []byte
	image     []byte // canonical block order
	meta      Meta
}

type flight struct {
	done chan struct{}
}

type shard struct {
	mu       sync.Mutex
	entries  map[string]*list.Element // values are *entry
	lru      list.List                // front = most recently used
	inflight map[string]*flight
}

// Cache is a two-tier content-addressed store of compiled mappings: a
// sharded in-memory LRU with singleflight deduplication of concurrent
// identical submissions, over an optional verified on-disk tier.
type Cache struct {
	cfg      Config
	perShard int
	shards   []shard
}

// New builds a Cache from cfg (see Config for the zero-value defaults).
func New(cfg Config) *Cache {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 128
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.Shards > cfg.Capacity {
		cfg.Shards = cfg.Capacity
	}
	c := &Cache{
		cfg:      cfg,
		perShard: (cfg.Capacity + cfg.Shards - 1) / cfg.Shards,
		shards:   make([]shard, cfg.Shards),
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*list.Element)
		c.shards[i].inflight = make(map[string]*flight)
	}
	return c
}

// Len returns the in-memory entry count.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

func (c *Cache) shardOf(key string) *shard {
	return &c.shards[uint64(fnvOffset.str(key))%uint64(len(c.shards))]
}

// GetOrStore returns the cached result for req, computing and storing it
// via compute on a miss. Concurrent identical requests are coalesced: one
// caller computes, the rest wait and share the stored entry. Requests the
// cache cannot key soundly (a profiled Opt, or a graph the canonicalizer
// rejects) bypass both tiers and compute directly.
func (c *Cache) GetOrStore(req Request, compute func() (Computed, error)) (Result, error) {
	rec := c.cfg.Obs
	if req.Opt.Profile != nil {
		rec.Counter("mapcache.bypass").Inc()
		return c.computeOnly(compute)
	}
	canon, err := Canonicalize(req.Graph)
	if err != nil {
		rec.Counter("mapcache.bypass").Inc()
		return c.computeOnly(compute)
	}
	key := req.key(canon)
	sh := c.shardOf(key)

	for {
		sh.mu.Lock()
		if el, ok := sh.entries[key]; ok {
			e := el.Value.(*entry)
			if bytes.Equal(e.canonText, canon.Text) {
				sh.lru.MoveToFront(el)
				sh.mu.Unlock()
				res, err := c.materialize(e, &req, canon, "memory")
				if err == nil {
					rec.Counter("mapcache.hit").Inc()
					return res, nil
				}
				// A stored entry that cannot be rebuilt for this caller is
				// poison; drop it and fall through to compute.
				c.remove(sh, key)
				rec.Counter("mapcache.reject").Inc()
			} else {
				// Same 256-bit key, different canonical text: a hash
				// collision. Correctness never rests on collision-freedom —
				// the entry simply does not match, so recompute.
				sh.mu.Unlock()
				rec.Counter("mapcache.reject").Inc()
			}
			rec.Counter("mapcache.miss").Inc()
			return c.computeAndStore(sh, key, &req, canon, compute)
		}
		if fl, ok := sh.inflight[key]; ok {
			sh.mu.Unlock()
			rec.Counter("mapcache.coalesced").Inc()
			<-fl.done
			// The leader stored the entry (or failed and left nothing);
			// loop to re-check. A leader failure leaves no entry and no
			// flight, so the next iteration takes the leader role.
			continue
		}
		fl := &flight{done: make(chan struct{})}
		sh.inflight[key] = fl
		sh.mu.Unlock()

		res, err := c.lead(sh, key, &req, canon, compute)

		sh.mu.Lock()
		delete(sh.inflight, key)
		sh.mu.Unlock()
		close(fl.done)
		return res, err
	}
}

// lead runs the miss path as the singleflight leader: disk tier first,
// then compute-and-store.
func (c *Cache) lead(sh *shard, key string, req *Request, canon *Canon, compute func() (Computed, error)) (Result, error) {
	rec := c.cfg.Obs
	if c.cfg.Dir != "" {
		if e, rejected := c.loadDisk(key, canon); e != nil {
			// Trust gate: a disk entry is only served after the rebuilt
			// program passes the full static verifier against the caller's
			// graph. A poisoned-but-checksummed file fails here and is
			// re-mapped, never trusted.
			if res, err := c.materialize(e, req, canon, "disk"); err == nil && verifyDiskResult(&res) == nil {
				c.insert(sh, e)
				rec.Counter("mapcache.disk_hit").Inc()
				return res, nil
			}
			rec.Counter("mapcache.disk_reject").Inc()
		} else if rejected {
			rec.Counter("mapcache.disk_reject").Inc()
		}
	}
	rec.Counter("mapcache.miss").Inc()
	return c.computeAndStore(sh, key, req, canon, compute)
}

// computeOnly runs compute without touching either tier (bypass path).
func (c *Cache) computeOnly(compute func() (Computed, error)) (Result, error) {
	comp, err := compute()
	if err != nil {
		return Result{}, err
	}
	prog, meta, img, err := finishComputed(&comp)
	if err != nil {
		return Result{}, err
	}
	return Result{Program: prog, Image: img, Meta: meta, Source: "bypass"}, nil
}

func (c *Cache) computeAndStore(sh *shard, key string, req *Request, canon *Canon, compute func() (Computed, error)) (Result, error) {
	comp, err := compute()
	if err != nil {
		return Result{}, err
	}
	prog, meta, img, err := finishComputed(&comp)
	if err != nil {
		return Result{}, err
	}
	canonImg := img
	if !isIdentity(canon.BlockPerm) {
		if canonImg, err = permuteImage(img, canon.BlockPerm); err != nil {
			return Result{}, fmt.Errorf("mapcache: canonicalize image: %w", err)
		}
	}
	e := &entry{key: key, canonText: canon.Text, image: canonImg, meta: meta}
	c.insert(sh, e)
	c.cfg.Obs.Counter("mapcache.store").Inc()
	if c.cfg.Dir != "" {
		if err := c.storeDisk(e); err != nil {
			c.cfg.Obs.Counter("mapcache.disk_write_err").Inc()
		} else {
			c.cfg.Obs.Counter("mapcache.disk_store").Inc()
		}
	}
	return Result{Program: prog, Image: img, Meta: meta, Source: "compute"}, nil
}

// finishComputed normalizes a compute callback's output: assemble when the
// caller did not, serialize the image, derive the stored metadata.
func finishComputed(comp *Computed) (*asm.Program, Meta, []byte, error) {
	m := comp.Mapping
	if m == nil {
		return nil, Meta{}, nil, fmt.Errorf("mapcache: compute returned no mapping")
	}
	prog := comp.Program
	if prog == nil {
		var err error
		if prog, err = asm.Assemble(m); err != nil {
			return nil, Meta{}, nil, err
		}
	}
	img, err := asm.SaveImage(prog)
	if err != nil {
		return nil, Meta{}, nil, err
	}
	meta := Meta{
		Stats:     m.Stats,
		TileWords: m.TileWords(),
		Ops:       m.TotalOps(),
		Moves:     m.TotalMoves(),
		Pnops:     m.TotalPnops(),
		Words:     m.TotalWords(),
		Seed:      comp.Seed,
		Backend:   comp.Backend,
	}
	return prog, meta, img, nil
}

// materialize rebuilds a Result for the caller's graph from a stored
// entry: permute the canonical-order image into the caller's block order,
// decode it, and rebuild the executable program against the caller's
// graph. Memory-tier entries were stored by this process under a
// byte-compared canonical text, so no re-verification runs here; the disk
// path layers verify.CheckProgram on top (see loadDisk/lead).
func (c *Cache) materialize(e *entry, req *Request, canon *Canon, source string) (Result, error) {
	imgBytes := e.image
	permuted := !isIdentity(canon.BlockPerm)
	if permuted {
		inv := make([]int, len(canon.BlockPerm))
		for orig, ci := range canon.BlockPerm {
			inv[ci] = orig
		}
		var err error
		if imgBytes, err = permuteImage(e.image, inv); err != nil {
			return Result{}, err
		}
	} else {
		imgBytes = append([]byte(nil), e.image...)
	}
	img, err := asm.LoadImage(imgBytes)
	if err != nil {
		return Result{}, err
	}
	prog, err := asm.ProgramFromImage(img, req.Graph, req.Grid)
	if err != nil {
		return Result{}, err
	}
	if permuted {
		// Block reordering changed each tile's constant first-use order;
		// re-derive the CRFs and re-encode so the program satisfies the
		// assembler's CRF normal form (decoded instructions carry constant
		// values, so this is an encoding-only rewrite). The serialized image
		// is rebuilt to match.
		if err := asm.NormalizeCRF(prog); err != nil {
			return Result{}, err
		}
		if imgBytes, err = asm.SaveImage(prog); err != nil {
			return Result{}, err
		}
	}
	return Result{Program: prog, Image: imgBytes, Meta: e.meta, Hit: true, Source: source}, nil
}

// insert adds (or refreshes) an entry and evicts past capacity.
func (c *Cache) insert(sh *shard, e *entry) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.entries[e.key]; ok {
		el.Value = e
		sh.lru.MoveToFront(el)
		return
	}
	sh.entries[e.key] = sh.lru.PushFront(e)
	for len(sh.entries) > c.perShard {
		back := sh.lru.Back()
		if back == nil {
			break
		}
		old := back.Value.(*entry)
		sh.lru.Remove(back)
		delete(sh.entries, old.key)
		c.cfg.Obs.Counter("mapcache.evict").Inc()
	}
}

// remove drops a key from the memory tier (poisoned-entry path).
func (c *Cache) remove(sh *shard, key string) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.entries[key]; ok {
		sh.lru.Remove(el)
		delete(sh.entries, key)
	}
}

// Keys returns the sorted in-memory keys (test support).
func (c *Cache) Keys() []string {
	var keys []string
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k := range s.entries {
			keys = append(keys, k)
		}
		s.mu.Unlock()
	}
	sort.Strings(keys)
	return keys
}
