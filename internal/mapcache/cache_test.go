package mapcache_test

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/arch"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/mapcache"
	"repro/internal/obs"
	"repro/internal/verify"
)

func kernelGraph(t *testing.T, name string) *cdfg.Graph {
	t.Helper()
	for _, k := range kernels.All() {
		if k.Name == name {
			return k.Build()
		}
	}
	t.Fatalf("no kernel %q", name)
	return nil
}

func mapCompute(t *testing.T, g *cdfg.Graph, grid *arch.Grid, opt core.Options, calls *atomic.Int64) func() (mapcache.Computed, error) {
	t.Helper()
	return func() (mapcache.Computed, error) {
		if calls != nil {
			calls.Add(1)
		}
		m, err := core.Map(g, grid, opt)
		if err != nil {
			return mapcache.Computed{}, err
		}
		return mapcache.Computed{Mapping: m, Seed: opt.Seed, Backend: "heuristic"}, nil
	}
}

// TestCacheColdWarm: the second identical request is a memory hit with a
// byte-identical image and the same metadata, and the compute callback runs
// exactly once.
func TestCacheColdWarm(t *testing.T) {
	grid := arch.MustGrid(arch.HOM32)
	g := kernelGraph(t, "FIR")
	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	c := mapcache.New(mapcache.Config{Obs: rec})
	opt := core.DefaultOptions(core.FlowCAB)
	var calls atomic.Int64

	req := mapcache.Request{Graph: g, Grid: grid, Opt: opt}
	cold, err := c.GetOrStore(req, mapCompute(t, g, grid, opt, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Hit || cold.Source != "compute" {
		t.Fatalf("cold request reported hit=%v source=%q", cold.Hit, cold.Source)
	}
	warm, err := c.GetOrStore(req, mapCompute(t, g, grid, opt, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Hit || warm.Source != "memory" {
		t.Fatalf("warm request reported hit=%v source=%q", warm.Hit, warm.Source)
	}
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", calls.Load())
	}
	if !bytes.Equal(cold.Image, warm.Image) {
		t.Fatal("warm image differs from cold image")
	}
	if cold.Meta.Words != warm.Meta.Words || cold.Meta.Words == 0 {
		t.Fatalf("meta mismatch: cold %d words, warm %d", cold.Meta.Words, warm.Meta.Words)
	}
	if r := verify.CheckProgram(warm.Program); r.Err() != nil {
		t.Fatalf("warm program fails verification: %v", r.Err())
	}
	if got := rec.Counter("mapcache.hit").Value(); got != 1 {
		t.Fatalf("mapcache.hit = %d, want 1", got)
	}
	if got := rec.Counter("mapcache.miss").Value(); got != 1 {
		t.Fatalf("mapcache.miss = %d, want 1", got)
	}
}

// TestCacheIsomorphicHit: a relabeled isomorphic graph hits the entry
// stored for the original, and the returned program — rebuilt through the
// block-permutation shuffle — verifies against the relabeled graph.
func TestCacheIsomorphicHit(t *testing.T) {
	grid := arch.MustGrid(arch.HOM32)
	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	c := mapcache.New(mapcache.Config{Obs: rec})
	opt := core.DefaultOptions(core.FlowCAB)

	// A representative subset: full kernels with branches and memory traffic
	// plus generated graphs with larger block counts (mapping every kernel
	// under FlowCAB takes minutes; invariance of the hash itself is covered
	// exhaustively by TestCanonicalHashInvariance).
	all := testGraphs(t)
	subset := map[string]*cdfg.Graph{
		"FIR": all["FIR"], "FFT": all["FFT"], "DCFilter": all["DCFilter"],
		"gen-1": all["gen-1"], "gen-4": all["gen-4"], "gen-6": all["gen-6"],
	}
	for name, g := range subset {
		g := g
		t.Run(name, func(t *testing.T) {
			var calls atomic.Int64
			req := mapcache.Request{Graph: g, Grid: grid, Opt: opt}
			cold, err := c.GetOrStore(req, mapCompute(t, g, grid, opt, &calls))
			if err != nil {
				t.Skipf("kernel does not map on this grid: %v", err)
			}
			pg := permuteGraph(t, g, rand.New(rand.NewSource(7)))
			preq := mapcache.Request{Graph: pg, Grid: grid, Opt: opt}
			warm, err := c.GetOrStore(preq, mapCompute(t, pg, grid, opt, &calls))
			if err != nil {
				t.Fatal(err)
			}
			if !warm.Hit {
				t.Fatal("isomorphic relabeling missed the cache")
			}
			if calls.Load() != 1 {
				t.Fatalf("compute ran %d times, want 1", calls.Load())
			}
			// The materialized program must be exactly as legal as the one
			// the mapper produced (some generated graphs exceed CM capacity
			// under default options; the cache must not make that worse).
			if verify.CheckProgram(cold.Program).Err() == nil {
				if r := verify.CheckProgram(warm.Program); r.Err() != nil {
					t.Fatalf("materialized program fails verification against the relabeled graph: %v", r.Err())
				}
			}
			if warm.Meta.Words != cold.Meta.Words {
				t.Fatalf("hit reports %d words, original %d", warm.Meta.Words, cold.Meta.Words)
			}
		})
	}
}

// TestCacheKeySeparation: changing any key ingredient — options, seeds,
// backends, objective — misses instead of returning the old entry.
func TestCacheKeySeparation(t *testing.T) {
	grid := arch.MustGrid(arch.HOM32)
	g := kernelGraph(t, "FIR")
	c := mapcache.New(mapcache.Config{})
	var calls atomic.Int64

	base := mapcache.Request{Graph: g, Grid: grid, Opt: core.DefaultOptions(core.FlowCAB)}
	seeded := core.DefaultOptions(core.FlowCAB)
	seeded.Seed = 3
	variants := []mapcache.Request{
		base,
		{Graph: g, Grid: grid, Opt: seeded},
		{Graph: g, Grid: grid, Opt: base.Opt, Seeds: []int64{0, 1}},
		{Graph: g, Grid: grid, Opt: base.Opt, Backends: []string{"exact"}},
		{Graph: g, Grid: grid, Opt: base.Opt, Objective: "power"},
	}
	for i, req := range variants {
		if _, err := c.GetOrStore(req, mapCompute(t, g, grid, req.Opt, &calls)); err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
	}
	if calls.Load() != int64(len(variants)) {
		t.Fatalf("compute ran %d times for %d distinct keys", calls.Load(), len(variants))
	}
	if c.Len() != len(variants) {
		t.Fatalf("cache holds %d entries, want %d", c.Len(), len(variants))
	}
}

// TestCacheProfiledBypass: a request carrying a runtime profile cannot be
// keyed soundly and must bypass the cache entirely.
func TestCacheProfiledBypass(t *testing.T) {
	grid := arch.MustGrid(arch.HOM32)
	g := kernelGraph(t, "FIR")
	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	c := mapcache.New(mapcache.Config{Obs: rec})
	opt := core.DefaultOptions(core.FlowCAB)
	opt.Profile = map[cdfg.BBID]int{0: 1}
	var calls atomic.Int64
	req := mapcache.Request{Graph: g, Grid: grid, Opt: opt}
	for i := 0; i < 2; i++ {
		res, err := c.GetOrStore(req, mapCompute(t, g, grid, core.Options{}, &calls))
		if err != nil {
			t.Fatal(err)
		}
		if res.Hit || res.Source != "bypass" {
			t.Fatalf("call %d: hit=%v source=%q, want bypass", i, res.Hit, res.Source)
		}
	}
	if calls.Load() != 2 {
		t.Fatalf("compute ran %d times, want 2 (no caching)", calls.Load())
	}
	if got := rec.Counter("mapcache.bypass").Value(); got != 2 {
		t.Fatalf("mapcache.bypass = %d, want 2", got)
	}
	if c.Len() != 0 {
		t.Fatalf("bypass stored %d entries", c.Len())
	}
}

// TestCacheLRUEviction: capacity is enforced per shard with the oldest
// entry evicted first.
func TestCacheLRUEviction(t *testing.T) {
	grid := arch.MustGrid(arch.HOM32)
	g := kernelGraph(t, "FIR")
	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	// One shard, two slots: the third distinct key must evict the first.
	c := mapcache.New(mapcache.Config{Capacity: 2, Shards: 1, Obs: rec})
	var calls atomic.Int64
	var reqs []mapcache.Request
	for seed := int64(1); seed <= 3; seed++ {
		o := core.DefaultOptions(core.FlowCAB)
		o.Seed = seed
		reqs = append(reqs, mapcache.Request{Graph: g, Grid: grid, Opt: o})
	}
	for _, req := range reqs {
		if _, err := c.GetOrStore(req, mapCompute(t, g, grid, req.Opt, &calls)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries after eviction, want 2", c.Len())
	}
	if got := rec.Counter("mapcache.evict").Value(); got != 1 {
		t.Fatalf("mapcache.evict = %d, want 1", got)
	}
	// Seed 1 was evicted: requesting it again recomputes.
	before := calls.Load()
	if _, err := c.GetOrStore(reqs[0], mapCompute(t, g, grid, reqs[0].Opt, &calls)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != before+1 {
		t.Fatal("evicted entry was served from cache")
	}
}

// TestCacheSingleflight: concurrent identical requests coalesce onto one
// compute; every caller gets a byte-identical image.
func TestCacheSingleflight(t *testing.T) {
	grid := arch.MustGrid(arch.HOM32)
	g := kernelGraph(t, "FFT")
	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	c := mapcache.New(mapcache.Config{Obs: rec})
	opt := core.DefaultOptions(core.FlowCAB)
	var calls atomic.Int64
	req := mapcache.Request{Graph: g, Grid: grid, Opt: opt}

	const workers = 8
	results := make([]mapcache.Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.GetOrStore(req, mapCompute(t, g, grid, opt, &calls))
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i].Image, results[0].Image) {
			t.Fatalf("worker %d image differs", i)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times under concurrency, want 1", calls.Load())
	}
}

// TestCacheDiskRoundTrip: a fresh Cache over the same directory serves the
// entry from disk — re-verified — with a byte-identical image.
func TestCacheDiskRoundTrip(t *testing.T) {
	grid := arch.MustGrid(arch.HOM32)
	g := kernelGraph(t, "FIR")
	dir := t.TempDir()
	opt := core.DefaultOptions(core.FlowCAB)
	var calls atomic.Int64

	c1 := mapcache.New(mapcache.Config{Dir: dir})
	req := mapcache.Request{Graph: g, Grid: grid, Opt: opt}
	cold, err := c1.GetOrStore(req, mapCompute(t, g, grid, opt, &calls))
	if err != nil {
		t.Fatal(err)
	}
	files, err := mapcache.EntryFiles(dir)
	if err != nil || len(files) != 1 {
		t.Fatalf("EntryFiles = %v, %v; want exactly one entry", files, err)
	}

	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	c2 := mapcache.New(mapcache.Config{Dir: dir, Obs: rec})
	warm, err := c2.GetOrStore(req, mapCompute(t, g, grid, opt, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Hit || warm.Source != "disk" {
		t.Fatalf("second process reported hit=%v source=%q, want disk hit", warm.Hit, warm.Source)
	}
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times across processes, want 1", calls.Load())
	}
	if !bytes.Equal(cold.Image, warm.Image) {
		t.Fatal("disk round-trip changed the image")
	}
	if got := rec.Counter("mapcache.disk_hit").Value(); got != 1 {
		t.Fatalf("mapcache.disk_hit = %d, want 1", got)
	}
	// The disk hit is promoted to memory: a third request stays in-process.
	third, err := c2.GetOrStore(req, mapCompute(t, g, grid, opt, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if third.Source != "memory" {
		t.Fatalf("post-promotion source = %q, want memory", third.Source)
	}
}

// TestCacheDiskCorruption: flipping raw bytes on disk breaks the envelope
// checksum; the entry is rejected and recomputed, never served.
func TestCacheDiskCorruption(t *testing.T) {
	grid := arch.MustGrid(arch.HOM32)
	g := kernelGraph(t, "FIR")
	dir := t.TempDir()
	opt := core.DefaultOptions(core.FlowCAB)
	var calls atomic.Int64

	c1 := mapcache.New(mapcache.Config{Dir: dir})
	req := mapcache.Request{Graph: g, Grid: grid, Opt: opt}
	if _, err := c1.GetOrStore(req, mapCompute(t, g, grid, opt, &calls)); err != nil {
		t.Fatal(err)
	}
	files, _ := mapcache.EntryFiles(dir)
	if len(files) != 1 {
		t.Fatalf("want one entry file, got %d", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	c2 := mapcache.New(mapcache.Config{Dir: dir, Obs: rec})
	res, err := c2.GetOrStore(req, mapCompute(t, g, grid, opt, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit {
		t.Fatal("corrupted disk entry was served as a hit")
	}
	if got := rec.Counter("mapcache.disk_reject").Value(); got != 1 {
		t.Fatalf("mapcache.disk_reject = %d, want 1", got)
	}
	if calls.Load() != 2 {
		t.Fatalf("compute ran %d times, want 2 (recompute after corruption)", calls.Load())
	}
}

// TestCacheDiskPoisonVerifyGate: RewriteEntry produces a checksummed but
// wrong entry — the digest passes, so only the verify gate stands between
// the poison and the caller. It must fire.
func TestCacheDiskPoisonVerifyGate(t *testing.T) {
	grid := arch.MustGrid(arch.HOM32)
	g := kernelGraph(t, "DCFilter")
	dir := t.TempDir()
	opt := core.DefaultOptions(core.FlowCAB)
	var calls atomic.Int64

	c1 := mapcache.New(mapcache.Config{Dir: dir})
	req := mapcache.Request{Graph: g, Grid: grid, Opt: opt}
	if _, err := c1.GetOrStore(req, mapCompute(t, g, grid, opt, &calls)); err != nil {
		t.Fatal(err)
	}
	files, _ := mapcache.EntryFiles(dir)
	if len(files) != 1 {
		t.Fatalf("want one entry file, got %d", len(files))
	}
	// Zero every instruction word: the image still parses (header, lengths
	// and checksum all valid) but the program no longer implements g.
	if err := mapcache.RewriteEntry(files[0], func(image []byte) []byte {
		out := append([]byte(nil), image...)
		for i := len(out) - 8; i >= 16; i -= 8 {
			for j := 0; j < 8; j++ {
				out[i+j] = 0
			}
		}
		return out
	}); err != nil {
		t.Fatal(err)
	}

	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	c2 := mapcache.New(mapcache.Config{Dir: dir, Obs: rec})
	res, err := c2.GetOrStore(req, mapCompute(t, g, grid, opt, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit {
		t.Fatal("poisoned disk entry passed the verify gate")
	}
	if got := rec.Counter("mapcache.disk_reject").Value(); got != 1 {
		t.Fatalf("mapcache.disk_reject = %d, want 1", got)
	}
	if r := verify.CheckProgram(res.Program); r.Err() != nil {
		t.Fatalf("recomputed program fails verification: %v", r.Err())
	}
}

// TestCacheDiskWrongKey: a valid entry file renamed onto another key's path
// fails the embedded-key check and is rejected.
func TestCacheDiskWrongKey(t *testing.T) {
	grid := arch.MustGrid(arch.HOM32)
	gA := kernelGraph(t, "FIR")
	gB := kernelGraph(t, "FFT")
	dir := t.TempDir()
	opt := core.DefaultOptions(core.FlowCAB)
	var calls atomic.Int64

	c1 := mapcache.New(mapcache.Config{Dir: dir})
	if _, err := c1.GetOrStore(mapcache.Request{Graph: gA, Grid: grid, Opt: opt}, mapCompute(t, gA, grid, opt, &calls)); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.GetOrStore(mapcache.Request{Graph: gB, Grid: grid, Opt: opt}, mapCompute(t, gB, grid, opt, &calls)); err != nil {
		t.Fatal(err)
	}
	files, _ := mapcache.EntryFiles(dir)
	if len(files) != 2 {
		t.Fatalf("want two entry files, got %d", len(files))
	}
	// Swap the two files: each now sits at the other's content address.
	tmp := filepath.Join(dir, "swap")
	if err := os.Rename(files[0], tmp); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(files[1], files[0]); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, files[1]); err != nil {
		t.Fatal(err)
	}

	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	c2 := mapcache.New(mapcache.Config{Dir: dir, Obs: rec})
	res, err := c2.GetOrStore(mapcache.Request{Graph: gA, Grid: grid, Opt: opt}, mapCompute(t, gA, grid, opt, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit {
		t.Fatal("entry with mismatched embedded key was served")
	}
	if got := rec.Counter("mapcache.disk_reject").Value(); got != 1 {
		t.Fatalf("mapcache.disk_reject = %d, want 1", got)
	}
}
