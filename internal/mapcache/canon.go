// Package mapcache implements a content-addressed cache for compiled CGRA
// mappings: an isomorphism-invariant canonical form + hash for cdfg graphs
// (canon.go), a two-tier store — in-memory sharded LRU with singleflight
// deduplication plus an optional verified on-disk tier (cache.go, disk.go)
// — keyed by canonical graph hash × mapper options × grid structure ×
// portfolio description.
//
// Determinism rules: nothing in the key or the canonical form may consult
// wall-clock time, map iteration order, or process-local identities — the
// detrand/maprange analyzers in internal/lint enforce this package-wide.
package mapcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/cdfg"
)

// Canon is the canonical form of a graph: a deterministic relabeling that
// is invariant under node renumbering, commutative-operand order, block
// reordering and graph/block renaming, so structurally identical graphs
// produce identical Text (and therefore identical Sum).
type Canon struct {
	// Text is the canonical graph rendered through cdfg.MarshalText.
	Text []byte
	// Sum is sha256(Text) — the cache's content address.
	Sum [sha256.Size]byte
	// BlockPerm maps each original BBID to its canonical block index.
	// Cached bitstream images are stored in canonical block order and
	// permuted back through this on every hit.
	BlockPerm []int
}

// HashHex returns the content address as a hex string.
func (c *Canon) HashHex() string { return fmt.Sprintf("%x", c.Sum) }

// fnv1a is a deterministic accumulator-style hash (the same construction
// the exact backend's nogood cache uses): value semantics, no allocation.
type fnv1a uint64

const fnvOffset fnv1a = 14695981039346656037
const fnvPrime fnv1a = 1099511628211

func (h fnv1a) u64(v uint64) fnv1a {
	for i := 0; i < 8; i++ {
		h ^= fnv1a(v & 0xff)
		h *= fnvPrime
		v >>= 8
	}
	return h
}

func (h fnv1a) i(v int) fnv1a { return h.u64(uint64(int64(v))) }

func (h fnv1a) str(s string) fnv1a {
	h = h.i(len(s))
	for i := 0; i < len(s); i++ {
		h ^= fnv1a(s[i])
		h *= fnvPrime
	}
	return h
}

// Canonicalize computes the canonical form of g. The graph must be
// well-formed in the cdfg.Verify sense; malformed inputs produce an error,
// never a panic.
//
// The canonical form keeps exactly the information the mapper and the
// interpreter consume — opcodes, constant values, symbol names, dataflow
// edges (with commutative operands unordered), the relative order of
// memory operations (stores are barriers; loads between two stores
// commute), liveout bindings, branches and successor edges — and forgets
// everything else: node numbering, block numbering and names, the graph
// name, and the textual order of independent nodes.
func Canonicalize(g *cdfg.Graph) (*Canon, error) {
	if g == nil || len(g.Blocks) == 0 {
		return nil, fmt.Errorf("mapcache: cannot canonicalize an empty graph")
	}
	if g.Entry < 0 || int(g.Entry) >= len(g.Blocks) {
		return nil, fmt.Errorf("mapcache: entry block %d out of range", g.Entry)
	}
	nodeOrder := make([][]cdfg.NodeID, len(g.Blocks))
	blockSig := make([]uint64, len(g.Blocks))
	for i, b := range g.Blocks {
		ord, err := canonNodeOrder(b)
		if err != nil {
			return nil, fmt.Errorf("mapcache: block %d: %w", i, err)
		}
		nodeOrder[i] = ord
		blockSig[i] = blockContentSig(b, ord)
	}

	// Canonical block order: DFS preorder from the entry following Succs
	// in their semantic (taken, not-taken) order — a pure function of the
	// control-flow structure, independent of block numbering. Unreachable
	// blocks follow, rooted smallest content signature first (their
	// relative order falls back to input order only when two unreachable
	// roots have identical content — such twins render identically anyway).
	visited := make([]bool, len(g.Blocks))
	order := make([]cdfg.BBID, 0, len(g.Blocks))
	var dfs func(bb cdfg.BBID)
	dfs = func(bb cdfg.BBID) {
		if bb < 0 || int(bb) >= len(g.Blocks) || visited[bb] {
			return
		}
		visited[bb] = true
		order = append(order, bb)
		for _, s := range g.Blocks[bb].Succs {
			dfs(s)
		}
	}
	dfs(g.Entry)
	for {
		best := -1
		for i := range g.Blocks {
			if visited[i] {
				continue
			}
			if best < 0 || blockSig[i] < blockSig[best] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		dfs(cdfg.BBID(best))
	}

	perm := make([]int, len(g.Blocks))
	for ci, bb := range order {
		perm[bb] = ci
	}

	ng := &cdfg.Graph{Blocks: make([]*cdfg.BasicBlock, len(order))}
	for ci, obb := range order {
		ob := g.Blocks[obb]
		ord := nodeOrder[obb]
		newID := make([]cdfg.NodeID, len(ob.Nodes))
		for ni, oid := range ord {
			newID[oid] = cdfg.NodeID(ni)
		}
		nb := &cdfg.BasicBlock{
			ID:     cdfg.BBID(ci),
			Name:   fmt.Sprintf("b%d", ci),
			Branch: cdfg.None,
		}
		for ni, oid := range ord {
			on := ob.Nodes[oid]
			nn := &cdfg.Node{ID: cdfg.NodeID(ni), Op: on.Op, Val: on.Val, Sym: on.Sym}
			if len(on.Args) > 0 {
				nn.Args = make([]cdfg.NodeID, len(on.Args))
				for ai, a := range on.Args {
					nn.Args[ai] = newID[a]
				}
				if on.Op.IsCommutative() && len(nn.Args) == 2 && nn.Args[0] > nn.Args[1] {
					nn.Args[0], nn.Args[1] = nn.Args[1], nn.Args[0]
				}
			}
			nb.Nodes = append(nb.Nodes, nn)
		}
		if len(ob.LiveOut) > 0 {
			nb.LiveOut = make(map[string]cdfg.NodeID, len(ob.LiveOut))
			for _, s := range ob.LiveOutSyms() {
				nb.LiveOut[s] = newID[ob.LiveOut[s]]
			}
		}
		if ob.Branch != cdfg.None {
			nb.Branch = newID[ob.Branch]
		}
		if len(ob.Succs) > 0 {
			nb.Succs = make([]cdfg.BBID, len(ob.Succs))
			for si, s := range ob.Succs {
				nb.Succs[si] = cdfg.BBID(perm[s])
			}
		}
		ng.Blocks[ci] = nb
	}
	text, err := ng.MarshalText()
	if err != nil {
		return nil, fmt.Errorf("mapcache: render canonical form: %w", err)
	}
	return &Canon{Text: text, Sum: sha256.Sum256(text), BlockPerm: perm}, nil
}

// canonNodeOrder computes the canonical emission order of one block's
// nodes (canonical position → original NodeID) by Weisfeiler-Lehman-style
// signature refinement followed by a greedy smallest-signature topological
// emission.
//
// The dependency relation is dataflow args plus the implicit memory
// ordering the interpreter's in-order evaluation implies: a load depends
// on the previous store, a store depends on the previous store and every
// load since it. Loads between two stores carry no mutual edge — they
// commute, and the canonical order is free to reorder them.
//
// Signatures are refined in both directions (operands and consumers, with
// operand positions for non-commutative ops) until the partition of nodes
// into equal-signature classes stops growing. Refinement-equal nodes are
// NOT necessarily interchangeable (Weisfeiler-Lehman equivalence is weaker
// than automorphism), so ties are never broken by original index: the
// emission branches on every tied candidate set and keeps the branch
// whose completed rendering is smallest (see emitSearch). The search is
// budgeted; a block symmetric enough to exhaust the budget returns an
// error and the cache bypasses the request instead of risking an
// unstable hash.
func canonNodeOrder(b *cdfg.BasicBlock) ([]cdfg.NodeID, error) {
	n := len(b.Nodes)
	if n == 0 {
		return nil, nil
	}
	deps := make([][]edge, n)
	cons := make([][]edge, n)
	addDep := func(to, from, port int) {
		deps[to] = append(deps[to], edge{from, port})
		cons[from] = append(cons[from], edge{to, port})
	}
	for i, nd := range b.Nodes {
		if nd == nil {
			return nil, fmt.Errorf("nil node %d", i)
		}
		for ai, a := range nd.Args {
			if a < 0 || int(a) >= n {
				return nil, fmt.Errorf("node %d arg %d out of range", i, a)
			}
			port := ai
			if nd.Op.IsCommutative() {
				port = -1
			}
			addDep(i, int(a), port)
		}
	}
	lastStore := -1
	var loads []int
	for i, nd := range b.Nodes {
		switch nd.Op {
		case cdfg.OpLoad:
			if lastStore >= 0 {
				addDep(i, lastStore, -2)
			}
			loads = append(loads, i)
		case cdfg.OpStore:
			if lastStore >= 0 {
				addDep(i, lastStore, -2)
			}
			for _, l := range loads {
				addDep(i, l, -2)
			}
			lastStore = i
			loads = loads[:0]
		}
	}

	// Role anchors: liveout bindings (by symbol name) and the branch node
	// are observable block outputs; they seed the refinement with the
	// downstream context the pure dataflow shape does not carry.
	role := make([]fnv1a, n)
	for i := range role {
		role[i] = fnvOffset
	}
	for _, s := range b.LiveOutSyms() {
		id := b.LiveOut[s]
		if id < 0 || int(id) >= n {
			return nil, fmt.Errorf("liveout %q node %d out of range", s, id)
		}
		role[id] = role[id].str("lo").str(s)
	}
	if b.Branch != cdfg.None {
		if b.Branch < 0 || int(b.Branch) >= n {
			return nil, fmt.Errorf("branch node %d out of range", b.Branch)
		}
		role[b.Branch] = role[b.Branch].str("br")
	}

	sig := make([]uint64, n)
	for i, nd := range b.Nodes {
		h := fnvOffset.i(int(nd.Op))
		if nd.Op == cdfg.OpConst {
			h = h.i(int(nd.Val))
		}
		if nd.Op == cdfg.OpSym {
			h = h.str(nd.Sym)
		}
		sig[i] = uint64(h.u64(uint64(role[i])))
	}

	tmp := make([]uint64, n)
	var buf []uint64
	distinct := countDistinct(sig)
	for round := 0; round < n; round++ {
		for i, nd := range b.Nodes {
			h := fnvOffset.u64(sig[i])
			if nd.Op.IsCommutative() && len(nd.Args) == 2 {
				a0, a1 := sig[nd.Args[0]], sig[nd.Args[1]]
				if a0 > a1 {
					a0, a1 = a1, a0
				}
				h = h.u64(a0).u64(a1)
			} else {
				for _, a := range nd.Args {
					h = h.u64(sig[a])
				}
			}
			buf = buf[:0]
			for _, e := range deps[i] {
				if e.port == -2 {
					buf = append(buf, sig[e.node])
				}
			}
			h = foldSorted(h.str("m"), buf)
			buf = buf[:0]
			for _, e := range cons[i] {
				buf = append(buf, uint64(fnvOffset.u64(sig[e.node]).i(e.port)))
			}
			h = foldSorted(h.str("c"), buf)
			tmp[i] = uint64(h)
		}
		copy(sig, tmp)
		d := countDistinct(sig)
		if d == distinct {
			break
		}
		distinct = d
	}

	// Emission: among ready nodes (all dataflow and memory predecessors
	// emitted), pick the smallest signature; ties branch (emitSearch).
	indeg := make([]int, n)
	seen := make(map[int]bool)
	for i := range deps {
		clear(seen)
		for _, e := range deps[i] {
			if !seen[e.node] {
				seen[e.node] = true
				indeg[i]++
			}
		}
	}
	ready := make([]int, 0, n)
	for i := range indeg {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	es := &emitSearch{b: b, cons: cons, sig: sig, budget: emitBudget}
	order, _, err := es.run(indeg, ready, make([]bool, n), make([]cdfg.NodeID, 0, n))
	return order, err
}

// edge is one dependency arc between two nodes of a block.
type edge struct {
	node int
	port int // arg position; -1 commutative operand, -2 memory order
}

// emitBudget bounds the number of tie branches one block's canonical
// emission may explore. Real kernels never branch (refinement fully
// discriminates their nodes); the budget exists so adversarially
// symmetric graphs degrade into an explicit error — which the cache
// turns into a bypass — instead of unbounded search.
const emitBudget = 4096

// emitSearch finds the canonical emission order. At every step the ready
// node with the smallest refined signature is emitted next; when several
// ready nodes share that smallest signature the refinement could not tell
// them apart, but they are not necessarily interchangeable, so each
// candidate is explored to completion and the branch whose finished
// rendering compares smallest wins. Signatures are relabeling-invariant,
// hence so are the candidate sets and the winning rendering — the
// original node numbering never influences the result.
type emitSearch struct {
	b      *cdfg.BasicBlock
	cons   [][]edge
	sig    []uint64
	budget int
}

func (es *emitSearch) run(indeg, ready []int, emitted []bool, order []cdfg.NodeID) ([]cdfg.NodeID, []byte, error) {
	n := len(es.b.Nodes)
	cands := make([]int, 0, 4)
	for len(order) < n {
		if len(ready) == 0 {
			return nil, nil, fmt.Errorf("cyclic dependencies among %d nodes", n-len(order))
		}
		cands = cands[:0]
		for ri, i := range ready {
			switch {
			case len(cands) == 0 || es.sig[i] < es.sig[ready[cands[0]]]:
				cands = append(cands[:0], ri)
			case es.sig[i] == es.sig[ready[cands[0]]]:
				cands = append(cands, ri)
			}
		}
		if len(cands) == 1 {
			es.emit(cands[0], &ready, indeg, emitted, &order)
			continue
		}
		var bestOrder []cdfg.NodeID
		var bestRender []byte
		for _, ri := range cands {
			es.budget--
			if es.budget < 0 {
				return nil, nil, fmt.Errorf("canonical-order search budget exhausted on a %d-way signature tie", len(cands))
			}
			indeg2 := append([]int(nil), indeg...)
			ready2 := append([]int(nil), ready...)
			emitted2 := append([]bool(nil), emitted...)
			order2 := append([]cdfg.NodeID(nil), order...)
			es.emit(ri, &ready2, indeg2, emitted2, &order2)
			o, r, err := es.run(indeg2, ready2, emitted2, order2)
			if err != nil {
				return nil, nil, err
			}
			if bestRender == nil || bytes.Compare(r, bestRender) < 0 {
				bestOrder, bestRender = o, r
			}
		}
		return bestOrder, bestRender, nil
	}
	return order, es.render(order), nil
}

// emit moves ready[ri] into the order and releases its consumers.
func (es *emitSearch) emit(ri int, ready *[]int, indeg []int, emitted []bool, order *[]cdfg.NodeID) {
	node := (*ready)[ri]
	(*ready)[ri] = (*ready)[len(*ready)-1]
	*ready = (*ready)[:len(*ready)-1]
	*order = append(*order, cdfg.NodeID(node))
	emitted[node] = true
	released := map[int]bool{}
	for _, e := range es.cons[node] {
		if released[e.node] || emitted[e.node] {
			continue
		}
		released[e.node] = true
		indeg[e.node]--
		if indeg[e.node] == 0 {
			*ready = append(*ready, e.node)
		}
	}
}

// render serializes the block under a complete emission order into a
// label-free byte string — exactly the information the canonical
// MarshalText will carry for this block — so competing tie branches can
// be compared bytewise.
func (es *emitSearch) render(order []cdfg.NodeID) []byte {
	b := es.b
	pos := make([]int, len(b.Nodes))
	for ni, oid := range order {
		pos[oid] = ni
	}
	out := make([]byte, 0, 16*len(order))
	app := func(v int) { out = binary.AppendVarint(out, int64(v)) }
	for _, oid := range order {
		nd := b.Nodes[oid]
		app(int(nd.Op))
		switch nd.Op {
		case cdfg.OpConst:
			app(int(nd.Val))
		case cdfg.OpSym:
			out = append(out, nd.Sym...)
			out = append(out, 0)
		}
		if nd.Op.IsCommutative() && len(nd.Args) == 2 {
			a0, a1 := pos[nd.Args[0]], pos[nd.Args[1]]
			if a0 > a1 {
				a0, a1 = a1, a0
			}
			app(a0)
			app(a1)
		} else {
			for _, a := range nd.Args {
				app(pos[a])
			}
		}
	}
	for _, s := range b.LiveOutSyms() {
		out = append(out, s...)
		out = append(out, 0)
		app(pos[b.LiveOut[s]])
	}
	if b.Branch != cdfg.None {
		app(pos[b.Branch])
	}
	return out
}

// blockContentSig folds a block's canonical rendering — nodes in canonical
// order with canonical operand positions, liveouts, branch — into one
// value, used to order unreachable blocks deterministically. Successor
// targets are excluded (their canonical indices are not yet known when
// this runs).
func blockContentSig(b *cdfg.BasicBlock, ord []cdfg.NodeID) uint64 {
	pos := make([]int, len(b.Nodes))
	for ni, oid := range ord {
		pos[oid] = ni
	}
	h := fnvOffset.i(len(b.Nodes))
	for _, oid := range ord {
		nd := b.Nodes[oid]
		h = h.i(int(nd.Op))
		switch nd.Op {
		case cdfg.OpConst:
			h = h.i(int(nd.Val))
		case cdfg.OpSym:
			h = h.str(nd.Sym)
		}
		if nd.Op.IsCommutative() && len(nd.Args) == 2 {
			a0, a1 := pos[nd.Args[0]], pos[nd.Args[1]]
			if a0 > a1 {
				a0, a1 = a1, a0
			}
			h = h.i(a0).i(a1)
		} else {
			for _, a := range nd.Args {
				h = h.i(pos[a])
			}
		}
	}
	for _, s := range b.LiveOutSyms() {
		h = h.str(s).i(pos[b.LiveOut[s]])
	}
	if b.Branch != cdfg.None {
		h = h.str("br").i(pos[b.Branch])
	}
	h = h.i(len(b.Succs))
	return uint64(h)
}

func foldSorted(h fnv1a, vs []uint64) fnv1a {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	h = h.i(len(vs))
	for _, v := range vs {
		h = h.u64(v)
	}
	return h
}

func countDistinct(sig []uint64) int {
	set := make(map[uint64]struct{}, len(sig))
	for _, s := range sig {
		set[s] = struct{}{}
	}
	return len(set)
}
