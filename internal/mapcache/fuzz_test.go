package mapcache_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/cdfg"
	"repro/internal/kernels"
	"repro/internal/mapcache"
)

// FuzzCanonicalHash drives the canonicalizer with arbitrary marshaled
// graphs and checks the properties the mapping cache's correctness rests
// on:
//
//  1. stability — canonicalizing the same graph twice, or its
//     MarshalText round-trip, yields the same hash;
//  2. isomorphism invariance — a semantically identical relabeling
//     (block shuffle, node renumbering, commutative-operand swaps,
//     renames) hashes identically;
//  3. fixpoint — the canonical text is itself canonical: unmarshaling it
//     and canonicalizing again reproduces the same text and hash.
//
// The checked-in corpus (testdata/fuzz) seeds the search with every
// benchmark kernel and a spread of generated graphs.
func FuzzCanonicalHash(f *testing.F) {
	for _, k := range kernels.All() {
		g := k.Build()
		txt, err := g.MarshalText()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(txt, int64(1))
	}
	for seed := int64(1); seed <= 4; seed++ {
		g, _ := cdfg.Generate(rand.New(rand.NewSource(seed)), cdfg.DefaultGenConfig())
		txt, err := g.MarshalText()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(txt, seed)
	}
	f.Fuzz(func(t *testing.T, data []byte, permSeed int64) {
		g, err := cdfg.UnmarshalText(data)
		if err != nil {
			t.Skip() // not a well-formed graph
		}
		c1, err := mapcache.Canonicalize(g)
		if err != nil {
			t.Skip()
		}
		// Stability across a marshal round-trip.
		txt, err := g.MarshalText()
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		g2, err := cdfg.UnmarshalText(txt)
		if err != nil {
			t.Fatalf("round-trip unmarshal: %v", err)
		}
		c2, err := mapcache.Canonicalize(g2)
		if err != nil {
			t.Fatalf("round-trip canonicalize: %v", err)
		}
		if c1.Sum != c2.Sum {
			t.Fatalf("hash not stable across MarshalText round-trip: %x vs %x", c1.Sum, c2.Sum)
		}
		// Isomorphism invariance under a random relabeling.
		pg := permuteGraph(t, g, rand.New(rand.NewSource(permSeed)))
		c3, err := mapcache.Canonicalize(pg)
		if err != nil {
			t.Fatalf("canonicalize permuted graph: %v", err)
		}
		if c1.Sum != c3.Sum {
			t.Fatalf("hash not invariant under relabeling (seed %d): %x vs %x", permSeed, c1.Sum, c3.Sum)
		}
		// Fixpoint: the canonical form canonicalizes to itself.
		cg, err := cdfg.UnmarshalText(c1.Text)
		if err != nil {
			t.Fatalf("canonical text does not unmarshal: %v", err)
		}
		c4, err := mapcache.Canonicalize(cg)
		if err != nil {
			t.Fatalf("canonicalize canonical text: %v", err)
		}
		if !bytes.Equal(c4.Text, c1.Text) || c4.Sum != c1.Sum {
			t.Fatalf("canonical text is not a fixpoint of canonicalization")
		}
	})
}
