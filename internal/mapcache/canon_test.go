package mapcache_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cdfg"
	"repro/internal/kernels"
	"repro/internal/mapcache"
)

// permuteGraph returns an isomorphic, semantically identical relabeling of
// g: blocks are shuffled (IDs, order, names), each block's nodes are
// renumbered along a random order that respects dataflow and the
// interpreter's memory-op ordering (stores are barriers; loads between two
// stores may swap), commutative operands are randomly swapped, and the
// graph is renamed. Canonicalize must map every output of this back to the
// same hash.
func permuteGraph(t *testing.T, g *cdfg.Graph, rng *rand.Rand) *cdfg.Graph {
	t.Helper()
	ng := g.Clone()
	ng.Name = fmt.Sprintf("perm-%d", rng.Int63())

	// Random block permutation.
	bp := rng.Perm(len(ng.Blocks)) // bp[old] = new position
	blocks := make([]*cdfg.BasicBlock, len(ng.Blocks))
	for old, b := range ng.Blocks {
		b.ID = cdfg.BBID(bp[old])
		b.Name = fmt.Sprintf("blk_%d_%d", bp[old], rng.Intn(1000))
		for i, s := range b.Succs {
			b.Succs[i] = cdfg.BBID(bp[s])
		}
		blocks[bp[old]] = b
	}
	ng.Blocks = blocks
	ng.Entry = cdfg.BBID(bp[ng.Entry])

	for _, b := range ng.Blocks {
		permuteBlockNodes(b, rng)
	}
	if err := cdfg.Verify(ng); err != nil {
		t.Fatalf("permuted graph is invalid (test bug): %v", err)
	}
	return ng
}

func permuteBlockNodes(b *cdfg.BasicBlock, rng *rand.Rand) {
	n := len(b.Nodes)
	if n == 0 {
		return
	}
	// Dependencies: args plus the memory chain (load→prev store,
	// store→prev store and loads since).
	deps := make([][]int, n)
	for i, nd := range b.Nodes {
		for _, a := range nd.Args {
			deps[i] = append(deps[i], int(a))
		}
	}
	lastStore := -1
	var loads []int
	for i, nd := range b.Nodes {
		switch nd.Op {
		case cdfg.OpLoad:
			if lastStore >= 0 {
				deps[i] = append(deps[i], lastStore)
			}
			loads = append(loads, i)
		case cdfg.OpStore:
			if lastStore >= 0 {
				deps[i] = append(deps[i], lastStore)
			}
			deps[i] = append(deps[i], loads...)
			lastStore = i
			loads = loads[:0]
		}
	}
	indeg := make([]int, n)
	succs := make([][]int, n)
	for i, ds := range deps {
		seen := map[int]bool{}
		for _, d := range ds {
			if !seen[d] {
				seen[d] = true
				indeg[i]++
				succs[d] = append(succs[d], i)
			}
		}
	}
	var ready []int
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, n) // new position -> old id
	for len(ready) > 0 {
		k := rng.Intn(len(ready))
		picked := ready[k]
		ready[k] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, picked)
		for _, s := range succs[picked] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	newID := make([]cdfg.NodeID, n)
	for pos, old := range order {
		newID[old] = cdfg.NodeID(pos)
	}
	nodes := make([]*cdfg.Node, n)
	for pos, old := range order {
		nd := b.Nodes[old]
		nd.ID = cdfg.NodeID(pos)
		for ai, a := range nd.Args {
			nd.Args[ai] = newID[a]
		}
		if nd.Op.IsCommutative() && len(nd.Args) == 2 && rng.Intn(2) == 1 {
			nd.Args[0], nd.Args[1] = nd.Args[1], nd.Args[0]
		}
		nodes[pos] = nd
	}
	b.Nodes = nodes
	for s, id := range b.LiveOut {
		b.LiveOut[s] = newID[id]
	}
	if b.Branch != cdfg.None {
		b.Branch = newID[b.Branch]
	}
}

func testGraphs(t *testing.T) map[string]*cdfg.Graph {
	t.Helper()
	gs := map[string]*cdfg.Graph{}
	for _, k := range kernels.All() {
		gs[k.Name] = k.Build()
	}
	cfg := cdfg.DefaultGenConfig()
	for seed := int64(1); seed <= 8; seed++ {
		g, _ := cdfg.Generate(rand.New(rand.NewSource(seed)), cfg)
		gs[fmt.Sprintf("gen-%d", seed)] = g
	}
	return gs
}

// TestCanonicalHashStable: canonicalizing twice, canonicalizing the
// canonical text itself, and round-tripping the input through MarshalText
// all yield the same hash, and the canonical text is a valid graph.
func TestCanonicalHashStable(t *testing.T) {
	for name, g := range testGraphs(t) {
		g := g
		t.Run(name, func(t *testing.T) {
			c1, err := mapcache.Canonicalize(g)
			if err != nil {
				t.Fatal(err)
			}
			c2, err := mapcache.Canonicalize(g)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(c1.Text, c2.Text) {
				t.Fatal("canonicalizing the same graph twice produced different texts")
			}
			cg, err := cdfg.UnmarshalText(c1.Text)
			if err != nil {
				t.Fatalf("canonical text is not a valid graph: %v", err)
			}
			c3, err := mapcache.Canonicalize(cg)
			if err != nil {
				t.Fatal(err)
			}
			if c3.Sum != c1.Sum {
				t.Fatal("canonical form is not a fixpoint: canonicalizing the canonical text changed the hash")
			}
			text, err := g.MarshalText()
			if err != nil {
				t.Fatal(err)
			}
			rg, err := cdfg.UnmarshalText(text)
			if err != nil {
				t.Fatal(err)
			}
			c4, err := mapcache.Canonicalize(rg)
			if err != nil {
				t.Fatal(err)
			}
			if c4.Sum != c1.Sum {
				t.Fatal("MarshalText round-trip changed the canonical hash")
			}
		})
	}
}

// TestCanonicalHashInvariance: random isomorphic relabelings — node
// renumbering, commutative-operand swaps, block reordering, renames —
// leave the canonical text (hence the hash) unchanged.
func TestCanonicalHashInvariance(t *testing.T) {
	for name, g := range testGraphs(t) {
		g := g
		t.Run(name, func(t *testing.T) {
			base, err := mapcache.Canonicalize(g)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 20; trial++ {
				rng := rand.New(rand.NewSource(int64(1000 + trial)))
				pg := permuteGraph(t, g, rng)
				pc, err := mapcache.Canonicalize(pg)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if !bytes.Equal(pc.Text, base.Text) {
					t.Fatalf("trial %d: isomorphic relabeling changed the canonical text:\n--- original\n%s\n--- permuted\n%s",
						trial, base.Text, pc.Text)
				}
			}
		})
	}
}

// TestCanonicalHashInequality: structural surgery — bypassing a node,
// eliminating dead nodes — must change the hash whenever it changes the
// graph.
func TestCanonicalHashInequality(t *testing.T) {
	for name, g := range testGraphs(t) {
		g := g
		t.Run(name, func(t *testing.T) {
			base, err := mapcache.Canonicalize(g)
			if err != nil {
				t.Fatal(err)
			}
			origText, err := g.MarshalText()
			if err != nil {
				t.Fatal(err)
			}
			mutated := 0
			for bb := range g.Blocks {
				for id := range g.Blocks[bb].Nodes {
					mg := g.Clone()
					if !cdfg.BypassNode(mg, cdfg.BBID(bb), cdfg.NodeID(id)) {
						continue
					}
					if err := cdfg.Verify(mg); err != nil {
						continue
					}
					// Bypassing a node nothing uses rewrites no edges;
					// only count mutations that actually changed the graph.
					if mt, err := mg.MarshalText(); err != nil || bytes.Equal(mt, origText) {
						continue
					}
					mutated++
					mc, err := mapcache.Canonicalize(mg)
					if err != nil {
						t.Fatalf("bypass b%d n%d: %v", bb, id, err)
					}
					if mc.Sum == base.Sum {
						t.Fatalf("bypassing b%d n%d left the canonical hash unchanged", bb, id)
					}
					if mutated >= 5 {
						break
					}
				}
				if mutated >= 5 {
					break
				}
			}
			dg := g.Clone()
			if cdfg.EliminateDeadNodes(dg) > 0 {
				dc, err := mapcache.Canonicalize(dg)
				if err != nil {
					t.Fatal(err)
				}
				if dc.Sum == base.Sum {
					t.Fatal("dead-node elimination changed the graph but not the canonical hash")
				}
			}
		})
	}
}
