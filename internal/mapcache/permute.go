package mapcache

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// permuteImage reorders the per-block data of a serialized asm image:
// block i of the input lands at position dst[i] of the output. BlockLens,
// BranchTiles and every tile's per-block segment move together; the header
// and each tile's CRF are untouched, and instruction words are copied
// verbatim (they carry no block references — branch targets live in the
// graph, not the bitstream — which is what makes cached images reusable
// across isomorphic graphs with different block numberings).
//
// This is a pure byte-level shuffle: no ISA decoding, so it stays cheap on
// the warm-hit path. An identity dst returns a copy of the input.
func permuteImage(data []byte, dst []int) ([]byte, error) {
	blocks := len(dst)
	inv := make([]int, blocks)
	for i := range inv {
		inv[i] = -1
	}
	for i, d := range dst {
		if d < 0 || d >= blocks || inv[d] != -1 {
			return nil, fmt.Errorf("mapcache: dst is not a permutation of %d blocks", blocks)
		}
		inv[d] = i
	}

	r := bytes.NewReader(data)
	rd := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	magic := make([]byte, 4)
	if _, err := r.Read(magic); err != nil || string(magic) != "CGRA" {
		return nil, fmt.Errorf("mapcache: bad image magic")
	}
	var version, tiles, nblocks uint32
	if err := rd(&version); err != nil {
		return nil, err
	}
	if err := rd(&tiles); err != nil {
		return nil, err
	}
	if err := rd(&nblocks); err != nil {
		return nil, err
	}
	if int(nblocks) != blocks {
		return nil, fmt.Errorf("mapcache: image has %d blocks, permutation has %d", nblocks, blocks)
	}
	if tiles > 4096 {
		return nil, fmt.Errorf("mapcache: implausible image header (%d tiles)", tiles)
	}

	blockLens := make([]uint32, blocks)
	branchTiles := make([]int32, blocks)
	for i := range blockLens {
		if err := rd(&blockLens[i]); err != nil {
			return nil, err
		}
	}
	for i := range branchTiles {
		if err := rd(&branchTiles[i]); err != nil {
			return nil, err
		}
	}

	var out bytes.Buffer
	out.Grow(len(data))
	out.WriteString("CGRA")
	w := func(v any) { _ = binary.Write(&out, binary.LittleEndian, v) }
	w(version)
	w(tiles)
	w(nblocks)
	for o := 0; o < blocks; o++ {
		w(blockLens[inv[o]])
	}
	for o := 0; o < blocks; o++ {
		w(branchTiles[inv[o]])
	}

	for t := uint32(0); t < tiles; t++ {
		var crfLen uint32
		if err := rd(&crfLen); err != nil {
			return nil, err
		}
		if crfLen > 1<<16 {
			return nil, fmt.Errorf("mapcache: implausible CRF length %d", crfLen)
		}
		w(crfLen)
		crf := make([]byte, 4*int(crfLen))
		if len(crf) > 0 {
			if _, err := io.ReadFull(r, crf); err != nil {
				return nil, err
			}
		}
		out.Write(crf)
		segs := make([][]byte, blocks)
		for b := 0; b < blocks; b++ {
			var words uint32
			if err := rd(&words); err != nil {
				return nil, err
			}
			if int64(words)*8 > int64(r.Len()) {
				return nil, fmt.Errorf("mapcache: segment of %d words overruns image", words)
			}
			seg := make([]byte, 4+8*int(words))
			binary.LittleEndian.PutUint32(seg, words)
			if words > 0 {
				if _, err := io.ReadFull(r, seg[4:]); err != nil {
					return nil, err
				}
			}
			segs[b] = seg
		}
		for o := 0; o < blocks; o++ {
			out.Write(segs[inv[o]])
		}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("mapcache: %d trailing bytes in image", r.Len())
	}
	return out.Bytes(), nil
}

// isIdentity reports whether dst maps every block to itself.
func isIdentity(dst []int) bool {
	for i, d := range dst {
		if i != d {
			return false
		}
	}
	return true
}
