// Package sim is the cycle-accurate functional simulator of the CGRA. It
// executes assembled per-tile contexts in lockstep, modeling the torus
// operand network (neighbor output-register reads), register files,
// constant files, the logarithmic interconnect's global stalls, pnop
// clock gating, and per-block control transfer with branch broadcast.
//
// The simulator both produces the latency numbers of the paper's
// evaluation and functionally validates mappings: the data memory after a
// run must equal the memory after interpreting the CDFG directly.
package sim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/cdfg"
	"repro/internal/interconnect"
	"repro/internal/isa"
	"repro/internal/obs"
)

// TileCounters aggregates per-tile activity for the energy model.
type TileCounters struct {
	// Fetches counts context words fetched (ops + moves + pnop words);
	// during a pnop's idle cycles the context memory is not re-read.
	Fetches int64
	// OpCycles and MoveCycles count cycles spent executing operations and
	// moves respectively.
	OpCycles   int64
	MoveCycles int64
	// IdleCycles counts clock-gated pnop cycles.
	IdleCycles int64
	// ALUOps/MemOps/BranchOps decompose OpCycles by operation class
	// (ALUOps + MemOps + BranchOps == OpCycles); PnopFetches is the pnop
	// share of Fetches (Fetches == OpCycles + MoveCycles + PnopFetches).
	ALUOps      int64
	MemOps      int64
	BranchOps   int64
	PnopFetches int64
	// RFReads/RFWrites count regular-register-file accesses.
	RFReads  int64
	RFWrites int64
	// CRFReads counts constant-register-file reads.
	CRFReads int64
	// MemReads/MemWrites count data-memory accesses through the LSU.
	MemReads  int64
	MemWrites int64
}

// Add accumulates o into c.
func (c *TileCounters) Add(o TileCounters) {
	c.Fetches += o.Fetches
	c.OpCycles += o.OpCycles
	c.MoveCycles += o.MoveCycles
	c.IdleCycles += o.IdleCycles
	c.ALUOps += o.ALUOps
	c.MemOps += o.MemOps
	c.BranchOps += o.BranchOps
	c.PnopFetches += o.PnopFetches
	c.RFReads += o.RFReads
	c.RFWrites += o.RFWrites
	c.CRFReads += o.CRFReads
	c.MemReads += o.MemReads
	c.MemWrites += o.MemWrites
}

// ActivityReport is the observed-activity view of one execution: the
// cycle-accurate per-tile counters plus the run totals, decoupled from the
// live Result so consumers (internal/power, serialization) can hold it
// without the block-execution map.
type ActivityReport struct {
	Cycles      int64
	StallCycles int64
	ConfigWords int
	Tiles       []TileCounters
}

// Activity extracts the result's activity report (tile counters copied).
func (r *Result) Activity() *ActivityReport {
	return &ActivityReport{
		Cycles:      r.Cycles,
		StallCycles: r.StallCycles,
		ConfigWords: r.ConfigWords,
		Tiles:       append([]TileCounters(nil), r.Tiles...),
	}
}

// Total sums the per-tile counters.
func (a *ActivityReport) Total() TileCounters {
	var t TileCounters
	for i := range a.Tiles {
		t.Add(a.Tiles[i])
	}
	return t
}

// Result is one simulated execution.
type Result struct {
	// Cycles is the total execution time including stalls (and excluding
	// configuration, reported separately).
	Cycles int64
	// StallCycles are global stalls from memory conflicts.
	StallCycles int64
	// ConfigWords is the total context-memory words loaded before
	// execution (the one-time configuration of the loosely coupled CGRA).
	ConfigWords int
	// BlockExecs counts executions per basic block.
	BlockExecs map[cdfg.BBID]int64
	// Tiles holds per-tile activity counters.
	Tiles []TileCounters
}

// MaxCycles bounds a simulation so broken control flow cannot spin
// forever.
const MaxCycles = 500_000_000

// tileState is a tile's architectural state.
type tileState struct {
	rf  []int32
	out int32
}

// Sim is a reusable simulator instance for one program.
type Sim struct {
	prog *asm.Program
	net  *interconnect.Model
	// expanded[bb][tile] is the per-cycle instruction grid (nil = idle),
	// decoded once from the segments.
	expanded [][][]*isa.Instr
	// low is the pre-decoded struct-of-arrays form the batched engine
	// executes (see engine.go), built once per program next to expanded.
	low *lowered
	// maxMismatches caps the divergent words a RunVerified failure records.
	maxMismatches int
	// obs, when non-nil, receives run counters and the cycle-domain block
	// timeline (see WithObs).
	obs *obs.Recorder
}

// Option configures a simulator instance.
type Option func(*Sim)

// WithMaxMismatches caps how many divergent words RunVerified records in a
// DivergenceError (the total is always counted). Values < 1 keep the
// default.
func WithMaxMismatches(n int) Option {
	return func(s *Sim) {
		if n >= 1 {
			s.maxMismatches = n
		}
	}
}

// WithObs attaches an instrumentation recorder: each Run publishes its
// aggregate activity counters and stamps one timeline event per
// basic-block execution in the cycle domain (PIDSim, one simulated cycle
// rendered as one microsecond), capped at blockEventCap events per run so
// long executions cannot flood the sink (the overflow is counted on
// sim.trace.truncated). A nil recorder is a no-op.
func WithObs(r *obs.Recorder) Option {
	return func(s *Sim) { s.obs = r }
}

// blockEventCap bounds the block-execution timeline events one Run emits.
const blockEventCap = 4096

// decodedContexts is the program's derived execution form, published on
// the program's memo slot so repeated simulator instances of the same
// program (oracle sweeps, verification reruns, experiment workers)
// decode the context words once: the per-cycle instruction grid the
// scalar interpreter walks, and the lowered struct-of-arrays tables the
// batched engine executes (see engine.go). Neither is mutated after
// decode.
type decodedContexts struct {
	expanded [][][]*isa.Instr
	low      *lowered
}

// New prepares a simulator for the program.
func New(p *asm.Program, opts ...Option) (*Sim, error) {
	s := &Sim{prog: p, net: interconnect.New(p.Grid), maxMismatches: DefaultMaxMismatches}
	for _, o := range opts {
		o(s)
	}
	if d, ok := p.Memo().(*decodedContexts); ok {
		s.expanded = d.expanded
		s.low = d.low
		return s, nil
	}
	start := time.Now()
	nb := len(p.Graph.Blocks)
	s.expanded = make([][][]*isa.Instr, nb)
	for bb := 0; bb < nb; bb++ {
		s.expanded[bb] = make([][]*isa.Instr, p.Grid.NumTiles())
		for t := range s.expanded[bb] {
			grid, err := expand(&p.Tiles[t].Segments[bb], p.BlockLens[bb])
			if err != nil {
				return nil, fmt.Errorf("sim: tile %d block %q: %w", t+1, p.Graph.Blocks[bb].Name, err)
			}
			s.expanded[bb][t] = grid
		}
	}
	s.low = lower(p, s.expanded)
	p.SetMemo(&decodedContexts{expanded: s.expanded, low: s.low})
	if s.obs.Enabled() {
		s.obs.Counter("sim.engine.predecode_ns").Add(time.Since(start).Nanoseconds())
	}
	return s, nil
}

// expand unrolls a segment's pnop words into idle cycles.
func expand(seg *asm.Segment, blockLen int) ([]*isa.Instr, error) {
	grid := make([]*isa.Instr, 0, blockLen)
	for i := range seg.Instrs {
		in := &seg.Instrs[i]
		if in.Kind == isa.KPnop {
			for k := 0; k < in.Count; k++ {
				grid = append(grid, nil)
			}
		} else {
			grid = append(grid, in)
		}
	}
	if len(grid) != blockLen {
		return nil, fmt.Errorf("segment spans %d cycles, block is %d", len(grid), blockLen)
	}
	return grid, nil
}

// Run executes the program against the memory (modified in place). It
// is the batch-of-one form of Engine.RunBatch; the two paths (and the
// reference interpreter, see RunScalar) are bit-identical in results,
// counters, and errors.
func (s *Sim) Run(mem cdfg.Memory) (*Result, error) {
	results, err := (&Engine{s: s}).RunBatch([]cdfg.Memory{mem})
	if err != nil {
		var be *BatchError
		if errors.As(err, &be) {
			return results[0], be.Errs[0]
		}
		return results[0], err
	}
	return results[0], nil
}

// RunScalar executes the program with the reference tile-major
// interpreter: one input set, context words re-decoded as they execute.
// It is the differential baseline the batched engine is tested against
// (and the fallback that reproduces exact scalar error behavior for
// faulting engine lanes); production callers should prefer Run.
func (s *Sim) RunScalar(mem cdfg.Memory) (*Result, error) { return s.runScalar(mem, 0) }

// runScalar is RunScalar with an explicit lane id for the block
// timeline's TID, so fallback re-runs of batch lanes land on their
// lane's track.
func (s *Sim) runScalar(mem cdfg.Memory, tid int) (*Result, error) {
	p := s.prog
	n := p.Grid.NumTiles()
	res := &Result{
		BlockExecs:  map[cdfg.BBID]int64{},
		Tiles:       make([]TileCounters, n),
		ConfigWords: p.TotalWords(),
	}
	// One flat register-file backing for all tiles: n*RRF small slices
	// showed up as the run loop's dominant allocation.
	tiles := make([]tileState, n)
	rfAll := make([]int32, n*p.Grid.RRFSize)
	for t := range tiles {
		tiles[t].rf = rfAll[t*p.Grid.RRFSize : (t+1)*p.Grid.RRFSize]
	}
	// Count the one-time fetch per pnop word and every op/move fetch as
	// the block executes; configuration fetches are ConfigWords.

	cur := p.Graph.Entry
	newOut := make([]int32, n)
	hasOut := make([]bool, n)
	prevIdle := make([]bool, n)
	var srcBuf [isa.MaxSrcs]int32
	var accs []interconnect.Access
	type memOp struct {
		tile  int
		load  bool
		addr  int32
		value int32 // store data
	}
	var memOps []memOp

	tracing := s.obs.Enabled()
	blockEvents := 0
	var blockEventsDropped int64

	for {
		if res.Cycles > MaxCycles {
			return res, fmt.Errorf("sim: exceeded %d cycles in %q", MaxCycles, p.Graph.Name)
		}
		b := p.Graph.Blocks[cur]
		res.BlockExecs[cur]++
		blockStart := res.Cycles
		grid := s.expanded[cur]
		blockLen := p.BlockLens[cur]
		branchTaken := false
		// Track pnop entry: a tile fetches the pnop word on its first
		// idle cycle after an instruction (or at block start).
		for t := range prevIdle {
			prevIdle[t] = false
		}

		for c := 0; c < blockLen; c++ {
			accs = accs[:0]
			memOps = memOps[:0]
			for t := 0; t < n; t++ {
				hasOut[t] = false
				in := grid[t][c]
				tc := &res.Tiles[t]
				if in == nil {
					if !prevIdle[t] {
						tc.Fetches++ // the pnop word itself
						tc.PnopFetches++
					}
					prevIdle[t] = true
					tc.IdleCycles++
					continue
				}
				prevIdle[t] = false
				tc.Fetches++
				vals, err := s.readSrcs(p, tiles, t, in, tc, srcBuf[:in.NSrc])
				if err != nil {
					return res, fmt.Errorf("sim: block %q cycle %d tile %d: %w", b.Name, c, t+1, err)
				}
				switch {
				case in.Kind == isa.KMove:
					tc.MoveCycles++
					newOut[t] = vals[0]
					hasOut[t] = true
				case in.Op == cdfg.OpLoad:
					tc.OpCycles++
					tc.MemOps++
					memOps = append(memOps, memOp{tile: t, load: true, addr: vals[0]})
					accs = append(accs, interconnect.Access{Tile: arch.TileID(t), Addr: vals[0]})
				case in.Op == cdfg.OpStore:
					tc.OpCycles++
					tc.MemOps++
					memOps = append(memOps, memOp{tile: t, addr: vals[0], value: vals[1]})
					accs = append(accs, interconnect.Access{Tile: arch.TileID(t), Addr: vals[0], Store: true})
				case in.Op == cdfg.OpBr:
					tc.OpCycles++
					tc.BranchOps++
					branchTaken = vals[0] != 0
				default:
					tc.OpCycles++
					tc.ALUOps++
					v, err := cdfg.EvalOp(in.Op, vals)
					if err != nil {
						return res, fmt.Errorf("sim: block %q cycle %d tile %d: %w", b.Name, c, t+1, err)
					}
					newOut[t] = v
					hasOut[t] = true
				}
			}
			// Memory service: loads observe pre-cycle memory, stores
			// commit at end of cycle; conflicts stall the whole array.
			stalls := s.net.Stalls(accs)
			res.StallCycles += int64(stalls)
			res.Cycles += int64(1 + stalls)
			for _, mo := range memOps {
				tc := &res.Tiles[mo.tile]
				if mo.load {
					v, err := mem.Load(mo.addr)
					if err != nil {
						return res, fmt.Errorf("sim: block %q cycle %d tile %d: %w", b.Name, c, mo.tile+1, err)
					}
					newOut[mo.tile] = v
					hasOut[mo.tile] = true
					tc.MemReads++
				} else {
					tc.MemWrites++
				}
			}
			for _, mo := range memOps {
				if !mo.load {
					if err := mem.Store(mo.addr, mo.value); err != nil {
						return res, fmt.Errorf("sim: block %q cycle %d tile %d: %w", b.Name, c, mo.tile+1, err)
					}
				}
			}
			// Commit output registers and writebacks.
			for t := 0; t < n; t++ {
				in := grid[t][c]
				if in == nil {
					continue
				}
				if hasOut[t] {
					tiles[t].out = newOut[t]
					if in.WB {
						tiles[t].rf[in.WReg] = newOut[t]
						res.Tiles[t].RFWrites++
					}
				}
			}
		}
		if tracing {
			// Block executions land on the simulator's cycle-domain track:
			// the timestamp is the block's starting cycle, the duration its
			// cycle count including stalls.
			if blockEvents < blockEventCap {
				blockEvents++
				s.obs.EmitEvent(obs.Event{
					Name: b.Name, Cat: "sim.block", Ph: obs.PhaseComplete,
					TS: float64(blockStart), Dur: float64(res.Cycles - blockStart),
					PID: obs.PIDSim, TID: tid,
				})
			} else {
				blockEventsDropped++
			}
		}
		switch {
		case b.HasBranch():
			if branchTaken {
				cur = b.Succs[0]
			} else {
				cur = b.Succs[1]
			}
		case len(b.Succs) == 1:
			cur = b.Succs[0]
		default:
			s.recordRun(res, blockEventsDropped)
			return res, nil
		}
	}
}

// recordRun publishes a completed run's aggregate activity to the
// attached recorder.
func (s *Sim) recordRun(res *Result, dropped int64) {
	r := s.obs
	if !r.Enabled() {
		return
	}
	var agg TileCounters
	for i := range res.Tiles {
		agg.Add(res.Tiles[i])
	}
	r.Counter("sim.runs").Inc()
	r.Counter("sim.cycles").Add(res.Cycles)
	r.Counter("sim.stall_cycles").Add(res.StallCycles)
	r.Counter("sim.config_words").Add(int64(res.ConfigWords))
	r.Counter("sim.fetches").Add(agg.Fetches)
	r.Counter("sim.alu_ops").Add(agg.ALUOps)
	r.Counter("sim.mem_ops").Add(agg.MemOps)
	r.Counter("sim.branch_ops").Add(agg.BranchOps)
	r.Counter("sim.moves").Add(agg.MoveCycles)
	r.Counter("sim.pnop_fetches").Add(agg.PnopFetches)
	r.Counter("sim.idle_cycles").Add(agg.IdleCycles)
	r.Counter("sim.rf_reads").Add(agg.RFReads)
	r.Counter("sim.rf_writes").Add(agg.RFWrites)
	r.Counter("sim.crf_reads").Add(agg.CRFReads)
	r.Counter("sim.mem_reads").Add(agg.MemReads)
	r.Counter("sim.mem_writes").Add(agg.MemWrites)
	if dropped > 0 {
		r.Counter("sim.trace.truncated").Add(dropped)
	}
}

// readSrcs resolves an instruction's operands against pre-cycle state
// into the caller's scratch buffer (len must equal in.NSrc). The result
// aliases that buffer and is consumed before the next instruction.
func (s *Sim) readSrcs(p *asm.Program, tiles []tileState, t int, in *isa.Instr, tc *TileCounters, vals []int32) ([]int32, error) {
	for i := 0; i < in.NSrc; i++ {
		src := in.Srcs[i]
		switch src.Kind {
		case isa.SrcConst:
			vals[i] = src.Val
			tc.CRFReads++
		case isa.SrcReg:
			if int(src.Reg) >= len(tiles[t].rf) {
				return nil, fmt.Errorf("register r%d out of range", src.Reg)
			}
			vals[i] = tiles[t].rf[src.Reg]
			tc.RFReads++
		case isa.SrcSelf:
			vals[i] = tiles[t].out
		case isa.SrcNbr:
			nb := p.Grid.Neighbors(arch.TileID(t))[src.Dir]
			vals[i] = tiles[nb].out
		default:
			return nil, fmt.Errorf("operand %d unset", i)
		}
	}
	return vals, nil
}
