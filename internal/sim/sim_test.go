package sim_test

import (
	"errors"
	"testing"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/sim"
)

func build(t testing.TB, kernel string, flow core.Flow, cfg arch.ConfigName) (*sim.Sim, kernels.Kernel) {
	t.Helper()
	k, err := kernels.ByName(kernel)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Map(k.Build(), arch.MustGrid(cfg), core.DefaultOptions(flow))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(m)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	return s, k
}

// TestKernelsOnCGRA is the end-to-end correctness suite: every paper
// kernel mapped with the full aware flow on HET1, simulated, and checked
// against the golden reference.
func TestKernelsOnCGRA(t *testing.T) {
	if testing.Short() {
		t.Skip("full kernel simulations are slow")
	}
	for _, name := range kernels.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := arch.HET1
			if name == "NonSepFilter" {
				cfg = arch.HOM64 // tightest config this kernel instance fits reliably at speed
			}
			s, k := build(t, name, core.FlowCAB, cfg)
			res, tr, mem, err := s.RunVerified(k.Init())
			if err != nil {
				t.Fatal(err)
			}
			if err := k.Check(mem); err != nil {
				t.Fatal(err)
			}
			if res.Cycles <= 0 {
				t.Fatal("no cycles")
			}
			// Counters must be internally consistent.
			var fetches, idle, op, mv int64
			for _, tc := range res.Tiles {
				fetches += tc.Fetches
				idle += tc.IdleCycles
				op += tc.OpCycles
				mv += tc.MoveCycles
			}
			busy := op + mv
			execCycles := res.Cycles - res.StallCycles
			if busy+idle != execCycles*16 {
				t.Errorf("cycle accounting: busy %d + idle %d != 16×%d", busy, idle, execCycles)
			}
			if fetches == 0 || fetches > busy+idle {
				t.Errorf("fetches %d out of range", fetches)
			}
			// The interpreter trace and the simulator agree on control flow.
			var blocks int64
			for _, n := range res.BlockExecs {
				blocks += n
			}
			if int(blocks) != tr.Blocks {
				t.Errorf("block executions: sim %d vs interp %d", blocks, tr.Blocks)
			}
		})
	}
}

// TestMaxMismatchesOption forces a divergence by corrupting every store's
// value operand and checks that WithMaxMismatches caps the recorded words
// while Total still counts all of them.
func TestMaxMismatchesOption(t *testing.T) {
	k, err := kernels.ByName("FIR")
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Map(k.Build(), arch.MustGrid(arch.HOM64), core.DefaultOptions(core.FlowCAB))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(m)
	if err != nil {
		t.Fatal(err)
	}
	for ti := range prog.Tiles {
		for si := range prog.Tiles[ti].Segments {
			instrs := prog.Tiles[ti].Segments[si].Instrs
			for ii := range instrs {
				if instrs[ii].Kind == isa.KOp && instrs[ii].Op == cdfg.OpStore {
					instrs[ii].Srcs[1] = isa.Const(0x5aa5a5)
				}
			}
		}
	}
	run := func(t *testing.T, opts ...sim.Option) *sim.DivergenceError {
		t.Helper()
		s, err := sim.New(prog, opts...)
		if err != nil {
			t.Fatal(err)
		}
		_, _, _, err = s.RunVerified(k.Init())
		var div *sim.DivergenceError
		if !errors.As(err, &div) {
			t.Fatalf("corrupted stores must diverge, got %v", err)
		}
		return div
	}
	full := run(t)
	if full.Total <= 2 {
		t.Fatalf("need > 2 divergent words to test the cap, got %d", full.Total)
	}
	capped := run(t, sim.WithMaxMismatches(2))
	if len(capped.Mismatches) != 2 {
		t.Errorf("cap 2 recorded %d mismatches", len(capped.Mismatches))
	}
	if capped.Total != full.Total {
		t.Errorf("Total must be cap-independent: %d vs %d", capped.Total, full.Total)
	}
	ignored := run(t, sim.WithMaxMismatches(0)) // < 1 keeps the default
	if len(ignored.Mismatches) != len(full.Mismatches) {
		t.Errorf("cap 0 must keep the default: %d vs %d", len(ignored.Mismatches), len(full.Mismatches))
	}
}

// TestStallAccounting checks that memory-port pressure produces global
// stalls exactly when concurrent accesses exceed the interconnect.
func TestStallAccounting(t *testing.T) {
	s, k := build(t, "MatM", core.FlowBasic, arch.HOM64)
	res, err := s.Run(k.Init())
	if err != nil {
		t.Fatal(err)
	}
	if res.StallCycles < 0 || res.StallCycles >= res.Cycles {
		t.Errorf("stalls %d vs cycles %d", res.StallCycles, res.Cycles)
	}
	var memOps int64
	for _, tc := range res.Tiles {
		memOps += tc.MemReads + tc.MemWrites
	}
	if memOps == 0 {
		t.Fatal("MatM must touch memory")
	}
	// Memory ops only on LSU tiles.
	for i, tc := range res.Tiles {
		if i >= 8 && tc.MemReads+tc.MemWrites > 0 {
			t.Errorf("non-LSU tile %d performed memory ops", i+1)
		}
	}
}

// TestConfigWords checks the reported configuration footprint.
func TestConfigWords(t *testing.T) {
	s, k := build(t, "FIR", core.FlowCAB, arch.HET2)
	res, err := s.Run(k.Init())
	if err != nil {
		t.Fatal(err)
	}
	if res.ConfigWords <= 0 || res.ConfigWords > 512 {
		t.Errorf("config words %d out of range for HET2", res.ConfigWords)
	}
}

// TestRunFromBinaryImage executes a program rebuilt purely from its saved
// context-memory image — the hardware loader path — and verifies the
// kernel output end to end.
func TestRunFromBinaryImage(t *testing.T) {
	k, err := kernels.ByName("FIR")
	if err != nil {
		t.Fatal(err)
	}
	g := k.Build()
	grid := arch.MustGrid(arch.HET1)
	m, err := core.Map(g, grid, core.DefaultOptions(core.FlowCAB))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(m)
	if err != nil {
		t.Fatal(err)
	}
	data, err := asm.SaveImage(prog)
	if err != nil {
		t.Fatal(err)
	}
	img, err := asm.LoadImage(data)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := asm.ProgramFromImage(img, g, grid)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(loaded)
	if err != nil {
		t.Fatal(err)
	}
	_, _, mem, err := s.RunVerified(k.Init())
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Check(mem); err != nil {
		t.Fatal(err)
	}
}
