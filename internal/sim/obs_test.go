package sim_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TestActivityDecomposition pins the op-class counter invariants the
// activity report is built on: the per-class counters must exactly
// partition the aggregate cycle and fetch counters.
func TestActivityDecomposition(t *testing.T) {
	s, k := build(t, "FIR", core.FlowCAB, arch.HET1)
	res, err := s.Run(k.Init())
	if err != nil {
		t.Fatal(err)
	}
	act := res.Activity()
	if act.Cycles != res.Cycles || len(act.Tiles) != len(res.Tiles) {
		t.Fatalf("activity report does not mirror the result: %+v", act)
	}
	for i, tc := range act.Tiles {
		if tc.ALUOps+tc.MemOps+tc.BranchOps != tc.OpCycles {
			t.Errorf("tile %d: op classes %d+%d+%d != OpCycles %d",
				i+1, tc.ALUOps, tc.MemOps, tc.BranchOps, tc.OpCycles)
		}
		if tc.OpCycles+tc.MoveCycles+tc.PnopFetches != tc.Fetches {
			t.Errorf("tile %d: fetch classes %d+%d+%d != Fetches %d",
				i+1, tc.OpCycles, tc.MoveCycles, tc.PnopFetches, tc.Fetches)
		}
	}
	total := act.Total()
	if total.ALUOps == 0 || total.MemOps == 0 {
		t.Errorf("FIR ran with no ALU (%d) or memory (%d) operations", total.ALUOps, total.MemOps)
	}
	// The activity report is a copy, not a view.
	act.Tiles[0].ALUOps++
	if act.Tiles[0].ALUOps == res.Tiles[0].ALUOps {
		t.Error("ActivityReport aliases the live Result counters")
	}
}

// TestRunWithObs checks the simulator's recorder wiring: run counters in
// the registry and cycle-stamped block events on the PIDSim track.
func TestRunWithObs(t *testing.T) {
	k, err := kernels.ByName("FIR")
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Map(k.Build(), arch.MustGrid(arch.HET1), core.DefaultOptions(core.FlowCAB))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(m)
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewBufferSink(0)
	rec := obs.NewRecorder(obs.NewRegistry(), sink)
	s, err := sim.New(prog, sim.WithObs(rec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(k.Init())
	if err != nil {
		t.Fatal(err)
	}

	if got := rec.Counter("sim.cycles").Value(); got != res.Cycles {
		t.Errorf("sim.cycles = %d, want %d", got, res.Cycles)
	}
	total := res.Activity().Total()
	if got := rec.Counter("sim.alu_ops").Value(); got != total.ALUOps {
		t.Errorf("sim.alu_ops = %d, want %d", got, total.ALUOps)
	}
	if got := rec.Counter("sim.crf_reads").Value(); got != total.CRFReads {
		t.Errorf("sim.crf_reads = %d, want %d", got, total.CRFReads)
	}

	var execs int64
	for _, n := range res.BlockExecs {
		execs += n
	}
	events := sink.Events()
	if int64(len(events)) != execs && int64(len(events))+sink.Dropped() < execs {
		t.Errorf("captured %d block events for %d block executions", len(events), execs)
	}
	var lastEnd float64
	for _, e := range events {
		if e.PID != obs.PIDSim || e.Ph != obs.PhaseComplete || e.Cat != "sim.block" {
			t.Fatalf("unexpected sim event %+v", e)
		}
		if e.TS < lastEnd {
			t.Fatalf("block event %q starts at cycle %v before previous block ended (%v)", e.Name, e.TS, lastEnd)
		}
		lastEnd = e.TS + e.Dur
	}
	if int64(lastEnd) != res.Cycles {
		t.Errorf("last block event ends at cycle %v, run took %d", lastEnd, res.Cycles)
	}
}
