//go:build race

package sim_test

// raceEnabled trims the batch differential matrix under the race
// detector, whose 4-5x slowdown would otherwise dominate the CI race
// pass.
const raceEnabled = true
