package sim_test

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/sim"
)

// buildProgram maps and assembles a graph with the CAB flow on HOM64,
// the cell every batch property test runs on.
func buildProgram(t *testing.T, g *cdfg.Graph) *asm.Program {
	t.Helper()
	m, err := core.Map(g, arch.MustGrid(arch.HOM64), core.DefaultOptions(core.FlowCAB))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(m)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func firSim(t *testing.T) (kernels.Kernel, *sim.Sim) {
	t.Helper()
	k, err := kernels.ByName("FIR")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(buildProgram(t, k.Build()))
	if err != nil {
		t.Fatal(err)
	}
	return k, s
}

// TestBatchEmpty: an empty batch is a no-op — no results, no error.
func TestBatchEmpty(t *testing.T) {
	_, s := firSim(t)
	for _, mems := range [][]cdfg.Memory{nil, {}} {
		results, err := s.Engine().RunBatch(mems)
		if err != nil {
			t.Fatalf("RunBatch(empty): %v", err)
		}
		if len(results) != 0 {
			t.Fatalf("RunBatch(empty) returned %d results", len(results))
		}
	}
}

// TestBatchOfOne: a one-lane batch is exactly a scalar run.
func TestBatchOfOne(t *testing.T) {
	k, s := firSim(t)
	refMem := k.Init()
	refRes, err := s.RunScalar(refMem)
	if err != nil {
		t.Fatal(err)
	}
	gotMem := k.Init()
	results, err := s.Engine().RunBatch([]cdfg.Memory{gotMem})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(results[0], refRes) {
		t.Fatalf("B=1 result differs from scalar:\n got %+v\nwant %+v", results[0], refRes)
	}
	if !reflect.DeepEqual(gotMem, refMem) {
		t.Fatal("B=1 final memory differs from scalar")
	}
}

// TestBatchDuplicateLanes: identical input memories must produce
// identical results and identical final memories on every lane.
func TestBatchDuplicateLanes(t *testing.T) {
	k, s := firSim(t)
	const B = 6
	mems := make([]cdfg.Memory, B)
	for l := range mems {
		mems[l] = k.Init()
	}
	results, err := s.Engine().RunBatch(mems)
	if err != nil {
		t.Fatal(err)
	}
	for l := 1; l < B; l++ {
		if !reflect.DeepEqual(results[l], results[0]) {
			t.Fatalf("lane %d result differs from lane 0 on identical input", l)
		}
		if !reflect.DeepEqual(mems[l], mems[0]) {
			t.Fatalf("lane %d final memory differs from lane 0 on identical input", l)
		}
	}
	if err := k.Check(mems[0]); err != nil {
		t.Fatalf("golden check: %v", err)
	}
}

// copyThroughGraph builds: mem[1] = mem[0] — one load feeding one
// store, the smallest program whose store value can be corrupted to a
// constant so that divergence becomes input-dependent.
func copyThroughGraph() *cdfg.Graph {
	b := cdfg.NewBuilder("copythrough")
	entry := b.Block("entry")
	x := entry.Load(entry.Const(0))
	entry.Store(entry.Const(1), x)
	entry.Jump("exit")
	b.Block("exit")
	return b.Finish()
}

// TestBatchSingleLaneDivergence: with the store value corrupted to a
// constant K, a lane whose input already holds K at the source address
// verifies clean while every other lane diverges — the batch verifier
// must blame exactly the diverging lanes, with per-lane mismatch
// detail, and still return verified memories for the clean ones.
func TestBatchSingleLaneDivergence(t *testing.T) {
	const magic = 42
	prog := buildProgram(t, copyThroughGraph())
	corruptStoreValues(prog, magic)
	s, err := sim.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Lane 1 carries the magic value: the corrupted store writes what the
	// reference interpreter writes, so only lanes 0 and 2 diverge.
	initials := []cdfg.Memory{
		{7, 0, 0, 0},
		{magic, 0, 0, 0},
		{-3, 0, 0, 0},
	}
	results, _, mems, err := s.Engine().RunBatchVerified(initials)
	if err == nil {
		t.Fatal("RunBatchVerified did not report the diverging lanes")
	}
	var be *sim.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error is %T, want *sim.BatchError", err)
	}
	for _, l := range []int{0, 2} {
		var div *sim.DivergenceError
		if !errors.As(be.Errs[l], &div) {
			t.Fatalf("lane %d: error is %v, want *DivergenceError", l, be.Errs[l])
		}
		if div.Total != 1 || div.Mismatches[0].Addr != 1 || div.Mismatches[0].Got != magic {
			t.Fatalf("lane %d: unexpected divergence detail %+v", l, div)
		}
		if div.Mismatches[0].Ref != initials[l][0] {
			t.Fatalf("lane %d: reference value %d, want the lane's own input %d",
				l, div.Mismatches[0].Ref, initials[l][0])
		}
		if mems[l] != nil {
			t.Fatalf("lane %d: diverged lane returned a verified memory", l)
		}
	}
	if be.Errs[1] != nil {
		t.Fatalf("clean lane blamed: %v", be.Errs[1])
	}
	if mems[1] == nil || mems[1][1] != magic {
		t.Fatalf("clean lane memory not verified: %v", mems[1])
	}
	if results[1] == nil || results[1].Cycles <= 0 {
		t.Fatalf("clean lane result missing: %+v", results[1])
	}
}

// branchDiamondGraph builds an input-dependent diamond: lanes with
// mem[0] != 0 store 111 to mem[1], the rest store 222 — the smallest
// program that forces the engine to split a lane group at a branch.
func branchDiamondGraph() *cdfg.Graph {
	b := cdfg.NewBuilder("diamond")
	entry := b.Block("entry")
	c := entry.Load(entry.Const(0))
	entry.BranchIf(c, "then", "else")

	thenB := b.Block("then")
	thenB.Store(thenB.Const(1), thenB.Const(111))
	thenB.Jump("exit")

	elseB := b.Block("else")
	elseB.Store(elseB.Const(1), elseB.Const(222))
	elseB.Jump("exit")

	b.Block("exit")
	return b.Finish()
}

// TestBatchBranchDivergence: lanes taking opposite sides of a branch
// split into groups and must still match per-lane scalar runs exactly,
// including cycle counts and block-execution maps.
func TestBatchBranchDivergence(t *testing.T) {
	prog := buildProgram(t, branchDiamondGraph())
	s, err := sim.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	const B = 8
	inputs := make([]cdfg.Memory, B)
	for l := range inputs {
		inputs[l] = cdfg.Memory{int32(l % 3), 0, 0, 0} // mixed taken/not-taken lanes
	}
	want := make([]*sim.Result, B)
	wantMems := make([]cdfg.Memory, B)
	for l := range inputs {
		wantMems[l] = inputs[l].Clone()
		res, err := s.RunScalar(wantMems[l])
		if err != nil {
			t.Fatal(err)
		}
		want[l] = res
	}
	gotMems := make([]cdfg.Memory, B)
	for l := range inputs {
		gotMems[l] = inputs[l].Clone()
	}
	results, err := s.Engine().RunBatch(gotMems)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < B; l++ {
		if !reflect.DeepEqual(results[l], want[l]) {
			t.Fatalf("lane %d result diverged across the branch split:\n got %+v\nwant %+v", l, results[l], want[l])
		}
		if !reflect.DeepEqual(gotMems[l], wantMems[l]) {
			t.Fatalf("lane %d memory diverged across the branch split", l)
		}
	}
}
