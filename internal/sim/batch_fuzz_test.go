package sim_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/sim"
)

// FuzzBatchVsScalar fuzzes the batched engine's equivalence contract:
// every input graph that maps is executed by the scalar interpreter
// lane by lane and by the engine in one RunBatch, and any difference —
// in results, per-tile counters, final memories, or error behavior —
// fails the run. The seeds reuse the oracle's generation path plus
// every minimized oracle reproducer (the checked-in corpus under
// testdata/fuzz keeps known-interesting shapes replaying in plain
// `go test`). Run
//
//	go test -fuzz=FuzzBatchVsScalar ./internal/sim
//
// to let the mutator search for new divergences.
func FuzzBatchVsScalar(f *testing.F) {
	addGraph := func(g *cdfg.Graph, modeIdx, cfgIdx, lanes int64) {
		data, err := g.MarshalText()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data, modeIdx, cfgIdx, lanes)
	}
	for s := int64(0); s < 3; s++ {
		g, _ := cdfg.Generate(rand.New(rand.NewSource(s)), cdfg.DefaultGenConfig())
		addGraph(g, s, s+1, s+2)
	}
	repros, err := filepath.Glob(filepath.Join("..", "oracle", "testdata", "repro", "*.repro"))
	if err != nil {
		f.Fatal(err)
	}
	for i, path := range repros {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		g, _, err := oracle.ParseRepro(data)
		if err != nil {
			f.Fatalf("%s: %v", path, err)
		}
		addGraph(g, int64(i), int64(i), int64(i%7)+1)
	}

	cells := oracle.AllCells()
	f.Fuzz(func(t *testing.T, data []byte, modeIdx, cfgIdx, lanes int64) {
		if len(data) > 1<<16 {
			return
		}
		g, err := cdfg.UnmarshalText(data)
		if err != nil {
			return // not a well-formed graph; nothing to diff
		}
		if g.NumNodes() > 120 || len(g.Blocks) > 16 {
			return // keep the per-input mapper run bounded
		}
		mem := make(cdfg.Memory, 64)
		if _, err := cdfg.Interp(g, mem.Clone()); err != nil {
			return // graph traps; the oracle pipeline would reject it too
		}
		idx := (modeIdx*4 + cfgIdx) % int64(len(cells))
		if idx < 0 {
			idx += int64(len(cells))
		}
		cell := cells[idx]
		B := int(lanes%8) + 1
		if B < 1 {
			B += 8
		}

		m, err := core.Map(g, arch.MustGrid(cell.Config), cell.Mode.Options())
		if err != nil {
			return // no mapping: nothing to simulate
		}
		if ok, _ := m.FitsMemory(); !ok {
			return
		}
		prog, err := asm.Assemble(m)
		if err != nil {
			return
		}
		s, err := sim.New(prog)
		if err != nil {
			return
		}
		inputs := make([]cdfg.Memory, B)
		for l := range inputs {
			inputs[l] = mem.Clone()
			for i := range inputs[l] {
				inputs[l][i] += int32(l*13 + i%7)
			}
		}
		refMems := make([]cdfg.Memory, B)
		refResults := make([]*sim.Result, B)
		refErrs := make([]error, B)
		for l := range inputs {
			refMems[l] = inputs[l].Clone()
			refResults[l], refErrs[l] = s.RunScalar(refMems[l])
		}
		gotMems := make([]cdfg.Memory, B)
		for l := range inputs {
			gotMems[l] = inputs[l].Clone()
		}
		results, batchErr := s.Engine().RunBatch(gotMems)
		laneErr := func(l int) error {
			if batchErr == nil {
				return nil
			}
			return batchErr.(*sim.BatchError).Errs[l]
		}
		for l := 0; l < B; l++ {
			ge, re := laneErr(l), refErrs[l]
			switch {
			case (ge == nil) != (re == nil):
				t.Fatalf("%s B=%d lane %d: engine err %v, scalar err %v", cell, B, l, ge, re)
			case ge != nil && ge.Error() != re.Error():
				t.Fatalf("%s B=%d lane %d: engine err %q, scalar err %q", cell, B, l, ge, re)
			}
			if !reflect.DeepEqual(results[l], refResults[l]) {
				gtext, _ := g.MarshalText()
				t.Fatalf("%s B=%d lane %d: result diverged\n got %+v\nwant %+v\n%s",
					cell, B, l, results[l], refResults[l], gtext)
			}
			if ge == nil && !reflect.DeepEqual(gotMems[l], refMems[l]) {
				gtext, _ := g.MarshalText()
				t.Fatalf("%s B=%d lane %d: final memory diverged\n%s", cell, B, l, gtext)
			}
		}
	})
}
