package sim_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/sim"
)

// vecAddGraph builds: for i in [0,n): mem[2n+i] = mem[i] + mem[n+i].
func vecAddGraph(n int32) *cdfg.Graph {
	b := cdfg.NewBuilder("vecadd")
	entry := b.Block("entry")
	entry.SetSym("i", entry.Const(0))
	entry.Jump("loop")

	loop := b.Block("loop")
	i := loop.Sym("i")
	a := loop.Load(i)
	c := loop.Load(loop.AddC(i, n))
	s := loop.Add(a, c)
	loop.Store(loop.AddC(i, 2*n), s)
	i2 := loop.AddC(i, 1)
	loop.SetSym("i", i2)
	loop.BranchIf(loop.Lt(i2, loop.Const(n)), "loop", "exit")

	b.Block("exit")
	return b.Finish()
}

func vecAddMem(n int32) cdfg.Memory {
	mem := make(cdfg.Memory, 3*n)
	for i := int32(0); i < n; i++ {
		mem[i] = 3 * i
		mem[n+i] = 1000 - i
	}
	return mem
}

// TestEndToEndVecAdd maps, assembles and simulates a small loop kernel on
// every configuration and flow, verifying the final data memory against
// the reference interpreter.
func TestEndToEndVecAdd(t *testing.T) {
	const n = 16
	g := vecAddGraph(n)
	for _, cfg := range arch.ConfigNames() {
		grid := arch.MustGrid(cfg)
		for _, flow := range core.Flows() {
			if flow == core.FlowBasic && cfg != arch.HOM64 {
				continue // the basic flow is only guaranteed to fit HOM64
			}
			t.Run(string(cfg)+"/"+flow.String(), func(t *testing.T) {
				m, err := core.Map(g, grid, core.DefaultOptions(flow))
				if err != nil {
					t.Fatalf("Map: %v", err)
				}
				if err := m.Validate(); err != nil {
					t.Fatalf("Validate: %v", err)
				}
				prog, err := asm.Assemble(m)
				if err != nil {
					t.Fatalf("Assemble: %v", err)
				}
				if flow != core.FlowBasic {
					if ok, tile := prog.FitsMemory(); !ok {
						t.Fatalf("context overflow on tile %d", tile+1)
					}
				}
				s, err := sim.New(prog)
				if err != nil {
					t.Fatalf("sim.New: %v", err)
				}
				res, _, mem, err := s.RunVerified(vecAddMem(n))
				if err != nil {
					t.Fatalf("RunVerified: %v", err)
				}
				if res.Cycles <= 0 {
					t.Fatalf("no cycles simulated")
				}
				for i := int32(0); i < n; i++ {
					want := 3*i + 1000 - i
					if mem[2*n+i] != want {
						t.Fatalf("c[%d] = %d, want %d", i, mem[2*n+i], want)
					}
				}
			})
		}
	}
}
