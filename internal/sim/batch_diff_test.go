package sim_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/oracle"
	"repro/internal/sim"
)

// batchSizes are the lane counts the differential matrix exercises: the
// degenerate batch, a two-lane batch, an odd width that doesn't divide
// anything, and the throughput-benchmark width.
var batchSizes = []int{1, 2, 7, 64}

// laneMemory derives lane l's input memory from the kernel's canonical
// initial memory: lane 0 is the canonical input, the others perturb
// every word deterministically. Kernel addressing is induction-variable
// driven, so data perturbation cannot fault — it only changes values.
func laneMemory(init cdfg.Memory, l int) cdfg.Memory {
	m := init.Clone()
	if l == 0 {
		return m
	}
	for i := range m {
		m[i] += int32(l*31 + i%17)
	}
	return m
}

// assembleCell maps and assembles a kernel for one mode × config cell,
// or skips the subtest where the cell has no legal mapping (context
// memory overflow on the small configurations).
func assembleCell(t *testing.T, k kernels.Kernel, mode oracle.Mode, cfg arch.ConfigName) *asm.Program {
	t.Helper()
	m, err := core.Map(k.Build(), arch.MustGrid(cfg), mode.Options())
	if err != nil {
		t.Skipf("no mapping: %v", err)
	}
	if ok, _ := m.FitsMemory(); !ok {
		t.Skip("mapping overflows context memory")
	}
	prog, err := asm.Assemble(m)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestBatchVsScalarMatrix is the engine's equivalence obligation: for
// every kernel × mode × CM configuration, RunBatch over lane-perturbed
// inputs must be deep-equal — results, cycle counts, per-tile activity
// counters, and final memories — to B independent scalar-interpreter
// runs, and to B independent Run calls.
func TestBatchVsScalarMatrix(t *testing.T) {
	modes := oracle.Modes()
	configs := arch.ConfigNames()
	sizes := batchSizes
	if testing.Short() || raceEnabled {
		modes = []oracle.Mode{oracle.ModeBasic, oracle.ModeCAB}
		sizes = []int{1, 7}
	}
	for _, k := range kernels.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			for _, mode := range modes {
				for _, cfg := range configs {
					t.Run(fmt.Sprintf("%s/%s", mode, cfg), func(t *testing.T) {
						prog := assembleCell(t, k, mode, cfg)
						s, err := sim.New(prog)
						if err != nil {
							t.Fatal(err)
						}
						init := k.Init()
						for _, B := range sizes {
							inputs := make([]cdfg.Memory, B)
							for l := range inputs {
								inputs[l] = laneMemory(init, l)
							}
							// Scalar reference: B independent interpreter runs.
							refMems := make([]cdfg.Memory, B)
							refResults := make([]*sim.Result, B)
							for l := range inputs {
								refMems[l] = inputs[l].Clone()
								res, err := s.RunScalar(refMems[l])
								if err != nil {
									t.Fatalf("B=%d lane %d: scalar: %v", B, l, err)
								}
								refResults[l] = res
							}
							// Engine under test.
							gotMems := make([]cdfg.Memory, B)
							for l := range inputs {
								gotMems[l] = inputs[l].Clone()
							}
							results, err := s.Engine().RunBatch(gotMems)
							if err != nil {
								t.Fatalf("B=%d: RunBatch: %v", B, err)
							}
							for l := 0; l < B; l++ {
								if !reflect.DeepEqual(results[l], refResults[l]) {
									t.Fatalf("B=%d lane %d: result diverged from scalar\n got %+v\nwant %+v",
										B, l, results[l], refResults[l])
								}
								if !reflect.DeepEqual(gotMems[l], refMems[l]) {
									t.Fatalf("B=%d lane %d: final memory diverged from scalar", B, l)
								}
							}
							// And against the public Run path (the B=1 wrapper).
							runMem := inputs[0].Clone()
							runRes, err := s.Run(runMem)
							if err != nil {
								t.Fatalf("B=%d: Run: %v", B, err)
							}
							if !reflect.DeepEqual(runRes, refResults[0]) || !reflect.DeepEqual(runMem, refMems[0]) {
								t.Fatalf("B=%d: Run diverged from scalar on lane 0", B)
							}
						}
					})
				}
			}
		})
	}
}

// corruptStoreValues rebinds the value operand of every store context
// word to a constant, the binding-fault class the oracle's fault
// injection uses: control flow is untouched, so runs terminate and only
// memory diverges.
func corruptStoreValues(prog *asm.Program, v int32) {
	for ti := range prog.Tiles {
		for si := range prog.Tiles[ti].Segments {
			instrs := prog.Tiles[ti].Segments[si].Instrs
			for ii := range instrs {
				if instrs[ii].Kind == isa.KOp && instrs[ii].Op == cdfg.OpStore {
					instrs[ii].Srcs[1] = isa.Const(v)
				}
			}
		}
	}
}

// TestBatchVerifiedMismatchTruncation checks the batched verifier's
// divergence behavior against a hand-computed scalar reference: each
// lane of RunBatchVerified on a store-corrupted program must report a
// *DivergenceError with the same mismatches as the scalar interpreter
// diffed against the CDFG reference, truncated to WithMaxMismatches but
// with the full Total.
func TestBatchVerifiedMismatchTruncation(t *testing.T) {
	k, err := kernels.ByName("FIR")
	if err != nil {
		t.Fatal(err)
	}
	prog := assembleCell(t, k, oracle.ModeCAB, arch.HOM64)
	corruptStoreValues(prog, 0x5aa5a5)

	const cap = 2
	s, err := sim.New(prog, sim.WithMaxMismatches(cap))
	if err != nil {
		t.Fatal(err)
	}
	const B = 3
	initials := make([]cdfg.Memory, B)
	wants := make([]*sim.DivergenceError, B)
	for l := range initials {
		initials[l] = laneMemory(k.Init(), l)
		// Scalar reference divergence, truncated by hand.
		ref := initials[l].Clone()
		if _, err := cdfg.Interp(prog.Graph, ref); err != nil {
			t.Fatal(err)
		}
		got := initials[l].Clone()
		res, err := s.RunScalar(got)
		if err != nil {
			t.Fatal(err)
		}
		want := &sim.DivergenceError{Kernel: prog.Graph.Name, Config: prog.Grid.Name, Cycles: res.Cycles}
		for i := range ref {
			if ref[i] != got[i] {
				want.Total++
				if len(want.Mismatches) < cap {
					want.Mismatches = append(want.Mismatches, sim.Mismatch{Addr: i, Ref: ref[i], Got: got[i]})
				}
			}
		}
		if want.Total <= cap {
			t.Fatalf("lane %d: corruption produced only %d mismatches, need > %d to see truncation", l, want.Total, cap)
		}
		wants[l] = want
	}

	_, _, mems, err := s.Engine().RunBatchVerified(initials)
	if err == nil {
		t.Fatal("RunBatchVerified on corrupted program did not fail")
	}
	var be *sim.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error is %T, want *sim.BatchError", err)
	}
	if len(be.Errs) != B {
		t.Fatalf("BatchError has %d lanes, want %d", len(be.Errs), B)
	}
	// errors.As must surface a lane's DivergenceError through the batch.
	var div *sim.DivergenceError
	if !errors.As(err, &div) {
		t.Fatal("errors.As found no *DivergenceError inside the BatchError")
	}
	for l := 0; l < B; l++ {
		if mems[l] != nil {
			t.Fatalf("lane %d: diverged lane returned a verified memory", l)
		}
		var laneDiv *sim.DivergenceError
		if !errors.As(be.Errs[l], &laneDiv) {
			t.Fatalf("lane %d: error is %T, want *DivergenceError", l, be.Errs[l])
		}
		if !reflect.DeepEqual(laneDiv, wants[l]) {
			t.Fatalf("lane %d: divergence differs from scalar reference\n got %+v\nwant %+v", l, laneDiv, wants[l])
		}
		if len(laneDiv.Mismatches) != cap {
			t.Fatalf("lane %d: recorded %d mismatches, want cap %d", l, len(laneDiv.Mismatches), cap)
		}
	}
}
