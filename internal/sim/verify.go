package sim

import (
	"fmt"
	"strings"

	"repro/internal/cdfg"
)

// DefaultMaxMismatches is the default cap on how many divergent words a
// DivergenceError records; override per simulator with WithMaxMismatches.
const DefaultMaxMismatches = 16

// Mismatch is one divergent data-memory word.
type Mismatch struct {
	Addr int
	Ref  int32 // reference interpreter value
	Got  int32 // simulated CGRA value
}

// DivergenceError reports that a simulated execution produced a final
// data memory different from the CDFG reference interpreter — a mapping,
// assembler or simulator bug. It records every mismatched word up to the
// simulator's cap so differential harnesses (internal/oracle) can classify
// and shrink failures with errors.As instead of string matching.
type DivergenceError struct {
	// Kernel is the graph name; Config names the grid configuration.
	Kernel string
	Config string
	// Mismatches holds the first divergent words in address order, capped
	// by the simulator's mismatch limit; Total counts all of them.
	Mismatches []Mismatch
	Total      int
	// Cycles is the simulated execution time of the divergent run.
	Cycles int64
}

// Error keeps the pre-typed string form for the first mismatch so callers
// that matched on the message keep working, and appends the remainder.
func (e *DivergenceError) Error() string {
	var sb strings.Builder
	m := e.Mismatches[0]
	fmt.Fprintf(&sb, "sim: memory mismatch for %q at word %d: interpreter %d, CGRA %d",
		e.Kernel, m.Addr, m.Ref, m.Got)
	if e.Total > 1 {
		fmt.Fprintf(&sb, " (+%d more divergent words)", e.Total-1)
	}
	return sb.String()
}

// RunVerified executes the program on a copy of the initial memory and
// cross-checks the final data memory against the CDFG reference
// interpreter run on another copy. It returns the simulation result, the
// interpreter trace (useful as an execution profile), and the verified
// final memory. Any divergence is a mapping or simulator bug and is
// returned as a *DivergenceError recording up to the simulator's mismatch
// cap (see WithMaxMismatches).
func (s *Sim) RunVerified(initial cdfg.Memory) (*Result, *cdfg.Trace, cdfg.Memory, error) {
	ref := initial.Clone()
	tr, err := cdfg.Interp(s.prog.Graph, ref)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("sim: reference interpretation: %w", err)
	}
	got := initial.Clone()
	res, err := s.Run(got)
	if err != nil {
		return res, tr, nil, err
	}
	var div *DivergenceError
	for i := range ref {
		if ref[i] != got[i] {
			if div == nil {
				div = &DivergenceError{
					Kernel: s.prog.Graph.Name,
					Config: s.prog.Grid.Name,
					Cycles: res.Cycles,
				}
			}
			div.Total++
			if len(div.Mismatches) < s.maxMismatches {
				div.Mismatches = append(div.Mismatches, Mismatch{Addr: i, Ref: ref[i], Got: got[i]})
			}
		}
	}
	if div != nil {
		return res, tr, nil, div
	}
	return res, tr, got, nil
}
