package sim

import (
	"fmt"

	"repro/internal/cdfg"
)

// RunVerified executes the program on a copy of the initial memory and
// cross-checks the final data memory against the CDFG reference
// interpreter run on another copy. It returns the simulation result, the
// interpreter trace (useful as an execution profile), and the verified
// final memory. Any divergence is a mapping or simulator bug and is
// returned as an error.
func (s *Sim) RunVerified(initial cdfg.Memory) (*Result, *cdfg.Trace, cdfg.Memory, error) {
	ref := initial.Clone()
	tr, err := cdfg.Interp(s.prog.Graph, ref)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("sim: reference interpretation: %w", err)
	}
	got := initial.Clone()
	res, err := s.Run(got)
	if err != nil {
		return res, tr, nil, err
	}
	for i := range ref {
		if ref[i] != got[i] {
			return res, tr, nil, fmt.Errorf("sim: memory mismatch for %q at word %d: interpreter %d, CGRA %d",
				s.prog.Graph.Name, i, ref[i], got[i])
		}
	}
	return res, tr, got, nil
}
