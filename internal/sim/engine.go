// Batched struct-of-arrays execution engine.
//
// The scalar interpreter in sim.go re-decodes each context word every
// cycle: per-operand switch dispatch, per-tile counter increments, and a
// map-backed interconnect model. The engine in this file lowers the
// expanded per-cycle instruction grid once into flat cycle-major op
// tables with fully resolved operand indices (the struct-of-arrays
// "lowered" form below, published on the program memo next to the
// decoded contexts), and then executes B independent input sets per
// bitstream in one pass: the batch dimension is the innermost loop, so
// decode, context fetch, stall analysis and branch resolution are
// amortized across all lanes that follow the same control path.
//
// Equivalence with the scalar interpreter is a hard contract, not a
// goal: results, cycle counts, per-tile activity counters, the obs
// event stream, and error behavior must be bit-identical (see
// batch_diff_test.go and FuzzBatchVsScalar). Two design decisions make
// that tractable:
//
//   - Activity counters are static per (block, tile): every TileCounters
//     field except the run totals is a pure function of the context
//     words, so the engine precomputes one table per block and
//     reconstructs a lane's counters as execCount × table at the end.
//     The inner loop does no counter work at all.
//
//   - Error behavior is delegated to the scalar interpreter. Lowering
//     marks every op the scalar path would reject (bad operand kinds,
//     out-of-range registers, unknown opcodes) as a fault op, and
//     memory accesses are bounds-checked per lane. A faulted lane is
//     removed from its group at the block boundary and re-run from its
//     initial memory by the scalar interpreter, which reproduces the
//     exact partial result, counters, and error of a direct Run. Fault
//     lanes are rare (a valid assembled program has none), so the
//     fallback costs nothing on the hot path.
package sim

import (
	"errors"
	"fmt"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/cdfg"
	"repro/internal/isa"
	"repro/internal/obs"
)

// Lowered op kinds. Fault marks an op the scalar interpreter would
// reject (or panic on); any lane executing one is re-run scalar.
const (
	lkALU uint8 = iota
	lkMove
	lkLoad
	lkStore
	lkBr
	lkFault
)

// Lowered operand kinds: a constant value, a flat register-file index,
// or a tile whose output register is read (self and neighbor reads both
// lower to lsOut — the torus is resolved at predecode time).
const (
	lsConst uint8 = iota
	lsReg
	lsOut
)

// lblock is one basic block in lowered form: cycle-major op tables plus
// the static per-tile activity of one execution.
type lblock struct {
	bb     cdfg.BBID
	name   string
	cycles int

	// cyc[c] .. cyc[c+1] index the ops issued in cycle c.
	cyc []int32
	// accs[c] counts the data-memory accesses issued in cycle c.
	accs []int16

	kind []uint8
	op   []cdfg.Opcode
	tile []int32
	nsrc []uint8
	// res marks ops that commit an output-register value (moves, ALU ops,
	// loads); wb is the flat register-file index of a writeback, -1 if
	// none.
	res []bool
	wb  []int32
	// mslot is the op's slot among its cycle's memory accesses, -1 for
	// non-memory ops.
	mslot []int32

	srcKind [isa.MaxSrcs][]uint8
	srcIdx  [isa.MaxSrcs][]int32
	srcVal  [isa.MaxSrcs][]int32

	// static is the per-tile activity of one execution of this block.
	static []TileCounters
	// maxAcc is the largest same-cycle access count; fast marks blocks
	// that can never stall (≤ 1 access per cycle).
	maxAcc int
	fast   bool

	hasBranch bool
	succs     []cdfg.BBID
}

// lowered is the whole program in pre-decoded struct-of-arrays form.
type lowered struct {
	numTiles int
	rrf      int
	ports    int
	banks    int
	maxAcc   int
	blocks   []lblock
}

// lower pre-decodes the expanded instruction grids into the
// struct-of-arrays form. It never fails: anything the scalar
// interpreter would reject at execution time becomes a fault op.
func lower(p *asm.Program, expanded [][][]*isa.Instr) *lowered {
	grid := p.Grid
	n := grid.NumTiles()
	rrf := grid.RRFSize
	low := &lowered{
		numTiles: n, rrf: rrf,
		ports: grid.MemPorts, banks: grid.MemBanks,
		blocks: make([]lblock, len(p.Graph.Blocks)),
	}
	for bi, b := range p.Graph.Blocks {
		blockLen := p.BlockLens[bi]
		lb := &low.blocks[bi]
		lb.bb = cdfg.BBID(bi)
		lb.name = b.Name
		lb.cycles = blockLen
		lb.hasBranch = b.HasBranch()
		lb.succs = b.Succs
		lb.cyc = make([]int32, blockLen+1)
		lb.accs = make([]int16, blockLen)
		for c := 0; c < blockLen; c++ {
			lb.cyc[c] = int32(len(lb.kind))
			nacc := 0
			for t := 0; t < n; t++ {
				in := expanded[bi][t][c]
				if in == nil {
					continue
				}
				k := classifyOp(in, grid, rrf)
				lb.kind = append(lb.kind, k)
				lb.op = append(lb.op, in.Op)
				lb.tile = append(lb.tile, int32(t))
				lb.nsrc = append(lb.nsrc, uint8(in.NSrc))
				hasOut := k == lkALU || k == lkMove || k == lkLoad
				lb.res = append(lb.res, hasOut)
				wb := int32(-1)
				if hasOut && in.WB {
					wb = int32(t*rrf + int(in.WReg))
				}
				lb.wb = append(lb.wb, wb)
				for i := 0; i < isa.MaxSrcs; i++ {
					sk, si, sv := lsConst, int32(0), int32(0)
					if i < in.NSrc {
						switch src := in.Srcs[i]; src.Kind {
						case isa.SrcConst:
							sv = src.Val
						case isa.SrcReg:
							sk, si = lsReg, int32(t*rrf+int(src.Reg))
						case isa.SrcSelf:
							sk, si = lsOut, int32(t)
						case isa.SrcNbr:
							sk, si = lsOut, int32(grid.Neighbors(arch.TileID(t))[src.Dir])
						}
					}
					lb.srcKind[i] = append(lb.srcKind[i], sk)
					lb.srcIdx[i] = append(lb.srcIdx[i], si)
					lb.srcVal[i] = append(lb.srcVal[i], sv)
				}
				mslot := int32(-1)
				if k == lkLoad || k == lkStore {
					mslot = int32(nacc)
					nacc++
				}
				lb.mslot = append(lb.mslot, mslot)
			}
			lb.accs[c] = int16(nacc)
			if nacc > lb.maxAcc {
				lb.maxAcc = nacc
			}
		}
		lb.cyc[blockLen] = int32(len(lb.kind))
		lb.fast = lb.maxAcc <= 1
		if lb.maxAcc > low.maxAcc {
			low.maxAcc = lb.maxAcc
		}
		lb.static = staticCounters(expanded[bi], blockLen, n)
	}
	return low
}

// classifyOp maps an instruction to its lowered kind, checking every
// condition under which the scalar interpreter would fail the op at
// execution time. SrcNbr direction and writeback-register overflows
// would panic the scalar path; they fault here so the fallback
// reproduces that behavior instead of the engine corrupting state.
func classifyOp(in *isa.Instr, grid *arch.Grid, rrf int) uint8 {
	for i := 0; i < in.NSrc; i++ {
		switch src := in.Srcs[i]; src.Kind {
		case isa.SrcConst, isa.SrcSelf:
		case isa.SrcReg:
			if int(src.Reg) >= rrf {
				return lkFault
			}
		case isa.SrcNbr:
			if int(src.Dir) >= len(grid.Neighbors(0)) {
				return lkFault
			}
		default:
			return lkFault
		}
	}
	var k uint8
	switch {
	case in.Kind == isa.KMove:
		if in.NSrc < 1 {
			return lkFault
		}
		k = lkMove
	case in.Op == cdfg.OpLoad:
		if in.NSrc < 1 {
			return lkFault
		}
		k = lkLoad
	case in.Op == cdfg.OpStore:
		if in.NSrc < 2 {
			return lkFault
		}
		k = lkStore
	case in.Op == cdfg.OpBr:
		if in.NSrc < 1 {
			return lkFault
		}
		k = lkBr
	default:
		var zeros [isa.MaxSrcs]int32
		na := in.Op.NumArgs()
		if na > isa.MaxSrcs || in.NSrc < na {
			return lkFault
		}
		if _, err := cdfg.EvalOp(in.Op, zeros[:na]); err != nil {
			return lkFault
		}
		k = lkALU
	}
	if (k == lkALU || k == lkMove || k == lkLoad) && in.WB && int(in.WReg) >= rrf {
		return lkFault
	}
	return k
}

// staticCounters replays the scalar interpreter's counting rules over
// the expanded grid of one block: every TileCounters field is a pure
// function of the context words, so one execution's activity is a
// constant table.
func staticCounters(grid [][]*isa.Instr, blockLen, n int) []TileCounters {
	st := make([]TileCounters, n)
	for t := 0; t < n; t++ {
		tc := &st[t]
		prevIdle := false
		for c := 0; c < blockLen; c++ {
			in := grid[t][c]
			if in == nil {
				if !prevIdle {
					tc.Fetches++
					tc.PnopFetches++
				}
				prevIdle = true
				tc.IdleCycles++
				continue
			}
			prevIdle = false
			tc.Fetches++
			for i := 0; i < in.NSrc; i++ {
				switch in.Srcs[i].Kind {
				case isa.SrcConst:
					tc.CRFReads++
				case isa.SrcReg:
					tc.RFReads++
				}
			}
			hasOut := false
			switch {
			case in.Kind == isa.KMove:
				tc.MoveCycles++
				hasOut = true
			case in.Op == cdfg.OpLoad:
				tc.OpCycles++
				tc.MemOps++
				tc.MemReads++
				hasOut = true
			case in.Op == cdfg.OpStore:
				tc.OpCycles++
				tc.MemOps++
				tc.MemWrites++
			case in.Op == cdfg.OpBr:
				tc.OpCycles++
				tc.BranchOps++
			default:
				tc.OpCycles++
				tc.ALUOps++
				hasOut = true
			}
			if hasOut && in.WB {
				tc.RFWrites++
			}
		}
	}
	return st
}

// addScaled accumulates k executions' worth of src into dst.
func addScaled(dst, src *TileCounters, k int64) {
	dst.Fetches += src.Fetches * k
	dst.OpCycles += src.OpCycles * k
	dst.MoveCycles += src.MoveCycles * k
	dst.IdleCycles += src.IdleCycles * k
	dst.ALUOps += src.ALUOps * k
	dst.MemOps += src.MemOps * k
	dst.BranchOps += src.BranchOps * k
	dst.PnopFetches += src.PnopFetches * k
	dst.RFReads += src.RFReads * k
	dst.RFWrites += src.RFWrites * k
	dst.CRFReads += src.CRFReads * k
	dst.MemReads += src.MemReads * k
	dst.MemWrites += src.MemWrites * k
}

// Engine executes a program on batches of independent input memories.
// It shares the simulator's options (mismatch cap, obs recorder) and the
// program's memoized lowered form; constructing one is cheap.
type Engine struct {
	s *Sim
}

// NewEngine prepares a batched engine for the program.
func NewEngine(p *asm.Program, opts ...Option) (*Engine, error) {
	s, err := New(p, opts...)
	if err != nil {
		return nil, err
	}
	return &Engine{s: s}, nil
}

// Engine returns a batched execution engine sharing this simulator's
// program, options, and recorder.
func (s *Sim) Engine() *Engine { return &Engine{s: s} }

// BatchError aggregates per-lane failures of a RunBatch. Errs always has
// one entry per lane; nil entries are lanes that completed. Unwrap
// exposes the failed lanes so errors.As finds lane errors (for example
// *DivergenceError from RunBatchVerified).
type BatchError struct {
	Errs []error
}

// Error summarizes the failed lanes around the first failure.
func (e *BatchError) Error() string {
	failed, first := 0, -1
	for i, err := range e.Errs {
		if err != nil {
			failed++
			if first < 0 {
				first = i
			}
		}
	}
	return fmt.Sprintf("sim: %d of %d lanes failed; lane %d: %v", failed, len(e.Errs), first, e.Errs[first])
}

// Unwrap returns the non-nil lane errors.
func (e *BatchError) Unwrap() []error {
	errs := make([]error, 0, len(e.Errs))
	for _, err := range e.Errs {
		if err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

// errLaneFault is the internal marker for a lane the engine abandons to
// the scalar fallback; it never escapes RunBatch.
var errLaneFault = errors.New("sim: lane fault")

// laneEvent is one buffered block-timeline event; lanes interleave in
// the engine, so events are buffered per lane and flushed in order when
// the lane finishes.
type laneEvent struct {
	name  string
	start int64
	dur   int64
}

// batchRun is the mutable state of one RunBatch: all architectural
// state is a flat array with the lane index innermost ([tile*B+lane],
// [reg*B+lane]) so the per-op inner loops are contiguous.
type batchRun struct {
	s *Sim
	B int

	mems    []cdfg.Memory
	clones  []cdfg.Memory
	results []*Result
	errs    []error

	out, nout []int32 // [tile*B+lane] output registers (pre/post cycle)
	rf        []int32 // [flatReg*B+lane] register files
	cycles    []int64
	stalls    []int64
	execs     []int64 // [block*B+lane]
	branch    []bool
	fault     []error
	fallback  []int32

	s0, s1, s2   []int32   // per-operand-position constant scratch
	maddr, mval  []int32   // [slot*B+lane] memory address/value scratch
	maddrV, mvalV [][]int32 // per-slot resolved views for the current cycle
	bankCnt      []int32
	banksTouched []int32

	tracing   bool
	evBuf     [][]laneEvent
	evDropped []int64
	evStart   []int64

	fastHits, totalHits int64
}

// RunBatch executes the program once per input memory (each modified in
// place), returning one Result per lane in input order. Lanes are
// independent: the results, counters, and errors are bit-identical to B
// separate Run calls. Per-lane failures are aggregated in a *BatchError
// whose Errs slice parallels the results (a lane's partial Result is
// still returned, exactly as Run returns one next to its error). An
// empty batch returns an empty result slice.
func (e *Engine) RunBatch(mems []cdfg.Memory) ([]*Result, error) {
	s := e.s
	B := len(mems)
	results := make([]*Result, B)
	if B == 0 {
		return results, nil
	}
	low := s.low
	n := low.numTiles
	r := &batchRun{
		s: s, B: B,
		mems:    mems,
		clones:  make([]cdfg.Memory, B),
		results: results,
		errs:    make([]error, B),
		out:     make([]int32, n*B),
		nout:    make([]int32, n*B),
		rf:      make([]int32, n*low.rrf*B),
		cycles:  make([]int64, B),
		stalls:  make([]int64, B),
		execs:   make([]int64, len(low.blocks)*B),
		branch:  make([]bool, B),
		fault:   make([]error, B),
		s0:      make([]int32, B),
		s1:      make([]int32, B),
		s2:      make([]int32, B),
		tracing: s.obs.Enabled(),
	}
	for l := range mems {
		r.clones[l] = mems[l].Clone()
	}
	if low.maxAcc > 0 {
		r.maddr = make([]int32, low.maxAcc*B)
		r.mval = make([]int32, low.maxAcc*B)
		r.maddrV = make([][]int32, low.maxAcc)
		r.mvalV = make([][]int32, low.maxAcc)
		r.bankCnt = make([]int32, low.banks)
		r.banksTouched = make([]int32, 0, low.maxAcc)
	}
	if r.tracing {
		r.evBuf = make([][]laneEvent, B)
		r.evDropped = make([]int64, B)
		r.evStart = make([]int64, B)
	}
	r.run()
	// Scalar fallback: re-run faulted lanes from their initial memory
	// with the reference interpreter, which reproduces the exact partial
	// result, event stream, and error of a direct Run.
	for _, l := range r.fallback {
		res, err := s.runScalar(r.clones[l], int(l))
		copy(mems[l], r.clones[l])
		results[l] = res
		r.errs[l] = err
	}
	if s.obs.Enabled() {
		s.obs.Counter("sim.engine.batches").Inc()
		s.obs.Counter("sim.engine.lanes").Add(int64(B))
		s.obs.Counter("sim.engine.block_execs").Add(r.totalHits)
		s.obs.Counter("sim.engine.fastpath_block_execs").Add(r.fastHits)
		if len(r.fallback) > 0 {
			s.obs.Counter("sim.engine.fallback_lanes").Add(int64(len(r.fallback)))
		}
	}
	for _, err := range r.errs {
		if err != nil {
			return results, &BatchError{Errs: r.errs}
		}
	}
	return results, nil
}

// laneGroup is a set of lanes at the same basic block. Lanes that
// diverge at a branch split into two groups; each group owns its lane
// slice exclusively.
type laneGroup struct {
	bb    cdfg.BBID
	lanes []int32
}

// run executes all lanes to completion (or fault) with a group
// worklist.
func (r *batchRun) run() {
	low := r.s.low
	lanes := make([]int32, r.B)
	for i := range lanes {
		lanes[i] = int32(i)
	}
	stack := []laneGroup{{r.s.prog.Graph.Entry, lanes}}
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		bb, lns := g.bb, g.lanes
		for len(lns) > 0 {
			lns = r.gateMaxCycles(lns)
			if len(lns) == 0 {
				break
			}
			lb := &low.blocks[bb]
			for _, l := range lns {
				r.execs[int(bb)*r.B+int(l)]++
			}
			r.execBlock(lb, lns)
			lns = r.dropFaulted(lns)
			if len(lns) == 0 {
				break
			}
			switch {
			case lb.hasBranch:
				taken := r.branch[lns[0]]
				uniform := true
				for _, l := range lns[1:] {
					if r.branch[l] != taken {
						uniform = false
						break
					}
				}
				if uniform {
					if taken {
						bb = lb.succs[0]
					} else {
						bb = lb.succs[1]
					}
					continue
				}
				var tk, nt []int32
				for _, l := range lns {
					if r.branch[l] {
						tk = append(tk, l)
					} else {
						nt = append(nt, l)
					}
				}
				stack = append(stack, laneGroup{lb.succs[1], nt})
				bb, lns = lb.succs[0], tk
			case len(lb.succs) == 1:
				bb = lb.succs[0]
			default:
				for _, l := range lns {
					r.finalizeLane(l, nil)
				}
				lns = nil
			}
		}
	}
}

// gateMaxCycles applies the scalar interpreter's loop-top runaway check:
// lanes over the limit finalize with the same error and partial result.
func (r *batchRun) gateMaxCycles(lanes []int32) []int32 {
	over := false
	for _, l := range lanes {
		if r.cycles[l] > MaxCycles {
			over = true
			break
		}
	}
	if !over {
		return lanes
	}
	keep := lanes[:0]
	for _, l := range lanes {
		if r.cycles[l] > MaxCycles {
			r.finalizeLane(l, fmt.Errorf("sim: exceeded %d cycles in %q", MaxCycles, r.s.prog.Graph.Name))
		} else {
			keep = append(keep, l)
		}
	}
	return keep
}

// dropFaulted removes faulted lanes from the group and queues them for
// the scalar fallback.
func (r *batchRun) dropFaulted(lanes []int32) []int32 {
	faulted := false
	for _, l := range lanes {
		if r.fault[l] != nil {
			faulted = true
			break
		}
	}
	if !faulted {
		return lanes
	}
	keep := lanes[:0]
	for _, l := range lanes {
		if r.fault[l] != nil {
			r.fallback = append(r.fallback, l)
		} else {
			keep = append(keep, l)
		}
	}
	return keep
}

// gather resolves one operand of one op for the whole group: constants
// fill the scratch buffer, register and output-register operands return
// a direct view into the flat state (stable until the commit phase).
func (r *batchRun) gather(lb *lblock, si, oi int, lanes []int32, scratch []int32) []int32 {
	B := r.B
	switch lb.srcKind[si][oi] {
	case lsOut:
		i := int(lb.srcIdx[si][oi])
		return r.out[i*B : i*B+B]
	case lsReg:
		i := int(lb.srcIdx[si][oi])
		return r.rf[i*B : i*B+B]
	default:
		v := lb.srcVal[si][oi]
		for _, l := range lanes {
			scratch[l] = v
		}
		return scratch
	}
}

// execBlock runs one basic block for one lane group, cycle by cycle:
// phase 1 issues ops (reads observe pre-cycle state), phase 2 services
// memory (per-lane bank-conflict stalls, loads before stores), phase 3
// commits output registers and writebacks.
func (r *batchRun) execBlock(lb *lblock, lanes []int32) {
	B := r.B
	if r.tracing {
		for _, l := range lanes {
			r.evStart[l] = r.cycles[l]
		}
	}
	if lb.hasBranch {
		for _, l := range lanes {
			r.branch[l] = false
		}
	}
	for c := 0; c < lb.cycles; c++ {
		lo, hi := int(lb.cyc[c]), int(lb.cyc[c+1])
		for oi := lo; oi < hi; oi++ {
			t := int(lb.tile[oi])
			switch lb.kind[oi] {
			case lkALU:
				a := r.gather(lb, 0, oi, lanes, r.s0)
				var bv, cv []int32
				if lb.nsrc[oi] > 1 {
					bv = r.gather(lb, 1, oi, lanes, r.s1)
				}
				if lb.nsrc[oi] > 2 {
					cv = r.gather(lb, 2, oi, lanes, r.s2)
				}
				dst := r.nout[t*B : t*B+B]
				if !aluEval(lb.op[oi], lanes, dst, a, bv, cv) {
					for _, l := range lanes {
						if r.fault[l] == nil {
							r.fault[l] = errLaneFault
						}
					}
				}
			case lkMove:
				a := r.gather(lb, 0, oi, lanes, r.s0)
				dst := r.nout[t*B : t*B+B]
				for _, l := range lanes {
					dst[l] = a[l]
				}
			case lkLoad:
				slot := int(lb.mslot[oi])
				r.maddrV[slot] = r.gather(lb, 0, oi, lanes, r.maddr[slot*B:slot*B+B])
			case lkStore:
				slot := int(lb.mslot[oi])
				r.maddrV[slot] = r.gather(lb, 0, oi, lanes, r.maddr[slot*B:slot*B+B])
				r.mvalV[slot] = r.gather(lb, 1, oi, lanes, r.mval[slot*B:slot*B+B])
			case lkBr:
				a := r.gather(lb, 0, oi, lanes, r.s0)
				for _, l := range lanes {
					r.branch[l] = a[l] != 0
				}
			default: // lkFault
				for _, l := range lanes {
					if r.fault[l] == nil {
						r.fault[l] = errLaneFault
					}
				}
			}
		}
		if na := int(lb.accs[c]); na > 0 {
			if na > 1 {
				for _, l := range lanes {
					if st := r.laneStalls(na, int(l)); st > 0 {
						r.stalls[l] += st
						r.cycles[l] += st
					}
				}
			}
			for oi := lo; oi < hi; oi++ {
				if lb.kind[oi] != lkLoad {
					continue
				}
				t := int(lb.tile[oi])
				av := r.maddrV[int(lb.mslot[oi])]
				dst := r.nout[t*B : t*B+B]
				for _, l := range lanes {
					if r.fault[l] != nil {
						continue
					}
					m := r.mems[l]
					a := av[l]
					if a < 0 || int(a) >= len(m) {
						r.fault[l] = errLaneFault
						continue
					}
					dst[l] = m[a]
				}
			}
			for oi := lo; oi < hi; oi++ {
				if lb.kind[oi] != lkStore {
					continue
				}
				slot := int(lb.mslot[oi])
				av, vv := r.maddrV[slot], r.mvalV[slot]
				for _, l := range lanes {
					if r.fault[l] != nil {
						continue
					}
					m := r.mems[l]
					a := av[l]
					if a < 0 || int(a) >= len(m) {
						r.fault[l] = errLaneFault
						continue
					}
					m[a] = vv[l]
				}
			}
		}
		for oi := lo; oi < hi; oi++ {
			if !lb.res[oi] {
				continue
			}
			t := int(lb.tile[oi])
			nv := r.nout[t*B : t*B+B]
			ov := r.out[t*B : t*B+B]
			if w := lb.wb[oi]; w >= 0 {
				rv := r.rf[int(w)*B : int(w)*B+B]
				for _, l := range lanes {
					v := nv[l]
					ov[l] = v
					rv[l] = v
				}
			} else {
				for _, l := range lanes {
					ov[l] = nv[l]
				}
			}
		}
	}
	nl := int64(len(lanes))
	r.totalHits += nl
	if lb.fast {
		r.fastHits += nl
	}
	for _, l := range lanes {
		r.cycles[l] += int64(lb.cycles)
	}
	if r.tracing {
		for _, l := range lanes {
			if len(r.evBuf[l]) < blockEventCap {
				r.evBuf[l] = append(r.evBuf[l], laneEvent{lb.name, r.evStart[l], r.cycles[l] - r.evStart[l]})
			} else {
				r.evDropped[l]++
			}
		}
	}
}

// laneStalls computes one lane's global stall cycles for a cycle with na
// same-cycle accesses, replicating interconnect.Model.ServiceCycles with
// a flat bank-count scratch instead of a map.
func (r *batchRun) laneStalls(na, l int) int64 {
	low := r.s.low
	banks := int32(low.banks)
	maxBank := int32(0)
	touched := r.banksTouched[:0]
	for j := 0; j < na; j++ {
		a := r.maddrV[j][l]
		b := a % banks
		if b < 0 {
			b += banks
		}
		cnt := r.bankCnt[b] + 1
		r.bankCnt[b] = cnt
		if cnt == 1 {
			touched = append(touched, b)
		}
		if cnt > maxBank {
			maxBank = cnt
		}
	}
	for _, b := range touched {
		r.bankCnt[b] = 0
	}
	r.banksTouched = touched[:0]
	need := (na + low.ports - 1) / low.ports
	if int(maxBank) > need {
		need = int(maxBank)
	}
	return int64(need - 1)
}

// finalizeLane builds a lane's Result from the static block tables,
// flushes its buffered block timeline, and (on clean exit) publishes the
// run counters — the same stream a scalar Run emits.
func (r *batchRun) finalizeLane(l int32, runErr error) {
	low, B := r.s.low, r.B
	n := low.numTiles
	res := &Result{
		BlockExecs:  map[cdfg.BBID]int64{},
		Tiles:       make([]TileCounters, n),
		ConfigWords: r.s.prog.TotalWords(),
		Cycles:      r.cycles[l],
		StallCycles: r.stalls[l],
	}
	for bi := range low.blocks {
		cnt := r.execs[bi*B+int(l)]
		if cnt == 0 {
			continue
		}
		res.BlockExecs[cdfg.BBID(bi)] = cnt
		st := low.blocks[bi].static
		for t := 0; t < n; t++ {
			addScaled(&res.Tiles[t], &st[t], cnt)
		}
	}
	r.results[l] = res
	r.errs[l] = runErr
	if r.tracing {
		for _, ev := range r.evBuf[l] {
			r.s.obs.EmitEvent(obs.Event{
				Name: ev.name, Cat: "sim.block", Ph: obs.PhaseComplete,
				TS: float64(ev.start), Dur: float64(ev.dur),
				PID: obs.PIDSim, TID: int(l),
			})
		}
	}
	if runErr == nil {
		var dropped int64
		if r.tracing {
			dropped = r.evDropped[l]
		}
		r.s.recordRun(res, dropped)
	}
}

// aluEval applies one lowered ALU op across the group's lanes. The
// cases mirror cdfg.EvalOp exactly; an unhandled opcode returns false
// (the lowering already routes those to the fault path, this is a
// backstop).
func aluEval(op cdfg.Opcode, lanes []int32, dst, a, b, c []int32) bool {
	switch op {
	case cdfg.OpAdd:
		for _, l := range lanes {
			dst[l] = a[l] + b[l]
		}
	case cdfg.OpSub:
		for _, l := range lanes {
			dst[l] = a[l] - b[l]
		}
	case cdfg.OpMul:
		for _, l := range lanes {
			dst[l] = a[l] * b[l]
		}
	case cdfg.OpMulH:
		for _, l := range lanes {
			dst[l] = int32((int64(a[l]) * int64(b[l])) >> 32)
		}
	case cdfg.OpAnd:
		for _, l := range lanes {
			dst[l] = a[l] & b[l]
		}
	case cdfg.OpOr:
		for _, l := range lanes {
			dst[l] = a[l] | b[l]
		}
	case cdfg.OpXor:
		for _, l := range lanes {
			dst[l] = a[l] ^ b[l]
		}
	case cdfg.OpShl:
		for _, l := range lanes {
			dst[l] = a[l] << (uint32(b[l]) & 31)
		}
	case cdfg.OpShr:
		for _, l := range lanes {
			dst[l] = int32(uint32(a[l]) >> (uint32(b[l]) & 31))
		}
	case cdfg.OpSra:
		for _, l := range lanes {
			dst[l] = a[l] >> (uint32(b[l]) & 31)
		}
	case cdfg.OpLt:
		for _, l := range lanes {
			dst[l] = b2i32(a[l] < b[l])
		}
	case cdfg.OpLe:
		for _, l := range lanes {
			dst[l] = b2i32(a[l] <= b[l])
		}
	case cdfg.OpEq:
		for _, l := range lanes {
			dst[l] = b2i32(a[l] == b[l])
		}
	case cdfg.OpNe:
		for _, l := range lanes {
			dst[l] = b2i32(a[l] != b[l])
		}
	case cdfg.OpGe:
		for _, l := range lanes {
			dst[l] = b2i32(a[l] >= b[l])
		}
	case cdfg.OpGt:
		for _, l := range lanes {
			dst[l] = b2i32(a[l] > b[l])
		}
	case cdfg.OpMin:
		for _, l := range lanes {
			if a[l] < b[l] {
				dst[l] = a[l]
			} else {
				dst[l] = b[l]
			}
		}
	case cdfg.OpMax:
		for _, l := range lanes {
			if a[l] > b[l] {
				dst[l] = a[l]
			} else {
				dst[l] = b[l]
			}
		}
	case cdfg.OpAbs:
		for _, l := range lanes {
			if a[l] < 0 {
				dst[l] = -a[l]
			} else {
				dst[l] = a[l]
			}
		}
	case cdfg.OpNeg:
		for _, l := range lanes {
			dst[l] = -a[l]
		}
	case cdfg.OpSelect:
		for _, l := range lanes {
			if a[l] != 0 {
				dst[l] = b[l]
			} else {
				dst[l] = c[l]
			}
		}
	case cdfg.OpMove:
		for _, l := range lanes {
			dst[l] = a[l]
		}
	default:
		return false
	}
	return true
}

func b2i32(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// RunBatchVerified is the batched form of RunVerified: every lane's
// final memory is cross-checked against the CDFG reference interpreter
// on its own copy of the initial memory. It returns per-lane results,
// interpreter traces, and verified final memories; a lane that diverges
// (or fails) has a nil memory and its *DivergenceError (or run error)
// in the returned *BatchError, which parallels the lanes.
func (e *Engine) RunBatchVerified(initials []cdfg.Memory) ([]*Result, []*cdfg.Trace, []cdfg.Memory, error) {
	s := e.s
	B := len(initials)
	trs := make([]*cdfg.Trace, B)
	mems := make([]cdfg.Memory, B)
	refs := make([]cdfg.Memory, B)
	errs := make([]error, B)
	got := make([]cdfg.Memory, B)
	for l := range initials {
		refs[l] = initials[l].Clone()
		got[l] = initials[l].Clone()
	}
	anyErr := false
	for l := range refs {
		tr, err := cdfg.Interp(s.prog.Graph, refs[l])
		if err != nil {
			errs[l] = fmt.Errorf("sim: reference interpretation: %w", err)
			anyErr = true
			continue
		}
		trs[l] = tr
	}
	results, runErr := e.RunBatch(got)
	var be *BatchError
	if runErr != nil && !errors.As(runErr, &be) {
		return results, trs, mems, runErr
	}
	for l := 0; l < B; l++ {
		if errs[l] != nil {
			results[l] = nil // the scalar path never simulates after an interp failure
			continue
		}
		if be != nil && be.Errs[l] != nil {
			errs[l] = be.Errs[l]
			anyErr = true
			continue
		}
		var div *DivergenceError
		for i := range refs[l] {
			if refs[l][i] != got[l][i] {
				if div == nil {
					div = &DivergenceError{
						Kernel: s.prog.Graph.Name,
						Config: s.prog.Grid.Name,
						Cycles: results[l].Cycles,
					}
				}
				div.Total++
				if len(div.Mismatches) < s.maxMismatches {
					div.Mismatches = append(div.Mismatches, Mismatch{Addr: i, Ref: refs[l][i], Got: got[l][i]})
				}
			}
		}
		if div != nil {
			errs[l] = div
			anyErr = true
			continue
		}
		mems[l] = got[l]
	}
	if anyErr {
		return results, trs, mems, &BatchError{Errs: errs}
	}
	return results, trs, mems, nil
}
