package asm

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kernels"
)

func assemble(t *testing.T, kernel string, flow core.Flow, cfg arch.ConfigName) *Program {
	t.Helper()
	k, err := kernels.ByName(kernel)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Map(k.Build(), arch.MustGrid(cfg), core.DefaultOptions(flow))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Assemble(m)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAssembleCountsAndShape(t *testing.T) {
	p := assemble(t, "FIR", core.FlowCAB, arch.HET1)
	if len(p.Tiles) != 16 {
		t.Fatalf("tile count %d", len(p.Tiles))
	}
	if ok, tile := p.FitsMemory(); !ok {
		t.Fatalf("overflow on tile %d", tile+1)
	}
	total := 0
	for i := range p.Tiles {
		tc := &p.Tiles[i]
		if tc.Words() != len(tc.Binary) {
			t.Fatalf("tile %d words %d != binary %d", i+1, tc.Words(), len(tc.Binary))
		}
		total += tc.Words()
		// Segment cycle spans must equal the block lengths.
		for bb, seg := range tc.Segments {
			cycles := 0
			for _, in := range seg.Instrs {
				cycles += in.Cycles()
			}
			if cycles != p.BlockLens[bb] {
				t.Fatalf("tile %d block %d spans %d cycles, want %d", i+1, bb, cycles, p.BlockLens[bb])
			}
		}
	}
	if total != p.TotalWords() {
		t.Fatalf("TotalWords %d != %d", p.TotalWords(), total)
	}
	// Exactly the blocks with branches carry a branch tile.
	for bb, bt := range p.BranchTiles {
		if p.Graph.Blocks[bb].HasBranch() != (bt >= 0) {
			t.Fatalf("block %d branch tile %d inconsistent", bb, bt)
		}
	}
}

// TestBinaryRoundTrip decodes every tile's binary image back and compares
// it with the assembled instruction stream — the context-memory encoding
// is lossless.
func TestBinaryRoundTrip(t *testing.T) {
	p := assemble(t, "Convolution", core.FlowCAB, arch.HOM32)
	for i := range p.Tiles {
		tc := &p.Tiles[i]
		var want []isa.Instr
		for _, seg := range tc.Segments {
			want = append(want, seg.Instrs...)
		}
		if len(want) != len(tc.Binary) {
			t.Fatalf("tile %d: %d instrs vs %d words", i+1, len(want), len(tc.Binary))
		}
		for j, w := range tc.Binary {
			got, err := isa.Decode(w, tc.CRF)
			if err != nil {
				t.Fatalf("tile %d word %d: %v", i+1, j, err)
			}
			if got != want[j] {
				t.Fatalf("tile %d word %d: decoded %v, want %v", i+1, j, got, want[j])
			}
		}
		if tc.CRF.Len() > isa.MaxCRF {
			t.Fatalf("tile %d CRF overflow: %d", i+1, tc.CRF.Len())
		}
	}
}

// TestBinaryRoundTripAllConfigs repeats the lossless-encoding check on
// every context-memory configuration: the heterogeneous layouts change
// tile placement (and so the instruction streams), and each stream must
// still decode bit-identically against its tile's CRF.
func TestBinaryRoundTripAllConfigs(t *testing.T) {
	kinds := map[isa.Kind]int{}
	for _, cfg := range arch.ConfigNames() {
		p := assemble(t, "FIR", core.FlowCAB, cfg)
		for i := range p.Tiles {
			tc := &p.Tiles[i]
			var want []isa.Instr
			for _, seg := range tc.Segments {
				want = append(want, seg.Instrs...)
			}
			for j, w := range tc.Binary {
				got, err := isa.Decode(w, tc.CRF)
				if err != nil {
					t.Fatalf("%s tile %d word %d: %v", cfg, i+1, j, err)
				}
				if got != want[j] {
					t.Fatalf("%s tile %d word %d: decoded %v, want %v", cfg, i+1, j, got, want[j])
				}
				kinds[got.Kind]++
			}
		}
	}
	for _, k := range []isa.Kind{isa.KOp, isa.KMove, isa.KPnop} {
		if kinds[k] == 0 {
			t.Errorf("no %v words across any config; round trip untested for that kind", k)
		}
	}
}

func TestListing(t *testing.T) {
	p := assemble(t, "DCFilter", core.FlowBasic, arch.HOM64)
	l := Listing(p)
	for _, want := range []string{"program dcfilter", "tile 1", ".loop:", "pnop"} {
		if !strings.Contains(l, want) {
			t.Errorf("listing missing %q", want)
		}
	}
}

func TestAssembleRejectsBrokenMapping(t *testing.T) {
	k, _ := kernels.ByName("FIR")
	m, err := core.Map(k.Build(), arch.MustGrid(arch.HOM64), core.DefaultOptions(core.FlowBasic))
	if err != nil {
		t.Fatal(err)
	}
	m.Blocks[1].Ops[0]++ // corrupt the word accounting
	if _, err := Assemble(m); err == nil {
		t.Fatal("corrupted mapping should fail to assemble")
	}
}

func TestPnopCompression(t *testing.T) {
	// Every maximal run of empty slots must be one pnop word.
	p := assemble(t, "FIR", core.FlowBasic, arch.HOM64)
	for i := range p.Tiles {
		for _, seg := range p.Tiles[i].Segments {
			for j := 1; j < len(seg.Instrs); j++ {
				if seg.Instrs[j-1].Kind == isa.KPnop && seg.Instrs[j].Kind == isa.KPnop {
					t.Fatalf("tile %d: adjacent pnops not merged", i+1)
				}
			}
		}
	}
}
