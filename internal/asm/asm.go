// Package asm assembles a core.Mapping into per-tile context programs:
// the instruction streams loaded into each tile's context memory, with
// consecutive idle cycles folded into programmable nops (pnops) and
// per-tile constant register files populated.
package asm

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/isa"
)

// Segment is the context-memory region one tile holds for one basic block.
type Segment struct {
	BB cdfg.BBID
	// Instrs are the context words, in execution order.
	Instrs []isa.Instr
	// Cycles is the block schedule length the instructions span.
	Cycles int
}

// Words returns the context words the segment occupies.
func (s *Segment) Words() int { return len(s.Instrs) }

// TileContext is everything loaded into one tile before execution.
type TileContext struct {
	Tile arch.TileID
	// Segments are indexed by cdfg.BBID.
	Segments []Segment
	// CRF is the tile's constant register file contents.
	CRF *isa.CRF
	// Binary is the encoded context-memory image (one word per Instr,
	// segments concatenated in block order).
	Binary []uint64
}

// Words returns the total context words the tile uses.
func (t *TileContext) Words() int { return len(t.Binary) }

// Program is the fully assembled CGRA executable.
type Program struct {
	Graph *cdfg.Graph
	Grid  *arch.Grid
	Tiles []TileContext
	// BlockLens[b] is the schedule length of block b in cycles.
	BlockLens []int
	// BranchTiles[b] is the tile resolving block b's branch (-1 if none).
	BranchTiles []arch.TileID

	// memo caches one immutable derived view of the program (currently the
	// simulator's decoded context grid) so repeated consumers skip
	// re-deriving it. Kept opaque to avoid a dependency on the consumer.
	memo atomic.Value
}

// Memo returns the derived view published by SetMemo, or nil.
func (p *Program) Memo() any { return p.memo.Load() }

// SetMemo publishes a derived view of the program. The view must be
// immutable (it may be shared by concurrent readers) and must be derived
// from the program alone, since later callers will trust it over
// re-deriving. Concurrent SetMemo calls race benignly: both values are
// valid, one wins.
func (p *Program) SetMemo(v any) { p.memo.Store(v) }

// TotalWords returns the context words used over all tiles — the
// program's total context-memory footprint.
func (p *Program) TotalWords() int {
	n := 0
	for i := range p.Tiles {
		n += p.Tiles[i].Words()
	}
	return n
}

// FitsMemory reports whether every tile's context fits its context memory.
func (p *Program) FitsMemory() (bool, arch.TileID) {
	for i := range p.Tiles {
		if p.Tiles[i].Words() > p.Grid.Tile(arch.TileID(i)).CMWords {
			return false, arch.TileID(i)
		}
	}
	return true, 0
}

// Assemble lowers a mapping to per-tile contexts. It verifies the mapping
// structurally first and re-checks that the emitted word counts match the
// mapper's accounting.
func Assemble(m *core.Mapping) (*Program, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	p := &Program{
		Graph:       m.Graph,
		Grid:        m.Grid,
		Tiles:       make([]TileContext, m.Grid.NumTiles()),
		BlockLens:   make([]int, len(m.Blocks)),
		BranchTiles: make([]arch.TileID, len(m.Blocks)),
	}
	for _, bm := range m.Blocks {
		p.BlockLens[bm.BB] = bm.Len
		p.BranchTiles[bm.BB] = bm.BranchTile
	}
	for t := range p.Tiles {
		tc := &p.Tiles[t]
		tc.Tile = arch.TileID(t)
		tc.CRF = isa.NewCRF()
		tc.Segments = make([]Segment, len(m.Blocks))
		for bbid := range m.Graph.Blocks {
			bm := m.Blocks[bbid]
			seg, err := assembleSegment(m.Graph.Blocks[bbid], bm, arch.TileID(t))
			if err != nil {
				return nil, err
			}
			if got, want := seg.Words(), bm.Words(arch.TileID(t)); got != want {
				return nil, fmt.Errorf("asm: tile %d block %q emitted %d words, mapper counted %d",
					t+1, m.Graph.Blocks[bbid].Name, got, want)
			}
			tc.Segments[bbid] = seg
			for _, in := range seg.Instrs {
				w, err := isa.Encode(in, tc.CRF)
				if err != nil {
					return nil, fmt.Errorf("asm: tile %d block %q: %w", t+1, m.Graph.Blocks[bbid].Name, err)
				}
				tc.Binary = append(tc.Binary, w)
			}
		}
	}
	return p, nil
}

// assembleSegment lowers one tile row of one block schedule.
func assembleSegment(b *cdfg.BasicBlock, bm *core.BlockMapping, t arch.TileID) (Segment, error) {
	seg := Segment{BB: b.ID, Cycles: bm.Len}
	row := bm.Tiles[t]
	gap := 0
	flush := func() {
		if gap > 0 {
			seg.Instrs = append(seg.Instrs, isa.Pnop(gap))
			gap = 0
		}
	}
	for c := 0; c < bm.Len; c++ {
		s := row[c]
		switch s.Kind {
		case core.SlotEmpty:
			gap++
		case core.SlotOp:
			flush()
			in := isa.Op(b.Nodes[s.Node].Op, s.Srcs[:s.NSrc]...)
			if s.WB {
				in = in.WithWB(s.WReg)
			}
			if err := in.Validate(); err != nil {
				return Segment{}, fmt.Errorf("asm: tile %d block %q cycle %d: %w", t+1, b.Name, c, err)
			}
			seg.Instrs = append(seg.Instrs, in)
		case core.SlotMove:
			flush()
			in := isa.Move(s.Srcs[0])
			if s.WB {
				in = in.WithWB(s.WReg)
			}
			seg.Instrs = append(seg.Instrs, in)
		}
	}
	flush()
	return seg, nil
}

// Listing renders a human-readable per-tile disassembly of the program.
func Listing(p *Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s on %s\n", p.Graph.Name, p.Grid.Name)
	for t := range p.Tiles {
		tc := &p.Tiles[t]
		fmt.Fprintf(&sb, "tile %d (%d words):\n", t+1, tc.Words())
		for bbid, seg := range tc.Segments {
			if len(seg.Instrs) == 0 {
				continue
			}
			fmt.Fprintf(&sb, "  .%s:\n", p.Graph.Blocks[bbid].Name)
			for _, in := range seg.Instrs {
				fmt.Fprintf(&sb, "    %s\n", in)
			}
		}
		if tc.CRF.Len() > 0 {
			fmt.Fprintf(&sb, "  .crf: %v\n", tc.CRF.Values())
		}
	}
	return sb.String()
}
