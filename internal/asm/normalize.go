package asm

import "repro/internal/isa"

// NormalizeCRF rebuilds every tile's constant register file in first-use
// order over the program's current segment sequence and re-encodes the
// binary against it.
//
// The assembler produces CRFs in this normal form already, and the
// verifier's encode pass enforces it (a tile's stored CRF must equal the
// one re-derived by interning constants in segment order). Reordering a
// program's blocks — as the mapping cache does when it rebuilds a cached
// bitstream for an isomorphic graph with a different block numbering —
// changes the first-use order, so the verbatim CRF and the const-slot
// indices baked into the words go stale. This restores the invariant;
// decoded instructions carry constant values, not slot indices, so the
// rewrite is purely an encoding change.
func NormalizeCRF(p *Program) error {
	for t := range p.Tiles {
		tc := &p.Tiles[t]
		crf := isa.NewCRF()
		binary := make([]uint64, 0, len(tc.Binary))
		for si := range tc.Segments {
			for _, in := range tc.Segments[si].Instrs {
				w, err := isa.Encode(in, crf)
				if err != nil {
					return err
				}
				binary = append(binary, w)
			}
		}
		tc.CRF = crf
		tc.Binary = binary
	}
	return nil
}
