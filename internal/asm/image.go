package asm

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/arch"
	"repro/internal/cdfg"
	"repro/internal/isa"
)

// Binary image format — the artifact the global controller would DMA into
// the array before execution. All integers are little-endian.
//
//	magic   "CGRA"                                  4 bytes
//	version u32                                     (currently 1)
//	tiles   u32, blocks u32
//	blockLens   [blocks]u32
//	branchTiles [blocks]i32
//	per tile:
//	  crfLen u32, crf [crfLen]i32
//	  segments [blocks]{words u32, context [words]u64}
//
// The image intentionally excludes the CDFG: it is exactly what the
// hardware consumes. Loading an image therefore returns per-tile decoded
// instruction streams, not a full Program.
const (
	imageMagic   = "CGRA"
	imageVersion = 1
)

// Image is a loaded context-memory image.
type Image struct {
	BlockLens   []int
	BranchTiles []arch.TileID
	// Tiles[t].Segments[b] is tile t's decoded context for block b.
	Tiles []ImageTile
}

// ImageTile is one tile's loaded state.
type ImageTile struct {
	CRF      *isa.CRF
	Segments [][]isa.Instr
	Binary   []uint64
}

// Words returns the tile's context-word count.
func (t *ImageTile) Words() int { return len(t.Binary) }

// SaveImage serializes the program's context memories.
func SaveImage(p *Program) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(imageMagic)
	w32 := func(v uint32) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w32(imageVersion)
	w32(uint32(len(p.Tiles)))
	w32(uint32(len(p.BlockLens)))
	for _, l := range p.BlockLens {
		w32(uint32(l))
	}
	for _, bt := range p.BranchTiles {
		_ = binary.Write(&buf, binary.LittleEndian, int32(bt))
	}
	for i := range p.Tiles {
		tc := &p.Tiles[i]
		vals := tc.CRF.Values()
		w32(uint32(len(vals)))
		for _, v := range vals {
			_ = binary.Write(&buf, binary.LittleEndian, v)
		}
		for _, seg := range tc.Segments {
			w32(uint32(len(seg.Instrs)))
			for _, in := range seg.Instrs {
				word, err := encodeAgainst(in, tc.CRF)
				if err != nil {
					return nil, err
				}
				_ = binary.Write(&buf, binary.LittleEndian, word)
			}
		}
	}
	return buf.Bytes(), nil
}

// encodeAgainst encodes without growing the CRF (all constants were
// interned during assembly; a miss is a bug).
func encodeAgainst(in isa.Instr, crf *isa.CRF) (uint64, error) {
	before := crf.Len()
	w, err := isa.Encode(in, crf)
	if err != nil {
		return 0, err
	}
	if crf.Len() != before {
		return 0, fmt.Errorf("asm: instruction %v referenced a constant missing from the CRF", in)
	}
	return w, nil
}

// LoadImage parses and decodes a saved image.
func LoadImage(data []byte) (*Image, error) {
	r := bytes.NewReader(data)
	magic := make([]byte, 4)
	if _, err := r.Read(magic); err != nil || string(magic) != imageMagic {
		return nil, fmt.Errorf("asm: bad image magic")
	}
	var version, tiles, blocks uint32
	rd := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	if err := rd(&version); err != nil || version != imageVersion {
		return nil, fmt.Errorf("asm: unsupported image version")
	}
	if err := rd(&tiles); err != nil {
		return nil, err
	}
	if err := rd(&blocks); err != nil {
		return nil, err
	}
	if tiles > 4096 || blocks > 1<<20 {
		return nil, fmt.Errorf("asm: implausible image header (%d tiles, %d blocks)", tiles, blocks)
	}
	img := &Image{
		BlockLens:   make([]int, blocks),
		BranchTiles: make([]arch.TileID, blocks),
		Tiles:       make([]ImageTile, tiles),
	}
	for i := range img.BlockLens {
		var l uint32
		if err := rd(&l); err != nil {
			return nil, err
		}
		img.BlockLens[i] = int(l)
	}
	for i := range img.BranchTiles {
		var bt int32
		if err := rd(&bt); err != nil {
			return nil, err
		}
		img.BranchTiles[i] = arch.TileID(bt)
	}
	for t := range img.Tiles {
		it := &img.Tiles[t]
		var crfLen uint32
		if err := rd(&crfLen); err != nil {
			return nil, err
		}
		if crfLen > isa.MaxCRF {
			return nil, fmt.Errorf("asm: tile %d CRF of %d entries exceeds %d", t+1, crfLen, isa.MaxCRF)
		}
		it.CRF = isa.NewCRF()
		for j := uint32(0); j < crfLen; j++ {
			var v int32
			if err := rd(&v); err != nil {
				return nil, err
			}
			if _, err := it.CRF.Intern(v); err != nil {
				return nil, err
			}
		}
		it.Segments = make([][]isa.Instr, blocks)
		for b := uint32(0); b < blocks; b++ {
			var words uint32
			if err := rd(&words); err != nil {
				return nil, err
			}
			for j := uint32(0); j < words; j++ {
				var w uint64
				if err := rd(&w); err != nil {
					return nil, err
				}
				in, err := isa.Decode(w, it.CRF)
				if err != nil {
					return nil, fmt.Errorf("asm: tile %d block %d word %d: %w", t+1, b, j, err)
				}
				it.Segments[b] = append(it.Segments[b], in)
				it.Binary = append(it.Binary, w)
			}
		}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("asm: %d trailing bytes in image", r.Len())
	}
	return img, nil
}

// ProgramFromImage rebuilds an executable Program from a loaded image plus
// the graph and grid it was assembled for — the path a hardware loader
// takes (context memories are the only program state). The graph is only
// used for control flow (block successors); all instruction semantics come
// from the decoded words.
func ProgramFromImage(img *Image, g *cdfg.Graph, grid *arch.Grid) (*Program, error) {
	if len(img.Tiles) != grid.NumTiles() {
		return nil, fmt.Errorf("asm: image has %d tiles, grid has %d", len(img.Tiles), grid.NumTiles())
	}
	if len(img.BlockLens) != len(g.Blocks) {
		return nil, fmt.Errorf("asm: image has %d blocks, graph has %d", len(img.BlockLens), len(g.Blocks))
	}
	p := &Program{
		Graph:       g,
		Grid:        grid,
		Tiles:       make([]TileContext, len(img.Tiles)),
		BlockLens:   img.BlockLens,
		BranchTiles: img.BranchTiles,
	}
	for t := range img.Tiles {
		it := &img.Tiles[t]
		tc := &p.Tiles[t]
		tc.Tile = arch.TileID(t)
		tc.CRF = it.CRF
		tc.Binary = it.Binary
		tc.Segments = make([]Segment, len(it.Segments))
		for b, instrs := range it.Segments {
			tc.Segments[b] = Segment{BB: cdfg.BBID(b), Instrs: instrs, Cycles: img.BlockLens[b]}
		}
	}
	return p, nil
}
