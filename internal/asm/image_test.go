package asm

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/kernels"
)

func TestImageRoundTrip(t *testing.T) {
	p := assemble(t, "FFT", core.FlowCAB, arch.HET1)
	data, err := SaveImage(p)
	if err != nil {
		t.Fatal(err)
	}
	img, err := LoadImage(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Tiles) != len(p.Tiles) || len(img.BlockLens) != len(p.BlockLens) {
		t.Fatal("shape mismatch")
	}
	for b, l := range p.BlockLens {
		if img.BlockLens[b] != l {
			t.Fatalf("block %d len %d != %d", b, img.BlockLens[b], l)
		}
		if img.BranchTiles[b] != p.BranchTiles[b] {
			t.Fatalf("block %d branch tile mismatch", b)
		}
	}
	for i := range p.Tiles {
		want := &p.Tiles[i]
		got := &img.Tiles[i]
		if got.Words() != want.Words() {
			t.Fatalf("tile %d words %d != %d", i+1, got.Words(), want.Words())
		}
		idx := 0
		for b, seg := range want.Segments {
			for j, in := range seg.Instrs {
				if got.Segments[b][j] != in {
					t.Fatalf("tile %d block %d instr %d: %v != %v", i+1, b, j, got.Segments[b][j], in)
				}
				idx++
			}
		}
	}
}

func TestLoadImageRejectsGarbage(t *testing.T) {
	if _, err := LoadImage([]byte("nope")); err == nil {
		t.Error("bad magic should fail")
	}
	p := assemble(t, "DCFilter", core.FlowBasic, arch.HOM64)
	data, err := SaveImage(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadImage(data[:len(data)-3]); err == nil {
		t.Error("truncated image should fail")
	}
	if _, err := LoadImage(append(data, 0)); err == nil {
		t.Error("trailing bytes should fail")
	}
	corrupt := append([]byte(nil), data...)
	corrupt[4] = 99 // version
	if _, err := LoadImage(corrupt); err == nil {
		t.Error("bad version should fail")
	}
}

func TestProgramFromImage(t *testing.T) {
	k, _ := kernels.ByName("Convolution")
	g := k.Build()
	grid := arch.MustGrid(arch.HET2)
	m, err := core.Map(g, grid, core.DefaultOptions(core.FlowCAB))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Assemble(m)
	if err != nil {
		t.Fatal(err)
	}
	data, err := SaveImage(p)
	if err != nil {
		t.Fatal(err)
	}
	img, err := LoadImage(data)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ProgramFromImage(img, g, grid)
	if err != nil {
		t.Fatal(err)
	}
	if p2.TotalWords() != p.TotalWords() {
		t.Fatalf("rebuilt program words %d != %d", p2.TotalWords(), p.TotalWords())
	}
	// Mismatched shapes are rejected.
	if _, err := ProgramFromImage(img, g, arch.MustGrid(arch.HOM64)); err != nil {
		t.Fatal("same tile count should load") // HOM64 also has 16 tiles
	}
	other, _ := kernels.ByName("FIR")
	if _, err := ProgramFromImage(img, other.Build(), grid); err == nil {
		t.Error("block-count mismatch should fail")
	}
}
