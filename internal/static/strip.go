package static

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/cdfg"
	"repro/internal/isa"
)

// Dead-context elimination: the analyzer's payoff pass. Strip rewrites
// a program into one with strictly fewer (never more) context words and
// bit-identical observable behavior — same cycle count, same stalls,
// same block trace, same final memory on every input:
//
//   - provably-dead ops and moves (Liveness.Dead) fold into the
//     surrounding idle cycles, so runs of pnop words merge;
//   - unreachable non-branching blocks empty out entirely (zero-length
//     schedule, zero words);
//   - unreachable *branching* blocks shrink to a one-cycle stub that
//     keeps the branch op on its announced tile, because the branch
//     verifier pass demands every branching graph block announce a tile
//     whose segment executes a branch — words still shrink, since the
//     original spans at least one cycle on every tile too;
//   - *halting* blocks (no successors) that are fully idle after dead
//     cells fold away are elided to a zero-length schedule. Their pnop
//     words are pure configuration overhead: each tile fetches one word
//     only to idle until the array halts. This is where every mapped
//     kernel saves context words — the loop-nest exit block idles the
//     whole fabric for its schedule length.
//
// Schedule lengths of reachable non-halting blocks never change (a dead
// cell becomes an idle cycle, not a removed one), so the rewrite is
// cycle-exact except for elided halting blocks, which run at most once
// and contribute a statically known cycle count: a run of the stripped
// program takes exactly StripReport.CycleDelta(execs) fewer cycles than
// the original run (same stalls, same block trace, same final memory).
// The oracle and the kernel sweep tests enforce the arithmetic
// empirically.

// ElidedBlock records one halting block whose idle schedule was removed.
type ElidedBlock struct {
	BB cdfg.BBID
	// Cycles is the block's original schedule length: the cycles one
	// execution of the stripped program no longer spends there.
	Cycles int
}

// StripReport summarizes one rewrite.
type StripReport struct {
	WordsBefore, WordsAfter int
	// DeadOps and DeadMoves count the occupied context cells rewritten
	// to idle cycles in reachable blocks.
	DeadOps, DeadMoves int
	// EmptiedBlocks counts unreachable blocks rewritten to zero-length
	// schedules; StubbedBlocks counts unreachable branching blocks kept
	// as one-cycle branch stubs.
	EmptiedBlocks, StubbedBlocks int
	// Elided lists the reachable halting blocks whose all-idle schedules
	// were removed.
	Elided []ElidedBlock
}

// WordsSaved is the context-memory reduction the rewrite achieved.
func (r *StripReport) WordsSaved() int { return r.WordsBefore - r.WordsAfter }

// CycleDelta is the exact number of cycles a run of the stripped
// program saves over the original, given the original run's block
// execution counts. Only elided halting blocks change timing, and a
// halting block executes at most once per run.
func (r *StripReport) CycleDelta(execs map[cdfg.BBID]int64) int64 {
	var d int64
	for _, e := range r.Elided {
		d += int64(e.Cycles) * execs[e.BB]
	}
	return d
}

// Strip rewrites the program, dropping every context word the analysis
// proves dead. The input program is not modified. Callers should run
// the analysis and the verifier on the same program first: Strip
// preserves the behavior of verifier-clean programs exactly, and the
// rewritten program re-verifies clean (verify.CheckProgram).
func Strip(p *asm.Program, a *Analysis, opts ...Option) (*asm.Program, *StripReport, error) {
	if a.Prog != p {
		return nil, nil, fmt.Errorf("static: analysis belongs to a different program")
	}
	cfgOpts := Analysis{}
	for _, o := range opts {
		o(&cfgOpts)
	}
	recorder := cfgOpts.obs
	nb := len(p.Graph.Blocks)
	out := &asm.Program{
		Graph:       p.Graph,
		Grid:        p.Grid,
		Tiles:       make([]asm.TileContext, len(p.Tiles)),
		BlockLens:   make([]int, nb),
		BranchTiles: make([]arch.TileID, nb),
	}
	copy(out.BlockLens, p.BlockLens)
	copy(out.BranchTiles, p.BranchTiles)
	rep := &StripReport{WordsBefore: p.TotalWords()}

	// Decide each block's fate once, so every tile agrees.
	const (
		keepBlock = iota
		emptyBlock
		stubBlock
		elideBlock
	)
	fate := make([]int, nb)
	for bb := 0; bb < nb; bb++ {
		if a.Reachable[bb] {
			bc := &a.CFG.Blocks[bb]
			if !bc.HasBranch && len(bc.Succs) == 0 && bc.Len > 0 && allIdle(a, cdfg.BBID(bb)) {
				fate[bb] = elideBlock
				out.BlockLens[bb] = 0
				rep.Elided = append(rep.Elided, ElidedBlock{BB: cdfg.BBID(bb), Cycles: bc.Len})
				countDead(a, cdfg.BBID(bb), rep)
			}
			continue
		}
		bc := &a.CFG.Blocks[bb]
		if !bc.HasBranch {
			fate[bb] = emptyBlock
			out.BlockLens[bb] = 0
			if bc.Len > 0 {
				rep.EmptiedBlocks++ // already-empty blocks are not a change
			}
			continue
		}
		// A branching block must keep announcing a tile that executes a
		// branch (BR001/BR003). Shrink it to one cycle: the original
		// branch op on the announced tile, idles everywhere else.
		bt := int(p.BranchTiles[bb])
		if bt < 0 || bt >= len(p.Tiles) || findBranchOp(bc, bt) == nil {
			fate[bb] = keepBlock // unverifiable shape: leave it untouched
			continue
		}
		fate[bb] = stubBlock
		out.BlockLens[bb] = 1
		if !isStub(bc, bt) {
			rep.StubbedBlocks++ // already-stub blocks are not a change
		}
	}

	for t := range p.Tiles {
		tc := &out.Tiles[t]
		tc.Tile = p.Tiles[t].Tile
		tc.CRF = isa.NewCRF()
		tc.Segments = make([]asm.Segment, nb)
		for bb := 0; bb < nb; bb++ {
			seg := asm.Segment{BB: cdfg.BBID(bb), Cycles: out.BlockLens[bb]}
			switch fate[bb] {
			case emptyBlock, elideBlock:
				// zero cycles, zero words
			case stubBlock:
				if t == int(p.BranchTiles[bb]) {
					seg.Instrs = []isa.Instr{*findBranchOp(&a.CFG.Blocks[bb], t)}
				} else {
					seg.Instrs = []isa.Instr{isa.Pnop(1)}
				}
			default:
				seg.Instrs = stripSegment(a, cdfg.BBID(bb), t, rep)
			}
			tc.Segments[bb] = seg
			for _, in := range seg.Instrs {
				w, err := isa.Encode(in, tc.CRF)
				if err != nil {
					return nil, nil, fmt.Errorf("static: tile %d block %q: re-encode: %w",
						t+1, p.Graph.Blocks[bb].Name, err)
				}
				tc.Binary = append(tc.Binary, w)
			}
		}
	}
	rep.WordsAfter = out.TotalWords()
	if rep.WordsAfter > rep.WordsBefore {
		return nil, nil, fmt.Errorf("static: strip grew the program %d -> %d words",
			rep.WordsBefore, rep.WordsAfter)
	}
	if recorder.Enabled() {
		recorder.Counter("static.strips").Inc()
		recorder.Counter("static.words_stripped").Add(int64(rep.WordsSaved()))
		recorder.Counter("static.blocks_emptied").Add(int64(rep.EmptiedBlocks))
		recorder.Counter("static.blocks_elided").Add(int64(len(rep.Elided)))
	}
	return out, rep, nil
}

// isStub reports whether the block already has the one-cycle stub shape
// Strip would rewrite it to: a single cycle that is idle on every tile
// except the announced branch tile's branch op.
func isStub(bc *BlockCode, bt int) bool {
	if bc.Len != 1 {
		return false
	}
	for t := range bc.Grid {
		in := bc.Grid[t][0]
		switch {
		case in == nil:
		case t == bt && in.Kind == isa.KOp && in.Op == cdfg.OpBr:
		default:
			return false
		}
	}
	return true
}

// allIdle reports whether every context cell of a reachable block is
// idle or provably dead, so the block's schedule does nothing.
func allIdle(a *Analysis, bb cdfg.BBID) bool {
	bc := &a.CFG.Blocks[bb]
	for t := range bc.Grid {
		for c, in := range bc.Grid[t] {
			if in != nil && !a.Live.Dead(bb, t, c) {
				return false
			}
		}
	}
	return true
}

// countDead credits an elided block's occupied (necessarily dead) cells
// to the report, since stripSegment never visits the block.
func countDead(a *Analysis, bb cdfg.BBID, rep *StripReport) {
	bc := &a.CFG.Blocks[bb]
	for t := range bc.Grid {
		for _, in := range bc.Grid[t] {
			switch {
			case in == nil:
			case in.Kind == isa.KMove:
				rep.DeadMoves++
			default:
				rep.DeadOps++
			}
		}
	}
}

// stripSegment re-emits one tile row of one reachable block, folding
// idle cycles and dead cells into pnop words — the same folding the
// assembler performs on empty schedule slots.
func stripSegment(a *Analysis, bb cdfg.BBID, t int, rep *StripReport) []isa.Instr {
	bc := &a.CFG.Blocks[bb]
	var instrs []isa.Instr
	gap := 0
	flush := func() {
		if gap > 0 {
			instrs = append(instrs, isa.Pnop(gap))
			gap = 0
		}
	}
	for c := 0; c < bc.Len; c++ {
		in := bc.Grid[t][c]
		if in == nil {
			gap++
			continue
		}
		if a.Reachable[bb] && a.Live.Dead(bb, t, c) {
			if in.Kind == isa.KMove {
				rep.DeadMoves++
			} else {
				rep.DeadOps++
			}
			gap++
			continue
		}
		flush()
		instrs = append(instrs, *in)
	}
	flush()
	return instrs
}

// findBranchOp returns the first branch op in the block's row of the
// given tile, nil when the row holds none.
func findBranchOp(bc *BlockCode, t int) *isa.Instr {
	for c := 0; c < bc.Len; c++ {
		if in := bc.Grid[t][c]; in != nil && in.Kind == isa.KOp && in.Op == cdfg.OpBr {
			return in
		}
	}
	return nil
}
