package static

import (
	"repro/internal/arch"
	"repro/internal/cdfg"
	"repro/internal/isa"
)

// Faint-variable liveness over the bitstream's storage locations: one
// bit per tile output register and per tile RF entry. An occupied
// context cell is live when it is rooted (stores, branches and loads —
// the externally observable or faulting/stalling ops) or when some
// *live* instruction later observes a location it writes. Chains of
// moves and ALU ops feeding only each other die together — the faint
// part — which is exactly what lets Strip rewrite them to idle cycles
// without changing any observable behavior.
//
// The backward solver runs over block live-out sets (the union of the
// successors' live-ins; halting blocks end with nothing live, since
// memory — reached only through rooted ops — is the only output), so
// values carried across block boundaries through held output registers
// or the RF survive.

// bitset is a fixed-capacity bit vector lattice; join is union.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }
func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear(i int)    { b[i>>6] &^= 1 << (uint(i) & 63) }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

// union merges o into b, reporting growth.
func (b bitset) union(o bitset) bool {
	grew := false
	for i := range b {
		if o[i]&^b[i] != 0 {
			grew = true
		}
		b[i] |= o[i]
	}
	return grew
}

// Liveness is the solved liveness problem plus the per-cell verdicts.
type Liveness struct {
	cfg *CFG
	// LiveOut[bb] is the set of locations live when block bb exits.
	LiveOut []bitset
	// LiveIn[bb] is the set of locations live when block bb is entered.
	LiveIn []bitset
	// dead[bb][t][c] marks provably-dead occupied cells.
	dead               [][][]bool
	deadOps, deadMoves int
	numTiles, rrfSize  int
}

// locOut is the location index of tile t's output register.
func (l *Liveness) locOut(t int) int { return t }

// locRF is the location index of tile t's RF entry r.
func (l *Liveness) locRF(t, r int) int { return l.numTiles + t*l.rrfSize + r }

// numLocs is the total location count.
func (l *Liveness) numLocs() int { return l.numTiles + l.numTiles*l.rrfSize }

// Dead reports whether the occupied cell at (bb, tile, cycle) is
// provably dead: removing it cannot change any observable behavior.
func (l *Liveness) Dead(bb cdfg.BBID, tile, cycle int) bool {
	return l.dead[bb][tile][cycle]
}

// rooted reports the ops liveness may never remove: stores and loads
// touch memory (and the interconnect's stall arbitration), branches
// steer control.
func rooted(in *isa.Instr) bool {
	return in.Kind == isa.KOp &&
		(in.Op == cdfg.OpStore || in.Op == cdfg.OpLoad || in.Op == cdfg.OpBr)
}

// faultRisk reports whether executing the instruction can fault on its
// own (out-of-range register access). The verifier rejects these
// (REG001/REG002), but liveness keeps them pinned anyway so Strip never
// deletes a fault from an unverified program.
func faultRisk(in *isa.Instr, rrf int) bool {
	if in.WB && int(in.WReg) >= rrf {
		return true
	}
	for i := 0; i < in.NSrc; i++ {
		if in.Srcs[i].Kind == isa.SrcReg && int(in.Srcs[i].Reg) >= rrf {
			return true
		}
	}
	return false
}

// writesOut reports whether the instruction commits a value to its
// tile's output register (moves, ALU ops, loads).
func writesOut(in *isa.Instr) bool {
	return in.Kind == isa.KMove || (in.Kind == isa.KOp && in.Op.HasResult())
}

// solveLiveness runs the backward fixed point and derives the per-cell
// dead marks. Unreachable blocks get solved too (their sets are sound);
// strip handles them separately, so their cells are never marked dead
// here. Branch facts from the constant propagation prune refuted edges:
// a value consumed only beyond a never-taken branch is dead, which is
// what kills the initialization of a configuration-disabled arm.
func solveLiveness(cfg *CFG, reachable []bool, branch []BranchFact) *Liveness {
	l := &Liveness{cfg: cfg, numTiles: cfg.NumTiles, rrfSize: cfg.RRFSize}
	nl := l.numLocs()
	live := make([]bool, cfg.NumTiles) // per-tile scratch for one cycle
	sol := Solve(cfg, Problem[bitset]{
		Dir:    Backward,
		Bottom: func() bitset { return newBitset(nl) },
		Join: func(dst, src bitset) (bitset, bool) {
			return dst, dst.union(src)
		},
		Transfer: func(bb cdfg.BBID, out bitset) bitset {
			in := out.clone()
			l.transferBlock(bb, in, live, nil)
			return in
		},
		EdgeFeasible: func(from, to cdfg.BBID) bool {
			bc := &cfg.Blocks[from]
			if !bc.HasBranch {
				return true
			}
			switch branch[from] {
			case BranchTaken:
				return to == bc.Succs[0]
			case BranchNotTaken:
				return to == bc.Succs[1]
			}
			return true
		},
	})
	l.LiveIn, l.LiveOut = sol.In, sol.Out

	// Final marking pass: re-walk each block against its fixed-point
	// live-out, recording the per-cell verdicts.
	l.dead = make([][][]bool, len(cfg.Blocks))
	for bb := range cfg.Blocks {
		marks := make([][]bool, cfg.NumTiles)
		for t := range marks {
			marks[t] = make([]bool, cfg.Blocks[bb].Len)
		}
		l.dead[bb] = marks
		if !reachable[bb] {
			continue // stripped wholesale, not cell by cell
		}
		scratch := l.LiveOut[bb].clone()
		l.transferBlock(cdfg.BBID(bb), scratch, live, marks)
		for t := range marks {
			for c, d := range marks[t] {
				if !d {
					continue
				}
				if cfg.Blocks[bb].Grid[t][c].Kind == isa.KMove {
					l.deadMoves++
				} else {
					l.deadOps++
				}
			}
		}
	}
	return l
}

// transferBlock walks one block backward, mutating set from the block's
// live-out to its live-in. Reads observe pre-cycle state and writes
// commit at cycle end, so within one cycle the whole array's liveness
// verdicts are decided against the post-cycle set before any kill or
// use lands. When marks is non-nil, dead cells are recorded (true =
// dead).
func (l *Liveness) transferBlock(bb cdfg.BBID, set bitset, live []bool, marks [][]bool) {
	cfg := l.cfg
	bc := &cfg.Blocks[bb]
	for c := bc.Len - 1; c >= 0; c-- {
		for t := 0; t < cfg.NumTiles; t++ {
			in := bc.Grid[t][c]
			if in == nil {
				continue
			}
			lv := rooted(in) || faultRisk(in, l.rrfSize)
			if !lv && writesOut(in) {
				if set.has(l.locOut(t)) {
					lv = true
				}
				if in.WB && int(in.WReg) < l.rrfSize && set.has(l.locRF(t, int(in.WReg))) {
					lv = true
				}
			}
			live[t] = lv
			if marks != nil {
				marks[t][c] = !lv
			}
		}
		// Kills: live writers overwrite their locations, ending earlier
		// definitions' ranges.
		for t := 0; t < cfg.NumTiles; t++ {
			in := bc.Grid[t][c]
			if in == nil || !live[t] || !writesOut(in) {
				continue
			}
			set.clear(l.locOut(t))
			if in.WB && int(in.WReg) < l.rrfSize {
				set.clear(l.locRF(t, int(in.WReg)))
			}
		}
		// Uses: live instructions' operand reads.
		for t := 0; t < cfg.NumTiles; t++ {
			in := bc.Grid[t][c]
			if in == nil || !live[t] {
				continue
			}
			for i := 0; i < in.NSrc; i++ {
				switch src := in.Srcs[i]; src.Kind {
				case isa.SrcReg:
					if int(src.Reg) < l.rrfSize {
						set.set(l.locRF(t, int(src.Reg)))
					}
				case isa.SrcSelf:
					set.set(l.locOut(t))
				case isa.SrcNbr:
					nb := cfg.Prog.Grid.Neighbors(arch.TileID(t))[src.Dir]
					set.set(l.locOut(int(nb)))
				}
			}
		}
	}
}
