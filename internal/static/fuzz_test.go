package static_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/static"
	"repro/internal/verify"
)

// FuzzStaticVsSim fuzzes the analyzer's soundness contract: for any
// graph that maps to a verifier-clean bitstream, the static claims —
// reachability, exact activity tables, cycle/stall/energy bounds — must
// hold for a simulated run, and the stripped rewrite must re-verify
// clean and behave identically (modulo the reported elision cycles).
// Seeds reuse the oracle's generation path plus every minimized oracle
// reproducer; the checked-in corpus under testdata/fuzz keeps the
// interesting shapes replaying in plain `go test`. Run
//
//	go test -fuzz=FuzzStaticVsSim ./internal/static
//
// to let the mutator search for unsoundness.
func FuzzStaticVsSim(f *testing.F) {
	addGraph := func(g *cdfg.Graph, modeIdx, cfgIdx int64) {
		data, err := g.MarshalText()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data, modeIdx, cfgIdx)
	}
	for s := int64(0); s < 3; s++ {
		g, _ := cdfg.Generate(rand.New(rand.NewSource(s)), cdfg.DefaultGenConfig())
		addGraph(g, s, s+1)
	}
	repros, err := filepath.Glob(filepath.Join("..", "oracle", "testdata", "repro", "*.repro"))
	if err != nil {
		f.Fatal(err)
	}
	for i, path := range repros {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		g, _, err := oracle.ParseRepro(data)
		if err != nil {
			f.Fatalf("%s: %v", path, err)
		}
		addGraph(g, int64(i), int64(i))
	}

	cells := oracle.AllCells()
	pr := power.Default()
	f.Fuzz(func(t *testing.T, data []byte, modeIdx, cfgIdx int64) {
		if len(data) > 1<<16 {
			return
		}
		g, err := cdfg.UnmarshalText(data)
		if err != nil {
			return // not a well-formed graph; nothing to analyze
		}
		if g.NumNodes() > 120 || len(g.Blocks) > 16 {
			return // keep the per-input mapper run bounded
		}
		mem := make(cdfg.Memory, 64)
		if _, err := cdfg.Interp(g, mem.Clone()); err != nil {
			return // graph traps; the oracle pipeline would reject it too
		}
		idx := (modeIdx*4 + cfgIdx) % int64(len(cells))
		if idx < 0 {
			idx += int64(len(cells))
		}
		cell := cells[idx]

		m, err := core.Map(g, arch.MustGrid(cell.Config), cell.Mode.Options())
		if err != nil {
			return // no mapping: nothing to analyze
		}
		if ok, _ := m.FitsMemory(); !ok {
			return
		}
		prog, err := asm.Assemble(m)
		if err != nil {
			return
		}
		if res := verify.Run(&verify.Context{Mapping: m, Program: prog}); !res.OK() {
			return // the analyzer's contract covers verifier-clean programs
		}

		a, err := static.Analyze(prog)
		if err != nil {
			t.Fatalf("%s: analyze rejected a verifier-clean program: %v", cell, err)
		}
		s, err := sim.New(prog)
		if err != nil {
			return
		}
		mem1 := mem.Clone()
		res1, err := s.RunScalar(mem1)
		if err != nil {
			return // runtime trap (deadline, lane fault): no claims to check
		}
		if cerr := a.CheckRun(res1); cerr != nil {
			gtext, _ := g.MarshalText()
			t.Fatalf("%s: static claims unsound: %v\n%s", cell, cerr, gtext)
		}
		lower, upper, err := a.EnergyBounds(pr, res1.BlockExecs)
		if err != nil {
			t.Fatalf("%s: energy bounds: %v", cell, err)
		}
		actual := pr.ActivityEnergy(prog.Grid, res1.Activity())
		if actual.Total() < lower.Total() || actual.Total() > upper.Total() {
			t.Fatalf("%s: energy %.3f outside static bounds [%.3f, %.3f]",
				cell, actual.Total(), lower.Total(), upper.Total())
		}

		stripped, rep, err := static.Strip(prog, a)
		if err != nil {
			t.Fatalf("%s: strip: %v", cell, err)
		}
		if res := verify.CheckProgram(stripped); !res.OK() {
			gtext, _ := g.MarshalText()
			t.Fatalf("%s: stripped program not verifier-clean:\n%s\n%s", cell, res.Report(), gtext)
		}
		s2, err := sim.New(stripped)
		if err != nil {
			t.Fatalf("%s: sim stripped: %v", cell, err)
		}
		mem2 := mem.Clone()
		res2, err := s2.RunScalar(mem2)
		if err != nil {
			t.Fatalf("%s: stripped run trapped: %v", cell, err)
		}
		if res2.Cycles != res1.Cycles-rep.CycleDelta(res1.BlockExecs) ||
			res2.StallCycles != res1.StallCycles ||
			!reflect.DeepEqual(res2.BlockExecs, res1.BlockExecs) ||
			!reflect.DeepEqual(mem2, mem1) {
			gtext, _ := g.MarshalText()
			t.Fatalf("%s: strip changed behavior (cycles %d->%d, delta %d)\n%s",
				cell, res1.Cycles, res2.Cycles, rep.CycleDelta(res1.BlockExecs), gtext)
		}
	})
}
