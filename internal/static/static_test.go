package static_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/oracle"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/static"
	"repro/internal/verify"
)

// sweepBatch is the lane width of the batched-engine differential in the
// kernel sweep; the acceptance criterion asks for B=64.
const sweepBatch = 64

// mapCell maps and assembles one (kernel, mode, config) cell, or reports
// why the cell has no runnable program (the same cells the evaluation
// tables leave blank).
func mapCell(t *testing.T, k kernels.Kernel, mode oracle.Mode, cfg arch.ConfigName) (*asm.Program, string) {
	t.Helper()
	g := k.Build()
	grid := arch.MustGrid(cfg)
	m, err := core.Map(g, grid, mode.Options())
	if err != nil {
		return nil, fmt.Sprintf("no mapping: %v", err)
	}
	if ok, tile := m.FitsMemory(); !ok {
		return nil, fmt.Sprintf("overflows context memory of tile %d", tile+1)
	}
	prog, err := asm.Assemble(m)
	if err != nil {
		t.Fatalf("assemble of a valid mapping failed: %v", err)
	}
	if res := verify.Run(&verify.Context{Mapping: m, Program: prog}); !res.OK() {
		t.Fatalf("original program not verifier-clean:\n%s", res.Report())
	}
	return prog, ""
}

// runBoth runs the original and the stripped program on fresh kernel
// inputs and demands behavior identity: same stalls, same block trace,
// same final memory, a passing golden check, and a cycle count exactly
// CycleDelta lower (the elided halting-block idles).
func runBoth(t *testing.T, k kernels.Kernel, orig, stripped *asm.Program, rep *static.StripReport) *sim.Result {
	t.Helper()
	s1, err := sim.New(orig)
	if err != nil {
		t.Fatalf("sim original: %v", err)
	}
	s2, err := sim.New(stripped)
	if err != nil {
		t.Fatalf("sim stripped: %v", err)
	}

	mem1, mem2 := k.Init(), k.Init()
	res1, err := s1.RunScalar(mem1)
	if err != nil {
		t.Fatalf("scalar run original: %v", err)
	}
	res2, err := s2.RunScalar(mem2)
	if err != nil {
		t.Fatalf("scalar run stripped: %v", err)
	}
	delta := rep.CycleDelta(res1.BlockExecs)
	if res2.Cycles != res1.Cycles-delta || res1.StallCycles != res2.StallCycles {
		t.Fatalf("stripped scalar timing diverged: %d/%d cycles/stalls, original %d/%d (expected delta %d)",
			res2.Cycles, res2.StallCycles, res1.Cycles, res1.StallCycles, delta)
	}
	if !reflect.DeepEqual(res1.BlockExecs, res2.BlockExecs) {
		t.Fatalf("stripped scalar block trace diverged: %v vs %v", res2.BlockExecs, res1.BlockExecs)
	}
	if !reflect.DeepEqual(mem1, mem2) {
		t.Fatal("stripped scalar final memory diverged from the original")
	}
	if err := k.Check(mem2); err != nil {
		t.Fatalf("stripped program fails the golden check: %v", err)
	}

	// Batched engine differential at B=64: every lane of the stripped
	// program must reproduce its original-lane twin.
	lanes1 := make([]cdfg.Memory, sweepBatch)
	lanes2 := make([]cdfg.Memory, sweepBatch)
	for l := range lanes1 {
		lanes1[l], lanes2[l] = k.Init(), k.Init()
	}
	br1, err := s1.Engine().RunBatch(lanes1)
	if err != nil {
		t.Fatalf("batch run original: %v", err)
	}
	br2, err := s2.Engine().RunBatch(lanes2)
	if err != nil {
		t.Fatalf("batch run stripped: %v", err)
	}
	for l := range br1 {
		if br2[l].Cycles != br1[l].Cycles-rep.CycleDelta(br1[l].BlockExecs) ||
			br1[l].StallCycles != br2[l].StallCycles ||
			!reflect.DeepEqual(br1[l].BlockExecs, br2[l].BlockExecs) {
			t.Fatalf("batch lane %d diverged after strip", l)
		}
	}
	if !reflect.DeepEqual(lanes1, lanes2) {
		t.Fatal("batch final memories diverged after strip")
	}
	return res1
}

// TestKernelSweep is the acceptance sweep: for every kernel × mapping
// mode × CM configuration that maps, the analyzer's claims hold against
// the simulator, the static energy bounds bracket the measured energy,
// and the stripped bitstream is verifier-clean and behavior-identical.
// At least one cell must show a nonzero context-word reduction.
func TestKernelSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("kernel sweep maps every cell; skipped under -short")
	}
	modes := oracle.Modes()
	configs := arch.ConfigNames()
	pr := power.Default()

	var mu sync.Mutex
	totalSaved, ran := 0, 0
	t.Run("cells", func(t *testing.T) {
		for _, k := range kernels.All() {
			for _, mode := range modes {
				for _, cfg := range configs {
					k, mode, cfg := k, mode, cfg
					t.Run(fmt.Sprintf("%s/%s/%s", k.Name, mode, cfg), func(t *testing.T) {
						t.Parallel()
						prog, skip := mapCell(t, k, mode, cfg)
						if prog == nil {
							t.Skip(skip)
						}
						a, err := static.Analyze(prog)
						if err != nil {
							t.Fatalf("analyze: %v", err)
						}
						stripped, rep, err := static.Strip(prog, a)
						if err != nil {
							t.Fatalf("strip: %v", err)
						}
						if res := verify.CheckProgram(stripped); !res.OK() {
							t.Fatalf("stripped program not verifier-clean:\n%s", res.Report())
						}
						res := runBoth(t, k, prog, stripped, rep)
						if err := a.CheckRun(res); err != nil {
							t.Fatalf("analyzer claims contradict the run: %v", err)
						}
						lower, upper, err := a.EnergyBounds(pr, res.BlockExecs)
						if err != nil {
							t.Fatalf("energy bounds: %v", err)
						}
						actual := pr.ActivityEnergy(prog.Grid, res.Activity())
						if actual.Total() < lower.Total() || actual.Total() > upper.Total() {
							t.Fatalf("energy %.6f µJ outside static bounds [%.6f, %.6f]",
								actual.Total(), lower.Total(), upper.Total())
						}
						if rep.WordsAfter != stripped.TotalWords() {
							t.Fatalf("report says %d words, program holds %d",
								rep.WordsAfter, stripped.TotalWords())
						}
						mu.Lock()
						totalSaved += rep.WordsSaved()
						ran++
						mu.Unlock()
						if rep.WordsSaved() > 0 {
							t.Logf("saved %d of %d words", rep.WordsSaved(), rep.WordsBefore)
						}
					})
				}
			}
		}
	})
	if ran == 0 {
		t.Fatal("no cell produced a runnable program")
	}
	t.Logf("sweep: %d cells, %d context words stripped in total", ran, totalSaved)
	if totalSaved == 0 {
		t.Error("no cell showed a context-word reduction; dead-context elimination never fired")
	}
}
