package static

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// Report renders the analysis for humans: the cgramap -analyze output.
func (a *Analysis) Report() string {
	var sb strings.Builder
	p := a.Prog
	fmt.Fprintf(&sb, "static analysis: %s on %s\n", p.Graph.Name, p.Grid.Name)

	structReach, reach := 0, 0
	for bb := range a.CFG.Blocks {
		if a.StructReachable[bb] {
			structReach++
		}
		if a.Reachable[bb] {
			reach++
		}
	}
	occupied := 0
	for bb := range a.CFG.Blocks {
		bc := &a.CFG.Blocks[bb]
		for t := range bc.Grid {
			for _, in := range bc.Grid[t] {
				if in != nil {
					occupied++
				}
			}
		}
	}
	deadOps, deadMoves := a.DeadCells()
	fmt.Fprintf(&sb, "  blocks: %d total, %d reachable (%d before const-branch refinement)\n",
		len(a.CFG.Blocks), reach, structReach)
	fmt.Fprintf(&sb, "  context cells: %d occupied, %d provably dead (%d ops, %d moves)\n",
		occupied, deadOps+deadMoves, deadOps, deadMoves)
	fmt.Fprintf(&sb, "  const operands: %d register/route reads carry one provable value\n",
		a.ConstOperands)
	fmt.Fprintf(&sb, "  def-use: %d defs, %d unused locally, %d upstream operand reads\n",
		len(a.DefUse.Defs), a.DefUse.Unused(), a.DefUse.UpstreamUses)

	t := trace.NewTable("per-block static cost (one execution)",
		"block", "reachable", "cycles", "stalls lb", "stalls ub", "branch")
	for bb := range a.CFG.Blocks {
		tb := &a.Bounds.PerBlock[bb]
		reachable := "yes"
		if !a.Reachable[bb] {
			reachable = "no"
		}
		branch := "-"
		if a.CFG.Blocks[bb].HasBranch {
			switch a.BranchConst[bb] {
			case BranchTaken:
				branch = "always taken"
			case BranchNotTaken:
				branch = "never taken"
			default:
				branch = "dynamic"
			}
		}
		t.Add(p.Graph.Blocks[bb].Name, reachable, tb.Len, tb.StallLB, tb.StallUB, branch)
	}
	sb.WriteString(t.String())
	return sb.String()
}

// String renders the rewrite summary: the cgramap -strip output.
func (r *StripReport) String() string {
	return fmt.Sprintf(
		"dead-context elimination: %d -> %d words (%d saved); %d dead ops, %d dead moves, %d blocks emptied, %d stubbed, %d idle halting blocks elided",
		r.WordsBefore, r.WordsAfter, r.WordsSaved(),
		r.DeadOps, r.DeadMoves, r.EmptiedBlocks, r.StubbedBlocks, len(r.Elided))
}
