package static

import "repro/internal/cdfg"

// Reachability computes branch-agnostic block reachability: the forward
// unit-lattice instance of the solver, where reaching the fixed point
// just means the worklist visited every block some feasible edge path
// leads to. Branch conditions are not interpreted — both arms of every
// branch count as feasible; propagateConsts refines this.
func Reachability(cfg *CFG) []bool {
	sol := Solve(cfg, Problem[struct{}]{
		Dir:      Forward,
		Bottom:   func() struct{} { return struct{}{} },
		Join:     func(dst, src struct{}) (struct{}, bool) { return dst, false },
		Transfer: func(bb cdfg.BBID, in struct{}) struct{} { return in },
	})
	return sol.Reached
}
