package static_test

import (
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/sim"
	"repro/internal/static"
	"repro/internal/verify"
)

// buildProg maps and assembles a hand-crafted graph on HOM64 with the
// basic flow — the cheapest way to obtain a real, verifier-clean
// bitstream with the edge-case shape under test.
func buildProg(t *testing.T, name string, build func(b *cdfg.Builder)) *asm.Program {
	t.Helper()
	b := cdfg.NewBuilder(name)
	build(b)
	g := b.Finish()
	m, err := core.Map(g, arch.MustGrid(arch.HOM64), oracle.ModeBasic.Options())
	if err != nil {
		t.Fatalf("map: %v", err)
	}
	prog, err := asm.Assemble(m)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if res := verify.Run(&verify.Context{Mapping: m, Program: prog}); !res.OK() {
		t.Fatalf("crafted program not verifier-clean:\n%s", res.Report())
	}
	return prog
}

// analyzeStrip runs the analyzer and the rewriter, re-verifies the
// stripped program and proves it behavior-identical on the given
// memory, then returns the rewrite report.
func analyzeStrip(t *testing.T, prog *asm.Program, memWords int) (*asm.Program, *static.StripReport) {
	t.Helper()
	a, err := static.Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	stripped, rep, err := static.Strip(prog, a)
	if err != nil {
		t.Fatalf("strip: %v", err)
	}
	if res := verify.CheckProgram(stripped); !res.OK() {
		t.Fatalf("stripped program not verifier-clean:\n%s", res.Report())
	}
	if rep.WordsAfter > rep.WordsBefore {
		t.Fatalf("strip grew the program: %d -> %d", rep.WordsBefore, rep.WordsAfter)
	}

	s1, err := sim.New(prog)
	if err != nil {
		t.Fatalf("sim original: %v", err)
	}
	s2, err := sim.New(stripped)
	if err != nil {
		t.Fatalf("sim stripped: %v", err)
	}
	mem1, mem2 := make(cdfg.Memory, memWords), make(cdfg.Memory, memWords)
	for i := range mem1 {
		mem1[i] = int32(i*7 - 3)
		mem2[i] = mem1[i]
	}
	res1, err := s1.RunScalar(mem1)
	if err != nil {
		t.Fatalf("run original: %v", err)
	}
	res2, err := s2.RunScalar(mem2)
	if err != nil {
		t.Fatalf("run stripped: %v", err)
	}
	if res2.Cycles != res1.Cycles-rep.CycleDelta(res1.BlockExecs) ||
		res1.StallCycles != res2.StallCycles {
		t.Fatalf("timing diverged: %d/%d vs %d/%d (delta %d)",
			res2.Cycles, res2.StallCycles, res1.Cycles, res1.StallCycles,
			rep.CycleDelta(res1.BlockExecs))
	}
	if !reflect.DeepEqual(res1.BlockExecs, res2.BlockExecs) {
		t.Fatalf("block trace diverged: %v vs %v", res2.BlockExecs, res1.BlockExecs)
	}
	if !reflect.DeepEqual(mem1, mem2) {
		t.Fatal("final memory diverged")
	}
	return stripped, rep
}

// stripAgain re-analyzes a stripped program and demands the second
// rewrite change nothing: strip is a fixpoint.
func stripAgain(t *testing.T, stripped *asm.Program) {
	t.Helper()
	a, err := static.Analyze(stripped)
	if err != nil {
		t.Fatalf("re-analyze: %v", err)
	}
	again, rep, err := static.Strip(stripped, a)
	if err != nil {
		t.Fatalf("re-strip: %v", err)
	}
	if rep.WordsSaved() != 0 || rep.DeadOps != 0 || rep.DeadMoves != 0 ||
		rep.EmptiedBlocks != 0 || rep.StubbedBlocks != 0 || len(rep.Elided) != 0 {
		t.Fatalf("strip is not a fixpoint: second pass reports %s", rep)
	}
	if again.TotalWords() != stripped.TotalWords() {
		t.Fatalf("second strip changed words: %d -> %d", stripped.TotalWords(), again.TotalWords())
	}
}

// TestStripUnreachableArm covers the configuration-dead straight-line
// arm: a never-taken branch guards a block full of real ops; strip must
// empty it to a zero-length schedule and keep behavior identical.
func TestStripUnreachableArm(t *testing.T) {
	prog := buildProg(t, "deadarm", func(b *cdfg.Builder) {
		entry := b.Block("entry")
		entry.SetSym("acc", entry.Const(5))
		entry.BranchIf(entry.Const(0), "arm", "live")

		arm := b.Block("arm") // never taken
		v := arm.MulC(arm.Sym("acc"), 3)
		arm.Store(arm.Const(40), v)
		arm.SetSym("acc", v)
		arm.Jump("live")

		live := b.Block("live")
		live.Store(live.Const(41), live.AddC(live.Sym("acc"), 1))
	})
	a, err := static.Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if a.UnreachableBlocks() != 1 {
		t.Fatalf("UnreachableBlocks = %d, want 1", a.UnreachableBlocks())
	}
	stripped, rep := analyzeStrip(t, prog, 64)
	if rep.EmptiedBlocks != 1 || rep.StubbedBlocks != 0 {
		t.Fatalf("emptied %d / stubbed %d blocks, want 1/0", rep.EmptiedBlocks, rep.StubbedBlocks)
	}
	if rep.WordsSaved() == 0 {
		t.Fatal("emptying a block with real ops saved no words")
	}
	stripAgain(t, stripped)
}

// TestStripUnreachableLoop covers the branching-unreachable case: a
// dead spin loop must shrink to the one-cycle branch stub the branch
// verifier pass demands, never to nothing.
func TestStripUnreachableLoop(t *testing.T) {
	prog := buildProg(t, "deadloop", func(b *cdfg.Builder) {
		entry := b.Block("entry")
		entry.SetSym("i", entry.Const(0))
		entry.BranchIf(entry.Const(1), "live", "spin")

		spin := b.Block("spin") // unreachable self-loop
		i2 := spin.AddC(spin.Sym("i"), 1)
		spin.SetSym("i", i2)
		spin.BranchIf(spin.Lt(i2, spin.Const(9)), "spin", "live")

		live := b.Block("live")
		live.Store(live.Const(10), live.AddC(live.Sym("i"), 2))
	})
	stripped, rep := analyzeStrip(t, prog, 16)
	if rep.StubbedBlocks != 1 {
		t.Fatalf("stubbed %d blocks, want 1", rep.StubbedBlocks)
	}
	if rep.WordsSaved() == 0 {
		t.Fatal("stubbing a dead loop saved no words")
	}
	stripAgain(t, stripped)
}

// TestStripDeadOps covers faint dead code inside a reachable block: an
// op chain nothing observable consumes folds into idle cycles.
func TestStripDeadOps(t *testing.T) {
	prog := buildProg(t, "deadops", func(b *cdfg.Builder) {
		entry := b.Block("entry")
		x := entry.Load(entry.Const(0))
		entry.Store(entry.Const(1), entry.AddC(x, 1))
		// A faint chain: feeds only itself, never memory or control.
		dead := entry.MulC(x, 3)
		entry.Sub(dead, x)
	})
	a, err := static.Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	ops, _ := a.DeadCells()
	if ops == 0 {
		t.Fatal("no dead ops found in a program with a faint chain")
	}
	stripped, rep := analyzeStrip(t, prog, 8)
	if rep.DeadOps == 0 {
		t.Fatalf("report counts no dead ops: %s", rep)
	}
	stripAgain(t, stripped)
}

// TestStripElidesIdleHaltingBlock covers the halting-block elision: a
// tail block whose every op is dead becomes fully idle and its schedule
// is removed, saving both words and (reported, exact) cycles.
func TestStripElidesIdleHaltingBlock(t *testing.T) {
	prog := buildProg(t, "idletail", func(b *cdfg.Builder) {
		entry := b.Block("entry")
		x := entry.Load(entry.Const(0))
		entry.Store(entry.Const(1), x)
		entry.SetSym("x", x)
		entry.Jump("tail")

		tail := b.Block("tail") // halting; all values faint
		tail.MulC(tail.Sym("x"), 5)
	})
	stripped, rep := analyzeStrip(t, prog, 8)
	if len(rep.Elided) != 1 {
		t.Fatalf("elided %d blocks, want 1: %s", len(rep.Elided), rep)
	}
	if rep.Elided[0].Cycles == 0 {
		t.Fatal("elided block reports zero cycles")
	}
	if rep.WordsSaved() == 0 {
		t.Fatal("eliding an idle halting block saved no words")
	}
	for _, e := range rep.Elided {
		if stripped.BlockLens[e.BB] != 0 {
			t.Fatalf("elided block %d still has length %d", e.BB, stripped.BlockLens[e.BB])
		}
	}
	stripAgain(t, stripped)
}

// TestStripBranchOnlyBlock covers a reachable block that is nothing but
// its branch: already minimal, strip must keep it bit-identical.
func TestStripBranchOnlyBlock(t *testing.T) {
	prog := buildProg(t, "bronly", func(b *cdfg.Builder) {
		entry := b.Block("entry")
		c := entry.Load(entry.Const(0))
		entry.SetSym("c", c)
		entry.Jump("chk")

		chk := b.Block("chk")
		chk.BranchIf(chk.Sym("c"), "a", "z")

		a := b.Block("a")
		a.Store(a.Const(1), a.Const(7))
		a.Jump("z")

		b.Block("z")
	})
	_, rep := analyzeStrip(t, prog, 8)
	if rep.DeadOps != 0 || rep.DeadMoves != 0 {
		t.Fatalf("branch-only program reported dead cells: %s", rep)
	}
}

// TestStripAlreadyMinimal: a program with no dead context must come
// back word-identical, and strip must be a fixpoint on it.
func TestStripAlreadyMinimal(t *testing.T) {
	prog := buildProg(t, "minimal", func(b *cdfg.Builder) {
		entry := b.Block("entry")
		entry.SetSym("n", entry.Const(0))
		entry.Jump("loop")

		loop := b.Block("loop")
		n := loop.Sym("n")
		loop.Store(loop.AddC(n, 8), loop.Load(n))
		n2 := loop.AddC(n, 1)
		loop.SetSym("n", n2)
		loop.BranchIf(loop.Lt(n2, loop.Const(4)), "loop", "exit")

		b.Block("exit")
	})
	stripped, rep := analyzeStrip(t, prog, 16)
	if rep.WordsSaved() != 0 {
		t.Fatalf("minimal program lost %d words: %s", rep.WordsSaved(), rep)
	}
	if stripped.TotalWords() != prog.TotalWords() {
		t.Fatalf("word count changed: %d -> %d", prog.TotalWords(), stripped.TotalWords())
	}
	stripAgain(t, stripped)
}

// TestStripRejectsForeignAnalysis: the rewriter refuses an analysis
// computed for a different program.
func TestStripRejectsForeignAnalysis(t *testing.T) {
	p1 := buildProg(t, "one", func(b *cdfg.Builder) {
		e := b.Block("entry")
		e.Store(e.Const(0), e.Const(1))
	})
	p2 := buildProg(t, "two", func(b *cdfg.Builder) {
		e := b.Block("entry")
		e.Store(e.Const(1), e.Const(2))
	})
	a, err := static.Analyze(p1)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if _, _, err := static.Strip(p2, a); err == nil {
		t.Fatal("Strip accepted an analysis of a different program")
	}
}
