package static

import (
	"reflect"
	"testing"

	"repro/internal/cdfg"
)

// chainCFG builds a synthetic CFG with the given successor lists — no
// program or grids behind it, just edges, which is all the generic
// solver looks at.
func chainCFG(entry cdfg.BBID, succs [][]cdfg.BBID) *CFG {
	cfg := &CFG{
		Entry:  entry,
		Blocks: make([]BlockCode, len(succs)),
		Preds:  make([][]cdfg.BBID, len(succs)),
	}
	for bb, ss := range succs {
		cfg.Blocks[bb].BB = cdfg.BBID(bb)
		cfg.Blocks[bb].Succs = ss
		for _, s := range ss {
			cfg.Preds[s] = append(cfg.Preds[s], cdfg.BBID(bb))
		}
	}
	return cfg
}

// intMax is a simple join-lattice over ints: join is max, bottom is 0.
var intMax = func(dst, src int) (int, bool) { return max(dst, src), src > dst }

// TestSolverForwardReachability: the forward solver visits exactly the
// blocks fed by feasible edges from the entry, and FlowEdge pruning
// removes edges from the reachable set.
func TestSolverForwardReachability(t *testing.T) {
	// 0 -> {1, 2}; 1 -> 3; 2 -> 3; 4 is disconnected.
	cfg := chainCFG(0, [][]cdfg.BBID{{1, 2}, {3}, {3}, nil, nil})
	sol := Solve(cfg, Problem[int]{
		Dir:      Forward,
		Bottom:   func() int { return 0 },
		Boundary: func() int { return 1 },
		Join:     intMax,
		Transfer: func(bb cdfg.BBID, in int) int { return in + 1 },
	})
	if want := []bool{true, true, true, true, false}; !reflect.DeepEqual(sol.Reached, want) {
		t.Fatalf("Reached = %v, want %v", sol.Reached, want)
	}
	// Path-length counting: In[0]=1 (boundary), +1 per block, so the
	// join at the diamond's foot sees Out[1] = Out[2] = 3.
	if sol.In[3] != 3 || sol.Out[3] != 4 {
		t.Fatalf("In[3]/Out[3] = %d/%d, want 3/4", sol.In[3], sol.Out[3])
	}

	// Prune the 0->2 edge: 2 drops out, 3 stays via 1.
	sol = Solve(cfg, Problem[int]{
		Dir:      Forward,
		Bottom:   func() int { return 0 },
		Boundary: func() int { return 1 },
		Join:     intMax,
		Transfer: func(bb cdfg.BBID, in int) int { return in + 1 },
		FlowEdge: func(from, to cdfg.BBID, out int) (int, bool) {
			return out, !(from == 0 && to == 2)
		},
	})
	if want := []bool{true, true, false, true, false}; !reflect.DeepEqual(sol.Reached, want) {
		t.Fatalf("pruned Reached = %v, want %v", sol.Reached, want)
	}
}

// TestSolverForwardLoopFixpoint: a cycle with a monotone capped transfer
// converges to the cap rather than iterating forever.
func TestSolverForwardLoopFixpoint(t *testing.T) {
	// 0 -> 1 -> 2 -> 1 (loop), 2 -> 3.
	cfg := chainCFG(0, [][]cdfg.BBID{{1}, {2}, {1, 3}, nil})
	const cap = 10
	sol := Solve(cfg, Problem[int]{
		Dir:      Forward,
		Bottom:   func() int { return 0 },
		Boundary: func() int { return 1 },
		Join:     intMax,
		Transfer: func(bb cdfg.BBID, in int) int { return min(in+1, cap) },
	})
	if sol.Out[2] != cap || sol.In[3] != cap {
		t.Fatalf("loop fixpoint Out[2]/In[3] = %d/%d, want %d", sol.Out[2], sol.In[3], cap)
	}
}

// TestSolverBackward: states flow from successors to predecessors, and
// every block — even one inside an exit-free loop — gets a solution.
func TestSolverBackward(t *testing.T) {
	// 0 -> 1 -> 2 (halting); 3 -> 4 -> 3 is an unreachable infinite loop.
	cfg := chainCFG(0, [][]cdfg.BBID{{1}, {2}, nil, {4}, {3}})
	// The transfer must be capped: the exit-free 3<->4 loop would climb
	// forever under a plain +1 (a non-finite-height lattice), which is a
	// caller bug, not a solver feature.
	const cap = 64
	sol := Solve(cfg, Problem[int]{
		Dir:      Backward,
		Bottom:   func() int { return 0 },
		Join:     intMax,
		Transfer: func(bb cdfg.BBID, out int) int { return min(out+1, cap) },
	})
	// In[bb] counts the longest path to a halt: 2 is 1 away from done.
	if sol.In[2] != 1 || sol.In[1] != 2 || sol.In[0] != 3 {
		t.Fatalf("In = %v, want suffix-lengths 3,2,1", sol.In[:3])
	}
	// The 3<->4 loop has no halting exit but still converges at the cap.
	if sol.In[3] != cap || sol.In[4] != cap {
		t.Fatalf("loop In = %d/%d, want %d", sol.In[3], sol.In[4], cap)
	}
}

// TestSolverBackwardEdgeFeasible: an infeasible edge stops liveness-
// style propagation from a successor to its predecessor.
func TestSolverBackwardEdgeFeasible(t *testing.T) {
	// 0 -> {1, 2}; both halt. Block 1 demands 5, block 2 demands 9.
	cfg := chainCFG(0, [][]cdfg.BBID{{1, 2}, nil, nil})
	demand := []int{0, 5, 9}
	run := func(feasible func(from, to cdfg.BBID) bool) int {
		sol := Solve(cfg, Problem[int]{
			Dir:    Backward,
			Bottom: func() int { return 0 },
			Join:   intMax,
			Transfer: func(bb cdfg.BBID, out int) int {
				return max(out, demand[bb])
			},
			EdgeFeasible: feasible,
		})
		return sol.Out[0]
	}
	if got := run(nil); got != 9 {
		t.Fatalf("unpruned Out[0] = %d, want 9", got)
	}
	// Refute the 0->2 edge: only block 1's demand flows back.
	got := run(func(from, to cdfg.BBID) bool { return !(from == 0 && to == 2) })
	if got != 5 {
		t.Fatalf("pruned Out[0] = %d, want 5", got)
	}
}

// TestBitset exercises the liveness lattice primitive directly.
func TestBitset(t *testing.T) {
	b := newBitset(130)
	for _, i := range []int{0, 63, 64, 129} {
		if b.has(i) {
			t.Fatalf("fresh bitset has bit %d", i)
		}
		b.set(i)
		if !b.has(i) {
			t.Fatalf("set bit %d not visible", i)
		}
	}
	b.clear(64)
	if b.has(64) || !b.has(63) || !b.has(129) {
		t.Fatal("clear(64) touched the wrong bits")
	}
	o := newBitset(130)
	o.set(7)
	if grew := b.union(o); !grew || !b.has(7) {
		t.Fatal("union did not absorb a new bit")
	}
	if grew := b.union(o); grew {
		t.Fatal("union of a subset reported growth")
	}
	c := b.clone()
	c.clear(0)
	if !b.has(0) {
		t.Fatal("clone aliases its source")
	}
}
