package static

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/cdfg"
	"repro/internal/isa"
)

// BlockCode is one basic block's expanded context: the per-tile,
// per-cycle instruction grid the lockstep array executes, with pnop
// words unrolled into nil (idle) cells — the same shape the simulator
// decodes segments into.
type BlockCode struct {
	BB  cdfg.BBID
	Len int
	// Grid[t][c] is tile t's instruction in cycle c, nil when idle. The
	// pointers alias the program's segment storage; the grid is
	// read-only.
	Grid [][]*isa.Instr
	// HasBranch mirrors the graph block: control leaves through the
	// branch condition (Succs[0] taken, Succs[1] not taken).
	HasBranch bool
	// Succs are the CFG successors control can flow to: both branch arms
	// for a branching block, the single fallthrough for a jump, nothing
	// for a halting block.
	Succs []cdfg.BBID
}

// CFG is the bitstream's control-flow graph in executable form: what
// the dataflow solver iterates over.
type CFG struct {
	Prog     *asm.Program
	Entry    cdfg.BBID
	NumTiles int
	RRFSize  int
	Blocks   []BlockCode
	Preds    [][]cdfg.BBID
}

// BuildCFG expands the program's segments into per-block instruction
// grids and derives the successor/predecessor edges from the graph's
// block structure, exactly as the simulator's dispatch walks them.
func BuildCFG(p *asm.Program) (*CFG, error) {
	nb := len(p.Graph.Blocks)
	n := p.Grid.NumTiles()
	if len(p.BlockLens) != nb || len(p.BranchTiles) != nb {
		return nil, fmt.Errorf("program tables cover %d/%d blocks, graph has %d",
			len(p.BlockLens), len(p.BranchTiles), nb)
	}
	cfg := &CFG{
		Prog:     p,
		Entry:    p.Graph.Entry,
		NumTiles: n,
		RRFSize:  p.Grid.RRFSize,
		Blocks:   make([]BlockCode, nb),
		Preds:    make([][]cdfg.BBID, nb),
	}
	for bb := 0; bb < nb; bb++ {
		b := p.Graph.Blocks[bb]
		bc := &cfg.Blocks[bb]
		bc.BB = cdfg.BBID(bb)
		bc.Len = p.BlockLens[bb]
		bc.HasBranch = b.HasBranch()
		switch {
		case bc.HasBranch:
			if len(b.Succs) < 2 {
				return nil, fmt.Errorf("block %q branches with %d successors", b.Name, len(b.Succs))
			}
			bc.Succs = b.Succs[:2]
		case len(b.Succs) == 1:
			bc.Succs = b.Succs[:1]
		}
		bc.Grid = make([][]*isa.Instr, n)
		for t := 0; t < n; t++ {
			if bb >= len(p.Tiles[t].Segments) {
				return nil, fmt.Errorf("tile %d holds %d segments, graph has %d blocks",
					t+1, len(p.Tiles[t].Segments), nb)
			}
			row, err := expandSegment(&p.Tiles[t].Segments[bb], bc.Len)
			if err != nil {
				return nil, fmt.Errorf("tile %d block %q: %w", t+1, b.Name, err)
			}
			bc.Grid[t] = row
		}
		for _, s := range bc.Succs {
			if int(s) < 0 || int(s) >= nb {
				return nil, fmt.Errorf("block %q successor %d out of range", b.Name, s)
			}
		}
	}
	for bb := range cfg.Blocks {
		for _, s := range cfg.Blocks[bb].Succs {
			cfg.Preds[s] = append(cfg.Preds[s], cdfg.BBID(bb))
		}
	}
	return cfg, nil
}

// expandSegment unrolls a segment's pnop words into idle (nil) cells,
// mirroring the simulator's decode.
func expandSegment(seg *asm.Segment, blockLen int) ([]*isa.Instr, error) {
	row := make([]*isa.Instr, 0, blockLen)
	for i := range seg.Instrs {
		in := &seg.Instrs[i]
		if in.Kind == isa.KPnop {
			for k := 0; k < in.Count; k++ {
				row = append(row, nil)
			}
		} else {
			row = append(row, in)
		}
	}
	if len(row) != blockLen {
		return nil, fmt.Errorf("segment spans %d cycles, block is %d", len(row), blockLen)
	}
	return row, nil
}
