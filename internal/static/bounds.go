package static

import (
	"fmt"
	"sort"

	"repro/internal/cdfg"
	"repro/internal/isa"
	"repro/internal/power"
	"repro/internal/sim"
)

// Static activity and cost bounds. Every TileCounters field the
// simulator reports is a pure function of the context words — one
// execution of a block always fetches, computes and touches the RF the
// same way — so the per-block activity table is *exact*, not a bound.
// The only execution-dependent quantity is the stall count: how many
// extra service cycles the banked memory needs depends on the addresses
// the program computes. Those are bracketed per cycle from the access
// count alone:
//
//	lower: accesses spread perfectly across banks — max(⌈n/ports⌉, ⌈n/banks⌉) − 1
//	upper: every access falls into one bank — n − 1
//
// Multiplying by a run's block-execution counts turns the tables into a
// pair of synthetic sim.ActivityReports whose power.ActivityEnergy
// evaluations bracket the true energy (energy is monotone in cycles:
// only the leakage term varies, and it scales with cycle count).

// BlockBounds is the static cost table of one block.
type BlockBounds struct {
	// Len is the block's stall-free cycle count.
	Len int
	// StallLB and StallUB bound the stall cycles one execution of the
	// block inflicts.
	StallLB, StallUB int64
	// Tiles is the exact per-tile activity of one execution.
	Tiles []sim.TileCounters
}

// Bounds holds every block's table plus the program's config footprint.
type Bounds struct {
	PerBlock    []BlockBounds
	ConfigWords int
	numTiles    int
}

// buildBounds derives the per-block tables by replaying the scalar
// interpreter's counting rules over the expanded grids.
func buildBounds(cfg *CFG) *Bounds {
	b := &Bounds{
		PerBlock:    make([]BlockBounds, len(cfg.Blocks)),
		ConfigWords: cfg.Prog.TotalWords(),
		numTiles:    cfg.NumTiles,
	}
	ports, banks := cfg.Prog.Grid.MemPorts, cfg.Prog.Grid.MemBanks
	for bb := range cfg.Blocks {
		bc := &cfg.Blocks[bb]
		tb := &b.PerBlock[bb]
		tb.Len = bc.Len
		tb.Tiles = blockCounters(bc, cfg.NumTiles)
		for c := 0; c < bc.Len; c++ {
			na := 0
			for t := 0; t < cfg.NumTiles; t++ {
				if in := bc.Grid[t][c]; in != nil && in.Kind == isa.KOp && in.Op.IsMem() {
					na++
				}
			}
			if na == 0 {
				continue
			}
			lb := (na + ports - 1) / ports
			if spread := (na + banks - 1) / banks; spread > lb {
				lb = spread
			}
			if lb < 1 {
				lb = 1
			}
			tb.StallLB += int64(lb - 1)
			tb.StallUB += int64(na - 1)
		}
	}
	return b
}

// blockCounters replays the scalar interpreter's counting rules over
// one block's expanded grid: the per-execution activity constant table.
func blockCounters(bc *BlockCode, n int) []sim.TileCounters {
	st := make([]sim.TileCounters, n)
	for t := 0; t < n; t++ {
		tc := &st[t]
		prevIdle := false
		for c := 0; c < bc.Len; c++ {
			in := bc.Grid[t][c]
			if in == nil {
				if !prevIdle {
					tc.Fetches++
					tc.PnopFetches++
				}
				prevIdle = true
				tc.IdleCycles++
				continue
			}
			prevIdle = false
			tc.Fetches++
			for i := 0; i < in.NSrc; i++ {
				switch in.Srcs[i].Kind {
				case isa.SrcConst:
					tc.CRFReads++
				case isa.SrcReg:
					tc.RFReads++
				}
			}
			hasOut := false
			switch {
			case in.Kind == isa.KMove:
				tc.MoveCycles++
				hasOut = true
			case in.Op == cdfg.OpLoad:
				tc.OpCycles++
				tc.MemOps++
				tc.MemReads++
				hasOut = true
			case in.Op == cdfg.OpStore:
				tc.OpCycles++
				tc.MemOps++
				tc.MemWrites++
			case in.Op == cdfg.OpBr:
				tc.OpCycles++
				tc.BranchOps++
			default:
				tc.OpCycles++
				tc.ALUOps++
				hasOut = true
			}
			if hasOut && in.WB {
				tc.RFWrites++
			}
		}
	}
	return st
}

// addScaled accumulates k executions' worth of src into dst.
func addScaled(dst *sim.TileCounters, src *sim.TileCounters, k int64) {
	dst.Fetches += src.Fetches * k
	dst.OpCycles += src.OpCycles * k
	dst.MoveCycles += src.MoveCycles * k
	dst.IdleCycles += src.IdleCycles * k
	dst.ALUOps += src.ALUOps * k
	dst.MemOps += src.MemOps * k
	dst.BranchOps += src.BranchOps * k
	dst.PnopFetches += src.PnopFetches * k
	dst.RFReads += src.RFReads * k
	dst.RFWrites += src.RFWrites * k
	dst.CRFReads += src.CRFReads * k
	dst.MemReads += src.MemReads * k
	dst.MemWrites += src.MemWrites * k
}

// sortedExecs returns the executed blocks in id order for deterministic
// accumulation and error reporting.
func sortedExecs(execs map[cdfg.BBID]int64) []cdfg.BBID {
	bbs := make([]cdfg.BBID, 0, len(execs))
	for bb := range execs {
		bbs = append(bbs, bb)
	}
	sort.Slice(bbs, func(i, j int) bool { return bbs[i] < bbs[j] })
	return bbs
}

// ActivityBounds scales the tables by a run's block-execution counts
// into a bracketing pair of activity reports: identical exact counters,
// cycle counts at the stall lower/upper bound.
func (a *Analysis) ActivityBounds(execs map[cdfg.BBID]int64) (lo, hi *sim.ActivityReport, err error) {
	b := a.Bounds
	lo = &sim.ActivityReport{ConfigWords: b.ConfigWords, Tiles: make([]sim.TileCounters, b.numTiles)}
	hi = &sim.ActivityReport{ConfigWords: b.ConfigWords, Tiles: make([]sim.TileCounters, b.numTiles)}
	for _, bb := range sortedExecs(execs) {
		k := execs[bb]
		if k == 0 {
			continue
		}
		if int(bb) < 0 || int(bb) >= len(b.PerBlock) {
			return nil, nil, fmt.Errorf("static: executed block %d outside the program", bb)
		}
		tb := &b.PerBlock[bb]
		lo.Cycles += k * (int64(tb.Len) + tb.StallLB)
		hi.Cycles += k * (int64(tb.Len) + tb.StallUB)
		lo.StallCycles += k * tb.StallLB
		hi.StallCycles += k * tb.StallUB
		for t := 0; t < b.numTiles; t++ {
			addScaled(&lo.Tiles[t], &tb.Tiles[t], k)
			addScaled(&hi.Tiles[t], &tb.Tiles[t], k)
		}
	}
	return lo, hi, nil
}

// EnergyBounds brackets the energy of a run with the given block
// execution counts: lower.Total() ≤ actual ≤ upper.Total(), where
// actual is power.ActivityEnergy of the run's true activity report.
func (a *Analysis) EnergyBounds(pr power.Params, execs map[cdfg.BBID]int64) (lower, upper power.EnergyBreakdown, err error) {
	lo, hi, err := a.ActivityBounds(execs)
	if err != nil {
		return power.EnergyBreakdown{}, power.EnergyBreakdown{}, err
	}
	return pr.ActivityEnergy(a.Prog.Grid, lo), pr.ActivityEnergy(a.Prog.Grid, hi), nil
}

// CheckRun cross-checks the analyzer's claims against one simulated
// run of the same program: executed blocks must be claimed reachable,
// the exact counter tables must reproduce the run's per-tile activity,
// and the run's cycle/stall totals must land inside the static bounds.
// A non-nil error means the analysis is unsound for this program — the
// oracle turns it into the static-unsound outcome.
func (a *Analysis) CheckRun(res *sim.Result) error {
	if res.ConfigWords != a.Bounds.ConfigWords {
		return fmt.Errorf("static: run reports %d config words, program holds %d",
			res.ConfigWords, a.Bounds.ConfigWords)
	}
	for _, bb := range sortedExecs(res.BlockExecs) {
		if res.BlockExecs[bb] > 0 && (int(bb) >= len(a.Reachable) || !a.Reachable[bb]) {
			return fmt.Errorf("static: block %d executed %d times but claimed unreachable",
				bb, res.BlockExecs[bb])
		}
	}
	lo, hi, err := a.ActivityBounds(res.BlockExecs)
	if err != nil {
		return err
	}
	if res.Cycles < lo.Cycles || res.Cycles > hi.Cycles {
		return fmt.Errorf("static: run took %d cycles, static bounds [%d, %d]",
			res.Cycles, lo.Cycles, hi.Cycles)
	}
	if res.StallCycles < lo.StallCycles || res.StallCycles > hi.StallCycles {
		return fmt.Errorf("static: run stalled %d cycles, static bounds [%d, %d]",
			res.StallCycles, lo.StallCycles, hi.StallCycles)
	}
	if len(res.Tiles) != len(lo.Tiles) {
		return fmt.Errorf("static: run reports %d tiles, program has %d", len(res.Tiles), len(lo.Tiles))
	}
	for t := range res.Tiles {
		if res.Tiles[t] != lo.Tiles[t] {
			return fmt.Errorf("static: tile %d activity %+v differs from static table %+v",
				t+1, res.Tiles[t], lo.Tiles[t])
		}
	}
	return nil
}
