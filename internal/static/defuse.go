package static

import (
	"repro/internal/arch"
	"repro/internal/cdfg"
	"repro/internal/isa"
)

// Def-use chains over the bitstream's storage locations. Where the
// liveness pass answers "may anything observe this value" with one bit,
// the chains record *who*: for every context cell that commits a value
// to a tile output register or RF entry, the cells that read that
// definition before it is overwritten. Cross-block flow is summarized
// by the Escapes flag (the definition survives to the block's exit) and
// by uses of upstream values (operands whose reaching definition lies
// in a predecessor block or the initial machine state).

// Site names one occupied context cell.
type Site struct {
	BB    cdfg.BBID
	Tile  int
	Cycle int
}

// Loc names one storage location: tile out register (Reg < 0) or RF
// entry Reg of the tile.
type Loc struct {
	Tile int
	Reg  int
}

// Def is one committed definition and its local uses.
type Def struct {
	Site Site
	Loc  Loc
	Uses []Site
	// Escapes marks definitions still current at block exit: their
	// uses, if any, lie in successor blocks and are accounted for by
	// the liveness fixed point rather than listed here.
	Escapes bool
}

// DefUse holds the chains of every reachable block.
type DefUse struct {
	Defs []Def
	// UpstreamUses counts operand reads whose reaching definition is
	// not in the same block (a predecessor's escaped value or the
	// initial machine state).
	UpstreamUses int
}

// Unused counts definitions with no local uses that do not escape —
// the candidates liveness confirms (or refutes, via a cross-block use)
// as dead.
func (d *DefUse) Unused() int {
	n := 0
	for i := range d.Defs {
		if len(d.Defs[i].Uses) == 0 && !d.Defs[i].Escapes {
			n++
		}
	}
	return n
}

// buildDefUse scans each reachable block once, forward, resolving every
// operand read to the last commit of its location in the same block.
func buildDefUse(cfg *CFG, reachable []bool) *DefUse {
	du := &DefUse{}
	last := make(map[Loc]int) // location -> index into du.Defs
	for bb := range cfg.Blocks {
		if !reachable[bb] {
			continue
		}
		bc := &cfg.Blocks[bb]
		clear(last)
		blockStart := len(du.Defs)
		for c := 0; c < bc.Len; c++ {
			// Reads observe pre-cycle state: resolve all of this cycle's
			// operands before any of its commits land.
			for t := 0; t < cfg.NumTiles; t++ {
				in := bc.Grid[t][c]
				if in == nil {
					continue
				}
				use := Site{BB: cdfg.BBID(bb), Tile: t, Cycle: c}
				for i := 0; i < in.NSrc; i++ {
					var loc Loc
					switch src := in.Srcs[i]; src.Kind {
					case isa.SrcReg:
						loc = Loc{Tile: t, Reg: int(src.Reg)}
					case isa.SrcSelf:
						loc = Loc{Tile: t, Reg: -1}
					case isa.SrcNbr:
						nb := cfg.Prog.Grid.Neighbors(arch.TileID(t))[src.Dir]
						loc = Loc{Tile: int(nb), Reg: -1}
					default:
						continue // immediates have no defining cell
					}
					if di, ok := last[loc]; ok {
						du.Defs[di].Uses = append(du.Defs[di].Uses, use)
					} else {
						du.UpstreamUses++
					}
				}
			}
			for t := 0; t < cfg.NumTiles; t++ {
				in := bc.Grid[t][c]
				if in == nil || !writesOut(in) {
					continue
				}
				site := Site{BB: cdfg.BBID(bb), Tile: t, Cycle: c}
				loc := Loc{Tile: t, Reg: -1}
				du.Defs = append(du.Defs, Def{Site: site, Loc: loc})
				last[loc] = len(du.Defs) - 1
				if in.WB && int(in.WReg) < cfg.RRFSize {
					rfLoc := Loc{Tile: t, Reg: int(in.WReg)}
					du.Defs = append(du.Defs, Def{Site: site, Loc: rfLoc})
					last[rfLoc] = len(du.Defs) - 1
				}
			}
		}
		for _, di := range last {
			if di >= blockStart {
				du.Defs[di].Escapes = true
			}
		}
	}
	return du
}
