package static

import "repro/internal/cdfg"

// Direction orients a dataflow problem over the block CFG.
type Direction int

const (
	// Forward propagates states along CFG edges from the entry block.
	Forward Direction = iota
	// Backward propagates states against CFG edges from every block
	// (liveness-style problems need no distinguished exit: blocks inside
	// infinite loops still get a sound — empty-boundary — solution).
	Backward
)

// Problem is a monotone join-lattice dataflow problem. S is the lattice
// state attached to block boundaries; the solver iterates Transfer and
// Join to the least fixed point.
type Problem[S any] struct {
	Dir Direction
	// Bottom produces the lattice's least element — the initial state of
	// every block boundary.
	Bottom func() S
	// Boundary produces the state entering the CFG: the entry block's
	// in-state (Forward) or every block's seed out-state (Backward). Nil
	// defaults to Bottom.
	Boundary func() S
	// Join merges src into dst, returning the merged state and whether
	// it grew. Join owns dst (it may mutate it in place) and must not
	// retain src.
	Join func(dst, src S) (S, bool)
	// Transfer applies block bb to the incoming state and returns the
	// outgoing state. It must not retain or mutate in.
	Transfer func(bb cdfg.BBID, in S) S
	// FlowEdge filters and adapts the state flowing across one CFG edge
	// (Forward only). Returning false marks the edge infeasible: nothing
	// propagates and the target is not reached through it. Nil means
	// every edge passes the state unchanged.
	FlowEdge func(from, to cdfg.BBID, out S) (S, bool)
	// EdgeFeasible, when non-nil, prunes CFG edges for backward
	// problems: states do not propagate from a successor against an
	// infeasible edge. Callers derive feasibility from a prior forward
	// analysis (constant branch conditions), which is what makes
	// liveness see through never-taken branches.
	EdgeFeasible func(from, to cdfg.BBID) bool
}

// Solution is a solved dataflow problem: the fixed-point states at each
// block's boundary and, for forward problems, which blocks the solver
// reached through feasible edges.
type Solution[S any] struct {
	// In is the state entering each block (Forward: join over feasible
	// incoming edges; Backward: result of the block's transfer).
	In []S
	// Out is the state leaving each block (Forward: transfer result;
	// Backward: join over successors' In).
	Out []S
	// Reached marks blocks the forward solver visited: the entry block
	// plus everything fed by a feasible edge from a reached block. For
	// backward problems every block is marked.
	Reached []bool
}

// Solve runs the worklist algorithm to the least fixed point. The
// worklist is kept in deterministic (block-id ordered, deduplicated)
// rounds so solutions are reproducible run to run.
func Solve[S any](cfg *CFG, p Problem[S]) *Solution[S] {
	nb := len(cfg.Blocks)
	sol := &Solution[S]{
		In:      make([]S, nb),
		Out:     make([]S, nb),
		Reached: make([]bool, nb),
	}
	boundary := p.Boundary
	if boundary == nil {
		boundary = p.Bottom
	}
	inList := make([]bool, nb)
	var work []cdfg.BBID
	push := func(bb cdfg.BBID) {
		if !inList[bb] {
			inList[bb] = true
			work = append(work, bb)
		}
	}

	if p.Dir == Forward {
		for bb := 0; bb < nb; bb++ {
			sol.In[bb] = p.Bottom()
			sol.Out[bb] = p.Bottom()
		}
		sol.In[cfg.Entry], _ = p.Join(sol.In[cfg.Entry], boundary())
		sol.Reached[cfg.Entry] = true
		push(cfg.Entry)
		for len(work) > 0 {
			bb := work[0]
			work = work[1:]
			inList[bb] = false
			out := p.Transfer(bb, sol.In[bb])
			sol.Out[bb] = out
			for _, s := range cfg.Blocks[bb].Succs {
				st := out
				if p.FlowEdge != nil {
					var ok bool
					st, ok = p.FlowEdge(bb, s, out)
					if !ok {
						continue
					}
				}
				merged, grew := p.Join(sol.In[s], st)
				sol.In[s] = merged
				if grew || !sol.Reached[s] {
					sol.Reached[s] = true
					push(s)
				}
			}
		}
		return sol
	}

	// Backward: every block starts from the boundary state on its out
	// side; edges run from successors' in-states to predecessors.
	for bb := 0; bb < nb; bb++ {
		sol.Out[bb] = boundary()
		sol.In[bb] = p.Bottom()
		sol.Reached[bb] = true
		push(cdfg.BBID(bb))
	}
	for len(work) > 0 {
		bb := work[0]
		work = work[1:]
		inList[bb] = false
		in := p.Transfer(bb, sol.Out[bb])
		sol.In[bb] = in
		for _, pred := range cfg.Preds[bb] {
			if p.EdgeFeasible != nil && !p.EdgeFeasible(pred, bb) {
				continue
			}
			merged, grew := p.Join(sol.Out[pred], in)
			sol.Out[pred] = merged
			if grew {
				push(pred)
			}
		}
	}
	return sol
}
