// Package static is the semantic static analyzer for assembled
// bitstreams. Where internal/verify proves an asm.Program is *legal*
// (encodable, capacity-respecting, branch-table-consistent), this
// package proves what the program *does* without running it: which
// blocks can execute, which context words compute values anything
// observable depends on, which operands are compile-time constants, and
// how many cycles and picojoules an execution can cost.
//
// Everything is built on one fixed-point dataflow framework (solver.go):
// a join-lattice worklist solver over the bitstream's block CFG, run
// forward or backward, with optional per-edge transfer for branch
// pruning. Four concrete analyses instantiate it:
//
//  1. reachability — blocks executable from the entry block through
//     branch ops (reach.go);
//  2. liveness + def-use — per-tile output-register and RF def-use
//     chains, and faint-variable liveness over them (live.go,
//     defuse.go);
//  3. constant propagation — SCCP-style constant/route propagation
//     through move/hold chains, refining reachability where a branch
//     condition is provably constant (constprop.go);
//  4. cycle/energy bounds — exact per-block activity tables plus
//     stall-count bounds that bracket power.ActivityEnergy for any
//     execution (bounds.go).
//
// The payoff pass is Strip (strip.go): dead-context elimination that
// rewrites provably-dead ops and moves into pnop idles and drops
// unreachable blocks, preserving the simulator-observable behavior
// (cycles, stalls, block trace, final memory) bit for bit.
//
// The analyzer is differentially tested like every other subsystem: the
// oracle cross-checks its claims against simulated activity and fails
// a run with the static-unsound outcome when they disagree.
package static

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/obs"
)

// Analysis is the result of analyzing one assembled program. All slices
// indexed by block are indexed by cdfg.BBID.
type Analysis struct {
	Prog *asm.Program
	CFG  *CFG

	// StructReachable is branch-agnostic reachability: a block is marked
	// when some path of CFG edges leads to it from the entry block.
	StructReachable []bool
	// Reachable refines StructReachable through constant propagation: a
	// branch whose condition is a provable constant only passes control
	// to the arm it takes. Reachable[b] ⇒ StructReachable[b].
	Reachable []bool
	// BranchConst[b] is the provable constancy of block b's branch
	// condition: BranchUnknown, BranchTaken (condition != 0, control
	// goes to Succs[0]) or BranchNotTaken (condition == 0, Succs[1]).
	BranchConst []BranchFact
	// ConstOperands counts operands (over reachable blocks) the constant
	// propagation proved to carry one single value on every execution.
	ConstOperands int

	// DefUse holds the per-tile register and output def-use chains.
	DefUse *DefUse
	// Live is the faint-variable liveness solution; Live.Dead reports
	// provably-dead context cells.
	Live *Liveness
	// Bounds holds the per-block activity tables and stall bounds.
	Bounds *Bounds

	obs *obs.Recorder
}

// BranchFact is the provable constancy of a block's branch condition.
type BranchFact int8

const (
	BranchUnknown  BranchFact = iota // condition not provably constant
	BranchTaken                      // condition provably != 0: Succs[0]
	BranchNotTaken                   // condition provably == 0: Succs[1]
)

// Option configures an analysis.
type Option func(*Analysis)

// WithObs attaches an instrumentation recorder: Analyze and Strip
// publish static.* counters on it. A nil recorder is a no-op.
func WithObs(r *obs.Recorder) Option {
	return func(a *Analysis) { a.obs = r }
}

// Analyze runs the full analysis pipeline over the program. The program
// must be structurally sound (segments spanning their block lengths, as
// the pnop verifier pass demands); Analyze errors out otherwise rather
// than guessing.
func Analyze(p *asm.Program, opts ...Option) (*Analysis, error) {
	a := &Analysis{Prog: p}
	for _, o := range opts {
		o(a)
	}
	cfg, err := BuildCFG(p)
	if err != nil {
		return nil, fmt.Errorf("static: %w", err)
	}
	a.CFG = cfg
	a.StructReachable = Reachability(cfg)
	a.Reachable, a.BranchConst, a.ConstOperands = propagateConsts(cfg)
	// Constant-refined reachability must be a subset of the structural
	// one; a violation is an analyzer bug, not a program property.
	for bb, r := range a.Reachable {
		if r && !a.StructReachable[bb] {
			return nil, fmt.Errorf("static: block %d const-reachable but not CFG-reachable", bb)
		}
	}
	a.Live = solveLiveness(cfg, a.Reachable, a.BranchConst)
	a.DefUse = buildDefUse(cfg, a.Reachable)
	a.Bounds = buildBounds(cfg)
	if a.obs.Enabled() {
		a.record()
	}
	return a, nil
}

// DeadCells counts the provably-dead occupied context cells, split into
// operation and move words.
func (a *Analysis) DeadCells() (ops, moves int) {
	return a.Live.deadOps, a.Live.deadMoves
}

// UnreachableBlocks counts blocks the refined reachability rules out.
func (a *Analysis) UnreachableBlocks() int {
	n := 0
	for _, r := range a.Reachable {
		if !r {
			n++
		}
	}
	return n
}

// record publishes the analysis outcome on the attached recorder.
func (a *Analysis) record() {
	r := a.obs
	ops, moves := a.DeadCells()
	r.Counter("static.analyses").Inc()
	r.Counter("static.blocks").Add(int64(len(a.CFG.Blocks)))
	r.Counter("static.blocks_unreachable").Add(int64(a.UnreachableBlocks()))
	r.Counter("static.dead_ops").Add(int64(ops))
	r.Counter("static.dead_moves").Add(int64(moves))
	r.Counter("static.const_operands").Add(int64(a.ConstOperands))
}
