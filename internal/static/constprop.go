package static

import (
	"repro/internal/arch"
	"repro/internal/cdfg"
	"repro/internal/isa"
)

// Constant/route propagation: an SCCP-style forward instance of the
// solver. The lattice value of every tile output register and RF entry
// is ⊥ (unvisited), one known constant, or ⊤ (varies); moves pass
// values through hold/route chains unchanged, ALU ops fold via
// cdfg.EvalOp, loads produce ⊤ (memory is not modeled). A branch whose
// condition folds to a constant makes the untaken arm's edge
// infeasible, which is what refines reachability past the structural
// answer.
//
// The entry boundary is deliberately ⊤ everywhere: the simulator
// zero-initializes registers, but claiming that would let the analysis
// fold programs the hardware contract does not promise to fold. ⊤ is
// sound either way.

type cKind uint8

const (
	cBot   cKind = iota // no value reaches here
	cConst              // exactly one value reaches here
	cTop                // more than one value may reach here
)

// cval is one lattice point.
type cval struct {
	k cKind
	v int32
}

func joinVal(a, b cval) (cval, bool) {
	switch {
	case b.k == cBot:
		return a, false
	case a.k == cBot:
		return b, true
	case a.k == cTop:
		return a, false
	case b.k == cTop || a.v != b.v:
		return cval{k: cTop}, true
	default:
		return a, false
	}
}

// cpState is the abstract machine state at a block boundary: one value
// per tile output register and per RF entry. The zero value (nil
// slices) is the lattice bottom. br is the abstract branch condition
// the block's transfer computed (out-states only).
type cpState struct {
	out []cval
	rf  []cval
	br  cval
}

func (s cpState) bottom() bool { return s.out == nil }

func (s cpState) clone() cpState {
	c := cpState{out: make([]cval, len(s.out)), rf: make([]cval, len(s.rf)), br: s.br}
	copy(c.out, s.out)
	copy(c.rf, s.rf)
	return c
}

// cpTop is the all-⊤ boundary state.
func cpTop(cfg *CFG) cpState {
	s := cpState{
		out: make([]cval, cfg.NumTiles),
		rf:  make([]cval, cfg.NumTiles*cfg.RRFSize),
	}
	for i := range s.out {
		s.out[i] = cval{k: cTop}
	}
	for i := range s.rf {
		s.rf[i] = cval{k: cTop}
	}
	return s
}

// readAbstract resolves one operand against the abstract state,
// mirroring the simulator's pre-cycle operand read.
func readAbstract(cfg *CFG, st *cpState, t int, src isa.Src) cval {
	switch src.Kind {
	case isa.SrcConst:
		return cval{k: cConst, v: src.Val}
	case isa.SrcReg:
		if int(src.Reg) >= cfg.RRFSize {
			return cval{k: cTop}
		}
		return st.rf[t*cfg.RRFSize+int(src.Reg)]
	case isa.SrcSelf:
		return st.out[t]
	case isa.SrcNbr:
		nb := cfg.Prog.Grid.Neighbors(arch.TileID(t))[src.Dir]
		return st.out[nb]
	default:
		return cval{k: cTop}
	}
}

// stepAbstract advances the abstract state through one block cycle:
// reads observe the pre-cycle state, results commit at cycle end,
// exactly as the lockstep array does. It returns the branch condition
// if a branch op executed this cycle.
func stepAbstract(cfg *CFG, st *cpState, bb cdfg.BBID, c int, res []cval, has []bool) (cval, bool) {
	bc := &cfg.Blocks[bb]
	br, brSeen := cval{}, false
	for t := 0; t < cfg.NumTiles; t++ {
		has[t] = false
		in := bc.Grid[t][c]
		if in == nil {
			continue
		}
		var vals [isa.MaxSrcs]cval
		for i := 0; i < in.NSrc; i++ {
			vals[i] = readAbstract(cfg, st, t, in.Srcs[i])
		}
		switch {
		case in.Kind == isa.KMove:
			res[t] = vals[0]
			has[t] = true
		case in.Op == cdfg.OpLoad:
			res[t] = cval{k: cTop}
			has[t] = true
		case in.Op == cdfg.OpStore:
			// no result
		case in.Op == cdfg.OpBr:
			br, brSeen = vals[0], true
		default:
			out := cval{k: cTop}
			allConst := true
			var args [isa.MaxSrcs]int32
			for i := 0; i < in.NSrc; i++ {
				if vals[i].k != cConst {
					allConst = false
					break
				}
				args[i] = vals[i].v
			}
			if allConst {
				if v, err := cdfg.EvalOp(in.Op, args[:in.NSrc]); err == nil {
					out = cval{k: cConst, v: v}
				}
			}
			res[t] = out
			has[t] = true
		}
	}
	for t := 0; t < cfg.NumTiles; t++ {
		if !has[t] {
			continue
		}
		in := bc.Grid[t][c]
		st.out[t] = res[t]
		if in.WB && int(in.WReg) < cfg.RRFSize {
			st.rf[t*cfg.RRFSize+int(in.WReg)] = res[t]
		}
	}
	return br, brSeen
}

// propagateConsts runs the SCCP fixed point and returns the refined
// reachability, the per-block branch facts, and the count of operand
// reads over reachable blocks that carry a provable constant.
func propagateConsts(cfg *CFG) ([]bool, []BranchFact, int) {
	res := make([]cval, cfg.NumTiles)
	has := make([]bool, cfg.NumTiles)
	transfer := func(bb cdfg.BBID, in cpState) cpState {
		st := in.clone()
		st.br = cval{}
		for c := 0; c < cfg.Blocks[bb].Len; c++ {
			if br, ok := stepAbstract(cfg, &st, bb, c, res, has); ok {
				// One branch op per block in verified programs; join keeps
				// the transfer monotone on unverified input.
				st.br, _ = joinVal(st.br, br)
			}
		}
		return st
	}
	sol := Solve(cfg, Problem[cpState]{
		Dir:      Forward,
		Bottom:   func() cpState { return cpState{} },
		Boundary: func() cpState { return cpTop(cfg) },
		Join: func(dst, src cpState) (cpState, bool) {
			if src.bottom() {
				return dst, false
			}
			if dst.bottom() {
				return src.clone(), true
			}
			grew := false
			for i := range dst.out {
				var g bool
				dst.out[i], g = joinVal(dst.out[i], src.out[i])
				grew = grew || g
			}
			for i := range dst.rf {
				var g bool
				dst.rf[i], g = joinVal(dst.rf[i], src.rf[i])
				grew = grew || g
			}
			return dst, grew
		},
		Transfer: transfer,
		FlowEdge: func(from, to cdfg.BBID, out cpState) (cpState, bool) {
			bc := &cfg.Blocks[from]
			if !bc.HasBranch || out.br.k != cConst {
				return out, true
			}
			target := bc.Succs[1]
			if out.br.v != 0 {
				target = bc.Succs[0]
			}
			return out, to == target
		},
	})

	facts := make([]BranchFact, len(cfg.Blocks))
	for bb := range cfg.Blocks {
		if !sol.Reached[bb] || !cfg.Blocks[bb].HasBranch {
			continue
		}
		if br := sol.Out[bb].br; br.k == cConst {
			if br.v != 0 {
				facts[bb] = BranchTaken
			} else {
				facts[bb] = BranchNotTaken
			}
		}
	}
	consts := countConstOperands(cfg, sol)
	return sol.Reached, facts, consts
}

// countConstOperands replays each reachable block over its fixed-point
// in-state and counts register/route operand reads (not immediates)
// that resolve to a single constant.
func countConstOperands(cfg *CFG, sol *Solution[cpState]) int {
	res := make([]cval, cfg.NumTiles)
	has := make([]bool, cfg.NumTiles)
	count := 0
	for bb := range cfg.Blocks {
		if !sol.Reached[bb] || sol.In[bb].bottom() {
			continue
		}
		st := sol.In[bb].clone()
		bc := &cfg.Blocks[bb]
		for c := 0; c < bc.Len; c++ {
			for t := 0; t < cfg.NumTiles; t++ {
				in := bc.Grid[t][c]
				if in == nil {
					continue
				}
				for i := 0; i < in.NSrc; i++ {
					if in.Srcs[i].Kind == isa.SrcConst {
						continue
					}
					if readAbstract(cfg, &st, t, in.Srcs[i]).k == cConst {
						count++
					}
				}
			}
			stepAbstract(cfg, &st, cdfg.BBID(bb), c, res, has)
		}
	}
	return count
}
