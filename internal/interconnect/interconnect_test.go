package interconnect

import (
	"testing"

	"repro/internal/arch"
)

func TestServiceCycles(t *testing.T) {
	m := &Model{Ports: 4, Banks: 8}
	acc := func(addrs ...int32) []Access {
		var a []Access
		for _, ad := range addrs {
			a = append(a, Access{Addr: ad})
		}
		return a
	}
	cases := []struct {
		name string
		accs []Access
		want int
	}{
		{"none", nil, 1},
		{"one", acc(0), 1},
		{"four distinct banks", acc(0, 1, 2, 3), 1},
		{"five distinct banks", acc(0, 1, 2, 3, 4), 2},
		{"eight distinct banks", acc(0, 1, 2, 3, 4, 5, 6, 7), 2},
		{"two same bank", acc(0, 8), 2},
		{"three same bank", acc(3, 11, 19), 3},
		{"bank dominates ports", acc(0, 8, 16, 24), 4},
		{"negative addresses wrap", acc(-1, -9), 2},
	}
	for _, c := range cases {
		if got := m.ServiceCycles(c.accs); got != c.want {
			t.Errorf("%s: ServiceCycles = %d, want %d", c.name, got, c.want)
		}
		if got := m.Stalls(c.accs); got != c.want-1 {
			t.Errorf("%s: Stalls = %d, want %d", c.name, got, c.want-1)
		}
	}
}

func TestNewFromGrid(t *testing.T) {
	g := arch.MustGrid(arch.HOM64)
	m := New(g)
	if m.Ports != g.MemPorts || m.Banks != g.MemBanks {
		t.Errorf("New() = %+v, want ports %d banks %d", m, g.MemPorts, g.MemBanks)
	}
}
