// Package interconnect models the logarithmic interconnect between the
// CGRA's load/store tiles and the banked data memory (Fig 1 of the
// paper). Accesses issued in the same cycle are served in parallel up to
// the port count, except that accesses falling into the same word-
// interleaved bank serialize; extra service cycles stall the whole array
// through the global stall network.
package interconnect

import "repro/internal/arch"

// Access is one data-memory request issued in a cycle.
type Access struct {
	Tile  arch.TileID
	Addr  int32
	Store bool
}

// Model is a logarithmic interconnect with a fixed number of ports into a
// word-interleaved banked memory.
type Model struct {
	Ports int
	Banks int
}

// New returns the interconnect of the given grid.
func New(g *arch.Grid) *Model { return &Model{Ports: g.MemPorts, Banks: g.MemBanks} }

// ServiceCycles returns how many cycles the batch of same-cycle accesses
// needs: at least one, one per port-group, and one per same-bank
// conflicting access.
func (m *Model) ServiceCycles(accs []Access) int {
	if len(accs) == 0 {
		return 1
	}
	perBank := map[int32]int{}
	maxBank := 0
	for _, a := range accs {
		b := a.Addr % int32(m.Banks)
		if b < 0 {
			b += int32(m.Banks)
		}
		perBank[b]++
		if perBank[b] > maxBank {
			maxBank = perBank[b]
		}
	}
	need := (len(accs) + m.Ports - 1) / m.Ports
	if maxBank > need {
		need = maxBank
	}
	if need < 1 {
		need = 1
	}
	return need
}

// Stalls returns the global stall cycles the batch inflicts on the array.
func (m *Model) Stalls(accs []Access) int { return m.ServiceCycles(accs) - 1 }
