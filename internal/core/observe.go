package core

import (
	"repro/internal/obs"
)

// recordMapStats publishes one Map call's Stats and arena high-water marks
// to the recorder's registry. It runs once per Map call (deferred, so
// failed mappings report too) and only when a recorder is attached — the
// hot path itself touches plain Stats ints, never the registry.
func recordMapStats(r *obs.Recorder, st *Stats, ar *mapperArena) {
	r.Counter("core.map.calls").Inc()
	r.Counter("core.map.partials").Add(int64(st.Partials))
	r.Counter("core.map.retries").Add(int64(st.Retries))
	r.Counter("core.map.recomputes").Add(int64(st.Recomputes))
	r.Counter("core.prune.acmap").Add(int64(st.PrunedACMAP))
	r.Counter("core.prune.ecmap").Add(int64(st.PrunedECMAP))
	r.Counter("core.prune.stochastic").Add(int64(st.PrunedStochastic))
	r.Counter("core.memo.hits").Add(int64(st.MemoHits))
	r.Counter("core.memo.misses").Add(int64(st.MemoMisses))
	r.Counter("core.memo.resets").Add(int64(st.MemoResets))
	r.Counter("core.memo.evictions").Add(int64(st.MemoEvictions))
	r.Counter("core.phase.schedule_us").Add(st.Phases.Schedule.Microseconds())
	r.Counter("core.phase.route_us").Add(st.Phases.Route.Microseconds())
	r.Counter("core.phase.bind_us").Add(st.Phases.Bind.Microseconds())
	r.Counter("core.phase.prune_us").Add(st.Phases.Prune.Microseconds())
	r.Counter("core.phase.finalize_us").Add(st.Phases.Finalize.Microseconds())
	r.Histogram("core.map.us").Observe(st.CompileTime.Microseconds())
	// Arena gauges are last-writer-wins snapshots of the scratch state's
	// high-water marks — chunk capacities only grow, so across a portfolio
	// the gauges converge on the largest arena.
	r.Gauge("core.arena.partials_free").Set(int64(len(ar.free)))
	r.Gauge("core.arena.plan_chunk_cap").Set(int64(cap(ar.plans.buf)))
	r.Gauge("core.arena.move_chunk_cap").Set(int64(cap(ar.moves.buf)))
	r.Gauge("core.arena.read_chunk_cap").Set(int64(cap(ar.reads.buf)))
	r.Gauge("core.arena.memo_chunk_cap").Set(int64(cap(ar.memoVals.buf)))
	r.Gauge("core.arena.path_cache_size").Set(int64(len(ar.pathCache)))
}

// recordExactStats publishes one exact-backend search's counters. Like
// recordMapStats it runs once per Map call, only with a recorder attached.
func recordExactStats(r *obs.Recorder, st *ExactStats) {
	r.Counter("core.exact.expanded").Add(int64(st.Expanded))
	r.Counter("core.exact.leaves").Add(int64(st.Leaves))
	r.Counter("core.exact.pruned_bound").Add(int64(st.BoundPruned))
	r.Counter("core.exact.pruned_conflict").Add(int64(st.ConflictPruned))
	r.Counter("core.exact.pruned_mem").Add(int64(st.MemPruned))
	r.Counter("core.exact.rejected_dataflow").Add(int64(st.DataflowRejected))
	r.Counter("core.exact.improved").Add(int64(st.Improved))
	if st.Proven {
		r.Counter("core.exact.proven").Inc()
	}
}
