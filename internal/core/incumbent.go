package core

import (
	"errors"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/cdfg"
)

// ErrPrunedByIncumbent marks a portfolio job abandoned because its
// admissible word lower bound proves it cannot beat the best mapping
// another job already completed. A pruned job is a provable loser under
// the portfolio's deterministic tie-break, so discarding it never changes
// the winner (see the invariance argument on incumbent.prune).
var ErrPrunedByIncumbent = errors.New("pruned by portfolio incumbent")

// WordLowerBound returns an admissible lower bound on the total context
// words of any mapping of g onto grid: for every block containing at least
// one real operation (anything but a constant or symbol read), the block
// contributes max(tiles, ops) words. Each operation occupies at least one
// instruction word (recompute duplication only adds more), and in a block
// whose schedule is non-empty every tile without an instruction still
// emits at least one pnop word (assembleSegment folds a maximal empty run
// into a single word, and segments never span blocks), so the block's
// words are at least max(tiles, ops). Blocks with no real operations can
// schedule in zero cycles and are bounded by zero.
//
// This is the portfolio-level analogue of the exact backend's per-block
// floor (blockFloor counts only the tile term); the sharper op term makes
// the pre-job skip useful on grids smaller than the op count.
func WordLowerBound(g *cdfg.Graph, grid *arch.Grid) int {
	total := 0
	for _, b := range g.Blocks {
		total += blockWordFloor(b, grid.NumTiles())
	}
	return total
}

func blockWordFloor(b *cdfg.BasicBlock, numTiles int) int {
	ops := 0
	for _, nd := range b.Nodes {
		if nd.Op != cdfg.OpConst && nd.Op != cdfg.OpSym {
			ops++
		}
	}
	if ops == 0 {
		return 0
	}
	if ops > numTiles {
		return ops
	}
	return numTiles
}

// incumbentRec is one published portfolio result: the completed job's
// total context words plus its (seed, job index) tie-break identity.
type incumbentRec struct {
	words int
	seed  int64
	job   int
}

// incumbent shares the best completed total-words result between portfolio
// jobs through a single CAS'd pointer. "Best" uses the portfolio's own
// deterministic order — fewest words, then lowest seed, then earliest job —
// so the record always names the job the final scan would prefer among
// those published so far.
type incumbent struct {
	rec atomic.Pointer[incumbentRec]
	// tiePrune allows pruning on bound equality. It is only sound when the
	// objective is the pure word count (PortfolioOptions.Objective == nil):
	// a custom objective's Secondary could still win an equal-Primary tie.
	tiePrune bool
}

// beats reports whether a precedes b in the portfolio's deterministic
// preference order.
func (a *incumbentRec) beats(b *incumbentRec) bool {
	if a.words != b.words {
		return a.words < b.words
	}
	if a.seed != b.seed {
		return a.seed < b.seed
	}
	return a.job < b.job
}

// publish records a completed job's word count, keeping the best record
// under the deterministic order. Safe for concurrent use.
func (inc *incumbent) publish(words int, seed int64, job int) {
	nr := &incumbentRec{words: words, seed: seed, job: job}
	for {
		cur := inc.rec.Load()
		if cur != nil && !nr.beats(cur) {
			return
		}
		if inc.rec.CompareAndSwap(cur, nr) {
			return
		}
	}
}

// prune reports whether a job whose final total words are provably ≥ bound
// can be abandoned, and the incumbent word count that justified it.
//
// Winner invariance: let h be the current record (a completed job). A job
// j is pruned only when (a) bound > h.words — j's final score is strictly
// worse than a completed competitor's, so j can never win; or (b) the
// objective is the pure word count, bound == h.words, and j loses the
// (seed, job) tie-break to h — then even if j finished at exactly its
// bound it would lose to h in the final deterministic scan, and h itself
// either wins or loses only to a job that also beats j. Publishing only
// ever improves the record, so a prune decision made against any
// intermediate record remains valid against the final one. Hence the set
// of jobs that can be the winner is unchanged by pruning, at any
// GOMAXPROCS and any completion order; only the per-job reports (pruned
// vs. completed loser) may differ between schedules.
func (inc *incumbent) prune(bound int, seed int64, job int) (int, bool) {
	cur := inc.rec.Load()
	if cur == nil {
		return 0, false
	}
	if bound > cur.words {
		return cur.words, true
	}
	if bound == cur.words && inc.tiePrune {
		if cur.seed < seed || (cur.seed == seed && cur.job < job) {
			return cur.words, true
		}
	}
	return 0, false
}
