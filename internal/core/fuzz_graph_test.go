package core_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cdfg"
	"repro/internal/oracle"
)

// FuzzGraphEndToEnd fuzzes the pipeline with the graph itself as the
// input, via the cdfg text form — unlike FuzzEndToEnd, whose inputs are
// generator seeds, this target can replay arbitrary graph shapes, so its
// seeds include the oracle shrinker's minimized reproducers: any graph
// that ever exposed a mapper bug keeps replaying in plain `go test`. Run
//
//	go test -fuzz=FuzzGraphEndToEnd ./internal/core
//
// to let the mutator bend the graphs further.
func FuzzGraphEndToEnd(f *testing.F) {
	addGraph := func(g *cdfg.Graph, modeIdx, cfgIdx int64) {
		data, err := g.MarshalText()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data, modeIdx, cfgIdx)
	}
	for s := int64(0); s < 3; s++ {
		g, _ := cdfg.Generate(rand.New(rand.NewSource(s)), cdfg.DefaultGenConfig())
		addGraph(g, s, s+1)
	}
	// The minimized reproducers double as corpus seeds.
	repros, err := filepath.Glob(filepath.Join("..", "oracle", "testdata", "repro", "*.repro"))
	if err != nil {
		f.Fatal(err)
	}
	for i, path := range repros {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		g, _, err := oracle.ParseRepro(data)
		if err != nil {
			f.Fatalf("%s: %v", path, err)
		}
		addGraph(g, int64(i), int64(i))
	}

	cells := oracle.AllCells()
	f.Fuzz(func(t *testing.T, data []byte, modeIdx, cfgIdx int64) {
		if len(data) > 1<<16 {
			return
		}
		g, err := cdfg.UnmarshalText(data)
		if err != nil {
			return // not a well-formed graph; nothing to check
		}
		if g.NumNodes() > 150 || len(g.Blocks) > 24 {
			return // keep the mapper's search bounded per input
		}
		mem := make(cdfg.Memory, 64)
		if _, err := cdfg.Interp(g, mem.Clone()); err != nil {
			return // graph traps (OOB access, timeout); no reference to compare
		}
		idx := (modeIdx*4 + cfgIdx) % int64(len(cells))
		if idx < 0 {
			idx += int64(len(cells))
		}
		cell := cells[idx]
		var p oracle.Pipeline
		if r := p.Check(g, mem, cell, modeIdx^cfgIdx); r.Outcome.Bug() {
			gtext, _ := g.MarshalText()
			t.Fatalf("%s: %s: %v\n%s", cell, r.Outcome, r.Err, gtext)
		}
	})
}
