package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/cdfg"
)

// randomLoopProgram generates a random but well-formed multi-block loop
// program: an entry block initializing symbols, one or two loop nests over
// random arithmetic bodies with loads and stores into disjoint regions,
// and an exit. Inputs occupy mem[0:inN), outputs mem[inN:inN+outN).
func randomLoopProgram(rng *rand.Rand) (*cdfg.Graph, cdfg.Memory) {
	const inN, outN = 16, 16
	trip := int32(2 + rng.Intn(6))
	bodyOps := 3 + rng.Intn(12)
	nSyms := 1 + rng.Intn(3)

	b := cdfg.NewBuilder(fmt.Sprintf("fuzz%d", rng.Int31()))
	e := b.Block("entry")
	e.SetSym("i", e.Const(0))
	for s := 0; s < nSyms; s++ {
		e.SetSym(fmt.Sprintf("v%d", s), e.Const(rng.Int31n(50)-25))
	}
	e.Jump("loop")

	l := b.Block("loop")
	i := l.Sym("i")
	pool := []cdfg.Value{i, l.Const(rng.Int31n(20) + 1)}
	for s := 0; s < nSyms; s++ {
		pool = append(pool, l.Sym(fmt.Sprintf("v%d", s)))
	}
	// A couple of loads from the input region (addresses in [0, inN)).
	for k := 0; k < 1+rng.Intn(3); k++ {
		off := rng.Int31n(inN - trip)
		pool = append(pool, l.Load(l.AddC(i, off)))
	}
	binops := []cdfg.Opcode{
		cdfg.OpAdd, cdfg.OpSub, cdfg.OpMul, cdfg.OpAnd, cdfg.OpOr,
		cdfg.OpXor, cdfg.OpMin, cdfg.OpMax, cdfg.OpLt, cdfg.OpNe,
	}
	for k := 0; k < bodyOps; k++ {
		op := binops[rng.Intn(len(binops))]
		a := pool[rng.Intn(len(pool))]
		c := pool[rng.Intn(len(pool))]
		pool = append(pool, l.OpN(op, a, c))
	}
	// Store one result per iteration into the output region.
	l.Store(l.AddC(i, inN), pool[len(pool)-1])
	// Update a random subset of the carried symbols.
	for s := 0; s < nSyms; s++ {
		if rng.Intn(2) == 0 {
			l.SetSym(fmt.Sprintf("v%d", s), pool[rng.Intn(len(pool))])
		}
	}
	i2 := l.AddC(i, 1)
	l.SetSym("i", i2)
	l.BranchIf(l.Lt(i2, l.Const(trip)), "loop", "exit")

	x := b.Block("exit")
	x.Store(x.Const(inN+outN-1), x.Sym("i"))
	g := b.Finish()

	mem := make(cdfg.Memory, inN+outN)
	for k := range mem[:inN] {
		mem[k] = rng.Int31n(200) - 100
	}
	return g, mem
}

// FuzzMapAndCheck drives the same generator and invariants from Go's
// native fuzzing engine: the inputs select the program-generator seed and
// a flow×configuration cell. The checked-in corpus under
// testdata/fuzz/FuzzMapAndCheck covers every flow and configuration with
// seeds known to produce mappings (including retry and recompute paths),
// so a short CI run — where corpus entries execute as plain subtests —
// starts from interesting inputs instead of zeros. Run with
//
//	go test -fuzz=FuzzMapAndCheck ./internal/core
//
// to explore beyond the corpus.
func FuzzMapAndCheck(f *testing.F) {
	f.Fuzz(func(t *testing.T, seed, flowIdx, cfgIdx int64) {
		flows := Flows()
		cfgs := arch.ConfigNames()
		flow := flows[int(((flowIdx%int64(len(flows)))+int64(len(flows)))%int64(len(flows)))]
		cfg := cfgs[int(((cfgIdx%int64(len(cfgs)))+int64(len(cfgs)))%int64(len(cfgs)))]
		g, _ := randomLoopProgram(rand.New(rand.NewSource(seed)))
		opt := DefaultOptions(flow)
		opt.Seed = seed
		m, err := Map(g, arch.MustGrid(cfg), opt)
		if err != nil {
			return // clean mapping failures are acceptable
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("%s/%s seed %d: %v\n%s", flow, cfg, seed, err, g)
		}
		if flow.memoryAware() {
			if ok, tile := m.FitsMemory(); !ok {
				t.Fatalf("%s/%s seed %d: overflow on tile %d", flow, cfg, seed, tile+1)
			}
		}
	})
}

// TestFuzzMapAndCheck maps randomly generated loop programs under every
// flow and configuration and requires the mapper either to fail cleanly
// or to produce a mapping that passes the symbolic dataflow check (run
// inside Map) and the memory constraint.
func TestFuzzMapAndCheck(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 10
	}
	rng := rand.New(rand.NewSource(42))
	flows := Flows()
	cfgs := arch.ConfigNames()
	mapped, failed := 0, 0
	for trial := 0; trial < trials; trial++ {
		g, _ := randomLoopProgram(rng)
		flow := flows[rng.Intn(len(flows))]
		cfg := cfgs[rng.Intn(len(cfgs))]
		opt := DefaultOptions(flow)
		opt.Seed = int64(trial)
		m, err := Map(g, arch.MustGrid(cfg), opt)
		if err != nil {
			failed++
			continue
		}
		mapped++
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d (%s/%s): %v\n%s", trial, flow, cfg, err, g)
		}
		if flow.memoryAware() {
			if ok, tile := m.FitsMemory(); !ok {
				t.Fatalf("trial %d (%s/%s): overflow on tile %d", trial, flow, cfg, tile+1)
			}
		}
	}
	if mapped == 0 {
		t.Fatal("fuzz never produced a mapping")
	}
	t.Logf("fuzz: %d mapped, %d failed cleanly", mapped, failed)
}
