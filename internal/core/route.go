package core

import (
	"math"

	"repro/internal/arch"
	"repro/internal/cdfg"
	"repro/internal/isa"
)

// Routing cost weights. Moves are real context words; holds and register
// pressure only constrain future freedom, so they cost far less.
const (
	costMove      = 1.0
	costHoldCycle = 0.02
	costRegAlloc  = 0.2
	costNewConst  = 0.05
	costRecompute = 1.1
	costCycle     = 0.35 // schedule-length growth per cycle
)

// moveStep is one routing move a plan will insert.
type moveStep struct {
	Tile  arch.TileID
	Cycle int
	Src   isa.Src
	// Produces the routed value: recorded as a new location on apply.
}

// holdAdd extends an output-register hold on a tile.
type holdAdd struct {
	Tile arch.TileID
	Prod int
	Last int
}

// regRead records a register-file read (for symbol writeback ordering).
type regRead struct {
	Tile  arch.TileID
	Reg   int8
	Cycle int
}

// wbRetro sets a writeback on an already placed slot so later consumers on
// the same tile can read the value from the register file.
type wbRetro struct {
	Tile  arch.TileID
	Cycle int
	// Reg is allocated at apply time.
}

// routePlan is one feasible way to deliver a value to a consumer.
type routePlan struct {
	Src      isa.Src
	Moves    []moveStep
	Holds    []holdAdd
	Retro    *wbRetro
	Reads    []regRead
	Consts   []constAdd
	Recomp   *recompStep
	ValueLoc int // index of the loc served (for diagnostics); -1 for const/recompute
	Cost     float64
}

// constAdd interns an immediate in a tile's constant pool.
type constAdd struct {
	Tile arch.TileID
	Val  int32
}

// recompStep duplicates an all-constant-operand producer on a tile (the
// recompute graph transformation).
type recompStep struct {
	Tile  arch.TileID
	Cycle int
	Node  cdfg.NodeID
	Srcs  [isa.MaxSrcs]isa.Src
	NSrc  int
}

// overlay tracks the tentative effects of sibling operand plans within one
// candidate so that plans don't collide before the candidate is applied.
// An overlay holds at most a handful of entries (one candidate's routing
// side effects), so every set — including the tentative register counts
// and constant-pool additions — is a small slice scanned linearly; the
// single live overlay is owned by the arena and reset per candidate.
type overlay struct {
	claimed []int64 // slots taken by this candidate
	prods   []int64 // productions added at (tile, cycle)
	holds   []holdAdd
	regs    []arch.TileID // tiles with tentative register allocations (with multiplicity)
	retros  []int64       // slots claimed for a retrofitted writeback
	consts  []constAdd
}

// clean reports whether the overlay holds nothing beyond the consumer's
// own slot claim — the precondition for memoizing an operand search.
func (o *overlay) clean() bool {
	return len(o.claimed) == 1 && len(o.holds) == 0 && len(o.regs) == 0 &&
		len(o.retros) == 0 && len(o.consts) == 0
}

func slotKey(t arch.TileID, c int) int64 { return int64(t)<<32 | int64(uint32(c)) }

func containsKey(keys []int64, k int64) bool {
	for _, x := range keys {
		if x == k {
			return true
		}
	}
	return false
}

func (o *overlay) claim(t arch.TileID, c int, produces bool) {
	o.claimed = append(o.claimed, slotKey(t, c))
	if produces {
		o.prods = append(o.prods, slotKey(t, c))
	}
}

// addReg records a tentative register allocation on tile t.
func (o *overlay) addReg(t arch.TileID) {
	o.regs = append(o.regs, t)
}

// regsAt counts the tentative register allocations on tile t.
func (o *overlay) regsAt(t arch.TileID) int {
	n := 0
	for _, x := range o.regs {
		if x == t {
			n++
		}
	}
	return n
}

func (o *overlay) merge(p *routePlan) {
	for _, m := range p.Moves {
		o.claim(m.Tile, m.Cycle, true)
	}
	if p.Recomp != nil {
		o.claim(p.Recomp.Tile, p.Recomp.Cycle, true)
	}
	o.holds = append(o.holds, p.Holds...)
	if p.Retro != nil {
		o.addReg(p.Retro.Tile)
		o.retros = append(o.retros, slotKey(p.Retro.Tile, p.Retro.Cycle))
	}
	o.consts = append(o.consts, p.Consts...)
}

// bbCtx carries the per-block mapping context shared by all partials.
type bbCtx struct {
	grid   *arch.Grid
	block  *cdfg.BasicBlock
	opt    *Options
	budget []int // remaining CM words per tile (committed blocks deducted)
	// soft additionally reserves words on home-hosting tiles; it steers
	// placement pressure and home pinning but never hard-prunes.
	soft  []int
	sched *cdfg.Sched
	users [][]cdfg.NodeID
	// symHomes is the global symbol-home table (shared, extended as homes
	// are pinned; pinning happens between blocks, not inside the beam).
	symHomes map[string]SymLoc
	// liveOutValues marks nodes whose value a live-out symbol publishes.
	liveOutValues map[cdfg.NodeID]bool
	// cab enables constraint-aware binding (tile blacklisting).
	cab bool
	// arena owns all reusable mapper scratch state (see arena.go); the
	// block mapper is single-goroutine, so sharing is never an issue.
	arena *mapperArena
	// stats points at the mapping's Stats so the hot path can bump memo
	// counters without reaching through Options (may be nil in white-box
	// tests that build a bbCtx by hand).
	stats *Stats
	// hopsBuf is the scratch hop list reused across planChain calls.
	hopsBuf []arch.TileID
}

// free reports whether the slot is empty in both the partial and overlay.
func (cx *bbCtx) free(p *partial, o *overlay, t arch.TileID, c int) bool {
	if c < 0 {
		return false
	}
	if o != nil && containsKey(o.claimed, slotKey(t, c)) {
		return false
	}
	return !p.tiles[t].occupied(c)
}

// canProduce reports whether a value-producing instruction may be placed
// at (t, c) without clobbering a held output value.
func (cx *bbCtx) canProduce(p *partial, o *overlay, t arch.TileID, c int) bool {
	if !p.tiles[t].canProduceAt(c) {
		return false
	}
	if o != nil {
		for _, h := range o.holds {
			if h.Tile == t && h.Prod < c && c < h.Last {
				return false
			}
		}
	}
	return true
}

// outputLive reports whether the value produced on t at prod survives to a
// read at cycle `read`, considering overlay productions.
func (cx *bbCtx) outputLive(p *partial, o *overlay, t arch.TileID, prod, read int) bool {
	if !p.tiles[t].outputLive(prod, read, cx.block) {
		return false
	}
	if o != nil {
		for _, k := range o.prods {
			if arch.TileID(k>>32) == t {
				c := int(int32(k))
				if prod < c && c < read {
					return false
				}
			}
		}
	}
	return true
}

// regAvailableAt reports whether tile t can provide a register for a
// value written at the given cycle, after overlay allocations. Freed
// registers recycle when their recorded reads and writes do not come
// after the new write.
func (cx *bbCtx) regAvailableAt(p *partial, o *overlay, t arch.TileID, cycle int) bool {
	extra := 0
	if o != nil {
		extra = o.regsAt(t)
	}
	rrf := cx.grid.RRFSize
	n := 0
	for r := 0; r < rrf; r++ {
		if p.tiles[t].RegMask&(1<<r) != 0 {
			continue
		}
		if int(p.regLastRead[int(t)*rrf+r]) > cycle || int(p.regLastWrite[int(t)*rrf+r]) > cycle {
			continue
		}
		n++
	}
	return n > extra
}

// freshRegAvailable reports whether tile t still has a never-touched
// register for pinning a symbol home readable from cycle 0.
func (cx *bbCtx) freshRegAvailable(p *partial, o *overlay, t arch.TileID) bool {
	extra := 0
	if o != nil {
		extra = o.regsAt(t)
	}
	rrf := cx.grid.RRFSize
	n := 0
	for r := 0; r < rrf; r++ {
		if p.tiles[t].RegMask&(1<<r) == 0 && p.tiles[t].EverUsed&(1<<r) == 0 {
			n++
		}
	}
	return n > extra
}

// constOK reports whether tile t can reference immediate v, and whether it
// is a new pool entry.
func (cx *bbCtx) constOK(p *partial, o *overlay, t arch.TileID, v int32) (ok, isNew bool) {
	ts := &p.tiles[t]
	if ts.hasConst(v) {
		return true, false
	}
	n := len(ts.Consts)
	if o != nil {
		for _, ov := range o.consts {
			if ov.Tile != t {
				continue
			}
			if ov.Val == v {
				return true, false
			}
			n++
		}
	}
	return n < cx.opt.MaxCRF, true
}

// retroClaimed reports whether a sibling plan of this candidate already
// claimed the slot for a retrofitted writeback.
func (cx *bbCtx) retroClaimed(o *overlay, t arch.TileID, c int) bool {
	return o != nil && containsKey(o.retros, slotKey(t, c))
}

// dirFromTo returns the direction d such that the neighbor of `at` in
// direction d is `from` (i.e. the source selector the consumer uses).
func (cx *bbCtx) dirFromTo(at, from arch.TileID) (isa.Dir, bool) {
	for i, n := range cx.grid.Neighbors(at) {
		if n == from {
			return isa.Dir(i), true
		}
	}
	return 0, false
}

// planOperand finds the cheapest feasible plan delivering the value of
// node v to a consumer executing on tile tc at cycle cc, writing it into
// *out. Returns false when no plan exists (leaving *out unspecified). The
// out-parameter style keeps the ~140-byte routePlan out of every return
// path of the search tree, which showed up as duffcopy/duffzero in
// profiles.
func (cx *bbCtx) planOperand(p *partial, o *overlay, v cdfg.NodeID, tc arch.TileID, cc int, blacklist uint32, out *routePlan) bool {
	nd := cx.block.Nodes[v]
	// Constants are served from the consumer tile's CRF.
	if nd.Op == cdfg.OpConst {
		ok, isNew := cx.constOK(p, o, tc, nd.Val)
		if !ok {
			return false
		}
		*out = routePlan{Src: isa.Const(nd.Val), ValueLoc: -1}
		if isNew {
			out.Cost += costNewConst
			out.Consts = append(cx.arena.consta.take(1), constAdd{Tile: tc, Val: nd.Val})
		}
		return true
	}

	bestCost := math.Inf(1)
	found := false
	var tmp routePlan
	for li, l := range p.locs[v] {
		if cx.planFromLoc(p, o, l, li, tc, cc, blacklist, &tmp) && tmp.Cost < bestCost {
			bestCost = tmp.Cost
			*out = tmp
			found = true
		}
	}
	if cx.opt.Recompute {
		if cx.planRecompute(p, o, v, tc, cc, &tmp) && tmp.Cost < bestCost {
			*out = tmp
			found = true
		}
	}
	return found
}

// planFromLoc plans delivery from one existing location of the value.
func (cx *bbCtx) planFromLoc(p *partial, o *overlay, l loc, li int, tc arch.TileID, cc int, blacklist uint32, out *routePlan) bool {
	bestCost := math.Inf(1)
	found := false
	commit := func(pl *routePlan) {
		pl.ValueLoc = li
		bestCost = pl.Cost
		*out = *pl
		found = true
	}

	if l.Tile == tc {
		// Local register read. A symbol home register must not be read
		// after its writeback has been scheduled.
		if l.Reg != noReg && cc >= l.Cycle+1 && int16(cc) <= p.writeCycle(cx.grid.RRFSize, tc, l.Reg) {
			pl := routePlan{
				Src:   isa.Reg(uint8(l.Reg)),
				Reads: append(cx.arena.reads.take(1), regRead{Tile: tc, Reg: l.Reg, Cycle: cc}),
			}
			if pl.Cost < bestCost {
				commit(&pl)
			}
		}
		if l.Cycle >= 0 {
			// Own output register, if still live and the wait is short.
			if cc > l.Cycle && cc-l.Cycle <= cx.opt.MaxHold && cx.outputLive(p, o, tc, l.Cycle, cc) {
				pl := routePlan{
					Src:   isa.Self(),
					Holds: append(cx.arena.holds.take(1), holdAdd{Tile: tc, Prod: l.Cycle, Last: cc}),
					Cost:  costHoldCycle * float64(cc-l.Cycle),
				}
				if pl.Cost < bestCost {
					commit(&pl)
				}
			}
			// Retrofit a writeback on the producing slot.
			if l.Reg == noReg && cc >= l.Cycle+1 && cx.regAvailableAt(p, o, tc, l.Cycle) &&
				!p.tiles[tc].Slots[l.Cycle].WB && !cx.retroClaimed(o, tc, l.Cycle) {
				retro := append(cx.arena.retros.take(1), wbRetro{Tile: tc, Cycle: l.Cycle})
				pl := routePlan{
					Src:   isa.Reg(retroPlaceholder), // resolved at apply
					Retro: &retro[0],
					Reads: append(cx.arena.reads.take(1), regRead{Tile: tc, Reg: -2, Cycle: cc}),
					Cost:  costRegAlloc,
				}
				if pl.Cost < bestCost {
					commit(&pl)
				}
			}
		}
		return found
	}

	// Neighbor output-register read (not possible from a register home).
	if l.Cycle >= 0 {
		if d, adj := cx.dirFromTo(tc, l.Tile); adj {
			if cc > l.Cycle && cc-l.Cycle <= cx.opt.MaxHold && cx.outputLive(p, o, l.Tile, l.Cycle, cc) {
				pl := routePlan{
					Src:   isa.Nbr(d),
					Holds: append(cx.arena.holds.take(1), holdAdd{Tile: l.Tile, Prod: l.Cycle, Last: cc}),
					Cost:  costHoldCycle * float64(cc-l.Cycle),
				}
				if pl.Cost < bestCost {
					commit(&pl)
				}
			}
		}
	}

	// Move chains along the two canonical shortest paths, trying each
	// first-step access mode.
	var tmp routePlan
	for _, path := range cx.paths(l.Tile, tc) {
		for _, mode := range [...]chainMode{chainOutput, chainReg, chainRetro} {
			if cx.planChain(p, o, l, path, tc, cc, blacklist, mode, &tmp) && tmp.Cost < bestCost {
				commit(&tmp)
			}
		}
	}
	return found
}

// chainMode says how the first move of a chain accesses the value.
type chainMode int

const (
	// chainOutput: the first move executes on a neighbor of the producer
	// and reads the producer's output register.
	chainOutput chainMode = iota
	// chainReg: the first move executes on the value's own tile and reads
	// it from the register file (symbol homes and written-back temps).
	chainReg
	// chainRetro: like chainReg, but the value has no register yet — a
	// writeback is retrofitted onto the producing slot first.
	chainRetro
)

// retroPlaceholder marks a register operand whose index is resolved when
// the plan's retrofit writeback allocates the register.
const retroPlaceholder uint8 = 0xff

// paths returns the row-first and column-first shortest torus paths from a
// to b (deduplicated when they coincide). Paths exclude a, include b. The
// result depends only on the grid topology, so it is cached on the arena
// (keyed by grid shape, surviving across blocks and Map calls) — the
// routing search asks for the same pairs thousands of times per block.
func (cx *bbCtx) paths(a, b arch.TileID) [][]arch.TileID {
	return cx.arena.paths(cx, a, b)
}

// planOperandMemo wraps planOperand with the arena's per-bind-step memo.
// It may only be called when the search is a pure function of the
// partial's epoch: under a nil overlay (finalize writebacks) or an overlay
// holding nothing but the consumer's own claim, with the claim shape
// captured in flags. Negative results are cached too — re-enumeration
// after a widened slack window is the memo's main hit source.
func (cx *bbCtx) planOperandMemo(p *partial, o *overlay, flags uint8, v cdfg.NodeID, tc arch.TileID, cc int, blacklist uint32, out *routePlan) bool {
	ar := cx.arena
	key := planKey{epoch: p.epoch, v: v, tc: tc, cc: int32(cc), flags: flags}
	if e, hit := ar.memo[key]; hit {
		ar.memoHits++
		if cx.stats != nil {
			cx.stats.MemoHits++
		}
		if e.ok {
			*out = e.pl
		}
		return e.ok
	}
	if cx.stats != nil {
		cx.stats.MemoMisses++
	}
	ok := cx.planOperand(p, o, v, tc, cc, blacklist, out)
	pms := ar.memoVals.take(1)
	pms = pms[:1]
	pm := &pms[0]
	if ok {
		*pm = planMemo{pl: *out, ok: true}
	} else {
		*pm = planMemo{}
	}
	ar.memo[key] = pm
	return ok
}

func (cx *bbCtx) computePaths(a, b arch.TileID) [][]arch.TileID {
	p1 := cx.grid.Path(a, b)
	// Column-first: route via the intermediate corner.
	ta, tb := cx.grid.Tile(a), cx.grid.Tile(b)
	corner := cx.grid.At(ta.Row, tb.Col).ID
	var p2 []arch.TileID
	if corner != a && corner != b {
		p2 = append(cx.grid.Path(a, corner), cx.grid.Path(corner, b)...)
	}
	if p2 == nil || samePath(p1, p2) {
		return [][]arch.TileID{p1}
	}
	return [][]arch.TileID{p1, p2}
}

func samePath(a, b []arch.TileID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// planChain plans a chain of moves from location l along path (which ends
// at the consumer tile) so the consumer can neighbor-read the last hop's
// output at cycle cc. The chain hops through path[0..len-2]. Depending on
// the mode, the first move reads the producer's output register from a
// neighboring tile (chainOutput), or executes on the value's own tile
// reading the register file (chainReg for homes and written-back temps,
// chainRetro with a retrofitted writeback for register-less values).
func (cx *bbCtx) planChain(p *partial, o *overlay, l loc, path []arch.TileID, tc arch.TileID, cc int, blacklist uint32, mode chainMode, out *routePlan) bool {
	// hops lives in a per-context scratch buffer: the slice is fully
	// consumed before planChain returns (moveSteps copy the tile IDs), so
	// reusing it across the thousands of candidate plans is safe. The
	// buffer is pre-sized to the torus diameter at bbCtx construction, so
	// appends stay in place and no write-back (or defer) is needed.
	hops := cx.hopsBuf[:0]
	var srcReg uint8
	var retro *wbRetro
	minFirst := 0
	switch mode {
	case chainOutput:
		if l.Cycle < 0 {
			return false // register homes have no output value
		}
		for i := 0; i+1 < len(path); i++ {
			hops = append(hops, path[i])
		}
		if len(hops) == 0 {
			// Adjacent: the direct neighbor-read case covers this.
			return false
		}
		minFirst = l.Cycle + 1
	case chainReg:
		if l.Reg == noReg {
			return false
		}
		srcReg = uint8(l.Reg)
		hops = append(hops, l.Tile)
		for i := 0; i+1 < len(path); i++ {
			hops = append(hops, path[i])
		}
		minFirst = l.Cycle + 1 // for homes (Cycle -1) this is 0
	case chainRetro:
		if l.Reg != noReg || l.Cycle < 0 {
			return false
		}
		slot := p.tiles[l.Tile].Slots[l.Cycle]
		if slot.Kind == SlotEmpty || slot.WB || !cx.regAvailableAt(p, o, l.Tile, l.Cycle) ||
			cx.retroClaimed(o, l.Tile, l.Cycle) {
			return false
		}
		srcReg = retroPlaceholder
		rs := append(cx.arena.retros.take(1), wbRetro{Tile: l.Tile, Cycle: l.Cycle})
		retro = &rs[0]
		hops = append(hops, l.Tile)
		for i := 0; i+1 < len(path); i++ {
			hops = append(hops, path[i])
		}
		minFirst = l.Cycle + 1
	}

	// Latest start: the chain runs on consecutive cycles and must finish
	// by cc-1.
	lastStart := cc - len(hops)
	if lastStart < minFirst {
		return false
	}

	try := func(first int) bool {
		pl := out
		*pl = routePlan{}
		cyc := first
		for i, h := range hops {
			if blacklist&(1<<uint(h)) != 0 {
				return false
			}
			if !cx.free(p, o, h, cyc) || !cx.canProduce(p, o, h, cyc) {
				return false
			}
			var src isa.Src
			if i == 0 && mode != chainOutput {
				// Read the value from this tile's register file.
				if mode == chainReg && int16(cyc) > p.writeCycle(cx.grid.RRFSize, l.Tile, l.Reg) {
					return false
				}
				src = isa.Reg(srcReg)
				if mode == chainReg {
					pl.Reads = append(cx.arena.reads.take(1), regRead{Tile: l.Tile, Reg: l.Reg, Cycle: cyc})
				}
			} else {
				from := l.Tile
				prod := l.Cycle
				if i > 0 {
					from = hops[i-1]
					prod = cyc - 1
				}
				d, adj := cx.dirFromTo(h, from)
				if !adj {
					return false
				}
				src = isa.Nbr(d)
				if i == 0 {
					// First hop of an output chain: the producer's value
					// must still be live.
					if cyc-prod > cx.opt.MaxHold || !cx.outputLive(p, o, from, prod, cyc) {
						return false
					}
					if pl.Holds == nil {
						pl.Holds = cx.arena.holds.take(2)
					}
					pl.Holds = append(pl.Holds, holdAdd{Tile: from, Prod: prod, Last: cyc})
				}
			}
			if pl.Moves == nil {
				pl.Moves = cx.arena.moves.take(len(hops))
			}
			pl.Moves = append(pl.Moves, moveStep{Tile: h, Cycle: cyc, Src: src})
			cyc++
		}
		// Consumer neighbor-reads the last hop's output at cc.
		last := hops[len(hops)-1]
		d, adj := cx.dirFromTo(tc, last)
		if !adj {
			return false
		}
		lastCycle := first + len(hops) - 1
		if cc-lastCycle > cx.opt.MaxHold {
			return false
		}
		// The routed value must survive on the last hop's output register
		// until the consumer reads it.
		if cc > lastCycle+1 && !cx.outputLive(p, o, last, lastCycle, cc) {
			return false
		}
		pl.Src = isa.Nbr(d)
		if pl.Holds == nil {
			pl.Holds = cx.arena.holds.take(2)
		}
		pl.Holds = append(pl.Holds, holdAdd{Tile: last, Prod: lastCycle, Last: cc})
		pl.Retro = retro
		pl.Cost = costMove * float64(len(hops))
		pl.Cost += costHoldCycle * float64(cc-lastCycle)
		if retro != nil {
			pl.Cost += costRegAlloc
		}
		return true
	}

	// Prefer the late chain (arriving just in time); fall back to the
	// earliest chain, whose final value waits on the last hop's output.
	if try(lastStart) {
		return true
	}
	if minFirst != lastStart {
		if try(minFirst) {
			return true
		}
	}
	return false
}

// planRecompute duplicates a producer whose operands are all constants on
// the consumer tile the cycle before consumption.
func (cx *bbCtx) planRecompute(p *partial, o *overlay, v cdfg.NodeID, tc arch.TileID, cc int, out *routePlan) bool {
	nd := cx.block.Nodes[v]
	switch nd.Op {
	case cdfg.OpConst, cdfg.OpSym, cdfg.OpLoad, cdfg.OpStore, cdfg.OpBr:
		return false
	}
	for _, a := range nd.Args {
		if cx.block.Nodes[a].Op != cdfg.OpConst {
			return false
		}
	}
	cyc := cc - 1
	if cyc < 0 || !cx.free(p, o, tc, cyc) || !cx.canProduce(p, o, tc, cyc) {
		return false
	}
	pl := out
	*pl = routePlan{Src: isa.Self(), ValueLoc: -1, Cost: costRecompute}
	rcs := append(cx.arena.recomps.take(1), recompStep{Tile: tc, Cycle: cyc, Node: v, NSrc: len(nd.Args)})
	rc := &rcs[0]
	for i, a := range nd.Args {
		val := cx.block.Nodes[a].Val
		ok, isNew := cx.constOK(p, o, tc, val)
		if !ok {
			return false
		}
		if isNew {
			if pl.Consts == nil {
				pl.Consts = cx.arena.consta.take(len(nd.Args))
			}
			pl.Consts = append(pl.Consts, constAdd{Tile: tc, Val: val})
			pl.Cost += costNewConst
		}
		rc.Srcs[i] = isa.Const(val)
	}
	pl.Recomp = rc
	pl.Holds = append(cx.arena.holds.take(1), holdAdd{Tile: tc, Prod: cyc, Last: cc})
	return true
}
