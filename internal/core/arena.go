package core

import (
	"sync"

	"repro/internal/arch"
	"repro/internal/cdfg"
)

// This file owns the mapper's reusable scratch state. The schedule/bind/
// route cycle used to re-make every overlay slice, candidate list, visited
// set and partial mapping per candidate, which made the search
// allocation-bound (a single CAB map of NonSepFilter allocated 7M times).
// A mapperArena keeps all of that memory alive across candidates, blocks,
// Map calls and portfolio seeds; partial mappings are recycled through a
// free list the moment the beam drops them.
//
// Invariants:
//   - An arena is single-goroutine: Map never shares one, MapPortfolio
//     hands each worker its own, and the sync.Pool hands an arena to at
//     most one Map at a time.
//   - Recycled memory is always fully overwritten before reuse
//     (cloneInto / reset), so arena reuse cannot change mapping results:
//     identical Options + seed produce byte-identical mappings (pinned by
//     testdata/golden_mappings.txt).
//   - Plan chunks and the route memo are reset together at each bind
//     step; committed partials copy everything they keep out of plan
//     memory, so no chunk pointer survives a reset.

// chunk is a bump allocator for plan scratch ([]moveStep, []holdAdd, …).
// take carves a zero-length slice with exact capacity; appending past the
// capacity spills to the regular heap, which keeps correctness independent
// of the carve sizes. reset retains the largest block seen so far.
type chunk[T any] struct{ buf []T }

func (c *chunk[T]) take(n int) []T {
	if len(c.buf)+n > cap(c.buf) {
		sz := 2 * cap(c.buf)
		if sz < 1024 {
			sz = 1024
		}
		if sz < n {
			sz = n
		}
		// The old block stays alive through the slices already handed
		// out; it is garbage once the current bind step ends.
		c.buf = make([]T, 0, sz)
	}
	s := c.buf[len(c.buf) : len(c.buf) : len(c.buf)+n]
	c.buf = c.buf[:len(c.buf)+n]
	return s
}

func (c *chunk[T]) reset() { c.buf = c.buf[:0] }

// planKey identifies one memoized operand-routing search: the partial's
// occupancy epoch, the value to deliver, the consumer (tile, cycle), and
// the overlay shape under which the search ran.
type planKey struct {
	epoch uint32
	v     cdfg.NodeID
	tc    arch.TileID
	cc    int32
	flags uint8
}

// Overlay-shape flags for planKey. A routing search only ever runs under
// a nil overlay (finalize writebacks) or an overlay holding nothing but
// the consumer's own claim (first operand of a candidate); sibling-plan
// effects make later operands uncacheable.
const (
	memoNilOverlay   uint8 = 0
	memoClaimNoProd  uint8 = 1
	memoClaimProduce uint8 = 2
)

type planMemo struct {
	pl routePlan
	ok bool
}

// mapperArena owns every reusable buffer of one mapper goroutine.
type mapperArena struct {
	// free is the partial-mapping free list; epoch is the monotonic
	// generation counter stamped onto partials so caches keyed by
	// occupancy state invalidate on any binding change.
	free  []*partial
	epoch uint32

	// Map-level scratch (one Map call at a time).
	used     []int
	usedRegs []uint16
	consts   [][]int32
	homesOn  []int
	budget   []int
	soft     []int

	// Block-level scratch.
	cands    []candidate
	candIdx  []int32
	children []*partial
	weights  []float64
	order    []cdfg.NodeID
	ready    []cdfg.NodeID
	pending  []int
	owed     []int8

	// frontierOf's per-node earliest-cycle estimates, a stamped array
	// standing in for the map the hot path used to allocate per child.
	est     []int
	estMark []uint32
	estGen  uint32

	// overlay is the single in-flight candidate overlay (planCandidate
	// never nests) and affTiles the affected-tile scratch list.
	overlay  overlay
	affTiles []arch.TileID

	// Plan scratch chunks, reset per bind step.
	moves   chunk[moveStep]
	holds   chunk[holdAdd]
	reads   chunk[regRead]
	consta  chunk[constAdd]
	plans   chunk[argPlan]
	pins    chunk[pinStep]
	retros  chunk[wbRetro]
	recomps chunk[recompStep]

	// memo caches operand-routing searches (including failures) keyed by
	// occupancy epoch; see planOperandMemo. Entries are pointers into the
	// memoVals chunk: planMemo is larger than Go's 128-byte inline map
	// value limit, so storing it by value would heap-allocate every
	// insert. The chunk and the map are cleared together in bindReset.
	// memoHits is observable by white-box tests.
	memo     map[planKey]*planMemo
	memoVals chunk[planMemo]
	memoHits int

	// pathCache memoizes the canonical torus routes per (from, to) pair.
	// It depends only on the grid topology, so it survives across Map
	// calls and is invalidated when the arena sees a different grid shape.
	pathCache [][][]arch.TileID
	pathRows  int
	pathCols  int
	hopsBuf   []arch.TileID
}

func newMapperArena() *mapperArena {
	return &mapperArena{memo: map[planKey]*planMemo{}}
}

var arenaPool = sync.Pool{New: func() any { return newMapperArena() }}

func getArena() *mapperArena  { return arenaPool.Get().(*mapperArena) }
func putArena(a *mapperArena) { arenaPool.Put(a) }

// Arena is a reusable bundle of mapper scratch state. Callers that map
// many graphs on one goroutine (the experiment runner's workers, long
// sweeps) can allocate one Arena and thread it through Options.WithArena
// so every Map call reuses the same memory; Map calls without an explicit
// arena draw one from an internal sync.Pool. An Arena must not be used by
// two goroutines at once.
type Arena struct{ a *mapperArena }

// NewArena returns a fresh arena.
func NewArena() *Arena { return &Arena{a: newMapperArena()} }

// WithArena returns a copy of the options that runs the mapper on the
// given arena. A nil arena leaves the options unchanged.
func (o Options) WithArena(ar *Arena) Options {
	if ar != nil {
		o.arena = ar.a
	}
	return o
}

// nextEpoch returns a fresh occupancy generation.
func (a *mapperArena) nextEpoch() uint32 {
	a.epoch++
	return a.epoch
}

// bindReset starts a new bind step: the route memo and every plan chunk
// die together (committed partials have already copied what they keep).
func (a *mapperArena) bindReset() {
	clear(a.memo)
	a.memoVals.reset()
	a.moves.reset()
	a.holds.reset()
	a.reads.reset()
	a.consta.reset()
	a.plans.reset()
	a.pins.reset()
	a.retros.reset()
	a.recomps.reset()
}

// getPartial returns a recycled (or new) partial. The caller must fully
// initialize it via resetPartial or cloneInto before use.
func (a *mapperArena) getPartial() *partial {
	if n := len(a.free); n > 0 {
		p := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		return p
	}
	return &partial{}
}

// putPartial returns a dead partial to the free list. The caller must
// guarantee nothing references it anymore.
func (a *mapperArena) putPartial(p *partial) {
	if p != nil {
		a.free = append(a.free, p)
	}
}

// intsBuf resizes buf to n, zero-filled.
func intsBuf(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// resetPartial prepares a recycled partial as the empty initial state for
// a block on nTiles tiles, nNodes nodes and rrf registers per tile.
func (a *mapperArena) resetPartial(p *partial, nTiles, nNodes, rrf int) {
	for cap(p.tiles) < nTiles {
		p.tiles = append(p.tiles[:cap(p.tiles)], tileState{})
	}
	p.tiles = p.tiles[:nTiles]
	for t := range p.tiles {
		ts := &p.tiles[t]
		slots, holds, consts := ts.Slots[:0], ts.Holds[:0], ts.Consts[:0]
		*ts = tileState{Slots: slots, Holds: holds, Consts: consts, cacheHorizon: -1}
	}
	if cap(p.locs) < nNodes {
		p.locs = make([][]loc, nNodes)
	}
	p.locs = p.locs[:nNodes]
	for i := range p.locs {
		p.locs[i] = p.locs[i][:0]
	}
	n := nTiles * rrf
	if cap(p.regLastRead) < n {
		p.regLastRead = make([]int16, n)
		p.regLastWrite = make([]int16, n)
		p.regWriteCycle = make([]int16, n)
	}
	p.regLastRead = p.regLastRead[:n]
	p.regLastWrite = p.regLastWrite[:n]
	p.regWriteCycle = p.regWriteCycle[:n]
	for i := 0; i < n; i++ {
		p.regLastRead[i] = -1
		p.regLastWrite[i] = -1
		p.regWriteCycle[i] = noWrite
	}
	if p.newHomes != nil {
		clear(p.newHomes)
	}
	p.maxCycle, p.moves, p.recomputes, p.checkedTo = 0, 0, 0, 0
	p.cost = 0
	p.touch(a)
}

// cloneInto deep-copies src into the recycled dst, reusing every slice
// capacity dst already owns. It replaces the allocating partial.clone on
// the bind hot path.
func (a *mapperArena) cloneInto(dst, src *partial) {
	for cap(dst.tiles) < len(src.tiles) {
		dst.tiles = append(dst.tiles[:cap(dst.tiles)], tileState{})
	}
	dst.tiles = dst.tiles[:len(src.tiles)]
	for i := range src.tiles {
		s, d := &src.tiles[i], &dst.tiles[i]
		slots := append(d.Slots[:0], s.Slots...)
		holds := append(d.Holds[:0], s.Holds...)
		consts := append(d.Consts[:0], s.Consts...)
		*d = *s
		d.Slots, d.Holds, d.Consts = slots, holds, consts
	}
	if cap(dst.locs) < len(src.locs) {
		dst.locs = make([][]loc, len(src.locs))
	}
	dst.locs = dst.locs[:len(src.locs)]
	for i := range src.locs {
		dst.locs[i] = append(dst.locs[i][:0], src.locs[i]...)
	}
	dst.regLastRead = append(dst.regLastRead[:0], src.regLastRead...)
	dst.regLastWrite = append(dst.regLastWrite[:0], src.regLastWrite...)
	dst.regWriteCycle = append(dst.regWriteCycle[:0], src.regWriteCycle...)
	if src.newHomes != nil {
		if dst.newHomes == nil {
			dst.newHomes = make(map[string]SymLoc, len(src.newHomes))
		} else {
			clear(dst.newHomes)
		}
		for k, v := range src.newHomes {
			dst.newHomes[k] = v
		}
	} else if dst.newHomes != nil {
		clear(dst.newHomes)
	}
	dst.maxCycle = src.maxCycle
	dst.moves = src.moves
	dst.recomputes = src.recomputes
	dst.cost = src.cost
	dst.checkedTo = src.checkedTo
	dst.touch(a)
}

// frontierBegin hands out the stamped estimate arrays frontierOf uses in
// place of a per-call map. gen identifies valid entries.
func (a *mapperArena) frontierBegin(n int) (est []int, mark []uint32, gen uint32) {
	if cap(a.est) < n {
		a.est = make([]int, n)
		a.estMark = make([]uint32, n)
	}
	a.est = a.est[:n]
	a.estMark = a.estMark[:n]
	a.estGen++
	if a.estGen == 0 { // wrapped: every stale mark looks current
		for i := range a.estMark {
			a.estMark[i] = 0
		}
		a.estGen = 1
	}
	return a.est, a.estMark, a.estGen
}

// owedBuf returns the pendingWB scratch, zeroed. Only one pendingWB result
// is ever alive at a time.
func (a *mapperArena) owedBuf(n int) []int8 {
	if cap(a.owed) < n {
		a.owed = make([]int8, n)
	}
	a.owed = a.owed[:n]
	for i := range a.owed {
		a.owed[i] = 0
	}
	return a.owed
}

// overlayReset clears and returns the single in-flight overlay.
func (a *mapperArena) overlayReset() *overlay {
	o := &a.overlay
	o.claimed = o.claimed[:0]
	o.prods = o.prods[:0]
	o.holds = o.holds[:0]
	o.retros = o.retros[:0]
	o.regs = o.regs[:0]
	o.consts = o.consts[:0]
	return o
}

// paths returns the row-first and column-first shortest torus paths from a
// to b (deduplicated when they coincide), memoized per grid shape. Paths
// exclude a, include b. The cache survives across blocks and Map calls:
// the routing search asks for the same pairs thousands of times.
func (a *mapperArena) paths(cx *bbCtx, from, to arch.TileID) [][]arch.TileID {
	n := cx.grid.NumTiles()
	if a.pathCache == nil || a.pathRows != cx.grid.Rows || a.pathCols != cx.grid.Cols {
		a.pathCache = make([][][]arch.TileID, n*n)
		a.pathRows, a.pathCols = cx.grid.Rows, cx.grid.Cols
	}
	key := int(from)*n + int(to)
	if ps := a.pathCache[key]; ps != nil {
		return ps
	}
	ps := cx.computePaths(from, to)
	a.pathCache[key] = ps
	return ps
}
