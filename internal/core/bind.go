package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/arch"
	"repro/internal/cdfg"
	"repro/internal/isa"
)

// minHomeBudget is the least remaining context-memory budget a tile must
// have to host a newly pinned symbol home under a memory-aware flow.
const minHomeBudget = 16

// minHomeHeadroom is the least unconsumed soft budget a tile must retain
// at pin time to accept a new symbol home.
const minHomeHeadroom = 6

// pinStep pins an unpinned symbol's home register to a tile (the register
// index is allocated at apply time).
type pinStep struct {
	Sym  string
	Node cdfg.NodeID
	Tile arch.TileID
}

// argPlan couples one operand with its routing plan.
type argPlan struct {
	Arg  cdfg.NodeID
	Plan routePlan
	Pin  *pinStep
}

// candidate is one feasible binding of a node under a specific partial.
// partialsByCost and candsByCost are concrete sort.Interface adapters:
// both sorts sit on the binder's hot path, where the reflection-based
// sort.SliceStable swapper showed up in profiles.
type partialsByCost []*partial

func (s partialsByCost) Len() int           { return len(s) }
func (s partialsByCost) Less(i, j int) bool { return s[i].cost < s[j].cost }
func (s partialsByCost) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// candsByCost sorts an index permutation instead of the ~64-byte candidate
// structs themselves (the struct swaps dominated the sort in profiles).
// The index tie-break makes the comparison a total order, so the plain
// (unstable) sort yields exactly the permutation sort.Stable produced.
type candsByCost struct {
	cands []candidate
	idx   []int32
}

func (s candsByCost) Len() int { return len(s.idx) }
func (s candsByCost) Less(i, j int) bool {
	a, b := &s.cands[s.idx[i]], &s.cands[s.idx[j]]
	ca, cb := a.parent.cost+a.cost, b.parent.cost+b.cost
	if ca != cb {
		return ca < cb
	}
	return s.idx[i] < s.idx[j]
}
func (s candsByCost) Swap(i, j int) { s.idx[i], s.idx[j] = s.idx[j], s.idx[i] }

type candidate struct {
	parent *partial
	node   cdfg.NodeID
	tile   arch.TileID
	cycle  int
	plans  []argPlan
	cost   float64 // delta cost over the parent
}

// scheduleOrder returns the order in which the block's operations are
// bound: a topological order refined by the paper's list-scheduling
// priority — smaller mobility first, then larger fan-out, then node id.
func scheduleOrder(b *cdfg.BasicBlock, s *cdfg.Sched) []cdfg.NodeID {
	return scheduleOrderInto(b, s, cdfg.Users(b), nil)
}

// scheduleOrder on the context reuses the precomputed user lists and the
// arena's order/ready/pending buffers. The returned slice aliases arena
// memory and stays valid until the next mapBlock call on the same arena.
func (cx *bbCtx) scheduleOrder() []cdfg.NodeID {
	return scheduleOrderInto(cx.block, cx.sched, cx.users, cx.arena)
}

func scheduleOrderInto(b *cdfg.BasicBlock, s *cdfg.Sched, users [][]cdfg.NodeID, ar *mapperArena) []cdfg.NodeID {
	var pendingArgs []int
	var ready, order []cdfg.NodeID
	if ar != nil {
		pendingArgs = intsBuf(ar.pending, len(b.Nodes))
		ready = ar.ready[:0]
		order = ar.order[:0]
	} else {
		pendingArgs = make([]int, len(b.Nodes))
	}
	schedulable := func(n *cdfg.Node) bool {
		return n.Op != cdfg.OpConst && n.Op != cdfg.OpSym
	}
	for _, n := range b.Nodes {
		if !schedulable(n) {
			continue
		}
		for _, a := range n.Args {
			if schedulable(b.Nodes[a]) {
				pendingArgs[n.ID]++
			}
		}
	}
	for _, n := range b.Nodes {
		if schedulable(n) && pendingArgs[n.ID] == 0 {
			ready = append(ready, n.ID)
		}
	}
	for len(ready) > 0 {
		best := 0
		for i := 1; i < len(ready); i++ {
			a, c := ready[i], ready[best]
			switch {
			case s.Mobility[a] != s.Mobility[c]:
				if s.Mobility[a] < s.Mobility[c] {
					best = i
				}
			case s.Fanout[a] != s.Fanout[c]:
				if s.Fanout[a] > s.Fanout[c] {
					best = i
				}
			default:
				if a < c {
					best = i
				}
			}
		}
		n := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		order = append(order, n)
		for _, u := range users[n] {
			if !schedulable(b.Nodes[u]) {
				continue
			}
			pendingArgs[u]--
			if pendingArgs[u] == 0 {
				ready = append(ready, u)
			}
		}
	}
	if ar != nil {
		ar.pending, ar.ready, ar.order = pendingArgs, ready, order
	}
	return order
}

// earliestCycle returns the first cycle node n could possibly execute in
// partial p, given its operands' current locations.
func (cx *bbCtx) earliestCycle(p *partial, n cdfg.NodeID) int {
	earliest := 0
	for _, a := range cx.block.Nodes[n].Args {
		av := cx.argAvail(p, a)
		if av > earliest {
			earliest = av
		}
	}
	return earliest
}

// argAvail returns the earliest cycle the value of node a can be consumed
// anywhere on the array.
func (cx *bbCtx) argAvail(p *partial, a cdfg.NodeID) int {
	nd := cx.block.Nodes[a]
	switch nd.Op {
	case cdfg.OpConst:
		return 0
	case cdfg.OpSym:
		if len(p.locs[a]) > 0 {
			return 0
		}
		return 0 // unpinned symbol: pinned at first use, readable from cycle 0
	}
	best := math.MaxInt
	for _, l := range p.locs[a] {
		v := l.Cycle + 1
		if v < 0 {
			v = 0
		}
		if v < best {
			best = v
		}
	}
	if best == math.MaxInt {
		return 0
	}
	return best
}

// frontier returns the cycle below which no future instruction other than
// already-planned ones can start: the minimum earliest cycle over unbound
// operations (estimated through unbound chains).
func (cx *bbCtx) frontierOf(p *partial, unbound []cdfg.NodeID) int {
	// est/mark are arena-owned stamped arrays indexed by node id; mark[n]
	// == gen stands in for map membership without a per-call allocation.
	est, mark, gen := cx.arena.frontierBegin(len(cx.block.Nodes))
	front := math.MaxInt
	for _, n := range unbound { // unbound is in topological order
		e := 0
		for _, a := range cx.block.Nodes[n].Args {
			var av int
			if mark[a] == gen {
				av = est[a] + 1
			} else {
				av = cx.argAvail(p, a)
			}
			if av > e {
				e = av
			}
		}
		est[n] = e
		mark[n] = gen
		if e < front {
			front = e
		}
	}
	if front == math.MaxInt {
		return p.maxCycle
	}
	return front
}

// cabBlacklist returns the bitmask of tiles that cannot accept another
// instruction under the remaining context-memory budget (§III-D4). The
// mask is a pure function of the partial's binding state, so it is cached
// on the partial and recomputed only after a mutation (touch).
func (cx *bbCtx) cabBlacklist(p *partial) uint32 {
	if !cx.cab {
		return 0
	}
	if p.blValid {
		return p.blMask
	}
	var mask uint32
	owed := cx.pendingWB(p)
	for t := range p.tiles {
		w := p.words(arch.TileID(t), p.maxCycle, false)
		if w > 0 {
			w++ // potential trailing pnop
		} else if p.maxCycle > 0 {
			w = 1
		}
		if owed != nil {
			w += int(owed[t])
		}
		if w >= cx.budget[t] {
			mask |= 1 << uint(t)
		}
	}
	p.blMask = mask
	p.blValid = true
	return mask
}

// genCandidates enumerates feasible bindings of node n under partial p
// within [earliest, earliest+window]. With tail set, the window is
// anchored at the end of the partial's current schedule, where slots are
// free on every tile — the last-resort reroute region.
func (cx *bbCtx) genCandidates(p *partial, n cdfg.NodeID, window int, tail bool, out []candidate) []candidate {
	nd := cx.block.Nodes[n]
	blacklist := cx.cabBlacklist(p)
	earliest := cx.earliestCycle(p, n)
	if tail && p.maxCycle > earliest {
		earliest = p.maxCycle
	}
	produces := nd.Op.HasResult()
	for cc := earliest; cc <= earliest+window; cc++ {
		for t := 0; t < cx.grid.NumTiles(); t++ {
			tid := arch.TileID(t)
			if blacklist&(1<<uint(t)) != 0 {
				continue
			}
			if nd.Op.IsMem() && !cx.grid.Tile(tid).HasLSU {
				continue
			}
			if !cx.free(p, nil, tid, cc) {
				continue
			}
			if produces && !cx.canProduce(p, nil, tid, cc) {
				continue
			}
			out = append(out, candidate{})
			if !cx.planCandidate(p, n, tid, cc, blacklist, &out[len(out)-1]) {
				out = out[:len(out)-1]
			}
		}
	}
	return out
}

// planCandidate plans the routing of every operand of n to (t, cc),
// filling *cand. On false the candidate is unusable and must be dropped.
func (cx *bbCtx) planCandidate(p *partial, n cdfg.NodeID, t arch.TileID, cc int, blacklist uint32, cand *candidate) bool {
	ar := cx.arena
	nd := cx.block.Nodes[n]
	o := ar.overlayReset()
	o.claim(t, cc, nd.Op.HasResult())
	*cand = candidate{parent: p, node: n, tile: t, cycle: cc}
	cand.plans = ar.plans.take(len(nd.Args))
	// pinnedHere tracks symbols pinned by an earlier operand of this same
	// candidate; a node has at most isa.MaxSrcs operands, so a fixed
	// array beats the map the old hot path allocated per candidate.
	var pinnedHere [isa.MaxSrcs]string
	nPinned := 0
	for _, a := range nd.Args {
		cand.plans = append(cand.plans, argPlan{Arg: a})
		ap := &cand.plans[len(cand.plans)-1]
		av := cx.block.Nodes[a]
		if av.Op == cdfg.OpSym && len(p.locs[a]) == 0 {
			// Unpinned symbol: pin its home on the consuming tile. A
			// repeated operand reuses the pin from the earlier operand.
			// A home is a long-lived commitment — every defining block
			// sends a writeback there — so under constraint-aware
			// binding, tiles whose soft context budget is small, or
			// already mostly consumed by this block, cannot host one.
			if cx.cab && (cx.soft[t] < minHomeBudget ||
				cx.soft[t]-p.words(t, p.maxCycle, false) < minHomeHeadroom) {
				return false
			}
			already := false
			for i := 0; i < nPinned; i++ {
				if pinnedHere[i] == av.Sym {
					already = true
					break
				}
			}
			if !already {
				if !cx.freshRegAvailable(p, o, t) {
					return false
				}
				o.addReg(t)
				pinnedHere[nPinned] = av.Sym
				nPinned++
			}
			pin := ar.pins.take(1)
			pin = append(pin, pinStep{Sym: av.Sym, Node: a, Tile: t})
			ap.Pin = &pin[0]
			ap.Plan = routePlan{
				Src:   isa.Src{Kind: isa.SrcReg}, // register resolved at apply
				Reads: append(ar.reads.take(1), regRead{Tile: t, Reg: -2, Cycle: cc}),
				Cost:  costRegAlloc,
			}
			if b := cx.soft[t]; cx.cab && b < unconstrained && b < 48 {
				ap.Plan.Cost += 1.5 * (1 - float64(b)/48)
			}
		} else {
			// While the overlay holds nothing beyond the consumer's own
			// claim, the routing search is a pure function of the
			// partial's epoch and can hit the per-bind-step memo.
			var ok bool
			if o.clean() {
				flags := memoClaimNoProd
				if len(o.prods) > 0 {
					flags = memoClaimProduce
				}
				ok = cx.planOperandMemo(p, o, flags, a, t, cc, blacklist, &ap.Plan)
			} else {
				ok = cx.planOperand(p, o, a, t, cc, blacklist, &ap.Plan)
			}
			if !ok {
				return false
			}
			o.merge(&ap.Plan)
		}
		cand.cost += ap.Plan.Cost
	}
	if grow := cc + 1 - p.maxCycle; grow > 0 {
		cand.cost += costCycle * float64(grow)
	}
	// A multi-consumer value placed where no register can be allocated
	// risks dying once the output register is clobbered; steer away.
	if nd.Op.HasResult() && cx.wantsWriteback(n) && !cx.regAvailableAt(p, o, t, cc) {
		cand.cost += 3.0
	}
	// Energy-aware placement: each instruction on a tile costs one
	// context fetch per execution, quadratic in the tile's CM depth.
	if cx.opt.EnergyAware {
		for _, tt := range cx.affectedTiles(cand, t) {
			cm := float64(cx.grid.Tile(tt).CMWords)
			cand.cost += cx.opt.EnergyWeight * cm * cm / 4096
		}
	}
	// Mild load-balance pressure: hot tiles should not absorb everything
	// (the latency-driven spreading of the basic binder).
	cand.cost += 0.015 * float64(p.tiles[t].Ops+p.tiles[t].Moves)
	// Constraint-aware binding steers away from tiles whose context
	// memory is filling up, before the hard pruning filters have to
	// reject, and prefers placements that do not fragment the schedule
	// into extra pnop groups. The plain ACMAP/ECMAP flows bind exactly
	// like the basic flow and rely on pruning alone, which is what
	// separates the paper's Figs 6-8.
	if cx.cab {
		gapDelta := p.tiles[t].wordsIfOccupied(cc, p.maxCycle) -
			p.words(t, p.maxCycle, false) - 1
		if gapDelta > 0 {
			cand.cost += 0.4 * float64(gapDelta)
		}
		for _, tt := range cx.affectedTiles(cand, t) {
			if cx.soft[tt] >= unconstrained {
				continue
			}
			soft := cx.soft[tt]
			if soft < 1 {
				soft = 1
			}
			proj := float64(p.words(tt, p.maxCycle, false) + 1)
			frac := proj / float64(soft)
			if frac > 0.5 {
				cand.cost += 6 * (frac - 0.5)
			}
		}
	}
	return true
}

// affectedTiles lists the tiles receiving an instruction from the
// candidate: the op tile plus every move/recompute hop. The result lives
// in an arena scratch buffer valid until the next affectedTiles call.
func (cx *bbCtx) affectedTiles(cand *candidate, op arch.TileID) []arch.TileID {
	tiles := append(cx.arena.affTiles[:0], op)
	for _, ap := range cand.plans {
		for _, m := range ap.Plan.Moves {
			tiles = append(tiles, m.Tile)
		}
		if ap.Plan.Recomp != nil {
			tiles = append(tiles, ap.Plan.Recomp.Tile)
		}
	}
	cx.arena.affTiles = tiles
	return tiles
}

// apply realizes the candidate on a recycled deep copy of the parent.
func (cx *bbCtx) apply(cand *candidate, st *Stats) *partial {
	p := cx.arena.getPartial()
	cx.arena.cloneInto(p, cand.parent)
	nd := cx.block.Nodes[cand.node]
	var srcs [isa.MaxSrcs]isa.Src
	for i := range cand.plans {
		srcs[i] = cx.applyPlan(p, &cand.plans[i], st)
	}
	// Place the operation itself. (Stores and branches get the same
	// sentinel location so placed() works, though nothing consumes them.)
	ts := &p.tiles[cand.tile]
	slot := ts.slotAt(cand.cycle)
	*slot = Slot{Kind: SlotOp, Node: cand.node, Srcs: srcs, NSrc: len(cand.plans)}
	ts.Ops++
	ts.dirty()
	p.bump(cand.cycle)
	reg := noReg
	if nd.Op.HasResult() && cx.wantsWriteback(cand.node) {
		// Eager writeback: keep the value alive in the register file so
		// later consumers can reach it after the output register is
		// clobbered. Skipped when the file is full.
		if r := p.allocRegAt(cx.grid.RRFSize, cand.tile, cand.cycle, false); r != noReg {
			slot.WB = true
			slot.WReg = uint8(r)
			reg = r
		}
	}
	p.locs[cand.node] = append(p.locs[cand.node], loc{Tile: cand.tile, Cycle: cand.cycle, Reg: reg})
	p.cost += cand.cost
	cx.releaseDeadRegs(p, nd)
	p.touch(cx.arena)
	return p
}

// releaseDeadRegs frees the registers of operand values whose in-block
// consumers are now all placed and which no live-out symbol needs; their
// registers recycle for later values (subject to read/write hazards
// recorded in regLastRead/regLastWrite).
func (cx *bbCtx) releaseDeadRegs(p *partial, nd *cdfg.Node) {
	for _, a := range nd.Args {
		an := cx.block.Nodes[a]
		if an.Op == cdfg.OpConst || an.Op == cdfg.OpSym || cx.liveOutValues[a] {
			continue
		}
		done := true
		for _, u := range cx.users[a] {
			if !p.placed(u) {
				done = false
				break
			}
		}
		if !done {
			continue
		}
		for i := range p.locs[a] {
			l := &p.locs[a][i]
			if l.Reg != noReg {
				p.freeReg(l.Tile, l.Reg)
				l.Reg = noReg
			}
		}
	}
}

// wantsWriteback reports whether a node's value should be retained in the
// register file: it has consumers or defines a live-out symbol.
func (cx *bbCtx) wantsWriteback(n cdfg.NodeID) bool {
	return len(cx.users[n]) > 0 || cx.liveOutValues[n]
}

// applyPlan realizes one operand plan on the cloned partial and returns
// the operand source the consuming instruction uses.
func (cx *bbCtx) applyPlan(p *partial, ap *argPlan, st *Stats) isa.Src {
	pl := &ap.Plan
	src := pl.Src
	if ap.Pin != nil {
		var r int8
		if h, ok := p.newHomes[ap.Pin.Sym]; ok && h.Tile == ap.Pin.Tile {
			// Pinned moments ago by a sibling operand of this candidate.
			r = int8(h.Reg)
		} else {
			r = p.allocRegAt(cx.grid.RRFSize, ap.Pin.Tile, symHomeCycle, true)
			if r == noReg {
				panic("core: pin plan accepted without a fresh register")
			}
			if p.newHomes == nil {
				p.newHomes = map[string]SymLoc{}
			}
			p.newHomes[ap.Pin.Sym] = SymLoc{Tile: ap.Pin.Tile, Reg: uint8(r)}
			p.locs[ap.Pin.Node] = append(p.locs[ap.Pin.Node], loc{Tile: ap.Pin.Tile, Cycle: symHomeCycle, Reg: r})
		}
		src = isa.Reg(uint8(r))
		for _, rd := range pl.Reads {
			reg := rd.Reg
			if reg == -2 {
				reg = r
			}
			p.noteRead(cx.grid.RRFSize, rd.Tile, reg, rd.Cycle)
		}
		return src
	}
	// A retrofitted writeback allocates its register first so placeholder
	// register operands (in moves and in the consumer source) resolve.
	retroReg := noReg
	if pl.Retro != nil {
		ts := &p.tiles[pl.Retro.Tile]
		retroReg = p.allocRegAt(cx.grid.RRFSize, pl.Retro.Tile, pl.Retro.Cycle, false)
		if retroReg == noReg {
			panic("core: retro plan accepted without a free register")
		}
		slot := ts.slotAt(pl.Retro.Cycle)
		slot.WB = true
		slot.WReg = uint8(retroReg)
		// Update the matching location with its new register.
		for i := range p.locs[ap.Arg] {
			l := &p.locs[ap.Arg][i]
			if l.Tile == pl.Retro.Tile && l.Cycle == pl.Retro.Cycle {
				l.Reg = retroReg
			}
		}
	}
	resolveReg := func(s isa.Src) isa.Src {
		if s.Kind == isa.SrcReg && s.Reg == retroPlaceholder {
			if retroReg == noReg {
				panic("core: placeholder register without a retro writeback")
			}
			s.Reg = uint8(retroReg)
		}
		return s
	}
	src = resolveReg(src)
	for _, m := range pl.Moves {
		ts := &p.tiles[m.Tile]
		slot := ts.slotAt(m.Cycle)
		*slot = Slot{Kind: SlotMove, Node: ap.Arg, Srcs: [isa.MaxSrcs]isa.Src{resolveReg(m.Src)}, NSrc: 1}
		ts.Moves++
		ts.dirty()
		p.moves++
		p.bump(m.Cycle)
		p.locs[ap.Arg] = append(p.locs[ap.Arg], loc{Tile: m.Tile, Cycle: m.Cycle, Reg: noReg})
	}
	if pl.Recomp != nil {
		rc := pl.Recomp
		ts := &p.tiles[rc.Tile]
		slot := ts.slotAt(rc.Cycle)
		*slot = Slot{Kind: SlotOp, Node: rc.Node, Srcs: rc.Srcs, NSrc: rc.NSrc, Dup: true}
		ts.Ops++
		ts.dirty()
		p.recomputes++
		if st != nil {
			st.Recomputes++
		}
		p.bump(rc.Cycle)
		p.locs[ap.Arg] = append(p.locs[ap.Arg], loc{Tile: rc.Tile, Cycle: rc.Cycle, Reg: noReg})
	}
	for _, h := range pl.Holds {
		p.tiles[h.Tile].addHold(h.Prod, h.Last)
	}
	for _, rd := range pl.Reads {
		reg := rd.Reg
		if reg == -2 {
			reg = retroReg
		}
		p.noteRead(cx.grid.RRFSize, rd.Tile, reg, rd.Cycle)
	}
	for _, c := range pl.Consts {
		if !p.tiles[c.Tile].internConst(c.Val, cx.opt.MaxCRF) {
			panic("core: const plan accepted without CRF capacity")
		}
	}
	return src
}

// diagnose renders why a node is hard to bind under one representative
// partial: the operand locations and per-tile pressure.
func (cx *bbCtx) diagnose(p *partial, n cdfg.NodeID) string {
	var sb []byte
	add := func(format string, args ...any) { sb = fmt.Appendf(sb, format, args...) }
	add("  earliest=%d maxCycle=%d\n", cx.earliestCycle(p, n), p.maxCycle)
	for _, a := range cx.block.Nodes[n].Args {
		add("  arg n%d (%s): locs", a, cx.block.Nodes[a].Op)
		for _, l := range p.locs[a] {
			add(" (t%d,c%d,r%d)", l.Tile+1, l.Cycle, l.Reg)
		}
		add("\n")
	}
	for t := range p.tiles {
		ts := &p.tiles[t]
		add("  t%d: ops=%d moves=%d regs=%d/%d budget=%d holds=%v\n",
			t+1, ts.Ops, ts.Moves, cx.grid.RRFSize-ts.freeRegs(cx.grid.RRFSize),
			cx.grid.RRFSize, cx.budget[t], ts.Holds)
	}
	return string(sb)
}

// memReport renders per-tile context-word pressure for diagnostics,
// listing the offending instructions of overflowing tiles.
func (cx *bbCtx) memReport(p *partial) string {
	var sb []byte
	for t := range p.tiles {
		w := p.words(arch.TileID(t), p.maxCycle, true)
		sb = fmt.Appendf(sb, "  t%d: words=%d(+trail %d) budget=%d",
			t+1, p.words(arch.TileID(t), p.maxCycle, false), w, cx.budget[t])
		if w > cx.budget[t] {
			for c, sl := range p.tiles[t].Slots {
				if sl.Kind != SlotEmpty {
					sb = fmt.Appendf(sb, " [c%d %d n%d wb=%v]", c, sl.Kind, sl.Node, sl.WB)
				}
			}
		}
		sb = append(sb, '\n')
	}
	return string(sb)
}

// violation names the first tile violating the in-flight memory filters.
func (cx *bbCtx) violation(p *partial) string {
	owed := cx.pendingWB(p)
	for t := range p.tiles {
		w := p.words(arch.TileID(t), p.maxCycle, false)
		if w > 0 {
			w++
		} else if p.maxCycle > 0 {
			w = 1
		}
		if owed != nil {
			w += int(owed[t])
		}
		if w > cx.budget[t] {
			return fmt.Sprintf("t%d=%d/%d", t+1, w, cx.budget[t])
		}
	}
	return "?"
}

// pendingWB returns, per tile, how many live-out symbol writebacks are
// still owed to home registers on that tile — each will need up to one
// more context word at finalize.
func (cx *bbCtx) pendingWB(p *partial) []int8 {
	// The counts live in a single arena scratch buffer: callers consume
	// the result before any further pendingWB call, and only one mapper
	// goroutine ever uses an arena.
	var owed []int8
	for s, def := range cx.block.LiveOut {
		h, ok := cx.lookupHome(p, s)
		if !ok {
			continue
		}
		if p.writeCycle(cx.grid.RRFSize, h.Tile, int8(h.Reg)) != noWrite {
			continue // already written (retrofit or identity carry)
		}
		// The identity carry needs no writeback.
		if nd := cx.block.Nodes[def]; nd.Op == cdfg.OpSym && nd.Sym == s {
			continue
		}
		if owed == nil {
			owed = cx.arena.owedBuf(cx.grid.NumTiles())
		}
		owed[h.Tile]++
	}
	return owed
}

// acmapOK implements the approximate context-memory aware pruning filter
// (§III-D2): per tile, committed instructions plus the approximate pnop
// count (leading and interior gaps of the current partial schedule) must
// fit the remaining budget. The estimate tracks the schedule so far and is
// approximate with respect to the final block schedule in both directions.
// During mapping (reserve set) a word is reserved per pending live-out
// writeback on its home tile.
func (cx *bbCtx) acmapOK(p *partial, reserve bool) bool {
	var owed []int8
	if reserve {
		owed = cx.pendingWB(p)
	}
	for t := range p.tiles {
		w := p.words(arch.TileID(t), p.maxCycle, false)
		if owed != nil {
			w += int(owed[t])
		}
		if w > cx.budget[t] {
			return false
		}
	}
	return true
}

// ecmapOK implements the exact context-memory aware pruning filter
// (§III-D3): per tile, the exact context-word count of the schedule as it
// stands — including the trailing pnop each lagging tile needs to idle to
// the current makespan — must fit the remaining budget. During mapping
// (reserve set) a word is reserved per pending live-out writeback.
func (cx *bbCtx) ecmapOK(p *partial, reserve bool) bool {
	return cx.ecmapOKHeadroom(p, reserve, reserve)
}

// ecmapOKHeadroom lets the caller drop the trailing-headroom and pending-
// writeback charges near the end of a block, where all future
// instructions are known and the finalize check is the authority (a
// writeback can often retrofit into an existing slot at no word cost).
func (cx *bbCtx) ecmapOKHeadroom(p *partial, reserve, headroom bool) bool {
	var owed []int8
	if reserve && headroom {
		owed = cx.pendingWB(p)
	}
	for t := range p.tiles {
		var w int
		if headroom {
			// While mapping, a growing makespan can still hand any active
			// tile a trailing pnop, so one word of headroom is charged
			// beyond the interior count; idle tiles owe their whole-block
			// pnop.
			w = p.words(arch.TileID(t), p.maxCycle, false)
			if w > 0 {
				w++
			} else if p.maxCycle > 0 {
				w = 1
			}
		} else {
			w = p.words(arch.TileID(t), p.maxCycle, true)
		}
		if owed != nil {
			w += int(owed[t])
		}
		if w > cx.budget[t] {
			return false
		}
	}
	return true
}

// stochasticPrune bounds the beam: the best detFraction of the beam is
// kept deterministically by cost, the rest of the slots are filled by
// rank-weighted sampling (the paper's threshold function).
func stochasticPrune(parts []*partial, beam int, detFrac float64, rng *rand.Rand, st *Stats, ar *mapperArena) []*partial {
	// parts aliases the arena's children buffer, so the surviving beam is
	// always copied into a fresh slice; partials that don't survive go
	// straight back to the arena's free list.
	if len(parts) <= beam {
		return append(make([]*partial, 0, len(parts)), parts...)
	}
	sort.Stable(partialsByCost(parts))
	det := int(float64(beam) * detFrac)
	if det > beam {
		det = beam
	}
	kept := append(make([]*partial, 0, beam), parts[:det]...)
	rest := parts[det:]
	need := beam - det
	for need > 0 && len(rest) > 0 {
		// Rank-weighted threshold: earlier (cheaper) partials are
		// exponentially more likely to survive.
		w := ar.weights[:0]
		total := 0.0
		for i := range rest {
			wi := math.Exp(-float64(i) / float64(len(rest)))
			w = append(w, wi)
			total += wi
		}
		ar.weights = w
		x := rng.Float64() * total
		pick := 0
		for i := range w {
			x -= w[i]
			if x <= 0 {
				pick = i
				break
			}
		}
		kept = append(kept, rest[pick])
		rest = append(rest[:pick], rest[pick+1:]...)
		need--
	}
	st.PrunedStochastic += len(rest)
	for _, p := range rest {
		ar.putPartial(p)
	}
	return kept
}

// mapBlock runs the combined scheduling/binding beam search for one basic
// block, returning finalized partials (already filtered by the flow's
// memory constraints). The caller commits the best one.
func (cx *bbCtx) mapBlock(init *partial, rng *rand.Rand, st *Stats) ([]*partial, error) {
	ar := cx.arena
	tSched := time.Now()
	order := cx.scheduleOrder()
	st.Phases.Schedule += time.Since(tSched)
	beam := []*partial{init}
	cands := ar.cands[:0]
	defer func() { ar.cands = cands[:0] }()
	for oi, n := range order {
		// New bind step: the route memo and the plan chunks from the
		// previous node are dead (children copied what they keep).
		st.MemoEvictions += len(ar.memo)
		st.MemoResets++
		ar.bindReset()
		window := cx.opt.SlackWindow
		cands = cands[:0]
		tail := false
		tRoute := time.Now()
		for {
			for _, p := range beam {
				cands = cx.genCandidates(p, n, window, tail, cands)
			}
			if len(cands) > 0 {
				break
			}
			if window >= cx.opt.MaxSlack {
				if !tail {
					// Last resort: bind past the current makespan, where
					// every tile has free slots (the reroute region).
					tail = true
					window = cx.opt.SlackWindow
					st.Retries++
					continue
				}
				return nil, fmt.Errorf("core: no binding for node n%d (%s) in block %q under flow %s\n%s",
					n, cx.block.Nodes[n].Op, cx.block.Name, cx.opt.Flow, cx.diagnose(beam[0], n))
			}
			window *= 2
			if window > cx.opt.MaxSlack {
				window = cx.opt.MaxSlack
			}
			st.Retries++
		}
		st.Phases.Route += time.Since(tRoute)
		// The exact binder can enumerate hundreds of placements; rank by
		// accumulated cost and realize only the most promising.
		tBind := time.Now()
		perm := ar.candIdx[:0]
		for i := range cands {
			perm = append(perm, int32(i))
		}
		ar.candIdx = perm
		sort.Sort(candsByCost{cands: cands, idx: perm})
		// Realize candidates best-first until enough children survive the
		// memory filters (the cap bounds survivors, so a run of filtered
		// placements does not exhaust the binder's patience).
		limit := cx.opt.CandidateCap
		children := ar.children[:0]
		acPruned, ecPruned := 0, 0
		unbound := order[oi+1:]
		var sampleViol []string
		for _, ci := range perm {
			if len(children) >= limit {
				break
			}
			child := cx.apply(&cands[ci], st)
			st.Partials++
			if cx.opt.Flow >= FlowACMAP && !cx.acmapOK(child, true) {
				acPruned++
				if len(sampleViol) < 4 {
					sampleViol = append(sampleViol, "acmap:"+cx.violation(child))
				}
				ar.putPartial(child)
				continue
			}
			if cx.opt.Flow >= FlowECMAP {
				// The paper runs the exact filter at each cycle boundary;
				// checking every binding is equivalent but catches
				// violating partials before they waste beam slots.
				child.checkedTo = cx.frontierOf(child, unbound)
				if !cx.ecmapOKHeadroom(child, true, len(unbound) > 3) {
					ecPruned++
					if len(sampleViol) < 4 {
						sampleViol = append(sampleViol, "ecmap:"+cx.violation(child))
					}
					ar.putPartial(child)
					continue
				}
			}
			children = append(children, child)
		}
		ar.children = children[:0]
		st.PrunedACMAP += acPruned
		st.PrunedECMAP += ecPruned
		st.Phases.Bind += time.Since(tBind)
		if len(children) == 0 {
			return nil, fmt.Errorf("core: all %d bindings of node n%d in block %q violate memory constraints (flow %s) %v\n%s",
				len(cands), n, cx.block.Name, cx.opt.Flow, sampleViol, cx.memReport(cands[perm[0]].parent))
		}
		tPrune := time.Now()
		newBeam := stochasticPrune(children, cx.opt.BeamWidth, cx.opt.DetFraction, rng, st, ar)
		// The old beam (the children's parents) is fully superseded.
		for _, p := range beam {
			ar.putPartial(p)
		}
		beam = newBeam
		st.Phases.Prune += time.Since(tPrune)
	}
	tFin := time.Now()
	// Finalize: symbol writebacks and pnop accounting. The ECMAP and CAB
	// flows verify the finalized block exactly; the ACMAP-only flow keeps
	// its approximate filter here too, so blocks that do not actually fit
	// can be committed — such mappings are rejected by the final
	// whole-program check, reproducing the invalid-mapping abundance the
	// paper reports for the ACMAP-only flow.
	var done []*partial
	var lastErr error
	for _, p := range beam {
		if err := cx.finalize(p); err != nil {
			lastErr = err
			ar.putPartial(p)
			continue
		}
		switch {
		case cx.opt.Flow >= FlowECMAP && !cx.ecmapOK(p, false):
			lastErr = fmt.Errorf("core: finalized block %q overflows context memory\n%s", cx.block.Name, cx.memReport(p))
			ar.putPartial(p)
			continue
		case cx.opt.Flow == FlowACMAP && !cx.acmapOK(p, false):
			lastErr = fmt.Errorf("core: finalized block %q overflows context memory (approximate)\n%s", cx.block.Name, cx.memReport(p))
			ar.putPartial(p)
			continue
		}
		done = append(done, p)
	}
	st.Phases.Finalize += time.Since(tFin)
	if len(done) == 0 {
		if lastErr == nil {
			lastErr = fmt.Errorf("core: no finalized mapping for block %q", cx.block.Name)
		}
		return nil, lastErr
	}
	return done, nil
}
