package core

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/cdfg"
)

// Capabilities describes what a mapping backend guarantees, so callers
// (the portfolio, the differential oracle, the CLIs) can schedule and
// compare backends without knowing their implementations.
type Capabilities struct {
	// Exhaustive marks a backend that searches its whole move space (up to
	// an explicit budget) rather than sampling it. Exhaustive backends run
	// once per portfolio — extra seeds cannot improve them the way they
	// improve the stochastic heuristic.
	Exhaustive bool
	// SeedSensitive marks a backend whose result depends on Options.Seed.
	// The heuristic is fully seed-driven; the exact backend inherits only
	// its warm start from the seed, so both report true.
	SeedSensitive bool
	// Anytime marks a backend that returns its best mapping found so far
	// when a budget or ctx cancellation cuts the search short, instead of
	// failing.
	Anytime bool
}

// Backend is one mapper implementation: a strategy for producing a legal
// Mapping of a CDFG onto a grid. All backends honor the same Options
// (flow, traversal, memory constraints) and return mappings that pass the
// same post-conditions as Map — the verifier accepts any backend's output
// or the backend errors out.
type Backend interface {
	// Name is the stable identifier used by the -backend CLI flag, the
	// portfolio reports and the oracle's .repro metadata.
	Name() string
	Capabilities() Capabilities
	// Map maps the graph onto the grid. A nil ctx means background; a
	// cancelled ctx makes the backend return promptly (with its incumbent
	// for Anytime backends that already hold one, an error otherwise).
	Map(ctx context.Context, g *cdfg.Graph, grid *arch.Grid, opt Options) (*Mapping, error)
}

// HeuristicBackend is the paper's mapper — the stochastic beam search of
// Map — behind the Backend interface.
type HeuristicBackend struct{}

// Name implements Backend.
func (HeuristicBackend) Name() string { return "heuristic" }

// Capabilities implements Backend.
func (HeuristicBackend) Capabilities() Capabilities {
	return Capabilities{SeedSensitive: true}
}

// Map implements Backend by delegating to the package-level Map with the
// context threaded into the options.
func (HeuristicBackend) Map(ctx context.Context, g *cdfg.Graph, grid *arch.Grid, opt Options) (*Mapping, error) {
	if ctx != nil {
		opt.ctx = ctx
	}
	if opt.Obs.Enabled() {
		opt.Obs.Counter("core.backend.heuristic.maps").Inc()
	}
	return Map(g, grid, opt)
}

// DefaultBackend returns the backend used when none is named: the
// heuristic, which every existing entry point wraps.
func DefaultBackend() Backend { return HeuristicBackend{} }

// Backends lists every registered backend in a stable order (the
// heuristic first, as the reference implementation).
func Backends() []Backend {
	return []Backend{HeuristicBackend{}, ExactBackend{}}
}

// BackendNames lists the registered backend names in Backends order.
func BackendNames() []string {
	bs := Backends()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name()
	}
	return names
}

// BackendByName resolves a backend by its Name.
func BackendByName(name string) (Backend, error) {
	for _, b := range Backends() {
		if b.Name() == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("core: unknown backend %q (have %v)", name, BackendNames())
}
