package core

import (
	"testing"

	"repro/internal/cdfg"
)

func TestFlowStringsAndOrder(t *testing.T) {
	want := map[Flow]string{
		FlowBasic: "basic",
		FlowACMAP: "basic+ACMAP",
		FlowECMAP: "basic+ACMAP+ECMAP",
		FlowCAB:   "basic+ACMAP+ECMAP+CAB",
	}
	for f, s := range want {
		if f.String() != s {
			t.Errorf("%d.String() = %q, want %q", f, f.String(), s)
		}
	}
	if FlowBasic.memoryAware() {
		t.Error("basic is not memory aware")
	}
	for _, f := range []Flow{FlowACMAP, FlowECMAP, FlowCAB} {
		if !f.memoryAware() {
			t.Errorf("%s should be memory aware", f)
		}
	}
	fl := Flows()
	if len(fl) != 4 || fl[0] != FlowBasic || fl[3] != FlowCAB {
		t.Errorf("Flows() = %v", fl)
	}
}

func TestDefaultOptionsTraversal(t *testing.T) {
	// The paper's pairing: basic uses forward traversal, the aware flows
	// use weighted traversal.
	if DefaultOptions(FlowBasic).Traversal != cdfg.TraverseForward {
		t.Error("basic should default to forward traversal")
	}
	for _, f := range []Flow{FlowACMAP, FlowECMAP, FlowCAB} {
		if DefaultOptions(f).Traversal != cdfg.TraverseWeighted {
			t.Errorf("%s should default to weighted traversal", f)
		}
	}
}

func TestSanitize(t *testing.T) {
	o := Options{Flow: FlowCAB, DetFraction: 7, MaxHold: -1}
	o.sanitize()
	if o.BeamWidth < 1 || o.CandidateCap < 1 || o.SlackWindow < 1 {
		t.Error("sanitize must enforce positive search parameters")
	}
	if o.DetFraction != 0.5 {
		t.Errorf("DetFraction = %v", o.DetFraction)
	}
	if o.MaxHold < 1 || o.MaxSlack < o.SlackWindow || o.MaxCRF <= 0 {
		t.Error("sanitize bounds")
	}
	// A forced traversal on the basic flow is respected; an unforced one
	// is reset to forward.
	o = Options{Flow: FlowBasic, Traversal: cdfg.TraverseWeighted}
	o.sanitize()
	if o.Traversal != cdfg.TraverseForward {
		t.Error("unforced basic traversal should reset to forward")
	}
	o = Options{Flow: FlowBasic, Traversal: cdfg.TraverseWeighted, ForceTraversal: true}
	o.sanitize()
	if o.Traversal != cdfg.TraverseWeighted {
		t.Error("forced traversal should stick")
	}
}
