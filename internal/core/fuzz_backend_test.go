package core_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cdfg"
	"repro/internal/oracle"
)

// fuzzExactBudget bounds the exact search per fuzz input. Deliberately
// small: the fuzzer's value is the volume of graph shapes it pushes
// through both backends, not search depth on any one of them.
const fuzzExactBudget = 1500

// FuzzBackendDiff fuzzes the cross-backend differential: every input
// graph is mapped by both the heuristic and the exact branch-and-bound
// backend, and any disagreement — an illegal mapping from either side or
// an exact result costlier than its own warm start — fails the run. The
// seeds include every minimized oracle reproducer, so graphs that once
// exposed a backend bug keep replaying in plain `go test`. Run
//
//	go test -fuzz=FuzzBackendDiff ./internal/core
//
// to let the mutator search for new disagreements.
func FuzzBackendDiff(f *testing.F) {
	addGraph := func(g *cdfg.Graph, modeIdx, cfgIdx int64) {
		data, err := g.MarshalText()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data, modeIdx, cfgIdx)
	}
	for s := int64(0); s < 3; s++ {
		g, _ := cdfg.Generate(rand.New(rand.NewSource(s)), cdfg.DefaultGenConfig())
		addGraph(g, s, s+1)
	}
	repros, err := filepath.Glob(filepath.Join("..", "oracle", "testdata", "repro", "*.repro"))
	if err != nil {
		f.Fatal(err)
	}
	for i, path := range repros {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		g, _, err := oracle.ParseRepro(data)
		if err != nil {
			f.Fatalf("%s: %v", path, err)
		}
		addGraph(g, int64(i), int64(i))
	}

	cells := oracle.AllCells()
	pair := oracle.DefaultBackendPair()
	f.Fuzz(func(t *testing.T, data []byte, modeIdx, cfgIdx int64) {
		if len(data) > 1<<16 {
			return
		}
		g, err := cdfg.UnmarshalText(data)
		if err != nil {
			return // not a well-formed graph; nothing to diff
		}
		if g.NumNodes() > 120 || len(g.Blocks) > 16 {
			return // keep two mapper runs per cell bounded
		}
		mem := make(cdfg.Memory, 64)
		if _, err := cdfg.Interp(g, mem.Clone()); err != nil {
			return // graph traps; the oracle pipeline would reject it too
		}
		idx := (modeIdx*4 + cfgIdx) % int64(len(cells))
		if idx < 0 {
			idx += int64(len(cells))
		}
		cell := cells[idx]
		p := oracle.Pipeline{ExactNodeBudget: fuzzExactBudget}
		if r := p.CheckBackends(g, mem, pair, cell, modeIdx^cfgIdx); r.Outcome.Bug() {
			gtext, _ := g.MarshalText()
			t.Fatalf("%s: %s: %s: %v\n%s", pair, cell, r.Outcome, r.Err, gtext)
		}
	})
}
