package core

import (
	"testing"

	"repro/internal/arch"
)

func occupy(ts *tileState, cycles ...int) {
	for _, c := range cycles {
		*ts.slotAt(c) = Slot{Kind: SlotOp}
		ts.Ops++
	}
}

func TestGapGroups(t *testing.T) {
	cases := []struct {
		name         string
		occ          []int
		horizon      int
		interior     int // trailing=false
		withTrailing int // trailing=true
	}{
		{"empty", nil, 5, 0, 1},
		{"dense", []int{0, 1, 2}, 3, 0, 0},
		{"leading gap", []int{2, 3}, 4, 1, 1},
		{"interior gap", []int{0, 3}, 4, 1, 1},
		{"trailing gap", []int{0, 1}, 5, 0, 1},
		{"all three", []int{1, 4}, 7, 2, 3},
		{"two interior", []int{0, 2, 5}, 6, 2, 2},
	}
	for _, c := range cases {
		var ts tileState
		occupy(&ts, c.occ...)
		if got := ts.gapGroups(c.horizon, false); got != c.interior {
			t.Errorf("%s: interior = %d, want %d", c.name, got, c.interior)
		}
		if got := ts.gapGroups(c.horizon, true); got != c.withTrailing {
			t.Errorf("%s: with trailing = %d, want %d", c.name, got, c.withTrailing)
		}
	}
}

func TestCountPnops(t *testing.T) {
	row := make([]Slot, 7)
	row[1].Kind = SlotOp
	row[4].Kind = SlotMove
	// gaps: [0], [2,3], [5,6] -> 3 pnops
	if got := countPnops(row); got != 3 {
		t.Errorf("countPnops = %d, want 3", got)
	}
	if countPnops(nil) != 0 {
		t.Error("empty row")
	}
}

func TestHolds(t *testing.T) {
	var ts tileState
	ts.addHold(2, 5)
	if ts.canProduceAt(3) || ts.canProduceAt(4) {
		t.Error("production inside a hold should be rejected")
	}
	if !ts.canProduceAt(2) || !ts.canProduceAt(5) || !ts.canProduceAt(6) {
		t.Error("production at hold boundaries is allowed")
	}
	ts.addHold(2, 8) // extends the same hold
	if len(ts.Holds) != 1 {
		t.Errorf("holds should merge by producer cycle: %v", ts.Holds)
	}
	if ts.canProduceAt(7) {
		t.Error("extended hold should cover cycle 7")
	}
}

func TestRegisterRecyclingHazards(t *testing.T) {
	grid := arch.MustGrid(arch.HOM64)
	cx := &bbCtx{grid: grid}
	_ = cx
	p := &partial{
		tiles:         make([]tileState, 16),
		regLastRead:   make([]int16, 16*8),
		regLastWrite:  make([]int16, 16*8),
		regWriteCycle: make([]int16, 16*8),
	}
	for i := range p.regLastRead {
		p.regLastRead[i] = -1
		p.regLastWrite[i] = -1
		p.regWriteCycle[i] = noWrite
	}
	r := p.allocRegAt(8, 0, 5, false)
	if r != 0 {
		t.Fatalf("first alloc = r%d", r)
	}
	p.noteRead(8, 0, r, 9)
	p.freeReg(0, r)
	// A value written at cycle 7 would be clobbered by the old read at 9.
	if got := p.allocRegAt(8, 0, 7, false); got == r {
		t.Error("recycled register with a later read must not be handed out")
	}
	// At cycle 10 it is safe.
	p.freeReg(0, 1) // free the register the previous alloc took
	if got := p.allocRegAt(8, 0, 10, false); got != r {
		t.Errorf("alloc at 10 = r%d, want r%d", got, r)
	}
	// Fresh allocation skips ever-used registers.
	fresh := p.allocRegAt(8, 0, symHomeCycle, true)
	if fresh == r || fresh == noReg {
		t.Errorf("fresh alloc = r%d", fresh)
	}
	// Exhaust fresh registers on the tile.
	for {
		if p.allocRegAt(8, 0, symHomeCycle, true) == noReg {
			break
		}
	}
	if p.allocRegAt(8, 0, symHomeCycle, true) != noReg {
		t.Error("fresh alloc after exhaustion")
	}
}

func TestWordsIfOccupied(t *testing.T) {
	var ts tileState
	occupy(&ts, 0, 2) // words: 2 ops + 1 interior gap = 3
	base := ts.Ops + ts.Moves + ts.gapGroups(3, false)
	if base != 3 {
		t.Fatalf("base words = %d", base)
	}
	// Filling the gap at 1: 3 ops, 0 gaps -> 3 (no growth).
	if got := ts.wordsIfOccupied(1, 3); got != 3 {
		t.Errorf("fill gap: %d, want 3", got)
	}
	// Appending at 3: 3 ops, 1 gap -> 4.
	if got := ts.wordsIfOccupied(3, 4); got != 4 {
		t.Errorf("append: %d, want 4", got)
	}
	// Placing at 5 creates another gap: 3 ops + 2 gaps -> 5.
	if got := ts.wordsIfOccupied(5, 6); got != 5 {
		t.Errorf("fragment: %d, want 5", got)
	}
}

func TestPartialCloneIsDeep(t *testing.T) {
	p := &partial{
		tiles:         make([]tileState, 2),
		locs:          make([][]loc, 3),
		regLastRead:   make([]int16, 16),
		regLastWrite:  make([]int16, 16),
		regWriteCycle: make([]int16, 16),
		newHomes:      map[string]SymLoc{"x": {Tile: 1, Reg: 2}},
	}
	occupy(&p.tiles[0], 0)
	p.locs[1] = []loc{{Tile: 0, Cycle: 0, Reg: noReg}}
	c := p.clone()
	occupy(&c.tiles[0], 1)
	c.locs[1][0].Reg = 3
	c.newHomes["y"] = SymLoc{}
	c.regLastRead[0] = 9
	if p.tiles[0].Ops != 1 || p.locs[1][0].Reg != noReg ||
		len(p.newHomes) != 1 || p.regLastRead[0] != 0 {
		t.Error("clone shares state with the original")
	}
}
