package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/cdfg"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Score orders candidate mappings in a seed portfolio. Lower is better on
// both axes; Primary dominates and Secondary breaks ties. The final
// tie-break — applied by MapPortfolio, not by Score — is the lowest seed,
// which makes the portfolio winner a pure function of the seed set.
type Score struct {
	// Primary is the dominant cost (the default objective uses total
	// context-memory words, the quantity the paper's flow minimizes).
	Primary float64
	// Secondary breaks Primary ties (the CLI default uses the static
	// energy estimate from internal/power).
	Secondary float64
}

// Less reports whether s strictly precedes o.
func (s Score) Less(o Score) bool {
	if s.Primary != o.Primary {
		return s.Primary < o.Primary
	}
	return s.Secondary < o.Secondary
}

func (s Score) String() string {
	if s.Secondary == 0 {
		return fmt.Sprintf("%g", s.Primary)
	}
	return fmt.Sprintf("%g/%.4f", s.Primary, s.Secondary)
}

// Objective scores a successful mapping. Objectives must be pure functions
// of the mapping: they run concurrently on the portfolio workers.
type Objective func(*Mapping) Score

// WordsObjective is the default portfolio objective: total context-memory
// words over all tiles, no tie-break (equal-word mappings then fall back
// to the lowest seed).
func WordsObjective(m *Mapping) Score {
	return Score{Primary: float64(m.TotalWords())}
}

// TotalWords returns the context words the mapping occupies over all
// tiles — the portfolio's default minimization target.
func (m *Mapping) TotalWords() int {
	n := 0
	for _, w := range m.TileWords() {
		n += w
	}
	return n
}

// PortfolioOptions tunes MapPortfolio. The zero value runs a single seed
// (opt.Seed) on one worker, which is exactly Map.
type PortfolioOptions struct {
	// Seeds are the explicit seeds to explore. When nil, the portfolio
	// uses NumSeeds consecutive seeds starting at the base Options.Seed.
	Seeds []int64
	// NumSeeds is the portfolio width when Seeds is nil (minimum 1).
	NumSeeds int
	// Workers bounds the concurrently running mappers; 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Objective scores successful mappings; nil means WordsObjective.
	Objective Objective
	// Stop, when non-nil, is consulted after every successful mapping;
	// returning true cancels the remaining seeds early ("good enough",
	// e.g. a known lower bound was hit). Early cancellation trades the
	// GOMAXPROCS-independence of the winner for wall time: seeds still in
	// flight are abandoned, so only runs without Stop (or whose Stop
	// never fires) are schedule-independent.
	Stop func(*Mapping, Score) bool
	// Backends are the mapper backends to race; nil means the heuristic
	// alone (the historical portfolio). Seed-sensitive backends get one
	// job per seed; Exhaustive backends (the exact search) get a single
	// job on the first seed, since extra seeds only perturb their warm
	// start, not their search space.
	Backends []Backend

	// PrimaryIsWords declares that Objective's Score.Primary equals
	// Mapping.TotalWords() (true for power.PortfolioObjective). It enables
	// incumbent-sharing pruning for custom objectives: jobs whose
	// admissible word lower bound is strictly worse than a completed
	// competitor's are abandoned. Equality never prunes under a custom
	// objective — its Secondary could still win the tie — so the winner is
	// unchanged. Declaring this for an objective whose Primary is not the
	// word count voids the winner-invariance guarantee.
	PrimaryIsWords bool
	// NoIncumbent disables incumbent-sharing pruning entirely, restoring
	// the run-every-seed-to-completion behavior (useful for benchmarking
	// the pruning itself and for per-seed quality studies where losing
	// seeds' scores matter).
	NoIncumbent bool
}

// portfolioJob is one (backend, seed) cell of the race.
type portfolioJob struct {
	backend Backend
	seed    int64
}

func (o *PortfolioOptions) jobs(base int64) []portfolioJob {
	backends := o.Backends
	if len(backends) == 0 {
		backends = []Backend{DefaultBackend()}
	}
	seeds := o.seeds(base)
	var jobs []portfolioJob
	for _, b := range backends {
		if b.Capabilities().Exhaustive {
			jobs = append(jobs, portfolioJob{backend: b, seed: seeds[0]})
			continue
		}
		for _, s := range seeds {
			jobs = append(jobs, portfolioJob{backend: b, seed: s})
		}
	}
	return jobs
}

// SeedList returns the concrete seed set the portfolio will explore for a
// given base seed — the explicit Seeds when set, otherwise NumSeeds
// consecutive seeds from base. Exposed so callers that key derived state on
// a portfolio run (e.g. the mapping cache) can name the exact seed set.
func (o *PortfolioOptions) SeedList(base int64) []int64 {
	return append([]int64(nil), o.seeds(base)...)
}

func (o *PortfolioOptions) seeds(base int64) []int64 {
	if len(o.Seeds) > 0 {
		return o.Seeds
	}
	n := o.NumSeeds
	if n < 1 {
		n = 1
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = base + int64(i)
	}
	return seeds
}

// PortfolioReport records one seed's outcome for rendering and analysis.
type PortfolioReport struct {
	Seed int64
	// Backend names the mapper backend the job ran ("heuristic" unless
	// PortfolioOptions.Backends widened the race).
	Backend string
	// OK is true when the seed produced a mapping; Err carries the
	// failure otherwise.
	OK  bool
	Err string
	// Pruned marks a job abandoned by incumbent sharing: its admissible
	// word lower bound proved it could not beat a completed competitor.
	// Which losing jobs get pruned (vs. completing as losers) depends on
	// scheduling; the winner does not.
	Pruned bool
	// Score is the objective's verdict (valid only when OK).
	Score Score
	// Wall is the seed's mapping wall time (zero when the seed was
	// cancelled before starting).
	Wall time.Duration
	// Winner marks the seed whose mapping MapPortfolio returned.
	Winner bool
}

// PortfolioResult is the outcome of a portfolio run: the winning mapping
// plus the per-seed reports, ordered like the seed list.
type PortfolioResult struct {
	// Mapping is the winner under the objective.
	Mapping *Mapping
	// Seed produced the winner; Backend names the backend that ran it;
	// Score is its objective value.
	Seed    int64
	Backend string
	Score   Score
	// Reports has one entry per (backend, seed) job, in backend-list then
	// seed-list order.
	Reports []PortfolioReport
	// Wall is the whole portfolio's wall time.
	Wall time.Duration
}

// RenderReports returns the per-seed outcome table (internal/trace format).
func (r *PortfolioResult) RenderReports() string {
	rows := make([]trace.PortfolioRow, len(r.Reports))
	multiBackend := false
	for i, rep := range r.Reports {
		rows[i] = trace.PortfolioRow{
			Seed:   rep.Seed,
			OK:     rep.OK,
			Pruned: rep.Pruned,
			Wall:   rep.Wall,
			Winner: rep.Winner,
		}
		if rep.Backend != r.Reports[0].Backend {
			multiBackend = true
		}
		if rep.OK {
			rows[i].Detail = rep.Score.String()
		} else {
			rows[i].Detail = rep.Err
		}
	}
	title := fmt.Sprintf("portfolio: %d seeds, winner seed %d (score %s)",
		len(r.Reports), r.Seed, r.Score)
	if multiBackend {
		// The backend column only appears (and the title only names the
		// winner's backend) when the race actually spans backends, keeping
		// the historical single-backend rendering stable.
		for i, rep := range r.Reports {
			rows[i].Backend = rep.Backend
		}
		title = fmt.Sprintf("portfolio: %d jobs, winner %s seed %d (score %s)",
			len(r.Reports), r.Backend, r.Seed, r.Score)
	}
	return trace.Portfolio(title, rows)
}

// MapPortfolio runs a portfolio of (backend, seed) jobs concurrently and
// returns the best mapping under the objective. The heuristic flow is
// stochastic (the pruning step samples partial mappings, §III of the
// paper), so different seeds reach mappings of different quality; a
// portfolio buys quality with idle cores instead of a wider beam. With
// PortfolioOptions.Backends the seeds additionally race other backends —
// typically the exact branch-and-bound search, which joins as a single
// job and whose budget/ctx handling makes it a safe anytime participant
// under the same Stop predicate and cancellation.
//
// The winner is deterministic for a given job set: ties on the objective
// break toward the lowest seed (then the earlier-listed backend), and the
// selection scans the completed results in job order after all workers
// finish, so neither GOMAXPROCS nor goroutine completion order can change
// the outcome (unless PortfolioOptions.Stop cancels the run early — see
// its doc).
//
// When the objective's Primary is the total word count (the default, or a
// custom objective declared via PortfolioOptions.PrimaryIsWords), workers
// share the best completed result through an atomic incumbent and abandon
// jobs whose admissible word lower bound (WordLowerBound, rechecked
// between basic blocks as words commit) provably cannot beat it. Pruning
// is winner-invariant — only jobs that would lose the deterministic
// tie-break anyway are cut — but the per-job reports are not: which losing
// jobs show as pruned instead of completing depends on scheduling. Set
// PortfolioOptions.NoIncumbent to run every job to completion.
//
// Cancelling ctx stops workers promptly: seeds not yet started are
// skipped, and running mappers abort at their next basic-block boundary.
// When at least one seed has already succeeded, the best of the completed
// seeds is still returned; otherwise the error aggregates every seed's
// failure.
func MapPortfolio(ctx context.Context, g *cdfg.Graph, grid *arch.Grid, opt Options, popt PortfolioOptions) (*PortfolioResult, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	work := popt.jobs(opt.Seed)
	objective := popt.Objective
	if objective == nil {
		objective = WordsObjective
	}
	// Incumbent sharing: enabled when the objective's Primary is known to
	// be the total word count — always true for the default objective, and
	// declared via PrimaryIsWords for custom ones. Tie-break pruning (see
	// incumbent.prune) additionally needs the objective to have no
	// Secondary, i.e. the default.
	var inc *incumbent
	var lbound int
	if !popt.NoIncumbent && (popt.Objective == nil || popt.PrimaryIsWords) {
		inc = &incumbent{tiePrune: popt.Objective == nil}
		lbound = WordLowerBound(g, grid)
	}
	workers := popt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(work) {
		workers = len(work)
	}

	res := &PortfolioResult{Reports: make([]PortfolioReport, len(work))}
	mappings := make([]*Mapping, len(work))
	jobs := make(chan int)
	var wg sync.WaitGroup
	var stopMu sync.Mutex // serializes Stop, which may not be reentrant
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One arena per worker: jobs running on the same worker reuse
			// its buffers, and workers never share (arenas are not
			// concurrency-safe). The caller's arena, if any, is ignored here
			// for the same reason.
			ar := getArena()
			defer putArena(ar)
			for i := range jobs {
				job := work[i]
				rep := &res.Reports[i]
				rep.Seed = job.seed
				rep.Backend = job.backend.Name()
				if err := ctx.Err(); err != nil {
					rep.Err = err.Error()
					opt.Obs.Counter("core.portfolio.seeds_skipped").Inc()
					continue
				}
				// Pre-job screen: the whole-graph word floor is already
				// hopeless against a completed competitor. This is the only
				// pruning the exact backend sees — consulting the incumbent
				// mid-search would make its anytime node budget cut a
				// timing-dependent subtree and break its determinism.
				if inc != nil {
					if v, ok := inc.prune(lbound, job.seed, i); ok {
						rep.Pruned = true
						rep.Err = fmt.Sprintf("pruned: word floor %d cannot beat incumbent %d", lbound, v)
						opt.Obs.Counter("core.portfolio.seeds_pruned").Inc()
						continue
					}
				}
				seedOpt := opt
				seedOpt.Seed = job.seed
				seedOpt.ctx = ctx
				seedOpt.arena = ar
				// Each job traces on its own track: the seed span below and
				// every core.map/core.map.block span the backend opens nest
				// under tid i instead of colliding on the caller's tid.
				seedOpt.ObsTID = i
				if inc != nil && !job.backend.Capabilities().Exhaustive {
					seedOpt.incumbent = inc
					seedOpt.incJob = i
				}
				// One span per job, on its own tid, so concurrent jobs
				// render as parallel tracks in the trace viewer.
				var seedSpan obs.Span
				if opt.Obs.Enabled() {
					seedSpan = opt.Obs.StartSpan("core.portfolio.seed", "core", i)
				}
				t0 := time.Now()
				m, err := job.backend.Map(ctx, g, grid, seedOpt)
				rep.Wall = time.Since(t0)
				if opt.Obs.Enabled() {
					seedSpan.End(map[string]any{
						"seed": job.seed, "backend": rep.Backend, "ok": err == nil})
				}
				if err != nil {
					rep.Err = err.Error()
					if errors.Is(err, ErrPrunedByIncumbent) {
						rep.Pruned = true
						opt.Obs.Counter("core.portfolio.seeds_pruned").Inc()
					} else {
						opt.Obs.Counter("core.portfolio.seeds_failed").Inc()
					}
					continue
				}
				rep.OK = true
				rep.Score = objective(m)
				mappings[i] = m
				if inc != nil {
					inc.publish(m.TotalWords(), job.seed, i)
				}
				opt.Obs.Counter("core.portfolio.seeds_ok").Inc()
				if popt.Stop != nil {
					stopMu.Lock()
					stop := popt.Stop(m, rep.Score)
					stopMu.Unlock()
					if stop {
						cancel()
					}
				}
			}
		}()
	}
	for i := range work {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	res.Wall = time.Since(start)

	// Deterministic best-pick: scan in job order, prefer a strictly
	// better score, and on exact ties keep the lowest seed seen first
	// (equal seeds across backends keep the earlier-listed backend).
	best := -1
	for i, rep := range res.Reports {
		if !rep.OK {
			continue
		}
		switch {
		case best < 0,
			rep.Score.Less(res.Reports[best].Score),
			!res.Reports[best].Score.Less(rep.Score) && work[i].seed < work[best].seed:
			best = i
		}
	}
	if best < 0 {
		errs := make([]error, 0, len(work))
		for i, rep := range res.Reports {
			errs = append(errs, fmt.Errorf("%s seed %d: %s", work[i].backend.Name(), work[i].seed, rep.Err))
		}
		return nil, fmt.Errorf("core: portfolio of %d jobs found no mapping of %q onto %s: %w",
			len(work), g.Name, grid.Name, errors.Join(errs...))
	}
	res.Reports[best].Winner = true
	res.Mapping = mappings[best]
	res.Seed = work[best].seed
	res.Backend = res.Reports[best].Backend
	res.Score = res.Reports[best].Score
	if opt.Obs.Enabled() {
		opt.Obs.Emit("core.portfolio.winner", "core", best,
			map[string]any{"seed": res.Seed, "backend": res.Backend, "score": res.Score.String()})
	}
	return res, nil
}
