package core_test

// The in-package tests exercise CheckDataflow and rely on core.Map's
// dataflow post-condition, both of which delegate to internal/verify
// through the hook registered in that package's init. core itself cannot
// import verify (verify imports core), but this external test file can —
// the blank import links the verifier into the combined test binary.
import _ "repro/internal/verify"
