package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/kernels"
	"repro/internal/obs"
)

// TestWordLowerBoundAdmissible: the bound must never exceed the words of
// any mapping any flow actually produces — otherwise pruning could discard
// a potential winner.
func TestWordLowerBoundAdmissible(t *testing.T) {
	grids := []*arch.Grid{arch.MustGrid(arch.HOM32), arch.MustGrid(arch.HOM64)}
	for _, grid := range grids {
		for _, k := range kernels.All() {
			g := k.Build()
			lb := WordLowerBound(g, grid)
			for _, flow := range Flows() {
				// The slowest flow only on the smaller grid; one seed per
				// combination keeps this under test-budget (admissibility is
				// seed-independent: the bound is a function of graph × grid).
				if flow == FlowCAB && grid.NumTiles() > 16 {
					continue
				}
				opt := DefaultOptions(flow)
				m, err := Map(g, grid, opt)
				if err != nil {
					continue
				}
				if got := m.TotalWords(); got < lb {
					t.Errorf("%s on %s flow %v: mapping has %d words, bound claims ≥ %d",
						k.Name, grid.Name, flow, got, lb)
				}
			}
		}
	}
}

func TestIncumbentPublishKeepsBest(t *testing.T) {
	inc := &incumbent{tiePrune: true}
	if _, ok := inc.prune(100, 1, 0); ok {
		t.Fatal("empty incumbent pruned")
	}
	inc.publish(50, 7, 2)
	inc.publish(60, 1, 0) // worse words: ignored
	if r := inc.rec.Load(); r.words != 50 || r.seed != 7 {
		t.Fatalf("record = %+v, want 50 words seed 7", r)
	}
	inc.publish(50, 3, 5) // equal words, lower seed: wins the tie
	if r := inc.rec.Load(); r.seed != 3 {
		t.Fatalf("record = %+v, want seed 3 after tie", r)
	}
	inc.publish(50, 3, 1) // same seed, earlier job: wins
	if r := inc.rec.Load(); r.job != 1 {
		t.Fatalf("record = %+v, want job 1", r)
	}
	inc.publish(40, 9, 8) // strictly fewer words: wins regardless of seed
	if r := inc.rec.Load(); r.words != 40 || r.seed != 9 {
		t.Fatalf("record = %+v, want 40 words seed 9", r)
	}
}

func TestIncumbentPruneRules(t *testing.T) {
	inc := &incumbent{tiePrune: true}
	inc.publish(50, 3, 1)
	if _, ok := inc.prune(51, 1, 0); !ok {
		t.Fatal("bound above incumbent words not pruned")
	}
	if _, ok := inc.prune(49, 9, 9); ok {
		t.Fatal("bound below incumbent words pruned")
	}
	// Equal bound: prune iff the candidate loses the (seed, job) tie-break.
	if _, ok := inc.prune(50, 5, 0); !ok {
		t.Fatal("equal bound with higher seed not tie-pruned")
	}
	if _, ok := inc.prune(50, 2, 0); ok {
		t.Fatal("equal bound with lower seed pruned — that job could still win the tie")
	}
	if _, ok := inc.prune(50, 3, 0); ok {
		t.Fatal("equal bound, same seed, earlier job pruned")
	}
	if _, ok := inc.prune(50, 3, 2); !ok {
		t.Fatal("equal bound, same seed, later job not pruned")
	}

	// Without tiePrune (custom objective), equality must never prune: the
	// objective's secondary criteria could still prefer the candidate.
	strict := &incumbent{}
	strict.publish(50, 3, 1)
	if _, ok := strict.prune(50, 9, 9); ok {
		t.Fatal("tie pruned under a custom objective")
	}
	if _, ok := strict.prune(51, 9, 9); !ok {
		t.Fatal("strictly worse bound not pruned under a custom objective")
	}
}

func TestIncumbentConcurrentPublish(t *testing.T) {
	inc := &incumbent{tiePrune: true}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				inc.publish(100+(i*7+w*13)%50, int64(w), i)
			}
		}(w)
	}
	wg.Wait()
	r := inc.rec.Load()
	if r == nil || r.words != 100 {
		t.Fatalf("record after concurrent publish = %+v, want 100 words", r)
	}
}

// TestMapIncumbentAbort: with an unbeatable incumbent pre-published at the
// graph's word floor, the mapper must abandon the search mid-flight with
// ErrPrunedByIncumbent instead of completing.
func TestMapIncumbentAbort(t *testing.T) {
	grid := arch.MustGrid(arch.HOM32)
	want := map[string]bool{"FIR": true, "FFT": true, "MatM": true}
	for _, k := range kernels.All() {
		if !want[k.Name] {
			continue
		}
		name := k.Name
		graph := k.Build()
		if len(graph.Blocks) < 2 {
			continue // the mid-map check only runs between blocks
		}
		inc := &incumbent{tiePrune: true}
		// Seed -1 < any real seed, so the tie-break always favors the
		// incumbent even when the candidate matches the floor exactly.
		inc.publish(WordLowerBound(graph, grid), -1, 0)
		opt := DefaultOptions(FlowCAB)
		opt.incumbent = inc
		rec := obs.NewRecorder(obs.NewRegistry(), nil)
		opt.Obs = rec
		_, err := Map(graph, grid, opt)
		if !errors.Is(err, ErrPrunedByIncumbent) {
			t.Errorf("%s: Map returned %v, want ErrPrunedByIncumbent", name, err)
		}
		if rec.Counter("core.map.incumbent_aborts").Value() == 0 {
			t.Errorf("%s: abort not counted", name)
		}
	}
}

// TestPortfolioPruneFires: with one sequential worker the first seed
// publishes before the rest run, so pruning must fire deterministically and
// the reports must say so.
func TestPortfolioPruneFires(t *testing.T) {
	grid := arch.MustGrid(arch.HOM32)
	for _, k := range kernels.All() {
		if k.Name != "FIR" && k.Name != "DCFilter" {
			continue
		}
		g := k.Build()
		rec := obs.NewRecorder(obs.NewRegistry(), nil)
		opt := DefaultOptions(FlowCAB)
		opt.Obs = rec
		res, err := MapPortfolio(context.Background(), g, grid, opt, PortfolioOptions{NumSeeds: 8, Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		pruned := 0
		for _, r := range res.Reports {
			if r.Pruned {
				pruned++
				if r.Err == "" {
					t.Errorf("%s: pruned report carries no explanation", k.Name)
				}
			}
		}
		if pruned == 0 {
			t.Errorf("%s: no seed pruned with a sequential worker", k.Name)
		}
		if got := rec.Counter("core.portfolio.seeds_pruned").Value(); got != int64(pruned) {
			t.Errorf("%s: seeds_pruned counter %d, reports say %d", k.Name, got, pruned)
		}
		if rec.Counter("core.portfolio.seeds_failed").Value() != 0 {
			t.Errorf("%s: pruned seeds were miscounted as failures", k.Name)
		}
	}
}
