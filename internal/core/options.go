// Package core implements the CGRA mapping flows of the paper: the basic
// mapping of Das et al. (TCAD'18, the paper's reference [1]) and the
// context-memory aware mapping built on top of it, with its four dedicated
// steps — weighted CDFG traversal, approximate context-memory aware
// pruning (ACMAP), exact context-memory aware pruning (ECMAP) and
// constraint-aware binding (CAB).
package core

import (
	"context"

	"repro/internal/cdfg"
	"repro/internal/obs"
)

// Flow selects which of the paper's mapping-flow variants runs. The
// variants are cumulative, exactly like the paper's Figs 6–8 profile them.
type Flow int

const (
	// FlowBasic is the memory-unaware baseline of [1]: forward CDFG
	// traversal, no memory pruning.
	FlowBasic Flow = iota
	// FlowACMAP adds weighted traversal and approximate context-memory
	// aware pruning (paper §III-D1 + §III-D2, evaluated in Fig 6).
	FlowACMAP
	// FlowECMAP additionally applies exact context-memory aware pruning at
	// cycle boundaries (§III-D3, Fig 7).
	FlowECMAP
	// FlowCAB additionally blacklists full tiles during binding (§III-D4,
	// Fig 8). This is the complete context-memory aware mapping.
	FlowCAB
)

func (f Flow) String() string {
	switch f {
	case FlowBasic:
		return "basic"
	case FlowACMAP:
		return "basic+ACMAP"
	case FlowECMAP:
		return "basic+ACMAP+ECMAP"
	case FlowCAB:
		return "basic+ACMAP+ECMAP+CAB"
	}
	return "unknown"
}

// Flows lists the variants in the paper's evaluation order.
func Flows() []Flow { return []Flow{FlowBasic, FlowACMAP, FlowECMAP, FlowCAB} }

// memoryAware reports whether the flow honors context-memory constraints.
func (f Flow) memoryAware() bool { return f >= FlowACMAP }

// Options tunes the mapper. The zero value is not usable; start from
// DefaultOptions.
type Options struct {
	// Flow selects the mapping-flow variant.
	Flow Flow

	// Traversal overrides the CDFG traversal order. By default FlowBasic
	// uses forward traversal and the memory-aware flows use weighted
	// traversal, matching the paper; tests and the Fig 5 experiment set it
	// explicitly.
	Traversal cdfg.TraversalKind
	// ForceTraversal makes Traversal take effect even for FlowBasic.
	ForceTraversal bool

	// BeamWidth bounds the number of partial mappings kept after the
	// stochastic pruning step.
	BeamWidth int
	// DetFraction is the fraction of the beam kept deterministically by
	// cost; the remainder is sampled by the stochastic threshold function.
	DetFraction float64
	// Seed seeds the stochastic pruning. Equal seeds reproduce mappings.
	Seed int64

	// CandidateCap bounds the binding candidates considered per partial
	// mapping per node (the exact binder can enumerate hundreds).
	CandidateCap int

	// SlackWindow is how many cycles beyond a node's earliest feasible
	// cycle the binder explores initially.
	SlackWindow int
	// MaxSlack bounds the adaptive widening of the window when no
	// candidate is found (the reroute graph transformation).
	MaxSlack int

	// MaxHold bounds how many cycles a value may be held live on a
	// producer's output register for a delayed neighbor read; longer waits
	// must buy a register writeback or moves instead.
	MaxHold int

	// Recompute enables the recompute graph transformation: duplicating a
	// producer whose operands are constants on the consumer's tile when
	// routing fails.
	Recompute bool

	// EnergyAware adds a placement cost proportional to the consuming
	// tile's context-memory size, steering work toward tiles whose
	// context fetches are cheap (an extension beyond the paper: the
	// heterogeneous configurations make per-tile fetch energy differ by
	// up to ~10×). Off by default; the evaluation uses the paper's flow.
	EnergyAware bool
	// EnergyWeight scales the energy-aware cost (default 0.4).
	EnergyWeight float64

	// Profile optionally weights basic blocks by dynamic execution counts
	// when choosing among complete mappings (from cdfg.Trace.PerBlock).
	Profile map[cdfg.BBID]int

	// MaxCRF bounds the distinct constants a tile may reference (the
	// constant register file size).
	MaxCRF int

	// ExactNodeBudget bounds the exact backend's branch-and-bound search,
	// in realized partial mappings (the unit Stats.Partials counts). Zero
	// falls back to the CGRA_EXACT_NODE_BUDGET environment knob, then to
	// DefaultExactNodeBudget. The heuristic backend ignores it.
	ExactNodeBudget int

	// Obs, when non-nil, receives the mapper's instrumentation: registry
	// counters, arena gauges and per-Map/per-block timeline spans. A nil
	// recorder keeps the hot path allocation-free (pinned by
	// BenchmarkCoreMapObsOff); instrumentation never influences the search,
	// so mappings are byte-identical with and without a recorder.
	Obs *obs.Recorder

	// ObsTID is the trace track (Chrome trace tid) the mapper's spans land
	// on. Concurrent Map calls sharing one recorder — portfolio seeds, the
	// experiment runner's prefetch workers, oracle sweep workers — must use
	// distinct tids so per-track timestamps stay monotone and span nesting
	// reconstructs per worker (cgratrace, cgrametrics -events). Purely
	// observational: excluded from Fingerprint, never influences the search.
	ObsTID int

	// ctx, when set (by MapPortfolio), lets Map abort between basic
	// blocks and between retry attempts once the context is cancelled.
	ctx context.Context

	// arena, when set (WithArena, MapPortfolio workers), supplies the
	// reusable search scratch state; Map otherwise borrows one from a
	// process-wide pool. An arena must never be shared concurrently.
	arena *mapperArena

	// incumbent, when set (by MapPortfolio on non-exhaustive backend jobs),
	// lets Map abandon the search between basic blocks once the committed
	// words plus the remaining blocks' floors provably cannot beat the best
	// mapping another portfolio job already completed (ErrPrunedByIncumbent).
	// Plain Map calls never set it, so single-seed mappings — including the
	// 140 golden checksums — are untouched. incJob is this job's index in
	// the portfolio job list, the final component of the deterministic
	// (words, seed, job) tie-break.
	incumbent *incumbent
	incJob    int
}

// ctxErr reports the pending cancellation, if any.
func (o *Options) ctxErr() error {
	if o.ctx == nil {
		return nil
	}
	select {
	case <-o.ctx.Done():
		return o.ctx.Err()
	default:
		return nil
	}
}

// DefaultOptions returns the tuning used throughout the evaluation.
func DefaultOptions(flow Flow) Options {
	tr := cdfg.TraverseForward
	if flow.memoryAware() {
		tr = cdfg.TraverseWeighted
	}
	return Options{
		Flow:         flow,
		Traversal:    tr,
		BeamWidth:    24,
		DetFraction:  0.5,
		Seed:         1,
		CandidateCap: 48,
		SlackWindow:  4,
		MaxSlack:     24,
		MaxHold:      3,
		Recompute:    true,
		MaxCRF:       32,
	}
}

func (o *Options) sanitize() {
	if o.BeamWidth <= 0 {
		o.BeamWidth = 1
	}
	if o.DetFraction < 0 || o.DetFraction > 1 {
		o.DetFraction = 0.5
	}
	if o.CandidateCap <= 0 {
		o.CandidateCap = 16
	}
	if o.SlackWindow <= 0 {
		o.SlackWindow = 2
	}
	if o.MaxSlack < o.SlackWindow {
		o.MaxSlack = o.SlackWindow
	}
	if o.MaxHold < 1 {
		o.MaxHold = 1
	}
	if o.MaxCRF <= 0 {
		o.MaxCRF = 32
	}
	if o.EnergyAware && o.EnergyWeight <= 0 {
		o.EnergyWeight = 0.4
	}
	if !o.ForceTraversal && !o.Flow.memoryAware() {
		o.Traversal = cdfg.TraverseForward
	}
}
