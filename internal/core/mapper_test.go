package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/cdfg"
	"repro/internal/kernels"
)

// smallLoop builds a compact loop kernel used throughout the mapper tests.
func smallLoop(n int32) *cdfg.Graph {
	b := cdfg.NewBuilder("small")
	e := b.Block("entry")
	e.SetSym("i", e.Const(0))
	e.Jump("loop")
	l := b.Block("loop")
	i := l.Sym("i")
	x := l.Load(i)
	l.Store(l.AddC(i, n), l.AddC(l.MulC(x, 5), 7))
	i2 := l.AddC(i, 1)
	l.SetSym("i", i2)
	l.BranchIf(l.Lt(i2, l.Const(n)), "loop", "exit")
	b.Block("exit")
	return b.Finish()
}

func TestMapSmallLoopAllFlowsAllConfigs(t *testing.T) {
	g := smallLoop(8)
	for _, cfg := range arch.ConfigNames() {
		for _, flow := range Flows() {
			m, err := Map(g, arch.MustGrid(cfg), DefaultOptions(flow))
			if err != nil {
				t.Fatalf("%s/%s: %v", cfg, flow, err)
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("%s/%s: Validate: %v", cfg, flow, err)
			}
			if err := CheckDataflow(m); err != nil {
				t.Fatalf("%s/%s: CheckDataflow: %v", cfg, flow, err)
			}
			if flow.memoryAware() {
				if ok, tile := m.FitsMemory(); !ok {
					t.Fatalf("%s/%s: overflow on tile %d", cfg, flow, tile+1)
				}
			}
		}
	}
}

func TestMapDeterminism(t *testing.T) {
	g := smallLoop(8)
	grid := arch.MustGrid(arch.HET1)
	opt := DefaultOptions(FlowCAB)
	a, err := Map(g, grid, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Map(g, grid, opt)
	if err != nil {
		t.Fatal(err)
	}
	wa, wb := a.TileWords(), b.TileWords()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("same seed produced different mappings: %v vs %v", wa, wb)
		}
	}
	opt2 := opt
	opt2.Seed = 99
	if _, err := Map(g, grid, opt2); err != nil {
		t.Fatalf("different seed must still map: %v", err)
	}
}

func TestMapRejectsInvalidInputs(t *testing.T) {
	grid := arch.MustGrid(arch.HOM64)
	if _, err := Map(&cdfg.Graph{Name: "bad"}, grid, DefaultOptions(FlowBasic)); err == nil {
		t.Error("invalid graph should fail")
	}
	g := smallLoop(4)
	broken := arch.MustGrid(arch.HOM64)
	broken.RRFSize = 0
	if _, err := Map(g, broken, DefaultOptions(FlowBasic)); err == nil {
		t.Error("invalid grid should fail")
	}
}

// TestMapKernelsMatrix is the heavyweight integration test: every paper
// kernel under every flow on the configurations the evaluation uses, with
// the dataflow checker (enforced inside Map) and the memory constraint
// verified. Expected no-mapping cells are tolerated, matching Figs 6-8.
func TestMapKernelsMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("mapping matrix is slow; run without -short")
	}
	type cellKey struct {
		flow Flow
		cfg  arch.ConfigName
	}
	for _, k := range kernels.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			g := k.Build()
			cells := []cellKey{
				{FlowBasic, arch.HOM64},
				{FlowACMAP, arch.HET1},
				{FlowECMAP, arch.HOM32},
				{FlowCAB, arch.HET1},
				{FlowCAB, arch.HET2},
			}
			mapped := 0
			for _, c := range cells {
				m, err := Map(g, arch.MustGrid(c.cfg), DefaultOptions(c.flow))
				if err != nil {
					continue // no-mapping cells are expected for tight configs
				}
				mapped++
				if err := m.Validate(); err != nil {
					t.Fatalf("%s/%s: %v", c.flow, c.cfg, err)
				}
				if c.flow.memoryAware() {
					if ok, tile := m.FitsMemory(); !ok {
						t.Fatalf("%s/%s: overflow on tile %d", c.flow, c.cfg, tile+1)
					}
				}
				for s := range m.SymHomes {
					found := false
					for _, sym := range g.Symbols() {
						if sym == s {
							found = true
						}
					}
					if !found {
						t.Fatalf("%s/%s: home for unknown symbol %q", c.flow, c.cfg, s)
					}
				}
			}
			if mapped == 0 {
				t.Fatalf("no cell mapped for %s", k.Name)
			}
			// The basic flow on HOM64 must always map (the paper's
			// baseline premise).
			if _, err := Map(g, arch.MustGrid(arch.HOM64), DefaultOptions(FlowBasic)); err != nil {
				t.Fatalf("basic/HOM64 must map: %v", err)
			}
		})
	}
}

func TestScheduleOrder(t *testing.T) {
	g := smallLoop(4)
	blk := g.Blocks[1]
	order := scheduleOrder(blk, cdfg.Analyze(blk))
	pos := map[cdfg.NodeID]int{}
	for i, n := range order {
		pos[n] = i
	}
	count := 0
	for _, nd := range blk.Nodes {
		if nd.Op == cdfg.OpConst || nd.Op == cdfg.OpSym {
			if _, ok := pos[nd.ID]; ok {
				t.Fatalf("const/sym n%d should not be scheduled", nd.ID)
			}
			continue
		}
		count++
		p, ok := pos[nd.ID]
		if !ok {
			t.Fatalf("n%d missing from schedule order", nd.ID)
		}
		for _, a := range nd.Args {
			an := blk.Nodes[a]
			if an.Op == cdfg.OpConst || an.Op == cdfg.OpSym {
				continue
			}
			if pos[a] >= p {
				t.Fatalf("n%d scheduled before its argument n%d", nd.ID, a)
			}
		}
	}
	if len(order) != count {
		t.Fatalf("order has %d nodes, want %d", len(order), count)
	}
}

func TestStaticCyclesAndTotals(t *testing.T) {
	g := smallLoop(8)
	m, err := Map(g, arch.MustGrid(arch.HOM64), DefaultOptions(FlowBasic))
	if err != nil {
		t.Fatal(err)
	}
	plain := m.StaticCycles(nil)
	if plain <= 0 {
		t.Fatal("no static cycles")
	}
	profile := map[cdfg.BBID]int{1: 8} // the loop body runs 8 times
	weighted := m.StaticCycles(profile)
	if weighted <= plain {
		t.Errorf("profile weighting should grow cycles: %d vs %d", weighted, plain)
	}
	total := 0
	for _, w := range m.TileWords() {
		total += w
	}
	if got := m.TotalOps() + m.TotalMoves() + m.TotalPnops(); got != total {
		t.Errorf("word totals disagree: %d vs %d", got, total)
	}
}

// TestMapExtremeOptions stresses degenerate and restrictive tunings: the
// mapper must stay correct (dataflow check runs inside Map) even when the
// search is crippled.
func TestMapExtremeOptions(t *testing.T) {
	g := smallLoop(8)
	grid := arch.MustGrid(arch.HET1)
	cases := []struct {
		name string
		tune func(*Options)
	}{
		{"beam1", func(o *Options) { o.BeamWidth = 1 }},
		{"deterministic-beam", func(o *Options) { o.DetFraction = 1 }},
		{"sampled-beam", func(o *Options) { o.DetFraction = 0 }},
		{"hold1", func(o *Options) { o.MaxHold = 1 }},
		{"no-recompute", func(o *Options) { o.Recompute = false }},
		{"tiny-window", func(o *Options) { o.SlackWindow = 1; o.MaxSlack = 2 }},
		{"tiny-candidates", func(o *Options) { o.CandidateCap = 2 }},
		{"energy-aware", func(o *Options) { o.EnergyAware = true }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			opt := DefaultOptions(FlowCAB)
			c.tune(&opt)
			m, err := Map(g, grid, opt)
			if err != nil {
				t.Fatalf("mapping failed: %v", err)
			}
			if ok, tile := m.FitsMemory(); !ok {
				t.Fatalf("overflow on tile %d", tile+1)
			}
		})
	}
}

// TestMapStatsPopulated checks the statistics the compile-time figure and
// the CLI report.
func TestMapStatsPopulated(t *testing.T) {
	m, err := Map(smallLoop(8), arch.MustGrid(arch.HOM32), DefaultOptions(FlowCAB))
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats
	if st.CompileTime <= 0 {
		t.Error("compile time not measured")
	}
	if st.Partials <= 0 {
		t.Error("no partials counted")
	}
	if st.PrunedStochastic < 0 || st.PrunedACMAP < 0 || st.PrunedECMAP < 0 {
		t.Error("negative pruning counters")
	}
}
