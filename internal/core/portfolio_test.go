package core_test

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/power"
)

// imageOf assembles the mapping and serializes its binary image — the
// byte-exact fingerprint the determinism tests compare.
func imageOf(t testing.TB, m *core.Mapping) []byte {
	t.Helper()
	prog, err := asm.Assemble(m)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	img, err := asm.SaveImage(prog)
	if err != nil {
		t.Fatalf("save image: %v", err)
	}
	return img
}

// tinyGrid is a 4×4 grid whose context memories are far too small for any
// benchmark kernel: every seed of a memory-aware portfolio must fail on
// it, deterministically.
func tinyGrid(t testing.TB) *arch.Grid {
	t.Helper()
	var cm [16]int
	for i := range cm {
		cm[i] = 2
	}
	g, err := arch.CustomGrid("TINY2", cm)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPortfolioSingleSeedEqualsMap(t *testing.T) {
	k, err := kernels.ByName("FIR")
	if err != nil {
		t.Fatal(err)
	}
	g := k.Build()
	grid := arch.MustGrid(arch.HOM32)
	opt := core.DefaultOptions(core.FlowCAB)
	opt.Seed = 5

	direct, err := core.Map(g, grid, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.MapPortfolio(context.Background(), g, grid, opt, core.PortfolioOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seed != 5 {
		t.Errorf("winner seed %d, want the base seed 5", res.Seed)
	}
	if len(res.Reports) != 1 || !res.Reports[0].OK || !res.Reports[0].Winner {
		t.Errorf("reports: %+v", res.Reports)
	}
	if !bytes.Equal(imageOf(t, direct), imageOf(t, res.Mapping)) {
		t.Error("a 1-seed portfolio must reproduce plain Map byte for byte")
	}
}

func TestPortfolioAllSeedsFail(t *testing.T) {
	k, err := kernels.ByName("FIR")
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions(core.FlowCAB)
	res, err := core.MapPortfolio(context.Background(), k.Build(), tinyGrid(t), opt, core.PortfolioOptions{NumSeeds: 3})
	if err == nil {
		t.Fatal("expected every seed to fail on the tiny grid")
	}
	if res != nil {
		t.Errorf("failed portfolio returned a result: %+v", res)
	}
	// The aggregated error names every job's failure.
	for _, want := range []string{"seed 1:", "seed 2:", "seed 3:", "portfolio of 3 jobs"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q misses %q", err, want)
		}
	}
}

func TestPortfolioPreCancelled(t *testing.T) {
	k, err := kernels.ByName("FIR")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := core.DefaultOptions(core.FlowCAB)
	res, err := core.MapPortfolio(ctx, k.Build(), arch.MustGrid(arch.HOM32), opt, core.PortfolioOptions{NumSeeds: 4})
	if err == nil {
		t.Fatalf("cancelled portfolio succeeded: %+v", res)
	}
	if !errors.Is(err, context.Canceled) && !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Errorf("error should reflect the cancellation: %v", err)
	}
}

func TestPortfolioStopCancelsRemainingSeeds(t *testing.T) {
	k, err := kernels.ByName("FIR")
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions(core.FlowCAB)
	// One worker makes the schedule deterministic: seed 1 completes first,
	// Stop fires, and seeds 2..5 must be skipped without running.
	res, err := core.MapPortfolio(context.Background(), k.Build(), arch.MustGrid(arch.HOM32), opt,
		core.PortfolioOptions{
			NumSeeds: 5,
			Workers:  1,
			Stop:     func(*core.Mapping, core.Score) bool { return true },
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seed != 1 {
		t.Errorf("winner seed %d, want 1", res.Seed)
	}
	for _, rep := range res.Reports[1:] {
		if rep.OK {
			t.Errorf("seed %d ran after Stop cancelled the portfolio", rep.Seed)
		}
		if !strings.Contains(rep.Err, context.Canceled.Error()) {
			t.Errorf("seed %d: err %q, want cancellation", rep.Seed, rep.Err)
		}
	}
}

// TestPortfolioTieBreaks drives the objective tie-break table: a constant
// objective must fall through to the lowest seed, a Secondary-only
// objective must order by Secondary, and an explicit unordered seed list
// must not bias the winner toward its first element.
func TestPortfolioTieBreaks(t *testing.T) {
	k, err := kernels.ByName("FIR")
	if err != nil {
		t.Fatal(err)
	}
	g := k.Build()
	grid := arch.MustGrid(arch.HOM32)
	opt := core.DefaultOptions(core.FlowCAB)

	// expectedWinner replays the portfolio serially with plain Map and
	// applies the documented rule: best score, ties to the lowest seed.
	expectedWinner := func(seeds []int64, obj core.Objective) (int64, bool) {
		bestSeed, ok := int64(0), false
		var bestScore core.Score
		for _, s := range seeds {
			o := opt
			o.Seed = s
			m, err := core.Map(g, grid, o)
			if err != nil {
				continue
			}
			sc := obj(m)
			if !ok || sc.Less(bestScore) || (!bestScore.Less(sc) && s < bestSeed) {
				bestSeed, bestScore, ok = s, sc, true
			}
		}
		return bestSeed, ok
	}

	cases := []struct {
		name  string
		seeds []int64
		obj   core.Objective
	}{
		{"constant score falls through to lowest seed", []int64{4, 2, 9}, func(*core.Mapping) core.Score { return core.Score{} }},
		{"secondary breaks primary ties", []int64{1, 2, 3, 4}, func(m *core.Mapping) core.Score {
			return core.Score{Primary: 1, Secondary: float64(m.TotalMoves())}
		}},
		{"default words objective", []int64{1, 2, 3, 4, 5, 6}, core.WordsObjective},
		{"energy-tie-break objective", []int64{1, 2, 3, 4, 5, 6}, power.PortfolioObjective(power.Default())},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, ok := expectedWinner(tc.seeds, tc.obj)
			if !ok {
				t.Fatal("no seed mapped")
			}
			res, err := core.MapPortfolio(context.Background(), g, grid, opt,
				core.PortfolioOptions{Seeds: tc.seeds, Objective: tc.obj, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if res.Seed != want {
				t.Errorf("winner seed %d, want %d", res.Seed, want)
			}
			winners := 0
			for _, rep := range res.Reports {
				if rep.Winner {
					winners++
					if rep.Seed != res.Seed {
						t.Errorf("winner flag on seed %d, result says %d", rep.Seed, res.Seed)
					}
				}
			}
			if winners != 1 {
				t.Errorf("%d reports flagged as winner", winners)
			}
		})
	}
}

func TestPortfolioRenderReports(t *testing.T) {
	k, err := kernels.ByName("FIR")
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions(core.FlowCAB)
	res, err := core.MapPortfolio(context.Background(), k.Build(), arch.MustGrid(arch.HOM32), opt,
		core.PortfolioOptions{NumSeeds: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := res.RenderReports()
	for _, want := range []string{"winner", "seed", "wall", "ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("render misses %q:\n%s", want, out)
		}
	}
}

// TestPortfolioGOMAXPROCSIndependence is the determinism half of the
// portfolio contract: the winner (down to the assembled binary image) must
// not depend on how many OS threads the workers share.
func TestPortfolioGOMAXPROCSIndependence(t *testing.T) {
	k, err := kernels.ByName("FIR")
	if err != nil {
		t.Fatal(err)
	}
	g := k.Build()
	grid := arch.MustGrid(arch.HOM32)
	opt := core.DefaultOptions(core.FlowCAB)
	popt := core.PortfolioOptions{NumSeeds: 8, Objective: power.PortfolioObjective(power.Default())}

	runAt := func(procs int) (int64, core.Score, []byte) {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		res, err := core.MapPortfolio(context.Background(), g, grid, opt, popt)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		return res.Seed, res.Score, imageOf(t, res.Mapping)
	}

	seed1, score1, img1 := runAt(1)
	seed8, score8, img8 := runAt(8)
	if seed1 != seed8 {
		t.Errorf("winner seed differs: %d at GOMAXPROCS=1, %d at GOMAXPROCS=8", seed1, seed8)
	}
	if score1 != score8 {
		t.Errorf("winner score differs: %v vs %v", score1, score8)
	}
	if !bytes.Equal(img1, img8) {
		t.Error("winner image differs between GOMAXPROCS=1 and GOMAXPROCS=8")
	}
}
