package core_test

import (
	"bytes"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/kernels"
)

// TestMapSeedDeterminism is the repo's seed-reproducibility regression:
// mapping the same kernel twice with the same options must assemble to a
// byte-identical binary image. The mapper's only randomness is the seeded
// pruning RNG, so any divergence here means nondeterministic iteration
// (map ordering, goroutine timing) leaked into the flow.
func TestMapSeedDeterminism(t *testing.T) {
	names := kernels.Names()
	if testing.Short() {
		names = names[:2]
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			k, err := kernels.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			opt := core.DefaultOptions(core.FlowCAB)
			opt.Seed = 7
			// Use the first configuration the kernel maps onto under CAB
			// (every kernel maps somewhere — the Fig 8 invariant).
			for _, cfg := range arch.ConfigNames() {
				grid := arch.MustGrid(cfg)
				m1, err := core.Map(k.Build(), grid, opt)
				if err != nil {
					continue
				}
				m2, err := core.Map(k.Build(), grid, opt)
				if err != nil {
					t.Fatalf("%s/%s: second map failed after the first succeeded: %v", name, cfg, err)
				}
				img1, img2 := imageOf(t, m1), imageOf(t, m2)
				if !bytes.Equal(img1, img2) {
					t.Fatalf("%s/%s: same seed produced different binary images (%d vs %d bytes)",
						name, cfg, len(img1), len(img2))
				}
				return
			}
			t.Fatalf("%s mapped on no configuration under CAB", name)
		})
	}
}
