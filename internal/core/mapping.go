package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/arch"
	"repro/internal/cdfg"
	"repro/internal/isa"
)

// SlotKind classifies one (tile, cycle) slot of a block schedule.
type SlotKind uint8

const (
	// SlotEmpty means the tile idles that cycle (assembled into pnops).
	SlotEmpty SlotKind = iota
	// SlotOp executes a CDFG node.
	SlotOp
	// SlotMove executes a routing move inserted by the mapper (a
	// "transformed operation" n(To) in the paper's accounting).
	SlotMove
)

// Slot is one cycle of one tile within a block schedule, carrying
// everything the assembler needs to emit the context word.
type Slot struct {
	Kind SlotKind
	// Node is the CDFG node executed (SlotOp) or whose value is routed
	// (SlotMove).
	Node cdfg.NodeID
	// Srcs are the resolved operand sources.
	Srcs [isa.MaxSrcs]isa.Src
	// NSrc is the operand count.
	NSrc int
	// WB/WReg request a register-file writeback of the slot's result.
	WB   bool
	WReg uint8
	// Dup marks a recomputed duplicate of a node already placed elsewhere
	// (the recompute graph transformation).
	Dup bool
}

// BlockMapping is the complete mapping of one basic block: a dense
// (tile × cycle) schedule grid.
type BlockMapping struct {
	BB cdfg.BBID
	// Len is the block's schedule length in cycles.
	Len int
	// Tiles[t][c] is what tile t does in cycle c; len(Tiles[t]) == Len.
	Tiles [][]Slot
	// BranchTile is the tile evaluating the block's branch (None if the
	// block has no branch).
	BranchTile arch.TileID
	// Ops, Moves, Pnops count the block's context words per tile.
	Ops, Moves, Pnops []int
}

// Words returns the context words block b occupies on tile t.
func (b *BlockMapping) Words(t arch.TileID) int {
	return b.Ops[t] + b.Moves[t] + b.Pnops[t]
}

// SymLoc is a symbol variable's home: the register-file location the
// mapper pinned it to (the paper's location constraint).
type SymLoc struct {
	Tile arch.TileID
	Reg  uint8
}

// PhaseTimes breaks the mapper's wall clock down by binder phase. The
// phases partition mapBlock: list scheduling, candidate routing (operand
// route planning across the slack windows), binding (realizing candidates
// and running the memory filters), stochastic pruning, and finalization
// (symbol writebacks plus the exact fit check).
type PhaseTimes struct {
	Schedule time.Duration
	Route    time.Duration
	Bind     time.Duration
	Prune    time.Duration
	Finalize time.Duration
}

// Stats aggregates mapping-quality metrics used by the experiments.
type Stats struct {
	// CompileTime is the wall-clock mapping duration.
	CompileTime time.Duration
	// Phases splits CompileTime across the binder's phases.
	Phases PhaseTimes
	// Partials counts partial mappings created over the whole run.
	Partials int
	// PrunedACMAP/PrunedECMAP/PrunedStochastic count partials discarded by
	// each pruning stage.
	PrunedACMAP      int
	PrunedECMAP      int
	PrunedStochastic int
	// Retries counts slack-window widenings (reroute transformations).
	Retries int
	// Recomputes counts recompute transformations applied.
	Recomputes int
	// MemoHits/MemoMisses count route-memo lookups (see planOperandMemo);
	// MemoResets counts bind-step resets and MemoEvictions the entries
	// those resets discarded.
	MemoHits      int
	MemoMisses    int
	MemoResets    int
	MemoEvictions int

	// Exact describes the branch-and-bound run when the mapping came from
	// the exact backend; zero for heuristic mappings.
	Exact ExactStats
}

// ExactStats describes one exact-backend search.
type ExactStats struct {
	// NodeBudget is the resolved expansion budget the search ran under.
	NodeBudget int
	// Expanded counts DFS nodes whose candidate set was enumerated.
	Expanded int
	// Leaves counts fully-bound blocks reached (finalize attempts).
	Leaves int
	// BoundPruned counts subtrees cut by the admissible word lower bound;
	// ConflictPruned counts revisits of fully-refuted states (the nogood
	// cache); MemPruned counts children over a tile's hard word budget.
	BoundPruned    int
	ConflictPruned int
	MemPruned      int
	// DataflowRejected counts complete mappings the symbolic dataflow
	// checker refused; nonzero values are worth investigating (the search
	// committed a schedule the checker refutes) but never escape the
	// backend.
	DataflowRejected int
	// Improved counts strict improvements over the warm-start incumbent.
	Improved int
	// Proven is set when the search exhausted its move space within the
	// budget: the result is optimal within that space, not just the best
	// found so far.
	Proven bool
	// WarmWords is the heuristic warm start's total context words (-1 if
	// the heuristic found no mapping); BestWords is the returned
	// mapping's.
	WarmWords int
	BestWords int
}

// Mapping is a complete mapping of a CDFG onto a CGRA configuration.
type Mapping struct {
	Graph *cdfg.Graph
	Grid  *arch.Grid
	Flow  Flow

	// Blocks is indexed by cdfg.BBID.
	Blocks []*BlockMapping

	// SymHomes pins each symbol variable to a register-file location.
	SymHomes map[string]SymLoc

	Stats Stats
}

// TileWords returns the total context words used per tile over all blocks.
// This is the quantity the paper's per-tile constraint bounds by n(I).
func (m *Mapping) TileWords() []int {
	words := make([]int, m.Grid.NumTiles())
	for _, b := range m.Blocks {
		for t := range words {
			words[t] += b.Words(arch.TileID(t))
		}
	}
	return words
}

// TotalOps, TotalMoves, TotalPnops sum the respective context words over
// all tiles and blocks.
func (m *Mapping) TotalOps() int { return m.sum(func(b *BlockMapping, t int) int { return b.Ops[t] }) }
func (m *Mapping) TotalMoves() int {
	return m.sum(func(b *BlockMapping, t int) int { return b.Moves[t] })
}
func (m *Mapping) TotalPnops() int {
	return m.sum(func(b *BlockMapping, t int) int { return b.Pnops[t] })
}

func (m *Mapping) sum(f func(*BlockMapping, int) int) int {
	n := 0
	for _, b := range m.Blocks {
		for t := 0; t < m.Grid.NumTiles(); t++ {
			n += f(b, t)
		}
	}
	return n
}

// FitsMemory reports whether every tile's context fits its context memory,
// and the first violating tile if not.
func (m *Mapping) FitsMemory() (bool, arch.TileID) {
	for t, w := range m.TileWords() {
		if w > m.Grid.Tile(arch.TileID(t)).CMWords {
			return false, arch.TileID(t)
		}
	}
	return true, 0
}

// StaticCycles estimates execution cycles as the profile-weighted sum of
// block lengths (weight 1 without a profile). The simulator refines this
// with memory-stall cycles.
func (m *Mapping) StaticCycles(profile map[cdfg.BBID]int) int {
	total := 0
	for _, b := range m.Blocks {
		w := 1
		if profile != nil {
			if f, ok := profile[b.BB]; ok {
				w = f
			}
		}
		total += w * b.Len
	}
	return total
}

// Validate cross-checks the mapping's internal consistency: schedule grid
// shapes, per-slot source validity, and word counts. The simulator is the
// deeper functional check; Validate catches structural bugs early.
func (m *Mapping) Validate() error {
	if len(m.Blocks) != len(m.Graph.Blocks) {
		return fmt.Errorf("core: mapping has %d blocks, graph has %d", len(m.Blocks), len(m.Graph.Blocks))
	}
	for _, bm := range m.Blocks {
		if bm == nil {
			return fmt.Errorf("core: missing block mapping")
		}
		b := m.Graph.Blocks[bm.BB]
		if len(bm.Tiles) != m.Grid.NumTiles() {
			return fmt.Errorf("core: block %q has %d tile rows", b.Name, len(bm.Tiles))
		}
		placed := map[cdfg.NodeID]bool{}
		for t, row := range bm.Tiles {
			if len(row) != bm.Len {
				return fmt.Errorf("core: block %q tile %d row length %d != %d", b.Name, t, len(row), bm.Len)
			}
			ops, moves := 0, 0
			for c, s := range row {
				switch s.Kind {
				case SlotEmpty:
				case SlotOp:
					ops++
					nd := b.Nodes[s.Node]
					if nd.Op.IsMem() && !m.Grid.Tile(arch.TileID(t)).HasLSU {
						return fmt.Errorf("core: block %q: %s on non-LSU tile %d", b.Name, nd.Op, t+1)
					}
					if !s.Dup {
						if placed[s.Node] {
							return fmt.Errorf("core: block %q node n%d placed twice", b.Name, s.Node)
						}
						placed[s.Node] = true
					}
					if s.NSrc != nd.Op.NumArgs() {
						return fmt.Errorf("core: block %q n%d: %d sources for %s", b.Name, s.Node, s.NSrc, nd.Op)
					}
				case SlotMove:
					moves++
					if s.NSrc != 1 {
						return fmt.Errorf("core: block %q move at tile %d cycle %d has %d sources", b.Name, t, c, s.NSrc)
					}
				}
			}
			if ops != bm.Ops[t] || moves != bm.Moves[t] {
				return fmt.Errorf("core: block %q tile %d counts op=%d/%d move=%d/%d",
					b.Name, t, ops, bm.Ops[t], moves, bm.Moves[t])
			}
			if p := countPnops(row); p != bm.Pnops[t] {
				return fmt.Errorf("core: block %q tile %d pnops %d != %d", b.Name, t, p, bm.Pnops[t])
			}
		}
		for _, n := range b.Nodes {
			if n.Op == cdfg.OpConst || n.Op == cdfg.OpSym {
				continue
			}
			if !placed[n.ID] {
				return fmt.Errorf("core: block %q node n%d (%s) not placed", b.Name, n.ID, n.Op)
			}
		}
	}
	// Walk homes in sorted order so the reported symbol is deterministic.
	syms := make([]string, 0, len(m.SymHomes))
	for s := range m.SymHomes {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	for _, s := range syms {
		loc := m.SymHomes[s]
		if int(loc.Tile) >= m.Grid.NumTiles() || int(loc.Reg) >= m.Grid.RRFSize {
			return fmt.Errorf("core: symbol %q home out of range: %+v", s, loc)
		}
	}
	return nil
}

// countPnops counts the pnop words a slot row assembles into: one per
// maximal run of empty slots (including a trailing run, which must idle
// until the block's last cycle).
func countPnops(row []Slot) int {
	n := 0
	inGap := false
	for _, s := range row {
		if s.Kind == SlotEmpty {
			if !inGap {
				n++
				inGap = true
			}
		} else {
			inGap = false
		}
	}
	return n
}
