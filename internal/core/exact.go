package core

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"

	"repro/internal/arch"
	"repro/internal/cdfg"
	"repro/internal/obs"
)

// DefaultExactNodeBudget bounds the exact backend's search when neither
// Options.ExactNodeBudget nor the CGRA_EXACT_NODE_BUDGET environment knob
// (used by the CI smoke) sets one. The unit is realized partial mappings
// — the same work unit Stats.Partials counts for the heuristic — so equal
// budgets mean comparable wall time across backends.
const DefaultExactNodeBudget = 200_000

const intMax = int(^uint(0) >> 1)

// ExactBackend is the branch-and-bound mapper: a depth-first search over
// the same binder move set as the heuristic (every feasible placement and
// routing of each node in the canonical list-schedule order), pruned by
// an admissible context-word lower bound and a conflict cache of
// fully-refuted search states, with no stochastic sampling and no beam.
//
// The search is warm-started from the heuristic's mapping, which becomes
// the initial incumbent: the exact backend therefore never returns a
// mapping costlier than the heuristic's (the invariant the differential
// oracle and the optimality golden tests pin). Within the node budget the
// search is exhaustive over its move space; when it completes without
// exhausting the budget, the result is optimal within that space and
// Stats.Exact.Proven is set.
type ExactBackend struct{}

// Name implements Backend.
func (ExactBackend) Name() string { return "exact" }

// Capabilities implements Backend. The exact backend is exhaustive (one
// portfolio job regardless of the seed count), seed-sensitive only
// through its warm start, and anytime: budget exhaustion or cancellation
// returns the best mapping found so far.
func (ExactBackend) Capabilities() Capabilities {
	return Capabilities{Exhaustive: true, SeedSensitive: true, Anytime: true}
}

// resolveExactBudget picks the node budget: explicit option, then the
// CGRA_EXACT_NODE_BUDGET environment knob, then the default.
func resolveExactBudget(opt *Options) int {
	if opt.ExactNodeBudget > 0 {
		return opt.ExactNodeBudget
	}
	if env := os.Getenv("CGRA_EXACT_NODE_BUDGET"); env != "" {
		if v, err := strconv.Atoi(env); err == nil && v > 0 {
			return v
		}
	}
	return DefaultExactNodeBudget
}

// Map implements Backend.
func (ExactBackend) Map(ctx context.Context, g *cdfg.Graph, grid *arch.Grid, opt Options) (*Mapping, error) {
	start := time.Now()
	if ctx != nil {
		opt.ctx = ctx
	}
	opt.sanitize()
	if err := cdfg.Verify(g); err != nil {
		return nil, fmt.Errorf("core: invalid graph: %w", err)
	}
	if err := grid.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid grid: %w", err)
	}
	ar := opt.arena
	if ar == nil {
		ar = getArena()
		defer putArena(ar)
	}
	var sp obs.Span
	if opt.Obs.Enabled() {
		opt.Obs.Counter("core.backend.exact.maps").Inc()
		sp = opt.Obs.StartSpan("core.map.exact", "core", opt.ObsTID)
	}

	// Warm start: the heuristic's mapping is the incumbent the search must
	// strictly beat. Its cost is also the exact backend's worst case.
	warmOpt := opt
	warmOpt.arena = ar
	incumbent, warmErr := Map(g, grid, warmOpt)
	warmWords := intMax
	if incumbent != nil {
		warmWords = incumbent.TotalWords()
	}

	var searchStats Stats
	s := &exactSearch{
		g:         g,
		grid:      grid,
		opt:       &opt,
		ar:        ar,
		order:     cdfg.Traversal(g, opt.Traversal),
		numTiles:  grid.NumTiles(),
		budget:    resolveExactBudget(&opt),
		bestWords: warmWords,
		mst:       &searchStats,
		nogood:    map[uint64]struct{}{},
	}
	s.st.NodeBudget = s.budget
	s.st.WarmWords = -1
	if incumbent != nil {
		s.st.WarmWords = warmWords
	}
	// suffixFloor[i] is an admissible lower bound on the words the blocks
	// at traversal positions >= i must still add: any block scheduling at
	// least one operation ends with schedule length >= 1, which costs
	// every tile at least one word (an instruction or a whole-block pnop).
	s.suffixFloor = make([]int, len(s.order)+1)
	s.blockFloor = make([]int, len(s.order))
	for i := len(s.order) - 1; i >= 0; i-- {
		for _, nd := range g.Blocks[s.order[i]].Nodes {
			if nd.Op != cdfg.OpConst && nd.Op != cdfg.OpSym {
				s.blockFloor[i] = s.numTiles
				break
			}
		}
		s.suffixFloor[i] = s.suffixFloor[i+1] + s.blockFloor[i]
	}

	complete := s.run()
	s.st.Proven = complete && !s.stopped

	// Strict improvement replaces the incumbent; otherwise the warm-start
	// mapping (already dataflow-checked and memory-checked by Map) stands.
	result := incumbent
	resultStats := Stats{}
	if incumbent != nil {
		resultStats = incumbent.Stats
	}
	if s.best != nil {
		result = s.best
		resultStats = searchStats
	}
	if s.st.WarmWords >= 0 || s.best != nil {
		w := s.bestWords
		if s.best == nil {
			w = warmWords
		}
		s.st.BestWords = w
	} else {
		s.st.BestWords = -1
	}
	if opt.Obs.Enabled() {
		recordExactStats(opt.Obs, &s.st)
		sp.End(map[string]any{
			"kernel": g.Name, "grid": grid.Name, "flow": opt.Flow.String(),
			"expanded": s.st.Expanded, "proven": s.st.Proven,
			"warm": s.st.WarmWords, "best": s.st.BestWords,
		})
	}
	if result == nil {
		if cerr := opt.ctxErr(); cerr != nil {
			return nil, fmt.Errorf("core: exact mapping of %q onto %s: %w", g.Name, grid.Name, cerr)
		}
		return nil, fmt.Errorf("core: exact backend found no mapping of %q onto %s (warm start: %w)",
			g.Name, grid.Name, warmErr)
	}
	result.Stats = resultStats
	result.Stats.CompileTime = time.Since(start)
	result.Stats.Exact = s.st
	return result, nil
}

// exactSearch carries one branch-and-bound run. It is single-goroutine
// and borrows the same mapperArena machinery as the heuristic; every
// candidate is realized into a self-contained partial before the search
// recurses, because candidate plans live in arena chunks that die at the
// next bind step.
type exactSearch struct {
	g        *cdfg.Graph
	grid     *arch.Grid
	opt      *Options
	ar       *mapperArena
	order    []cdfg.BBID
	numTiles int

	// suffixFloor/blockFloor: admissible remaining-block word floors, by
	// traversal position (see Map).
	suffixFloor []int
	blockFloor  []int

	budget  int  // node expansions remaining; exhaustion sets stopped
	stopped bool // budget exhausted or ctx cancelled: unwind without recording

	best      *Mapping // strict improvements over the warm start only
	bestWords int      // incumbent cost (warm start until beaten)

	// nogood records fingerprints of fully-explored search states. The
	// incumbent cost only tightens over the run, so a state whose subtree
	// was once exhausted without improving it can never improve it later —
	// revisits are pruned (the conflict-driven half of the pruning). A
	// 64-bit fingerprint collision can at worst suppress a subtree that
	// was not actually explored, costing completeness of the search (the
	// Proven flag), never legality and never the <=-heuristic guarantee,
	// which the warm-start incumbent carries unconditionally.
	nogood map[uint64]struct{}

	st  ExactStats
	mst *Stats // plumbed into bbCtx for the shared binder machinery
}

// run explores every block in traversal order; the return value reports
// whether the whole space was explored (vs cut by budget/ctx).
func (s *exactSearch) run() bool {
	acc := &exactAcc{
		blocks:   make([]*BlockMapping, len(s.g.Blocks)),
		used:     make([]int, s.numTiles),
		consts:   make([][]int32, s.numTiles),
		usedRegs: make([]uint16, s.numTiles),
		symHomes: map[string]SymLoc{},
	}
	if len(s.order) == 0 {
		return true
	}
	return s.searchBlock(0, acc)
}

// exactAcc is the committed cross-block state at one point of the search:
// the mirror of Map's used/consts/usedRegs/SymHomes accumulators, copied
// per branch so sibling subtrees cannot observe each other's commits.
type exactAcc struct {
	blocks   []*BlockMapping // indexed by BBID; nil while unmapped
	used     []int
	consts   [][]int32
	usedRegs []uint16
	symHomes map[string]SymLoc
	words    int    // total context words committed so far
	sig      uint64 // deterministic fingerprint of the committed prefix
}

// searchBlock builds the block's binder context exactly like Map does and
// starts the in-block DFS. Budget and soft slices are freshly allocated —
// unlike the heuristic's single-block-at-a-time loop, the exact search
// holds contexts for several blocks alive at once (the recursion), so the
// arena's shared per-block buffers would alias.
func (s *exactSearch) searchBlock(bi int, acc *exactAcc) bool {
	if s.cutoff() {
		return false
	}
	block := s.g.Blocks[s.order[bi]]
	n := s.numTiles
	reserve := len(s.order) - bi - 1
	cx := &bbCtx{
		grid:     s.grid,
		block:    block,
		opt:      s.opt,
		arena:    s.ar,
		budget:   make([]int, n),
		soft:     make([]int, n),
		sched:    cdfg.Analyze(block),
		users:    cdfg.Users(block),
		symHomes: acc.symHomes,
		cab:      s.opt.Flow >= FlowCAB,
		stats:    s.mst,
		hopsBuf:  make([]arch.TileID, 0, s.grid.Rows+s.grid.Cols+2),
	}
	cx.liveOutValues = map[cdfg.NodeID]bool{}
	for _, id := range block.LiveOut {
		cx.liveOutValues[id] = true
	}
	homesOn := make([]int, n)
	for _, h := range acc.symHomes {
		homesOn[h.Tile] += 2
	}
	for t := range cx.budget {
		if s.opt.Flow.memoryAware() {
			cx.budget[t] = s.grid.Tile(arch.TileID(t)).CMWords - acc.used[t] - reserve
			cx.soft[t] = cx.budget[t] - homesOn[t]
		} else {
			cx.budget[t] = unconstrained
			cx.soft[t] = unconstrained
		}
	}
	// nil arena: the order must survive the whole subtree, not just until
	// the next mapBlock on this arena.
	order := scheduleOrderInto(block, cx.sched, cx.users, nil)
	init := cx.initialPartial(acc.consts, acc.usedRegs)
	complete := s.dfs(cx, bi, acc, order, 0, init)
	s.ar.putPartial(init)
	return complete
}

// cutoff reports whether the search must unwind (ctx cancelled or budget
// exhausted) and latches the condition.
func (s *exactSearch) cutoff() bool {
	if s.stopped {
		return true
	}
	if s.budget <= 0 || s.opt.ctxErr() != nil {
		s.stopped = true
		return true
	}
	return false
}

// boundedOut applies the admissible lower bound: words already committed,
// plus the current partial's interior word count per tile (monotone
// non-decreasing under further bindings — see gapGroups), plus one word
// per tile that is still idle in a block that will have length >= 1, plus
// the remaining blocks' floors. When the bound reaches the incumbent the
// subtree cannot contain a strict improvement.
func (s *exactSearch) boundedOut(bi int, acc *exactAcc, p *partial) bool {
	lb := acc.words + s.suffixFloor[bi+1]
	horizon := p.maxCycle
	idle := horizon > 0 || s.blockFloor[bi] > 0
	for t := range p.tiles {
		w := p.words(arch.TileID(t), horizon, false)
		if w == 0 && idle {
			w = 1
		}
		lb += w
	}
	return lb >= s.bestWords
}

// childFits is the only in-flight memory filter the exact search uses:
// the interior word count against the hard budget. It is monotone (a
// violating child can never finalize within budget), unlike the
// heuristic's headroom/pending-writeback variants, which are calibrated
// to prune eagerly and would cut feasible leaves from an exact search.
func (s *exactSearch) childFits(cx *bbCtx, child *partial) bool {
	if !s.opt.Flow.memoryAware() {
		return true
	}
	for t := range child.tiles {
		if child.words(arch.TileID(t), child.maxCycle, false) > cx.budget[t] {
			return false
		}
	}
	return true
}

// dfs binds order[oi] in every feasible way and recurses. The return
// value reports whether the subtree was fully explored — the condition
// for recording its root as a nogood.
func (s *exactSearch) dfs(cx *bbCtx, bi int, acc *exactAcc, order []cdfg.NodeID, oi int, p *partial) bool {
	if s.cutoff() {
		return false
	}
	if oi == len(order) {
		return s.finishBlock(cx, bi, acc, p)
	}
	if s.boundedOut(bi, acc, p) {
		s.st.BoundPruned++
		return true // provably no improvement below: counts as explored
	}
	key := s.fingerprint(bi, oi, acc, p)
	if _, dup := s.nogood[key]; dup {
		s.st.ConflictPruned++
		return true
	}
	s.st.Expanded++

	n := order[oi]
	// New bind step: plan chunks and the route memo reset together. Every
	// candidate must be realized into a self-contained child before any
	// recursion, which resets the chunks again.
	s.ar.bindReset()
	cands := cx.genCandidates(p, n, s.opt.MaxSlack, false, s.ar.cands[:0])
	if len(cands) == 0 {
		// Last-resort reroute region past the current makespan, exactly
		// like the heuristic's tail escalation.
		cands = cx.genCandidates(p, n, s.opt.MaxSlack, true, cands)
	}
	perm := s.ar.candIdx[:0]
	for i := range cands {
		perm = append(perm, int32(i))
	}
	sort.Sort(candsByCost{cands: cands, idx: perm})

	children := make([]*partial, 0, len(cands))
	for _, ci := range perm {
		if s.budget <= 0 {
			s.stopped = true
			break
		}
		child := cx.apply(&cands[ci], s.mst)
		s.budget--
		s.mst.Partials++
		if !s.childFits(cx, child) {
			s.st.MemPruned++
			s.ar.putPartial(child)
			continue
		}
		children = append(children, child)
	}
	// The candidates (and their chunk-backed plans) are dead: release the
	// shared buffers so deeper dfs levels can reuse them.
	s.ar.cands = cands[:0]
	s.ar.candIdx = perm[:0]

	complete := !s.stopped
	for _, child := range children {
		if !s.stopped && !s.dfs(cx, bi, acc, order, oi+1, child) {
			complete = false
		}
		s.ar.putPartial(child)
	}
	if complete && !s.stopped {
		// Fully explored without improvement potential left: any later
		// visit of the same state faces an equal-or-tighter incumbent.
		s.nogood[key] = struct{}{}
	}
	return complete && !s.stopped
}

// finishBlock finalizes a fully-bound block (symbol writebacks), applies
// the flow's end-of-block memory check exactly as mapBlock does, commits
// the block and recurses into the next one on an extended accumulator.
func (s *exactSearch) finishBlock(cx *bbCtx, bi int, acc *exactAcc, p *partial) bool {
	if s.cutoff() {
		return false
	}
	s.budget--
	s.st.Leaves++
	clone := s.ar.getPartial()
	s.ar.cloneInto(clone, p)
	if err := cx.finalize(clone); err != nil {
		s.ar.putPartial(clone)
		return true // infeasible leaf: explored
	}
	switch {
	case s.opt.Flow >= FlowECMAP && !cx.ecmapOK(clone, false):
		s.ar.putPartial(clone)
		return true
	case s.opt.Flow == FlowACMAP && !cx.acmapOK(clone, false):
		s.ar.putPartial(clone)
		return true
	}
	bm := cx.commit(clone)
	next := acc.extend(s, bi, bm, clone)
	s.ar.putPartial(clone)
	if next == nil {
		s.st.BoundPruned++
		return true
	}
	if bi+1 == len(s.order) {
		return s.recordComplete(next)
	}
	return s.searchBlock(bi+1, next)
}

// extend returns the accumulator for the next block after committing bm,
// or nil when the committed words already reach the incumbent (bound).
func (acc *exactAcc) extend(s *exactSearch, bi int, bm *BlockMapping, win *partial) *exactAcc {
	n := s.numTiles
	next := &exactAcc{
		blocks:   append([]*BlockMapping(nil), acc.blocks...),
		used:     append([]int(nil), acc.used...),
		consts:   make([][]int32, n),
		usedRegs: append([]uint16(nil), acc.usedRegs...),
		symHomes: make(map[string]SymLoc, len(acc.symHomes)+len(win.newHomes)),
		words:    acc.words,
	}
	next.blocks[s.order[bi]] = bm
	for t := 0; t < n; t++ {
		w := bm.Words(arch.TileID(t))
		next.used[t] += w
		next.words += w
		next.consts[t] = append([]int32(nil), win.tiles[t].Consts...)
		next.usedRegs[t] |= win.tiles[t].EverUsed
	}
	for k, v := range acc.symHomes {
		next.symHomes[k] = v
	}
	for k, v := range win.newHomes {
		next.symHomes[k] = v
	}
	if next.words+s.suffixFloor[bi+1] >= s.bestWords {
		return nil
	}
	next.sig = next.fingerprintAcc()
	return next
}

// recordComplete runs the same whole-program post-conditions as Map on a
// complete candidate mapping and installs it as the incumbent when it is
// a strict improvement. Leaves the checks reject are skipped, keeping the
// backend's output verifier-clean by construction.
func (s *exactSearch) recordComplete(acc *exactAcc) bool {
	m := &Mapping{
		Graph:    s.g,
		Grid:     s.grid,
		Flow:     s.opt.Flow,
		Blocks:   append([]*BlockMapping(nil), acc.blocks...),
		SymHomes: make(map[string]SymLoc, len(acc.symHomes)),
	}
	for k, v := range acc.symHomes {
		m.SymHomes[k] = v
	}
	if s.opt.Flow.memoryAware() {
		if ok, _ := m.FitsMemory(); !ok {
			return true
		}
	}
	if dataflowCheck != nil {
		if err := dataflowCheck(m); err != nil {
			// A nonzero count means the committing machinery accepted a
			// schedule the symbolic checker refutes — worth surfacing in
			// the stats, but never worth returning.
			s.st.DataflowRejected++
			return true
		}
	}
	if acc.words < s.bestWords {
		s.best, s.bestWords = m, acc.words
		s.st.Improved++
	}
	return true
}

// fnv1a is a tiny deterministic accumulator for search-state
// fingerprints. hash/maphash would be faster but is seeded per process,
// and the nogood cache must behave identically across runs for the
// backend's output to be reproducible.
type fnv1a uint64

const fnvOffset fnv1a = 14695981039346656037
const fnvPrime uint64 = 1099511628211

func (h *fnv1a) u64(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= v & 0xff
		x *= fnvPrime
		v >>= 8
	}
	*h = fnv1a(x)
}

func (h *fnv1a) i(v int)    { h.u64(uint64(int64(v))) }
func (h *fnv1a) b(v bool)   { if v { h.u64(1) } else { h.u64(0) } }
func (h *fnv1a) str(s string) {
	x := uint64(*h)
	for i := 0; i < len(s); i++ {
		x ^= uint64(s[i])
		x *= fnvPrime
	}
	*h = fnv1a(x)
}

// fingerprintAcc hashes the committed cross-block state. Symbol homes are
// walked in sorted order: map iteration order must never leak into the
// fingerprint, or the nogood cache (and with it the search under a
// budget) would differ between runs.
func (acc *exactAcc) fingerprintAcc() uint64 {
	h := fnvOffset
	h.i(acc.words)
	for _, u := range acc.used {
		h.i(u)
	}
	for _, r := range acc.usedRegs {
		h.u64(uint64(r))
	}
	for _, cs := range acc.consts {
		h.i(len(cs))
		for _, c := range cs {
			h.u64(uint64(uint32(c)))
		}
	}
	syms := make([]string, 0, len(acc.symHomes))
	for s := range acc.symHomes {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	for _, s := range syms {
		loc := acc.symHomes[s]
		h.str(s)
		h.i(int(loc.Tile))
		h.i(int(loc.Reg))
	}
	return uint64(h)
}

// fingerprint hashes the full semantic state of one search node: the
// committed prefix, the position, and everything in the partial a future
// binding decision can observe (schedule slots, value locations, register
// hazards, holds, constants, freshly pinned homes).
func (s *exactSearch) fingerprint(bi, oi int, acc *exactAcc, p *partial) uint64 {
	h := fnv1a(acc.sig)
	if h == 0 {
		h = fnvOffset
	}
	h.i(bi)
	h.i(oi)
	h.i(p.maxCycle)
	h.i(p.moves)
	for t := range p.tiles {
		ts := &p.tiles[t]
		h.i(t)
		h.u64(uint64(ts.RegMask))
		h.u64(uint64(ts.EverUsed))
		h.i(ts.Ops)
		h.i(ts.Moves)
		for c := range ts.Slots {
			sl := &ts.Slots[c]
			if sl.Kind == SlotEmpty {
				continue
			}
			h.i(c)
			h.i(int(sl.Kind))
			h.i(int(sl.Node))
			h.i(sl.NSrc)
			h.b(sl.WB)
			h.i(int(sl.WReg))
			h.b(sl.Dup)
			for i := 0; i < sl.NSrc; i++ {
				src := sl.Srcs[i]
				h.i(int(src.Kind))
				h.i(int(src.Dir))
				h.i(int(src.Reg))
				h.u64(uint64(uint32(src.Val)))
			}
		}
		for _, hd := range ts.Holds {
			h.i(hd.Prod)
			h.i(hd.Last)
		}
		h.i(len(ts.Consts))
		for _, c := range ts.Consts {
			h.u64(uint64(uint32(c)))
		}
	}
	for n := range p.locs {
		ls := p.locs[n]
		if len(ls) == 0 {
			continue
		}
		h.i(n)
		h.i(len(ls))
		for _, l := range ls {
			h.i(int(l.Tile))
			h.i(l.Cycle)
			h.i(int(l.Reg))
		}
	}
	for _, v := range p.regLastRead {
		h.i(int(v))
	}
	for _, v := range p.regLastWrite {
		h.i(int(v))
	}
	for _, v := range p.regWriteCycle {
		h.i(int(v))
	}
	if len(p.newHomes) > 0 {
		syms := make([]string, 0, len(p.newHomes))
		for sym := range p.newHomes {
			syms = append(syms, sym)
		}
		sort.Strings(syms)
		for _, sym := range syms {
			loc := p.newHomes[sym]
			h.str(sym)
			h.i(int(loc.Tile))
			h.i(int(loc.Reg))
		}
	}
	return uint64(h)
}
