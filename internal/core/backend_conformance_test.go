package core_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/verify"
)

// conformanceBudget keeps the exact backend's search cheap and — being
// explicit — independent of any CGRA_EXACT_NODE_BUDGET in the
// environment, so determinism checks compare like with like.
const conformanceBudget = 2000

func conformanceOptions(flow core.Flow) core.Options {
	opt := core.DefaultOptions(flow)
	opt.ExactNodeBudget = conformanceBudget
	return opt
}

// backendImage maps the kernel and returns the assembled bitstream image
// — the byte-exact observable the determinism checks compare.
func backendImage(t *testing.T, b core.Backend, g *cdfg.Graph, grid *arch.Grid, opt core.Options) []byte {
	t.Helper()
	m, err := b.Map(context.Background(), g, grid, opt)
	if err != nil {
		t.Fatalf("%s: map: %v", b.Name(), err)
	}
	prog, err := asm.Assemble(m)
	if err != nil {
		t.Fatalf("%s: assemble: %v", b.Name(), err)
	}
	img, err := asm.SaveImage(prog)
	if err != nil {
		t.Fatalf("%s: image: %v", b.Name(), err)
	}
	return img
}

func TestBackendRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, b := range core.Backends() {
		if b.Name() == "" {
			t.Fatalf("backend %T has an empty name", b)
		}
		if names[b.Name()] {
			t.Fatalf("duplicate backend name %q", b.Name())
		}
		names[b.Name()] = true
		got, err := core.BackendByName(b.Name())
		if err != nil || got.Name() != b.Name() {
			t.Fatalf("BackendByName(%q) = %v, %v", b.Name(), got, err)
		}
	}
	if !names["heuristic"] || !names["exact"] {
		t.Fatalf("registry %v misses a required backend", core.BackendNames())
	}
	if core.DefaultBackend().Name() != "heuristic" {
		t.Fatalf("default backend is %q, want heuristic", core.DefaultBackend().Name())
	}
	if _, err := core.BackendByName("wat"); err == nil {
		t.Fatal("BackendByName(wat) succeeded")
	}
	if (core.HeuristicBackend{}).Capabilities().Exhaustive {
		t.Fatal("the heuristic must not claim exhaustiveness")
	}
	caps := (core.ExactBackend{}).Capabilities()
	if !caps.Exhaustive || !caps.Anytime {
		t.Fatalf("exact capabilities %+v: want Exhaustive and Anytime", caps)
	}
}

// TestBackendConformance is the shared suite every backend must pass:
// verifier-clean output, run-to-run and arena-reuse determinism
// (including with instrumentation attached), and prompt failure on a
// cancelled context. A future backend added to core.Backends() gets this
// coverage for free.
func TestBackendConformance(t *testing.T) {
	kernelNames := []string{"FIR", "DCFilter"}
	flows := []core.Flow{core.FlowBasic, core.FlowCAB}
	configs := []arch.ConfigName{arch.HOM64, arch.HET1}
	if testing.Short() {
		kernelNames = kernelNames[:1]
		configs = configs[:1]
	}
	for _, b := range core.Backends() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			for _, kn := range kernelNames {
				k, err := kernels.ByName(kn)
				if err != nil {
					t.Fatal(err)
				}
				for _, flow := range flows {
					for _, cfg := range configs {
						name := fmt.Sprintf("%s/%s/%s", k.Name, flow, cfg)
						grid := arch.MustGrid(cfg)
						opt := conformanceOptions(flow)

						m, err := b.Map(context.Background(), k.Build(), grid, opt)
						if err != nil {
							t.Fatalf("%s: map: %v", name, err)
						}
						if flow >= core.FlowACMAP { // memory-aware flows must fit
							if ok, tile := m.FitsMemory(); !ok {
								t.Fatalf("%s: memory-aware mapping overflows tile %d", name, tile+1)
							}
						}
						prog, err := asm.Assemble(m)
						if err != nil {
							t.Fatalf("%s: assemble: %v", name, err)
						}
						if vres := verify.Run(&verify.Context{Graph: m.Graph, Mapping: m, Program: prog}); !vres.OK() {
							t.Fatalf("%s: static verification: %v", name, vres.Err())
						}

						base := backendImage(t, b, k.Build(), grid, opt)
						if again := backendImage(t, b, k.Build(), grid, opt); !bytes.Equal(base, again) {
							t.Fatalf("%s: two identical runs produced different bitstreams", name)
						}
						obsOpt := opt
						obsOpt.Obs = obs.NewRecorder(obs.NewRegistry(), nil)
						if inst := backendImage(t, b, k.Build(), grid, obsOpt); !bytes.Equal(base, inst) {
							t.Fatalf("%s: instrumentation changed the bitstream", name)
						}
						ar := core.NewArena()
						for i := 0; i < 2; i++ {
							if got := backendImage(t, b, k.Build(), grid, opt.WithArena(ar)); !bytes.Equal(base, got) {
								t.Fatalf("%s: arena-reuse run %d diverged from the pooled-arena bitstream", name, i)
							}
						}
					}
				}
			}
		})
	}
}

// TestBackendCancellation pins the ctx contract: a backend must fail
// promptly on a pre-cancelled context instead of mapping.
func TestBackendCancellation(t *testing.T) {
	k, err := kernels.ByName("FIR")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, b := range core.Backends() {
		m, err := b.Map(ctx, k.Build(), arch.MustGrid(arch.HOM64), conformanceOptions(core.FlowCAB))
		if err == nil {
			t.Errorf("%s: mapped %d blocks under a cancelled ctx", b.Name(), len(m.Blocks))
		}
	}
}
