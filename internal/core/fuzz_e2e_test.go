package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/sim"
)

// randomProgram mirrors the generator in fuzz_test.go (package-internal)
// for the external end-to-end fuzz: random loop programs with carried
// symbols, loads, stores and a random arithmetic body.
func randomProgram(rng *rand.Rand) (*cdfg.Graph, cdfg.Memory) {
	const inN, outN = 16, 16
	trip := int32(2 + rng.Intn(5))
	bodyOps := 3 + rng.Intn(10)
	nSyms := 1 + rng.Intn(3)

	b := cdfg.NewBuilder(fmt.Sprintf("e2e%d", rng.Int31()))
	e := b.Block("entry")
	e.SetSym("i", e.Const(0))
	for s := 0; s < nSyms; s++ {
		e.SetSym(fmt.Sprintf("v%d", s), e.Const(rng.Int31n(50)-25))
	}
	e.Jump("loop")

	l := b.Block("loop")
	i := l.Sym("i")
	pool := []cdfg.Value{i, l.Const(rng.Int31n(20) + 1)}
	for s := 0; s < nSyms; s++ {
		pool = append(pool, l.Sym(fmt.Sprintf("v%d", s)))
	}
	for k := 0; k < 1+rng.Intn(2); k++ {
		off := rng.Int31n(inN - trip)
		pool = append(pool, l.Load(l.AddC(i, off)))
	}
	binops := []cdfg.Opcode{
		cdfg.OpAdd, cdfg.OpSub, cdfg.OpMul, cdfg.OpAnd, cdfg.OpOr,
		cdfg.OpXor, cdfg.OpMin, cdfg.OpMax, cdfg.OpGt, cdfg.OpEq,
	}
	for k := 0; k < bodyOps; k++ {
		op := binops[rng.Intn(len(binops))]
		pool = append(pool, l.OpN(op, pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]))
	}
	l.Store(l.AddC(i, inN), pool[len(pool)-1])
	for s := 0; s < nSyms; s++ {
		if rng.Intn(2) == 0 {
			l.SetSym(fmt.Sprintf("v%d", s), pool[rng.Intn(len(pool))])
		}
	}
	i2 := l.AddC(i, 1)
	l.SetSym("i", i2)
	l.BranchIf(l.Lt(i2, l.Const(trip)), "loop", "exit")
	x := b.Block("exit")
	x.Store(x.Const(inN+outN-1), x.Sym("i"))
	g := b.Finish()

	mem := make(cdfg.Memory, inN+outN)
	for k := range mem[:inN] {
		mem[k] = rng.Int31n(200) - 100
	}
	return g, mem
}

// FuzzEndToEnd is the native-fuzzing entry to the end-to-end harness
// below: map, assemble, simulate, and compare the final data memory with
// the reference interpreter bit for bit. The checked-in corpus under
// testdata/fuzz/FuzzEndToEnd holds seeds whose programs are known to map
// and verify on each flow, so short CI runs replay full
// map→assemble→simulate→verify chains. Run with
//
//	go test -fuzz=FuzzEndToEnd ./internal/core
//
// to explore beyond the corpus.
func FuzzEndToEnd(f *testing.F) {
	f.Fuzz(func(t *testing.T, seed, flowIdx, cfgIdx int64) {
		flows := core.Flows()
		cfgs := arch.ConfigNames()
		flow := flows[int(((flowIdx%int64(len(flows)))+int64(len(flows)))%int64(len(flows)))]
		cfg := cfgs[int(((cfgIdx%int64(len(cfgs)))+int64(len(cfgs)))%int64(len(cfgs)))]
		g, mem := randomProgram(rand.New(rand.NewSource(seed)))
		opt := core.DefaultOptions(flow)
		opt.Seed = seed
		m, err := core.Map(g, arch.MustGrid(cfg), opt)
		if err != nil {
			return // clean mapping failures are acceptable
		}
		if ok, _ := m.FitsMemory(); !ok {
			if flow != core.FlowBasic {
				t.Fatalf("%s/%s seed %d: aware flow returned an overflowing mapping", flow, cfg, seed)
			}
			return // the basic flow may overflow small configs; cannot run
		}
		prog, err := asm.Assemble(m)
		if err != nil {
			t.Fatalf("%s/%s seed %d: assemble: %v\n%s", flow, cfg, seed, err, g)
		}
		s, err := sim.New(prog)
		if err != nil {
			t.Fatalf("%s/%s seed %d: sim.New: %v", flow, cfg, seed, err)
		}
		if _, _, _, err := s.RunVerified(mem); err != nil {
			t.Fatalf("%s/%s seed %d: %v\n%s", flow, cfg, seed, err, g)
		}
	})
}

// TestFuzzEndToEnd is the strongest correctness harness in the repository:
// random programs are mapped, assembled, simulated cycle-accurately, and
// their final data memory must match the reference interpreter bit for
// bit. Any divergence in the mapper's routing, the assembler's encoding,
// or the simulator's semantics fails here.
func TestFuzzEndToEnd(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 8
	}
	rng := rand.New(rand.NewSource(271828))
	flows := core.Flows()
	cfgs := arch.ConfigNames()
	verified := 0
	for trial := 0; trial < trials; trial++ {
		g, mem := randomProgram(rng)
		flow := flows[rng.Intn(len(flows))]
		cfg := cfgs[rng.Intn(len(cfgs))]
		opt := core.DefaultOptions(flow)
		opt.Seed = int64(1000 + trial)
		m, err := core.Map(g, arch.MustGrid(cfg), opt)
		if err != nil {
			continue // clean mapping failures are acceptable
		}
		if ok, _ := m.FitsMemory(); !ok {
			if flow != core.FlowBasic {
				t.Fatalf("trial %d: aware flow returned an overflowing mapping", trial)
			}
			continue // the basic flow may overflow small configs; cannot run
		}
		prog, err := asm.Assemble(m)
		if err != nil {
			t.Fatalf("trial %d (%s/%s): assemble: %v\n%s", trial, flow, cfg, err, g)
		}
		s, err := sim.New(prog)
		if err != nil {
			t.Fatalf("trial %d (%s/%s): sim.New: %v", trial, flow, cfg, err)
		}
		if _, _, _, err := s.RunVerified(mem); err != nil {
			t.Fatalf("trial %d (%s/%s): %v\n%s", trial, flow, cfg, err, g)
		}
		verified++
	}
	if verified < trials/3 {
		t.Fatalf("only %d/%d trials verified", verified, trials)
	}
	t.Logf("fuzz e2e: %d/%d verified", verified, trials)
}
