package core

import "fmt"

// The symbolic dataflow engine lives in internal/verify (the "dataflow"
// pass of the static mapping verifier), which imports this package for
// the Mapping types — so core reaches it through a registered hook
// instead of an import. internal/verify installs the hook from its
// init, meaning any binary that links the verifier (the cmds, the
// oracle, the tests) gets the dataflow post-condition automatically.
var dataflowCheck func(*Mapping) error

// RegisterDataflowCheck installs the dataflow verifier implementation.
// It is called from internal/verify's init; later registrations replace
// earlier ones.
func RegisterDataflowCheck(f func(*Mapping) error) { dataflowCheck = f }

// CheckDataflow symbolically executes every block schedule of the mapping
// and verifies that each instruction's operand sources actually deliver
// the values the CDFG prescribes: neighbor reads see the producer's value
// still live on the output register, register reads see the right
// register content, symbol homes hold their entry values until the
// writeback, and every live-out symbol ends in its home register.
//
// It is a thin compatibility wrapper over internal/verify's dataflow
// pass and requires that package to be linked (any import, including a
// blank one, suffices).
func CheckDataflow(m *Mapping) error {
	if dataflowCheck == nil {
		return fmt.Errorf("core: dataflow checker not linked; import repro/internal/verify to install it")
	}
	return dataflowCheck(m)
}
