package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cdfg"
	"repro/internal/isa"
)

// valID identifies the value an architectural location holds during the
// symbolic dataflow check: a node's result, a symbol's block-entry value,
// or a literal constant.
type valID struct {
	kind byte // 'n' node, 's' symbol, 'c' const, 0 unknown
	node cdfg.NodeID
	sym  string
	c    int32
}

func (v valID) String() string {
	switch v.kind {
	case 'n':
		return fmt.Sprintf("n%d", v.node)
	case 's':
		return "sym:" + v.sym
	case 'c':
		return fmt.Sprintf("#%d", v.c)
	}
	return "?"
}

// CheckDataflow symbolically executes every block schedule of the mapping
// and verifies that each instruction's operand sources actually deliver
// the values the CDFG prescribes: neighbor reads see the producer's value
// still live on the output register, register reads see the right
// register content, symbol homes hold their entry values until the
// writeback, and every live-out symbol ends in its home register. It is
// the mapper's strongest internal consistency check, independent of the
// simulator.
func CheckDataflow(m *Mapping) error {
	for _, bm := range m.Blocks {
		if err := checkBlockDataflow(m, bm); err != nil {
			return fmt.Errorf("core: block %q: %w", m.Graph.Blocks[bm.BB].Name, err)
		}
	}
	return nil
}

func checkBlockDataflow(m *Mapping, bm *BlockMapping) error {
	b := m.Graph.Blocks[bm.BB]
	n := m.Grid.NumTiles()
	rrf := m.Grid.RRFSize

	// expected value of a node used as an operand.
	expect := func(id cdfg.NodeID) valID {
		nd := b.Nodes[id]
		switch nd.Op {
		case cdfg.OpConst:
			return valID{kind: 'c', c: nd.Val}
		case cdfg.OpSym:
			return valID{kind: 's', sym: nd.Sym}
		default:
			return valID{kind: 'n', node: id}
		}
	}

	out := make([]valID, n)
	rf := make([][]valID, n)
	for t := range rf {
		rf[t] = make([]valID, rrf)
	}
	// Symbol homes hold their entry values at block start.
	homeOf := map[string]SymLoc{}
	for s, h := range m.SymHomes {
		rf[h.Tile][h.Reg] = valID{kind: 's', sym: s}
		homeOf[s] = h
	}

	resolve := func(t int, src isa.Src, prevOut []valID) (valID, error) {
		switch src.Kind {
		case isa.SrcConst:
			return valID{kind: 'c', c: src.Val}, nil
		case isa.SrcReg:
			return rf[t][src.Reg], nil
		case isa.SrcSelf:
			return prevOut[t], nil
		case isa.SrcNbr:
			nb := m.Grid.Neighbors(arch.TileID(t))[src.Dir]
			return prevOut[nb], nil
		}
		return valID{}, fmt.Errorf("tile %d: unresolvable source %v", t+1, src)
	}

	for c := 0; c < bm.Len; c++ {
		prevOut := append([]valID(nil), out...)
		for t := 0; t < n; t++ {
			s := bm.Tiles[t][c]
			if s.Kind == SlotEmpty {
				continue
			}
			var want []valID
			switch s.Kind {
			case SlotOp:
				nd := b.Nodes[s.Node]
				want = make([]valID, len(nd.Args))
				for i, a := range nd.Args {
					want[i] = expect(a)
				}
			case SlotMove:
				want = []valID{expect(s.Node)}
			}
			for i := 0; i < s.NSrc; i++ {
				got, err := resolve(t, s.Srcs[i], prevOut)
				if err != nil {
					return err
				}
				if got != want[i] {
					return fmt.Errorf("cycle %d tile %d %v: operand %d reads %v via %v, want %v",
						c, t+1, s, i, got, s.Srcs[i], want[i])
				}
			}
			// Commit the result.
			var res valID
			produce := false
			switch s.Kind {
			case SlotOp:
				if b.Nodes[s.Node].Op.HasResult() {
					res = valID{kind: 'n', node: s.Node}
					produce = true
				}
			case SlotMove:
				res = expect(s.Node)
				produce = true
			}
			if produce {
				out[t] = res
				if s.WB {
					rf[t][s.WReg] = res
				}
			} else if s.WB {
				return fmt.Errorf("cycle %d tile %d: writeback on value-less %v", c, t+1, s)
			}
		}
	}

	// Every live-out symbol must end in its home register, and every home
	// the block does not write must be preserved — a temp clobbering a
	// home register pinned by another block corrupts the symbol at
	// runtime.
	for _, s := range b.LiveOutSyms() {
		if _, ok := m.SymHomes[s]; !ok {
			return fmt.Errorf("live-out symbol %q has no home", s)
		}
	}
	for s, h := range homeOf {
		got := rf[h.Tile][h.Reg]
		var want valID
		if def, ok := b.LiveOut[s]; ok {
			want = expect(def)
		} else {
			want = valID{kind: 's', sym: s}
		}
		if got != want {
			return fmt.Errorf("symbol %q home (tile %d, r%d) holds %v at block end, want %v",
				s, h.Tile+1, h.Reg, got, want)
		}
	}
	return nil
}
