package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/arch"
	"repro/internal/cdfg"
	"repro/internal/obs"
)

// unconstrained is the per-tile budget used by the basic flow, which
// ignores context-memory sizes entirely.
const unconstrained = 1 << 30

// Map maps the CDFG onto the CGRA configuration under the given options.
// It returns an error when the flow cannot find a mapping satisfying its
// constraints — the "no mapping solution" outcomes of the paper's Figs
// 6–8.
func Map(g *cdfg.Graph, grid *arch.Grid, opt Options) (*Mapping, error) {
	start := time.Now()
	opt.sanitize()
	if err := cdfg.Verify(g); err != nil {
		return nil, fmt.Errorf("core: invalid graph: %w", err)
	}
	if err := grid.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid grid: %w", err)
	}

	// The arena owns every reusable scratch buffer of the search. Callers
	// can thread their own (Options.WithArena, MapPortfolio workers);
	// otherwise one is borrowed from the pool for the duration of the call.
	ar := opt.arena
	if ar == nil {
		ar = getArena()
		defer putArena(ar)
	}

	m := &Mapping{
		Graph:    g,
		Grid:     grid,
		Flow:     opt.Flow,
		Blocks:   make([]*BlockMapping, len(g.Blocks)),
		SymHomes: map[string]SymLoc{},
	}
	if opt.Obs.Enabled() {
		sp := opt.Obs.StartSpan("core.map", "core", opt.ObsTID)
		defer func() {
			sp.End(map[string]any{"kernel": g.Name, "grid": grid.Name, "flow": opt.Flow.String()})
			recordMapStats(opt.Obs, &m.Stats, ar)
		}()
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	n := grid.NumTiles()
	used := intsBuf(ar.used, n)
	ar.used = used
	if cap(ar.consts) < n {
		ar.consts = make([][]int32, n)
	}
	consts := ar.consts[:n]
	for t := range consts {
		consts[t] = consts[t][:0]
	}
	// usedRegs accumulates every register any committed block touched:
	// symbol homes pinned later must avoid them, since an earlier block's
	// temp writeback executing between the symbol's definition and use
	// would clobber the home.
	if cap(ar.usedRegs) < n {
		ar.usedRegs = make([]uint16, n)
	}
	usedRegs := ar.usedRegs[:n]
	for i := range usedRegs {
		usedRegs[i] = 0
	}

	order := cdfg.Traversal(g, opt.Traversal)
	// floorSuffix[i] is the admissible word floor of the blocks still
	// unmapped when block order[i] starts (see WordLowerBound). Only
	// portfolio jobs carry an incumbent and pay for this.
	var floorSuffix []int
	if opt.incumbent != nil {
		floorSuffix = make([]int, len(order)+1)
		for i := len(order) - 1; i >= 0; i-- {
			floorSuffix[i] = floorSuffix[i+1] + blockWordFloor(g.Blocks[order[i]], n)
		}
	}
	for oi, bbid := range order {
		if err := opt.ctxErr(); err != nil {
			m.Stats.CompileTime = time.Since(start)
			return nil, fmt.Errorf("core: mapping %q onto %s: %w", g.Name, grid.Name, err)
		}
		// Incumbent abort: once the words already committed plus the floor
		// of everything left provably cannot beat the portfolio's best
		// completed mapping, the rest of the search is wasted work. Checked
		// only between blocks (oi > 0: the portfolio already screened the
		// whole-graph bound before starting the job), and never after the
		// final block, so a mapping that runs to completion always reports
		// its real score.
		if opt.incumbent != nil && oi > 0 {
			committed := 0
			for _, w := range used {
				committed += w
			}
			if v, ok := opt.incumbent.prune(committed+floorSuffix[oi], opt.Seed, opt.incJob); ok {
				opt.Obs.Counter("core.map.incumbent_aborts").Inc()
				m.Stats.CompileTime = time.Since(start)
				return nil, fmt.Errorf("core: mapping %q onto %s: %w: committed %d + floor %d words vs incumbent %d",
					g.Name, grid.Name, ErrPrunedByIncumbent, committed, floorSuffix[oi], v)
			}
		}
		block := g.Blocks[bbid]
		// Every still-unmapped block will occupy at least one word (a
		// pnop) on every tile; the memory-aware flows reserve that floor
		// so early blocks cannot consume the entire context memory.
		reserve := len(order) - oi - 1
		cx := &bbCtx{
			grid:     grid,
			block:    block,
			opt:      &opt,
			arena:    ar,
			budget:   intsBuf(ar.budget, n),
			sched:    cdfg.Analyze(block),
			users:    cdfg.Users(block),
			symHomes: m.SymHomes,
			cab:      opt.Flow >= FlowCAB,
			stats:    &m.Stats,
			// Longest route a chain can take is bounded by the two-leg
			// corner path, so hops never outgrow this and planChain can
			// skip the capacity write-back.
			hopsBuf: make([]arch.TileID, 0, grid.Rows+grid.Cols+2),
		}
		ar.budget = cx.budget
		cx.liveOutValues = map[cdfg.NodeID]bool{}
		for _, id := range block.LiveOut {
			cx.liveOutValues[id] = true
		}
		// Tiles hosting symbol homes receive writeback and read-out moves
		// in later blocks; the soft budget (used for placement pressure
		// and home-pinning eligibility, not for the hard pruning filters)
		// additionally reserves two words per home.
		homesOn := intsBuf(ar.homesOn, n)
		ar.homesOn = homesOn
		for _, h := range m.SymHomes {
			homesOn[h.Tile] += 2
		}
		cx.soft = intsBuf(ar.soft, n)
		ar.soft = cx.soft
		for t := range cx.budget {
			if opt.Flow.memoryAware() {
				cx.budget[t] = grid.Tile(arch.TileID(t)).CMWords - used[t] - reserve
				cx.soft[t] = cx.budget[t] - homesOn[t]
			} else {
				cx.budget[t] = unconstrained
				cx.soft[t] = unconstrained
			}
		}

		// The exact flows retry a cornered block with a wider beam and
		// deeper candidate list: the stochastic pruning then explores a
		// different region of the space. This is part of the extra
		// compilation time the memory-aware flow pays (the paper's Fig 9).
		attempts := 2
		switch {
		case opt.Flow == FlowECMAP:
			attempts = 4
		case opt.Flow == FlowCAB:
			attempts = 6
		}
		var blockSpan obs.Span
		if opt.Obs.Enabled() {
			blockSpan = opt.Obs.StartSpan("core.map.block", "core", opt.ObsTID)
		}
		var done []*partial
		var err error
		for a := 0; a < attempts; a++ {
			if cerr := opt.ctxErr(); cerr != nil {
				err = cerr
				break
			}
			attemptOpt := opt
			grow := a
			if grow > 2 {
				grow = 2
			}
			attemptOpt.BeamWidth = opt.BeamWidth << grow
			attemptOpt.CandidateCap = opt.CandidateCap << grow
			attemptOpt.Seed = opt.Seed + int64(a)*7919
			cx.opt = &attemptOpt
			if a > 0 {
				rng = rand.New(rand.NewSource(attemptOpt.Seed))
			}
			init := cx.initialPartial(consts, usedRegs)
			done, err = cx.mapBlock(init, rng, &m.Stats)
			if err == nil {
				break
			}
			m.Stats.Retries++
		}
		if opt.Obs.Enabled() {
			blockSpan.End(map[string]any{"block": block.Name, "ok": err == nil})
		}
		if err != nil {
			m.Stats.CompileTime = time.Since(start)
			return nil, fmt.Errorf("core: mapping %q onto %s: %w", g.Name, grid.Name, err)
		}
		win := selectBest(done)
		m.Blocks[bbid] = cx.commit(win)
		for t := range used {
			used[t] += m.Blocks[bbid].Words(arch.TileID(t))
			consts[t] = append(consts[t][:0], win.tiles[t].Consts...)
			usedRegs[t] |= win.tiles[t].EverUsed
		}
		for s, h := range win.newHomes {
			m.SymHomes[s] = h
		}
		// Everything the winner contributes is copied out above; the
		// finalized partials can be recycled for the next block.
		for _, p := range done {
			ar.putPartial(p)
		}
	}
	m.Stats.CompileTime = time.Since(start)
	if opt.Flow.memoryAware() {
		if ok, t := m.FitsMemory(); !ok {
			return nil, fmt.Errorf("core: mapping of %q overflows context memory of tile %d on %s",
				g.Name, t+1, grid.Name)
		}
	}
	// The symbolic dataflow check is a hard post-condition: a mapping that
	// fails it would compute wrong values on the array. It runs whenever
	// internal/verify is linked (see RegisterDataflowCheck); sim.RunVerified
	// remains the dynamic backstop in binaries that omit the verifier.
	if dataflowCheck != nil {
		if err := dataflowCheck(m); err != nil {
			return nil, fmt.Errorf("core: mapping of %q is not dataflow-consistent: %w", g.Name, err)
		}
	}
	return m, nil
}

// initialPartial builds the block's starting state: symbol homes pinned in
// earlier blocks occupy their registers and provide initial locations for
// this block's symbol reads; each tile's constant pool continues from the
// committed blocks.
func (cx *bbCtx) initialPartial(consts [][]int32, usedRegs []uint16) *partial {
	ar := cx.arena
	p := ar.getPartial()
	ar.resetPartial(p, cx.grid.NumTiles(), len(cx.block.Nodes), cx.grid.RRFSize)
	for t := range p.tiles {
		ts := &p.tiles[t]
		ts.Consts = append(ts.Consts[:0], consts[t]...)
		ts.EverUsed = usedRegs[t]
		ts.GlobalUsed = usedRegs[t]
	}
	for _, h := range cx.symHomes {
		p.tiles[h.Tile].RegMask |= 1 << h.Reg
		p.tiles[h.Tile].EverUsed |= 1 << h.Reg
	}
	for _, nd := range cx.block.Nodes {
		if nd.Op != cdfg.OpSym {
			continue
		}
		if h, ok := cx.symHomes[nd.Sym]; ok {
			p.locs[nd.ID] = append(p.locs[nd.ID], loc{Tile: h.Tile, Cycle: symHomeCycle, Reg: int8(h.Reg)})
		}
	}
	return p
}
