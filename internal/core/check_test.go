package core

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/isa"
)

// mapped returns a fresh valid mapping for mutation tests.
func mapped(t *testing.T) *Mapping {
	t.Helper()
	m, err := Map(smallLoop(8), arch.MustGrid(arch.HOM64), DefaultOptions(FlowBasic))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// firstSlot finds a slot of the given kind and returns its coordinates.
func firstSlot(m *Mapping, kind SlotKind, withSrc isa.SrcKind) (bb, tile, cyc int, ok bool) {
	for bi, bm := range m.Blocks {
		for ti, row := range bm.Tiles {
			for ci, s := range row {
				if s.Kind != kind {
					continue
				}
				if withSrc != isa.SrcNone {
					match := false
					for i := 0; i < s.NSrc; i++ {
						if s.Srcs[i].Kind == withSrc {
							match = true
						}
					}
					if !match {
						continue
					}
				}
				return bi, ti, ci, true
			}
		}
	}
	return 0, 0, 0, false
}

func TestCheckDataflowDetectsCorruption(t *testing.T) {
	t.Run("clean passes", func(t *testing.T) {
		if err := CheckDataflow(mapped(t)); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("register operand corrupted", func(t *testing.T) {
		m := mapped(t)
		bb, ti, ci, ok := firstSlot(m, SlotOp, isa.SrcReg)
		if !ok {
			t.Skip("no register operand in this mapping")
		}
		s := &m.Blocks[bb].Tiles[ti][ci]
		for i := 0; i < s.NSrc; i++ {
			if s.Srcs[i].Kind == isa.SrcReg {
				s.Srcs[i].Reg ^= 7
			}
		}
		if err := CheckDataflow(m); err == nil {
			t.Fatal("corrupted register operand not detected")
		}
	})
	t.Run("neighbor direction corrupted", func(t *testing.T) {
		m := mapped(t)
		bb, ti, ci, ok := firstSlot(m, SlotOp, isa.SrcNbr)
		if !ok {
			t.Skip("no neighbor operand in this mapping")
		}
		s := &m.Blocks[bb].Tiles[ti][ci]
		for i := 0; i < s.NSrc; i++ {
			if s.Srcs[i].Kind == isa.SrcNbr {
				s.Srcs[i].Dir = (s.Srcs[i].Dir + 1) % 4
			}
		}
		if err := CheckDataflow(m); err == nil {
			t.Fatal("corrupted neighbor direction not detected")
		}
	})
	t.Run("clobbered home register", func(t *testing.T) {
		m := mapped(t)
		// Make some producing slot write into a symbol home register.
		var home SymLoc
		for _, h := range m.SymHomes {
			home = h
			break
		}
		found := false
	outer:
		for _, bm := range m.Blocks {
			row := bm.Tiles[home.Tile]
			for ci := range row {
				s := &row[ci]
				if s.Kind == SlotOp && !s.WB &&
					m.Graph.Blocks[bm.BB].Nodes[s.Node].Op.HasResult() {
					s.WB = true
					s.WReg = home.Reg
					found = true
					break outer
				}
			}
		}
		if !found {
			t.Skip("no slot available on the home tile")
		}
		err := CheckDataflow(m)
		if err == nil {
			t.Fatal("home clobber not detected")
		}
		if !strings.Contains(err.Error(), "home") && !strings.Contains(err.Error(), "sym") {
			t.Fatalf("unexpected error: %v", err)
		}
	})
	t.Run("constant corrupted", func(t *testing.T) {
		m := mapped(t)
		bb, ti, ci, ok := firstSlot(m, SlotOp, isa.SrcConst)
		if !ok {
			t.Skip("no constant operand")
		}
		s := &m.Blocks[bb].Tiles[ti][ci]
		for i := 0; i < s.NSrc; i++ {
			if s.Srcs[i].Kind == isa.SrcConst {
				s.Srcs[i].Val++
			}
		}
		if err := CheckDataflow(m); err == nil {
			t.Fatal("corrupted constant not detected")
		}
	})
}

func TestValidateDetectsStructuralDamage(t *testing.T) {
	m := mapped(t)
	m.Blocks[0].Ops[0]++
	if err := m.Validate(); err == nil {
		t.Fatal("word-count mismatch not detected")
	}
}
