package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/obs"
)

// renderMapping serializes everything the assembler consumes, so equal
// renderings mean byte-identical binary images.
func renderMapping(m *Mapping) string {
	var sb strings.Builder
	for _, b := range m.Blocks {
		fmt.Fprintf(&sb, "bb%d len=%d branch=%d\n", b.BB, b.Len, b.BranchTile)
		for t, row := range b.Tiles {
			fmt.Fprintf(&sb, " t%d %v ops=%d moves=%d pnops=%d\n", t, row, b.Ops[t], b.Moves[t], b.Pnops[t])
		}
	}
	syms := make([]string, 0, len(m.SymHomes))
	for s := range m.SymHomes {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	for _, s := range syms {
		fmt.Fprintf(&sb, "home %s=%v\n", s, m.SymHomes[s])
	}
	return sb.String()
}

// TestMapObsInvariance pins the observability contract: attaching a
// recorder must not change the mapping (the search never consults the
// instrumentation), and the recorder must actually capture the mapper's
// phase structure.
func TestMapObsInvariance(t *testing.T) {
	g := smallLoop(8)
	grid := arch.MustGrid(arch.HET1)
	opt := DefaultOptions(FlowCAB)

	plain, err := Map(g, grid, opt)
	if err != nil {
		t.Fatal(err)
	}

	sink := obs.NewBufferSink(0)
	rec := obs.NewRecorder(obs.NewRegistry(), sink)
	opt.Obs = rec
	instr, err := Map(g, grid, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := renderMapping(plain), renderMapping(instr); a != b {
		t.Fatalf("recorder changed the mapping:\n--- plain ---\n%s\n--- instrumented ---\n%s", a, b)
	}

	st := instr.Stats
	total := st.Phases.Schedule + st.Phases.Route + st.Phases.Bind + st.Phases.Prune + st.Phases.Finalize
	if total <= 0 {
		t.Error("phase times not measured")
	}
	if total > st.CompileTime {
		t.Errorf("phase times %v exceed compile time %v", total, st.CompileTime)
	}
	if st.MemoHits+st.MemoMisses <= 0 {
		t.Error("no memo lookups counted")
	}
	if st.MemoResets <= 0 {
		t.Error("no memo resets counted")
	}

	if got := rec.Counter("core.map.calls").Value(); got != 1 {
		t.Errorf("core.map.calls = %d, want 1", got)
	}
	if got := rec.Counter("core.map.partials").Value(); got != int64(st.Partials) {
		t.Errorf("core.map.partials = %d, want %d", got, st.Partials)
	}
	if got := rec.Counter("core.memo.hits").Value(); got != int64(st.MemoHits) {
		t.Errorf("core.memo.hits = %d, want %d", got, st.MemoHits)
	}

	events := sink.Events()
	// Spans emit begin/end pairs; the end event carries duration and args,
	// so it is the one counted as "the span" here.
	spans := map[string]int{}
	for _, e := range events {
		if e.Ph == obs.PhaseEnd {
			spans[e.Name]++
		}
		if e.PID != obs.PIDTool {
			t.Errorf("mapper event %q on pid %d, want PIDTool", e.Name, e.PID)
		}
	}
	if spans["core.map"] != 1 {
		t.Errorf("core.map spans = %d, want 1", spans["core.map"])
	}
	if want := len(g.Blocks); spans["core.map.block"] != want {
		t.Errorf("core.map.block spans = %d, want %d", spans["core.map.block"], want)
	}
}

// TestMapPortfolioObs checks the per-seed portfolio instrumentation.
func TestMapPortfolioObs(t *testing.T) {
	g := smallLoop(8)
	grid := arch.MustGrid(arch.HET1)
	opt := DefaultOptions(FlowCAB)
	sink := obs.NewBufferSink(0)
	rec := obs.NewRecorder(obs.NewRegistry(), sink)
	opt.Obs = rec

	res, err := MapPortfolio(context.Background(), g, grid, opt, PortfolioOptions{NumSeeds: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ok := rec.Counter("core.portfolio.seeds_ok").Value()
	failed := rec.Counter("core.portfolio.seeds_failed").Value()
	pruned := rec.Counter("core.portfolio.seeds_pruned").Value()
	if ok+failed+pruned != 3 {
		t.Errorf("seed outcomes %d ok + %d failed + %d pruned, want 3 total", ok, failed, pruned)
	}
	if got := rec.Counter("core.map.calls").Value(); got != 3 {
		t.Errorf("core.map.calls = %d, want 3", got)
	}
	// Count each seed span once, by its end event (the begin carries no
	// args yet).
	seedSpans, winners := 0, 0
	for _, e := range sink.Events() {
		switch {
		case e.Name == "core.portfolio.seed" && e.Ph == obs.PhaseEnd:
			seedSpans++
		case e.Name == "core.portfolio.winner":
			winners++
			if e.Args["seed"] != res.Seed {
				t.Errorf("winner event seed %v, want %d", e.Args["seed"], res.Seed)
			}
		}
	}
	if seedSpans != 3 {
		t.Errorf("per-seed spans = %d, want 3", seedSpans)
	}
	if winners != 1 {
		t.Errorf("winner events = %d, want 1", winners)
	}
}
