package core

import (
	"testing"

	"repro/internal/arch"
)

// TestEnergyAwarePlacement checks that the energy-aware extension shifts
// instructions toward the small-context-memory tiles of a heterogeneous
// configuration without breaking feasibility.
func TestEnergyAwarePlacement(t *testing.T) {
	g := smallLoop(12)
	grid := arch.MustGrid(arch.HET2)

	base := DefaultOptions(FlowCAB)
	m0, err := Map(g, grid, base)
	if err != nil {
		t.Fatal(err)
	}
	ea := base
	ea.EnergyAware = true
	m1, err := Map(g, grid, ea)
	if err != nil {
		t.Fatal(err)
	}
	// Weighted word mass: Σ words(t)·CM(t)² is the fetch-energy proxy the
	// option minimizes; it must not increase.
	mass := func(m *Mapping) float64 {
		var s float64
		for t, w := range m.TileWords() {
			cm := float64(grid.Tile(arch.TileID(t)).CMWords)
			s += float64(w) * cm * cm
		}
		return s
	}
	if mass(m1) > mass(m0) {
		t.Errorf("energy-aware placement increased the fetch-energy proxy: %.0f > %.0f",
			mass(m1), mass(m0))
	}
	if ok, tile := m1.FitsMemory(); !ok {
		t.Fatalf("energy-aware mapping overflows tile %d", tile+1)
	}
}
