package core

import (
	"fmt"
	"strings"
)

// Fingerprint returns a deterministic rendering of every Options field that
// can influence the mapping result, after the same normalization Map
// applies (sanitize), so two option sets that the mapper cannot tell apart
// fingerprint identically. Instrumentation (Obs) and the unexported
// execution plumbing (ctx, arena, incumbent) are excluded: they never
// change the mapping bytes. ExactNodeBudget is resolved through the
// CGRA_EXACT_NODE_BUDGET environment knob exactly as the exact backend
// resolves it, so an env change cannot alias two different searches under
// one key. ObsTID is excluded with Obs: it only labels trace tracks.
//
// Profile is the one field a flat fingerprint cannot key soundly: its
// block weights are keyed by BBID, which an isomorphism-invariant graph
// hash deliberately forgets. The fingerprint only records its presence;
// internal/mapcache refuses to cache profiled runs outright.
func (o Options) Fingerprint() string {
	o.sanitize()
	var b strings.Builder
	fmt.Fprintf(&b, "flow=%d;trav=%d;forcetrav=%t;beam=%d;det=%g;seed=%d;cand=%d",
		o.Flow, o.Traversal, o.ForceTraversal, o.BeamWidth, o.DetFraction, o.Seed, o.CandidateCap)
	fmt.Fprintf(&b, ";slack=%d;maxslack=%d;hold=%d;recompute=%t",
		o.SlackWindow, o.MaxSlack, o.MaxHold, o.Recompute)
	fmt.Fprintf(&b, ";energy=%t;eweight=%g;maxcrf=%d;exactbudget=%d",
		o.EnergyAware, o.EnergyWeight, o.MaxCRF, resolveExactBudget(&o))
	fmt.Fprintf(&b, ";profiled=%t", o.Profile != nil)
	return b.String()
}
