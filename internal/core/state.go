package core

import (
	"repro/internal/arch"
	"repro/internal/cdfg"
)

// hold reserves a tile's output register: the value produced at cycle Prod
// must survive unclobbered through cycle Last (exclusive of new productions
// strictly between the two).
type hold struct {
	Prod int
	Last int
}

// loc is one place a value is live within the current block: the original
// production, a move's output, or a symbol's register-file home.
type loc struct {
	Tile  arch.TileID
	Cycle int // production cycle; symHomeCycle for a register-file home
	Reg   int8
}

// symHomeCycle marks a loc that exists "before the block starts" (a symbol
// home register). Such locations are readable from cycle 0 but have no
// output-register value to forward.
const symHomeCycle = -1

const noReg int8 = -1

// tileState is the per-tile schedule of the block being mapped, inside one
// partial mapping.
type tileState struct {
	Slots []Slot
	Holds []hold
	// RegMask marks RF registers currently holding a live value (global
	// symbol homes pre-set). EverUsed additionally remembers registers
	// that held any value this block or any committed block, even after
	// being freed: a symbol home pinned mid-block must use a never-touched
	// register since its content must be valid from cycle 0 of every
	// block. GlobalUsed is the immutable committed-blocks portion: a home
	// pinned at finalize (written late, read only by later blocks) may
	// reuse this block's dead temps but never another block's.
	RegMask    uint16
	EverUsed   uint16
	GlobalUsed uint16
	Ops        int
	Moves      int
	// Consts are the distinct immediates this tile references in already
	// committed blocks plus the current one (CRF pressure).
	Consts []int32
	// cacheHorizon/cacheWords memoize the last interior words() result
	// (trailing=false); the memory filters ask for the same horizon over
	// and over between mutations. cacheHorizon -1 means invalid.
	cacheHorizon int32
	cacheWords   int32
}

// dirty invalidates the cached interior word count. It must be called on
// every mutation that changes the tile's Ops, Moves or occupied cycles.
func (t *tileState) dirty() { t.cacheHorizon = -1 }

func (t *tileState) clone() tileState {
	c := *t
	c.Slots = append([]Slot(nil), t.Slots...)
	c.Holds = append([]hold(nil), t.Holds...)
	c.Consts = append([]int32(nil), t.Consts...)
	return c
}

// slotAt returns the slot at the cycle, growing the schedule as needed.
func (t *tileState) slotAt(c int) *Slot {
	for len(t.Slots) <= c {
		t.Slots = append(t.Slots, Slot{})
	}
	return &t.Slots[c]
}

// occupied reports whether the tile executes an instruction at cycle c.
func (t *tileState) occupied(c int) bool {
	return c >= 0 && c < len(t.Slots) && t.Slots[c].Kind != SlotEmpty
}

// producesAt reports whether the tile writes its output register at c.
func (t *tileState) producesAt(c int, b *cdfg.BasicBlock) bool {
	if c < 0 || c >= len(t.Slots) {
		return false
	}
	s := t.Slots[c]
	switch s.Kind {
	case SlotMove:
		return true
	case SlotOp:
		return b.Nodes[s.Node].Op.HasResult()
	}
	return false
}

// canProduceAt reports whether placing a value-producing instruction at
// cycle c respects all output-register holds.
func (t *tileState) canProduceAt(c int) bool {
	for _, h := range t.Holds {
		if h.Prod < c && c < h.Last {
			return false
		}
	}
	return true
}

// outputLive reports whether the value produced at cycle prod is still on
// the output register at cycle read (no intervening production).
func (t *tileState) outputLive(prod, read int, b *cdfg.BasicBlock) bool {
	if prod < 0 || read <= prod {
		return false
	}
	for c := prod + 1; c < read; c++ {
		if t.producesAt(c, b) {
			return false
		}
	}
	return true
}

// addHold extends (or records) the output hold for the value produced at
// prod so it survives through read.
func (t *tileState) addHold(prod, read int) {
	for i := range t.Holds {
		if t.Holds[i].Prod == prod {
			if read > t.Holds[i].Last {
				t.Holds[i].Last = read
			}
			return
		}
	}
	t.Holds = append(t.Holds, hold{Prod: prod, Last: read})
}

// freeRegs returns how many RF registers remain.
func (t *tileState) freeRegs(size int) int {
	n := 0
	for r := 0; r < size; r++ {
		if t.RegMask&(1<<r) == 0 {
			n++
		}
	}
	return n
}

// hasConst reports whether v is already in the tile's constant pool.
func (t *tileState) hasConst(v int32) bool {
	for _, c := range t.Consts {
		if c == v {
			return true
		}
	}
	return false
}

// internConst adds v to the tile's constant pool if capacity allows.
func (t *tileState) internConst(v int32, maxCRF int) bool {
	if t.hasConst(v) {
		return true
	}
	if len(t.Consts) >= maxCRF {
		return false
	}
	t.Consts = append(t.Consts, v)
	return true
}

// gapGroups counts the pnop words of the schedule so far. Leading and
// interior runs of empty slots each cost one pnop; future insertions can
// only keep or grow the total word count, so this is a safe lower bound
// (the ECMAP filter). With trailing set, the run after the last
// instruction up to the horizon is also charged — the pessimistic ACMAP
// estimate, which can over- or under-shoot the final count.
func (t *tileState) gapGroups(horizon int, trailing bool) int {
	limit := len(t.Slots)
	if horizon < limit {
		limit = horizon
	}
	n := 0
	prevOcc := -1
	any := false
	for c := 0; c < limit; c++ {
		if t.Slots[c].Kind == SlotEmpty {
			continue
		}
		if !any {
			if c > 0 {
				n++ // leading gap
			}
			any = true
		} else if c > prevOcc+1 {
			n++ // interior gap
		}
		prevOcc = c
	}
	if !any {
		if trailing && horizon > 0 {
			return 1 // the tile idles through the whole block
		}
		return 0
	}
	if trailing && prevOcc < horizon-1 {
		n++ // trailing gap to the current makespan
	}
	return n
}

// wordsIfOccupied counts the tile's words (interior accounting) as if
// cycle c additionally held an instruction — used to price the pnop
// fragmentation a placement would cause.
func (t *tileState) wordsIfOccupied(c, horizon int) int {
	limit := len(t.Slots)
	if c+1 > limit {
		limit = c + 1
	}
	if horizon > limit {
		limit = horizon
	}
	n := t.Ops + t.Moves + 1
	gaps := 0
	prevOcc := -1
	any := false
	occ := func(i int) bool {
		if i == c {
			return true
		}
		return i < len(t.Slots) && t.Slots[i].Kind != SlotEmpty
	}
	for i := 0; i < limit; i++ {
		if !occ(i) {
			continue
		}
		if !any {
			if i > 0 {
				gaps++
			}
			any = true
		} else if i > prevOcc+1 {
			gaps++
		}
		prevOcc = i
	}
	return n + gaps
}

// partial is one partial mapping of the block being mapped: a point of the
// design space the beam search explores.
type partial struct {
	tiles []tileState
	// locs[n] lists where node n's value is live; empty means unplaced.
	// locs[n][0] is the production (or symbol home).
	locs [][]loc
	// regLastRead[t*rrf+r] is the last cycle tile t's register r was read,
	// used to order symbol writebacks after all reads and to recycle
	// registers safely.
	regLastRead []int16
	// regLastWrite[t*rrf+r] is the last cycle register r is written, so a
	// recycled register is never clobbered by an earlier-scheduled
	// writeback placed at a later wall-clock step.
	regLastWrite []int16
	// regWriteCycle[t*rrf+r] is the cycle a symbol home register is
	// written back (noWrite when not yet written). Reads of a home
	// register must not occur after its writeback.
	regWriteCycle []int16
	// newHomes records symbol homes pinned while mapping this block; the
	// winning partial's pins are promoted to the global table on commit.
	newHomes map[string]SymLoc

	maxCycle   int // schedule length so far (last occupied cycle + 1)
	moves      int
	recomputes int
	cost       float64
	checkedTo  int // ECMAP frontier already verified

	// epoch is the occupancy generation (from the arena counter): any
	// mutation of the binding state bumps it via touch, invalidating the
	// route memo entries and the cached CAB blacklist keyed on it.
	epoch   uint32
	blMask  uint32
	blValid bool
}

// touch marks the partial as mutated: route-memo entries and the cached
// CAB blacklist for the old epoch no longer apply.
func (p *partial) touch(a *mapperArena) {
	p.epoch = a.nextEpoch()
	p.blValid = false
}

func (p *partial) clone() *partial {
	c := &partial{
		tiles:         make([]tileState, len(p.tiles)),
		locs:          make([][]loc, len(p.locs)),
		regLastRead:   append([]int16(nil), p.regLastRead...),
		regLastWrite:  append([]int16(nil), p.regLastWrite...),
		regWriteCycle: append([]int16(nil), p.regWriteCycle...),
		maxCycle:      p.maxCycle,
		moves:         p.moves,
		recomputes:    p.recomputes,
		cost:          p.cost,
		checkedTo:     p.checkedTo,
	}
	for i := range p.tiles {
		c.tiles[i] = p.tiles[i].clone()
	}
	for i := range p.locs {
		if len(p.locs[i]) > 0 {
			c.locs[i] = append([]loc(nil), p.locs[i]...)
		}
	}
	if p.newHomes != nil {
		c.newHomes = make(map[string]SymLoc, len(p.newHomes))
		for k, v := range p.newHomes {
			c.newHomes[k] = v
		}
	}
	return c
}

// noWrite marks a home register with no writeback scheduled yet.
const noWrite = int16(0x7fff)

// writeCycle returns the writeback cycle of tile t's register r.
func (p *partial) writeCycle(rrf int, t arch.TileID, r int8) int16 {
	return p.regWriteCycle[int(t)*rrf+int(r)]
}

// setWriteCycle records the writeback cycle of tile t's register r.
func (p *partial) setWriteCycle(rrf int, t arch.TileID, r int8, c int) {
	p.regWriteCycle[int(t)*rrf+int(r)] = int16(c)
}

// placed reports whether node n has been bound.
func (p *partial) placed(n cdfg.NodeID) bool { return len(p.locs[n]) > 0 }

// production returns node n's primary location.
func (p *partial) production(n cdfg.NodeID) loc { return p.locs[n][0] }

// allocRegAt claims a register of tile t for a value written at the given
// cycle. When fresh is set, only never-touched registers qualify (symbol
// homes readable from cycle 0); otherwise freed registers are recycled
// when their last recorded read and write do not come after the new write.
func (p *partial) allocRegAt(rrf int, t arch.TileID, cycle int, fresh bool) int8 {
	ts := &p.tiles[t]
	for r := 0; r < rrf; r++ {
		bit := uint16(1) << r
		if ts.RegMask&bit != 0 {
			continue
		}
		if fresh {
			if ts.EverUsed&bit != 0 {
				continue
			}
		} else if int(p.regLastRead[int(t)*rrf+r]) > cycle || int(p.regLastWrite[int(t)*rrf+r]) > cycle {
			continue
		}
		ts.RegMask |= bit
		ts.EverUsed |= bit
		if !fresh {
			p.noteWrite(rrf, t, int8(r), cycle)
		}
		return int8(r)
	}
	return noReg
}

// allocRegHome claims a register for a symbol home pinned at finalize:
// free now, never used by any other committed block (whose temp writes
// would clobber the symbol at runtime), with write-hazard ordering against
// this block's dead temps handled by the writeback placement.
func (p *partial) allocRegHome(rrf int, t arch.TileID) int8 {
	ts := &p.tiles[t]
	for r := 0; r < rrf; r++ {
		bit := uint16(1) << r
		if ts.RegMask&bit == 0 && ts.GlobalUsed&bit == 0 {
			ts.RegMask |= bit
			ts.EverUsed |= bit
			return int8(r)
		}
	}
	return noReg
}

// freeReg releases a register whose value has no remaining readers.
func (p *partial) freeReg(t arch.TileID, r int8) {
	p.tiles[t].RegMask &^= 1 << uint(r)
}

// noteWrite records that tile t's register r is written at cycle c.
func (p *partial) noteWrite(rrf int, t arch.TileID, r int8, c int) {
	idx := int(t)*rrf + int(r)
	if int16(c) > p.regLastWrite[idx] {
		p.regLastWrite[idx] = int16(c)
	}
}

// noteRead records that tile t's register r was read at cycle c.
func (p *partial) noteRead(rrf int, t arch.TileID, r int8, c int) {
	idx := int(t)*rrf + int(r)
	if int16(c) > p.regLastRead[idx] {
		p.regLastRead[idx] = int16(c)
	}
}

// lastRead returns the last cycle tile t's register r was read.
func (p *partial) lastRead(rrf int, t arch.TileID, r int8) int {
	return int(p.regLastRead[int(t)*rrf+int(r)])
}

// bump extends the schedule-length watermark.
func (p *partial) bump(c int) {
	if c+1 > p.maxCycle {
		p.maxCycle = c + 1
	}
}

// words returns the context words tile t consumes for the current block so
// far: committed instructions plus the chosen pnop estimate. The interior
// (trailing=false) count is cached per horizon until the tile mutates.
func (p *partial) words(t arch.TileID, horizon int, trailing bool) int {
	ts := &p.tiles[t]
	if trailing {
		return ts.Ops + ts.Moves + ts.gapGroups(horizon, true)
	}
	if ts.cacheHorizon == int32(horizon) {
		return int(ts.cacheWords)
	}
	w := ts.Ops + ts.Moves + ts.gapGroups(horizon, false)
	ts.cacheHorizon = int32(horizon)
	ts.cacheWords = int32(w)
	return w
}
