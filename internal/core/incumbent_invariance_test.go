package core_test

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/kernels"
)

// TestPortfolioPruningWinnerInvariant is the contract the incumbent
// optimization lives under: enabling pruning must not change the winning
// seed or a single byte of the winning bitstream, at any worker count and
// any GOMAXPROCS. Pruning only discards provable losers (see
// incumbent.prune), so the surviving winner is identical; this pins it.
func TestPortfolioPruningWinnerInvariant(t *testing.T) {
	grid := arch.MustGrid(arch.HOM32)
	keep := map[string]bool{"FIR": true, "DCFilter": true, "FFT": true}
	for _, k := range kernels.All() {
		if !keep[k.Name] {
			continue
		}
		k := k
		t.Run(k.Name, func(t *testing.T) {
			g := k.Build()
			opt := core.DefaultOptions(core.FlowCAB)
			run := func(noInc bool, workers int) (*core.PortfolioResult, []byte) {
				res, err := core.MapPortfolio(context.Background(), g, grid, opt,
					core.PortfolioOptions{NumSeeds: 8, Workers: workers, NoIncumbent: noInc})
				if err != nil {
					t.Fatalf("portfolio (noInc=%v workers=%d): %v", noInc, workers, err)
				}
				return res, imageOf(t, res.Mapping)
			}
			ref, refImg := run(true, 1)
			for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
				res, img := run(false, workers)
				if res.Seed != ref.Seed || res.Backend != ref.Backend {
					t.Fatalf("workers=%d: pruning changed the winner: seed %d backend %q, want seed %d backend %q",
						workers, res.Seed, res.Backend, ref.Seed, ref.Backend)
				}
				if !bytes.Equal(img, refImg) {
					t.Fatalf("workers=%d: pruning changed the winning bitstream", workers)
				}
				pruned := false
				for _, r := range res.Reports {
					if r.Pruned {
						pruned = true
					}
				}
				if workers == 1 && !pruned {
					t.Error("sequential pruning run pruned nothing — the invariance check is vacuous")
				}
			}
		})
	}
}
