package core

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/cdfg"
	"repro/internal/isa"
)

// finalize completes a partial after all operations of the block are
// bound: every live-out symbol value is delivered to its home register —
// by retrofitting a writeback on a producing slot when possible, otherwise
// by appending a writeback move — and unpinned homes of defined-only
// symbols are pinned. Writebacks are ordered after the last read of each
// home register so loop-carried symbols keep their entry value for all
// in-block readers.
func (cx *bbCtx) finalize(p *partial) error {
	syms := cx.block.LiveOutSyms()
	for _, s := range syms {
		if err := cx.writebackSym(p, s, cx.block.LiveOut[s]); err != nil {
			return err
		}
	}
	return nil
}

// homeOf resolves the symbol's home, pinning one if needed. Pinning
// prefers the tile already holding the defining value, then nearby tiles.
func (cx *bbCtx) homeOf(p *partial, s string, def cdfg.NodeID) (SymLoc, error) {
	if h, ok := cx.symHomes[s]; ok {
		return h, nil
	}
	if h, ok := p.newHomes[s]; ok {
		return h, nil
	}
	// Pin now: try the defining value's tiles first, then all tiles by
	// distance from the first location (or tile 0 for constants).
	var prefer []arch.TileID
	seen := map[arch.TileID]bool{}
	for _, l := range p.locs[def] {
		if !seen[l.Tile] {
			prefer = append(prefer, l.Tile)
			seen[l.Tile] = true
		}
	}
	from := arch.TileID(0)
	if len(prefer) > 0 {
		from = prefer[0]
	}
	rest := []arch.TileID{}
	for _, t := range cx.grid.TilesByDistance(from) {
		if !seen[t] {
			rest = append(rest, t)
		}
	}
	// Fallback tiles ordered by remaining context-memory budget first: a
	// home attracts writeback traffic in every defining block, so it
	// belongs on a roomy tile.
	sort.SliceStable(rest, func(i, j int) bool {
		return cx.soft[rest[i]] > cx.soft[rest[j]]
	})
	prefer = append(prefer, rest...)
	pin := func(t arch.TileID) (SymLoc, bool) {
		r := p.allocRegHome(cx.grid.RRFSize, t)
		if r == noReg {
			return SymLoc{}, false
		}
		h := SymLoc{Tile: t, Reg: uint8(r)}
		if p.newHomes == nil {
			p.newHomes = map[string]SymLoc{}
		}
		p.newHomes[s] = h
		p.touch(cx.arena)
		return h, true
	}
	// First pass: only tiles keeping headroom in their register file and
	// context budget, so symbol homes don't starve one tile; fall back to
	// any free register.
	for _, t := range prefer {
		if p.tiles[t].freeRegs(cx.grid.RRFSize) >= 3 && cx.soft[t] >= minHomeBudget {
			if h, ok := pin(t); ok {
				return h, nil
			}
		}
	}
	for _, t := range prefer {
		if h, ok := pin(t); ok {
			return h, nil
		}
	}
	return SymLoc{}, fmt.Errorf("core: no free register to pin symbol %q in block %q", s, cx.block.Name)
}

// writebackSym delivers the value of def into symbol s's home register.
func (cx *bbCtx) writebackSym(p *partial, s string, def cdfg.NodeID) error {
	home, err := cx.homeOf(p, s, def)
	if err != nil {
		return err
	}
	rrf := cx.grid.RRFSize
	hr := int8(home.Reg)

	// Already satisfied: the value is the home register's current content
	// (e.g. `s <- sym s`, the identity carry).
	nd := cx.block.Nodes[def]
	if nd.Op == cdfg.OpSym {
		if h2, ok := cx.lookupHome(p, nd.Sym); ok && h2 == home {
			return nil
		}
	}
	for _, l := range p.locs[def] {
		if l.Tile == home.Tile && l.Reg == hr && l.Cycle >= 0 {
			p.setWriteCycle(rrf, home.Tile, hr, l.Cycle)
			p.touch(cx.arena)
			return nil
		}
	}

	// The writeback must come after every read of the home register (both
	// symbol reads and reads of a recycled temp) and after any earlier
	// write a recycled register received.
	earliest := p.lastRead(rrf, home.Tile, hr)
	if w := int(p.regLastWrite[int(home.Tile)*rrf+int(hr)]); w+1 > earliest {
		earliest = w + 1
	}
	if earliest < 0 {
		earliest = 0
	}

	// Try retrofitting the writeback onto a slot already producing the
	// value on the home tile, provided it runs at or after the last read.
	for _, l := range p.locs[def] {
		if l.Tile != home.Tile || l.Cycle < 0 || l.Cycle < earliest {
			continue
		}
		slot := &p.tiles[home.Tile].Slots[l.Cycle]
		if slot.Kind == SlotEmpty || slot.WB {
			continue
		}
		slot.WB = true
		slot.WReg = home.Reg
		p.setWriteCycle(rrf, home.Tile, hr, l.Cycle)
		p.noteWrite(rrf, home.Tile, hr, l.Cycle)
		p.touch(cx.arena)
		return nil
	}

	// Append a writeback move on the home tile.
	avail := cx.argAvail(p, def)
	start := earliest
	if avail > start {
		start = avail
	}
	limit := p.maxCycle + cx.opt.MaxSlack
	if limit < start+cx.opt.MaxSlack {
		limit = start + cx.opt.MaxSlack
	}
	for w := start; w <= limit; w++ {
		if !cx.free(p, nil, home.Tile, w) || !cx.canProduce(p, nil, home.Tile, w) {
			continue
		}
		// The blacklist is cached on the partial's epoch and the routing
		// search memoizes per (epoch, def, tile, w), so re-walking the
		// window after failed cycles stays cheap.
		ap := argPlan{Arg: def}
		if !cx.planOperandMemo(p, nil, memoNilOverlay, def, home.Tile, w, cx.cabBlacklist(p), &ap.Plan) {
			continue
		}
		src := cx.applyPlan(p, &ap, nil)
		ts := &p.tiles[home.Tile]
		slot := ts.slotAt(w)
		*slot = Slot{
			Kind: SlotMove,
			Node: def,
			Srcs: [isa.MaxSrcs]isa.Src{src},
			NSrc: 1,
			WB:   true,
			WReg: home.Reg,
		}
		ts.Moves++
		ts.dirty()
		p.moves++
		p.bump(w)
		p.locs[def] = append(p.locs[def], loc{Tile: home.Tile, Cycle: w, Reg: hr})
		p.setWriteCycle(rrf, home.Tile, hr, w)
		p.noteWrite(rrf, home.Tile, hr, w)
		p.cost += costMove
		p.touch(cx.arena)
		return nil
	}
	var locs []string
	for _, l := range p.locs[def] {
		locs = append(locs, fmt.Sprintf("(t%d,c%d,r%d)", l.Tile+1, l.Cycle, l.Reg))
	}
	return fmt.Errorf("core: cannot write symbol %q back to tile %d reg %d in block %q (def n%d %s locs %v, lastRead %d, start %d, maxCycle %d)",
		s, home.Tile+1, home.Reg, cx.block.Name, def, nd.Op, locs, earliest, start, p.maxCycle)
}

// lookupHome returns the home of a symbol from the global or per-partial
// tables.
func (cx *bbCtx) lookupHome(p *partial, s string) (SymLoc, bool) {
	if h, ok := cx.symHomes[s]; ok {
		return h, true
	}
	h, ok := p.newHomes[s]
	return h, ok
}

// commit converts the winning partial into the block's final mapping.
func (cx *bbCtx) commit(p *partial) *BlockMapping {
	n := cx.grid.NumTiles()
	bm := &BlockMapping{
		BB:         cx.block.ID,
		Len:        p.maxCycle,
		Tiles:      make([][]Slot, n),
		BranchTile: -1,
		Ops:        make([]int, n),
		Moves:      make([]int, n),
		Pnops:      make([]int, n),
	}
	for t := 0; t < n; t++ {
		row := make([]Slot, bm.Len)
		copy(row, p.tiles[t].Slots)
		bm.Tiles[t] = row
		bm.Ops[t] = p.tiles[t].Ops
		bm.Moves[t] = p.tiles[t].Moves
		bm.Pnops[t] = countPnops(row)
		for _, s := range row {
			if s.Kind == SlotOp && cx.block.Nodes[s.Node].Op == cdfg.OpBr {
				bm.BranchTile = arch.TileID(t)
			}
		}
	}
	return bm
}

// selectBest picks the winning finalized partial: shortest schedule, then
// fewest context words, then fewest moves, then lowest cost.
func selectBest(parts []*partial) *partial {
	sort.SliceStable(parts, func(i, j int) bool {
		a, b := parts[i], parts[j]
		if a.maxCycle != b.maxCycle {
			return a.maxCycle < b.maxCycle
		}
		wa, wb := totalWords(a), totalWords(b)
		if wa != wb {
			return wa < wb
		}
		if a.moves != b.moves {
			return a.moves < b.moves
		}
		return a.cost < b.cost
	})
	return parts[0]
}

func totalWords(p *partial) int {
	n := 0
	for t := range p.tiles {
		n += p.words(arch.TileID(t), p.maxCycle, true)
	}
	return n
}
