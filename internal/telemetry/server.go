package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Check is one pluggable health probe. Probe returns nil when the
// component is healthy; the error message is reported verbatim on
// /healthz and /readyz.
type Check struct {
	Name  string
	Probe func() error
}

// Config assembles a Server. Registry and Events may each be nil — the
// corresponding endpoint then reports that it is not configured instead
// of serving empty data, so a mis-wired CLI is diagnosable from the
// endpoint itself.
type Config struct {
	// Addr is the listen address (":0" picks an ephemeral port, the form
	// tests and CI use).
	Addr string
	// Registry backs /metrics.
	Registry *obs.Registry
	// Events backs /events.
	Events *RingSink
	// Checks are evaluated on every /healthz and /readyz request.
	Checks []Check
}

// Server is a running telemetry endpoint. Start it with Start; it serves
// until Close. The server starts not-ready (readyz returns 503) so a
// load balancer or script polling readiness cannot route to a CLI that
// is still loading kernels; the embedding tool calls SetReady(true) once
// its setup is done.
type Server struct {
	cfg   Config
	ln    net.Listener
	srv   *http.Server
	ready atomic.Bool
}

// Start binds cfg.Addr and serves the telemetry endpoints on it. The
// returned server is live (Addr reports the bound address) but not yet
// ready.
func Start(cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{cfg: cfg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	// No write timeout: /events?follow=1 is a deliberately long-lived
	// stream. The read timeout bounds request-header parsing only.
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		// Serve returns http.ErrServerClosed on Close; other errors mean
		// the listener died, which Close surfaces to the embedding CLI.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (with the real port when the
// config asked for :0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns an absolute http URL for a path on this server.
func (s *Server) URL(path string) string { return "http://" + s.Addr() + path }

// SetReady flips the /readyz verdict. Tools call SetReady(true) after
// their setup completes and may flip it back off while draining.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Close stops the server and releases the listener.
func (s *Server) Close() error {
	return s.srv.Close()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "cgra telemetry\n\n/metrics\n/healthz\n/readyz\n/events (add ?follow=1 to stream live)\n/debug/pprof/\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Registry == nil {
		http.Error(w, "no metrics registry configured", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// Snapshot is already sorted by name; the page is deterministic for a
	// given metric state.
	_ = WritePrometheus(w, s.cfg.Registry.Snapshot())
}

// runChecks evaluates every configured check, rendering one line per
// check, and reports whether all passed. Checks run in name order so the
// body is deterministic.
func (s *Server) runChecks(w http.ResponseWriter) bool {
	checks := append([]Check(nil), s.cfg.Checks...)
	sort.Slice(checks, func(i, j int) bool { return checks[i].Name < checks[j].Name })
	type result struct {
		name string
		err  error
	}
	results := make([]result, 0, len(checks))
	ok := true
	for _, c := range checks {
		var err error
		if c.Probe != nil {
			err = c.Probe()
		}
		if err != nil {
			ok = false
		}
		results = append(results, result{c.Name, err})
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !ok {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	for _, res := range results {
		if res.err != nil {
			fmt.Fprintf(w, "fail %s: %v\n", res.name, res.err)
		} else {
			fmt.Fprintf(w, "ok %s\n", res.name)
		}
	}
	if ok {
		fmt.Fprintf(w, "ok\n")
	}
	return ok
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.runChecks(w)
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	s.runChecks(w)
}

// handleEvents serves the ring backlog as JSONL and, with ?follow=1,
// keeps streaming live events until the client disconnects. A reader
// that stops draining loses events (its subscription channel is
// buffered, sends never block the recorder); the loss shows up on
// /metrics as telemetry.events.dropped.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Events == nil {
		http.Error(w, "no event stream configured", http.StatusNotFound)
		return
	}
	follow := r.URL.Query().Get("follow") == "1"
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	backlog, sub := s.cfg.Events.Subscribe(0)
	defer s.cfg.Events.Unsubscribe(sub)
	for _, e := range backlog {
		if err := enc.Encode(e); err != nil {
			return
		}
	}
	if !follow {
		return
	}
	fl, _ := w.(http.Flusher)
	if fl != nil {
		fl.Flush()
	}
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case e, ok := <-sub.C:
			if !ok {
				return
			}
			if err := enc.Encode(e); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
	}
}
