package telemetry

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/obs"
)

// WritePrometheus renders a metric snapshot in the Prometheus text
// exposition format (version 0.0.4). Counters and gauges map directly;
// histograms are exposed as summaries carrying the registry's
// power-of-two-bucket quantile upper bounds (p50/p95/p99) plus _sum and
// _count. Metric names are sanitized to the Prometheus charset; if two
// registry names collapse onto one sanitized name, the later (by
// snapshot order, i.e. registry-name order) is skipped — exposing two
// TYPE lines for one name would make the page unparseable.
func WritePrometheus(w io.Writer, metrics []obs.MetricValue) error {
	seen := map[string]bool{}
	for _, m := range metrics {
		name := SanitizeMetricName(m.Name)
		if seen[name] {
			continue
		}
		seen[name] = true
		var err error
		switch m.Kind {
		case obs.KindCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, m.Value)
		case obs.KindGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, m.Value)
		case obs.KindHistogram:
			_, err = fmt.Fprintf(w,
				"# TYPE %s summary\n%s{quantile=\"0.5\"} %d\n%s{quantile=\"0.95\"} %d\n%s{quantile=\"0.99\"} %d\n%s_sum %d\n%s_count %d\n",
				name, name, m.P50, name, m.P95, name, m.P99, name, m.Value, name, m.Count)
		default:
			_, err = fmt.Fprintf(w, "# TYPE %s untyped\n%s %d\n", name, name, m.Value)
		}
		if err != nil {
			return fmt.Errorf("telemetry: writing metrics: %w", err)
		}
	}
	return nil
}

// SanitizeMetricName maps a registry metric name onto the Prometheus
// name charset [a-zA-Z_:][a-zA-Z0-9_:]*: the registry's dot separators
// (core.map.calls) become underscores and any other illegal byte maps
// to '_', with a leading underscore prepended when the name would start
// with a digit.
func SanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		legal := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !legal {
			if c >= '0' && c <= '9' { // leading digit
				b.WriteByte('_')
				b.WriteByte(c)
				continue
			}
			b.WriteByte('_')
			continue
		}
		b.WriteByte(c)
	}
	return b.String()
}
