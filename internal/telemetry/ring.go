// Package telemetry is the embeddable live-observability layer over
// internal/obs: an HTTP server exposing the recorder's registry as
// Prometheus text (/metrics), pluggable health checks (/healthz,
// /readyz), a live JSONL event feed (/events) backed by a bounded ring,
// and the runtime profiler (/debug/pprof). The CLIs mount it behind a
// -serve flag so long mapping sweeps are observable while they execute;
// the planned cgrad daemon mounts the same server as its health surface.
//
// The package never blocks the instrumented computation: the ring sink's
// Emit is lock-bounded and constant-time, and slow /events readers drop
// events (counted, never silently) instead of applying backpressure to
// the recorder.
package telemetry

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// DefaultRingCap bounds a RingSink when no explicit capacity is given:
// enough backlog for a meaningful /events replay without letting the
// live buffer grow with run length.
const DefaultRingCap = 4096

// RingSink is an obs.Sink that keeps the most recent events in a bounded
// ring and fans live events out to subscribers. Old events are
// overwritten (the ring is a tail window, unlike obs.BufferSink which
// keeps the head); subscribers with full channels lose events rather
// than stalling Emit. Both loss modes are counted.
type RingSink struct {
	mu      sync.Mutex
	buf     []obs.Event
	next    int // insertion index into buf
	full    bool
	subs    []*Subscription // fan-out in subscription order
	dropCtr *obs.Counter
	dropped atomic.Int64
}

// Subscription is one /events reader's handle: a buffered channel of
// live events plus its private drop counter.
type Subscription struct {
	// C delivers live events emitted after the subscription was taken.
	// It is closed by Unsubscribe.
	C       chan obs.Event
	dropped atomic.Int64
}

// Dropped returns how many events this subscriber lost to a full
// channel.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// NewRingSink returns a ring keeping the last cap events
// (DefaultRingCap when cap <= 0).
func NewRingSink(cap int) *RingSink {
	if cap <= 0 {
		cap = DefaultRingCap
	}
	return &RingSink{buf: make([]obs.Event, cap)}
}

// Meter surfaces subscriber-side event loss as the registry counter
// telemetry.events.dropped, so a slow /events reader is visible on the
// next /metrics scrape.
func (r *RingSink) Meter(reg *obs.Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dropCtr = reg.Counter("telemetry.events.dropped")
}

// Emit stores the event in the ring and offers it to every subscriber
// without blocking: a subscriber whose channel is full loses the event
// and its drop counter advances. Emit never waits on a reader.
func (r *RingSink) Emit(e obs.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	for _, sub := range r.subs {
		select {
		case sub.C <- e:
		default:
			sub.dropped.Add(1)
			r.dropped.Add(1)
			r.dropCtr.Inc()
		}
	}
}

// Snapshot returns the ring's current contents, oldest first.
func (r *RingSink) Snapshot() []obs.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

func (r *RingSink) snapshotLocked() []obs.Event {
	if !r.full {
		return append([]obs.Event(nil), r.buf[:r.next]...)
	}
	out := make([]obs.Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dropped returns the total events lost across all subscribers.
func (r *RingSink) Dropped() int64 { return r.dropped.Load() }

// Subscribe atomically snapshots the ring backlog and registers a live
// subscription with the given channel buffer (DefaultSubBuffer when
// <= 0): no event falls between the backlog and the channel, and none is
// delivered twice. Callers must drain Subscription.C promptly or accept
// drops, and must Unsubscribe when done.
func (r *RingSink) Subscribe(buffer int) ([]obs.Event, *Subscription) {
	if buffer <= 0 {
		buffer = DefaultSubBuffer
	}
	sub := &Subscription{C: make(chan obs.Event, buffer)}
	r.mu.Lock()
	defer r.mu.Unlock()
	backlog := r.snapshotLocked()
	r.subs = append(r.subs, sub)
	return backlog, sub
}

// DefaultSubBuffer is the per-subscriber channel depth when Subscribe is
// called without one.
const DefaultSubBuffer = 256

// Unsubscribe removes the subscription and closes its channel. Safe to
// call once per subscription; events emitted after it returns are not
// delivered.
func (r *RingSink) Unsubscribe(sub *Subscription) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, s := range r.subs {
		if s == sub {
			r.subs = append(r.subs[:i], r.subs[i+1:]...)
			close(sub.C)
			return
		}
	}
}
