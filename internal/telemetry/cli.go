package telemetry

import "repro/internal/obs"

// ServeArtifacts is the standard -serve wiring shared by cgrabench,
// cgrasim and the oracle sweep hook: it builds an event ring, fans it
// into the -metrics/-events file recorder (obs.FileOutputsWith), meters
// subscriber loss into the recorder's registry, and starts a Server
// over both. Either file path may be empty; the registry always exists
// because the live /metrics endpoint needs one. The returned recorder
// replaces the plain obs.FileOutputs recorder in the CLI; the caller
// still owns Flush (artifacts) and Close (server), and flips readiness
// with SetReady once its setup is done.
func ServeArtifacts(addr, metricsPath, eventsPath string, checks ...Check) (*obs.FileRecorder, *Server, error) {
	ring := NewRingSink(0)
	fr := obs.FileOutputsWith(metricsPath, eventsPath, ring)
	ring.Meter(fr.Registry())
	srv, err := Start(Config{Addr: addr, Registry: fr.Registry(), Events: ring, Checks: checks})
	if err != nil {
		return nil, nil, err
	}
	return fr, srv, nil
}
