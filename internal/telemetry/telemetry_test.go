package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/obs"
)

// scrape GETs a URL and returns the body, failing the test on transport
// or status errors.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", url, resp.StatusCode, body)
	}
	return string(body)
}

// TestLiveScrapeMetrics runs a real mapping through a telemetry-wired
// recorder, then scrapes /metrics over real HTTP and checks that the
// mapper's instrumentation comes back as well-formed Prometheus text.
func TestLiveScrapeMetrics(t *testing.T) {
	ring := NewRingSink(0)
	reg := obs.NewRegistry()
	ring.Meter(reg)
	rec := obs.NewRecorder(reg, ring)

	k, err := kernels.ByName("FIR")
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions(core.FlowCAB)
	opt.Obs = rec
	if _, err := core.Map(k.Build(), arch.MustGrid(arch.HOM64), opt); err != nil {
		t.Fatalf("map: %v", err)
	}

	srv, err := Start(Config{Addr: "127.0.0.1:0", Registry: reg, Events: ring})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	body := scrape(t, srv.URL("/metrics"))

	// Parse the exposition: every non-comment line must be "name value"
	// or "name{labels} value".
	samples := map[string]bool{}
	types := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line: %q", line)
		}
		samples[fields[0]] = true
	}

	want := []string{
		"core_map_calls",
		"core_map_partials",
		"core_map_retries",
		"core_prune_acmap",
		"core_prune_ecmap",
		"core_prune_stochastic",
		"core_memo_hits",
		"core_memo_misses",
		"core_phase_schedule_us",
		"core_phase_route_us",
		"core_phase_bind_us",
		"core_arena_partials_free",
		"telemetry_events_dropped",
	}
	for _, name := range want {
		if !samples[name] {
			t.Errorf("scrape missing metric %s", name)
		}
	}
	// The compile-time histogram must expose summary quantiles.
	if types["core_map_us"] != "summary" {
		t.Fatalf("core_map_us type = %q, want summary", types["core_map_us"])
	}
	for _, s := range []string{
		`core_map_us{quantile="0.5"}`,
		`core_map_us{quantile="0.95"}`,
		`core_map_us{quantile="0.99"}`,
		"core_map_us_sum",
		"core_map_us_count",
	} {
		if !samples[s] {
			t.Errorf("scrape missing histogram sample %s", s)
		}
	}
	if len(samples) < 10 {
		t.Fatalf("scrape produced %d samples, want >= 10", len(samples))
	}
}

// TestSlowReaderDropsNotBlocks pins the backpressure policy: a
// subscriber that never drains loses events while the emitting side
// keeps running at full speed.
func TestSlowReaderDropsNotBlocks(t *testing.T) {
	reg := obs.NewRegistry()
	ring := NewRingSink(8)
	ring.Meter(reg)
	_, sub := ring.Subscribe(2)
	defer ring.Unsubscribe(sub)

	const n = 100
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			ring.Emit(obs.Event{Name: "e", Ph: obs.PhaseInstant, TS: float64(i), PID: obs.PIDTool})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked on a slow subscriber")
	}
	// 2 events fit the channel, the rest must have been dropped.
	if got := sub.Dropped(); got != n-2 {
		t.Fatalf("subscriber dropped %d events, want %d", got, n-2)
	}
	if got := ring.Dropped(); got != n-2 {
		t.Fatalf("ring dropped %d events, want %d", got, n-2)
	}
	if got := reg.Counter("telemetry.events.dropped").Value(); got != n-2 {
		t.Fatalf("telemetry.events.dropped = %d, want %d", got, n-2)
	}
	// The ring itself holds the most recent window regardless of readers.
	snap := ring.Snapshot()
	if len(snap) != 8 || snap[0].TS != n-8 || snap[7].TS != n-1 {
		t.Fatalf("ring snapshot wrong window: len=%d first=%v last=%v", len(snap), snap[0].TS, snap[len(snap)-1].TS)
	}
}

// TestEventsEndpoint covers both /events modes: the backlog dump and the
// ?follow=1 live stream delivering an event emitted after the client
// connected.
func TestEventsEndpoint(t *testing.T) {
	ring := NewRingSink(0)
	rec := obs.NewRecorder(nil, ring)
	sp := rec.StartSpan("phase.a", "test", 0)
	sp.End(map[string]any{"k": "v"})

	srv, err := Start(Config{Addr: "127.0.0.1:0", Events: ring})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Backlog mode: the response terminates and parses as event JSONL.
	body := scrape(t, srv.URL("/events"))
	events, err := obs.ReadEvents(strings.NewReader(body))
	if err != nil {
		t.Fatalf("backlog not valid event JSONL: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("backlog has %d events, want 2 (span begin+end)", len(events))
	}
	if events[0].Ph != obs.PhaseBegin || events[1].Ph != obs.PhaseEnd || events[0].ID != events[1].ID {
		t.Fatalf("backlog span pair broken: %+v", events)
	}

	// Follow mode: connect, drain the backlog, then emit one more event
	// and expect it to arrive on the open stream.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL("/events?follow=1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 2; i++ {
		if !sc.Scan() {
			t.Fatalf("stream ended during backlog replay: %v", sc.Err())
		}
	}
	rec.Emit("live.tick", "test", 0, nil)
	if !sc.Scan() {
		t.Fatalf("stream ended before live event: %v", sc.Err())
	}
	var live obs.Event
	if err := decodeLine(sc.Bytes(), &live); err != nil {
		t.Fatalf("live line not an event: %v", err)
	}
	if live.Name != "live.tick" || live.Ph != obs.PhaseInstant {
		t.Fatalf("live event %+v", live)
	}
}

func decodeLine(b []byte, e *obs.Event) error {
	events, err := obs.ReadEvents(bytes.NewReader(b))
	if err != nil {
		return err
	}
	if len(events) != 1 {
		return fmt.Errorf("got %d events", len(events))
	}
	*e = events[0]
	return nil
}

func TestHealthzAndReadyz(t *testing.T) {
	fail := errors.New("backend exploded")
	var failing bool
	srv, err := Start(Config{
		Addr: "127.0.0.1:0",
		Checks: []Check{
			{Name: "registry", Probe: func() error { return nil }},
			{Name: "backend", Probe: func() error {
				if failing {
					return fail
				}
				return nil
			}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	body := scrape(t, srv.URL("/healthz"))
	// Checks render in name order.
	if !strings.Contains(body, "ok backend\nok registry\n") {
		t.Fatalf("healthz body:\n%s", body)
	}

	// Not ready until the embedding tool says so.
	resp, err := http.Get(srv.URL("/readyz"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before SetReady: status %d, want 503", resp.StatusCode)
	}
	srv.SetReady(true)
	if body := scrape(t, srv.URL("/readyz")); !strings.Contains(body, "ok registry") {
		t.Fatalf("readyz body:\n%s", body)
	}

	// A failing probe flips healthz to 503 and names the failure.
	failing = true
	resp, err = http.Get(srv.URL("/healthz"))
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with failing check: status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body2), "fail backend: backend exploded") {
		t.Fatalf("healthz failure body:\n%s", body2)
	}
}

func TestUnconfiguredEndpoints(t *testing.T) {
	srv, err := Start(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/metrics", "/events"} {
		resp, err := http.Get(srv.URL(path))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s on unconfigured server: status %d, want 404", path, resp.StatusCode)
		}
	}
	// The index and pprof surfaces are always mounted.
	if body := scrape(t, srv.URL("/")); !strings.Contains(body, "/debug/pprof/") {
		t.Fatalf("index body:\n%s", body)
	}
	if body := scrape(t, srv.URL("/debug/pprof/cmdline")); body == "" {
		t.Fatal("pprof cmdline endpoint returned nothing")
	}
}

func TestWritePrometheus(t *testing.T) {
	var buf bytes.Buffer
	err := WritePrometheus(&buf, []obs.MetricValue{
		{Name: "a.count", Kind: obs.KindCounter, Value: 3},
		{Name: "a-count", Kind: obs.KindCounter, Value: 9}, // collides after sanitization
		{Name: "b.gauge", Kind: obs.KindGauge, Value: -2},
		{Name: "c.hist", Kind: obs.KindHistogram, Value: 5050, Count: 100, P50: 63, P95: 127, P99: 127},
		{Name: "0weird name", Kind: obs.KindCounter, Value: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := `# TYPE a_count counter
a_count 3
# TYPE b_gauge gauge
b_gauge -2
# TYPE c_hist summary
c_hist{quantile="0.5"} 63
c_hist{quantile="0.95"} 127
c_hist{quantile="0.99"} 127
c_hist_sum 5050
c_hist_count 100
# TYPE _0weird_name counter
_0weird_name 1
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRingWrapAndUnsubscribe(t *testing.T) {
	ring := NewRingSink(4)
	for i := 0; i < 6; i++ {
		ring.Emit(obs.Event{Name: "e", Ph: obs.PhaseInstant, TS: float64(i), PID: obs.PIDTool})
	}
	snap := ring.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(snap))
	}
	for i, e := range snap {
		if e.TS != float64(2+i) {
			t.Fatalf("snapshot[%d].TS = %v, want %v (oldest-first tail window)", i, e.TS, 2+i)
		}
	}

	backlog, sub := ring.Subscribe(4)
	if len(backlog) != 4 {
		t.Fatalf("backlog len = %d, want 4", len(backlog))
	}
	ring.Emit(obs.Event{Name: "live", Ph: obs.PhaseInstant, TS: 99, PID: obs.PIDTool})
	if e := <-sub.C; e.TS != 99 {
		t.Fatalf("live event TS = %v, want 99", e.TS)
	}
	ring.Unsubscribe(sub)
	if _, ok := <-sub.C; ok {
		t.Fatal("subscription channel not closed by Unsubscribe")
	}
	// Double unsubscribe is safe; later emits go nowhere.
	ring.Unsubscribe(sub)
	ring.Emit(obs.Event{Name: "after", Ph: obs.PhaseInstant, PID: obs.PIDTool})
	if got := sub.Dropped(); got != 0 {
		t.Fatalf("events counted against a dead subscription: %d", got)
	}
}

// TestServeArtifacts checks the shared CLI wiring: one call yields a
// recorder feeding the file artifacts and the live endpoints at once,
// and the caller still owns flush and shutdown.
func TestServeArtifacts(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.json")
	eventsPath := filepath.Join(dir, "events.trace")
	fr, srv, err := ServeArtifacts("127.0.0.1:0", metricsPath, eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetReady(true)

	fr.Counter("demo.calls").Inc()
	sp := fr.StartSpan("demo.phase", "demo", 0)
	sp.End(nil)

	// The same instrumentation is visible live...
	page := scrape(t, srv.URL("/metrics"))
	if !strings.Contains(page, "demo_calls 1") {
		t.Fatalf("live /metrics misses the counter:\n%s", page)
	}
	if !strings.Contains(scrape(t, srv.URL("/events")), "demo.phase") {
		t.Fatalf("live /events misses the span")
	}
	if !strings.Contains(scrape(t, srv.URL("/readyz")), "ok") {
		t.Fatal("readyz not ok after SetReady")
	}

	// ...and lands in the file artifacts on Flush.
	if err := fr.Flush(); err != nil {
		t.Fatal(err)
	}
	m, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(m), "demo.calls") {
		t.Fatalf("metrics artifact misses the counter:\n%s", m)
	}
	ev, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(ev), "demo.phase") {
		t.Fatalf("events artifact misses the span:\n%s", ev)
	}
}

// TestServeArtifactsPathless: with no file paths the recorder must still
// be live (registry + ring) so -serve works without -metrics/-events.
func TestServeArtifactsPathless(t *testing.T) {
	fr, srv, err := ServeArtifacts("127.0.0.1:0", "", "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !fr.Recorder.Enabled() {
		t.Fatal("pathless ServeArtifacts recorder is disabled")
	}
	fr.Counter("demo.calls").Inc()
	if !strings.Contains(scrape(t, srv.URL("/metrics")), "demo_calls 1") {
		t.Fatal("pathless server does not expose the registry")
	}
	if err := fr.Flush(); err != nil {
		t.Fatalf("pathless Flush must be a no-op, got %v", err)
	}
}

// TestServeArtifactsBadAddr: an unusable listen address surfaces as an
// error instead of a dead server.
func TestServeArtifactsBadAddr(t *testing.T) {
	if _, _, err := ServeArtifacts("127.0.0.1:-1", "", ""); err == nil {
		t.Fatal("ServeArtifacts accepted an invalid address")
	}
}
