package exp

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/obs"
)

func TestRunnerCellAndCache(t *testing.T) {
	r := NewRunner()
	c1 := r.Run("FIR", core.FlowBasic, arch.HOM64)
	if !c1.OK {
		t.Fatalf("FIR basic failed: %s", c1.Fail)
	}
	if c1.Cycles <= 0 || c1.TotalWords <= 0 || c1.Energy.Total() <= 0 {
		t.Fatalf("cell underfilled: %+v", c1)
	}
	c2 := r.Run("FIR", core.FlowBasic, arch.HOM64)
	if c1 != c2 {
		t.Error("cells should be cached")
	}
	if c := r.Run("nope", core.FlowBasic, arch.HOM64); c.OK {
		t.Error("unknown kernel should fail")
	}
}

// TestCellDeadContextStats pins the dead-context accounting on every
// evaluated cell: the word counts are consistent, and the DCFilter —
// which ships a configuration-dead seed arm — shows a nonzero reduction
// that the rendered table reports.
func TestCellDeadContextStats(t *testing.T) {
	r := NewRunner()
	c := r.Run("DCFilter", core.FlowCAB, arch.HET1)
	if !c.OK {
		t.Fatalf("DCFilter cab/HET1 failed: %s", c.Fail)
	}
	if c.StrippedWords+c.DeadWords != c.TotalWords {
		t.Fatalf("words do not add up: %d stripped + %d dead != %d total",
			c.StrippedWords, c.DeadWords, c.TotalWords)
	}
	if c.DeadWords == 0 {
		t.Fatal("DCFilter's configuration-dead seed arm was not stripped")
	}

	dc := &DeadContext{Kernels: []string{"DCFilter"}, Cells: [][3]*Cell{{c, c, nil}}}
	out := dc.Render()
	for _, want := range []string{"DCFilter", "dead-context elimination reclaims", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render misses %q:\n%s", want, out)
		}
	}
	if saved, words := dc.TotalSaved(); saved != 2*c.DeadWords || words != 2*c.TotalWords {
		t.Errorf("TotalSaved = %d/%d, want %d/%d", saved, words, 2*c.DeadWords, 2*c.TotalWords)
	}
}

// TestRunnerBatchMatchesScalar pins the Batch knob's contract: the same
// cell evaluated through the batched engine carries exactly the scalar
// run's metrics, so every figure and table is batch-width invariant.
func TestRunnerBatchMatchesScalar(t *testing.T) {
	scalar := NewRunner().Run("FIR", core.FlowCAB, arch.HOM32)
	if !scalar.OK {
		t.Fatalf("FIR cab failed: %s", scalar.Fail)
	}
	br := NewRunner()
	br.Batch = 4
	batched := br.Run("FIR", core.FlowCAB, arch.HOM32)
	if !batched.OK {
		t.Fatalf("FIR cab with Batch=4 failed: %s", batched.Fail)
	}
	if batched.Cycles != scalar.Cycles || batched.Stalls != scalar.Stalls ||
		batched.Energy != scalar.Energy {
		t.Errorf("batched cell diverges from scalar:\nbatched %+v\nscalar  %+v", batched, scalar)
	}
}

func TestRunnerCPU(t *testing.T) {
	r := NewRunner()
	cc, err := r.CPU("DCFilter")
	if err != nil {
		t.Fatal(err)
	}
	if cc.Cycles <= 0 || cc.Energy.Total() <= 0 {
		t.Fatalf("cpu cell: %+v", cc)
	}
	cc2, err := r.CPU("DCFilter")
	if err != nil || cc != cc2 {
		t.Error("cpu cells should be cached")
	}
	if _, err := r.CPU("nope"); err == nil {
		t.Error("unknown kernel should fail")
	}
}

// TestRunnerConcurrentDedup hammers one cell from many goroutines: the
// in-flight tracking must evaluate it exactly once and hand every caller
// the same *Cell. Meaningful under -race: it exercises the cache, the
// in-flight map, and the wait path concurrently.
func TestRunnerConcurrentDedup(t *testing.T) {
	r := NewRunner()
	const n = 8
	cells := make([]*Cell, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cells[i] = r.Run("FIR", core.FlowBasic, arch.HOM64)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if cells[i] != cells[0] {
			t.Fatalf("goroutine %d got a different cell", i)
		}
	}
	if !cells[0].OK {
		t.Fatalf("FIR basic failed: %s", cells[0].Fail)
	}
	// The CPU cache must dedup the same way.
	cpus := make([]*CPUCell, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cpus[i], _ = r.CPU("FIR")
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if cpus[i] != cpus[0] {
			t.Fatalf("goroutine %d got a different CPU cell", i)
		}
	}
}

// TestFig5ParallelMatchesSerial is the byte-identical-output guarantee:
// the same figure rendered from a serial runner and from a parallel
// runner must be equal down to the last byte.
func TestFig5ParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("maps every kernel twice, twice")
	}
	serial := NewRunner()
	serial.Workers = 1
	parallel := NewRunner()
	parallel.Workers = 4
	fs, err := serial.RunFig5()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := parallel.RunFig5()
	if err != nil {
		t.Fatal(err)
	}
	if fs.Render() != fp.Render() {
		t.Errorf("parallel render diverged:\n--- serial ---\n%s--- parallel ---\n%s", fs.Render(), fp.Render())
	}
}

func TestFig2Hotspots(t *testing.T) {
	if testing.Short() {
		t.Skip("maps MatM")
	}
	r := NewRunner()
	f, err := r.RunFig2()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig 2 observation: the load/store tiles are the
	// hot-spots of the memory-unaware mapping.
	if f.LSUUtilization() <= f.RestUtilization() {
		t.Errorf("LS tiles %.2f should exceed the rest %.2f",
			f.LSUUtilization(), f.RestUtilization())
	}
	if !strings.Contains(f.Render(), "tile 16") {
		t.Error("render should list all tiles")
	}
}

func TestFig5WeightedTraversal(t *testing.T) {
	if testing.Short() {
		t.Skip("maps every kernel twice")
	}
	r := NewRunner()
	f, err := r.RunFig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Kernels) != 7 {
		t.Fatalf("kernels: %v", f.Kernels)
	}
	// The paper's headline case is FFT; both traversals must at least map.
	for i, k := range f.Kernels {
		if k == "FFT" && (f.FailedFwd[i] || f.FailedWght[i]) {
			t.Error("FFT must map under both traversals")
		}
	}
	if !strings.Contains(f.Render(), "move ratio") {
		t.Error("render shape")
	}
}

func TestFig11AreasOrdering(t *testing.T) {
	r := NewRunner()
	f, err := r.RunFig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Designs) != 5 || f.Designs[0] != "CPU" {
		t.Fatalf("designs: %v", f.Designs)
	}
	if f.PerCPU[0] != 1 {
		t.Error("CPU normalizes to 1")
	}
	// HOM64 is the largest design.
	for i := 2; i < len(f.Areas); i++ {
		if f.Areas[i] >= f.Areas[1] {
			t.Errorf("%s should be smaller than HOM64", f.Designs[i])
		}
	}
}

func TestLatencyFigSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("maps kernels")
	}
	r := NewRunner()
	f, err := r.RunLatencyFig(core.FlowCAB)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Kernels) != 7 || len(f.Configs) != 4 {
		t.Fatalf("shape: %d kernels, %d configs", len(f.Kernels), len(f.Configs))
	}
	// Every kernel must map on at least one configuration under CAB.
	for i, row := range f.Norm {
		any := false
		for _, v := range row {
			if v > 0 {
				any = true
			}
		}
		if !any {
			t.Errorf("%s mapped nowhere under CAB", f.Kernels[i])
		}
	}
	out := f.Render()
	if !strings.Contains(out, "Fig 8") {
		t.Errorf("render title:\n%s", out)
	}
}

func TestRunTraversalForcedOrders(t *testing.T) {
	r := NewRunner()
	fwd := r.RunTraversal("DCFilter", core.FlowBasic, arch.HOM64, cdfg.TraverseForward)
	wgt := r.RunTraversal("DCFilter", core.FlowBasic, arch.HOM64, cdfg.TraverseWeighted)
	if !fwd.OK || !wgt.OK {
		t.Fatalf("traversal cells failed: %q / %q", fwd.Fail, wgt.Fail)
	}
	if fwd == wgt {
		t.Error("different traversals must be distinct cache entries")
	}
}

// TestRunnerObsAndSummary checks the evaluation-wide recorder threading
// (mapper and simulator counters land in one registry) and the per-kernel
// instrumentation roll-up.
func TestRunnerObsAndSummary(t *testing.T) {
	r := NewRunner()
	r.Obs = obs.NewRecorder(obs.NewRegistry(), nil)
	c := r.Run("FIR", core.FlowCAB, arch.HOM64)
	if !c.OK {
		t.Fatalf("FIR cab failed: %s", c.Fail)
	}
	if got := r.Obs.Counter("core.map.calls").Value(); got != 1 {
		t.Errorf("core.map.calls = %d, want 1", got)
	}
	if got := r.Obs.Counter("sim.cycles").Value(); got != c.Cycles {
		t.Errorf("sim.cycles = %d, want %d", got, c.Cycles)
	}
	// Cached cells must not re-record.
	r.Run("FIR", core.FlowCAB, arch.HOM64)
	if got := r.Obs.Counter("core.map.calls").Value(); got != 1 {
		t.Errorf("cached re-run bumped core.map.calls to %d", got)
	}
	sum := r.InstrumentationSummary()
	if !strings.Contains(sum, "FIR") || !strings.Contains(sum, "memo-hit") {
		t.Errorf("summary misses the FIR row or headers:\n%s", sum)
	}
}
