package exp

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/trace"
)

// awareConfigs are the configurations the memory-aware flows are
// evaluated on in Figs 6–8 (the basic flow runs on HOM64).
func awareConfigs() []arch.ConfigName {
	return []arch.ConfigName{arch.HOM64, arch.HOM32, arch.HET1, arch.HET2}
}

// Fig2 reproduces the paper's Fig 2: the per-tile context-memory
// occupancy of the basic (memory-unaware) mapping of matrix
// multiplication on HOM64 — load/store tiles are hot-spots while most
// context memory elsewhere sits unused.
type Fig2 struct {
	Cell     *Cell
	Capacity []int
}

// RunFig2 evaluates the experiment.
func (r *Runner) RunFig2() (*Fig2, error) {
	c := r.Run("MatM", core.FlowBasic, arch.HOM64)
	if !c.OK {
		return nil, fmt.Errorf("exp: Fig2 baseline failed: %s", c.Fail)
	}
	grid := arch.MustGrid(arch.HOM64)
	capacity := make([]int, grid.NumTiles())
	for i := range capacity {
		capacity[i] = grid.Tile(arch.TileID(i)).CMWords
	}
	return &Fig2{Cell: c, Capacity: capacity}, nil
}

// LSUUtilization returns the mean occupancy of the load/store tiles.
func (f *Fig2) LSUUtilization() float64 { return f.meanUtil(0, 8) }

// RestUtilization returns the mean occupancy of the remaining tiles.
func (f *Fig2) RestUtilization() float64 { return f.meanUtil(8, 16) }

func (f *Fig2) meanUtil(from, to int) float64 {
	sum := 0.0
	for i := from; i < to; i++ {
		sum += float64(f.Cell.TileWords[i]) / float64(f.Capacity[i])
	}
	return sum / float64(to-from)
}

// Render prints the figure.
func (f *Fig2) Render() string {
	s := trace.Utilization(
		"Fig 2 — context-memory occupancy, basic mapping of MatM on HOM64 (tiles 1-8 have LSUs)",
		f.Cell.TileWords, f.Capacity)
	s += fmt.Sprintf("  mean occupancy: LS tiles %.0f%%, other tiles %.0f%%\n",
		100*f.LSUUtilization(), 100*f.RestUtilization())
	return s
}

// Fig5 reproduces the paper's Fig 5: the number of moves and pnops under
// the weighted CDFG traversal normalized to the forward traversal, per
// kernel (the paper plots FFT and reports the same trend elsewhere).
type Fig5 struct {
	Kernels    []string
	MoveRatio  []float64 // weighted / forward
	PnopRatio  []float64
	FwdMoves   []int
	WMoves     []int
	FwdPnops   []int
	WPnops     []int
	FailedFwd  []bool
	FailedWght []bool
}

// fig5Jobs lists the cells Fig 5 needs, as prefetch closures.
func (r *Runner) fig5Jobs() []func(*core.Arena, int) {
	var jobs []func(*core.Arena, int)
	for _, name := range kernels.Names() {
		name := name
		for _, trav := range []cdfg.TraversalKind{cdfg.TraverseForward, cdfg.TraverseWeighted} {
			trav := trav
			jobs = append(jobs, func(ar *core.Arena, tid int) { r.runTraversalArena(ar, tid, name, core.FlowBasic, arch.HOM64, trav) })
		}
	}
	return jobs
}

// RunFig5 evaluates the traversal comparison on every kernel with the
// basic flow (traversal is the only variable).
func (r *Runner) RunFig5() (*Fig5, error) {
	r.prefetch(r.fig5Jobs())
	f := &Fig5{}
	for _, name := range kernels.Names() {
		fwd := r.RunTraversal(name, core.FlowBasic, arch.HOM64, cdfg.TraverseForward)
		wgt := r.RunTraversal(name, core.FlowBasic, arch.HOM64, cdfg.TraverseWeighted)
		f.Kernels = append(f.Kernels, name)
		f.FailedFwd = append(f.FailedFwd, !fwd.OK)
		f.FailedWght = append(f.FailedWght, !wgt.OK)
		if !fwd.OK || !wgt.OK {
			f.MoveRatio = append(f.MoveRatio, 0)
			f.PnopRatio = append(f.PnopRatio, 0)
			f.FwdMoves = append(f.FwdMoves, 0)
			f.WMoves = append(f.WMoves, 0)
			f.FwdPnops = append(f.FwdPnops, 0)
			f.WPnops = append(f.WPnops, 0)
			continue
		}
		f.FwdMoves = append(f.FwdMoves, fwd.Moves)
		f.WMoves = append(f.WMoves, wgt.Moves)
		f.FwdPnops = append(f.FwdPnops, fwd.Pnops)
		f.WPnops = append(f.WPnops, wgt.Pnops)
		f.MoveRatio = append(f.MoveRatio, ratio(wgt.Moves, fwd.Moves))
		f.PnopRatio = append(f.PnopRatio, ratio(wgt.Pnops, fwd.Pnops))
	}
	return f, nil
}

func ratio(a, b int) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return float64(a)
	}
	return float64(a) / float64(b)
}

// Render prints the figure.
func (f *Fig5) Render() string {
	t := trace.NewTable(
		"Fig 5 — weighted vs forward CDFG traversal (basic flow, HOM64): moves and pnops, weighted normalized to forward",
		"kernel", "moves fwd", "moves wgt", "move ratio", "pnops fwd", "pnops wgt", "pnop ratio")
	for i, k := range f.Kernels {
		t.Add(k, f.FwdMoves[i], f.WMoves[i], f.MoveRatio[i], f.FwdPnops[i], f.WPnops[i], f.PnopRatio[i])
	}
	return t.String()
}

// LatencyFig is the shared shape of Figs 6, 7 and 8: per kernel and
// configuration, the latency of a mapping flow normalized to the basic
// mapping on HOM64; zero means no mapping was found.
type LatencyFig struct {
	Flow    core.Flow
	Kernels []string
	Configs []arch.ConfigName
	// Norm[k][c] is normalized latency (0 = no mapping).
	Norm [][]float64
	// Cells[k][c] holds the full evaluation.
	Cells [][]*Cell
	// Base[k] is the basic/HOM64 baseline cell.
	Base []*Cell
}

// latencyFigJobs lists the cells one of Figs 6–8 needs.
func (r *Runner) latencyFigJobs(flow core.Flow) []func(*core.Arena, int) {
	var jobs []func(*core.Arena, int)
	for _, name := range kernels.Names() {
		name := name
		jobs = append(jobs, func(ar *core.Arena, tid int) { r.baselineArena(ar, tid, name) })
		for _, cfg := range awareConfigs() {
			cfg := cfg
			jobs = append(jobs, func(ar *core.Arena, tid int) { r.runArena(ar, tid, name, flow, cfg) })
		}
	}
	return jobs
}

// RunLatencyFig evaluates one of Figs 6–8 for the given flow.
func (r *Runner) RunLatencyFig(flow core.Flow) (*LatencyFig, error) {
	r.prefetch(r.latencyFigJobs(flow))
	f := &LatencyFig{Flow: flow, Configs: awareConfigs()}
	for _, name := range kernels.Names() {
		base := r.Baseline(name)
		if !base.OK {
			return nil, fmt.Errorf("exp: basic baseline for %s failed: %s", name, base.Fail)
		}
		var norms []float64
		var cells []*Cell
		for _, cfg := range f.Configs {
			c := r.Run(name, flow, cfg)
			cells = append(cells, c)
			if c.OK {
				norms = append(norms, float64(c.Cycles)/float64(base.Cycles))
			} else {
				norms = append(norms, 0)
			}
		}
		f.Kernels = append(f.Kernels, name)
		f.Norm = append(f.Norm, norms)
		f.Cells = append(f.Cells, cells)
		f.Base = append(f.Base, base)
	}
	return f, nil
}

// Failures counts (kernel, config) cells with no mapping.
func (f *LatencyFig) Failures() int {
	n := 0
	for _, row := range f.Norm {
		for _, v := range row {
			if v == 0 {
				n++
			}
		}
	}
	return n
}

// Render prints the figure.
func (f *LatencyFig) Render() string {
	name := map[core.Flow]string{
		core.FlowACMAP: "Fig 6 — latency, basic+ACMAP",
		core.FlowECMAP: "Fig 7 — latency, basic+ACMAP+ECMAP",
		core.FlowCAB:   "Fig 8 — latency, basic+ACMAP+ECMAP+CAB",
	}[f.Flow]
	headers := []string{"kernel"}
	for _, c := range f.Configs {
		headers = append(headers, string(c))
	}
	t := trace.NewTable(name+" normalized to basic mapping on HOM64 (0 = no mapping)", headers...)
	for i, k := range f.Kernels {
		row := []any{k}
		for _, v := range f.Norm[i] {
			if v == 0 {
				row = append(row, "0 (none)")
			} else {
				row = append(row, v)
			}
		}
		t.Add(row...)
	}
	return t.String() + fmt.Sprintf("cells without a mapping: %d\n", f.Failures())
}

// Fig9 reproduces the compilation-time comparison: the average mapping
// time of each flow over all kernels (and, for the aware flows, over the
// aware configurations), normalized to the basic flow.
type Fig9 struct {
	Flows   []core.Flow
	Seconds []float64 // average wall-clock per mapping
	Norm    []float64 // normalized to basic
}

// fig9Jobs lists the cells Fig 9 needs: the full flow×kernel×config grid.
func (r *Runner) fig9Jobs() []func(*core.Arena, int) {
	var jobs []func(*core.Arena, int)
	for _, flow := range core.Flows() {
		flow := flow
		for _, name := range kernels.Names() {
			name := name
			if flow == core.FlowBasic {
				jobs = append(jobs, func(ar *core.Arena, tid int) { r.runArena(ar, tid, name, flow, arch.HOM64) })
				continue
			}
			for _, cfg := range awareConfigs() {
				cfg := cfg
				jobs = append(jobs, func(ar *core.Arena, tid int) { r.runArena(ar, tid, name, flow, cfg) })
			}
		}
	}
	return jobs
}

// RunFig9 evaluates the compile-time figure. Mapping attempts that end
// without a solution still count — the paper's compile times include the
// full pruning work.
func (r *Runner) RunFig9() (*Fig9, error) {
	r.prefetch(r.fig9Jobs())
	f := &Fig9{Flows: core.Flows()}
	for _, flow := range f.Flows {
		total, n := 0.0, 0
		for _, name := range kernels.Names() {
			if flow == core.FlowBasic {
				c := r.Run(name, flow, arch.HOM64)
				total += c.CompileTime.Seconds()
				n++
				continue
			}
			for _, cfg := range awareConfigs() {
				c := r.Run(name, flow, cfg)
				total += c.CompileTime.Seconds()
				n++
			}
		}
		f.Seconds = append(f.Seconds, total/float64(n))
	}
	for _, s := range f.Seconds {
		f.Norm = append(f.Norm, s/f.Seconds[0])
	}
	return f, nil
}

// Render prints the figure.
func (f *Fig9) Render() string {
	labels := make([]string, len(f.Flows))
	for i, fl := range f.Flows {
		labels[i] = fl.String()
	}
	s := trace.Bars("Fig 9 — average compilation time per mapping, normalized to the basic flow", 40, labels, f.Norm)
	for i := range f.Flows {
		s += fmt.Sprintf("  %-22s %.3f s avg\n", labels[i], f.Seconds[i])
	}
	return s
}

// Fig10 reproduces the execution-time comparison against the or1k CPU:
// basic mapping on HOM64 plus the full context-aware mapping on HET1 and
// HET2, as CPU-cycles / CGRA-cycles speedups.
type Fig10 struct {
	Kernels   []string
	CPUCycles []int64
	// Speedup[k] = {basic HOM64, aware HET1, aware HET2}; 0 = no mapping.
	Speedup [][3]float64
}

// cpuCompareJobs lists the cells Fig 10 and Table II share: the CPU
// baseline plus basic/HOM64 and CAB on the heterogeneous configs.
func (r *Runner) cpuCompareJobs() []func(*core.Arena, int) {
	var jobs []func(*core.Arena, int)
	for _, name := range kernels.Names() {
		name := name
		jobs = append(jobs,
			// Cache warm-up only: the serial pass reports CPU errors.
			func(*core.Arena, int) { _, _ = r.CPU(name) },
			func(ar *core.Arena, tid int) { r.runArena(ar, tid, name, core.FlowBasic, arch.HOM64) },
			func(ar *core.Arena, tid int) { r.runArena(ar, tid, name, core.FlowCAB, arch.HET1) },
			func(ar *core.Arena, tid int) { r.runArena(ar, tid, name, core.FlowCAB, arch.HET2) })
	}
	return jobs
}

// RunFig10 evaluates the CPU comparison.
func (r *Runner) RunFig10() (*Fig10, error) {
	r.prefetch(r.cpuCompareJobs())
	f := &Fig10{}
	for _, name := range kernels.Names() {
		cc, err := r.CPU(name)
		if err != nil {
			return nil, err
		}
		var s [3]float64
		cells := []*Cell{
			r.Run(name, core.FlowBasic, arch.HOM64),
			r.Run(name, core.FlowCAB, arch.HET1),
			r.Run(name, core.FlowCAB, arch.HET2),
		}
		for i, c := range cells {
			if c.OK {
				s[i] = float64(cc.Cycles) / float64(c.Cycles)
			}
		}
		f.Kernels = append(f.Kernels, name)
		f.CPUCycles = append(f.CPUCycles, cc.Cycles)
		f.Speedup = append(f.Speedup, s)
	}
	return f, nil
}

// MeanSpeedup returns the average speedup of column i over kernels with
// a mapping.
func (f *Fig10) MeanSpeedup(col int) float64 {
	sum, n := 0.0, 0
	for _, s := range f.Speedup {
		if s[col] > 0 {
			sum += s[col]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Render prints the figure.
func (f *Fig10) Render() string {
	t := trace.NewTable(
		"Fig 10 — speedup over the or1k CPU (CPU cycles / CGRA cycles)",
		"kernel", "CPU cycles", "basic HOM64", "aware HET1", "aware HET2")
	for i, k := range f.Kernels {
		t.Add(k, f.CPUCycles[i], f.Speedup[i][0], f.Speedup[i][1], f.Speedup[i][2])
	}
	return t.String() + fmt.Sprintf("mean speedup: basic %.1fx, aware HET1 %.1fx, aware HET2 %.1fx\n",
		f.MeanSpeedup(0), f.MeanSpeedup(1), f.MeanSpeedup(2))
}

// Fig11 reproduces the area comparison of the CPU and the four CGRA
// configurations.
type Fig11 struct {
	Designs []string
	Areas   []float64 // µm²
	PerCPU  []float64 // normalized to the CPU
	Break   []string  // rendered breakdowns
}

// RunFig11 evaluates the area figure.
func (r *Runner) RunFig11() (*Fig11, error) {
	f := &Fig11{}
	cpuArea := r.Params.CPUArea()
	add := func(name string, a interface {
		Total() float64
	}, detail string) {
		f.Designs = append(f.Designs, name)
		f.Areas = append(f.Areas, a.Total())
		f.PerCPU = append(f.PerCPU, a.Total()/cpuArea.Total())
		f.Break = append(f.Break, detail)
	}
	add("CPU", cpuArea, fmt.Sprintf("core %.0f, instr mem %.0f, data mem %.0f",
		cpuArea.PENonCM, cpuArea.CM, cpuArea.DataMem))
	for _, cfg := range awareConfigs() {
		a := r.Params.CGRAArea(arch.MustGrid(cfg))
		add(string(cfg), a, fmt.Sprintf("PEs %.0f, CM %.0f, LSU %.0f, global %.0f, data mem %.0f",
			a.PENonCM, a.CM, a.LSU, a.Global, a.DataMem))
	}
	return f, nil
}

// Render prints the figure.
func (f *Fig11) Render() string {
	t := trace.NewTable("Fig 11 — area comparison (µm², 28nm-style model)",
		"design", "total", "vs CPU", "breakdown")
	for i := range f.Designs {
		t.Add(f.Designs[i], fmt.Sprintf("%.0f", f.Areas[i]),
			fmt.Sprintf("%.2fx", f.PerCPU[i]), f.Break[i])
	}
	return t.String()
}

// TableII reproduces the energy table: per kernel, the energy of the CPU,
// the basic mapping on HOM64, and the context-aware mapping on HET1 and
// HET2, with the paper's gain columns.
type TableII struct {
	Kernels []string
	CPU     []float64 // µJ
	Basic   []float64 // µJ, 0 = no mapping
	HET1    []float64
	HET2    []float64
}

// RunTableII evaluates the energy table.
func (r *Runner) RunTableII() (*TableII, error) {
	r.prefetch(r.cpuCompareJobs())
	t := &TableII{}
	for _, name := range kernels.Names() {
		cc, err := r.CPU(name)
		if err != nil {
			return nil, err
		}
		t.Kernels = append(t.Kernels, name)
		t.CPU = append(t.CPU, cc.Energy.Total())
		t.Basic = append(t.Basic, energyOf(r.Run(name, core.FlowBasic, arch.HOM64)))
		t.HET1 = append(t.HET1, energyOf(r.Run(name, core.FlowCAB, arch.HET1)))
		t.HET2 = append(t.HET2, energyOf(r.Run(name, core.FlowCAB, arch.HET2)))
	}
	return t, nil
}

func energyOf(c *Cell) float64 {
	if !c.OK {
		return 0
	}
	return c.Energy.Total()
}

// GainVsBasic returns the mean HET-over-basic energy gain over kernels
// where both mapped (averaging HET1 and HET2 like the paper's summary).
func (t *TableII) GainVsBasic() (mean, min, max float64) {
	min, max = 1e9, 0.0
	sum, n := 0.0, 0
	for i := range t.Kernels {
		for _, het := range []float64{t.HET1[i], t.HET2[i]} {
			if t.Basic[i] > 0 && het > 0 {
				g := t.Basic[i] / het
				sum += g
				n++
				if g < min {
					min = g
				}
				if g > max {
					max = g
				}
			}
		}
	}
	if n == 0 {
		return 0, 0, 0
	}
	return sum / float64(n), min, max
}

// GainVsCPU returns the mean aware-mapping energy gain over the CPU.
func (t *TableII) GainVsCPU() (mean, min, max float64) {
	min, max = 1e9, 0.0
	sum, n := 0.0, 0
	for i := range t.Kernels {
		for _, het := range []float64{t.HET1[i], t.HET2[i]} {
			if het > 0 {
				g := t.CPU[i] / het
				sum += g
				n++
				if g < min {
					min = g
				}
				if g > max {
					max = g
				}
			}
		}
	}
	if n == 0 {
		return 0, 0, 0
	}
	return sum / float64(n), min, max
}

// Render prints the table.
func (t *TableII) Render() string {
	tb := trace.NewTable("Table II — energy (µJ): CPU vs basic/HOM64 vs context-aware/HET1,HET2",
		"kernel", "CPU", "basic HOM64", "xCPU", "aware HET1", "xCPU", "aware HET2", "xCPU")
	gain := func(cpu, v float64) string {
		if v == 0 {
			return "-"
		}
		return fmt.Sprintf("%.0fx", cpu/v)
	}
	for i, k := range t.Kernels {
		tb.Add(k,
			fmt.Sprintf("%.4f", t.CPU[i]),
			fmt.Sprintf("%.4f", t.Basic[i]), gain(t.CPU[i], t.Basic[i]),
			fmt.Sprintf("%.4f", t.HET1[i]), gain(t.CPU[i], t.HET1[i]),
			fmt.Sprintf("%.4f", t.HET2[i]), gain(t.CPU[i], t.HET2[i]))
	}
	s := tb.String()
	m, lo, hi := t.GainVsBasic()
	s += fmt.Sprintf("context-aware vs basic mapping energy gain: avg %.2fx (min %.2fx, max %.2fx)\n", m, lo, hi)
	m, lo, hi = t.GainVsCPU()
	s += fmt.Sprintf("context-aware vs CPU energy gain:           avg %.1fx (min %.1fx, max %.1fx)\n", m, lo, hi)
	return s
}

// DeadContext is the dead-context-elimination table: per kernel, the
// context words the mapper emitted and the words the static analyzer
// (internal/static) proves strippable, for the basic mapping on HOM64
// and the context-aware mapping on HET1 and HET2 — the same cell trio
// Table II reports energy for.
type DeadContext struct {
	Kernels []string
	// Cells[k] = {basic HOM64, aware HET1, aware HET2}; nil = no mapping.
	Cells [][3]*Cell
}

// RunDeadContext evaluates the dead-context table.
func (r *Runner) RunDeadContext() (*DeadContext, error) {
	r.prefetch(r.cpuCompareJobs())
	t := &DeadContext{}
	cellOrNil := func(c *Cell) *Cell {
		if !c.OK {
			return nil
		}
		return c
	}
	for _, name := range kernels.Names() {
		t.Kernels = append(t.Kernels, name)
		t.Cells = append(t.Cells, [3]*Cell{
			cellOrNil(r.Run(name, core.FlowBasic, arch.HOM64)),
			cellOrNil(r.Run(name, core.FlowCAB, arch.HET1)),
			cellOrNil(r.Run(name, core.FlowCAB, arch.HET2)),
		})
	}
	return t, nil
}

// TotalSaved sums the reclaimed words across all mapped cells.
func (t *DeadContext) TotalSaved() (saved, words int) {
	for _, row := range t.Cells {
		for _, c := range row {
			if c != nil {
				saved += c.DeadWords
				words += c.TotalWords
			}
		}
	}
	return saved, words
}

// Render prints the table.
func (t *DeadContext) Render() string {
	tb := trace.NewTable("Dead context — words reclaimed by static dead-context elimination",
		"kernel", "basic HOM64", "dead", "aware HET1", "dead", "aware HET2", "dead")
	col := func(c *Cell) (string, string) {
		if c == nil {
			return "-", "-"
		}
		dead := fmt.Sprintf("%d", c.DeadWords)
		if c.DeadWords > 0 {
			dead = fmt.Sprintf("%d (%.0f%%)", c.DeadWords, 100*float64(c.DeadWords)/float64(c.TotalWords))
		}
		return fmt.Sprintf("%d", c.TotalWords), dead
	}
	for i, k := range t.Kernels {
		w0, d0 := col(t.Cells[i][0])
		w1, d1 := col(t.Cells[i][1])
		w2, d2 := col(t.Cells[i][2])
		tb.Add(k, w0, d0, w1, d1, w2, d2)
	}
	s := tb.String()
	saved, words := t.TotalSaved()
	pct := 0.0
	if words > 0 {
		pct = 100 * float64(saved) / float64(words)
	}
	s += fmt.Sprintf("dead-context elimination reclaims %d of %d context words (%.1f%%) across mapped cells\n",
		saved, words, pct)
	return s
}

// PrefetchAll warms the cell cache for the whole evaluation on the
// runner's worker pool. RenderAll calls it first so every figure then
// renders from cached cells; calling it up front is also the cheapest way
// to parallelize a custom sequence of figure runs.
func (r *Runner) PrefetchAll() {
	var jobs []func(*core.Arena, int)
	jobs = append(jobs, func(ar *core.Arena, tid int) { r.runArena(ar, tid, "MatM", core.FlowBasic, arch.HOM64) })
	jobs = append(jobs, r.fig5Jobs()...)
	// fig9Jobs covers the latency figures' grid (Figs 6-8) as well.
	jobs = append(jobs, r.fig9Jobs()...)
	jobs = append(jobs, r.cpuCompareJobs()...)
	r.prefetch(jobs)
}

// RenderAll runs every experiment and concatenates the reports — the
// whole evaluation section in one call.
func (r *Runner) RenderAll() (string, error) {
	r.PrefetchAll()
	var sb strings.Builder
	f2, err := r.RunFig2()
	if err != nil {
		return "", err
	}
	sb.WriteString(f2.Render() + "\n")
	f5, err := r.RunFig5()
	if err != nil {
		return "", err
	}
	sb.WriteString(f5.Render() + "\n")
	for _, flow := range []core.Flow{core.FlowACMAP, core.FlowECMAP, core.FlowCAB} {
		lf, err := r.RunLatencyFig(flow)
		if err != nil {
			return "", err
		}
		sb.WriteString(lf.Render() + "\n")
	}
	f9, err := r.RunFig9()
	if err != nil {
		return "", err
	}
	sb.WriteString(f9.Render() + "\n")
	f10, err := r.RunFig10()
	if err != nil {
		return "", err
	}
	sb.WriteString(f10.Render() + "\n")
	f11, err := r.RunFig11()
	if err != nil {
		return "", err
	}
	sb.WriteString(f11.Render() + "\n")
	t2, err := r.RunTableII()
	if err != nil {
		return "", err
	}
	sb.WriteString(t2.Render() + "\n")
	dc, err := r.RunDeadContext()
	if err != nil {
		return "", err
	}
	sb.WriteString(dc.Render())
	return sb.String(), nil
}
