package exp

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/trace"
)

// GapCell compares the heuristic and exact backends on one kernel × flow
// point: total context words from each, and whether the exact search
// proved optimality before exhausting its node budget. One exact run
// yields both numbers — its warm start is exactly the heuristic mapping.
type GapCell struct {
	Kernel string
	Flow   core.Flow

	// Heuristic is the warm start's total words, -1 when the heuristic
	// found no mapping; Exact is the search result's. Fail is non-empty
	// when neither backend mapped the cell.
	Heuristic int
	Exact     int
	Proven    bool
	Fail      string
}

// Gap returns the relative improvement of the exact search over the
// heuristic, in percent of the heuristic's words (0 when equal or when
// either side is missing).
func (c *GapCell) Gap() float64 {
	if c.Fail != "" || c.Heuristic <= 0 || c.Exact >= c.Heuristic {
		return 0
	}
	return 100 * float64(c.Heuristic-c.Exact) / float64(c.Heuristic)
}

// GapTable is the optimality-gap experiment: every suite kernel × flow on
// one CM configuration, heuristic vs bounded exact search.
type GapTable struct {
	Config arch.ConfigName
	Budget int
	Cells  []*GapCell
}

// RunGapTable maps every suite kernel under all four flows on the given
// configuration with the exact backend at the given node budget (0 defers
// to CGRA_EXACT_NODE_BUDGET, then the default) and tabulates the
// heuristic-vs-exact context-word gap. Cells fan out on the runner's
// worker pool; the table is deterministic at any parallelism.
func (r *Runner) RunGapTable(config arch.ConfigName, budget int) (*GapTable, error) {
	flows := []core.Flow{core.FlowBasic, core.FlowACMAP, core.FlowECMAP, core.FlowCAB}
	names := kernels.Names()
	t := &GapTable{Config: config, Budget: budget, Cells: make([]*GapCell, len(names)*len(flows))}
	jobs := make([]func(*core.Arena, int), 0, len(t.Cells))
	for ki, name := range names {
		for fi, flow := range flows {
			ki, fi, name, flow := ki, fi, name, flow
			jobs = append(jobs, func(ar *core.Arena, tid int) {
				t.Cells[ki*len(flows)+fi] = r.gapCell(ar, tid, name, flow, config, budget)
			})
		}
	}
	r.prefetch(jobs)
	for _, c := range t.Cells {
		if c == nil {
			return nil, fmt.Errorf("exp: gap table cell missing after prefetch")
		}
	}
	return t, nil
}

func (r *Runner) gapCell(ar *core.Arena, tid int, kernel string, flow core.Flow, config arch.ConfigName, budget int) *GapCell {
	c := &GapCell{Kernel: kernel, Flow: flow, Heuristic: -1, Exact: -1}
	k, err := kernels.ByName(kernel)
	if err != nil {
		c.Fail = err.Error()
		return c
	}
	opt := core.DefaultOptions(flow).WithArena(ar)
	opt.ExactNodeBudget = budget
	opt.Obs = r.Obs
	opt.ObsTID = tid
	m, err := (core.ExactBackend{}).Map(context.Background(), k.Build(), arch.MustGrid(config), opt)
	if err != nil {
		c.Fail = err.Error()
		return c
	}
	c.Heuristic = m.Stats.Exact.WarmWords
	c.Exact = m.TotalWords()
	c.Proven = m.Stats.Exact.Proven
	return c
}

// Render prints the gap table in the repo's table style.
func (t *GapTable) Render() string {
	budget := "default"
	if t.Budget > 0 {
		budget = fmt.Sprint(t.Budget)
	}
	tab := trace.NewTable(
		fmt.Sprintf("optimality gap on %s (exact node budget %s)", t.Config, budget),
		"kernel", "flow", "heuristic", "exact", "gap", "proven")
	for _, c := range t.Cells {
		if c.Fail != "" {
			tab.Add(c.Kernel, c.Flow, "-", "-", "-", c.Fail)
			continue
		}
		heur := "-"
		if c.Heuristic >= 0 {
			heur = fmt.Sprint(c.Heuristic)
		}
		proven := "no"
		if c.Proven {
			proven = "yes"
		}
		tab.Add(c.Kernel, c.Flow, heur, c.Exact, fmt.Sprintf("%.1f%%", c.Gap()), proven)
	}
	return tab.String()
}
