package exp

import (
	"strings"
	"testing"

	"repro/internal/arch"
)

// TestRunGapTable pins the optimality-gap experiment: one exact run per
// cell yields both the heuristic (warm-start) and exact word counts, the
// exact side never loses to its own warm start, and the rendered table is
// deterministic at any parallelism. The budget is tiny and explicit — the
// experiment's shape, not search depth, is under test.
func TestRunGapTable(t *testing.T) {
	const budget = 300
	r := NewRunner()
	r.Workers = 4
	tab, err := r.RunGapTable(arch.HOM64, budget)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Cells) == 0 {
		t.Fatal("empty gap table")
	}
	for _, c := range tab.Cells {
		if c.Fail != "" {
			t.Errorf("%s/%s: %s", c.Kernel, c.Flow, c.Fail)
			continue
		}
		if c.Exact < 0 {
			t.Errorf("%s/%s: exact backend returned no mapping without failing", c.Kernel, c.Flow)
		}
		if c.Heuristic >= 0 && c.Exact > c.Heuristic {
			t.Errorf("%s/%s: exact %d words worse than its heuristic warm start %d",
				c.Kernel, c.Flow, c.Exact, c.Heuristic)
		}
		if g := c.Gap(); g < 0 || g > 100 {
			t.Errorf("%s/%s: gap %.1f%% out of range", c.Kernel, c.Flow, g)
		}
	}
	out := tab.Render()
	if !strings.Contains(out, "optimality gap on HOM64") || !strings.Contains(out, "FIR") {
		t.Errorf("render missing expected content:\n%s", out)
	}

	serial := NewRunner()
	serial.Workers = 1
	tab2, err := serial.RunGapTable(arch.HOM64, budget)
	if err != nil {
		t.Fatal(err)
	}
	if out2 := tab2.Render(); out2 != out {
		t.Errorf("gap table differs between 1 and 4 workers:\n%s\nvs\n%s", out2, out)
	}
}
