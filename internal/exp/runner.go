// Package exp regenerates every table and figure of the paper's
// evaluation section (Figs 2, 5–11 and Table II) from end-to-end runs:
// each cell maps a kernel with the selected flow, assembles it, simulates
// it cycle-accurately with functional verification against the golden
// reference, and derives energy from the activity counters.
package exp

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/kernels"
	"repro/internal/mapcache"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/static"
	"repro/internal/trace"
)

// Cell is one (kernel, flow, configuration) evaluation point.
type Cell struct {
	Kernel string
	Flow   core.Flow
	Config arch.ConfigName

	// OK is false when the flow found no mapping (the zero bars of Figs
	// 6–8); Fail carries the reason.
	OK   bool
	Fail string

	Cycles      int64
	Stalls      int64
	CompileTime time.Duration
	TileWords   []int
	MaxWords    int
	TotalWords  int
	Ops         int
	Moves       int
	Pnops       int
	Energy      power.EnergyBreakdown
	MapStats    core.Stats
	// DeadWords is the context-word reduction dead-context elimination
	// (internal/static) achieves on the assembled bitstream;
	// StrippedWords is the word count after the rewrite, so
	// TotalWords = StrippedWords + DeadWords.
	DeadWords     int
	StrippedWords int
}

// CPUCell is a kernel's baseline execution.
type CPUCell struct {
	Kernel string
	Cycles int64
	Instrs int64
	Energy power.EnergyBreakdown
}

type cellKey struct {
	kernel string
	flow   core.Flow
	config arch.ConfigName
	trav   cdfg.TraversalKind
	forced bool
}

// Runner evaluates and caches cells. It is safe for concurrent use: a
// cell requested from several goroutines is evaluated exactly once, and
// the figure runners prefetch their cells on a pool of Workers goroutines
// before rendering serially, so the rendered output is byte-identical at
// any parallelism.
type Runner struct {
	Params power.Params
	// Workers bounds the prefetch pool; 0 means runtime.GOMAXPROCS(0)
	// and 1 restores fully serial evaluation.
	Workers int
	// Obs, when non-nil, is threaded into every mapper and simulator run
	// the evaluation performs, so one recorder aggregates the whole
	// experiment sweep. Cached cells do not re-record: the registry
	// reflects the work actually executed.
	Obs *obs.Recorder
	// Batch, when > 1, simulates each cell through the batched engine
	// with that many identical input lanes instead of one scalar
	// verified run. Every lane must reproduce lane 0 exactly; lane 0
	// feeds the cell's metrics, so the rendered tables are identical at
	// any batch width.
	Batch int
	// Cache, when non-nil, routes every cell's mapping step through the
	// content-addressed mapping cache: repeated evaluations (and, with a
	// disk tier, repeated processes) reuse the compiled bitstream instead
	// of re-running the search. Simulation, golden checks and dead-context
	// analysis still run per cell, so cached cells render identically.
	Cache *mapcache.Cache

	mu          sync.Mutex
	cells       map[cellKey]*Cell
	cpus        map[string]*CPUCell
	inflight    map[cellKey]chan struct{}
	cpuInflight map[string]chan struct{}
}

// NewRunner returns a Runner with the default power parameters.
func NewRunner() *Runner {
	return &Runner{
		Params:      power.Default(),
		cells:       map[cellKey]*Cell{},
		cpus:        map[string]*CPUCell{},
		inflight:    map[cellKey]chan struct{}{},
		cpuInflight: map[string]chan struct{}{},
	}
}

// prefetch runs the jobs on the runner's worker pool and waits for all of
// them. Jobs are cache-warming closures (r.Run / r.CPU calls); their
// results land in the cell cache, so the serial rendering that follows is
// independent of execution order. Each worker owns one mapper arena for
// its whole lifetime — every cell it evaluates reuses the same search
// scratch memory instead of allocating per (kernel, config) — and arenas
// never influence mapping results, so the byte-identical-output guarantee
// is unaffected. The worker index doubles as the trace track (obs tid)
// each job's spans land on, so concurrent cells reconstruct as parallel
// per-worker timelines instead of interleaving on one track.
func (r *Runner) prefetch(jobs []func(*core.Arena, int)) {
	n := r.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > len(jobs) {
		n = len(jobs)
	}
	if n <= 1 {
		ar := core.NewArena()
		for _, j := range jobs {
			j(ar, 0)
		}
		return
	}
	ch := make(chan func(*core.Arena, int))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			ar := core.NewArena()
			for j := range ch {
				j(ar, tid)
			}
		}(i)
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
}

// Run evaluates one cell with the flow's default traversal.
func (r *Runner) Run(kernel string, flow core.Flow, config arch.ConfigName) *Cell {
	return r.runArena(nil, 0, kernel, flow, config)
}

// runArena is Run with an optional caller-owned mapper arena and trace
// track (prefetch workers thread theirs through so all their cells share
// scratch memory and trace on the worker's tid).
func (r *Runner) runArena(ar *core.Arena, tid int, kernel string, flow core.Flow, config arch.ConfigName) *Cell {
	opt := core.DefaultOptions(flow).WithArena(ar)
	opt.ObsTID = tid
	return r.run(kernel, flow, config, opt)
}

// RunTraversal evaluates a cell forcing the CDFG traversal order (the
// Fig 5 experiment).
func (r *Runner) RunTraversal(kernel string, flow core.Flow, config arch.ConfigName, trav cdfg.TraversalKind) *Cell {
	return r.runTraversalArena(nil, 0, kernel, flow, config, trav)
}

func (r *Runner) runTraversalArena(ar *core.Arena, tid int, kernel string, flow core.Flow, config arch.ConfigName, trav cdfg.TraversalKind) *Cell {
	opt := core.DefaultOptions(flow).WithArena(ar)
	opt.ObsTID = tid
	opt.Traversal = trav
	opt.ForceTraversal = true
	return r.run(kernel, flow, config, opt)
}

func (r *Runner) run(kernel string, flow core.Flow, config arch.ConfigName, opt core.Options) *Cell {
	key := cellKey{kernel, flow, config, opt.Traversal, opt.ForceTraversal}
	r.mu.Lock()
	for {
		if c, ok := r.cells[key]; ok {
			r.mu.Unlock()
			return c
		}
		ch, busy := r.inflight[key]
		if !busy {
			break
		}
		// Another goroutine is evaluating this cell; wait for it.
		r.mu.Unlock()
		<-ch
		r.mu.Lock()
	}
	ch := make(chan struct{})
	r.inflight[key] = ch
	r.mu.Unlock()
	c := r.evaluate(kernel, flow, config, opt)
	r.mu.Lock()
	r.cells[key] = c
	delete(r.inflight, key)
	r.mu.Unlock()
	close(ch)
	return c
}

// evaluate wraps one cell evaluation in an exp.cell span carrying the
// cell's identity, so offline analysis (cgratrace) can group every mapper
// and simulator span nested under it by kernel × flow × config.
func (r *Runner) evaluate(kernel string, flow core.Flow, config arch.ConfigName, opt core.Options) *Cell {
	sp := r.Obs.StartSpan("exp.cell", "exp", opt.ObsTID)
	c := r.evaluateCell(kernel, flow, config, opt)
	sp.End(map[string]any{
		"kernel": kernel, "flow": flow.String(), "config": string(config), "ok": c.OK,
	})
	return c
}

func (r *Runner) evaluateCell(kernel string, flow core.Flow, config arch.ConfigName, opt core.Options) *Cell {
	c := &Cell{Kernel: kernel, Flow: flow, Config: config}
	k, err := kernels.ByName(kernel)
	if err != nil {
		c.Fail = err.Error()
		return c
	}
	g := k.Build()
	grid := arch.MustGrid(config)
	opt.Obs = r.Obs
	var prog *asm.Program
	var meta mapcache.Meta
	var assemble func() (*asm.Program, error)
	if r.Cache != nil {
		cres, err := r.Cache.GetOrStore(
			mapcache.Request{Graph: g, Grid: grid, Opt: opt},
			func() (mapcache.Computed, error) {
				m, err := core.Map(g, grid, opt)
				if err != nil {
					return mapcache.Computed{}, err
				}
				return mapcache.Computed{Mapping: m, Seed: opt.Seed, Backend: core.DefaultBackend().Name()}, nil
			})
		if err != nil {
			c.Fail = err.Error()
			return c
		}
		prog, meta = cres.Program, cres.Meta
	} else {
		m, err := core.Map(g, grid, opt)
		if err != nil {
			c.Fail = err.Error()
			return c
		}
		meta = mapcache.Meta{
			Stats: m.Stats, TileWords: m.TileWords(),
			Ops: m.TotalOps(), Moves: m.TotalMoves(), Pnops: m.TotalPnops(),
		}
		assemble = func() (*asm.Program, error) { return asm.Assemble(m) }
	}
	c.CompileTime = meta.Stats.CompileTime
	c.MapStats = meta.Stats
	c.TileWords = meta.TileWords
	for _, w := range c.TileWords {
		c.TotalWords += w
		if w > c.MaxWords {
			c.MaxWords = w
		}
	}
	c.Ops, c.Moves, c.Pnops = meta.Ops, meta.Moves, meta.Pnops

	// The basic flow ignores memory constraints; a mapping that overflows
	// the configuration cannot run on it (this is why the paper runs
	// basic mappings on HOM64 only). The check works off the per-tile word
	// counts so cache hits — which carry no Mapping — are screened the
	// same way as fresh maps.
	for i, words := range c.TileWords {
		if words > grid.Tile(arch.TileID(i)).CMWords {
			c.Fail = fmt.Sprintf("mapping overflows context memory of tile %d", i+1)
			return c
		}
	}
	if prog == nil {
		var err error
		if prog, err = assemble(); err != nil {
			c.Fail = err.Error()
			return c
		}
	}
	// Dead-context elimination statistics: how many of the mapping's
	// context words the static analyzer proves removable. The rewrite is
	// not loaded — the cell's timing and energy report the bitstream the
	// mapper produced — but the reduction is part of the evaluation.
	a, err := static.Analyze(prog, static.WithObs(r.Obs))
	if err != nil {
		c.Fail = fmt.Sprintf("static analysis: %v", err)
		return c
	}
	if _, rep, err := static.Strip(prog, a, static.WithObs(r.Obs)); err != nil {
		c.Fail = fmt.Sprintf("dead-context elimination: %v", err)
		return c
	} else {
		c.DeadWords = rep.WordsSaved()
		c.StrippedWords = rep.WordsAfter
	}
	s, err := sim.New(prog, sim.WithObs(r.Obs))
	if err != nil {
		c.Fail = err.Error()
		return c
	}
	res, mem, err := r.simulate(s, k)
	if err != nil {
		c.Fail = err.Error()
		return c
	}
	if err := k.Check(mem); err != nil {
		c.Fail = err.Error()
		return c
	}
	c.OK = true
	c.Cycles = res.Cycles
	c.Stalls = res.StallCycles
	c.Energy = r.Params.CGRAEnergy(grid, res)
	return c
}

// simulate executes the assembled kernel: the interpreter-verified
// scalar run by default, or — when r.Batch > 1 — one batched engine
// pass over Batch identical input lanes, verified per lane and
// cross-checked so every lane reproduces lane 0 bit for bit.
func (r *Runner) simulate(s *sim.Sim, k kernels.Kernel) (*sim.Result, cdfg.Memory, error) {
	if r.Batch <= 1 {
		res, _, mem, err := s.RunVerified(k.Init())
		return res, mem, err
	}
	lanes := make([]cdfg.Memory, r.Batch)
	for l := range lanes {
		lanes[l] = k.Init()
	}
	results, _, mems, err := s.Engine().RunBatchVerified(lanes)
	if err != nil {
		return nil, nil, err
	}
	for l := 1; l < len(results); l++ {
		if !reflect.DeepEqual(results[l], results[0]) || !reflect.DeepEqual(mems[l], mems[0]) {
			return nil, nil, fmt.Errorf("batch lane %d diverges from lane 0 on identical input", l)
		}
	}
	return results[0], mems[0], nil
}

// CPU evaluates (and caches) a kernel's baseline execution, verifying the
// output against the golden reference.
func (r *Runner) CPU(kernel string) (*CPUCell, error) {
	r.mu.Lock()
	for {
		if c, ok := r.cpus[kernel]; ok {
			r.mu.Unlock()
			return c, nil
		}
		ch, busy := r.cpuInflight[kernel]
		if !busy {
			break
		}
		r.mu.Unlock()
		<-ch
		r.mu.Lock()
	}
	ch := make(chan struct{})
	r.cpuInflight[kernel] = ch
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.cpuInflight, kernel)
		r.mu.Unlock()
		close(ch)
	}()
	k, err := kernels.ByName(kernel)
	if err != nil {
		return nil, err
	}
	mem := k.Init()
	res, err := cpu.Run(k.Build(), mem, cpu.DefaultCosts())
	if err != nil {
		return nil, err
	}
	if err := k.Check(mem); err != nil {
		return nil, fmt.Errorf("exp: CPU run of %s failed verification: %w", kernel, err)
	}
	c := &CPUCell{Kernel: kernel, Cycles: res.Cycles, Instrs: res.Instrs, Energy: r.Params.CPUEnergy(res)}
	r.mu.Lock()
	r.cpus[kernel] = c
	r.mu.Unlock()
	return c, nil
}

// InstrumentationSummary renders a per-kernel roll-up of every cell the
// runner has evaluated so far: cells run, mappings found, simulated
// cycles, compile time, partials explored, route-memo hit rate and
// pruned-partial total. Kernels appear in the canonical kernel order, so
// the table is deterministic for a given set of evaluated cells.
func (r *Runner) InstrumentationSummary() string {
	type agg struct {
		cells, mapped         int
		cycles                int64
		compile               time.Duration
		partials, pruned      int
		memoHits, memoLookups int
	}
	byKernel := map[string]*agg{}
	r.mu.Lock()
	for key, c := range r.cells {
		a := byKernel[key.kernel]
		if a == nil {
			a = &agg{}
			byKernel[key.kernel] = a
		}
		a.cells++
		if c.OK {
			a.mapped++
			a.cycles += c.Cycles
		}
		a.compile += c.CompileTime
		a.partials += c.MapStats.Partials
		a.pruned += c.MapStats.PrunedACMAP + c.MapStats.PrunedECMAP + c.MapStats.PrunedStochastic
		a.memoHits += c.MapStats.MemoHits
		a.memoLookups += c.MapStats.MemoHits + c.MapStats.MemoMisses
	}
	r.mu.Unlock()
	t := trace.NewTable("per-kernel instrumentation summary",
		"kernel", "cells", "mapped", "cycles", "compile", "partials", "memo-hit", "pruned")
	for _, name := range kernels.Names() {
		a := byKernel[name]
		if a == nil {
			continue
		}
		hit := "-"
		if a.memoLookups > 0 {
			hit = fmt.Sprintf("%.0f%%", 100*float64(a.memoHits)/float64(a.memoLookups))
		}
		t.Add(name, a.cells, a.mapped, a.cycles, a.compile.Round(time.Millisecond),
			a.partials, hit, a.pruned)
	}
	return t.String()
}

// Baseline returns the basic-flow HOM64 cell a figure normalizes against.
func (r *Runner) Baseline(kernel string) *Cell {
	return r.Run(kernel, core.FlowBasic, arch.HOM64)
}

func (r *Runner) baselineArena(ar *core.Arena, tid int, kernel string) *Cell {
	return r.runArena(ar, tid, kernel, core.FlowBasic, arch.HOM64)
}
