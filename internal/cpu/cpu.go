// Package cpu models the or1k-class baseline processor of the paper's
// evaluation: a single-issue in-order 32-bit RISC core with a data memory,
// instruction cache, and a simple pipeline cost model. It executes the
// same CDFG the CGRA runs — the CDFG is treated as the optimized (-O3)
// instruction stream — so CPU and CGRA results are directly comparable
// and functionally cross-checked against the same golden references.
package cpu

import (
	"fmt"

	"repro/internal/cdfg"
)

// Costs is the per-instruction-class cycle model of the in-order core.
type Costs struct {
	// ALU is the cost of a register-to-register ALU operation.
	ALU int
	// Mul is the cost of a multiply (or1k multiplies are multi-cycle).
	Mul int
	// Load is the cost of a load hitting the data memory.
	Load int
	// Store is the cost of a store.
	Store int
	// Branch is the base cost of a conditional branch.
	Branch int
	// BranchMiss is the extra penalty of a taken branch (pipeline refill).
	BranchMiss int
	// Const is the cost of materializing an immediate (folded into the
	// consuming instruction half of the time on or1k; modeled as its own
	// issue slot once per block execution).
	Const int
}

// DefaultCosts returns the or1k-like cost model used in the evaluation.
func DefaultCosts() Costs {
	return Costs{
		ALU:        1,
		Mul:        4,
		Load:       3,
		Store:      2,
		Branch:     1,
		BranchMiss: 3,
		Const:      1,
	}
}

// Result is one CPU execution.
type Result struct {
	// Cycles is the total execution time.
	Cycles int64
	// Instrs counts dynamically executed instructions.
	Instrs int64
	// Per-class dynamic counts (for the energy model).
	ALUOps, Muls, Loads, Stores, Branches, Consts int64
}

// IPC returns executed instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instrs) / float64(r.Cycles)
}

// Run executes the graph on the core against the memory (modified in
// place) and returns cycle and instruction counts. Symbol variables live
// in the core's register file and cost nothing to read.
func Run(g *cdfg.Graph, mem cdfg.Memory, costs Costs) (*Result, error) {
	if err := cdfg.Verify(g); err != nil {
		return nil, fmt.Errorf("cpu: %w", err)
	}
	res := &Result{}
	syms := map[string]int32{}
	cur := g.Entry
	var vals []int32
	for steps := 0; ; steps++ {
		if steps >= cdfg.InterpLimit {
			return res, fmt.Errorf("cpu: execution of %q exceeded %d blocks", g.Name, cdfg.InterpLimit)
		}
		b := g.Blocks[cur]
		if cap(vals) < len(b.Nodes) {
			vals = make([]int32, len(b.Nodes))
		}
		vals = vals[:len(b.Nodes)]
		var branchTaken bool
		for _, n := range b.Nodes {
			switch n.Op {
			case cdfg.OpConst:
				vals[n.ID] = n.Val
				res.Cycles += int64(costs.Const)
				res.Consts++
				res.Instrs++
			case cdfg.OpSym:
				v, ok := syms[n.Sym]
				if !ok {
					return res, fmt.Errorf("cpu: block %q reads undefined symbol %q", b.Name, n.Sym)
				}
				vals[n.ID] = v // register read: no issue slot
			case cdfg.OpLoad:
				v, err := mem.Load(vals[n.Args[0]])
				if err != nil {
					return res, fmt.Errorf("cpu: block %q n%d: %w", b.Name, n.ID, err)
				}
				vals[n.ID] = v
				res.Cycles += int64(costs.Load)
				res.Loads++
				res.Instrs++
			case cdfg.OpStore:
				if err := mem.Store(vals[n.Args[0]], vals[n.Args[1]]); err != nil {
					return res, fmt.Errorf("cpu: block %q n%d: %w", b.Name, n.ID, err)
				}
				res.Cycles += int64(costs.Store)
				res.Stores++
				res.Instrs++
			case cdfg.OpBr:
				branchTaken = vals[n.Args[0]] != 0
				res.Cycles += int64(costs.Branch)
				if branchTaken {
					res.Cycles += int64(costs.BranchMiss)
				}
				res.Branches++
				res.Instrs++
			default:
				args := make([]int32, len(n.Args))
				for i, a := range n.Args {
					args[i] = vals[a]
				}
				v, err := cdfg.EvalOp(n.Op, args)
				if err != nil {
					return res, fmt.Errorf("cpu: block %q n%d: %w", b.Name, n.ID, err)
				}
				vals[n.ID] = v
				if n.Op == cdfg.OpMul || n.Op == cdfg.OpMulH {
					res.Cycles += int64(costs.Mul)
					res.Muls++
				} else {
					res.Cycles += int64(costs.ALU)
					res.ALUOps++
				}
				res.Instrs++
			}
		}
		for s, id := range b.LiveOut {
			syms[s] = vals[id]
		}
		switch {
		case b.HasBranch():
			if branchTaken {
				cur = b.Succs[0]
			} else {
				cur = b.Succs[1]
			}
		case len(b.Succs) == 1:
			cur = b.Succs[0]
		default:
			return res, nil
		}
	}
}
