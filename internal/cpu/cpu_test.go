package cpu

import (
	"testing"

	"repro/internal/cdfg"
	"repro/internal/kernels"
)

// TestRunKernelsMatchGolden executes all seven kernels on the CPU model
// and verifies their outputs against the golden references.
func TestRunKernelsMatchGolden(t *testing.T) {
	for _, k := range kernels.All() {
		t.Run(k.Name, func(t *testing.T) {
			mem := k.Init()
			res, err := Run(k.Build(), mem, DefaultCosts())
			if err != nil {
				t.Fatal(err)
			}
			if err := k.Check(mem); err != nil {
				t.Fatal(err)
			}
			if res.Cycles <= res.Instrs {
				t.Errorf("cycles %d should exceed instrs %d (multi-cycle loads/muls)", res.Cycles, res.Instrs)
			}
			if ipc := res.IPC(); ipc <= 0 || ipc > 1 {
				t.Errorf("IPC = %v out of (0,1]", ipc)
			}
		})
	}
}

// TestCostAccounting checks that cycles equal the dot product of class
// counts and class costs on a known straight-line program.
func TestCostAccounting(t *testing.T) {
	b := cdfg.NewBuilder("acct")
	e := b.Block("entry")
	x := e.Load(e.Const(0))   // 1 const, 1 load
	y := e.Mul(x, e.Const(3)) // 1 const, 1 mul
	e.Store(e.Const(1), y)    // 1 const (value-numbered? different val), 1 store
	g := b.Finish()

	costs := DefaultCosts()
	mem := cdfg.Memory{7, 0}
	res, err := Run(g, mem, costs)
	if err != nil {
		t.Fatal(err)
	}
	if mem[1] != 21 {
		t.Fatalf("result %d", mem[1])
	}
	want := int64(res.Consts)*int64(costs.Const) +
		int64(res.Loads)*int64(costs.Load) +
		int64(res.Stores)*int64(costs.Store) +
		int64(res.Muls)*int64(costs.Mul) +
		int64(res.ALUOps)*int64(costs.ALU) +
		int64(res.Branches)*int64(costs.Branch)
	if res.Cycles != want {
		t.Fatalf("cycles %d, want %d (no taken branches here)", res.Cycles, want)
	}
	if res.Consts != 3 || res.Loads != 1 || res.Muls != 1 || res.Stores != 1 {
		t.Fatalf("counts: %+v", res)
	}
}

func TestBranchPenalty(t *testing.T) {
	// A loop with n taken branches and one fall-through.
	mk := func(n int32) *cdfg.Graph {
		b := cdfg.NewBuilder("loop")
		e := b.Block("entry")
		e.SetSym("i", e.Const(0))
		e.Jump("loop")
		l := b.Block("loop")
		i2 := l.AddC(l.Sym("i"), 1)
		l.SetSym("i", i2)
		l.BranchIf(l.Lt(i2, l.Const(n)), "loop", "exit")
		x := b.Block("exit")
		x.Store(x.Const(0), x.Sym("i"))
		return b.Finish()
	}
	costs := DefaultCosts()
	r3, err := Run(mk(3), make(cdfg.Memory, 1), costs)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(mk(4), make(cdfg.Memory, 1), costs)
	if err != nil {
		t.Fatal(err)
	}
	// One extra iteration: two consts (1 and n), add, lt, branch + miss.
	delta := r4.Cycles - r3.Cycles
	wantDelta := int64(2*costs.Const + 2*costs.ALU + costs.Branch + costs.BranchMiss)
	if delta != wantDelta {
		t.Fatalf("per-iteration delta %d, want %d", delta, wantDelta)
	}
}

func TestRunErrors(t *testing.T) {
	b := cdfg.NewBuilder("bad")
	e := b.Block("entry")
	e.Store(e.Const(99), e.Const(1))
	if _, err := Run(b.Finish(), make(cdfg.Memory, 4), DefaultCosts()); err == nil {
		t.Error("out-of-range store should fail")
	}
	if _, err := Run(&cdfg.Graph{Name: "x"}, nil, DefaultCosts()); err == nil {
		t.Error("invalid graph should fail")
	}
}
