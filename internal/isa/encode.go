package isa

import (
	"fmt"

	"repro/internal/cdfg"
)

// Binary context-word layout. The paper's tiles store 64-bit context words;
// we use the same width. Immediates are not embedded in the word: like the
// real PE, a word references an entry of the tile's constant register file
// (CRF), which the assembler populates per tile.
//
//	bits  0..1   kind
//	bits  2..7   opcode (KOp) — cdfg.Opcode value
//	bit   8      writeback enable
//	bits  9..12  writeback register
//	bits 13..14  source count
//	bits 16..26  source 0 (3-bit kind + 8-bit payload)
//	bits 27..37  source 1
//	bits 38..48  source 2
//	bits 16..39  pnop idle count (KPnop)
const (
	kindShift  = 0
	opShift    = 2
	wbShift    = 8
	wregShift  = 9
	nsrcShift  = 13
	src0Shift  = 16
	srcBits    = 11
	pnopShift  = 16
	pnopBits   = 24
	srcPayload = 8
)

// MaxCRF is the capacity of a tile's constant register file. The paper's
// CRF is 32 entries; the encoder enforces the same limit.
const MaxCRF = 32

// MaxPnop is the largest idle count a single pnop word can encode.
const MaxPnop = 1<<pnopBits - 1

// CRF is a tile's constant register file: the immediate pool referenced by
// encoded context words.
type CRF struct {
	vals  []int32
	index map[int32]int
}

// NewCRF returns an empty constant register file.
func NewCRF() *CRF { return &CRF{index: map[int32]int{}} }

// Intern returns the CRF index of v, adding it if absent. It fails when
// the tile needs more than MaxCRF distinct constants.
func (c *CRF) Intern(v int32) (int, error) {
	if i, ok := c.index[v]; ok {
		return i, nil
	}
	if len(c.vals) >= MaxCRF {
		return 0, fmt.Errorf("isa: constant register file overflow (%d entries)", MaxCRF)
	}
	c.index[v] = len(c.vals)
	c.vals = append(c.vals, v)
	return len(c.vals) - 1, nil
}

// Values returns the interned constants in index order.
func (c *CRF) Values() []int32 { return c.vals }

// Len returns the number of interned constants.
func (c *CRF) Len() int { return len(c.vals) }

func encodeSrc(s Src, crf *CRF) (uint64, error) {
	var payload uint64
	switch s.Kind {
	case SrcNone, SrcSelf:
	case SrcNbr:
		payload = uint64(s.Dir)
	case SrcReg:
		payload = uint64(s.Reg)
	case SrcConst:
		idx, err := crf.Intern(s.Val)
		if err != nil {
			return 0, err
		}
		payload = uint64(idx)
	default:
		return 0, fmt.Errorf("isa: cannot encode source kind %d", s.Kind)
	}
	if payload >= 1<<srcPayload {
		return 0, fmt.Errorf("isa: source payload %d overflows %d bits", payload, srcPayload)
	}
	return uint64(s.Kind)<<srcPayload | payload, nil
}

func decodeSrc(bits uint64, crf *CRF) (Src, error) {
	kind := SrcKind(bits >> srcPayload)
	payload := bits & (1<<srcPayload - 1)
	switch kind {
	case SrcNone:
		return Src{}, nil
	case SrcSelf:
		return Self(), nil
	case SrcNbr:
		return Nbr(Dir(payload)), nil
	case SrcReg:
		return Reg(uint8(payload)), nil
	case SrcConst:
		if int(payload) >= crf.Len() {
			return Src{}, fmt.Errorf("isa: CRF index %d out of range %d", payload, crf.Len())
		}
		return Const(crf.Values()[payload]), nil
	}
	return Src{}, fmt.Errorf("isa: undecodable source kind %d", kind)
}

// Encode packs the instruction into a 64-bit context word, interning any
// immediates into the tile's CRF.
func Encode(in Instr, crf *CRF) (uint64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	w := uint64(in.Kind) << kindShift
	if in.Kind == KPnop {
		if in.Count > MaxPnop {
			return 0, fmt.Errorf("isa: pnop count %d exceeds %d", in.Count, MaxPnop)
		}
		w |= uint64(in.Count) << pnopShift
		return w, nil
	}
	w |= uint64(in.Op) << opShift
	if in.WB {
		w |= 1 << wbShift
		w |= uint64(in.WReg) << wregShift
	}
	w |= uint64(in.NSrc) << nsrcShift
	for i := 0; i < in.NSrc; i++ {
		sb, err := encodeSrc(in.Srcs[i], crf)
		if err != nil {
			return 0, err
		}
		w |= sb << (src0Shift + srcBits*i)
	}
	return w, nil
}

// Decode unpacks a context word encoded by Encode against the same CRF.
func Decode(w uint64, crf *CRF) (Instr, error) {
	kind := Kind(w >> kindShift & 3)
	if kind == KPnop {
		return Pnop(int(w >> pnopShift & MaxPnop)), nil
	}
	in := Instr{Kind: kind}
	in.Op = cdfg.Opcode(w >> opShift & 63)
	if kind == KMove {
		in.Op = cdfg.OpMove
	}
	if w>>wbShift&1 == 1 {
		in.WB = true
		in.WReg = uint8(w >> wregShift & 15)
	}
	in.NSrc = int(w >> nsrcShift & 3)
	for i := 0; i < in.NSrc; i++ {
		s, err := decodeSrc(w>>(src0Shift+srcBits*i)&(1<<srcBits-1), crf)
		if err != nil {
			return Instr{}, err
		}
		in.Srcs[i] = s
	}
	if err := in.Validate(); err != nil {
		return Instr{}, fmt.Errorf("isa: decoded invalid word %#x: %w", w, err)
	}
	return in, nil
}
