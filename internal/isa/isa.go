// Package isa defines the per-tile instruction set stored in the context
// memories of the CGRA. A tile's context is a sequence of instruction
// words of three kinds, matching the paper's taxonomy (§II): an operation
// (including control, i.e. branches), a move (routing), or a nop —
// consecutive nops being folded into one programmable nop (pnop) word
// carrying an idle-cycle count.
//
// Every instruction word occupies exactly one context-memory word, so the
// number of Instr values in a tile's per-kernel context is exactly the
// quantity the paper's memory constraint n(Mo)+n(pnop) ≤ n(I) bounds.
package isa

import (
	"fmt"
	"strings"

	"repro/internal/cdfg"
)

// Kind classifies an instruction word.
type Kind uint8

const (
	// KOp executes an ALU/memory/branch operation.
	KOp Kind = iota
	// KMove copies a value from a source to the tile's output register
	// (and optionally the register file) for routing.
	KMove
	// KPnop idles the tile for Count cycles. The output register keeps its
	// value, so a pnop also acts as a routing hold.
	KPnop
)

func (k Kind) String() string {
	switch k {
	case KOp:
		return "op"
	case KMove:
		return "move"
	case KPnop:
		return "pnop"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Dir addresses one of the four torus neighbors in the fixed order used by
// arch.Grid.Neighbors.
type Dir uint8

const (
	North Dir = iota
	South
	West
	East
)

func (d Dir) String() string {
	switch d {
	case North:
		return "N"
	case South:
		return "S"
	case West:
		return "W"
	case East:
		return "E"
	}
	return fmt.Sprintf("dir(%d)", uint8(d))
}

// SrcKind says where an operand comes from.
type SrcKind uint8

const (
	// SrcNone marks an unused operand slot.
	SrcNone SrcKind = iota
	// SrcNbr reads the output register of the neighbor in direction Dir.
	SrcNbr
	// SrcReg reads the tile's own register file at index Reg.
	SrcReg
	// SrcConst reads an immediate from the tile's constant register file.
	SrcConst
	// SrcSelf reads the tile's own output register.
	SrcSelf
)

// Src is one operand source.
type Src struct {
	Kind SrcKind
	Dir  Dir   // valid when Kind == SrcNbr
	Reg  uint8 // valid when Kind == SrcReg
	Val  int32 // valid when Kind == SrcConst
}

// Nbr returns a neighbor-read source.
func Nbr(d Dir) Src { return Src{Kind: SrcNbr, Dir: d} }

// Reg returns a register-file source.
func Reg(r uint8) Src { return Src{Kind: SrcReg, Reg: r} }

// Const returns an immediate source.
func Const(v int32) Src { return Src{Kind: SrcConst, Val: v} }

// Self returns an own-output-register source.
func Self() Src { return Src{Kind: SrcSelf} }

func (s Src) String() string {
	switch s.Kind {
	case SrcNone:
		return "-"
	case SrcNbr:
		return "nbr." + s.Dir.String()
	case SrcReg:
		return fmt.Sprintf("r%d", s.Reg)
	case SrcConst:
		return fmt.Sprintf("#%d", s.Val)
	case SrcSelf:
		return "out"
	}
	return fmt.Sprintf("src(%d)", uint8(s.Kind))
}

// MaxSrcs is the maximum operand count (OpSelect takes three).
const MaxSrcs = 3

// Instr is one context-memory word.
type Instr struct {
	Kind Kind

	// Op is the operation for KOp words. Moves use cdfg.OpMove implicitly.
	Op cdfg.Opcode

	// Srcs holds NSrc operand sources. For stores, Srcs[0] is the address
	// and Srcs[1] the value; for branches Srcs[0] is the condition.
	Srcs [MaxSrcs]Src
	NSrc int

	// WB requests a register-file writeback of the result to register WReg
	// in addition to the output register.
	WB   bool
	WReg uint8

	// Count is the idle-cycle count of a KPnop word (≥ 1).
	Count int
}

// Pnop returns a programmable-nop word idling for n cycles.
func Pnop(n int) Instr { return Instr{Kind: KPnop, Count: n} }

// Move returns a routing move from the given source.
func Move(src Src) Instr {
	return Instr{Kind: KMove, Op: cdfg.OpMove, Srcs: [MaxSrcs]Src{src}, NSrc: 1}
}

// Op returns an operation word.
func Op(op cdfg.Opcode, srcs ...Src) Instr {
	in := Instr{Kind: KOp, Op: op, NSrc: len(srcs)}
	if len(srcs) > MaxSrcs {
		panic(fmt.Sprintf("isa: %d sources exceed maximum %d", len(srcs), MaxSrcs))
	}
	copy(in.Srcs[:], srcs)
	return in
}

// WithWB returns a copy of the instruction with a writeback to register r.
func (in Instr) WithWB(r uint8) Instr {
	in.WB = true
	in.WReg = r
	return in
}

// Cycles returns how many execution cycles the word occupies.
func (in Instr) Cycles() int {
	if in.Kind == KPnop {
		return in.Count
	}
	return 1
}

// HasResult reports whether the word produces a value on the output register.
func (in Instr) HasResult() bool {
	switch in.Kind {
	case KMove:
		return true
	case KOp:
		return in.Op.HasResult()
	}
	return false
}

func (in Instr) String() string {
	var b strings.Builder
	switch in.Kind {
	case KPnop:
		fmt.Fprintf(&b, "pnop %d", in.Count)
		return b.String()
	case KMove:
		fmt.Fprintf(&b, "move %s", in.Srcs[0])
	case KOp:
		b.WriteString(in.Op.String())
		for i := 0; i < in.NSrc; i++ {
			b.WriteString(" ")
			b.WriteString(in.Srcs[i].String())
		}
	}
	if in.WB {
		fmt.Fprintf(&b, " -> r%d", in.WReg)
	}
	return b.String()
}

// Validate checks the structural sanity of an instruction word.
func (in Instr) Validate() error {
	switch in.Kind {
	case KPnop:
		if in.Count < 1 {
			return fmt.Errorf("isa: pnop with count %d", in.Count)
		}
		if in.WB {
			return fmt.Errorf("isa: pnop cannot write back")
		}
	case KMove:
		if in.NSrc != 1 || in.Srcs[0].Kind == SrcNone {
			return fmt.Errorf("isa: move needs exactly one source")
		}
	case KOp:
		if !in.Op.Valid() || in.Op == cdfg.OpConst || in.Op == cdfg.OpSym {
			return fmt.Errorf("isa: opcode %s cannot appear in a context", in.Op)
		}
		if in.NSrc != in.Op.NumArgs() {
			return fmt.Errorf("isa: %s needs %d sources, has %d", in.Op, in.Op.NumArgs(), in.NSrc)
		}
		for i := 0; i < in.NSrc; i++ {
			if in.Srcs[i].Kind == SrcNone {
				return fmt.Errorf("isa: %s source %d unset", in.Op, i)
			}
		}
		if in.WB && !in.Op.HasResult() {
			return fmt.Errorf("isa: %s produces no value to write back", in.Op)
		}
	default:
		return fmt.Errorf("isa: unknown kind %d", in.Kind)
	}
	return nil
}
