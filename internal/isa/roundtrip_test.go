package isa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cdfg"
)

// TestEncodeDecodeTable is the exhaustive-by-kind companion to the
// randomized round-trip test: one case per context-word kind and operand
// shape — operations (ALU, memory, control), moves from every source
// kind, writebacks, and pnop idles from 1 to the encoding maximum.
func TestEncodeDecodeTable(t *testing.T) {
	cases := []struct {
		name string
		in   Instr
	}{
		{"alu 2src", Op(cdfg.OpAdd, Nbr(North), Reg(3))},
		{"alu 2src const", Op(cdfg.OpMul, Const(-7), Const(1<<20))},
		{"alu unary", Op(cdfg.OpNeg, Self())},
		{"alu select 3src", Op(cdfg.OpSelect, Nbr(East), Reg(0), Const(42))},
		{"alu writeback", Op(cdfg.OpXor, Nbr(South), Nbr(West)).WithWB(7)},
		{"load", Op(cdfg.OpLoad, Reg(1))},
		{"store", Op(cdfg.OpStore, Reg(1), Nbr(North))},
		{"control br", Op(cdfg.OpBr, Self())},
		{"move nbr", Move(Nbr(West))},
		{"move reg", Move(Reg(5))},
		{"move const", Move(Const(-2147483648))},
		{"move self", Move(Self())},
		{"move writeback", Move(Nbr(North)).WithWB(0)},
		{"pnop 1", Pnop(1)},
		{"pnop max", Pnop(MaxPnop)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			crf := NewCRF()
			w, err := Encode(tc.in, crf)
			if err != nil {
				t.Fatalf("Encode(%v): %v", tc.in, err)
			}
			got, err := Decode(w, crf)
			if err != nil {
				t.Fatalf("Decode(%#x): %v", w, err)
			}
			if got != tc.in {
				t.Fatalf("round trip: got %v, want %v", got, tc.in)
			}
		})
	}
}

// TestEncodeDecodeQuick drives the round trip through testing/quick: any
// valid instruction stream, encoded against a shared CRF, decodes back
// bit-identically (as long as the CRF has room, which the generator
// guarantees by drawing constants from a small pool).
func TestEncodeDecodeQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		crf := NewCRF()
		for i := 0; i < int(n%32)+1; i++ {
			in := randomInstr(rng)
			// Keep constants in a small pool so a long stream cannot
			// overflow the 32-entry CRF.
			for s := 0; s < in.NSrc; s++ {
				if in.Srcs[s].Kind == SrcConst {
					in.Srcs[s].Val = in.Srcs[s].Val % 8
				}
			}
			w, err := Encode(in, crf)
			if err != nil {
				t.Logf("Encode(%v): %v", in, err)
				return false
			}
			got, err := Decode(w, crf)
			if err != nil {
				t.Logf("Decode(%#x): %v", w, err)
				return false
			}
			if got != in {
				t.Logf("got %v, want %v", got, in)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if testing.Short() {
		cfg.MaxCount = 50
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeRejectsBadCRFIndex: a word referencing a constant the CRF does
// not hold must fail to decode, not fabricate a value.
func TestDecodeRejectsBadCRFIndex(t *testing.T) {
	crf := NewCRF()
	w, err := Encode(Move(Const(99)), crf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(w, NewCRF()); err == nil {
		t.Fatal("decoding against an empty CRF succeeded")
	}
}
