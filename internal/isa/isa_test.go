package isa

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cdfg"
)

func TestInstrConstructorsAndStrings(t *testing.T) {
	in := Op(cdfg.OpAdd, Reg(1), Nbr(East)).WithWB(3)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if s := in.String(); !strings.Contains(s, "add") || !strings.Contains(s, "r1") ||
		!strings.Contains(s, "nbr.E") || !strings.Contains(s, "-> r3") {
		t.Errorf("String() = %q", s)
	}
	mv := Move(Const(7))
	if err := mv.Validate(); err != nil {
		t.Fatal(err)
	}
	if !mv.HasResult() || mv.Cycles() != 1 {
		t.Error("move result/cycles")
	}
	p := Pnop(5)
	if p.Cycles() != 5 || p.HasResult() {
		t.Error("pnop cycles/result")
	}
	if s := p.String(); s != "pnop 5" {
		t.Errorf("pnop string %q", s)
	}
	if Self().String() != "out" || Reg(2).String() != "r2" || Const(-3).String() != "#-3" {
		t.Error("source strings")
	}
}

func TestInstrValidateErrors(t *testing.T) {
	bad := []Instr{
		Pnop(0),
		{Kind: KMove},                              // move without source
		{Kind: KOp, Op: cdfg.OpConst},              // const is not executable
		{Kind: KOp, Op: cdfg.OpSym},                // sym is not executable
		{Kind: KOp, Op: cdfg.OpAdd},                // missing sources
		{Kind: Kind(9)},                            // unknown kind
		Op(cdfg.OpStore, Reg(0), Reg(1)).WithWB(0), // store has no result
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d (%v) should fail validation", i, in)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Op with too many sources should panic")
			}
		}()
		Op(cdfg.OpSelect, Reg(0), Reg(1), Reg(2), Reg(3))
	}()
}

func TestCRFIntern(t *testing.T) {
	c := NewCRF()
	i0, err := c.Intern(42)
	if err != nil || i0 != 0 {
		t.Fatalf("first intern: %d, %v", i0, err)
	}
	i1, err := c.Intern(42)
	if err != nil || i1 != 0 {
		t.Fatalf("re-intern should dedupe: %d, %v", i1, err)
	}
	for v := int32(0); v < MaxCRF-1; v++ {
		if _, err := c.Intern(1000 + v); err != nil {
			t.Fatalf("intern %d: %v", v, err)
		}
	}
	if c.Len() != MaxCRF {
		t.Fatalf("Len = %d, want %d", c.Len(), MaxCRF)
	}
	if _, err := c.Intern(9999); err == nil {
		t.Error("overflow should fail")
	}
}

// randomInstr builds a random valid instruction.
func randomInstr(rng *rand.Rand) Instr {
	switch rng.Intn(3) {
	case 0:
		return Pnop(1 + rng.Intn(1000))
	case 1:
		in := Move(randomSrc(rng))
		if rng.Intn(2) == 0 {
			in = in.WithWB(uint8(rng.Intn(8)))
		}
		return in
	default:
		ops := []cdfg.Opcode{
			cdfg.OpAdd, cdfg.OpSub, cdfg.OpMul, cdfg.OpAnd, cdfg.OpOr,
			cdfg.OpXor, cdfg.OpShl, cdfg.OpSra, cdfg.OpLt, cdfg.OpEq,
			cdfg.OpMin, cdfg.OpMax, cdfg.OpAbs, cdfg.OpNeg, cdfg.OpSelect,
			cdfg.OpLoad, cdfg.OpStore, cdfg.OpBr,
		}
		op := ops[rng.Intn(len(ops))]
		srcs := make([]Src, op.NumArgs())
		for i := range srcs {
			srcs[i] = randomSrc(rng)
		}
		in := Op(op, srcs...)
		if op.HasResult() && rng.Intn(2) == 0 {
			in = in.WithWB(uint8(rng.Intn(8)))
		}
		return in
	}
}

func randomSrc(rng *rand.Rand) Src {
	switch rng.Intn(4) {
	case 0:
		return Nbr(Dir(rng.Intn(4)))
	case 1:
		return Reg(uint8(rng.Intn(8)))
	case 2:
		return Const(rng.Int31() - 1<<30)
	default:
		return Self()
	}
}

// TestEncodeDecodeRoundTrip is the binary-format property test: every
// valid instruction survives Encode/Decode against a shared CRF.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	crf := NewCRF()
	kept := 0
	for trial := 0; trial < 2000; trial++ {
		in := randomInstr(rng)
		w, err := Encode(in, crf)
		if err != nil {
			// Only acceptable failure: CRF capacity exhausted.
			if strings.Contains(err.Error(), "constant register file overflow") {
				continue
			}
			t.Fatalf("trial %d: encode %v: %v", trial, in, err)
		}
		got, err := Decode(w, crf)
		if err != nil {
			t.Fatalf("trial %d: decode %#x: %v", trial, w, err)
		}
		if got != in {
			t.Fatalf("trial %d: round trip %v -> %v", trial, in, got)
		}
		kept++
	}
	if kept < 100 {
		t.Fatalf("too few round-tripped instructions: %d", kept)
	}
}

func TestEncodePnopBounds(t *testing.T) {
	crf := NewCRF()
	if _, err := Encode(Pnop(MaxPnop), crf); err != nil {
		t.Fatal(err)
	}
	if _, err := Encode(Pnop(MaxPnop+1), crf); err == nil {
		t.Error("oversized pnop should fail")
	}
}
