package prof

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	sink := obs.NewBufferSink(0)
	rec := obs.NewRecorder(nil, sink)
	stop, err := Start(cpu, mem, rec)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Some work so the profiles have something to record.
	s := 0
	for i := 0; i < 1_000_000; i++ {
		s += i
	}
	_ = s
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
	// One event per written profile, carrying the output path.
	events := sink.Events()
	if len(events) != 2 {
		t.Fatalf("got %d profile events, want 2: %+v", len(events), events)
	}
	want := map[string]string{"prof.cpu_profile": cpu, "prof.heap_profile": mem}
	for _, e := range events {
		if p, ok := want[e.Name]; !ok || e.Args["path"] != p {
			t.Errorf("unexpected profile event %+v", e)
		}
		delete(want, e.Name)
	}
}

// TestStopIdempotent pins the defer-plus-explicit-call contract the CLIs
// rely on: the second invocation is a no-op, not a double close or a
// rewritten heap profile.
func TestStopIdempotent(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(cpu, mem, nil)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("first stop: %v", err)
	}
	fi, err := os.Stat(mem)
	if err != nil {
		t.Fatalf("heap profile not written: %v", err)
	}
	first := fi.ModTime()
	if err := stop(); err != nil {
		t.Fatalf("second stop: %v", err)
	}
	fi, err = os.Stat(mem)
	if err != nil {
		t.Fatal(err)
	}
	if !fi.ModTime().Equal(first) {
		t.Error("second stop rewrote the heap profile")
	}
}

func TestStartNoop(t *testing.T) {
	stop, err := Start("", "", nil)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out"), "", nil); err == nil {
		t.Fatal("expected error for uncreatable CPU profile path")
	}
}
