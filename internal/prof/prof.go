// Package prof wires the standard runtime/pprof file profiles into the
// CLIs (cgramap, cgrabench) so mapper and evaluation hot paths can be
// profiled in situ: the alloc-gated perf harness points at exactly the
// code paths these binaries exercise.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpuPath is non-empty and returns a stop
// function that finishes the CPU profile and, when memPath is non-empty,
// writes an allocation (heap) profile. The stop function must run before
// the process exits — including on error paths — or the profiles are
// truncated. Empty paths make Start and its stop function no-ops.
func Start(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
		cpuFile = f
	}
	stop := func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				first = fmt.Errorf("prof: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = fmt.Errorf("prof: %w", err)
				}
				return first
			}
			// An explicit GC settles the heap statistics so the profile
			// reflects live allocations, matching `go test -memprofile`.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("prof: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = fmt.Errorf("prof: %w", err)
			}
		}
		return first
	}
	return stop, nil
}
