// Package prof wires the standard runtime/pprof file profiles into the
// CLIs (cgramap, cgrabench) so mapper and evaluation hot paths can be
// profiled in situ: the alloc-gated perf harness points at exactly the
// code paths these binaries exercise.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/obs"
)

// Start begins CPU profiling when cpuPath is non-empty and returns a stop
// function that finishes the CPU profile and, when memPath is non-empty,
// writes an allocation (heap) profile. The stop function must run before
// the process exits — including on error and panic paths — or the
// profiles are truncated; it is idempotent, so callers both defer it (the
// panic safety net) and invoke it explicitly to collect its error. Empty
// paths make Start and its stop function no-ops.
//
// When r is a live recorder, stopping emits one instant event per profile
// actually written, carrying the output path, so a run's timeline records
// where its profiles landed.
func Start(cpuPath, memPath string, r *obs.Recorder) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
		cpuFile = f
	}
	stopped := false
	stop := func() error {
		if stopped {
			return nil
		}
		stopped = true
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				first = fmt.Errorf("prof: %w", err)
			} else {
				r.Emit("prof.cpu_profile", "prof", 0, map[string]any{"path": cpuPath})
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = fmt.Errorf("prof: %w", err)
				}
				return first
			}
			// An explicit GC settles the heap statistics so the profile
			// reflects live allocations, matching `go test -memprofile`.
			runtime.GC()
			werr := pprof.WriteHeapProfile(f)
			if werr != nil && first == nil {
				first = fmt.Errorf("prof: %w", werr)
			}
			if err := f.Close(); err != nil && first == nil {
				first = fmt.Errorf("prof: %w", err)
			}
			if werr == nil {
				r.Emit("prof.heap_profile", "prof", 0, map[string]any{"path": memPath})
			}
		}
		return first
	}
	return stop, nil
}
