package arch

import "fmt"

// TEDG is the time-extended directed graph of the paper's §III-A: each
// node is a (resource, cycle) pair, where a resource is a tile's
// functional unit or one of its register-file entries, and every edge
// connects cycle t to cycle t+1 along a datapath the hardware provides:
//
//   - FU(x) → FU(x):        the output register holds the value;
//   - FU(x) → FU(neighbor): the torus operand network;
//   - FU(x) → RF(x, r):     a writeback;
//   - RF(x, r) → FU(x):     a register read;
//   - RF(x, r) → RF(x, r):  register retention.
//
// The mapper works on an implicit TEDG for efficiency; this explicit form
// exists for formal queries ("can a value travel from here to there in k
// cycles?") and to validate the implicit routing rules in tests.
type TEDG struct {
	grid  *Grid
	depth int
}

// TEDGNode is one (resource, cycle) vertex.
type TEDGNode struct {
	Tile  TileID
	Reg   int // -1 = the tile's functional unit, otherwise an RF entry
	Cycle int
}

// FUNode returns the functional-unit vertex of a tile at a cycle.
func FUNode(t TileID, cycle int) TEDGNode { return TEDGNode{Tile: t, Reg: -1, Cycle: cycle} }

// RFNode returns a register-file vertex.
func RFNode(t TileID, reg, cycle int) TEDGNode { return TEDGNode{Tile: t, Reg: reg, Cycle: cycle} }

func (n TEDGNode) String() string {
	if n.Reg < 0 {
		return fmt.Sprintf("FU(t%d)@%d", n.Tile+1, n.Cycle)
	}
	return fmt.Sprintf("RF(t%d,r%d)@%d", n.Tile+1, n.Reg, n.Cycle)
}

// NewTEDG creates the time-extended view of a grid over depth cycles.
func NewTEDG(g *Grid, depth int) *TEDG {
	return &TEDG{grid: g, depth: depth}
}

// Depth returns the number of modeled cycles.
func (te *TEDG) Depth() int { return te.depth }

// valid reports whether the node is inside the graph.
func (te *TEDG) valid(n TEDGNode) bool {
	if n.Cycle < 0 || n.Cycle >= te.depth {
		return false
	}
	if int(n.Tile) < 0 || int(n.Tile) >= te.grid.NumTiles() {
		return false
	}
	return n.Reg >= -1 && n.Reg < te.grid.RRFSize
}

// Succs enumerates the datapath successors of a node (at cycle+1).
func (te *TEDG) Succs(n TEDGNode) []TEDGNode {
	if !te.valid(n) || n.Cycle+1 >= te.depth {
		return nil
	}
	c := n.Cycle + 1
	if n.Reg >= 0 {
		// Register: retention plus a local read.
		return []TEDGNode{RFNode(n.Tile, n.Reg, c), FUNode(n.Tile, c)}
	}
	// Functional unit: output retention, operand network, writebacks.
	succs := []TEDGNode{FUNode(n.Tile, c)}
	for _, nb := range te.grid.Neighbors(n.Tile) {
		succs = append(succs, FUNode(nb, c))
	}
	for r := 0; r < te.grid.RRFSize; r++ {
		succs = append(succs, RFNode(n.Tile, r, c))
	}
	return succs
}

// HasEdge reports whether the hardware provides a direct cycle-to-cycle
// connection from a to b.
func (te *TEDG) HasEdge(a, b TEDGNode) bool {
	if b.Cycle != a.Cycle+1 {
		return false
	}
	for _, s := range te.Succs(a) {
		if s == b {
			return true
		}
	}
	return false
}

// Reachable reports whether a value at node `from` can reach node `to`
// through the time-extended datapath (BFS over at most depth layers).
func (te *TEDG) Reachable(from, to TEDGNode) bool {
	if !te.valid(from) || !te.valid(to) || to.Cycle < from.Cycle {
		return false
	}
	if from == to {
		return true
	}
	frontier := []TEDGNode{from}
	seen := map[TEDGNode]bool{from: true}
	for cycle := from.Cycle; cycle < to.Cycle; cycle++ {
		var next []TEDGNode
		for _, n := range frontier {
			for _, s := range te.Succs(n) {
				if !seen[s] {
					seen[s] = true
					next = append(next, s)
				}
			}
		}
		frontier = next
	}
	return seen[to]
}

// MinLatency returns the fewest cycles for a value produced on tile a's
// functional unit to be consumable by tile b's functional unit, following
// the paper's connectivity. On the torus this is exactly the hop distance
// (plus one local cycle when a == b).
func (te *TEDG) MinLatency(a, b TileID) int {
	if a == b {
		return 1 // via output register or RF, readable next cycle
	}
	return te.grid.Distance(a, b)
}
