package arch

import (
	"math/rand"
	"testing"
)

func TestTEDGEdges(t *testing.T) {
	g := MustGrid(HOM64)
	te := NewTEDG(g, 8)
	fu0 := FUNode(0, 0)

	// Output retention and neighbor edges exist.
	if !te.HasEdge(fu0, FUNode(0, 1)) {
		t.Error("missing output-retention edge")
	}
	for _, nb := range g.Neighbors(0) {
		if !te.HasEdge(fu0, FUNode(nb, 1)) {
			t.Errorf("missing operand-network edge to tile %d", nb+1)
		}
	}
	// Writeback and read-back edges.
	if !te.HasEdge(fu0, RFNode(0, 3, 1)) {
		t.Error("missing writeback edge")
	}
	if !te.HasEdge(RFNode(0, 3, 1), FUNode(0, 2)) {
		t.Error("missing register-read edge")
	}
	if !te.HasEdge(RFNode(0, 3, 1), RFNode(0, 3, 2)) {
		t.Error("missing register-retention edge")
	}
	// No edges to non-neighbors, other tiles' registers, or same-cycle.
	if te.HasEdge(fu0, FUNode(10, 1)) {
		t.Error("edge to a non-neighbor")
	}
	if te.HasEdge(fu0, RFNode(1, 0, 1)) {
		t.Error("edge into another tile's register file")
	}
	if te.HasEdge(fu0, FUNode(0, 0)) || te.HasEdge(fu0, FUNode(0, 2)) {
		t.Error("edges must advance exactly one cycle")
	}
}

func TestTEDGReachabilityMatchesDistance(t *testing.T) {
	g := MustGrid(HOM64)
	const depth = 12
	te := NewTEDG(g, depth)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		a := TileID(rng.Intn(16))
		b := TileID(rng.Intn(16))
		d := g.Distance(a, b)
		lat := te.MinLatency(a, b)
		if a == b && lat != 1 {
			t.Fatalf("self latency %d", lat)
		}
		// A value produced at cycle 0 on a reaches b's FU at exactly
		// cycle max(d,1)... and not earlier.
		earliest := d
		if earliest == 0 {
			earliest = 1
		}
		if !te.Reachable(FUNode(a, 0), FUNode(b, earliest)) {
			t.Fatalf("t%d→t%d should be reachable in %d cycles", a+1, b+1, earliest)
		}
		if earliest > 1 && te.Reachable(FUNode(a, 0), FUNode(b, earliest-1)) {
			t.Fatalf("t%d→t%d reachable too early (%d cycles, distance %d)",
				a+1, b+1, earliest-1, d)
		}
	}
}

func TestTEDGBounds(t *testing.T) {
	te := NewTEDG(MustGrid(HOM64), 4)
	if te.Depth() != 4 {
		t.Error("depth")
	}
	if te.Succs(FUNode(0, 3)) != nil {
		t.Error("no successors past the horizon")
	}
	if te.Reachable(FUNode(0, 2), FUNode(0, 1)) {
		t.Error("reachability cannot go backward in time")
	}
	if te.Reachable(FUNode(0, 0), FUNode(99, 1)) {
		t.Error("invalid nodes are unreachable")
	}
	if !te.Reachable(FUNode(2, 2), FUNode(2, 2)) {
		t.Error("a node reaches itself")
	}
}
