package arch

import "fmt"

// ConfigName names one of the paper's context-memory configurations
// (Table I) of the 4×4 CGRA.
type ConfigName string

// The four evaluated configurations. Tile numbers below are the paper's
// 1-based numbers; tiles 1–8 (rows 0 and 1) hold the load/store units.
//
//	HOM64: all 16 tiles have 64-word CMs (1024 words total).
//	HOM32: all 16 tiles have 32-word CMs (512 words total).
//	HET1:  tiles 1–4 have CM 64; tiles 5–8 and 13–16 have CM 32;
//	       tiles 9–12 have CM 16 (576 words total).
//	HET2:  tiles 1–4 have CM 64; tiles 5–8 have CM 32; tiles 9–16 have
//	       CM 16 (512 words total).
const (
	HOM64 ConfigName = "HOM64"
	HOM32 ConfigName = "HOM32"
	HET1  ConfigName = "HET1"
	HET2  ConfigName = "HET2"
)

// ConfigNames lists the paper's configurations in presentation order.
func ConfigNames() []ConfigName { return []ConfigName{HOM64, HOM32, HET1, HET2} }

// Default microarchitecture parameters shared by all configurations.
const (
	defaultRows     = 4
	defaultCols     = 4
	defaultRRFSize  = 8
	defaultMemPorts = 4
	defaultMemBanks = 8
	lsuRows         = 2 // rows 0 and 1, i.e. tiles 1..8
)

// NewGrid builds the named 4×4 configuration from Table I.
func NewGrid(name ConfigName) (*Grid, error) {
	cm, err := cmLayout(name)
	if err != nil {
		return nil, err
	}
	return buildGrid(string(name), cm), nil
}

// MustGrid is NewGrid for known-valid names; it panics otherwise.
func MustGrid(name ConfigName) *Grid {
	g, err := NewGrid(name)
	if err != nil {
		panic(err)
	}
	return g
}

// cmLayout returns the per-tile CM words (index = 0-based tile id).
func cmLayout(name ConfigName) ([16]int, error) {
	var cm [16]int
	set := func(fromNum, toNum, words int) {
		for n := fromNum; n <= toNum; n++ {
			cm[n-1] = words
		}
	}
	switch name {
	case HOM64:
		set(1, 16, 64)
	case HOM32:
		set(1, 16, 32)
	case HET1:
		set(1, 4, 64)
		set(5, 8, 32)
		set(9, 12, 16)
		set(13, 16, 32)
	case HET2:
		set(1, 4, 64)
		set(5, 8, 32)
		set(9, 16, 16)
	default:
		return cm, fmt.Errorf("arch: unknown configuration %q", name)
	}
	return cm, nil
}

func buildGrid(name string, cm [16]int) *Grid {
	g := &Grid{
		Name:     name,
		Rows:     defaultRows,
		Cols:     defaultCols,
		RRFSize:  defaultRRFSize,
		MemPorts: defaultMemPorts,
		MemBanks: defaultMemBanks,
	}
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			id := TileID(r*g.Cols + c)
			g.Tiles = append(g.Tiles, Tile{
				ID:      id,
				Row:     r,
				Col:     c,
				HasLSU:  r < lsuRows,
				CMWords: cm[id],
			})
		}
	}
	g.buildNeighborTable()
	return g
}

// CustomGrid builds a 4×4 grid with an arbitrary per-tile CM layout
// (1-based tile numbers mapped row-major, like Table I). It is the entry
// point for exploring configurations beyond the paper's four.
func CustomGrid(name string, cmWords [16]int) (*Grid, error) {
	g := buildGrid(name, cmWords)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
