// Package arch models the target CGRA of the paper: a 4×4 grid of tiles
// (processing elements) interconnected by a 2D-mesh torus. Each tile holds
// an ALU, a regular register file (RRF), a constant register file (CRF)
// and a context memory (CM) of a per-tile size; the tiles of the first two
// rows additionally contain a load/store unit (LSU) reaching the banked
// data memory through a logarithmic interconnect.
//
// Tiles are numbered 1..R*C row-major to match the paper's figures; the
// package also exposes the dense 0-based index used internally.
package arch

import (
	"fmt"
	"sort"
)

// TileID is a 0-based dense tile index. The paper's tile "k" is TileID(k-1).
type TileID int

// Tile describes one processing element.
type Tile struct {
	ID      TileID
	Row     int
	Col     int
	HasLSU  bool // can execute load/store operations
	CMWords int  // context-memory capacity in instruction words
}

// Num returns the 1-based tile number used in the paper's figures.
func (t Tile) Num() int { return int(t.ID) + 1 }

// Grid is a CGRA instance: a rectangular torus of tiles plus the shared
// data-memory parameters.
type Grid struct {
	Name string
	Rows int
	Cols int

	Tiles []Tile

	// RRFSize is the number of regular-register-file entries per tile
	// available to the mapper for holding values (the paper's 32×8-bit RRF
	// holds 8 32-bit values in our word-oriented model).
	RRFSize int

	// nbrs is the precomputed neighbor table (see buildNeighborTable).
	nbrs [][4]TileID

	// MemPorts is the number of simultaneous data-memory accesses the
	// logarithmic interconnect serves per cycle; excess accesses stall the
	// whole array for one cycle per extra access.
	MemPorts int

	// MemBanks is the number of data-memory banks (word-interleaved).
	// Accesses mapping to the same bank in the same cycle conflict even
	// when ports remain.
	MemBanks int
}

// NumTiles returns the tile count.
func (g *Grid) NumTiles() int { return len(g.Tiles) }

// Tile returns the tile with the given id.
func (g *Grid) Tile(id TileID) *Tile { return &g.Tiles[id] }

// At returns the tile at (row, col).
func (g *Grid) At(row, col int) *Tile { return &g.Tiles[row*g.Cols+col] }

// LSUTiles returns the ids of tiles with a load/store unit, ascending.
func (g *Grid) LSUTiles() []TileID {
	var ids []TileID
	for _, t := range g.Tiles {
		if t.HasLSU {
			ids = append(ids, t.ID)
		}
	}
	return ids
}

// TotalCM returns the total context-memory words over all tiles.
func (g *Grid) TotalCM() int {
	n := 0
	for _, t := range g.Tiles {
		n += t.CMWords
	}
	return n
}

// Neighbors returns the four torus neighbors of a tile in deterministic
// order (north, south, west, east). On a torus every tile has exactly four
// neighbors; on 4×4 they are all distinct from the tile itself.
func (g *Grid) Neighbors(id TileID) []TileID {
	if g.nbrs != nil {
		return g.nbrs[id][:]
	}
	t := g.Tiles[id]
	up := (t.Row - 1 + g.Rows) % g.Rows
	dn := (t.Row + 1) % g.Rows
	lf := (t.Col - 1 + g.Cols) % g.Cols
	rt := (t.Col + 1) % g.Cols
	return []TileID{
		g.At(up, t.Col).ID,
		g.At(dn, t.Col).ID,
		g.At(t.Row, lf).ID,
		g.At(t.Row, rt).ID,
	}
}

// buildNeighborTable precomputes the per-tile neighbor lists so Neighbors
// is allocation-free — it sits on the routing search's innermost loop.
func (g *Grid) buildNeighborTable() {
	g.nbrs = nil // fall back to the computed form while (re)building
	nbrs := make([][4]TileID, len(g.Tiles))
	for id := range g.Tiles {
		copy(nbrs[id][:], g.Neighbors(TileID(id)))
	}
	g.nbrs = nbrs
}

// Adjacent reports whether a and b are torus neighbors.
func (g *Grid) Adjacent(a, b TileID) bool {
	for _, n := range g.Neighbors(a) {
		if n == b {
			return true
		}
	}
	return false
}

// Distance returns the torus hop distance between two tiles.
func (g *Grid) Distance(a, b TileID) int {
	ta, tb := g.Tiles[a], g.Tiles[b]
	dr := torusDelta(ta.Row, tb.Row, g.Rows)
	dc := torusDelta(ta.Col, tb.Col, g.Cols)
	return dr + dc
}

func torusDelta(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if w := n - d; w < d {
		return w
	}
	return d
}

// Path returns a deterministic shortest torus path from a to b, excluding a
// and including b (empty when a == b). Routing goes row-first then
// column, always stepping in the shorter wrap direction.
func (g *Grid) Path(a, b TileID) []TileID {
	var path []TileID
	cur := g.Tiles[a]
	row, col := cur.Row, cur.Col
	tb := g.Tiles[b]
	for row != tb.Row {
		row = stepToward(row, tb.Row, g.Rows)
		path = append(path, g.At(row, col).ID)
	}
	for col != tb.Col {
		col = stepToward(col, tb.Col, g.Cols)
		path = append(path, g.At(row, col).ID)
	}
	return path
}

func stepToward(a, b, n int) int {
	if a == b {
		return a
	}
	fwd := (b - a + n) % n // steps going +1
	bwd := (a - b + n) % n // steps going -1
	if fwd <= bwd {
		return (a + 1) % n
	}
	return (a - 1 + n) % n
}

// TilesByDistance returns all tile ids sorted by torus distance from the
// given tile (ties by id), starting with the tile itself.
func (g *Grid) TilesByDistance(from TileID) []TileID {
	ids := make([]TileID, g.NumTiles())
	for i := range ids {
		ids[i] = TileID(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := g.Distance(from, ids[i]), g.Distance(from, ids[j])
		if di != dj {
			return di < dj
		}
		return ids[i] < ids[j]
	})
	return ids
}

// Validate checks internal consistency of the grid description.
func (g *Grid) Validate() error {
	if g.Rows <= 0 || g.Cols <= 0 {
		return fmt.Errorf("arch: grid %q has non-positive shape %dx%d", g.Name, g.Rows, g.Cols)
	}
	if len(g.Tiles) != g.Rows*g.Cols {
		return fmt.Errorf("arch: grid %q has %d tiles, want %d", g.Name, len(g.Tiles), g.Rows*g.Cols)
	}
	for i, t := range g.Tiles {
		if t.ID != TileID(i) {
			return fmt.Errorf("arch: tile at index %d has id %d", i, t.ID)
		}
		if t.Row != i/g.Cols || t.Col != i%g.Cols {
			return fmt.Errorf("arch: tile %d has position (%d,%d), want (%d,%d)",
				i, t.Row, t.Col, i/g.Cols, i%g.Cols)
		}
		if t.CMWords <= 0 {
			return fmt.Errorf("arch: tile %d has context memory of %d words", i, t.CMWords)
		}
	}
	if g.RRFSize <= 0 {
		return fmt.Errorf("arch: grid %q has RRF size %d", g.Name, g.RRFSize)
	}
	if g.MemPorts <= 0 || g.MemBanks <= 0 {
		return fmt.Errorf("arch: grid %q needs positive memory ports/banks", g.Name)
	}
	if len(g.LSUTiles()) == 0 {
		return fmt.Errorf("arch: grid %q has no load/store tile", g.Name)
	}
	return nil
}
