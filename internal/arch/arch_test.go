package arch

import (
	"math/rand"
	"testing"
)

func TestConfigsTableI(t *testing.T) {
	// Totals straight from the paper's Table I.
	wantTotal := map[ConfigName]int{HOM64: 1024, HOM32: 512, HET1: 576, HET2: 512}
	for _, name := range ConfigNames() {
		g := MustGrid(name)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := g.TotalCM(); got != wantTotal[name] {
			t.Errorf("%s total CM = %d, want %d", name, got, wantTotal[name])
		}
		if n := len(g.LSUTiles()); n != 8 {
			t.Errorf("%s has %d LSU tiles, want 8", name, n)
		}
		for _, id := range g.LSUTiles() {
			if g.Tile(id).Row >= 2 {
				t.Errorf("%s: LSU tile %d not in first two rows", name, id+1)
			}
		}
	}
	// Per-tile spot checks of the heterogeneous layouts (1-based numbers).
	het1 := MustGrid(HET1)
	for num, want := range map[int]int{1: 64, 4: 64, 5: 32, 8: 32, 9: 16, 12: 16, 13: 32, 16: 32} {
		if got := het1.Tile(TileID(num - 1)).CMWords; got != want {
			t.Errorf("HET1 tile %d CM = %d, want %d", num, got, want)
		}
	}
	het2 := MustGrid(HET2)
	for num, want := range map[int]int{1: 64, 5: 32, 9: 16, 13: 16, 16: 16} {
		if got := het2.Tile(TileID(num - 1)).CMWords; got != want {
			t.Errorf("HET2 tile %d CM = %d, want %d", num, got, want)
		}
	}
	if _, err := NewGrid("NOPE"); err == nil {
		t.Error("unknown config should fail")
	}
}

func TestTorusNeighbors(t *testing.T) {
	g := MustGrid(HOM64)
	// Tile 1 (0,0): N wraps to (3,0)=tile 13, S=(1,0)=5, W wraps to
	// (0,3)=4, E=(0,1)=2.
	nb := g.Neighbors(0)
	want := []TileID{12, 4, 3, 1}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors(0) = %v, want %v", nb, want)
		}
	}
	for tID := 0; tID < g.NumTiles(); tID++ {
		seen := map[TileID]bool{}
		for _, n := range g.Neighbors(TileID(tID)) {
			if n == TileID(tID) {
				t.Fatalf("tile %d is its own neighbor", tID)
			}
			if seen[n] {
				t.Fatalf("tile %d has duplicate neighbor %d", tID, n)
			}
			seen[n] = true
			if !g.Adjacent(n, TileID(tID)) {
				t.Fatalf("adjacency not symmetric between %d and %d", tID, n)
			}
		}
	}
}

func TestTorusDistanceAndPathProperties(t *testing.T) {
	g := MustGrid(HOM64)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		a := TileID(rng.Intn(16))
		b := TileID(rng.Intn(16))
		d := g.Distance(a, b)
		if d != g.Distance(b, a) {
			t.Fatalf("distance not symmetric: %d vs %d", d, g.Distance(b, a))
		}
		if (d == 0) != (a == b) {
			t.Fatalf("distance zero iff same tile")
		}
		if d > 4 { // 4x4 torus diameter is 2+2
			t.Fatalf("distance %d exceeds torus diameter", d)
		}
		path := g.Path(a, b)
		if len(path) != d {
			t.Fatalf("path length %d != distance %d (a=%d b=%d)", len(path), d, a, b)
		}
		prev := a
		for _, h := range path {
			if !g.Adjacent(prev, h) {
				t.Fatalf("path hop %d-%d not adjacent", prev, h)
			}
			prev = h
		}
		if d > 0 && path[len(path)-1] != b {
			t.Fatalf("path does not end at target")
		}
	}
}

func TestTilesByDistance(t *testing.T) {
	g := MustGrid(HOM64)
	order := g.TilesByDistance(5)
	if order[0] != 5 {
		t.Fatalf("closest tile should be itself: %v", order)
	}
	if len(order) != 16 {
		t.Fatalf("order covers %d tiles", len(order))
	}
	for i := 1; i < len(order); i++ {
		if g.Distance(5, order[i]) < g.Distance(5, order[i-1]) {
			t.Fatalf("order not sorted by distance at %d", i)
		}
	}
}

func TestCustomGridValidation(t *testing.T) {
	var cm [16]int
	for i := range cm {
		cm[i] = 8
	}
	g, err := CustomGrid("tiny", cm)
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalCM() != 128 {
		t.Errorf("total = %d", g.TotalCM())
	}
	cm[3] = 0
	if _, err := CustomGrid("bad", cm); err == nil {
		t.Error("zero-sized CM should fail validation")
	}
}

func TestGridValidateErrors(t *testing.T) {
	g := MustGrid(HOM64)
	g.RRFSize = 0
	if err := g.Validate(); err == nil {
		t.Error("zero RRF should fail")
	}
	g = MustGrid(HOM64)
	g.MemPorts = 0
	if err := g.Validate(); err == nil {
		t.Error("zero ports should fail")
	}
	g = MustGrid(HOM64)
	for i := range g.Tiles {
		g.Tiles[i].HasLSU = false
	}
	if err := g.Validate(); err == nil {
		t.Error("no LSU tiles should fail")
	}
	g = MustGrid(HOM64)
	g.Tiles = g.Tiles[:10]
	if err := g.Validate(); err == nil {
		t.Error("wrong tile count should fail")
	}
}
