package arch

import (
	"fmt"
	"strings"
)

// Fingerprint returns a deterministic rendering of every structural grid
// property that can influence a mapping: geometry, register files, memory
// system, and the per-tile LSU/context-memory layout. The Name is
// deliberately excluded — two configurations with identical structure must
// fingerprint identically so content-addressed caches (internal/mapcache)
// key on what the mapper actually sees, not on a label.
func (g *Grid) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "grid:%dx%d;rrf=%d;ports=%d;banks=%d;tiles=",
		g.Rows, g.Cols, g.RRFSize, g.MemPorts, g.MemBanks)
	for i, t := range g.Tiles {
		if i > 0 {
			b.WriteByte(',')
		}
		lsu := 0
		if t.HasLSU {
			lsu = 1
		}
		fmt.Fprintf(&b, "%d:%d", lsu, t.CMWords)
	}
	return b.String()
}
