package repro

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/oracle"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_mappings.txt from the current mapper output")

const goldenPath = "testdata/golden_mappings.txt"

// goldenCell computes the checksum line for one (kernel, mode, config)
// cell: a short SHA-256 of the assembled bitstream image, or "no-mapping"
// when the flow finds no solution. The mapper is seeded (DefaultOptions
// Seed = 1), so the cell value is a pure function of the mapper code —
// any silent drift in placement, routing, scheduling or encoding changes
// the hash.
func goldenCell(t *testing.T, kernel kernels.Kernel, mode oracle.Mode, cfg arch.ConfigName) string {
	t.Helper()
	g := kernel.Build()
	grid := arch.MustGrid(cfg)
	m, err := core.Map(g, grid, mode.Options())
	if err != nil {
		return "no-mapping"
	}
	prog, err := asm.Assemble(m)
	if err != nil {
		t.Fatalf("%s/%s/%s: assemble of a valid mapping failed: %v", kernel.Name, mode, cfg, err)
	}
	img, err := asm.SaveImage(prog)
	if err != nil {
		t.Fatalf("%s/%s/%s: image encode failed: %v", kernel.Name, mode, cfg, err)
	}
	sum := sha256.Sum256(img)
	return hex.EncodeToString(sum[:6])
}

// TestGoldenMappingChecksums pins a checksum of the assembled bitstream
// for every suite kernel × mapping mode × CM configuration. The golden
// file proves that performance rewrites of the mapper hot path (arena
// pooling, route memoization) are bit-exact: identical Options + seed
// must keep producing byte-identical programs. Regenerate deliberately
// with:
//
//	go test -run TestGoldenMappingChecksums -update-golden .
func TestGoldenMappingChecksums(t *testing.T) {
	modes := oracle.Modes()
	configs := arch.ConfigNames()
	if testing.Short() {
		// Keep -short quick: the cheapest and the most complex mode on
		// the two homogeneous configurations still catch gross drift.
		modes = []oracle.Mode{oracle.ModeBasic, oracle.ModeCAB}
		configs = []arch.ConfigName{arch.HOM64, arch.HOM32}
	}

	var sb strings.Builder
	for _, k := range kernels.All() {
		for _, mode := range modes {
			for _, cfg := range configs {
				fmt.Fprintf(&sb, "%s %s %s %s\n", k.Name, mode, cfg, goldenCell(t, k, mode, cfg))
			}
		}
	}
	got := sb.String()

	if *updateGolden {
		if testing.Short() {
			t.Fatal("refusing to write a partial golden file under -short")
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cells)", goldenPath, strings.Count(got, "\n"))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (generate with -update-golden): %v", err)
	}
	want := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		f := strings.Fields(line)
		if len(f) != 4 {
			t.Fatalf("malformed golden line %q", line)
		}
		want[f[0]+" "+f[1]+" "+f[2]] = f[3]
	}
	checked := 0
	for _, line := range strings.Split(strings.TrimSpace(got), "\n") {
		f := strings.Fields(line)
		key := f[0] + " " + f[1] + " " + f[2]
		w, ok := want[key]
		if !ok {
			t.Errorf("%s: cell missing from golden file (regenerate with -update-golden)", key)
			continue
		}
		checked++
		if f[3] != w {
			t.Errorf("%s: bitstream checksum %s, golden %s — the mapper's output drifted", key, f[3], w)
		}
	}
	if checked == 0 {
		t.Fatal("no golden cells checked")
	}
}
