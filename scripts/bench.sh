#!/usr/bin/env bash
# Performance baseline: runs the mapper/simulator benchmarks from
# perf_bench_test.go and writes BENCH_core.json so mapper-speed
# regressions show up as a diffable artifact, not an anecdote.
#
#   scripts/bench.sh             # full run, writes BENCH_core.json
#   scripts/bench.sh -compare    # re-run and diff against BENCH_core.json
#                                # without overwriting it; exits 1 when any
#                                # benchmark regresses past tolerance
#   scripts/bench.sh -benchtime=100ms   # extra args forwarded to go test
#
# Compare mode checks all three recorded metrics, each with its own
# tolerance (time is noisy; allocation counts are nearly deterministic):
#   BENCH_TOLERANCE_PCT         ns/op      (default 30)
#   BENCH_BYTES_TOLERANCE_PCT   B/op       (default 50)
#   BENCH_ALLOCS_TOLERANCE_PCT  allocs/op  (default 25)
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="BENCH_core.json"
mode="write"
if [ "${1:-}" = "-compare" ]; then
    mode="compare"
    shift
    if [ ! -f "$baseline" ]; then
        echo "bench.sh: no $baseline baseline to compare against; run scripts/bench.sh first" >&2
        exit 1
    fi
fi

raw="$(mktemp)"
cur="$(mktemp)"
trap 'rm -f "$raw" "$cur"' EXIT

pattern='BenchmarkCoreMap|BenchmarkCoreMapPortfolio|BenchmarkPortfolioPruned|BenchmarkPortfolioUnpruned|BenchmarkMapCached|BenchmarkSimRun|BenchmarkVerifyRun|BenchmarkOracleCheck|BenchmarkStaticAnalyze|BenchmarkStrip'
echo "== go test -bench '$pattern' -run NONE . $*"
go test -bench "$pattern" -benchmem -run NONE . "$@" | tee "$raw"

# Parse the standard go-bench output lines:
#   BenchmarkCoreMap/FIR-8  123  9876543 ns/op  456 B/op  7 allocs/op
# The trailing -N GOMAXPROCS suffix is stripped so the artifact compares
# across machines with different core counts.
awk '
BEGIN { print "{"; print "  \"benchmarks\": [" ; n = 0 }
/^Benchmark/ && /ns\/op/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    iters = $2; ns = $3
    bytes = "null"; allocs = "null"
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op")      bytes  = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, iters, ns, bytes, allocs
}
END {
    if (n) printf "\n"
    print "  ],"
    print "  \"count\": " n
    print "}"
}' "$raw" > "$cur"

count=$(grep -c '"name"' "$cur" || true)
if [ "$count" -eq 0 ]; then
    echo "bench.sh: no benchmark lines parsed" >&2
    exit 1
fi

if [ "$mode" = "write" ]; then
    cp "$cur" "$baseline"
    echo "wrote $baseline ($count benchmarks)"
    exit 0
fi

# Compare mode: join current metrics against the baseline by name. Both
# files are our own one-object-per-line JSON, so awk can parse them.
# Baselines written before the suffix-stripping change may still carry
# -N on their names; strip it from both sides when matching. A metric
# missing on either side (older "null" baselines) is skipped, not failed.
tol_ns="${BENCH_TOLERANCE_PCT:-30}"
tol_bytes="${BENCH_BYTES_TOLERANCE_PCT:-50}"
tol_allocs="${BENCH_ALLOCS_TOLERANCE_PCT:-25}"
# The obs-off gate: BenchmarkCoreMapObsOff must allocate exactly what the
# same run's BenchmarkCoreMap did (a nil recorder is free). The default 0%
# is exact on full bench runs; the 1x CI gate widens it because a GC can
# evict the arena pool between single iterations (see ci.sh).
tol_obsoff="${BENCH_OBSOFF_ALLOCS_TOLERANCE_PCT:-0}"
echo
echo "== compare vs $baseline (tolerance ns +${tol_ns}%, B/op +${tol_bytes}%, allocs/op +${tol_allocs}%, obs-off allocs +${tol_obsoff}%)"
awk -v tol_ns="$tol_ns" -v tol_bytes="$tol_bytes" -v tol_allocs="$tol_allocs" -v tol_obsoff="$tol_obsoff" '
function field(line, key,   v) {
    v = line
    if (!sub(".*\"" key "\": *", "", v)) return ""
    sub(/[,}].*/, "", v)
    return v
}
# check compares one metric; base/cur of "" or "null" skip the check. A
# zero baseline with a zero current value passes; any growth from zero is
# flagged (percentages are meaningless there).
function check(name, metric, b, c, tol,   delta, mark) {
    if (b == "" || b == "null" || c == "" || c == "null") return
    if (b + 0 == 0) {
        if (c + 0 == 0) return
        printf "%-42s %14s -> %14s %s  (from zero)  REGRESSION\n", name, b, c, metric
        bad++
        return
    }
    delta = 100.0 * (c - b) / b
    mark = ""
    if (delta > tol) { mark = "  REGRESSION"; bad++ }
    printf "%-42s %14s -> %14s %s  %+7.1f%%%s\n", name, b, c, metric, delta, mark
}
/"name"/ {
    name = field($0, "name")
    gsub(/^"|"$/, "", name)
    sub(/-[0-9]+$/, "", name)
    if (FNR == NR) {
        base_ns[name]     = field($0, "ns_per_op")
        base_bytes[name]  = field($0, "bytes_per_op")
        base_allocs[name] = field($0, "allocs_per_op")
        next
    }
    # Remember the numbers of this very run: the obs-off gate below
    # compares within the run, where allocation counts are exact, not
    # against a baseline written on a machine with different GC timing.
    cur_allocs[name] = field($0, "allocs_per_op")
    # The ObsOff benchmarks pin the disabled-instrumentation hot path: a
    # nil recorder must not add a single allocation over this same run
    # of the plain BenchmarkCoreMap.
    alt = name
    if (sub(/^BenchmarkCoreMapObsOff\//, "BenchmarkCoreMap/", alt) && (alt in cur_allocs)) {
        check(name " (obs-off)", "allocs/op", cur_allocs[alt], field($0, "allocs_per_op"), tol_obsoff)
    }
    # Same gate for the mapping-cache hit path: a cache built with a nil
    # recorder must not allocate more per warm hit than the plain run.
    alt = name
    if (sub(/^BenchmarkMapCachedObsOff\//, "BenchmarkMapCached/", alt) && (alt in cur_allocs)) {
        check(name " (obs-off)", "allocs/op", cur_allocs[alt], field($0, "allocs_per_op"), tol_obsoff)
    }
    if (!(name in base_ns)) {
        printf "%-42s %14s ns/op  (no baseline)\n", name, field($0, "ns_per_op")
        next
    }
    check(name, "ns/op    ", base_ns[name],     field($0, "ns_per_op"),     tol_ns)
    check(name, "B/op     ", base_bytes[name],  field($0, "bytes_per_op"),  tol_bytes)
    check(name, "allocs/op", base_allocs[name], field($0, "allocs_per_op"), tol_allocs)
}
END {
    if (bad) { printf "%d metric(s) regressed past tolerance\n", bad; exit 1 }
    print "no regressions past tolerance"
}' "$baseline" "$cur"
