#!/usr/bin/env bash
# Performance baseline: runs the mapper/simulator benchmarks from
# perf_bench_test.go and writes BENCH_core.json so mapper-speed
# regressions show up as a diffable artifact, not an anecdote.
#
#   scripts/bench.sh             # full run, writes BENCH_core.json
#   scripts/bench.sh -benchtime=100ms   # extra args forwarded to go test
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_core.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "== go test -bench 'BenchmarkCoreMap|BenchmarkCoreMapPortfolio|BenchmarkSimRun' -run NONE . $*"
go test -bench 'BenchmarkCoreMap|BenchmarkCoreMapPortfolio|BenchmarkSimRun' \
    -benchmem -run NONE . "$@" | tee "$raw"

# Parse the standard go-bench output lines:
#   BenchmarkCoreMap/FIR-8  123  9876543 ns/op  456 B/op  7 allocs/op
awk '
BEGIN { print "{"; print "  \"benchmarks\": [" ; n = 0 }
/^Benchmark/ && /ns\/op/ {
    name = $1; iters = $2; ns = $3
    bytes = "null"; allocs = "null"
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op")      bytes  = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, iters, ns, bytes, allocs
}
END {
    if (n) printf "\n"
    print "  ],"
    print "  \"count\": " n
    print "}"
}' "$raw" > "$out"

count=$(grep -c '"name"' "$out" || true)
if [ "$count" -eq 0 ]; then
    echo "bench.sh: no benchmark lines parsed" >&2
    exit 1
fi
echo "wrote $out ($count benchmarks)"
