#!/usr/bin/env bash
# Performance baseline: runs the mapper/simulator benchmarks from
# perf_bench_test.go and writes BENCH_core.json so mapper-speed
# regressions show up as a diffable artifact, not an anecdote.
#
#   scripts/bench.sh             # full run, writes BENCH_core.json
#   scripts/bench.sh -compare    # re-run and diff against BENCH_core.json
#                                # without overwriting it; exits 1 when any
#                                # benchmark slows past BENCH_TOLERANCE_PCT
#                                # (default 30%)
#   scripts/bench.sh -benchtime=100ms   # extra args forwarded to go test
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="BENCH_core.json"
mode="write"
if [ "${1:-}" = "-compare" ]; then
    mode="compare"
    shift
    if [ ! -f "$baseline" ]; then
        echo "bench.sh: no $baseline baseline to compare against; run scripts/bench.sh first" >&2
        exit 1
    fi
fi

raw="$(mktemp)"
cur="$(mktemp)"
trap 'rm -f "$raw" "$cur"' EXIT

echo "== go test -bench 'BenchmarkCoreMap|BenchmarkCoreMapPortfolio|BenchmarkSimRun' -run NONE . $*"
go test -bench 'BenchmarkCoreMap|BenchmarkCoreMapPortfolio|BenchmarkSimRun' \
    -benchmem -run NONE . "$@" | tee "$raw"

# Parse the standard go-bench output lines:
#   BenchmarkCoreMap/FIR-8  123  9876543 ns/op  456 B/op  7 allocs/op
# The trailing -N GOMAXPROCS suffix is stripped so the artifact compares
# across machines with different core counts.
awk '
BEGIN { print "{"; print "  \"benchmarks\": [" ; n = 0 }
/^Benchmark/ && /ns\/op/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    iters = $2; ns = $3
    bytes = "null"; allocs = "null"
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op")      bytes  = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, iters, ns, bytes, allocs
}
END {
    if (n) printf "\n"
    print "  ],"
    print "  \"count\": " n
    print "}"
}' "$raw" > "$cur"

count=$(grep -c '"name"' "$cur" || true)
if [ "$count" -eq 0 ]; then
    echo "bench.sh: no benchmark lines parsed" >&2
    exit 1
fi

if [ "$mode" = "write" ]; then
    cp "$cur" "$baseline"
    echo "wrote $baseline ($count benchmarks)"
    exit 0
fi

# Compare mode: join current ns/op against the baseline by name. Both
# files are our own one-object-per-line JSON, so awk can parse them.
# Baselines written before the suffix-stripping change may still carry
# -N on their names; strip it from both sides when matching.
tol="${BENCH_TOLERANCE_PCT:-30}"
echo
echo "== compare vs $baseline (tolerance +${tol}%)"
awk -v tol="$tol" '
function field(line, key,   v) {
    v = line
    if (!sub(".*\"" key "\": *", "", v)) return ""
    sub(/[,}].*/, "", v)
    return v
}
/"name"/ {
    name = field($0, "name")
    gsub(/^"|"$/, "", name)
    sub(/-[0-9]+$/, "", name)
    ns = field($0, "ns_per_op")
    if (FNR == NR) { base[name] = ns; next }
    if (!(name in base)) { printf "%-42s %14s ns/op  (no baseline)\n", name, ns; next }
    delta = 100.0 * (ns - base[name]) / base[name]
    mark = ""
    if (delta > tol) { mark = "  REGRESSION"; bad++ }
    printf "%-42s %14s -> %14s ns/op  %+7.1f%%%s\n", name, base[name], ns, delta, mark
}
END {
    if (bad) { printf "%d benchmark(s) regressed past +%s%%\n", bad, tol; exit 1 }
    print "no regressions past tolerance"
}' "$baseline" "$cur"
