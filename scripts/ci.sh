#!/usr/bin/env bash
# CI pipeline: vet, lint, build, full tests, then the race-detector pass.
#
#   scripts/ci.sh          # everything (slow: the race pass re-runs the suite)
#   scripts/ci.sh -short   # short variant for quick iteration
set -euo pipefail
cd "$(dirname "$0")/.."

short="${1:-}"

echo "== go vet ./..."
go vet ./...

# Repo-specific analyzers (internal/lint): nondeterministic map
# iteration, wall-clock/unseeded randomness in the mapper, dropped
# errors. Zero findings is the bar; fix violations, don't suppress them.
echo "== cgralint ./..."
go run ./cmd/cgralint ./...

echo "== go build ./..."
go build ./...

# Bounded differential-oracle smoke: a small seeded sweep of generated
# CDFGs across every mode × CM config, run up front so a mapper or
# simulator divergence fails fast, before the full suite (which runs the
# unbounded 200-graph acceptance sweep) spends its time budget.
sweep_n=25
if [ -n "$short" ]; then sweep_n=10; fi
echo "== oracle sweep (ORACLE_SWEEP_N=$sweep_n)"
ORACLE_SWEEP_N=$sweep_n go test -run TestSweepClean ./internal/oracle

echo "== go test $short ./..."
go test $short ./...

# Race instrumentation slows the mapping matrix ~4-5x; raise the
# per-package timeout past the 10m default.
echo "== go test -race $short ./..."
go test -race -timeout 45m $short ./...

echo "CI OK"
